// Quickstart: define a filtering application, optimize a plan for each
// communication model, and inspect the resulting schedule.
//
//   $ ./quickstart
#include <cstdio>

#include "src/core/application.hpp"
#include "src/io/dot.hpp"
#include "src/oplist/validate.hpp"
#include "src/opt/optimizer.hpp"
#include "src/sim/replay.hpp"

int main() {
  using namespace fsw;

  // An application is a bag of services: cost c (time per unit input) and
  // selectivity sigma (output size per unit input). sigma < 1 filters,
  // sigma > 1 expands. No precedence constraints here.
  Application app;
  app.addService(2.0, 0.5, "dedupe");     // cheap, halves the data
  app.addService(6.0, 0.3, "classify");   // expensive, strong filter
  app.addService(1.5, 1.0, "annotate");   // neutral
  app.addService(3.0, 1.8, "enrich");     // expands the data
  app.addService(4.0, 0.9, "rank");

  std::printf("quickstart: %zu services\n\n", app.size());

  // The plan-search engine fans candidate generation and orchestration out
  // over the shared thread pool by default; threads = 1 forces a serial run
  // with bit-identical results.
  OptimizerOptions engine;
  engine.threads = 0;

  for (const CommModel m : kAllModels) {
    // optimizePlan asks every registered CandidateSource for execution
    // graphs (which service filters whose input), dedups them, and
    // orchestrates the best-scoring ones into a cyclic operation list.
    const OptimizedPlan best = optimizePlan(app, m, Objective::Period, engine);
    const auto report = validate(app, best.plan.graph, best.plan.ol, m);
    const auto sim =
        replayOperationList(app, best.plan.graph, best.plan.ol, m, 48);
    std::printf("%s: period %.4f (strategy: %s, %s, simulated %.4f)\n",
                name(m).data(), best.value, best.strategy.c_str(),
                report.valid ? "valid" : "INVALID", sim.measuredPeriod);
    std::printf("   engine: %zu sources -> %zu proposals, %zu unique "
                "(%zu dedup hits), %zu orchestrated\n",
                best.stats.sourcesRun, best.stats.generated,
                best.stats.unique, best.stats.duplicates,
                best.stats.orchestrated);
  }

  // Latency (response time) optimization usually picks a different plan.
  const OptimizedPlan lat =
      optimizePlan(app, CommModel::InOrder, Objective::Latency);
  std::printf("\none-port latency: %.4f (strategy: %s)\n", lat.value,
              lat.strategy.c_str());

  std::printf("\nchosen execution graph (DOT):\n%s",
              toDot(app, lat.plan.graph).c_str());
  std::printf("\nschedule of one data set:\n%s", lat.plan.ol.dump().c_str());
  return 0;
}
