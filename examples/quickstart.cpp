// Quickstart: define a filtering application, optimize a plan for each
// communication model, and inspect the resulting schedule.
//
//   $ ./quickstart
#include <cstdio>

#include "src/core/application.hpp"
#include "src/io/dot.hpp"
#include "src/oplist/validate.hpp"
#include "src/opt/optimizer.hpp"
#include "src/sim/replay.hpp"

int main() {
  using namespace fsw;

  // An application is a bag of services: cost c (time per unit input) and
  // selectivity sigma (output size per unit input). sigma < 1 filters,
  // sigma > 1 expands. No precedence constraints here.
  Application app;
  app.addService(2.0, 0.5, "dedupe");     // cheap, halves the data
  app.addService(6.0, 0.3, "classify");   // expensive, strong filter
  app.addService(1.5, 1.0, "annotate");   // neutral
  app.addService(3.0, 1.8, "enrich");     // expands the data
  app.addService(4.0, 0.9, "rank");

  std::printf("quickstart: %zu services\n\n", app.size());

  for (const CommModel m : kAllModels) {
    // optimizePlan picks the execution graph (which service filters whose
    // input) and the cyclic operation list minimizing the period.
    const OptimizedPlan best = optimizePlan(app, m, Objective::Period);
    const auto report = validate(app, best.plan.graph, best.plan.ol, m);
    const auto sim =
        replayOperationList(app, best.plan.graph, best.plan.ol, m, 48);
    std::printf("%s: period %.4f (strategy: %s, %s, simulated %.4f)\n",
                name(m).data(), best.value, best.strategy.c_str(),
                report.valid ? "valid" : "INVALID", sim.measuredPeriod);
  }

  // Latency (response time) optimization usually picks a different plan.
  const OptimizedPlan lat =
      optimizePlan(app, CommModel::InOrder, Objective::Latency);
  std::printf("\none-port latency: %.4f (strategy: %s)\n", lat.value,
              lat.strategy.c_str());

  std::printf("\nchosen execution graph (DOT):\n%s",
              toDot(app, lat.plan.graph).c_str());
  std::printf("\nschedule of one data set:\n%s", lat.plan.ol.dump().c_str());
  return 0;
}
