// Multi-host serving: a three-host fleet with a shared remote result
// store, all in one process over loopback TCP.
//
//   store:  ResultStoreHost        (the fleet's shared full-result cache
//                                   + incumbent bound board)
//   hosts:  3 x PlanServiceHost    (each a PlanServer over its own
//                                   PlanEngine, wired to the store)
//   client: PlanRouter             (rendezvous-routes each request's key
//                                   across the fleet, fails over when a
//                                   host dies)
//
// The demo submits mixed traffic, shows the key space spreading across
// hosts, then kills one host mid-fleet: its keys fail over to the
// next-ranked host — which is COLD for them, but serves the repeats
// wholesale from the shared store with zero new orchestrations, winners
// bit-identical throughout.
//
//   $ ./multi_host_serving
#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/application.hpp"
#include "src/opt/optimizer.hpp"
#include "src/serve/plan_router.hpp"
#include "src/serve/plan_service.hpp"
#include "src/serve/result_store.hpp"

int main() {
  using namespace fsw;

  Application pipeline;
  pipeline.addService(2.0, 0.5, "decode");
  pipeline.addService(6.0, 0.3, "detect");
  pipeline.addService(1.5, 1.0, "caption");
  pipeline.addService(3.0, 1.8, "upscale");

  Application query;
  query.addService(1.0, 0.6, "parse");
  query.addService(5.0, 0.4, "match");
  query.addService(2.5, 0.9, "rank");
  query.addPrecedence(0, 1);

  std::vector<PlanRequest> requests;
  for (const auto* app : {&pipeline, &query}) {
    for (const CommModel m : kAllModels) {
      for (const Objective obj : {Objective::Period, Objective::Latency}) {
        requests.push_back({*app, m, obj});
      }
    }
  }

  // The fleet: one shared store, three hosts wired to it.
  ResultStoreHost store{ResultStoreConfig{}};
  std::vector<std::unique_ptr<RemoteResultStore>> storeClients;
  std::vector<std::unique_ptr<PlanServiceHost>> hosts;
  RouterConfig rc;
  for (std::size_t h = 0; h < 3; ++h) {
    storeClients.push_back(
        std::make_unique<RemoteResultStore>("127.0.0.1", store.port()));
    ServiceHostConfig hc;
    hc.serverConfig.engineConfig.resultStore = storeClients.back().get();
    hc.serverConfig.maxBatch = 4;
    hosts.push_back(std::make_unique<PlanServiceHost>(hc));
    rc.hosts.push_back(RouterHost{"127.0.0.1", hosts.back()->port()});
  }
  PlanRouter router{rc};
  std::printf("fleet: 3 hosts behind one router, shared store on port %u\n\n",
              store.port());

  // Pass 1: cold fleet. Every request routes by its key's rendezvous
  // rank; each host solves its own share and publishes to the store.
  double checksum = 0.0;
  for (const PlanRequest& request : requests) {
    checksum += router.optimize(request).value;
  }
  {
    const auto rs = router.stats();
    std::printf("pass 1 (cold fleet): checksum %.4f, served per host =",
                checksum);
    for (const auto& host : rs.perHost) std::printf(" %zu", host.served);
    std::printf("\n");
  }

  // Kill host 0 mid-fleet. Its keys fail over to their next-ranked host —
  // cold engines, but the shared store serves the repeats wholesale.
  hosts[0].reset();
  std::printf("\nhost 0 killed; replaying the same traffic...\n");
  double checksum2 = 0.0;
  std::size_t warm = 0;
  for (const PlanRequest& request : requests) {
    const OptimizedPlan plan = router.optimize(request);
    checksum2 += plan.value;
    warm += plan.stats.resultCacheHits;
  }
  const auto rs = router.stats();
  std::printf(
      "pass 2: checksum %.4f (%s), %zu/%zu served from a result cache,\n"
      "        %zu failovers, host 0 %s\n",
      checksum2, checksum2 == checksum ? "bit-identical" : "DIVERGED",
      warm, requests.size(), rs.failovers,
      router.hostUp(0) ? "up" : "down");

  const auto ss = store.stats();
  std::printf(
      "store:  %zu gets (%zu hits, %zu with a bound), %zu puts\n",
      ss.gets, ss.hits, ss.boundHits, ss.puts);
  return checksum2 == checksum ? 0 : 1;
}
