// Batched serving: stand up one long-lived PlanEngine, serve a mixed
// request stream through optimizePlanBatch, inspect the cross-request
// amortization counters, and persist the score cache for the next run.
//
//   $ ./batch_serving            # cold start
//   $ ./batch_serving            # warm start (loads fsw_cache.txt)
#include <cstdio>
#include <exception>
#include <fstream>

#include "src/core/application.hpp"
#include "src/serve/plan_engine.hpp"

int main() {
  using namespace fsw;

  // Two tenants of a serving process, each optimized under several
  // (model, objective) combinations — plus repeat traffic.
  Application ingest;
  ingest.addService(2.0, 0.5, "dedupe");
  ingest.addService(6.0, 0.3, "classify");
  ingest.addService(1.5, 1.0, "annotate");
  ingest.addService(3.0, 1.8, "enrich");

  Application search;
  search.addService(1.0, 0.6, "tokenize");
  search.addService(5.0, 0.4, "retrieve");
  search.addService(2.5, 0.9, "rerank");
  search.addService(4.0, 1.2, "expand");
  search.addService(0.5, 1.0, "render");
  search.addPrecedence(0, 1);  // tokenize before retrieve

  std::vector<PlanRequest> requests;
  for (const auto* app : {&ingest, &search}) {
    for (const CommModel m : kAllModels) {
      for (const Objective obj : {Objective::Period, Objective::Latency}) {
        requests.push_back({*app, m, obj});
      }
    }
  }
  // Repeat traffic: the same plans are requested again (think: the same
  // tenant re-deploying). These collapse onto the first occurrences.
  const std::size_t unique = requests.size();
  for (std::size_t i = 0; i < unique; i += 2) requests.push_back(requests[i]);

  // One engine for the process lifetime: shared pool, shared LRU score
  // cache. A previous run's cache dump warms it.
  PlanEngine engine;
  const char* cacheFile = "fsw_cache.txt";
  if (std::ifstream in(cacheFile); in.good()) {
    try {
      engine.loadCache(in);
      std::printf("warm start: loaded %zu cached scores from %s\n\n",
                  engine.cacheSize(), cacheFile);
    } catch (const std::exception& e) {
      // A dump from an older format version is rejected cleanly — serve
      // cold and overwrite it on exit rather than crash-looping.
      std::printf("cold start: ignoring stale %s (%s)\n\n", cacheFile,
                  e.what());
    }
  } else {
    std::printf("cold start (no %s yet)\n\n", cacheFile);
  }

  const auto plans = engine.optimizeBatch(requests);

  std::printf("%-4s %-8s %-8s %-10s %-16s %-6s %-6s %-6s\n", "#", "model",
              "obj", "value", "strategy", "xreq", "shared", "aborts");
  for (std::size_t i = 0; i < plans.size(); ++i) {
    std::printf("%-4zu %-8s %-8s %-10.4f %-16s %-6zu %-6zu %-6zu\n", i,
                name(requests[i].model).data(),
                name(requests[i].objective).data(), plans[i].value,
                plans[i].strategy.c_str(), plans[i].stats.crossRequestHits,
                plans[i].stats.sharedHits, plans[i].stats.boundAborts);
  }

  const auto cs = engine.cacheStats();
  std::printf("\nshared cache: %zu entries, %zu hits / %zu misses, "
              "%zu evictions\n",
              engine.cacheSize(), cs.scoreHits, cs.scoreMisses, cs.evictions);

  if (std::ofstream out(cacheFile); out.good()) {
    engine.saveCache(out);
    std::printf("saved the score cache to %s — rerun for a warm start\n",
                cacheFile);
  }
  return 0;
}
