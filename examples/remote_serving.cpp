// Remote serving: a real client/host pair over loopback TCP in one
// process. The host wraps a PlanServer over a 2-shard ShardedPlanEngine
// behind a listening socket; two RemotePlanClient threads connect and
// submit mixed traffic through the wire codec. Winners are bit-identical
// to a local serial optimizePlan, repeats are served from the far side's
// full-result cache with zero new orchestrations, and the clients see
// those cache hits in the EngineStats that crossed the wire back.
//
//   $ ./remote_serving
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "src/core/application.hpp"
#include "src/opt/optimizer.hpp"
#include "src/serve/plan_service.hpp"
#include "src/serve/sharded_engine.hpp"

int main() {
  using namespace fsw;

  Application pipeline;
  pipeline.addService(2.0, 0.5, "decode");
  pipeline.addService(6.0, 0.3, "detect");
  pipeline.addService(1.5, 1.0, "caption");
  pipeline.addService(3.0, 1.8, "upscale");

  Application query;
  query.addService(1.0, 0.6, "parse");
  query.addService(5.0, 0.4, "match");
  query.addService(2.5, 0.9, "rank");
  query.addPrecedence(0, 1);

  // Host side: shard the engine, serve it asynchronously, listen on an
  // ephemeral loopback port.
  ShardedPlanEngine sharded{ShardedEngineConfig{.shards = 2}};
  ServiceHostConfig hc;
  hc.serverConfig.solver = &sharded;
  hc.serverConfig.maxBatch = 4;
  // The epoll reactor is the default transport; give it the admission
  // gate and idle reaper a production front door would run with.
  hc.transport.maxConnections = 32;
  hc.transport.idleTimeoutMs = 5000;
  PlanServiceHost host{hc};
  std::printf("host: %zu shards behind 127.0.0.1:%u\n\n",
              sharded.shardCount(), host.port());

  // Client side: two clients (the reactor multiplexes both connections
  // onto its fixed event-loop pool) submitting every (app, model,
  // objective) pair — twice, so the second pass is warm-cache repeats.
  std::vector<PlanRequest> requests;
  for (const auto* app : {&pipeline, &query}) {
    for (const CommModel m : kAllModels) {
      for (const Objective obj : {Objective::Period, Objective::Latency}) {
        requests.push_back({*app, m, obj});
      }
    }
  }

  const auto runClient = [&](const char* tag) {
    RemotePlanClient client("127.0.0.1", host.port());
    for (int pass = 0; pass < 2; ++pass) {
      double total = 0.0;
      std::size_t warm = 0;
      for (const PlanRequest& request : requests) {
        const OptimizedPlan plan = client.optimize(request);
        total += plan.value;
        warm += plan.stats.resultCacheHits;
      }
      std::printf(
          "  client %s pass %d: %zu plans, checksum %.4f, "
          "%zu served from the remote result cache\n",
          tag, pass + 1, requests.size(), total, warm);
    }
  };
  std::thread a(runClient, "A");
  std::thread b(runClient, "B");
  a.join();
  b.join();

  const auto hs = host.stats();
  const auto ss = sharded.stats();
  std::printf("\nhost: %zu connections, %zu requests, %zu errors\n",
              hs.connections, hs.requests, hs.errors);
  std::printf("shards: requests per shard =");
  for (const std::size_t n : ss.perShard) std::printf(" %zu", n);
  std::printf("; result-cache hits %zu, cross-shard bound aborts %zu\n",
              ss.results.hits, ss.work.boundAborts);
  return 0;
}
