// Async serving: a PlanServer over a named portfolio, with the full-result
// cache persisted across runs. Requests are submitted one at a time (with
// priorities and duplicate traffic), results stream through onResult as
// their batches complete, and the winners land in std::futures.
//
//   $ ./async_serving            # cold start
//   $ ./async_serving            # warm start: repeats served from
//                                # fsw_results.txt with zero orchestrations
#include <cstdio>
#include <exception>
#include <fstream>
#include <future>
#include <mutex>
#include <vector>

#include "src/core/application.hpp"
#include "src/serve/plan_server.hpp"

int main() {
  using namespace fsw;

  // Two tenants of a serving process.
  Application ingest;
  ingest.addService(2.0, 0.5, "dedupe");
  ingest.addService(6.0, 0.3, "classify");
  ingest.addService(1.5, 1.0, "annotate");
  ingest.addService(3.0, 1.8, "enrich");

  Application search;
  search.addService(1.0, 0.6, "tokenize");
  search.addService(5.0, 0.4, "retrieve");
  search.addService(2.5, 0.9, "rerank");
  search.addService(4.0, 1.2, "expand");
  search.addService(0.5, 1.0, "render");
  search.addPrecedence(0, 1);  // tokenize before retrieve

  // One engine for the process lifetime; a previous run's result dump
  // warms its full-result store.
  PlanEngine engine;
  const char* resultsFile = "fsw_results.txt";
  if (std::ifstream in(resultsFile); in.good()) {
    try {
      engine.loadResults(in);
      std::printf("warm start: loaded %zu full results from %s\n\n",
                  engine.resultCacheSize(), resultsFile);
    } catch (const std::exception& e) {
      // A dump from an older format version is rejected cleanly — serve
      // cold and overwrite it on exit rather than crash-looping.
      std::printf("cold start: ignoring stale %s (%s)\n\n", resultsFile,
                  e.what());
    }
  } else {
    std::printf("cold start (no %s yet)\n\n", resultsFile);
  }

  // The async front end: bounded admission, batched draining, streaming.
  std::mutex printMu;
  ServerConfig sc;
  sc.engine = &engine;
  sc.maxQueueDepth = 64;
  sc.maxBatch = 4;
  sc.onResult = [&](const PlanRequest& r, const OptimizedPlan& plan) {
    const std::lock_guard<std::mutex> lock(printMu);
    std::printf("  stream: %-8s %-8s value=%-9.4f %-16s%s\n",
                name(r.model).data(), name(r.objective).data(), plan.value,
                plan.strategy.c_str(),
                plan.stats.resultCacheHits != 0 ? "  [result-cache]" : "");
  };
  PlanServer server{sc};

  // Mixed traffic: every (app, model, objective) pair, the period requests
  // marked urgent, plus duplicate traffic that coalesces or hits the
  // result cache instead of re-solving.
  std::vector<PlanRequest> requests;
  for (const auto* app : {&ingest, &search}) {
    for (const CommModel m : kAllModels) {
      for (const Objective obj : {Objective::Period, Objective::Latency}) {
        requests.push_back({*app, m, obj});
      }
    }
  }
  const std::size_t unique = requests.size();
  for (std::size_t i = 0; i < unique; i += 2) requests.push_back(requests[i]);

  std::printf("streaming %zu submits (%zu unique keys):\n", requests.size(),
              unique);
  std::vector<std::future<OptimizedPlan>> futures;
  futures.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const int priority =
        requests[i].objective == Objective::Period ? 1 : 0;  // urgent tier
    futures.push_back(server.submit(requests[i], priority));
  }
  server.drain();  // every admitted solve has completed and streamed

  double total = 0.0;
  for (auto& f : futures) total += f.get().value;
  const auto st = server.stats();
  std::printf("\nserver: %zu submitted = %zu admitted + %zu coalesced; "
              "%zu batches, %zu solves, checksum %.4f\n",
              st.submitted, st.admitted, st.coalesced, st.batches,
              st.completed, total);
  const auto rc = engine.resultCacheStats();
  std::printf("result cache: %zu entries, %zu hits / %zu misses\n",
              engine.resultCacheSize(), rc.hits, rc.misses);

  // Persist the full-result store (budgeted) for the next run's warm start.
  if (std::ofstream out(resultsFile); out.good()) {
    engine.saveResults(out, /*budget=*/64);
    std::printf("saved full results to %s — rerun for a warm start\n",
                resultsFile);
  }
  return 0;
}
