// Replays the paper's three counter-examples end to end and prints the
// schedules behind the headline numbers — a guided tour of Sections 2.3 and
// 3 / Appendix B.
//
//   $ ./counterexample_explorer
#include <cstdio>

#include "src/core/cost_model.hpp"
#include "src/io/dot.hpp"
#include "src/io/gantt.hpp"
#include "src/opt/chain.hpp"
#include "src/sched/orchestrator.hpp"
#include "src/sched/outorder.hpp"
#include "src/sched/overlap.hpp"
#include "src/workload/paper_instances.hpp"

int main() {
  using namespace fsw;

  {
    std::printf("== Section 2.3: one example, three models ==\n");
    const auto pi = sec23Example();
    for (const CommModel m : kAllModels) {
      const auto orch = orchestrate(pi.app, pi.graph, m, Objective::Period);
      std::printf("%s period: %.6f (lower bound %.2f)\n", name(m).data(),
                  orch.result.value, orch.lowerBound);
    }
    const auto inorder =
        orchestrate(pi.app, pi.graph, CommModel::InOrder, Objective::Period);
    std::printf("\nINORDER schedule at 23/3 (idle is shared across C1, C4, "
                "C5):\n%s\n",
                inorder.result.ol.dump().c_str());
    GanttOptions gopt;
    gopt.quantum = 1.0 / 3.0;
    std::printf("%s\n", renderGantt(pi.app, inorder.result.ol, gopt).c_str());
  }

  {
    std::printf("== B.1: communication changes the optimal plan shape ==\n");
    const auto pi = counterexampleB1();
    const auto chain = counterexampleB1ChainGraph();
    std::printf("chain plan:    no-comm period %.2f, OVERLAP period %.2f\n",
                noCommPeriodValue(pi.app, chain),
                CostModel(pi.app, chain).periodLowerBound(CommModel::Overlap));
    std::printf("two-star plan: no-comm period %.2f, OVERLAP period %.2f\n\n",
                noCommPeriodValue(pi.app, pi.graph),
                CostModel(pi.app, pi.graph)
                    .periodLowerBound(CommModel::Overlap));
  }

  {
    std::printf("== B.2: multi-port beats one-port (latency) ==\n");
    const auto pi = counterexampleB2();
    const auto fluid = overlapLatencyFluid(pi.app, pi.graph);
    const auto onePort =
        orchestrate(pi.app, pi.graph, CommModel::InOrder, Objective::Latency);
    std::printf("multi-port latency: %.4f; best one-port found: %.4f\n",
                fluid.latency(), onePort.result.value);
    std::printf("graph:\n%s\n", toDot(pi.app, pi.graph).c_str());
  }

  {
    std::printf("== B.3: multi-port beats one-port (period) ==\n");
    const auto pi = counterexampleB3();
    const auto multi = overlapPeriodSchedule(pi.app, pi.graph);
    OutorderOptions opt;
    opt.restarts = 32;
    opt.seed = 3;
    const bool feasible12 =
        onePortOverlapRepairAtLambda(pi.app, pi.graph, 12.0, opt).has_value();
    const auto ol13 = onePortOverlapRepairAtLambda(pi.app, pi.graph, 13.0, opt);
    std::printf("multi-port period: %.4f\n", multi.period());
    std::printf("one-port at 12: %s; at 13: %s\n",
                feasible12 ? "feasible?!" : "infeasible (as proven)",
                ol13 ? "feasible" : "not found");
  }
  return 0;
}
