// A classical streaming workflow: a video-analytics pipeline with precedence
// constraints. Several of the paper's results hold for "regular" workflows
// (selectivity 1) too — this example exercises that regime plus mild
// filtering, with a precedence DAG the execution graph must contain.
//
//   decode -> detect -> {track, classify} -> fuse -> encode
//
//   $ ./video_pipeline
#include <cstdio>

#include "src/core/application.hpp"
#include "src/core/cost_model.hpp"
#include "src/oplist/validate.hpp"
#include "src/opt/candidate.hpp"
#include "src/opt/optimizer.hpp"
#include "src/sched/orchestrator.hpp"
#include "src/sim/replay.hpp"

int main() {
  using namespace fsw;

  Application app;
  const NodeId decode = app.addService(4.0, 1.0, "decode");
  const NodeId detect = app.addService(6.0, 0.4, "detect");   // drops frames
  const NodeId track = app.addService(3.0, 1.0, "track");
  const NodeId classify = app.addService(8.0, 0.8, "classify");
  const NodeId fuse = app.addService(2.0, 1.0, "fuse");
  const NodeId encode = app.addService(5.0, 1.0, "encode");
  app.addPrecedence(decode, detect);
  app.addPrecedence(detect, track);
  app.addPrecedence(detect, classify);
  app.addPrecedence(track, fuse);
  app.addPrecedence(classify, fuse);
  app.addPrecedence(fuse, encode);

  std::printf("video_pipeline: %zu stages, %zu precedence constraints\n\n",
              app.size(), app.precedences().size());

  // The precedence DAG itself is a valid execution graph; orchestrate it.
  ExecutionGraph g(app.size());
  for (const auto& e : app.precedences()) g.addEdge(e.from, e.to);
  const CostModel cm(app, g);

  std::printf("%-10s %-14s %-14s %-10s %-12s\n", "model", "period bound",
              "period", "optimal?", "sim check");
  for (const CommModel m : kAllModels) {
    const auto orch = orchestrate(app, g, m, Objective::Period);
    const auto sim = replayOperationList(app, g, orch.result.ol, m, 48);
    std::printf("%-10s %-14.4f %-14.4f %-10s %-12s\n", name(m).data(),
                orch.lowerBound, orch.result.value,
                orch.provablyOptimal() ? "yes" : "unknown",
                sim.ok ? "ok" : "VIOLATION");
  }

  const auto lat = orchestrate(app, g, CommModel::InOrder, Objective::Latency);
  std::printf("\nframe latency on the precedence DAG: %.4f (critical path "
              "%.4f)\n",
              lat.result.value, cm.latencyLowerBound());

  // Can extra filtering edges beat the precedence DAG? Let the engine
  // search plans whose closure still contains the precedences (candidate
  // sources that need an unconstrained application, like the chain
  // greedies, drop out of the portfolio automatically).
  const auto best = optimizePlan(app, CommModel::Overlap, Objective::Period);
  std::printf("\nbest OVERLAP plan found: period %.4f (DAG as-is: %.4f, "
              "strategy %s; %zu/%zu sources applicable)\n",
              best.value,
              orchestrate(app, g, CommModel::Overlap, Objective::Period)
                  .result.value,
              best.strategy.c_str(), best.stats.sourcesRun,
              CandidateRegistry::builtin().size());
  const auto rep = validate(app, best.plan.graph, best.plan.ol,
                            CommModel::Overlap);
  std::printf("plan validity: %s\n", rep.valid ? "valid" : "INVALID");
  return 0;
}
