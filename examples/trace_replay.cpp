// Trace replay: a dynamic workload driven through a two-host fleet.
//
// The static examples hand the serving stack one application at a time.
// Real deployments evolve: operators drift their costs, pipelines gain and
// lose stages, hosts die mid-stream. This demo generates a small bursty
// trace (src/workload/trace.hpp), replays it through a PlanRouter fleet
// with the ScenarioDriver (src/sim/scenario_driver.hpp), and prints what
// the driver measures: arrival-to-result tail latency, warm-start hits,
// and — the contract everything else rests on — that every re-solved
// winner is bit-identical to a cold serial solve of the same mutated
// application, through drift, structural edits, and a host kill.
//
//   $ ./trace_replay
#include <cstdio>
#include <memory>
#include <vector>

#include "src/serve/bound_board.hpp"
#include "src/serve/plan_router.hpp"
#include "src/serve/plan_service.hpp"
#include "src/serve/result_store.hpp"
#include "src/sim/scenario_driver.hpp"
#include "src/workload/trace.hpp"

int main() {
  using namespace fsw;

  // A small bursty trace: 3 streams, ~80 events, one mid-trace host kill.
  TraceSpec spec;
  spec.events = 80;
  spec.streams = 3;
  spec.hosts = 2;
  spec.hostKills = 1;
  spec.burstProb = 0.35;
  spec.workload.n = 4;
  const Trace trace = generateTrace(spec, /*seed=*/42);

  std::size_t arrivals = 0, drifts = 0, edits = 0, hostEvents = 0;
  for (const TraceEvent& e : trace.events) {
    switch (e.kind) {
      case TraceEventKind::Arrival: ++arrivals; break;
      case TraceEventKind::ParamDrift: ++drifts; break;
      case TraceEventKind::OperatorAdd:
      case TraceEventKind::OperatorRemove: ++edits; break;
      default: ++hostEvents; break;
    }
  }
  std::printf("trace: %zu events (%zu arrivals, %zu drifts, %zu edits, "
              "%zu host events), %zu wire bytes\n\n",
              trace.events.size(), arrivals, drifts, edits, hostEvents,
              encodeTrace(trace).size());

  // The fleet: two hosts behind a router, sharing a result store (warm
  // winners travel between hosts) and a bound board (near-key incumbents
  // seed re-solves after drift).
  BoundBoard board{1 << 10};
  ResultStoreHost store{ResultStoreConfig{}};
  std::vector<std::unique_ptr<RemoteResultStore>> storeClients;
  std::vector<std::unique_ptr<PlanServiceHost>> hosts;
  std::vector<std::uint16_t> ports;
  RouterConfig rc;
  const auto hostConfig = [&](std::size_t h) {
    ServiceHostConfig hc;
    hc.serverConfig.engineConfig.boundBoard = &board;
    hc.serverConfig.engineConfig.resultStore = storeClients[h].get();
    return hc;
  };
  for (std::size_t h = 0; h < 2; ++h) {
    storeClients.push_back(
        std::make_unique<RemoteResultStore>("127.0.0.1", store.port()));
    hosts.push_back(std::make_unique<PlanServiceHost>(hostConfig(h)));
    ports.push_back(hosts.back()->port());
    rc.hosts.push_back(RouterHost{"127.0.0.1", ports.back()});
  }
  PlanRouter router{rc};

  // The driver submits each derived request through the router, kills and
  // revives fleet slots on host events, and certifies every winner against
  // a memoized cold serial solve.
  ScenarioConfig sc;
  sc.maxInFlight = 4;
  sc.board = &board;
  sc.store = &store;
  sc.router = &router;
  ScenarioDriver driver{
      sc, [&](const PlanRequest& r) { return router.submit(r); },
      [&](std::uint32_t h) { hosts[h].reset(); },
      [&](std::uint32_t h) {
        ServiceHostConfig hc = hostConfig(h);
        hc.port = ports[h];
        hosts[h] = std::make_unique<PlanServiceHost>(hc);
        (void)router.reconnect();
      }};
  const ScenarioReport report = driver.replay(trace);

  std::printf("replayed %zu solves (%zu distinct keys cold-certified)\n",
              report.solves, report.coldRefSolves);
  std::printf("latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, max %.2f ms\n",
              report.p50Ms, report.p95Ms, report.p99Ms, report.maxMs);
  std::printf("warmth:  %zu exact store hits, %zu near hits "
              "(%zu board + %zu store), %zu bound aborts\n",
              report.storeExactHits, report.nearHits(), report.boardNearHits,
              report.storeNearHits, report.boundAborts);
  std::printf("fleet:   %zu kill(s), %zu revive(s), %zu failover(s)\n",
              report.hostKills, report.hostRevives, report.routerFailovers);
  std::printf("winners: %zu/%zu bit-identical to the cold serial solve — %s\n",
              report.certified, report.solves,
              report.allIdentical() ? "identical" : "DIVERGED");
  for (const std::string& note : report.mismatchNotes) {
    std::printf("  MISMATCH: %s\n", note.c_str());
  }
  return report.allIdentical() ? 0 : 1;
}
