// Web-service query optimization — the scenario that motivated the filtering
// framework (Srivastava et al. [1], the paper's Section 1): a query is a
// conjunction of expensive web-service predicates over a stream of tuples;
// each predicate drops a fraction of the tuples. The scheduler must decide
// which predicate feeds which (extra filtering edges) and how to lay out the
// communications.
//
// This example compares, for a realistic predicate mix:
//   * the classical no-communication plan of [1];
//   * the communication-aware plan, under all three models;
//   * the naive greedy runtime (no orchestration) as a baseline.
//
//   $ ./web_service_query
#include <cstdio>

#include "src/core/application.hpp"
#include "src/core/cost_model.hpp"
#include "src/opt/chain.hpp"
#include "src/opt/optimizer.hpp"
#include "src/sim/greedy.hpp"

int main() {
  using namespace fsw;

  // Predicates of a product-search query over web services: (cost per
  // tuple-batch, fraction of tuples surviving).
  Application app;
  app.addService(1.0, 0.20, "in_stock");        // cheap, very selective
  app.addService(2.5, 0.60, "price_range");
  app.addService(8.0, 0.35, "review_score");    // remote call, selective
  app.addService(12.0, 0.90, "image_match");    // expensive, weak filter
  app.addService(3.0, 0.75, "shipping_zone");
  app.addService(20.0, 1.00, "personalize");    // expensive, no filtering
  app.addService(2.0, 1.50, "expand_variants"); // joins in variants: expands

  std::printf("web_service_query: %zu predicates\n\n", app.size());

  // The classical plan ignores communication: chain filters by c/(1-sigma).
  const auto noComm = noCommBaselineGraph(app);
  std::printf("no-comm optimal plan [1]: period %.4f if communication were "
              "free\n",
              noCommPeriodValue(app, noComm));
  std::printf("  ... but its OVERLAP period with communications: %.4f\n\n",
              CostModel(app, noComm).periodLowerBound(CommModel::Overlap));

  OptimizerOptions opt;
  opt.exactForestMaxN = 7;
  opt.threads = 0;  // plan search runs on the shared engine pool
  for (const CommModel m : kAllModels) {
    const auto best = optimizePlan(app, m, Objective::Period, opt);
    std::printf("%-9s comm-aware plan: period %.4f (throughput %.4f "
                "batches/unit, strategy %s)\n",
                name(m).data(), best.value, 1.0 / best.value,
                best.strategy.c_str());
  }

  // What a naive runtime achieves without an orchestrator.
  const auto best = optimizePlan(app, CommModel::InOrder, Objective::Period,
                                 opt);
  const auto naive = simulateGreedyInOrder(
      app, best.plan.graph, PortOrders::canonical(best.plan.graph), 128);
  std::printf("\ngreedy runtime on the same graph (canonical orders): "
              "period %.4f\n",
              naive.measuredPeriod);
  std::printf("orchestration gain over greedy: %.1f%%\n",
              100.0 * (naive.measuredPeriod - best.value) /
                  naive.measuredPeriod);

  // Response-time view: the latency-optimal plan differs from the
  // throughput-optimal one.
  const auto lat = optimizePlan(app, CommModel::InOrder, Objective::Latency,
                                opt);
  std::printf("\nlatency-optimal plan: response time %.4f (vs %.4f on the "
              "throughput-optimal plan)\n",
              lat.value, best.plan.ol.latency());
  return 0;
}
