#include <gtest/gtest.h>

#include "src/core/cost_model.hpp"
#include "src/sched/inorder.hpp"
#include "src/sched/overlap.hpp"
#include "src/sim/greedy.hpp"
#include "src/sim/replay.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_instances.hpp"

namespace fsw {
namespace {

TEST(Replay, MeasuredPeriodEqualsLambdaOnValidLists) {
  Prng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    WorkloadSpec spec;
    spec.n = 6;
    const auto app = randomApplication(spec, rng);
    const auto g = randomForest(app, rng);
    const auto ol = overlapPeriodSchedule(app, g);
    const auto sim = replayOperationList(app, g, ol, CommModel::Overlap, 32);
    EXPECT_TRUE(sim.ok) << "trial " << trial;
    EXPECT_NEAR(sim.measuredPeriod, ol.period(), 1e-9) << "trial " << trial;
    EXPECT_GE(sim.firstLatency, ol.period() - 1e-9);
    EXPECT_GT(sim.makespan, sim.firstLatency - 1e-9);
  }
}

TEST(Replay, HandlesSingleDataSet) {
  const auto pi = sec23Example();
  const auto ol = overlapPeriodSchedule(pi.app, pi.graph);
  const auto sim =
      replayOperationList(pi.app, pi.graph, ol, CommModel::Overlap, 1);
  EXPECT_TRUE(sim.ok);
  EXPECT_DOUBLE_EQ(sim.measuredPeriod, ol.period());
}

TEST(Replay, ZeroDataSetsReturnsNotOk) {
  const auto pi = sec23Example();
  const auto ol = overlapPeriodSchedule(pi.app, pi.graph);
  const auto sim =
      replayOperationList(pi.app, pi.graph, ol, CommModel::Overlap, 0);
  EXPECT_FALSE(sim.ok);
}

TEST(GreedyInOrder, MatchesBusyBoundOnSingleService) {
  Application app;
  app.addService(2.0, 0.5);
  ExecutionGraph g(1);
  const auto sim =
      simulateGreedyInOrder(app, g, PortOrders::canonical(g), 64);
  ASSERT_TRUE(sim.ok);
  EXPECT_NEAR(sim.measuredPeriod, 3.5, 1e-9);  // 1 + 2 + 0.5 serialized
  EXPECT_NEAR(sim.firstLatency, 3.5, 1e-9);
}

TEST(GreedyInOrder, PeriodAtLeastBusyBound) {
  Prng rng(42);
  for (int trial = 0; trial < 8; ++trial) {
    WorkloadSpec spec;
    spec.n = 6;
    const auto app = randomApplication(spec, rng);
    const auto g = randomForest(app, rng);
    const auto sim =
        simulateGreedyInOrder(app, g, PortOrders::canonical(g), 96);
    ASSERT_TRUE(sim.ok) << "trial " << trial;
    const CostModel cm(app, g);
    EXPECT_GE(sim.measuredPeriod,
              cm.periodLowerBound(CommModel::InOrder) - 1e-6)
        << "trial " << trial;
  }
}

TEST(GreedyInOrder, OrchestratedOrdersHelpOnSec23) {
  // Greedy with the orchestrator's orders performs at least as well as the
  // worst order choice.
  const auto pi = sec23Example();
  auto po = PortOrders::canonical(pi.graph);
  po.setOut(0, {1, 3});
  po.setIn(4, {3, 2});
  const auto good = simulateGreedyInOrder(pi.app, pi.graph, po, 96);
  po.setOut(0, {3, 1});
  po.setIn(4, {2, 3});
  const auto bad = simulateGreedyInOrder(pi.app, pi.graph, po, 96);
  ASSERT_TRUE(good.ok);
  ASSERT_TRUE(bad.ok);
  EXPECT_LE(good.measuredPeriod, bad.measuredPeriod + 1e-9);
}

TEST(GreedyOutOrder, SingleServiceMatchesBound) {
  Application app;
  app.addService(2.0, 0.5);
  ExecutionGraph g(1);
  const auto sim = simulateGreedyOutOrder(app, g, 64);
  ASSERT_TRUE(sim.ok);
  EXPECT_NEAR(sim.measuredPeriod, 3.5, 1e-9);
}

TEST(GreedyOutOrder, PeriodAtLeastBusyBound) {
  Prng rng(43);
  for (int trial = 0; trial < 8; ++trial) {
    WorkloadSpec spec;
    spec.n = 6;
    const auto app = randomApplication(spec, rng);
    const auto g = randomForest(app, rng);
    const auto sim = simulateGreedyOutOrder(app, g, 96);
    ASSERT_TRUE(sim.ok) << "trial " << trial;
    const CostModel cm(app, g);
    EXPECT_GE(sim.measuredPeriod,
              cm.periodLowerBound(CommModel::OutOrder) - 1e-6)
        << "trial " << trial;
  }
}

TEST(GreedyOutOrder, LatencyAtLeastCriticalPath) {
  const auto pi = sec23Example();
  const auto sim = simulateGreedyOutOrder(pi.app, pi.graph, 32);
  ASSERT_TRUE(sim.ok);
  const CostModel cm(pi.app, pi.graph);
  EXPECT_GE(sim.firstLatency, cm.latencyLowerBound() - 1e-9);
}

}  // namespace
}  // namespace fsw
