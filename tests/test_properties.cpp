// Parameterized property sweeps across random instances: the invariants the
// paper's model definitions impose must hold on every instance, every model.
#include <gtest/gtest.h>

#include <tuple>

#include "src/core/cost_model.hpp"
#include "src/oplist/validate.hpp"
#include "src/sched/orchestrator.hpp"
#include "src/sim/replay.hpp"
#include "src/workload/generator.hpp"

namespace fsw {
namespace {

struct Instance {
  Application app;
  ExecutionGraph graph{0};
};

Instance makeInstance(std::uint64_t seed, bool dagShape) {
  Prng rng(seed);
  WorkloadSpec spec;
  spec.n = 6;
  spec.filterFraction = 0.6;
  Instance inst;
  inst.app = randomApplication(spec, rng);
  inst.graph = dagShape ? randomLayeredDag(inst.app, 3, 2, rng)
                        : randomForest(inst.app, rng);
  return inst;
}

OrchestratorOptions fastOpts() {
  OrchestratorOptions opt;
  opt.order.exactCap = 150;
  opt.order.localSearchIters = 60;
  opt.outorder.restarts = 6;
  opt.outorder.bisectSteps = 5;
  opt.outorder.repairIters = 250;
  return opt;
}

using ParamT = std::tuple<std::uint64_t, int, bool>;  // seed, model, dag?

class ModelProperty : public ::testing::TestWithParam<ParamT> {
 protected:
  [[nodiscard]] CommModel model() const {
    return static_cast<CommModel>(std::get<1>(GetParam()));
  }
  [[nodiscard]] Instance instance() const {
    return makeInstance(std::get<0>(GetParam()), std::get<2>(GetParam()));
  }
};

TEST_P(ModelProperty, PeriodOrchestrationIsValidAndAboveBound) {
  const auto inst = instance();
  const CommModel m = model();
  const auto orch =
      orchestrate(inst.app, inst.graph, m, Objective::Period, fastOpts());
  const CostModel cm(inst.app, inst.graph);
  EXPECT_GE(orch.result.value, cm.periodLowerBound(m) - 1e-6);
  const auto rep = validate(inst.app, inst.graph, orch.result.ol, m);
  EXPECT_TRUE(rep.valid) << rep.summary();
}

TEST_P(ModelProperty, ReplayMeasuresExactlyLambda) {
  const auto inst = instance();
  const CommModel m = model();
  const auto orch =
      orchestrate(inst.app, inst.graph, m, Objective::Period, fastOpts());
  const auto sim =
      replayOperationList(inst.app, inst.graph, orch.result.ol, m, 24);
  EXPECT_TRUE(sim.ok);
  EXPECT_NEAR(sim.measuredPeriod, orch.result.value, 1e-6);
}

TEST_P(ModelProperty, LatencyOrchestrationAboveCriticalPath) {
  const auto inst = instance();
  const CommModel m = model();
  const auto orch =
      orchestrate(inst.app, inst.graph, m, Objective::Latency, fastOpts());
  const CostModel cm(inst.app, inst.graph);
  EXPECT_GE(orch.result.value, cm.latencyLowerBound() - 1e-6);
  EXPECT_DOUBLE_EQ(orch.result.ol.latency(), orch.result.value);
}

TEST_P(ModelProperty, OverlapPeriodAlwaysMeetsItsBound) {
  if (model() != CommModel::Overlap) GTEST_SKIP();
  const auto inst = instance();
  const auto orch = orchestrate(inst.app, inst.graph, CommModel::Overlap,
                                Objective::Period, fastOpts());
  EXPECT_TRUE(orch.provablyOptimal());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelProperty,
    ::testing::Combine(::testing::Values(1001, 1002, 1003, 1004, 1005),
                       ::testing::Values(0, 1, 2),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<ParamT>& info) {
      const auto m = static_cast<CommModel>(std::get<1>(info.param));
      return std::string("seed") + std::to_string(std::get<0>(info.param)) +
             std::string(name(m)) +
             (std::get<2>(info.param) ? "Dag" : "Forest");
    });

class DominanceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DominanceProperty, ModelsOrderedByFlexibility) {
  // More flexible models never have larger optimal periods:
  // OVERLAP <= OUTORDER <= INORDER on every execution graph.
  const auto inst = makeInstance(GetParam(), false);
  const auto opts = fastOpts();
  const double overlap = orchestrate(inst.app, inst.graph, CommModel::Overlap,
                                     Objective::Period, opts)
                             .result.value;
  const double outorder = orchestrate(inst.app, inst.graph,
                                      CommModel::OutOrder, Objective::Period,
                                      opts)
                              .result.value;
  const double inorder = orchestrate(inst.app, inst.graph, CommModel::InOrder,
                                     Objective::Period, opts)
                             .result.value;
  EXPECT_LE(overlap, outorder + 1e-6);
  EXPECT_LE(outorder, inorder + 1e-6);
}

TEST_P(DominanceProperty, LatencyEqualAcrossNoOverlapModels) {
  // Latency is a single-data-set regime: INORDER and OUTORDER coincide, and
  // OVERLAP can only help.
  const auto inst = makeInstance(GetParam(), true);
  const auto opts = fastOpts();
  const double inorder = orchestrate(inst.app, inst.graph, CommModel::InOrder,
                                     Objective::Latency, opts)
                             .result.value;
  const double outorder = orchestrate(inst.app, inst.graph,
                                      CommModel::OutOrder, Objective::Latency,
                                      opts)
                              .result.value;
  const double overlap = orchestrate(inst.app, inst.graph, CommModel::Overlap,
                                     Objective::Latency, opts)
                             .result.value;
  EXPECT_NEAR(inorder, outorder, 1e-9);
  EXPECT_LE(overlap, inorder + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DominanceProperty,
                         ::testing::Values(2001, 2002, 2003, 2004, 2005, 2006,
                                           2007, 2008));

}  // namespace
}  // namespace fsw
