// The sharded serving core: consistent-hash routing, N-shard vs 1-engine
// bit-identity (including under concurrent submitters), aggregated stats,
// cross-shard incumbent sharing, and shard-aware persistence — a dump
// saved under one shard count merges into any other.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/io/serialize.hpp"
#include "src/opt/optimizer.hpp"
#include "src/serve/sharded_engine.hpp"
#include "src/workload/generator.hpp"

namespace fsw {
namespace {

OptimizerOptions fastOptions() {
  OptimizerOptions opt;
  opt.exactForestMaxN = 5;
  opt.heuristics.iterations = 400;
  opt.heuristics.restarts = 2;
  opt.orchestrator.order.exactCap = 150;
  opt.orchestrator.outorder.restarts = 6;
  opt.orchestrator.outorder.bisectSteps = 5;
  return opt;
}

/// Mixed traffic across apps, models and objectives (optionally with an
/// identical twin for every request, appended after the unique block).
std::vector<PlanRequest> mixedWorkload(bool duplicated) {
  std::vector<PlanRequest> reqs;
  Prng rng(515);
  for (const std::size_t n : {4u, 5u, 6u}) {
    WorkloadSpec spec;
    spec.n = n;
    spec.precedenceDensity = n == 6 ? 0.25 : 0.0;
    const auto app = randomApplication(spec, rng);
    for (const CommModel m : kAllModels) {
      for (const Objective obj : {Objective::Period, Objective::Latency}) {
        reqs.push_back({app, m, obj, fastOptions()});
      }
    }
  }
  if (duplicated) {
    const std::size_t unique = reqs.size();
    for (std::size_t i = 0; i < unique; ++i) reqs.push_back(reqs[i]);
  }
  return reqs;
}

TEST(ShardedEngine, RoutingIsDeterministicSpreadAndRemapsMinimally) {
  const auto reqs = mixedWorkload(/*duplicated=*/false);
  ShardedPlanEngine sharded{ShardedEngineConfig{.shards = 4}};
  ASSERT_EQ(sharded.shardCount(), 4u);

  std::set<std::size_t> used;
  std::size_t moved = 0;
  for (const auto& r : reqs) {
    const std::string key = sharded.dedupKey(r);
    const std::size_t s4 = ShardedPlanEngine::shardOfKey(key, 4);
    EXPECT_EQ(sharded.shardOf(r), s4);                       // one function
    EXPECT_EQ(ShardedPlanEngine::shardOfKey(key, 4), s4);    // deterministic
    EXPECT_LT(s4, 4u);
    used.insert(s4);
    // Rendezvous property: going 4 -> 5 shards either keeps a key in
    // place or moves it to the NEW shard — never reshuffles between
    // surviving shards.
    const std::size_t s5 = ShardedPlanEngine::shardOfKey(key, 5);
    if (s5 != s4) {
      EXPECT_EQ(s5, 4u) << "key moved between surviving shards";
      ++moved;
    }
  }
  EXPECT_GT(used.size(), 1u);          // the workload actually spreads
  EXPECT_LT(moved, reqs.size());       // and most keys stay put
  EXPECT_EQ(ShardedPlanEngine::shardOfKey("anything", 1), 0u);
}

TEST(ShardedEngine, BatchWinnersAreBitIdenticalToSerialAcrossShardCounts) {
  const auto reqs = mixedWorkload(/*duplicated=*/false);

  std::vector<OptimizedPlan> expected;
  for (const auto& r : reqs) {
    OptimizerOptions serial = r.options;
    serial.threads = 1;
    expected.push_back(optimizePlan(r.app, r.model, r.objective, serial));
  }

  for (const std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
    ShardedPlanEngine sharded{ShardedEngineConfig{.shards = shards}};
    const auto batch = sharded.optimizeBatch(reqs);
    ASSERT_EQ(batch.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      EXPECT_EQ(batch[i].value, expected[i].value)
          << shards << " shards, request " << i;
      EXPECT_EQ(batch[i].strategy, expected[i].strategy)
          << shards << " shards, request " << i;
      EXPECT_EQ(batch[i].surrogate, expected[i].surrogate)
          << shards << " shards, request " << i;
      EXPECT_EQ(graphSignature(batch[i].plan.graph),
                graphSignature(expected[i].plan.graph))
          << shards << " shards, request " << i;
    }
  }
}

TEST(ShardedEngine, ConcurrentSubmittersMatchSerialResults) {
  const auto reqs = mixedWorkload(/*duplicated=*/false);

  std::vector<OptimizedPlan> expected;
  for (const auto& r : reqs) {
    OptimizerOptions serial = r.options;
    serial.threads = 1;
    expected.push_back(optimizePlan(r.app, r.model, r.objective, serial));
  }

  ShardedPlanEngine sharded{ShardedEngineConfig{.shards = 3}};
  const std::size_t kThreads = 4;
  std::vector<std::vector<OptimizedPlan>> got(kThreads);
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        for (std::size_t i = 0; i < reqs.size(); ++i) {
          const auto& r = reqs[(i + t * 7) % reqs.size()];
          got[t].push_back(sharded.optimize(r));
        }
      } catch (...) {
        failed = true;
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_FALSE(failed);

  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const std::size_t j = (i + t * 7) % reqs.size();
      EXPECT_EQ(got[t][i].value, expected[j].value)
          << "thread " << t << " request " << j;
      EXPECT_EQ(got[t][i].strategy, expected[j].strategy)
          << "thread " << t << " request " << j;
    }
  }

  const auto stats = sharded.stats();
  EXPECT_EQ(stats.requests, kThreads * reqs.size());
  std::size_t routed = 0;
  for (const std::size_t n : stats.perShard) routed += n;
  EXPECT_EQ(routed, stats.requests);
}

TEST(ShardedEngine, StatsAggregateSumsAcrossShardsWithoutDoubleCounting) {
  const auto dup = mixedWorkload(/*duplicated=*/true);
  const std::size_t unique = dup.size() / 2;
  ShardedPlanEngine sharded{
      ShardedEngineConfig{.shards = 3, .shard = {.threads = 1}}};
  const auto batch = sharded.optimizeBatch(dup);

  // Identical twins routed to the same shard collapse onto one solve.
  std::size_t crossHits = 0;
  for (const auto& plan : batch) crossHits += plan.stats.crossRequestHits;
  EXPECT_EQ(crossHits, unique);

  const auto stats = sharded.stats();
  EXPECT_EQ(stats.requests, dup.size());
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.work.crossRequestHits, unique);
  EXPECT_GT(stats.work.orchestrated, 0u);
  EXPECT_EQ(stats.perShard.size(), 3u);
  std::size_t routed = 0;
  for (const std::size_t n : stats.perShard) routed += n;
  EXPECT_EQ(routed, dup.size());

  // The per-request counters summed over the returned batch must equal
  // the aggregate snapshot — same numbers, no racing increments.
  EngineStats summed;
  for (const auto& plan : batch) {
    summed.orchestrated += plan.stats.orchestrated;
    summed.boundAborts += plan.stats.boundAborts;
    summed.resultCacheHits += plan.stats.resultCacheHits;
    summed.evictions += plan.stats.evictions;
    summed.sharedHits += plan.stats.sharedHits;
  }
  EXPECT_EQ(stats.work.orchestrated, summed.orchestrated);
  EXPECT_EQ(stats.work.boundAborts, summed.boundAborts);
  EXPECT_EQ(stats.work.resultCacheHits, summed.resultCacheHits);
  EXPECT_EQ(stats.work.evictions, summed.evictions);
  EXPECT_EQ(stats.work.sharedHits, summed.sharedHits);
}

TEST(ShardedEngine, CrossShardBoundBoardPreservesWinnersAndPublishes) {
  // Full-result caching off: repeats re-solve, so the second pass consults
  // the incumbent board that the first pass populated. Winners must stay
  // bit-identical — the board only ever tightens ranks 1+ with the key's
  // own winner value.
  const auto reqs = mixedWorkload(/*duplicated=*/false);
  ShardedEngineConfig cfg;
  cfg.shards = 3;
  cfg.shard.cacheFullResults = false;
  ShardedPlanEngine sharded{cfg};

  const auto first = sharded.optimizeBatch(reqs);
  const auto boardAfterFirst = sharded.stats().bounds;
  EXPECT_GT(boardAfterFirst.published, 0u);
  EXPECT_GT(boardAfterFirst.tightened, 0u);

  const auto second = sharded.optimizeBatch(reqs);
  const auto boardAfterSecond = sharded.stats().bounds;
  EXPECT_GT(boardAfterSecond.hits, 0u);  // the repeats consulted the board
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(second[i].value, first[i].value) << "request " << i;
    EXPECT_EQ(second[i].strategy, first[i].strategy) << "request " << i;
    EXPECT_EQ(second[i].surrogate, first[i].surrogate) << "request " << i;
    EXPECT_EQ(graphSignature(second[i].plan.graph),
              graphSignature(first[i].plan.graph))
        << "request " << i;
    // Down to the operation list's bytes: a board-bounded re-solve must
    // keep the winning schedule bit-exact, not just its value.
    EXPECT_EQ(toString(second[i].plan.ol), toString(first[i].plan.ol))
        << "request " << i;
  }
}

TEST(ShardedEngine, ResultsSavedAs4ShardsLoadAs2AndServeWholesale) {
  const auto reqs = mixedWorkload(/*duplicated=*/false);
  ShardedPlanEngine four{ShardedEngineConfig{.shards = 4}};
  const auto batch = four.optimizeBatch(reqs);

  std::stringstream dump;
  four.saveResults(dump);

  ShardedPlanEngine two{ShardedEngineConfig{.shards = 2}};
  two.loadResults(dump);

  // Every request is served wholesale from the merged dump — the entries
  // re-routed to exactly the shard the 2-shard routing consults.
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto r = two.optimize(reqs[i]);
    EXPECT_EQ(r.stats.resultCacheHits, 1u) << "request " << i;
    EXPECT_EQ(r.stats.orchestrated, 0u) << "request " << i;
    EXPECT_EQ(r.stats.generated, 0u) << "request " << i;
    EXPECT_EQ(r.value, batch[i].value) << "request " << i;
    EXPECT_EQ(r.strategy, batch[i].strategy) << "request " << i;
  }
  EXPECT_EQ(two.stats().results.hits, reqs.size());
}

TEST(ShardedEngine, ScoreCacheSavedAs4ShardsLoadAs2WarmsEveryShard) {
  const auto reqs = mixedWorkload(/*duplicated=*/false);
  ShardedEngineConfig cold;
  cold.shards = 4;
  cold.shard.cacheFullResults = false;
  ShardedPlanEngine four{cold};
  (void)four.optimizeBatch(reqs);

  std::stringstream dump;
  four.saveCache(dump);

  ShardedEngineConfig fresh;
  fresh.shards = 2;
  fresh.shard.cacheFullResults = false;
  ShardedPlanEngine two{fresh};
  two.loadCache(dump);

  // Scores broadcast to every shard, so wherever the 2-shard routing
  // sends a request, its surrogate evaluations are already memoized.
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto r = two.optimize(reqs[i]);
    EXPECT_EQ(r.stats.sharedHits, r.stats.unique) << "request " << i;
  }
}

TEST(ShardedEngine, ShardSetLoadersRejectWrongKindAndHeaders) {
  ShardedPlanEngine sharded{ShardedEngineConfig{.shards = 2}};

  std::stringstream results;
  sharded.saveResults(results);
  EXPECT_THROW(sharded.loadCache(results), std::runtime_error);

  std::stringstream scores;
  sharded.saveCache(scores);
  EXPECT_THROW(sharded.loadResults(scores), std::runtime_error);

  std::stringstream garbage("not a shard set at all");
  EXPECT_THROW(sharded.loadResults(garbage), std::runtime_error);
}

TEST(ShardedEngine, SingleShardDegeneratesToOnePlanEngine) {
  ShardedPlanEngine one{ShardedEngineConfig{.shards = 0}};  // floored to 1
  EXPECT_EQ(one.shardCount(), 1u);
  PlanRequest req;
  Prng rng(7);
  WorkloadSpec spec;
  spec.n = 4;
  req.app = randomApplication(spec, rng);
  req.options = fastOptions();
  const auto direct = one.shard(0).dedupKey(req);
  EXPECT_EQ(one.dedupKey(req), direct);
  EXPECT_EQ(one.shardOf(req), 0u);
  const auto plan = one.optimize(req);
  EXPECT_TRUE(std::isfinite(plan.value));
  EXPECT_EQ(one.stats().requests, 1u);
}

}  // namespace
}  // namespace fsw
