#include <gtest/gtest.h>

#include "src/core/cost_model.hpp"
#include "src/oplist/validate.hpp"
#include "src/sched/overlap.hpp"
#include "src/sim/replay.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_instances.hpp"

namespace fsw {
namespace {

TEST(OverlapPeriod, AchievesLowerBoundOnChain) {
  Application app;
  app.addService(2.0, 0.5);
  app.addService(3.0, 1.5);
  app.addService(1.0, 1.0);
  const auto g = ExecutionGraph::chain({0, 1, 2});
  const auto ol = overlapPeriodSchedule(app, g);
  const CostModel cm(app, g);
  EXPECT_DOUBLE_EQ(ol.period(), cm.periodLowerBound(CommModel::Overlap));
  const auto rep = validate(app, g, ol, CommModel::Overlap);
  EXPECT_TRUE(rep.valid) << rep.summary();
}

TEST(OverlapPeriod, AchievesLowerBoundOnRandomGraphs) {
  Prng rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    WorkloadSpec spec;
    spec.n = 7;
    const auto app = randomApplication(spec, rng);
    const auto g = randomForest(app, rng);
    const auto ol = overlapPeriodSchedule(app, g);
    const CostModel cm(app, g);
    EXPECT_NEAR(ol.period(), cm.periodLowerBound(CommModel::Overlap), 1e-9);
    const auto rep = validate(app, g, ol, CommModel::Overlap);
    EXPECT_TRUE(rep.valid) << "trial " << trial << ": " << rep.summary();
  }
}

TEST(OverlapPeriod, AchievesLowerBoundOnDags) {
  Prng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    WorkloadSpec spec;
    spec.n = 8;
    const auto app = randomApplication(spec, rng);
    const auto g = randomLayeredDag(app, 3, 3, rng);
    const auto ol = overlapPeriodSchedule(app, g);
    const CostModel cm(app, g);
    EXPECT_NEAR(ol.period(), cm.periodLowerBound(CommModel::Overlap), 1e-9);
    const auto rep = validate(app, g, ol, CommModel::Overlap);
    EXPECT_TRUE(rep.valid) << "trial " << trial << ": " << rep.summary();
  }
}

TEST(OverlapPeriod, ReplayMatchesAnalytic) {
  const auto pi = counterexampleB1();
  const auto ol = overlapPeriodSchedule(pi.app, pi.graph);
  EXPECT_NEAR(ol.period(), 100.0, 1e-6);
  const auto sim =
      replayOperationList(pi.app, pi.graph, ol, CommModel::Overlap, 16);
  EXPECT_TRUE(sim.ok);
  EXPECT_NEAR(sim.measuredPeriod, ol.period(), 1e-6);
}

TEST(OverlapLatencyFluid, MatchesSerialOnAChain) {
  Application app;
  app.addService(2.0, 0.5);
  app.addService(3.0, 1.0);
  const auto g = ExecutionGraph::chain({0, 1});
  const auto ol = overlapLatencyFluid(app, g);
  // in(1) + c(2) + comm(0.5) + c(1.5) + out(0.5) = 5.5.
  EXPECT_NEAR(ol.latency(), 5.5, 1e-9);
  const auto rep = validate(app, g, ol, CommModel::Overlap);
  EXPECT_TRUE(rep.valid) << rep.summary();
}

TEST(OverlapLatencyFluid, B2Achieves20) {
  const auto pi = counterexampleB2();
  const auto ol = overlapLatencyFluid(pi.app, pi.graph);
  EXPECT_NEAR(ol.latency(), 20.0, 1e-6);
  const auto rep = validate(pi.app, pi.graph, ol, CommModel::Overlap);
  EXPECT_TRUE(rep.valid) << rep.summary();
}

TEST(OverlapLatencyFluid, ValidOnRandomDags) {
  Prng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    WorkloadSpec spec;
    spec.n = 9;
    const auto app = randomApplication(spec, rng);
    const auto g = randomLayeredDag(app, 3, 3, rng);
    const auto ol = overlapLatencyFluid(app, g);
    const auto rep = validate(app, g, ol, CommModel::Overlap);
    EXPECT_TRUE(rep.valid) << "trial " << trial << ": " << rep.summary();
    const CostModel cm(app, g);
    EXPECT_GE(ol.latency(), cm.latencyLowerBound() - 1e-9);
  }
}

}  // namespace
}  // namespace fsw
