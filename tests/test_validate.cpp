#include <gtest/gtest.h>

#include "src/oplist/validate.hpp"
#include "src/workload/paper_instances.hpp"

namespace fsw {
namespace {

TEST(WrappedOverlap, DisjointWithinPeriod) {
  EXPECT_FALSE(wrappedOverlap(0, 1, 1, 1, 4));
  EXPECT_FALSE(wrappedOverlap(1, 1, 0, 1, 4));
}

TEST(WrappedOverlap, PlainOverlap) {
  EXPECT_TRUE(wrappedOverlap(0, 2, 1, 2, 10));
  EXPECT_TRUE(wrappedOverlap(1, 2, 0, 2, 10));
}

TEST(WrappedOverlap, OverlapAcrossPeriodBoundary) {
  // [3, 5) mod 4 wraps to [3, 4) + [0, 1): collides with [0, 1)... shifted.
  EXPECT_TRUE(wrappedOverlap(3, 2, 0.5, 1, 4));
  EXPECT_TRUE(wrappedOverlap(0.5, 1, 3, 2, 4));
}

TEST(WrappedOverlap, DistantAbsoluteTimesStillCollideModLambda) {
  // [0, 1) and [7, 8) mod 7 = [0, 1): collision.
  EXPECT_TRUE(wrappedOverlap(0, 1, 7, 1, 7));
  // [0, 1) and [8, 9) mod 7 = [1, 2): fine.
  EXPECT_FALSE(wrappedOverlap(0, 1, 8, 1, 7));
}

TEST(WrappedOverlap, TouchingEndpointsDoNotOverlap) {
  EXPECT_FALSE(wrappedOverlap(0, 3, 3, 4, 7));
}

TEST(WrappedOverlap, ZeroDurationNeverOverlaps) {
  EXPECT_FALSE(wrappedOverlap(1, 0, 0, 7, 7));
  EXPECT_FALSE(wrappedOverlap(0, 7, 1, 0, 7));
}

TEST(WrappedOverlap, FullPeriodWindowsCollide) {
  EXPECT_TRUE(wrappedOverlap(0, 7, 3, 1, 7));
}

TEST(ActiveInstances, SingleInstanceWithinWindow) {
  EXPECT_EQ(activeInstances(0, 1, 0.5, 4), 1);
  EXPECT_EQ(activeInstances(0, 1, 1.5, 4), 0);
}

TEST(ActiveInstances, FullPeriodDurationAlwaysOne) {
  for (double t : {0.1, 1.0, 2.9, 3.999}) {
    EXPECT_EQ(activeInstances(1.0, 4.0, t, 4.0), 1) << t;
  }
}

TEST(ActiveInstances, LongDurationDoubleCounts) {
  // Duration 6 in a period of 4: two instances overlap for 2 time units.
  EXPECT_EQ(activeInstances(0, 6, 1.0, 4), 2);
  EXPECT_EQ(activeInstances(0, 6, 3.0, 4), 1);
}

TEST(ActiveInstances, ZeroDuration) {
  EXPECT_EQ(activeInstances(0, 0, 0.0, 4), 0);
}

class ValidateFixture : public ::testing::Test {
 protected:
  ValidateFixture() : pi_(sec23Example()) {}

  /// A correct OUTORDER-valid lambda-7 list to mutate.
  OperationList goodOl() const {
    OperationList ol(5, 7.0);
    ol.setCalc(0, 1, 5);
    ol.setCalc(1, 6, 10);
    ol.setCalc(2, 11, 15);
    ol.setCalc(3, 8, 12);
    ol.setCalc(4, 16, 20);
    ol.setComm(kWorld, 0, 0, 1);
    ol.setComm(0, 1, 5, 6);
    ol.setComm(0, 3, 6, 7);
    ol.setComm(1, 2, 10, 11);
    ol.setComm(2, 4, 15, 16);
    ol.setComm(3, 4, 14, 15);
    ol.setComm(4, kWorld, 20, 21);
    return ol;
  }

  PaperInstance pi_;
};

TEST_F(ValidateFixture, GoodListPasses) {
  const auto rep = validate(pi_.app, pi_.graph, goodOl(), CommModel::OutOrder);
  EXPECT_TRUE(rep.valid) << rep.summary();
}

TEST_F(ValidateFixture, MissingCommunicationFails) {
  OperationList ol(5, 7.0);
  // Only computations, no communications at all.
  for (NodeId i = 0; i < 5; ++i) ol.setCalc(i, 0, 4);
  const auto rep = validate(pi_.app, pi_.graph, ol, CommModel::OutOrder);
  EXPECT_FALSE(rep.valid);
}

TEST_F(ValidateFixture, WrongCalcDurationFails) {
  auto ol = goodOl();
  ol.setCalc(0, 1, 4.5);  // Ccomp is 4
  EXPECT_FALSE(validate(pi_.app, pi_.graph, ol, CommModel::OutOrder).valid);
}

TEST_F(ValidateFixture, WrongCommDurationFailsOnePort) {
  auto ol = goodOl();
  ol.setComm(0, 1, 5, 6.5);  // volume is 1
  EXPECT_FALSE(validate(pi_.app, pi_.graph, ol, CommModel::OutOrder).valid);
}

TEST_F(ValidateFixture, CommBeforeCalcEndsFails) {
  auto ol = goodOl();
  ol.setComm(0, 1, 4.5, 5.5);  // C1's calc ends at 5
  EXPECT_FALSE(validate(pi_.app, pi_.graph, ol, CommModel::OutOrder).valid);
}

TEST_F(ValidateFixture, CalcBeforeCommArrivesFails) {
  auto ol = goodOl();
  ol.setCalc(1, 5.5, 9.5);  // C2's input arrives at 6
  EXPECT_FALSE(validate(pi_.app, pi_.graph, ol, CommModel::OutOrder).valid);
}

TEST_F(ValidateFixture, NonPositiveLambdaFails) {
  auto ol = goodOl();
  ol.setLambda(0.0);
  EXPECT_FALSE(validate(pi_.app, pi_.graph, ol, CommModel::OutOrder).valid);
}

TEST_F(ValidateFixture, StretchedCommValidOnlyForOverlap) {
  auto ol = goodOl();
  ol.setLambda(21.0);
  ol.setComm(0, 3, 6, 8);  // duration 2 > volume 1: ratio 1/2
  ol.setCalc(3, 8, 12);
  EXPECT_TRUE(validate(pi_.app, pi_.graph, ol, CommModel::Overlap).valid);
  EXPECT_FALSE(validate(pi_.app, pi_.graph, ol, CommModel::OutOrder).valid);
  EXPECT_FALSE(validate(pi_.app, pi_.graph, ol, CommModel::InOrder).valid);
}

TEST_F(ValidateFixture, OverlapBandwidthViolationDetected) {
  // Two incoming size-1 transfers squeezed into the same [15,16) window at
  // C5 exceed the unit capacity.
  auto ol = goodOl();
  ol.setLambda(21.0);
  ol.setComm(3, 4, 15, 16);
  ol.setComm(2, 4, 15, 16);
  const auto rep = validate(pi_.app, pi_.graph, ol, CommModel::Overlap);
  EXPECT_FALSE(rep.valid);
}

TEST_F(ValidateFixture, OnePortOverlapHybridRules) {
  // Calc/comm overlap allowed, comm/comm on one port not.
  OperationList ol(5, 21.0);
  ol.setCalc(0, 1, 5);
  ol.setCalc(1, 6, 10);
  ol.setCalc(2, 11, 15);
  ol.setCalc(3, 7, 11);
  ol.setCalc(4, 16, 20);
  ol.setComm(kWorld, 0, 0, 1);
  ol.setComm(0, 1, 5, 6);
  ol.setComm(0, 3, 6, 7);
  ol.setComm(1, 2, 10, 11);
  ol.setComm(2, 4, 15, 16);
  ol.setComm(3, 4, 11, 12);
  ol.setComm(4, kWorld, 20, 21);
  EXPECT_TRUE(validateOnePortOverlap(pi_.app, pi_.graph, ol).valid);
  // Colliding sends on C1's out port fail.
  ol.setComm(0, 3, 5.5, 6.5);
  EXPECT_FALSE(validateOnePortOverlap(pi_.app, pi_.graph, ol).valid);
}

TEST_F(ValidateFixture, ReportSummariesAreInformative) {
  auto ol = goodOl();
  ol.setCalc(0, 1, 4.0);
  const auto rep = validate(pi_.app, pi_.graph, ol, CommModel::OutOrder);
  ASSERT_FALSE(rep.valid);
  EXPECT_NE(rep.summary().find("calc C1"), std::string::npos);
}

}  // namespace
}  // namespace fsw
