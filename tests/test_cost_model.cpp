#include <gtest/gtest.h>

#include "src/core/cost_model.hpp"
#include "src/workload/paper_instances.hpp"

namespace fsw {
namespace {

TEST(CostModel, SingleService) {
  Application app;
  app.addService(3.0, 0.5);
  ExecutionGraph g(1);
  const CostModel cm(app, g);
  EXPECT_DOUBLE_EQ(cm.at(0).sigmaIn, 1.0);
  EXPECT_DOUBLE_EQ(cm.at(0).sigmaOut, 0.5);
  EXPECT_DOUBLE_EQ(cm.at(0).cin, 1.0);   // delta0
  EXPECT_DOUBLE_EQ(cm.at(0).ccomp, 3.0);
  EXPECT_DOUBLE_EQ(cm.at(0).cout, 0.5);  // one virtual output
  EXPECT_DOUBLE_EQ(cm.at(0).cexec(CommModel::Overlap), 3.0);
  EXPECT_DOUBLE_EQ(cm.at(0).cexec(CommModel::InOrder), 4.5);
}

TEST(CostModel, ChainSelectivityPropagation) {
  Application app;
  app.addService(2.0, 0.5);
  app.addService(2.0, 0.5);
  app.addService(2.0, 2.0);
  const auto g = ExecutionGraph::chain({0, 1, 2});
  const CostModel cm(app, g);
  EXPECT_DOUBLE_EQ(cm.at(1).sigmaIn, 0.5);
  EXPECT_DOUBLE_EQ(cm.at(1).ccomp, 1.0);
  EXPECT_DOUBLE_EQ(cm.at(2).sigmaIn, 0.25);
  EXPECT_DOUBLE_EQ(cm.at(2).ccomp, 0.5);
  EXPECT_DOUBLE_EQ(cm.at(2).sigmaOut, 0.5);
  // C2's input communication is C1's output volume.
  EXPECT_DOUBLE_EQ(cm.at(1).cin, 0.5);
  EXPECT_DOUBLE_EQ(cm.at(2).cin, 0.25);
}

TEST(CostModel, DiamondDoesNotDoubleCountSharedAncestors) {
  // 0 -> 1, 0 -> 2, {1,2} -> 3: ancestors of 3 are {0, 1, 2}, and sigma_0
  // must be counted once even though two paths reach 3.
  Application app;
  app.addService(1.0, 0.5);
  app.addService(1.0, 0.3);
  app.addService(1.0, 0.7);
  app.addService(1.0, 1.0);
  ExecutionGraph g(4);
  g.addEdge(0, 1);
  g.addEdge(0, 2);
  g.addEdge(1, 3);
  g.addEdge(2, 3);
  const CostModel cm(app, g);
  EXPECT_DOUBLE_EQ(cm.at(3).sigmaIn, 0.5 * 0.3 * 0.7);
}

TEST(CostModel, FanoutCountsInCout) {
  Application app;
  for (int i = 0; i < 4; ++i) app.addService(1.0, 1.0);
  ExecutionGraph g(4);
  g.addEdge(0, 1);
  g.addEdge(0, 2);
  g.addEdge(0, 3);
  const CostModel cm(app, g);
  EXPECT_DOUBLE_EQ(cm.at(0).cout, 3.0);
  EXPECT_DOUBLE_EQ(cm.at(1).cout, 1.0);  // virtual output
  EXPECT_DOUBLE_EQ(cm.at(1).cin, 1.0);
}

TEST(CostModel, MultipleEntriesEachGetUnitInput) {
  Application app;
  app.addService(1.0, 1.0);
  app.addService(1.0, 1.0);
  ExecutionGraph g(2);
  const CostModel cm(app, g);
  EXPECT_DOUBLE_EQ(cm.at(0).cin, 1.0);
  EXPECT_DOUBLE_EQ(cm.at(1).cin, 1.0);
}

TEST(CostModel, Sec23ExampleBounds) {
  const auto pi = sec23Example();
  const CostModel cm(pi.app, pi.graph);
  // C1: in 1, comp 4, out 2 (two successors).
  EXPECT_DOUBLE_EQ(cm.at(0).cin, 1.0);
  EXPECT_DOUBLE_EQ(cm.at(0).ccomp, 4.0);
  EXPECT_DOUBLE_EQ(cm.at(0).cout, 2.0);
  EXPECT_DOUBLE_EQ(cm.at(0).cexec(CommModel::OutOrder), 7.0);
  // C5: in 2, comp 4, out 1.
  EXPECT_DOUBLE_EQ(cm.at(4).cin, 2.0);
  EXPECT_DOUBLE_EQ(cm.at(4).cexec(CommModel::OutOrder), 7.0);
  // Period lower bounds: 4 (overlap), 7 (one-port).
  EXPECT_DOUBLE_EQ(cm.periodLowerBound(CommModel::Overlap), 4.0);
  EXPECT_DOUBLE_EQ(cm.periodLowerBound(CommModel::OutOrder), 7.0);
  EXPECT_DOUBLE_EQ(cm.periodLowerBound(CommModel::InOrder), 7.0);
  // Latency lower bound = the critical path = 21 (Section 2.3).
  EXPECT_DOUBLE_EQ(cm.latencyLowerBound(), 21.0);
}

TEST(CostModel, B1ProfilesMatchTheProof) {
  const auto pi = counterexampleB1();
  const CostModel cm(pi.app, pi.graph);
  // Fig 4 plan: C1 computes 100 and sends 100 outputs of size 0.9999.
  EXPECT_DOUBLE_EQ(cm.at(0).ccomp, 100.0);
  EXPECT_NEAR(cm.at(0).cout, 99.99, 1e-9);
  // Expander children: Ccomp = 0.9999 * 100/0.9999 = 100.
  EXPECT_NEAR(cm.at(2).ccomp, 100.0, 1e-9);
  EXPECT_NEAR(cm.periodLowerBound(CommModel::Overlap), 100.0, 1e-6);
}

TEST(CostModel, B2ReceiverInputsTotalSix) {
  const auto pi = counterexampleB2();
  const CostModel cm(pi.app, pi.graph);
  for (NodeId r = 6; r < 12; ++r) {
    EXPECT_DOUBLE_EQ(cm.at(r).cin, 6.0) << "receiver " << r;
    EXPECT_DOUBLE_EQ(cm.at(r).ccomp, 6.0) << "receiver " << r;
    EXPECT_DOUBLE_EQ(cm.at(r).cout, 6.0) << "receiver " << r;
  }
  for (NodeId s = 0; s < 6; ++s) {
    EXPECT_DOUBLE_EQ(cm.at(s).cout, 6.0) << "sender " << s;
  }
}

TEST(CostModel, B3MatchesTheProofProfile) {
  const auto pi = counterexampleB3();
  const CostModel cm(pi.app, pi.graph);
  // Cout(1) = Cout(2) = Cout(3) = 12 and Cin(5) = Cin(6) = Cin(7) = 12.
  EXPECT_DOUBLE_EQ(cm.at(0).cout, 12.0);
  EXPECT_DOUBLE_EQ(cm.at(1).cout, 12.0);
  EXPECT_DOUBLE_EQ(cm.at(2).cout, 12.0);
  for (NodeId r = 4; r < 7; ++r) {
    EXPECT_DOUBLE_EQ(cm.at(r).cin, 12.0) << "receiver " << r;
    EXPECT_DOUBLE_EQ(cm.at(r).ccomp, 12.0) << "receiver " << r;
  }
  // Multi-port period lower bound is 12, dominated by communications.
  EXPECT_DOUBLE_EQ(cm.periodLowerBound(CommModel::Overlap), 12.0);
}

TEST(CostModel, Totals) {
  Application app;
  app.addService(2.0, 0.5);
  app.addService(4.0, 1.0);
  const auto g = ExecutionGraph::chain({0, 1});
  const CostModel cm(app, g);
  EXPECT_DOUBLE_EQ(cm.totalComputation(), 2.0 + 0.5 * 4.0);
  // input 1 + edge 0.5 + output 0.5.
  EXPECT_DOUBLE_EQ(cm.totalCommunication(), 2.0);
}

TEST(CostModel, SizeMismatchThrows) {
  Application app;
  app.addService(1.0, 1.0);
  ExecutionGraph g(2);
  EXPECT_THROW(CostModel(app, g), std::invalid_argument);
}

}  // namespace
}  // namespace fsw
