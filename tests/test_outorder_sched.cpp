#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "src/core/cost_model.hpp"
#include "src/oplist/validate.hpp"
#include "src/sched/outorder.hpp"
#include "src/sim/replay.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_instances.hpp"

namespace fsw {
namespace {

TEST(OutorderRepair, TrivialSingleService) {
  Application app;
  app.addService(2.0, 1.0);
  ExecutionGraph g(1);
  const auto ol = outorderRepairAtLambda(app, g, 4.0);  // 1 + 2 + 1
  ASSERT_TRUE(ol);
  EXPECT_TRUE(validate(app, g, *ol, CommModel::OutOrder).valid);
}

TEST(OutorderRepair, RejectsBelowBusyBound) {
  Application app;
  app.addService(2.0, 1.0);
  ExecutionGraph g(1);
  EXPECT_FALSE(outorderRepairAtLambda(app, g, 3.9));
}

TEST(OutorderRepair, Sec23AtLambda7) {
  const auto pi = sec23Example();
  OutorderOptions opt;
  opt.seed = 5;
  const auto ol = outorderRepairAtLambda(pi.app, pi.graph, 7.0, opt);
  ASSERT_TRUE(ol);
  const auto rep = validate(pi.app, pi.graph, *ol, CommModel::OutOrder);
  EXPECT_TRUE(rep.valid) << rep.summary();
  EXPECT_DOUBLE_EQ(ol->period(), 7.0);
}

TEST(OutorderOrchestrate, NeverWorseThanInorder) {
  Prng rng(12);
  for (int trial = 0; trial < 6; ++trial) {
    WorkloadSpec spec;
    spec.n = 5;
    const auto app = randomApplication(spec, rng);
    const auto g = randomForest(app, rng);
    OutorderOptions opt;
    opt.inorder.exactCap = 200;
    opt.restarts = 8;
    opt.bisectSteps = 6;
    const auto out = outorderOrchestratePeriod(app, g, opt);
    const auto in = inorderOrchestratePeriod(app, g, opt.inorder);
    EXPECT_LE(out.value, in.value + 1e-6) << "trial " << trial;
    const auto rep = validate(app, g, out.ol, CommModel::OutOrder);
    EXPECT_TRUE(rep.valid) << "trial " << trial << ": " << rep.summary();
    const CostModel cm(app, g);
    EXPECT_GE(out.value, cm.periodLowerBound(CommModel::OutOrder) - 1e-6);
  }
}

TEST(OutorderOrchestrate, ReplayerConfirms) {
  const auto pi = sec23Example();
  OutorderOptions opt;
  opt.seed = 5;
  const auto r = outorderOrchestratePeriod(pi.app, pi.graph, opt);
  const auto sim =
      replayOperationList(pi.app, pi.graph, r.ol, CommModel::OutOrder, 48);
  EXPECT_TRUE(sim.ok);
  EXPECT_NEAR(sim.measuredPeriod, r.value, 1e-6);
}

TEST(OutorderOrchestrate, IncumbentTieIsNeverPruned) {
  // Regression: the analytic period lower bound and the search's achieved
  // value compute the same quantity through different FP expressions and
  // can disagree by a few ulp. On this instance lb overshoots the
  // achievable optimum by 1 ulp, so an exact `lb > incumbent` floor prune
  // fed the optimum as the incumbent would abort a candidate that TIES
  // bit-exactly — flipping the engine's deterministic winner choice. The
  // slack in analyticallyDominated keeps the tie alive: bounding by the
  // unbounded optimum must reproduce it bit-identically.
  Application app;
  app.addService(2.0606879049276223, 0.78404705719603374, "C1");
  app.addService(2.8795777871182135, 0.77988023988828215, "C2");
  app.addService(2.2652364459933034, 0.44897284622874045, "C3");
  app.addService(0.51227196910436479, 0.28850907724106123, "C4");
  ExecutionGraph g(4);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(3, 0);

  OutorderOptions opt;
  opt.inorder.exactCap = 120;
  opt.restarts = 4;
  opt.bisectSteps = 4;
  const auto unbounded = outorderOrchestratePeriod(app, g, opt);
  ASSERT_TRUE(std::isfinite(unbounded.value));
  const CostModel cm(app, g);
  // The instance only exercises the regression while lb >= the optimum;
  // assert that so a cost-model change can't silently hollow the test out.
  ASSERT_GE(cm.periodLowerBound(CommModel::OutOrder), unbounded.value);

  OutorderOptions bounded = opt;
  bounded.upperBound = unbounded.value;
  const auto tied = outorderOrchestratePeriod(app, g, bounded);
  EXPECT_EQ(std::memcmp(&tied.value, &unbounded.value, sizeof(double)), 0)
      << "bounded " << tied.value << " vs unbounded " << unbounded.value;

  // The INORDER floor prunes carry the same slack: a fixed-order solve
  // bounded by its own achieved value must return, not abort.
  const auto probe = inorderPeriodForOrders(app, g, PortOrders::canonical(g));
  ASSERT_TRUE(probe.has_value());
  const auto reprobe = inorderPeriodForOrders(app, g, PortOrders::canonical(g),
                                              probe->value);
  ASSERT_TRUE(reprobe.has_value());
  EXPECT_EQ(std::memcmp(&reprobe->value, &probe->value, sizeof(double)), 0);

  // Dominance stays decisive beyond the slack band in both directions.
  EXPECT_FALSE(analyticallyDominated(1.0, 1.0));
  EXPECT_FALSE(analyticallyDominated(std::nextafter(1.0, 2.0), 1.0));
  EXPECT_TRUE(analyticallyDominated(1.0 + 1e-9, 1.0));
}

TEST(OnePortOverlapRepair, HybridRelaxesOutorder) {
  // A node with in 1 + comp 2 + out 1 can't cycle faster than 4 serialized,
  // but with comm/comp overlap lambda = 2 suffices (max(1, 2, 1)).
  Application app;
  app.addService(2.0, 1.0);
  ExecutionGraph g(1);
  EXPECT_FALSE(outorderRepairAtLambda(app, g, 2.0));
  const auto ol = onePortOverlapRepairAtLambda(app, g, 2.0);
  ASSERT_TRUE(ol);
  EXPECT_TRUE(validateOnePortOverlap(app, g, *ol).valid);
}

TEST(OnePortOverlapOrchestrate, ValidOnSec23) {
  const auto pi = sec23Example();
  const auto r = onePortOverlapOrchestratePeriod(pi.app, pi.graph);
  // The hybrid sits between full OVERLAP (4) and OUTORDER (7).
  EXPECT_GE(r.value, 4.0 - 1e-9);
  EXPECT_LE(r.value, 7.0 + 1e-6);
}

}  // namespace
}  // namespace fsw
