// Validator dominance and degenerate-instance coverage.
//
// The model hierarchy implies a validity chain: every INORDER-valid OL is
// OUTORDER-valid (drop the in-order constraint), every OUTORDER-valid OL is
// one-port-overlap-valid (drop calc/comm exclusion), and every one-port OL
// is OVERLAP-valid (ratio-1 communications on disjoint windows respect the
// capacity). These implications are structural facts of Appendix A and make
// strong cross-validator tests.
#include <gtest/gtest.h>

#include "src/oplist/validate.hpp"
#include "src/sched/inorder.hpp"
#include "src/sched/orchestrator.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_instances.hpp"

namespace fsw {
namespace {

class DominanceChain : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DominanceChain, InorderValidImpliesEverythingElse) {
  Prng rng(GetParam());
  WorkloadSpec spec;
  spec.n = 6;
  const auto app = randomApplication(spec, rng);
  const auto g = randomForest(app, rng);
  OrchestrationOptions opt;
  opt.exactCap = 150;
  const auto r = inorderOrchestratePeriod(app, g, opt);
  ASSERT_TRUE(validate(app, g, r.ol, CommModel::InOrder).valid);
  EXPECT_TRUE(validate(app, g, r.ol, CommModel::OutOrder).valid);
  EXPECT_TRUE(validateOnePortOverlap(app, g, r.ol).valid);
  EXPECT_TRUE(validate(app, g, r.ol, CommModel::Overlap).valid);
}

TEST_P(DominanceChain, LatencyScheduleValidEverywhere) {
  Prng rng(GetParam() + 17);
  WorkloadSpec spec;
  spec.n = 6;
  const auto app = randomApplication(spec, rng);
  const auto g = randomLayeredDag(app, 3, 2, rng);
  OrchestrationOptions opt;
  opt.exactCap = 150;
  const auto r = oneportOrchestrateLatency(app, g, opt);
  for (const CommModel m : kAllModels) {
    const auto rep = validate(app, g, r.ol, m);
    EXPECT_TRUE(rep.valid) << name(m) << ": " << rep.summary();
  }
  EXPECT_TRUE(validateOnePortOverlap(app, g, r.ol).valid);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DominanceChain,
                         ::testing::Values(3001, 3002, 3003, 3004, 3005));

TEST(Degenerate, ZeroSelectivityService) {
  // sigma = 0: downstream services and communications are free.
  Application app;
  app.addService(2.0, 0.0, "killer");
  app.addService(100.0, 1.0, "free");
  const auto g = ExecutionGraph::chain({0, 1});
  const CostModel cm(app, g);
  EXPECT_DOUBLE_EQ(cm.at(1).ccomp, 0.0);
  EXPECT_DOUBLE_EQ(cm.at(1).cin, 0.0);
  for (const CommModel m : kAllModels) {
    const auto orch = orchestrate(app, g, m, Objective::Period);
    const auto rep = validate(app, g, orch.result.ol, m);
    EXPECT_TRUE(rep.valid) << name(m) << ": " << rep.summary();
  }
}

TEST(Degenerate, ZeroCostService) {
  Application app;
  app.addService(0.0, 0.5, "instant");
  app.addService(1.0, 1.0, "normal");
  const auto g = ExecutionGraph::chain({0, 1});
  for (const CommModel m : kAllModels) {
    const auto orch = orchestrate(app, g, m, Objective::Period);
    EXPECT_TRUE(validate(app, g, orch.result.ol, m).valid) << name(m);
    EXPECT_GT(orch.result.value, 0.0);
  }
}

TEST(Degenerate, SingleServiceAllModels) {
  Application app;
  app.addService(3.0, 0.25);
  ExecutionGraph g(1);
  // Period: overlap max(1, 3, 0.25) = 3; one-port 1 + 3 + 0.25 = 4.25.
  EXPECT_NEAR(orchestrate(app, g, CommModel::Overlap, Objective::Period)
                  .result.value,
              3.0, 1e-9);
  EXPECT_NEAR(orchestrate(app, g, CommModel::InOrder, Objective::Period)
                  .result.value,
              4.25, 1e-6);
  EXPECT_NEAR(orchestrate(app, g, CommModel::OutOrder, Objective::Period)
                  .result.value,
              4.25, 1e-6);
  // Latency = 4.25 in every model.
  for (const CommModel m : kAllModels) {
    EXPECT_NEAR(orchestrate(app, g, m, Objective::Latency).result.value, 4.25,
                1e-9)
        << name(m);
  }
}

TEST(Degenerate, WideFanout) {
  // One root feeding 30 children: Cout dominates everything.
  Application app;
  app.addService(1.0, 1.0, "root");
  for (int i = 0; i < 30; ++i) app.addService(0.1, 1.0);
  ExecutionGraph g(31);
  for (NodeId i = 1; i <= 30; ++i) g.addEdge(0, i);
  const CostModel cm(app, g);
  EXPECT_DOUBLE_EQ(cm.at(0).cout, 30.0);
  const auto orch =
      orchestrate(app, g, CommModel::Overlap, Objective::Period);
  EXPECT_NEAR(orch.result.value, 30.0, 1e-9);
  EXPECT_TRUE(orch.provablyOptimal());
}

TEST(ListLatencyOrders, CoversEveryPort) {
  const auto pi = counterexampleB2();
  const auto po = PortOrders::listLatency(pi.app, pi.graph);
  for (NodeId i = 0; i < pi.graph.size(); ++i) {
    EXPECT_EQ(po.in(i).size(), pi.graph.predecessors(i).size() +
                                   (pi.graph.isEntry(i) ? 1 : 0));
    EXPECT_EQ(po.out(i).size(), pi.graph.successors(i).size() +
                                    (pi.graph.isExit(i) ? 1 : 0));
  }
}

TEST(ListLatencyOrders, BeatsOrTiesHeuristicOnB2) {
  const auto pi = counterexampleB2();
  const auto list = oneportLatencyForOrders(
      pi.app, pi.graph, PortOrders::listLatency(pi.app, pi.graph));
  const auto heur = oneportLatencyForOrders(
      pi.app, pi.graph, PortOrders::heuristic(pi.app, pi.graph));
  ASSERT_TRUE(list);
  ASSERT_TRUE(heur);
  EXPECT_LE(list->value, heur->value + 1e-9);
  EXPECT_LE(list->value, 22.0 + 1e-9);  // regression guard (found: 22)
}

TEST(ListLatencyOrders, ConsistentOnRandomDags) {
  Prng rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    WorkloadSpec spec;
    spec.n = 8;
    const auto app = randomApplication(spec, rng);
    const auto g = randomLayeredDag(app, 3, 3, rng);
    const auto r = oneportLatencyForOrders(app, g,
                                           PortOrders::listLatency(app, g));
    ASSERT_TRUE(r) << "trial " << trial;
    const auto rep = validate(app, g, r->ol, CommModel::InOrder);
    EXPECT_TRUE(rep.valid) << "trial " << trial << ": " << rep.summary();
  }
}

}  // namespace
}  // namespace fsw
