#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/prng.hpp"
#include "src/common/util.hpp"

namespace fsw {
namespace {

TEST(Prng, DeterministicForSameSeed) {
  Prng a(42);
  Prng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiffer) {
  Prng a(1);
  Prng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Prng, UniformInUnitInterval) {
  Prng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Prng, UniformRange) {
  Prng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.5, 3.5);
    EXPECT_GE(u, 2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Prng, UniformIntInclusiveBounds) {
  Prng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit in 1000 draws
}

TEST(Prng, UniformIntSingleton) {
  Prng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniformInt(5, 5), 5);
}

TEST(Prng, PermutationIsPermutation) {
  Prng rng(11);
  const auto p = rng.permutation(20);
  std::set<std::size_t> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 20u);
  EXPECT_EQ(*s.begin(), 0u);
  EXPECT_EQ(*s.rbegin(), 19u);
}

TEST(Prng, ShufflePreservesMultiset) {
  Prng rng(13);
  std::vector<int> v = {1, 2, 2, 3, 5, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Prng, BernoulliExtremes) {
  Prng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Util, AlmostEqual) {
  EXPECT_TRUE(almostEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(almostEqual(1.0, 1.001));
  EXPECT_TRUE(almostEqual(1e9, 1e9 + 1.0, 1e-8));
}

TEST(Util, AlmostLeq) {
  EXPECT_TRUE(almostLeq(1.0, 2.0));
  EXPECT_TRUE(almostLeq(2.0, 2.0 - 1e-12));
  EXPECT_FALSE(almostLeq(2.1, 2.0));
}

TEST(Util, ForEachPermutationCountsFactorial) {
  std::size_t count = 0;
  forEachPermutation(4, [&](const std::vector<std::size_t>&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 24u);
}

TEST(Util, ForEachPermutationEarlyStop) {
  std::size_t count = 0;
  const bool finished = forEachPermutation(5, [&](const std::vector<std::size_t>&) {
    ++count;
    return count < 10;
  });
  EXPECT_FALSE(finished);
  EXPECT_EQ(count, 10u);
}

TEST(Util, Factorial) {
  EXPECT_DOUBLE_EQ(factorial(0), 1.0);
  EXPECT_DOUBLE_EQ(factorial(5), 120.0);
  EXPECT_DOUBLE_EQ(factorial(10), 3628800.0);
}

TEST(Util, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(Util, PercentileInterpolatesSortedValues) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.95), 7.0);
  EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0, 5.0}, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 0.75), 1.75);
}

}  // namespace
}  // namespace fsw
