// Multi-host routing: a PlanRouter over 1 and 3 PlanServiceHosts keeps
// winners bit-identical to serial optimizePlan through every routing path
// — including a host killed mid-stream (failover to the next-ranked host)
// and a host restarted and re-admitted — while remote solve errors are
// never retried and routing stays a pure function of the request key.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "src/opt/optimizer.hpp"
#include "src/serve/plan_engine.hpp"
#include "src/serve/plan_router.hpp"
#include "src/serve/plan_service.hpp"
#include "src/serve/rendezvous.hpp"
#include "src/workload/generator.hpp"

namespace fsw {
namespace {

OptimizerOptions fastOptions() {
  OptimizerOptions opt;
  opt.exactForestMaxN = 5;
  opt.heuristics.iterations = 200;
  opt.heuristics.restarts = 2;
  opt.orchestrator.order.exactCap = 120;
  opt.orchestrator.outorder.restarts = 4;
  opt.orchestrator.outorder.bisectSteps = 4;
  return opt;
}

std::vector<PlanRequest> smallWorkload() {
  std::vector<PlanRequest> reqs;
  Prng rng(4242);
  for (const std::size_t n : {4u, 5u}) {
    WorkloadSpec spec;
    spec.n = n;
    const auto app = randomApplication(spec, rng);
    for (const CommModel m : kAllModels) {
      for (const Objective obj : {Objective::Period, Objective::Latency}) {
        reqs.push_back({app, m, obj, fastOptions()});
      }
    }
  }
  return reqs;
}

std::vector<OptimizedPlan> serialReference(
    const std::vector<PlanRequest>& reqs) {
  std::vector<OptimizedPlan> refs;
  refs.reserve(reqs.size());
  for (const auto& r : reqs) {
    OptimizerOptions serial = r.options;
    serial.threads = 1;
    refs.push_back(optimizePlan(r.app, r.model, r.objective, serial));
  }
  return refs;
}

void expectIdentical(const OptimizedPlan& got, const OptimizedPlan& want,
                     const std::string& where) {
  EXPECT_EQ(got.value, want.value) << where;
  EXPECT_EQ(got.strategy, want.strategy) << where;
  EXPECT_EQ(got.surrogate, want.surrogate) << where;
  EXPECT_EQ(graphSignature(got.plan.graph), graphSignature(want.plan.graph))
      << where;
}

struct Fleet {
  std::vector<std::unique_ptr<PlanServiceHost>> hosts;
  RouterConfig router;

  explicit Fleet(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      ServiceHostConfig hc;
      hc.serverConfig.maxBatch = 4;
      hosts.push_back(std::make_unique<PlanServiceHost>(hc));
      router.hosts.push_back(RouterHost{"127.0.0.1", hosts.back()->port()});
    }
  }
};

TEST(PlanRouter, OneHostWinnersMatchSerialAndRepeatsHitTheFarCache) {
  const auto reqs = smallWorkload();
  const auto refs = serialReference(reqs);
  Fleet fleet(1);
  PlanRouter router{fleet.router};

  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const OptimizedPlan plan = router.optimize(reqs[i]);
    expectIdentical(plan, refs[i], "request " + std::to_string(i));
    EXPECT_EQ(plan.stats.resultCacheHits, 0u);
  }
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const OptimizedPlan warm = router.optimize(reqs[i]);
    expectIdentical(warm, refs[i], "warm request " + std::to_string(i));
    EXPECT_EQ(warm.stats.resultCacheHits, 1u);
    EXPECT_EQ(warm.stats.orchestrated, 0u);
  }
  const auto stats = router.stats();
  EXPECT_EQ(stats.submitted, 2 * reqs.size());
  EXPECT_EQ(stats.served, 2 * reqs.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.failovers, 0u);
}

TEST(PlanRouter, ThreeHostsStayBitIdenticalAndRouteByKey) {
  const auto reqs = smallWorkload();
  const auto refs = serialReference(reqs);
  Fleet fleet(3);
  PlanRouter router{fleet.router};

  // Routing is the shared rendezvous function of the canonical key.
  for (const auto& r : reqs) {
    EXPECT_EQ(router.hostOf(r),
              rendezvousPick(PlanEngine::requestKey(r), 3));
  }

  std::vector<std::future<OptimizedPlan>> futures;
  futures.reserve(reqs.size());
  for (const auto& r : reqs) futures.push_back(router.submit(r));
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    expectIdentical(futures[i].get(), refs[i],
                    "request " + std::to_string(i));
  }

  const auto stats = router.stats();
  EXPECT_EQ(stats.served, reqs.size());
  EXPECT_EQ(stats.failovers, 0u);
  ASSERT_EQ(stats.perHost.size(), 3u);
  std::size_t sum = 0;
  std::size_t active = 0;
  for (const auto& host : stats.perHost) {
    sum += host.served;
    active += host.served > 0 ? 1 : 0;
    EXPECT_TRUE(host.up);
  }
  EXPECT_EQ(sum, reqs.size());
  EXPECT_GE(active, 2u);  // the key space spreads across the fleet
}

TEST(PlanRouter, KilledHostFailsOverMidStreamThenReadmitsOnReconnect) {
  const auto reqs = smallWorkload();
  const auto refs = serialReference(reqs);
  Fleet fleet(3);
  PlanRouter router{fleet.router};

  // Pick a victim that actually owns traffic, so its death must be
  // noticed; remember its port to restart a fresh host there later.
  const std::size_t victim = router.hostOf(reqs[0]);
  const std::uint16_t victimPort = fleet.hosts[victim]->port();
  std::size_t victimTraffic = 0;
  for (const auto& r : reqs) {
    victimTraffic += router.hostOf(r) == victim ? 1 : 0;
  }
  ASSERT_GT(victimTraffic, 0u);

  // Wave 1: submit everything, then kill the victim while the wave is in
  // flight. Every future must still deliver the serial winner — requests
  // the victim never answered retry on their next-ranked host.
  std::vector<std::future<OptimizedPlan>> wave1;
  wave1.reserve(reqs.size());
  for (const auto& r : reqs) wave1.push_back(router.submit(r));
  fleet.hosts[victim].reset();
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    expectIdentical(wave1[i].get(), refs[i],
                    "wave-1 request " + std::to_string(i));
  }

  // Wave 2: the victim is gone for sure now, so its keys *must* fail over
  // (and the router must mark it down).
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    expectIdentical(router.optimize(reqs[i]), refs[i],
                    "wave-2 request " + std::to_string(i));
  }
  EXPECT_FALSE(router.hostUp(victim));
  const auto down = router.stats();
  EXPECT_GT(down.failovers, 0u);
  EXPECT_EQ(down.failed, 0u);

  // Restart a cold host on the victim's port; reconnect() re-admits it
  // and its keys route home again — still bit-identical (the fresh host
  // re-solves from scratch).
  ServiceHostConfig hc;
  hc.serverConfig.maxBatch = 4;
  hc.port = victimPort;
  fleet.hosts[victim] = std::make_unique<PlanServiceHost>(hc);
  EXPECT_EQ(router.reconnect(), 1u);
  EXPECT_TRUE(router.hostUp(victim));

  const auto beforeServed = router.stats().perHost[victim].served;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    expectIdentical(router.optimize(reqs[i]), refs[i],
                    "wave-3 request " + std::to_string(i));
  }
  EXPECT_GT(router.stats().perHost[victim].served, beforeServed);
}

TEST(PlanRouter, RemoteSolveErrorsAreNotRetried) {
  Fleet fleet(2);
  PlanRouter router{fleet.router};

  PlanRequest req;
  req.app.addService(2.0, 0.5);
  req.app.addService(1.0, 0.8);
  req.options = fastOptions();

  // A portfolio no host registered: the far side answers an error frame —
  // a deterministic answer, not a transport failure, so the router must
  // deliver it without failing over or marking the host down.
  CandidateRegistry unknown = CandidateRegistry::makeBuiltin();
  unknown.setName("nobody-registered-this");
  req.options.registry = &unknown;
  bool threw = false;
  try {
    (void)router.optimize(req);
  } catch (const RemotePlanError& e) {
    threw = true;
    EXPECT_FALSE(e.transport());
  }
  EXPECT_TRUE(threw);
  const auto stats = router.stats();
  EXPECT_EQ(stats.failovers, 0u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_TRUE(router.hostUp(0));
  EXPECT_TRUE(router.hostUp(1));

  // An unnamed portfolio cannot travel: rejected synchronously.
  CandidateRegistry anonymous;
  req.options.registry = &anonymous;
  EXPECT_THROW((void)router.submit(req), std::invalid_argument);
}

TEST(PlanRouter, CloseFailsQueuedWorkAndRejectsNewSubmits) {
  Fleet fleet(1);
  auto router = std::make_unique<PlanRouter>(fleet.router);
  router->close();

  PlanRequest req;
  req.app.addService(1.0, 0.5);
  req.options = fastOptions();
  auto future = router->submit(req);
  bool threw = false;
  try {
    (void)future.get();
  } catch (const RemotePlanError& e) {
    threw = true;
    EXPECT_TRUE(e.transport());
  }
  EXPECT_TRUE(threw);
}

TEST(PlanRouter, PerHostByteLedgersMatchTheHostsOwnCounters) {
  const auto reqs = smallWorkload();
  Fleet fleet(2);
  PlanRouter router{fleet.router};
  for (const auto& req : reqs) (void)router.optimize(req);

  const auto stats = router.stats();
  ASSERT_EQ(stats.perHost.size(), 2u);
  std::size_t sent = 0;
  std::size_t received = 0;
  for (const auto& hs : stats.perHost) {
    sent += hs.bytesSent;
    received += hs.bytesReceived;
  }
  EXPECT_GT(sent, 0u);
  EXPECT_GT(received, 0u);

  // Every byte the router sent arrived at some host, and vice versa —
  // and per slot, the router's ledger is the host's mirror image.
  std::size_t hostIn = 0;
  std::size_t hostOut = 0;
  for (std::size_t s = 0; s < fleet.hosts.size(); ++s) {
    const auto hs = fleet.hosts[s]->stats();
    hostIn += hs.bytesIn;
    hostOut += hs.bytesOut;
    EXPECT_EQ(stats.perHost[s].bytesSent, hs.bytesIn) << "slot " << s;
    EXPECT_EQ(stats.perHost[s].bytesReceived, hs.bytesOut) << "slot " << s;
  }
  EXPECT_EQ(sent, hostIn);
  EXPECT_EQ(received, hostOut);
}

TEST(PlanRouter, BlackHoledHostTimesOutAndFailsOverByTheClock) {
  // A host that accepts into the kernel backlog but never replies (the
  // SIGSTOP/partition shape): without RouterConfig::ioTimeoutMs the
  // routed request would hang its future forever; with it, the recv
  // times out, the slot is marked down, and the request fails over to
  // the next-ranked host — same winner, bounded wall clock.
  const frameio::Listener blackhole =
      frameio::listenLoopback(0, "blackhole-test");
  PlanServiceHost live{ServiceHostConfig{}};

  RouterConfig rc;
  rc.hosts = {{"127.0.0.1", blackhole.port}, {"127.0.0.1", live.port()}};
  rc.ioTimeoutMs = 300;
  PlanRouter router{rc};

  // Pick a request whose key ranks the black-holed slot first, so the
  // timeout path actually runs before the failover.
  const auto reqs = smallWorkload();
  const PlanRequest* victim = nullptr;
  for (const auto& r : reqs) {
    if (router.hostOf(r) == 0) {
      victim = &r;
      break;
    }
  }
  ASSERT_NE(victim, nullptr) << "no request ranked the black-holed slot";

  OptimizerOptions serial = victim->options;
  serial.threads = 1;
  const OptimizedPlan expected =
      optimizePlan(victim->app, victim->model, victim->objective, serial);
  const auto start = std::chrono::steady_clock::now();
  const OptimizedPlan got = router.optimize(*victim);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_EQ(got.value, expected.value);
  EXPECT_EQ(got.strategy, expected.strategy);
  EXPECT_LT(elapsed.count(), 30000) << "timeout never fired";

  const auto stats = router.stats();
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_GE(stats.perHost[0].transportFailures, 1u);
  EXPECT_FALSE(stats.perHost[0].up);
  EXPECT_EQ(stats.perHost[1].served, 1u);
  router.close();
  frameio::closeFd(blackhole.fd);
}

}  // namespace
}  // namespace fsw
