#include <gtest/gtest.h>

#include "src/sched/periodic_cg.hpp"

namespace fsw {
namespace {

TEST(PeriodicCg, EmptySystemFeasible) {
  PeriodicConstraintGraph pcg;
  pcg.addVariable();
  EXPECT_TRUE(pcg.feasible(1.0));
  EXPECT_DOUBLE_EQ((*pcg.solve(1.0))[0], 0.0);
}

TEST(PeriodicCg, SimpleChain) {
  PeriodicConstraintGraph pcg;
  const auto a = pcg.addVariable();
  const auto b = pcg.addVariable();
  const auto c = pcg.addVariable();
  pcg.addConstraint(a, b, 2.0);
  pcg.addConstraint(b, c, 3.0);
  const auto x = pcg.solve(1.0);
  ASSERT_TRUE(x);
  EXPECT_DOUBLE_EQ((*x)[a], 0.0);
  EXPECT_DOUBLE_EQ((*x)[b], 2.0);
  EXPECT_DOUBLE_EQ((*x)[c], 5.0);
}

TEST(PeriodicCg, PositiveCycleInfeasibleAtAnyLambdaWithoutK) {
  PeriodicConstraintGraph pcg;
  const auto a = pcg.addVariable();
  const auto b = pcg.addVariable();
  pcg.addConstraint(a, b, 1.0);
  pcg.addConstraint(b, a, 1.0);
  EXPECT_FALSE(pcg.feasible(100.0));
  EXPECT_FALSE(pcg.minLambda(0.0, 100.0).has_value());
}

TEST(PeriodicCg, CycleWithKFeasibleAboveThreshold) {
  // x_b >= x_a + 3 and x_a >= x_b + 4 - lambda: feasible iff lambda >= 7.
  PeriodicConstraintGraph pcg;
  const auto a = pcg.addVariable();
  const auto b = pcg.addVariable();
  pcg.addConstraint(a, b, 3.0);
  pcg.addConstraint(b, a, 4.0, 1);
  EXPECT_FALSE(pcg.feasible(6.9));
  EXPECT_TRUE(pcg.feasible(7.0));
  const auto r = pcg.minLambda(0.0, 100.0);
  ASSERT_TRUE(r);
  EXPECT_NEAR(r->lambda, 7.0, 1e-6);
}

TEST(PeriodicCg, MinLambdaTakesMaxOverCycles) {
  // Two cycles with ratios 5 and 23/3: min lambda = 23/3.
  PeriodicConstraintGraph pcg;
  const auto a = pcg.addVariable();
  const auto b = pcg.addVariable();
  const auto c = pcg.addVariable();
  pcg.addConstraint(a, b, 2.0);
  pcg.addConstraint(b, a, 3.0, 1);
  pcg.addConstraint(a, c, 20.0 / 3.0);
  pcg.addConstraint(c, a, 1.0, 1);
  const auto r = pcg.minLambda(0.0, 100.0);
  ASSERT_TRUE(r);
  EXPECT_NEAR(r->lambda, 23.0 / 3.0, 1e-6);
}

TEST(PeriodicCg, MultiPeriodCycle) {
  // x_b >= x_a + 10 and x_a >= x_b + 10 - 2*lambda: lambda >= 10.
  PeriodicConstraintGraph pcg;
  const auto a = pcg.addVariable();
  const auto b = pcg.addVariable();
  pcg.addConstraint(a, b, 10.0);
  pcg.addConstraint(b, a, 10.0, 2);
  const auto r = pcg.minLambda(0.0, 100.0);
  ASSERT_TRUE(r);
  EXPECT_NEAR(r->lambda, 10.0, 1e-6);
}

TEST(PeriodicCg, SolutionSatisfiesAllConstraints) {
  PeriodicConstraintGraph pcg;
  std::vector<PeriodicConstraintGraph::Var> v;
  for (int i = 0; i < 6; ++i) v.push_back(pcg.addVariable());
  pcg.addConstraint(v[0], v[1], 1.5);
  pcg.addConstraint(v[1], v[2], 2.5);
  pcg.addConstraint(v[2], v[3], 0.5);
  pcg.addConstraint(v[3], v[0], 1.0, 1);
  pcg.addConstraint(v[4], v[5], 3.0);
  pcg.addConstraint(v[5], v[4], 3.0, 1);
  const auto r = pcg.minLambda(0.0, 50.0);
  ASSERT_TRUE(r);
  EXPECT_NEAR(r->lambda, 6.0, 1e-6);
  const auto& x = r->potentials;
  EXPECT_GE(x[v[1]] - x[v[0]], 1.5 - 1e-9);
  EXPECT_GE(x[v[2]] - x[v[1]], 2.5 - 1e-9);
  EXPECT_GE(x[v[0]] - x[v[3]], 1.0 - r->lambda - 1e-9);
}

TEST(PeriodicCg, NegativeKRejected) {
  PeriodicConstraintGraph pcg;
  const auto a = pcg.addVariable();
  const auto b = pcg.addVariable();
  EXPECT_THROW(pcg.addConstraint(a, b, 1.0, -1), std::invalid_argument);
}

TEST(PeriodicCg, OutOfRangeVariableRejected) {
  PeriodicConstraintGraph pcg;
  const auto a = pcg.addVariable();
  EXPECT_THROW(pcg.addConstraint(a, 5, 1.0), std::out_of_range);
}

TEST(PeriodicCg, MinLambdaAtLowerBound) {
  PeriodicConstraintGraph pcg;
  const auto a = pcg.addVariable();
  const auto b = pcg.addVariable();
  pcg.addConstraint(a, b, 1.0);
  const auto r = pcg.minLambda(5.0, 100.0);
  ASSERT_TRUE(r);
  EXPECT_DOUBLE_EQ(r->lambda, 5.0);  // already feasible at lo
}

}  // namespace
}  // namespace fsw
