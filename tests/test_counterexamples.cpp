// Appendix B counter-examples as executable experiments (E2, E3, E4).
#include <gtest/gtest.h>

#include "src/core/cost_model.hpp"
#include "src/opt/chain.hpp"
#include "src/oplist/validate.hpp"
#include "src/sched/inorder.hpp"
#include "src/sched/outorder.hpp"
#include "src/sched/overlap.hpp"
#include "src/workload/paper_instances.hpp"

namespace fsw {
namespace {

// ---- B.1: communication costs change the optimal plan shape. ------------

TEST(B1, NoCommOptimalChainHasPeriod100) {
  const auto pi = counterexampleB1();
  const auto chain = counterexampleB1ChainGraph();
  EXPECT_NEAR(noCommPeriodValue(pi.app, chain), 100.0, 1e-6);
}

TEST(B1, ChainPlanDegradesTo200UnderOverlap) {
  const auto pi = counterexampleB1();
  const auto chain = counterexampleB1ChainGraph();
  const CostModel cm(pi.app, chain);
  // C2's outgoing communications: 200 outputs of size 0.9999^2.
  EXPECT_NEAR(cm.periodLowerBound(CommModel::Overlap), 200.0 * 0.9999 * 0.9999,
              1e-6);
  const auto ol = overlapPeriodSchedule(pi.app, chain);
  EXPECT_GT(ol.period(), 199.0);
}

TEST(B1, CommAwarePlanRestoresPeriod100) {
  const auto pi = counterexampleB1();
  const auto ol = overlapPeriodSchedule(pi.app, pi.graph);
  EXPECT_NEAR(ol.period(), 100.0, 1e-6);
  const auto rep = validate(pi.app, pi.graph, ol, CommModel::Overlap);
  EXPECT_TRUE(rep.valid) << rep.summary();
}

TEST(B1, CommAwarePlanIsWorseWithoutCommunication) {
  // The two-star plan filters less: its no-comm period exceeds the chain's.
  const auto pi = counterexampleB1();
  const auto chain = counterexampleB1ChainGraph();
  EXPECT_GT(noCommPeriodValue(pi.app, pi.graph) + 1e-9,
            noCommPeriodValue(pi.app, chain));
}

// ---- B.2: multi-port beats one-port for latency. --------------------------

TEST(B2, MultiPortLatencyIs20) {
  const auto pi = counterexampleB2();
  const auto ol = overlapLatencyFluid(pi.app, pi.graph);
  EXPECT_NEAR(ol.latency(), 20.0, 1e-6);
  EXPECT_TRUE(validate(pi.app, pi.graph, ol, CommModel::Overlap).valid);
}

TEST(B2, EveryOnePortScheduleExceeds20) {
  const auto pi = counterexampleB2();
  // The one-port optimum: exhaustively enumerating all port orders is too
  // large here (6 senders x 6 receivers), but the orchestrator's order
  // search gives an upper bound and the paper proves the true optimum is
  // > 20; check a sample of orders and the orchestrated best.
  OrchestrationOptions opt;
  opt.exactCap = 2000;  // falls back to heuristic + local search
  opt.localSearchIters = 150;
  const auto best = oneportOrchestrateLatency(pi.app, pi.graph, opt);
  EXPECT_GT(best.value, 20.0 + 1e-9);
  // The critical path is only 17: the multi-port value of 20 and the
  // one-port optimum above 20 are both resource effects, not path effects.
  const CostModel cm(pi.app, pi.graph);
  EXPECT_NEAR(cm.latencyLowerBound(), 17.0, 1e-9);
}

// ---- B.3: multi-port beats one-port for period. ----------------------------

TEST(B3, MultiPortPeriodIs12) {
  const auto pi = counterexampleB3();
  const auto ol = overlapPeriodSchedule(pi.app, pi.graph);
  EXPECT_NEAR(ol.period(), 12.0, 1e-6);
  const auto rep = validate(pi.app, pi.graph, ol, CommModel::Overlap);
  EXPECT_TRUE(rep.valid) << rep.summary();
}

TEST(B3, OnePortOverlapCannotReach12) {
  const auto pi = counterexampleB3();
  OutorderOptions opt;
  opt.restarts = 48;
  opt.repairIters = 600;
  opt.seed = 3;
  // The paper proves no one-port schedule achieves 12; the repair search
  // must therefore fail at 12 (and the searched optimum stays above it).
  EXPECT_FALSE(onePortOverlapRepairAtLambda(pi.app, pi.graph, 12.0, opt));
  const auto best = onePortOverlapOrchestratePeriod(pi.app, pi.graph, opt);
  EXPECT_GT(best.value, 12.0 + 1e-6);
}

TEST(B3, OnePortOverlapFeasibleAt13) {
  const auto pi = counterexampleB3();
  OutorderOptions opt;
  opt.restarts = 64;
  opt.repairIters = 800;
  opt.seed = 11;
  const auto ol = onePortOverlapRepairAtLambda(pi.app, pi.graph, 13.0, opt);
  ASSERT_TRUE(ol);
  EXPECT_TRUE(validateOnePortOverlap(pi.app, pi.graph, *ol).valid);
}

}  // namespace
}  // namespace fsw
