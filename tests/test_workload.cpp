#include <gtest/gtest.h>

#include "src/workload/generator.hpp"
#include "src/workload/paper_instances.hpp"

namespace fsw {
namespace {

TEST(Generator, RandomApplicationMatchesSpec) {
  Prng rng(1);
  WorkloadSpec spec;
  spec.n = 50;
  spec.costLo = 1.0;
  spec.costHi = 2.0;
  spec.filterFraction = 1.0;
  const auto app = randomApplication(spec, rng);
  EXPECT_EQ(app.size(), 50u);
  for (NodeId i = 0; i < app.size(); ++i) {
    EXPECT_GE(app.service(i).cost, 1.0);
    EXPECT_LT(app.service(i).cost, 2.0);
    EXPECT_LT(app.service(i).selectivity, 1.0);
  }
}

TEST(Generator, ExpanderOnlySpec) {
  Prng rng(2);
  WorkloadSpec spec;
  spec.n = 30;
  spec.filterFraction = 0.0;
  const auto app = randomApplication(spec, rng);
  for (NodeId i = 0; i < app.size(); ++i) {
    EXPECT_GE(app.service(i).selectivity, 1.0);
  }
}

TEST(Generator, PrecedenceDensityCreatesDag) {
  Prng rng(3);
  WorkloadSpec spec;
  spec.n = 10;
  spec.precedenceDensity = 0.5;
  const auto app = randomApplication(spec, rng);
  EXPECT_TRUE(app.hasPrecedences());
  EXPECT_NO_THROW(app.topologicalOrder());
}

TEST(Generator, RandomForestIsForestAndRespects) {
  Prng rng(4);
  WorkloadSpec spec;
  spec.n = 12;
  spec.precedenceDensity = 0.1;
  const auto app = randomApplication(spec, rng);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = randomForest(app, rng);
    EXPECT_TRUE(g.isForest());
    EXPECT_TRUE(g.respects(app));
  }
}

TEST(Generator, LayeredDagHasExpectedDepth) {
  Prng rng(5);
  WorkloadSpec spec;
  spec.n = 12;
  const auto app = randomApplication(spec, rng);
  const auto g = randomLayeredDag(app, 4, 2, rng);
  EXPECT_NO_THROW(g.topologicalOrder());
  // First-layer nodes are entries; last-layer nodes have predecessors.
  EXPECT_TRUE(g.isEntry(0));
  EXPECT_FALSE(g.predecessors(11).empty());
}

TEST(Generator, ForkJoinShape) {
  const auto g = forkJoinGraph(6);
  EXPECT_EQ(g.successors(0).size(), 4u);
  EXPECT_EQ(g.predecessors(5).size(), 4u);
  EXPECT_THROW(forkJoinGraph(2), std::invalid_argument);
}

TEST(PaperInstances, Sec23Shape) {
  const auto pi = sec23Example();
  EXPECT_EQ(pi.app.size(), 5u);
  EXPECT_EQ(pi.graph.edgeCount(), 5u);
  EXPECT_TRUE(pi.graph.hasEdge(0, 1));
  EXPECT_TRUE(pi.graph.hasEdge(3, 4));
}

TEST(PaperInstances, B1Shape) {
  const auto pi = counterexampleB1();
  EXPECT_EQ(pi.app.size(), 202u);
  EXPECT_EQ(pi.graph.successors(0).size(), 100u);
  EXPECT_EQ(pi.graph.successors(1).size(), 100u);
  const auto chain = counterexampleB1ChainGraph();
  EXPECT_EQ(chain.successors(1).size(), 200u);
}

TEST(PaperInstances, B2EveryReceiverHasSizes123) {
  const auto pi = counterexampleB2();
  for (NodeId r = 6; r < 12; ++r) {
    double sum = 0.0;
    for (const NodeId p : pi.graph.predecessors(r)) {
      sum += pi.app.service(p).selectivity;
    }
    EXPECT_DOUBLE_EQ(sum, 6.0) << "receiver " << r;
    EXPECT_EQ(pi.graph.predecessors(r).size(), 3u);
  }
  // Sender degrees: 6, 3, 3, 2, 2, 2.
  EXPECT_EQ(pi.graph.successors(0).size(), 6u);
  EXPECT_EQ(pi.graph.successors(1).size(), 3u);
  EXPECT_EQ(pi.graph.successors(3).size(), 2u);
}

TEST(PaperInstances, B3SenderDegrees) {
  const auto pi = counterexampleB3();
  EXPECT_EQ(pi.graph.successors(0).size(), 4u);
  EXPECT_EQ(pi.graph.successors(1).size(), 4u);
  EXPECT_EQ(pi.graph.successors(2).size(), 3u);
  EXPECT_EQ(pi.graph.successors(3).size(), 3u);
}

}  // namespace
}  // namespace fsw
