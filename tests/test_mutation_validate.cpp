// Mutation testing of the validators: take a certified-valid operation list
// and apply targeted corruptions; each must be caught by the model whose
// rule it breaks. This guards the validators themselves — the component
// every other result of the library leans on.
#include <gtest/gtest.h>

#include "src/oplist/validate.hpp"
#include "src/sched/orchestrator.hpp"
#include "src/workload/generator.hpp"

namespace fsw {
namespace {

struct Case {
  Application app;
  ExecutionGraph graph{0};
  OperationList ol;
  CommModel model;
};

Case makeValid(std::uint64_t seed, CommModel m) {
  Prng rng(seed);
  WorkloadSpec spec;
  spec.n = 6;
  Case s;
  s.app = randomApplication(spec, rng);
  s.graph = randomForest(s.app, rng);
  OrchestratorOptions opt;
  opt.order.exactCap = 120;
  opt.outorder.restarts = 6;
  s.ol = orchestrate(s.app, s.graph, m, Objective::Period, opt).result.ol;
  s.model = m;
  return s;
}

class Mutation : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {
 protected:
  [[nodiscard]] Case testCase() const {
    return makeValid(std::get<0>(GetParam()),
                     static_cast<CommModel>(std::get<1>(GetParam())));
  }
};

TEST_P(Mutation, BaselineIsValid) {
  const auto s = testCase();
  const auto rep = validate(s.app, s.graph, s.ol, s.model);
  ASSERT_TRUE(rep.valid) << rep.summary();
}

TEST_P(Mutation, StretchingACalcIsCaught) {
  auto s = testCase();
  const NodeId v = s.graph.size() / 2;
  s.ol.setCalc(v, s.ol.beginCalc(v), s.ol.endCalc(v) + 0.25);
  EXPECT_FALSE(validate(s.app, s.graph, s.ol, s.model).valid);
}

TEST_P(Mutation, MovingACommBeforeItsProducerIsCaught) {
  auto s = testCase();
  // Pick a non-input communication and start it before the sender's calc
  // ends (preserving its duration).
  for (const auto& c : s.ol.comms()) {
    if (c.isInput()) continue;
    const double dur = c.duration();
    const double newBegin = s.ol.endCalc(c.from) - 0.5 * (dur + 0.1);
    s.ol.setComm(c.from, c.to, newBegin, newBegin + dur);
    EXPECT_FALSE(validate(s.app, s.graph, s.ol, s.model).valid);
    return;
  }
  GTEST_SKIP() << "no non-input communication";
}

TEST_P(Mutation, DroppingACommIsCaught) {
  const auto s = testCase();
  OperationList pruned(s.ol.size(), s.ol.lambda());
  for (NodeId i = 0; i < s.ol.size(); ++i) {
    pruned.setCalc(i, s.ol.beginCalc(i), s.ol.endCalc(i));
  }
  bool dropped = false;
  for (const auto& c : s.ol.comms()) {
    if (!dropped) {
      dropped = true;  // omit the first communication
      continue;
    }
    pruned.setComm(c.from, c.to, c.begin, c.end);
  }
  EXPECT_FALSE(validate(s.app, s.graph, pruned, s.model).valid);
}

TEST_P(Mutation, ShrinkingLambdaIsCaught) {
  // Any strictly smaller lambda must violate some rule: otherwise the
  // orchestrator's value was not tight against its own validator. We only
  // require detection for an aggressive shrink (half), since mild shrinks
  // can remain valid when the schedule has slack.
  auto s = testCase();
  s.ol.setLambda(s.ol.lambda() * 0.5);
  const bool stillValid = validate(s.app, s.graph, s.ol, s.model).valid;
  if (s.model == CommModel::Overlap) {
    // Prop 1 schedules are tight: half the period must always break.
    EXPECT_FALSE(stillValid);
  } else if (stillValid) {
    // One-port schedules can in rare cases survive; at minimum the busy
    // bound must still hold — cross-check against it.
    const CostModel cm(s.app, s.graph);
    EXPECT_GE(s.ol.lambda(), cm.periodLowerBound(s.model) - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Mutation,
    ::testing::Combine(::testing::Values(5001, 5002, 5003, 5004),
                       ::testing::Values(0, 1, 2)),
    [](const ::testing::TestParamInfo<std::tuple<std::uint64_t, int>>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             std::string(name(static_cast<CommModel>(std::get<1>(info.param))));
    });

}  // namespace
}  // namespace fsw
