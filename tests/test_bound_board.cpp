// The BoundBoard near-key warm-start machinery and the OUTORDER
// seed/repair bound split: structural-prefix surgery on canonical request
// keys, the prefix-indexed near table (most-recent-wins, benign racing),
// engine-level winner identity when warm starts fire (a neighbor's plan is
// never served, only its re-certified value used as a bound), degradation
// to cold behavior when the remote store dies, and the direct solver-level
// soundness of the final-value incumbent (seed-phase dominance aborts,
// repair-phase bisection aborts, bit-identical winners under loose bounds).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "src/io/serialize.hpp"
#include "src/opt/optimizer.hpp"
#include "src/sched/outorder.hpp"
#include "src/serve/bound_board.hpp"
#include "src/serve/plan_engine.hpp"
#include "src/serve/result_store.hpp"
#include "src/workload/paper_instances.hpp"

namespace fsw {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

OptimizerOptions fastOptions() {
  OptimizerOptions opt;
  opt.exactForestMaxN = 5;
  opt.heuristics.iterations = 200;
  opt.heuristics.restarts = 2;
  opt.orchestrator.order.exactCap = 120;
  opt.orchestrator.outorder.restarts = 4;
  opt.orchestrator.outorder.bisectSteps = 4;
  return opt;
}

PlanRequest baseRequest() {
  PlanRequest req;
  req.app.addService(2.0, 0.5);
  req.app.addService(1.0, 0.8);
  req.app.addService(3.0, 0.4);
  req.app.addService(1.5, 0.7);
  req.app.addPrecedence(0, 2);
  req.model = CommModel::OutOrder;
  req.objective = Objective::Period;
  req.options = fastOptions();
  return req;
}

/// Same structure, drifted parameters — the near-key scenario.
PlanRequest mutateParams(const PlanRequest& base, double costScale,
                         double selScale) {
  PlanRequest out = base;
  out.app = Application{};
  for (const Service& s : base.app.services()) {
    out.app.addService(s.cost * costScale, s.selectivity * selScale);
  }
  for (const Precedence& p : base.app.precedences()) {
    out.app.addPrecedence(p.from, p.to);
  }
  return out;
}

OptimizedPlan serialReference(const PlanRequest& req) {
  OptimizerOptions serial = req.options;
  serial.threads = 1;
  return optimizePlan(req.app, req.model, req.objective, serial);
}

/// The bit-identity contract: value bits, strategy, graph and OL all equal.
void expectIdentical(const OptimizedPlan& got, const OptimizedPlan& ref) {
  EXPECT_EQ(got.value, ref.value);
  EXPECT_EQ(got.strategy, ref.strategy);
  EXPECT_EQ(toString(got.plan.graph), toString(ref.plan.graph));
  EXPECT_EQ(toString(got.plan.ol), toString(ref.plan.ol));
}

TEST(StructuralPrefix, SplitsParametricSuffixOnly) {
  const PlanRequest base = baseRequest();
  const std::string key = PlanEngine::requestKey(base);
  const std::string prefix = structuralPrefixOfKey(key);

  // Dropping the cost:selectivity segments strictly shrinks the key.
  EXPECT_LT(prefix.size(), key.size());

  // Drifting parameters changes the key but not the prefix.
  const PlanRequest drifted = mutateParams(base, 1.25, 0.9);
  const std::string driftedKey = PlanEngine::requestKey(drifted);
  EXPECT_NE(driftedKey, key);
  EXPECT_EQ(structuralPrefixOfKey(driftedKey), prefix);

  // Structure changes the prefix: an extra precedence edge...
  PlanRequest edged = base;
  edged.app.addPrecedence(1, 3);
  EXPECT_NE(structuralPrefixOfKey(PlanEngine::requestKey(edged)), prefix);

  // ...a different model or objective...
  PlanRequest remodeled = base;
  remodeled.model = CommModel::InOrder;
  EXPECT_NE(structuralPrefixOfKey(PlanEngine::requestKey(remodeled)), prefix);
  PlanRequest reaimed = base;
  reaimed.objective = Objective::Latency;
  EXPECT_NE(structuralPrefixOfKey(PlanEngine::requestKey(reaimed)), prefix);

  // ...or a different service count.
  PlanRequest grown = base;
  grown.app.addService(1.0, 1.0);
  EXPECT_NE(structuralPrefixOfKey(PlanEngine::requestKey(grown)), prefix);
}

TEST(BoundBoardNear, NamesMostRecentKeyPerPrefix) {
  BoundBoard board{16};
  const PlanRequest base = baseRequest();
  const std::string keyA = PlanEngine::requestKey(base);
  const std::string keyB =
      PlanEngine::requestKey(mutateParams(base, 1.5, 1.0));
  const std::string prefix = structuralPrefixOfKey(keyA);
  ASSERT_EQ(structuralPrefixOfKey(keyB), prefix);

  EXPECT_FALSE(board.nearestKey(prefix).has_value());
  board.publish(keyA, 5.0);
  ASSERT_TRUE(board.nearestKey(prefix).has_value());
  EXPECT_EQ(*board.nearestKey(prefix), keyA);
  board.publish(keyB, 7.0);
  EXPECT_EQ(*board.nearestKey(prefix), keyB);  // most recent publish wins

  // Non-finite publishes never reach either table.
  board.publish(PlanEngine::requestKey(mutateParams(base, 2.0, 1.0)), kInf);
  EXPECT_EQ(*board.nearestKey(prefix), keyB);

  const auto stats = board.stats();
  EXPECT_EQ(stats.nearConsulted, 5u);
  EXPECT_EQ(stats.nearHits, 4u);
}

TEST(BoundBoardNear, ConcurrentPostersRaceBenignly) {
  BoundBoard board{64};
  const PlanRequest base = baseRequest();
  std::vector<std::string> keys;
  for (int i = 0; i < 8; ++i) {
    keys.push_back(
        PlanEngine::requestKey(mutateParams(base, 1.0 + 0.1 * i, 1.0)));
  }
  const std::string prefix = structuralPrefixOfKey(keys[0]);

  std::vector<std::thread> posters;
  posters.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    posters.emplace_back(
        [&board, &keys, i] { board.publish(keys[i], 10.0 + double(i)); });
  }
  for (auto& t : posters) t.join();

  // Whichever poster landed last named the neighbor — but it must be one
  // of the published keys, and every exact bound must be intact.
  const auto named = board.nearestKey(prefix);
  ASSERT_TRUE(named.has_value());
  bool member = false;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    member = member || *named == keys[i];
    const auto bound = board.lookup(keys[i]);
    ASSERT_TRUE(bound.has_value());
    EXPECT_EQ(*bound, 10.0 + double(i));
  }
  EXPECT_TRUE(member);
}

TEST(BoundBoardNear, WarmStartedWinnersIdenticalRegardlessOfNeighbor) {
  // Two engines warm their boards with the same two structural siblings in
  // OPPOSITE orders, so their near tables name different neighbors for the
  // shared prefix. The mutated re-solve must return the bit-identical
  // serial winner from both — the neighbor choice is a benign race.
  const PlanRequest base = baseRequest();
  const PlanRequest sibling = mutateParams(base, 1.4, 0.85);
  const PlanRequest probe = mutateParams(base, 0.7, 1.1);
  const OptimizedPlan ref = serialReference(probe);

  for (const bool reversed : {false, true}) {
    BoundBoard board{64};
    EngineConfig cfg{.threads = 1};
    cfg.boundBoard = &board;
    PlanEngine engine{cfg};
    (void)engine.optimize(reversed ? sibling : base);
    (void)engine.optimize(reversed ? base : sibling);

    const OptimizedPlan got = engine.optimize(probe);
    expectIdentical(got, ref);
    // Served by a fresh solve under a warm bound — never from a cache.
    EXPECT_EQ(got.stats.resultCacheHits, 0u);
    EXPECT_GT(board.stats().nearHits, 0u);
  }
}

TEST(BoundBoardNear, PrefixCollisionNeverServesNeighborPlan) {
  // A drastic parameter drift: the neighbor's winner value is far from the
  // probe's. The engine may only use the neighbor's RE-CERTIFIED value as
  // a bound; the returned winner must be the probe's own.
  const PlanRequest base = baseRequest();
  const PlanRequest probe = mutateParams(base, 5.0, 1.0);
  const OptimizedPlan ref = serialReference(probe);
  const OptimizedPlan baseRef = serialReference(base);
  ASSERT_NE(ref.value, baseRef.value);  // the collision is observable

  BoundBoard board{64};
  EngineConfig cfg{.threads = 1};
  cfg.boundBoard = &board;
  PlanEngine engine{cfg};
  const OptimizedPlan first = engine.optimize(base);
  expectIdentical(first, baseRef);

  const OptimizedPlan got = engine.optimize(probe);
  expectIdentical(got, ref);
  EXPECT_EQ(got.stats.resultCacheHits, 0u);
}

TEST(BoundBoardNear, StoreDeathDegradesToColdSolve) {
  const PlanRequest base = baseRequest();
  const PlanRequest probe = mutateParams(base, 1.2, 0.95);
  const OptimizedPlan ref = serialReference(probe);

  ResultStoreHost host{ResultStoreConfig{}};
  ASSERT_GT(host.port(), 0);
  RemoteResultStore storeA("127.0.0.1", host.port());
  RemoteResultStore storeB("127.0.0.1", host.port());

  EngineConfig aCfg{.threads = 1};
  aCfg.resultStore = &storeA;
  PlanEngine engineA{aCfg};
  (void)engineA.optimize(base);  // publishes the neighbor fleet-wide

  // Alive: the near GET names the neighbor and the warm solve is identical.
  EngineConfig bCfg{.threads = 1};
  bCfg.resultStore = &storeB;
  PlanEngine engineB{bCfg};
  expectIdentical(engineB.optimize(probe), ref);
  EXPECT_GT(storeB.stats().nearHits, 0u);

  // Dead: a further drift (a fresh key) degrades to a cold exact solve —
  // no hang, no stale plan, same winner as serial.
  host.stop();
  const PlanRequest probe2 = mutateParams(base, 1.3, 0.9);
  expectIdentical(engineB.optimize(probe2), serialReference(probe2));
}

// ---- Direct solver-level soundness of the seed/repair bound split ----

OutorderOptions b3Options() {
  OutorderOptions opt;
  opt.inorder.exactCap = 20000;
  opt.inorder.localSearchIters = 100;
  opt.restarts = 8;
  opt.repairIters = 200;
  opt.bisectSteps = 8;
  opt.seed = 17;
  return opt;
}

TEST(OutorderBoundSplit, SeedPhaseAbortsDominatedCandidate) {
  // B.3's one-port analytic floor is 12: an incumbent below it dominates
  // the whole candidate before the seed even runs.
  const PaperInstance inst = counterexampleB3();
  std::atomic<std::size_t> seedAborts{0}, repairAborts{0};
  OutorderOptions opt = b3Options();
  opt.upperBound = 11.0;
  opt.seedBoundAborts = &seedAborts;
  opt.repairBoundAborts = &repairAborts;

  const auto out = onePortOverlapOrchestratePeriod(inst.app, inst.graph, opt);
  EXPECT_TRUE(std::isinf(out.value));
  EXPECT_EQ(seedAborts.load(), 1u);
  EXPECT_EQ(repairAborts.load(), 0u);
}

TEST(OutorderBoundSplit, RepairPhaseAbortsWhenFloorCrossesIncumbent) {
  // The incumbent sits strictly between the floor (12) and the unbounded
  // winner: the seed survives (its derived bound covers the worst-case
  // repair improvement) and the bisection aborts when its certified lower
  // end crosses the incumbent.
  const PaperInstance inst = counterexampleB3();
  const auto unbounded =
      onePortOverlapOrchestratePeriod(inst.app, inst.graph, b3Options());
  ASSERT_TRUE(std::isfinite(unbounded.value));
  ASSERT_GT(unbounded.value, 12.5);  // Appendix B.3: every schedule > 12

  std::atomic<std::size_t> seedAborts{0}, repairAborts{0};
  OutorderOptions tight = b3Options();
  tight.upperBound = 12.5;
  tight.seedBoundAborts = &seedAborts;
  tight.repairBoundAborts = &repairAborts;
  const auto bounded =
      onePortOverlapOrchestratePeriod(inst.app, inst.graph, tight);
  EXPECT_TRUE(std::isinf(bounded.value));
  EXPECT_EQ(seedAborts.load(), 0u);
  EXPECT_GE(repairAborts.load(), 1u);
}

TEST(OutorderBoundSplit, LooseBoundKeepsWinnerBitIdentical) {
  const PaperInstance inst = counterexampleB3();
  const auto unbounded =
      onePortOverlapOrchestratePeriod(inst.app, inst.graph, b3Options());
  ASSERT_TRUE(std::isfinite(unbounded.value));

  std::atomic<std::size_t> seedAborts{0}, repairAborts{0};
  OutorderOptions loose = b3Options();
  loose.upperBound = unbounded.value + 1.0;
  loose.seedBoundAborts = &seedAborts;
  loose.repairBoundAborts = &repairAborts;
  const auto bounded =
      onePortOverlapOrchestratePeriod(inst.app, inst.graph, loose);
  EXPECT_EQ(bounded.value, unbounded.value);
  EXPECT_EQ(toString(bounded.ol), toString(unbounded.ol));
  EXPECT_EQ(seedAborts.load(), 0u);
  EXPECT_EQ(repairAborts.load(), 0u);

  // An incumbent equal to the winner keeps it too: the feasibility probe
  // at the incumbent is exact, not strict.
  std::atomic<std::size_t> seedEq{0}, repairEq{0};
  OutorderOptions atWinner = b3Options();
  atWinner.upperBound = unbounded.value;
  atWinner.seedBoundAborts = &seedEq;
  atWinner.repairBoundAborts = &repairEq;
  const auto exact =
      onePortOverlapOrchestratePeriod(inst.app, inst.graph, atWinner);
  EXPECT_EQ(exact.value, unbounded.value);
  EXPECT_EQ(toString(exact.ol), toString(unbounded.ol));
}

}  // namespace
}  // namespace fsw
