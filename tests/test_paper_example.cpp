// Section 2.3 end-to-end: the paper's hand-written operation lists for the
// Fig 1 example are validated by our Appendix A validators, achieve exactly
// the claimed values (latency 21; period 4 OVERLAP, 7 OUTORDER, 23/3
// INORDER), and our orchestrators recover them from scratch.
#include <gtest/gtest.h>

#include "src/common/rational.hpp"
#include "src/oplist/validate.hpp"
#include "src/sched/inorder.hpp"
#include "src/sched/latency.hpp"
#include "src/sched/orchestrator.hpp"
#include "src/sched/outorder.hpp"
#include "src/sched/overlap.hpp"
#include "src/sim/replay.hpp"
#include "src/workload/paper_instances.hpp"

namespace fsw {
namespace {

constexpr NodeId C1 = 0, C2 = 1, C3 = 2, C4 = 3, C5 = 4;

/// The paper's latency-21 operation list (Section 2.3).
OperationList paperLatencyOl(double lambda) {
  OperationList ol(5, lambda);
  ol.setCalc(C1, 1, 5);
  ol.setCalc(C2, 6, 10);
  ol.setCalc(C3, 11, 15);
  ol.setCalc(C4, 7, 11);
  ol.setCalc(C5, 16, 20);
  ol.setComm(kWorld, C1, 0, 1);
  ol.setComm(C1, C2, 5, 6);
  ol.setComm(C1, C4, 6, 7);
  ol.setComm(C2, C3, 10, 11);
  ol.setComm(C3, C5, 15, 16);
  ol.setComm(C4, C5, 11, 12);
  ol.setComm(C5, kWorld, 20, 21);
  return ol;
}

TEST(Sec23, PaperLatencyListIsValidAndAchieves21) {
  const auto pi = sec23Example();
  const auto ol = paperLatencyOl(21.0);
  for (const CommModel m : kAllModels) {
    const auto rep = validate(pi.app, pi.graph, ol, m);
    EXPECT_TRUE(rep.valid) << name(m) << ": " << rep.summary();
  }
  EXPECT_DOUBLE_EQ(ol.latency(), 21.0);
}

TEST(Sec23, SameListAtLambda5IsOverlapValid) {
  // "if we keep the same list and only change lambda = 21 into lambda = 5,
  // we have no resource conflict" (Section 2.3).
  const auto pi = sec23Example();
  const auto ol = paperLatencyOl(5.0);
  const auto rep = validate(pi.app, pi.graph, ol, CommModel::Overlap);
  EXPECT_TRUE(rep.valid) << rep.summary();
}

TEST(Sec23, PaperOverlapPeriod4ListIsValid) {
  // lambda = 4 requires moving comm C4->C5 to [12, 13).
  const auto pi = sec23Example();
  auto ol = paperLatencyOl(4.0);
  ol.setComm(C4, C5, 12, 13);
  const auto rep = validate(pi.app, pi.graph, ol, CommModel::Overlap);
  EXPECT_TRUE(rep.valid) << rep.summary();
  // But the unmodified list at lambda = 4 is NOT overlap-valid.
  const auto bad = validate(pi.app, pi.graph, paperLatencyOl(4.0),
                            CommModel::Overlap);
  EXPECT_FALSE(bad.valid);
}

TEST(Sec23, PaperOutorderPeriod7ListIsValid) {
  // lambda = 7 with BeginComm(4,5) = 14 and BeginCalc(4) = 8 (Section 2.3).
  const auto pi = sec23Example();
  auto ol = paperLatencyOl(7.0);
  ol.setCalc(C4, 8, 12);
  ol.setComm(C4, C5, 14, 15);
  const auto rep = validate(pi.app, pi.graph, ol, CommModel::OutOrder);
  EXPECT_TRUE(rep.valid) << rep.summary();
  // The INORDER rules reject it: C4 receives set n+1 before sending set n.
  EXPECT_FALSE(validate(pi.app, pi.graph, ol, CommModel::InOrder).valid);
}

OperationList paperInorder233Ol() {
  const double third = 1.0 / 3.0;
  auto ol = paperLatencyOl(23.0 / 3.0);
  ol.setComm(C1, C4, 6 + 2 * third, 7 + 2 * third);
  ol.setCalc(C4, 7 + 2 * third, 11 + 2 * third);
  ol.setComm(C4, C5, 13 + third, 14 + third);
  return ol;
}

TEST(Sec23, PaperInorderPeriod233ListIsValid) {
  const auto pi = sec23Example();
  const auto ol = paperInorder233Ol();
  const auto rep = validate(pi.app, pi.graph, ol, CommModel::InOrder);
  EXPECT_TRUE(rep.valid) << rep.summary();
  EXPECT_NEAR(ol.period(), Rational(23, 3).toDouble(), 1e-12);
}

TEST(Sec23, InorderListFailsBelow233) {
  // The same times with any smaller lambda violate constraint (1).
  const auto pi = sec23Example();
  auto ol = paperInorder233Ol();
  ol.setLambda(7.5);
  EXPECT_FALSE(validate(pi.app, pi.graph, ol, CommModel::InOrder).valid);
}

TEST(Sec23, OverlapOrchestratorAchieves4) {
  const auto pi = sec23Example();
  const auto ol = overlapPeriodSchedule(pi.app, pi.graph);
  EXPECT_DOUBLE_EQ(ol.period(), 4.0);
  const auto rep = validate(pi.app, pi.graph, ol, CommModel::Overlap);
  EXPECT_TRUE(rep.valid) << rep.summary();
}

TEST(Sec23, InorderOrchestratorFinds233) {
  const auto pi = sec23Example();
  const auto r = inorderOrchestratePeriod(pi.app, pi.graph);
  EXPECT_NEAR(r.value, 23.0 / 3.0, 1e-6);
  const auto rep = validate(pi.app, pi.graph, r.ol, CommModel::InOrder);
  EXPECT_TRUE(rep.valid) << rep.summary();
}

TEST(Sec23, OutorderOrchestratorFinds7) {
  const auto pi = sec23Example();
  OutorderOptions opt;
  opt.seed = 5;
  const auto r = outorderOrchestratePeriod(pi.app, pi.graph, opt);
  EXPECT_NEAR(r.value, 7.0, 1e-6);
  const auto rep = validate(pi.app, pi.graph, r.ol, CommModel::OutOrder);
  EXPECT_TRUE(rep.valid) << rep.summary();
}

TEST(Sec23, LatencyOrchestratorFinds21) {
  const auto pi = sec23Example();
  for (const CommModel m : kAllModels) {
    const auto r = latencyOrchestrate(pi.app, pi.graph, m);
    EXPECT_NEAR(r.value, 21.0, 1e-9) << name(m);
  }
}

TEST(Sec23, OrchestratorFacadeReportsBounds) {
  const auto pi = sec23Example();
  const auto overlap =
      orchestrate(pi.app, pi.graph, CommModel::Overlap, Objective::Period);
  EXPECT_TRUE(overlap.provablyOptimal());
  EXPECT_DOUBLE_EQ(overlap.lowerBound, 4.0);

  const auto inorder =
      orchestrate(pi.app, pi.graph, CommModel::InOrder, Objective::Period);
  EXPECT_DOUBLE_EQ(inorder.lowerBound, 7.0);
  EXPECT_NEAR(inorder.result.value, 23.0 / 3.0, 1e-6);
  EXPECT_FALSE(inorder.provablyOptimal());  // 23/3 > 7: the gap is real

  const auto outorder =
      orchestrate(pi.app, pi.graph, CommModel::OutOrder, Objective::Period);
  EXPECT_NEAR(outorder.result.value, 7.0, 1e-6);
  EXPECT_TRUE(outorder.provablyOptimal());
}

TEST(Sec23, ReplayerConfirmsAnalyticPeriods) {
  const auto pi = sec23Example();
  // Overlap at 4.
  auto ol = paperLatencyOl(4.0);
  ol.setComm(C4, C5, 12, 13);
  auto sim = replayOperationList(pi.app, pi.graph, ol, CommModel::Overlap, 64);
  EXPECT_TRUE(sim.ok);
  EXPECT_NEAR(sim.measuredPeriod, 4.0, 1e-9);
  // Outorder at 7.
  ol = paperLatencyOl(7.0);
  ol.setCalc(C4, 8, 12);
  ol.setComm(C4, C5, 14, 15);
  sim = replayOperationList(pi.app, pi.graph, ol, CommModel::OutOrder, 64);
  EXPECT_TRUE(sim.ok);
  EXPECT_NEAR(sim.measuredPeriod, 7.0, 1e-9);
  // Inorder at 23/3.
  sim = replayOperationList(pi.app, pi.graph, paperInorder233Ol(),
                            CommModel::InOrder, 64);
  EXPECT_TRUE(sim.ok);
  EXPECT_NEAR(sim.measuredPeriod, 23.0 / 3.0, 1e-9);
}

TEST(Sec23, ReplayerFlagsInvalidList) {
  const auto pi = sec23Example();
  // The latency list crammed to lambda = 4 overlaps C4's comm with C5's calc
  // under a serialized model.
  const auto ol = paperLatencyOl(4.0);
  const auto sim =
      replayOperationList(pi.app, pi.graph, ol, CommModel::OutOrder, 16);
  EXPECT_FALSE(sim.ok);
  EXPECT_GT(sim.violations, 0u);
}

}  // namespace
}  // namespace fsw
