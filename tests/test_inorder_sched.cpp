#include <gtest/gtest.h>

#include "src/core/cost_model.hpp"
#include "src/oplist/validate.hpp"
#include "src/sched/inorder.hpp"
#include "src/sim/greedy.hpp"
#include "src/sim/replay.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_instances.hpp"

namespace fsw {
namespace {

TEST(InorderForOrders, SingleServiceCycle) {
  Application app;
  app.addService(3.0, 0.5);
  ExecutionGraph g(1);
  const auto r = inorderPeriodForOrders(app, g, PortOrders::canonical(g));
  ASSERT_TRUE(r);
  // in(1) + comp(3) + out(0.5), fully serialized.
  EXPECT_NEAR(r->value, 4.5, 1e-6);
  EXPECT_TRUE(validate(app, g, r->ol, CommModel::InOrder).valid);
}

TEST(InorderForOrders, ChainAchievesBusyBound) {
  Application app;
  app.addService(2.0, 0.5);
  app.addService(1.0, 1.0);
  app.addService(0.5, 2.0);
  const auto g = ExecutionGraph::chain({0, 1, 2});
  const auto r = inorderPeriodForOrders(app, g, PortOrders::canonical(g));
  ASSERT_TRUE(r);
  const CostModel cm(app, g);
  EXPECT_NEAR(r->value, cm.periodLowerBound(CommModel::InOrder), 1e-6);
  EXPECT_TRUE(validate(app, g, r->ol, CommModel::InOrder).valid);
}

TEST(InorderForOrders, Sec23OrdersMatter) {
  const auto pi = sec23Example();
  // Sending to C2 before C4 and receiving C4 before C3 is the paper's
  // optimal configuration at 23/3.
  auto po = PortOrders::canonical(pi.graph);
  po.setOut(0, {1, 3});
  po.setIn(4, {3, 2});
  const auto good = inorderPeriodForOrders(pi.app, pi.graph, po);
  ASSERT_TRUE(good);
  EXPECT_NEAR(good->value, 23.0 / 3.0, 1e-6);
  // The reverse send order is strictly worse.
  po.setOut(0, {3, 1});
  po.setIn(4, {2, 3});
  const auto bad = inorderPeriodForOrders(pi.app, pi.graph, po);
  ASSERT_TRUE(bad);
  EXPECT_GT(bad->value, good->value + 1e-9);
}

TEST(InorderOrchestrate, ValidAndAboveBoundOnRandomForests) {
  Prng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    WorkloadSpec spec;
    spec.n = 6;
    const auto app = randomApplication(spec, rng);
    const auto g = randomForest(app, rng);
    OrchestrationOptions opt;
    opt.exactCap = 400;  // keep the test fast; heuristic beyond that
    const auto r = inorderOrchestratePeriod(app, g, opt);
    const CostModel cm(app, g);
    EXPECT_GE(r.value, cm.periodLowerBound(CommModel::InOrder) - 1e-9);
    const auto rep = validate(app, g, r.ol, CommModel::InOrder);
    EXPECT_TRUE(rep.valid) << "trial " << trial << ": " << rep.summary();
  }
}

TEST(InorderOrchestrate, ReplayerConfirmsPeriod) {
  const auto pi = sec23Example();
  const auto r = inorderOrchestratePeriod(pi.app, pi.graph);
  const auto sim =
      replayOperationList(pi.app, pi.graph, r.ol, CommModel::InOrder, 48);
  EXPECT_TRUE(sim.ok);
  EXPECT_NEAR(sim.measuredPeriod, r.value, 1e-6);
}

TEST(InorderOrchestrate, BeatsOrMatchesGreedySimulation) {
  // The orchestrated period never exceeds what the greedy runtime achieves
  // with the same orders (the greedy baseline is one feasible schedule).
  const auto pi = sec23Example();
  const auto r = inorderOrchestratePeriod(pi.app, pi.graph);
  const auto sim = simulateGreedyInOrder(pi.app, pi.graph, r.orders, 128);
  ASSERT_TRUE(sim.ok);
  EXPECT_LE(r.value, sim.measuredPeriod + 1e-6);
}

TEST(OneportLatencyForOrders, MatchesCriticalPathOnChain) {
  Application app;
  app.addService(2.0, 0.5);
  app.addService(3.0, 1.0);
  const auto g = ExecutionGraph::chain({0, 1});
  const auto r = oneportLatencyForOrders(app, g, PortOrders::canonical(g));
  ASSERT_TRUE(r);
  EXPECT_NEAR(r->value, 5.5, 1e-9);
  EXPECT_TRUE(validate(app, g, r->ol, CommModel::InOrder).valid);
  EXPECT_TRUE(validate(app, g, r->ol, CommModel::OutOrder).valid);
}

TEST(OneportOrchestrateLatency, Sec23Finds21) {
  const auto pi = sec23Example();
  const auto r = oneportOrchestrateLatency(pi.app, pi.graph);
  EXPECT_NEAR(r.value, 21.0, 1e-9);
  EXPECT_TRUE(validate(pi.app, pi.graph, r.ol, CommModel::InOrder).valid);
}

TEST(OneportOrchestrateLatency, NeverBelowCriticalPath) {
  Prng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    WorkloadSpec spec;
    spec.n = 7;
    const auto app = randomApplication(spec, rng);
    const auto g = randomLayeredDag(app, 3, 2, rng);
    OrchestrationOptions opt;
    opt.exactCap = 400;
    const auto r = oneportOrchestrateLatency(app, g, opt);
    const CostModel cm(app, g);
    EXPECT_GE(r.value, cm.latencyLowerBound() - 1e-9);
    const auto rep = validate(app, g, r.ol, CommModel::OutOrder);
    EXPECT_TRUE(rep.valid) << "trial " << trial << ": " << rep.summary();
  }
}

}  // namespace
}  // namespace fsw
