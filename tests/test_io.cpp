#include <gtest/gtest.h>

#include <sstream>

#include "src/io/dot.hpp"
#include "src/io/gantt.hpp"
#include "src/io/serialize.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_instances.hpp"

namespace fsw {
namespace {

TEST(Serialize, ApplicationRoundTrip) {
  Application app;
  app.addService(2.5, 0.125, "alpha");
  app.addService(1.0, 3.5, "beta");
  app.addPrecedence(0, 1);
  const auto text = toString(app);
  const auto back = applicationFromString(text);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.service(0).name, "alpha");
  EXPECT_DOUBLE_EQ(back.service(0).cost, 2.5);
  EXPECT_DOUBLE_EQ(back.service(0).selectivity, 0.125);
  ASSERT_EQ(back.precedences().size(), 1u);
  EXPECT_EQ(back.precedences()[0].from, 0u);
}

TEST(Serialize, ApplicationRoundTripPreservesDoubles) {
  Application app;
  app.addService(100.0 / 0.9999, 0.9999);
  const auto back = applicationFromString(toString(app));
  EXPECT_DOUBLE_EQ(back.service(0).cost, 100.0 / 0.9999);
  EXPECT_DOUBLE_EQ(back.service(0).selectivity, 0.9999);
}

TEST(Serialize, GraphRoundTrip) {
  const auto pi = sec23Example();
  const auto back = graphFromString(toString(pi.graph));
  EXPECT_EQ(back, pi.graph);
}

TEST(Serialize, RandomGraphRoundTrip) {
  Prng rng(6);
  WorkloadSpec spec;
  spec.n = 15;
  const auto app = randomApplication(spec, rng);
  const auto g = randomLayeredDag(app, 4, 3, rng);
  EXPECT_EQ(graphFromString(toString(g)), g);
}

TEST(Serialize, BadInputThrows) {
  EXPECT_THROW(applicationFromString("garbage 3"), std::runtime_error);
  EXPECT_THROW(graphFromString("nope"), std::runtime_error);
}

TEST(Dot, ContainsNodesAndEdges) {
  const auto pi = sec23Example();
  const auto dot = toDot(pi.app, pi.graph);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("in -> n0"), std::string::npos);
  EXPECT_NE(dot.find("n4 -> out"), std::string::npos);
}

TEST(Dot, PrecedenceGraph) {
  Application app;
  app.addService(1.0, 1.0, "a");
  app.addService(1.0, 1.0, "b");
  app.addPrecedence(0, 1);
  const auto dot = precedenceDot(app);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

TEST(Serialize, OperationListRoundTrip) {
  OperationList ol(2, 7.5);
  ol.setCalc(0, 1.0, 3.0);
  ol.setCalc(1, 4.25, 6.0);
  ol.setComm(kWorld, 0, 0.0, 1.0);
  ol.setComm(0, 1, 3.0, 4.25);
  ol.setComm(1, kWorld, 6.0, 7.0);
  const auto back = operationListFromString(toString(ol));
  EXPECT_DOUBLE_EQ(back.lambda(), 7.5);
  EXPECT_DOUBLE_EQ(back.beginCalc(1), 4.25);
  ASSERT_EQ(back.comms().size(), 3u);
  const auto c = back.comm(kWorld, 0);
  ASSERT_TRUE(c);
  EXPECT_DOUBLE_EQ(c->end, 1.0);
  EXPECT_TRUE(back.comm(1, kWorld));
}

TEST(Serialize, OperationListBadInputThrows) {
  EXPECT_THROW(operationListFromString("nope"), std::runtime_error);
  EXPECT_THROW(operationListFromString("oplist 1 1.0 0\nbad 0 0 1"),
               std::runtime_error);
}

TEST(Gantt, RendersAllRowsAndGlyphs) {
  const auto pi = sec23Example();
  OperationList ol(5, 21.0);
  ol.setCalc(0, 1, 5);
  ol.setCalc(1, 6, 10);
  ol.setCalc(2, 11, 15);
  ol.setCalc(3, 7, 11);
  ol.setCalc(4, 16, 20);
  ol.setComm(kWorld, 0, 0, 1);
  ol.setComm(0, 1, 5, 6);
  ol.setComm(0, 3, 6, 7);
  ol.setComm(1, 2, 10, 11);
  ol.setComm(2, 4, 15, 16);
  ol.setComm(3, 4, 11, 12);
  ol.setComm(4, kWorld, 20, 21);
  const auto text = renderGantt(pi.app, ol);
  // One row per service plus a header.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 6);
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find('>'), std::string::npos);
  EXPECT_NE(text.find('<'), std::string::npos);
}

TEST(Gantt, ClipsToMaxColumns) {
  Application app;
  app.addService(1000.0, 1.0, "slow");
  ExecutionGraph g(1);
  OperationList ol(1, 1002.0);
  ol.setCalc(0, 1, 1001);
  ol.setComm(kWorld, 0, 0, 1);
  ol.setComm(0, kWorld, 1001, 1002);
  GanttOptions opt;
  opt.maxColumns = 40;
  const auto text = renderGantt(app, ol, opt);
  for (const auto& line : {text.substr(text.find('\n') + 1)}) {
    EXPECT_LE(line.find('\n'), 60u);
  }
}

TEST(Csv, WritesRows) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"a", "b", "c"});
  csv.row({"1", "2", "3"});
  EXPECT_EQ(os.str(), "a,b,c\n1,2,3\n");
}

}  // namespace
}  // namespace fsw
