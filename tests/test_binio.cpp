// The binary primitives under hostile input: truncated varints at every
// cut, overlong (non-canonical) LEB128, huge declared lengths, tampered
// block headers — every malformed buffer throws a clean std::runtime_error
// naming the context and byte offset, never over-reads, never allocates
// for a length it cannot satisfy. Round trips are bit-exact for every
// value, signed zeros and NaN payloads included. The CI sanitizer matrix
// (ASan+UBSan) runs these, so an over-read or signed overflow in the
// decoder fails loudly here.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/io/binio.hpp"

namespace fsw::binio {
namespace {

std::uint64_t bitsOf(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

TEST(BinIo, VarintRoundTripsEdgeValues) {
  const std::vector<std::uint64_t> values = {
      0,
      1,
      127,
      128,
      129,
      (1ull << 14) - 1,
      1ull << 14,
      (1ull << 35) + 12345,
      std::numeric_limits<std::uint64_t>::max() - 1,
      std::numeric_limits<std::uint64_t>::max()};
  Writer w;
  for (const std::uint64_t v : values) w.u64(v);
  const std::string buf = w.take();
  Reader r(buf, "test");
  for (const std::uint64_t v : values) EXPECT_EQ(r.u64(), v);
  r.expectEnd();
}

TEST(BinIo, ZigzagRoundTripsEdgeValues) {
  const std::vector<std::int64_t> values = {
      0,
      -1,
      1,
      -64,
      63,
      -65,
      64,
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max()};
  Writer w;
  for (const std::int64_t v : values) w.i64(v);
  const std::string buf = w.take();
  Reader r(buf, "test");
  for (const std::int64_t v : values) EXPECT_EQ(r.i64(), v);
  r.expectEnd();
}

TEST(BinIo, DoubleRoundTripsAreBitExact) {
  const std::vector<double> values = {
      0.0,
      -0.0,  // == compares equal to 0.0; the bit patterns must differ
      2.0,
      1.0 / 3.0,
      5e-324,  // smallest denormal
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN()};
  Writer w;
  for (const double v : values) w.f64(v);
  const std::string buf = w.take();
  Reader r(buf, "test");
  for (const double v : values) EXPECT_EQ(bitsOf(r.f64()), bitsOf(v));
  r.expectEnd();
}

TEST(BinIo, CleanDoublesEncodeShort) {
  // The byte-reversal property the artifact sizes lean on: clean values
  // shed their trailing mantissa zeros.
  Writer w;
  w.f64(2.0);
  EXPECT_LE(w.take().size(), 2u);
  Writer w2;
  w2.f64(0.0);
  EXPECT_EQ(w2.take().size(), 1u);
}

TEST(BinIo, TruncatedVarintsThrowAtEveryCut) {
  Writer w;
  w.u64((1ull << 56) + 987654321);  // a long varint
  const std::string buf = w.take();
  ASSERT_GT(buf.size(), 2u);
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    const std::string cutBuf = buf.substr(0, cut);
    Reader r(cutBuf, "test");
    EXPECT_THROW((void)r.u64(), std::runtime_error) << "cut at " << cut;
  }
}

TEST(BinIo, OverlongLeb128IsRejected) {
  // 0x80 0x00 decodes to 0 but is not the canonical one-byte encoding.
  {
    const std::string buf("\x80\x00", 2);
    Reader r(buf, "test");
    EXPECT_THROW((void)r.u64(), std::runtime_error);
  }
  // Same for a longer value: canonical tail byte, then a redundant zero.
  {
    const std::string buf("\xff\x80\x00", 3);
    Reader r(buf, "test");
    EXPECT_THROW((void)r.u64(), std::runtime_error);
  }
}

TEST(BinIo, OversizedVarintsAreRejected) {
  // Ten continuation bytes: longer than any 64-bit value needs.
  {
    const std::string buf(10, '\x80');
    Reader r(buf, "test");
    EXPECT_THROW((void)r.u64(), std::runtime_error);
  }
  // Exactly ten bytes but the tenth carries bits above bit 63.
  {
    std::string buf(9, '\xff');
    buf.push_back('\x7f');
    Reader r(buf, "test");
    EXPECT_THROW((void)r.u64(), std::runtime_error);
  }
  // The max value itself is fine: nine 0xff then 0x01.
  {
    std::string buf(9, '\xff');
    buf.push_back('\x01');
    Reader r(buf, "test");
    EXPECT_EQ(r.u64(), std::numeric_limits<std::uint64_t>::max());
  }
}

TEST(BinIo, HugeDeclaredStringLengthFailsWithoutAllocating) {
  // A declared length in the exabytes with two bytes of payload behind
  // it: the reader must fail on the length check, not try to allocate or
  // read past the buffer.
  Writer w;
  w.u64(1ull << 60);
  std::string buf = w.take();
  buf += "ab";
  Reader r(buf, "test");
  EXPECT_THROW((void)r.str(), std::runtime_error);
}

TEST(BinIo, StringsRoundTripIncludingEmbeddedNulAndMagicByte) {
  std::string tricky("a\0b", 3);
  tricky.push_back(static_cast<char>(kMagicByte));
  Writer w;
  w.str("");
  w.str(tricky);
  const std::string buf = w.take();
  Reader r(buf, "test");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), tricky);
  r.expectEnd();
}

TEST(BinIo, ErrorsNameContextAndByteOffset) {
  Writer w;
  w.u64(7);
  const std::string buf = w.take();
  Reader r(buf, "score cache");
  (void)r.u64();
  try {
    (void)r.u8();  // past the end
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("score cache"), std::string::npos) << what;
    EXPECT_NE(what.find("byte offset 1"), std::string::npos) << what;
  }
}

TEST(BinIo, ExpectEndRejectsTrailingBytes) {
  Writer w;
  w.u64(1);
  w.u8(0);
  const std::string buf = w.take();
  Reader r(buf, "test");
  (void)r.u64();
  EXPECT_THROW(r.expectEnd(), std::runtime_error);
}

TEST(BinIo, BlockRoundTripsThroughAStream) {
  Writer w;
  w.u64(42);
  w.str("payload");
  const std::string blob = finishBlock('T', 3, w.take());
  EXPECT_TRUE(isBinary(blob));

  std::stringstream ss(blob);
  EXPECT_TRUE(sniffBinary(ss));
  const Block block = readBlock(ss, "test");
  EXPECT_EQ(block.kind, 'T');
  EXPECT_EQ(block.version, 3u);
  Reader r(block.body, "test");
  EXPECT_EQ(r.u64(), 42u);
  EXPECT_EQ(r.str(), "payload");
  r.expectEnd();
  // The stream is positioned exactly after the block (shard sets
  // concatenate blocks back to back).
  EXPECT_EQ(ss.peek(), std::char_traits<char>::eof());
}

TEST(BinIo, OpenBlockVerifiesMagicKindVersionAndLength) {
  Writer w;
  w.u64(5);
  const std::string blob = finishBlock('T', 1, w.take());

  EXPECT_NO_THROW({
    Reader r = openBlock(blob, 'T', 1, "test");
    EXPECT_EQ(r.u64(), 5u);
  });
  EXPECT_THROW((void)openBlock(blob, 'X', 1, "test"), std::runtime_error);
  EXPECT_THROW((void)openBlock(blob, 'T', 2, "test"), std::runtime_error);
  EXPECT_THROW((void)openBlock("text 1\n", 'T', 1, "test"),
               std::runtime_error);
  // Trailing bytes beyond the declared body are malformed.
  EXPECT_THROW((void)openBlock(blob + "x", 'T', 1, "test"),
               std::runtime_error);
  // Truncation anywhere inside the blob is a clean error.
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    EXPECT_THROW((void)openBlock(blob.substr(0, cut), 'T', 1, "test"),
                 std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(BinIo, BlockWithHugeDeclaredBodyIsRejectedBeforeAllocation) {
  // Hand-craft a header declaring a body beyond kMaxBlockBody.
  Writer w;
  w.u8(kMagicByte);
  w.u8(static_cast<std::uint8_t>('T'));
  w.u64(1);                  // version
  w.u64(kMaxBlockBody + 1);  // declared body length
  const std::string blob = w.take();
  std::stringstream ss(blob);
  EXPECT_THROW((void)readBlock(ss, "test"), std::runtime_error);
  EXPECT_THROW((void)openBlock(blob, 'T', 1, "test"), std::runtime_error);
}

TEST(BinIo, TruncatedBlockStreamsThrow) {
  Writer w;
  w.str("some body content");
  const std::string blob = finishBlock('T', 2, w.take());
  for (const std::size_t cut : {std::size_t{0}, std::size_t{1},
                                std::size_t{3}, blob.size() - 1}) {
    std::stringstream ss(blob.substr(0, cut));
    EXPECT_THROW((void)readBlock(ss, "test"), std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(BinIo, ZstrRoundTripsEveryShape) {
  std::string tricky("a\0b", 3);
  tricky.push_back(static_cast<char>(kMagicByte));
  std::string repetitive;
  for (int i = 0; i < 64; ++i) repetitive += "C1;2.5:0.125";
  const std::vector<std::string> values = {
      "",                        // empty
      "x",                       // below the minimum match length
      "abcd",                    // exactly one potential match seed
      tricky,                    // embedded NUL and the magic byte
      repetitive,                // the cache-key shape zstr exists for
      std::string(1000, 'z'),    // pure run: overlapping self-reference
  };
  Writer w;
  for (const auto& v : values) w.zstr(v);
  const std::string buf = w.take();
  Reader r(buf, "test");
  for (const auto& v : values) EXPECT_EQ(r.zstr(), v);
  r.expectEnd();
}

TEST(BinIo, ZstrCompressesRepetitiveKeys) {
  // The shape request keys take: one token per service, repeated.
  std::string key = "sig";
  for (int i = 0; i < 200; ++i) key += ";1.5:0.99998";
  Writer w;
  w.zstr(key);
  const std::string buf = w.take();
  EXPECT_LT(buf.size(), key.size() / 10) << buf.size() << " vs " << key.size();
  Reader r(buf, "test");
  EXPECT_EQ(r.zstr(), key);
}

TEST(BinIo, ZstrReencodeIsByteIdentical) {
  std::string key = "app";
  for (int i = 0; i < 50; ++i) key += ";2:0.5";
  Writer w1;
  w1.zstr(key);
  const std::string first = w1.take();
  Reader r(first, "test");
  Writer w2;
  w2.zstr(r.zstr());
  EXPECT_EQ(w2.take(), first);
}

TEST(BinIo, ZstrTruncationThrowsAtEveryCut) {
  std::string s;
  for (int i = 0; i < 16; ++i) s += "tok:123|";
  Writer w;
  w.zstr(s);
  const std::string buf = w.take();
  ASSERT_GT(buf.size(), 4u);
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    const std::string cutBuf = buf.substr(0, cut);
    Reader r(cutBuf, "test");
    EXPECT_THROW((void)r.zstr(), std::runtime_error) << "cut at " << cut;
  }
}

TEST(BinIo, ZstrRejectsMalformedTokenStreams) {
  const auto expectFails = [](Writer& w, const char* what) {
    const std::string buf = w.take();
    Reader r(buf, "test");
    EXPECT_THROW((void)r.zstr(), std::runtime_error) << what;
  };
  {
    Writer w;
    w.u64(kMaxBlockBody + 1);
    expectFails(w, "declared decompressed length beyond the block cap");
  }
  {
    Writer w;
    w.u64(2);  // decompressed length 2
    w.u64(3);  // but a 3-byte literal run
    w.raw("abc");
    expectFails(w, "literal run overrunning the declared length");
  }
  {
    Writer w;
    w.u64(8);
    w.u64(4);
    w.raw("abab");
    w.u64(0);  // match length 0
    w.u64(2);
    expectFails(w, "zero-length match");
  }
  {
    Writer w;
    w.u64(6);
    w.u64(4);
    w.raw("abab");
    w.u64(5);  // 4 + 5 > 6
    w.u64(2);
    expectFails(w, "match overrunning the declared length");
  }
  {
    Writer w;
    w.u64(8);
    w.u64(4);
    w.raw("abab");
    w.u64(4);
    w.u64(0);
    expectFails(w, "distance zero");
  }
  {
    Writer w;
    w.u64(8);
    w.u64(4);
    w.raw("abab");
    w.u64(4);
    w.u64(5);  // only 4 bytes decoded so far
    expectFails(w, "distance beyond the decoded prefix");
  }
}

TEST(BinIo, ZstrOverlappingReferenceDecodesAsRun) {
  // Hand-built stream: one literal byte then a 7-byte reference at
  // distance 1 — the canonical overlapping-copy case.
  Writer w;
  w.u64(8);
  w.u64(1);
  w.raw("q");
  w.u64(7);
  w.u64(1);
  const std::string buf = w.take();
  Reader r(buf, "test");
  EXPECT_EQ(r.zstr(), "qqqqqqqq");
  r.expectEnd();
}

TEST(BinIo, SniffSkipsLeadingWhitespaceAndDetectsText) {
  std::stringstream text("  \n fswscorecache 2\n");
  EXPECT_FALSE(sniffBinary(text));
  // The sniff must not consume the payload it inspected.
  std::string word;
  text >> word;
  EXPECT_EQ(word, "fswscorecache");

  std::stringstream empty;
  EXPECT_FALSE(sniffBinary(empty));
}

}  // namespace
}  // namespace fsw::binio
