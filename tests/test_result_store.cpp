// The shared remote result store: GET/PUT/STATS round trips over the
// frame protocol, a cold engine behind a second host serving a repeat
// with zero new orchestrations, incumbent bounds forwarded fleet-wide
// (winner-preserving), graceful degradation when the store dies, and the
// frame-level rejection discipline on the store port.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <string>

#include "src/io/serialize.hpp"
#include "src/opt/optimizer.hpp"
#include "src/serve/plan_engine.hpp"
#include "src/serve/plan_service.hpp"
#include "src/serve/result_store.hpp"

namespace fsw {
namespace {

OptimizerOptions fastOptions() {
  OptimizerOptions opt;
  opt.exactForestMaxN = 5;
  opt.heuristics.iterations = 200;
  opt.heuristics.restarts = 2;
  opt.orchestrator.order.exactCap = 120;
  opt.orchestrator.outorder.restarts = 4;
  opt.orchestrator.outorder.bisectSteps = 4;
  return opt;
}

PlanRequest smallRequest(double seed = 2.0) {
  PlanRequest req;
  req.app.addService(seed, 0.5);
  req.app.addService(1.0, 0.8);
  req.app.addService(3.0, 0.4);
  req.options = fastOptions();
  return req;
}

TEST(ResultStore, WireOpsRoundTripByteExact) {
  const PlanRequest req = smallRequest();
  OptimizerOptions serial = req.options;
  serial.threads = 1;
  const OptimizedPlan plan =
      optimizePlan(req.app, req.model, req.objective, serial);
  const std::string key = PlanEngine::requestKey(req);

  std::ostringstream get;
  writeStoreGet(get, key);
  std::istringstream getIn(get.str());
  const StoreGet decodedGet = readStoreGet(getIn);
  EXPECT_EQ(decodedGet.key, key);
  EXPECT_TRUE(decodedGet.wantPlan);
  std::ostringstream boundOnly;
  writeStoreGet(boundOnly, key, /*wantPlan=*/false);
  std::istringstream boundOnlyIn(boundOnly.str());
  EXPECT_FALSE(readStoreGet(boundOnlyIn).wantPlan);

  std::ostringstream put;
  writeStorePut(put, key, plan);
  std::istringstream putIn(put.str());
  const StorePut decodedPut = readStorePut(putIn);
  EXPECT_EQ(decodedPut.key, key);
  EXPECT_EQ(decodedPut.plan.value, plan.value);
  EXPECT_EQ(decodedPut.plan.strategy, plan.strategy);

  // reply(found) re-encodes byte-exact; reply(miss) carries the bound.
  std::ostringstream hit;
  writeStoreReply(hit, &plan, plan.value);
  std::istringstream hitIn(hit.str());
  const StoreReply decodedHit = readStoreReply(hitIn);
  ASSERT_TRUE(decodedHit.found);
  EXPECT_EQ(decodedHit.bound, plan.value);
  EXPECT_EQ(decodedHit.plan.surrogate, plan.surrogate);
  std::ostringstream reHit;
  writeStoreReply(reHit, &decodedHit.plan, decodedHit.bound);
  EXPECT_EQ(reHit.str(), hit.str());

  std::ostringstream miss;
  writeStoreReply(miss, nullptr,
                  std::numeric_limits<double>::infinity());
  std::istringstream missIn(miss.str());
  const StoreReply decodedMiss = readStoreReply(missIn);
  EXPECT_FALSE(decodedMiss.found);
  EXPECT_TRUE(std::isinf(decodedMiss.bound));

  std::istringstream garbage("fswstoreget 999\nget k\n");
  EXPECT_THROW((void)readStoreGet(garbage), std::runtime_error);
}

TEST(ResultStore, GetPutStatsOverTheSocket) {
  ResultStoreHost host{ResultStoreConfig{}};
  ASSERT_GT(host.port(), 0);
  RemoteResultStore store("127.0.0.1", host.port());

  const PlanRequest req = smallRequest();
  const std::string key = PlanEngine::requestKey(req);

  const auto cold = store.get(key);
  EXPECT_EQ(cold.plan, nullptr);
  EXPECT_TRUE(std::isinf(cold.bound));

  OptimizerOptions serial = req.options;
  serial.threads = 1;
  const OptimizedPlan plan =
      optimizePlan(req.app, req.model, req.objective, serial);
  store.put(key, plan);

  const auto warm = store.get(key);
  ASSERT_NE(warm.plan, nullptr);
  EXPECT_EQ(warm.plan->value, plan.value);
  EXPECT_EQ(warm.plan->strategy, plan.strategy);
  EXPECT_EQ(graphSignature(warm.plan->plan.graph),
            graphSignature(plan.plan.graph));
  // The bound IS the key's winner value — the store posted it on PUT.
  EXPECT_EQ(warm.bound, plan.value);

  const StoreStatsWire remote = store.remoteStats();
  EXPECT_EQ(remote.entries, 1u);
  EXPECT_EQ(remote.gets, 2u);
  EXPECT_EQ(remote.hits, 1u);
  EXPECT_EQ(remote.boundHits, 1u);
  EXPECT_EQ(remote.puts, 1u);
  EXPECT_EQ(remote.bounds, 1u);

  const auto cs = store.stats();
  EXPECT_EQ(cs.gets, 2u);
  EXPECT_EQ(cs.hits, 1u);
  EXPECT_EQ(cs.puts, 1u);
  EXPECT_EQ(cs.failures, 0u);

  // One pipelined batch: replies are index-aligned, misses degrade per
  // key, and a bounds-only batch skips the winner payloads while the
  // bound still travels.
  const auto batch = store.getMany({key, "no-such-key"});
  ASSERT_EQ(batch.size(), 2u);
  ASSERT_NE(batch[0].plan, nullptr);
  EXPECT_EQ(batch[0].plan->value, plan.value);
  EXPECT_EQ(batch[1].plan, nullptr);
  EXPECT_TRUE(std::isinf(batch[1].bound));
  const auto boundsOnly = store.getMany({key}, /*wantPlans=*/false);
  EXPECT_EQ(boundsOnly[0].plan, nullptr);
  EXPECT_EQ(boundsOnly[0].bound, plan.value);
}

TEST(ResultStore, ColdEngineServesARepeatWithZeroOrchestrations) {
  ResultStoreHost storeHost{ResultStoreConfig{}};
  const PlanRequest req = smallRequest();

  OptimizerOptions serial = req.options;
  serial.threads = 1;
  const OptimizedPlan ref =
      optimizePlan(req.app, req.model, req.objective, serial);

  // Engine A (behind "host A") solves and publishes to the fleet store.
  RemoteResultStore storeA("127.0.0.1", storeHost.port());
  EngineConfig cfgA;
  cfgA.resultStore = &storeA;
  PlanEngine engineA{cfgA};
  const OptimizedPlan first = engineA.optimize(req);
  EXPECT_GT(first.stats.orchestrated, 0u);
  EXPECT_EQ(first.value, ref.value);
  EXPECT_EQ(first.strategy, ref.strategy);

  // Engine B is COLD — fresh process-equivalent, empty local caches —
  // but shares the fleet store: the repeat is served wholesale, zero new
  // orchestrations, bit-identical.
  RemoteResultStore storeB("127.0.0.1", storeHost.port());
  EngineConfig cfgB;
  cfgB.resultStore = &storeB;
  PlanEngine engineB{cfgB};
  const OptimizedPlan repeat = engineB.optimize(req);
  EXPECT_EQ(repeat.stats.resultCacheHits, 1u);
  EXPECT_EQ(repeat.stats.orchestrated, 0u);
  EXPECT_EQ(repeat.stats.generated, 0u);
  EXPECT_EQ(repeat.value, ref.value);
  EXPECT_EQ(repeat.strategy, ref.strategy);
  EXPECT_EQ(repeat.surrogate, ref.surrogate);
  EXPECT_EQ(graphSignature(repeat.plan.graph), graphSignature(ref.plan.graph));

  // The remote hit warmed B's local store: a second repeat is local (the
  // fleet store sees no new GET).
  const std::size_t getsBefore = storeB.remoteStats().gets;
  const OptimizedPlan local = engineB.optimize(req);
  EXPECT_EQ(local.stats.resultCacheHits, 1u);
  EXPECT_EQ(storeB.remoteStats().gets, getsBefore);
}

TEST(ResultStore, BoundsTravelEvenWithoutFullResultServing) {
  ResultStoreHost storeHost{ResultStoreConfig{}};
  const PlanRequest req = smallRequest(4.0);

  OptimizerOptions serial = req.options;
  serial.threads = 1;
  const OptimizedPlan ref =
      optimizePlan(req.app, req.model, req.objective, serial);

  RemoteResultStore storeA("127.0.0.1", storeHost.port());
  EngineConfig cfgA;
  cfgA.resultStore = &storeA;
  PlanEngine engineA{cfgA};
  (void)engineA.optimize(req);

  // Engine C keeps full-result caching off (it wants fresh solves) but
  // still imports the fleet bound: the re-solve runs — orchestrations
  // happen — under host A's winner value as an abort threshold, and the
  // winner is preserved down to the byte.
  RemoteResultStore storeC("127.0.0.1", storeHost.port());
  EngineConfig cfgC;
  cfgC.resultStore = &storeC;
  cfgC.cacheFullResults = false;
  PlanEngine engineC{cfgC};
  const std::size_t boundHitsBefore = storeC.remoteStats().boundHits;
  const OptimizedPlan resolved = engineC.optimize(req);
  EXPECT_GT(resolved.stats.orchestrated, 0u);  // it really re-solved
  EXPECT_EQ(resolved.stats.resultCacheHits, 0u);
  EXPECT_EQ(resolved.value, ref.value);
  EXPECT_EQ(resolved.strategy, ref.strategy);
  EXPECT_EQ(graphSignature(resolved.plan.graph),
            graphSignature(ref.plan.graph));
  // Its GET carried a finite bound (host A's winner value).
  EXPECT_GT(storeC.remoteStats().boundHits, boundHitsBefore);
}

TEST(ResultStore, StoreDeathDegradesToMissesAndReconnectHeals) {
  auto storeHost = std::make_unique<ResultStoreHost>(ResultStoreConfig{});
  const std::uint16_t port = storeHost->port();
  RemoteResultStore store("127.0.0.1", port);
  EngineConfig cfg;
  cfg.resultStore = &store;
  PlanEngine engine{cfg};

  const PlanRequest first = smallRequest(5.0);
  (void)engine.optimize(first);
  EXPECT_TRUE(store.connected());

  // Kill the store: the engine must keep solving — gets degrade to
  // misses, puts to no-ops, nothing throws, nothing hangs.
  storeHost.reset();
  const PlanRequest second = smallRequest(6.0);
  OptimizerOptions serial = second.options;
  serial.threads = 1;
  const OptimizedPlan ref =
      optimizePlan(second.app, second.model, second.objective, serial);
  const OptimizedPlan degraded = engine.optimize(second);
  EXPECT_EQ(degraded.value, ref.value);
  EXPECT_EQ(degraded.strategy, ref.strategy);
  EXPECT_FALSE(store.connected());
  EXPECT_GT(store.stats().failures, 0u);
  EXPECT_THROW((void)store.remoteStats(), RemotePlanError);

  // A fresh store on the same port: reconnect() heals the session and
  // publishes flow again.
  storeHost = std::make_unique<ResultStoreHost>(
      ResultStoreConfig{.port = port});
  EXPECT_TRUE(store.reconnect());
  EXPECT_TRUE(store.connected());
  const PlanRequest third = smallRequest(7.0);
  (void)engine.optimize(third);
  EXPECT_GE(storeHost->stats().puts, 1u);
}

TEST(ResultStore, PayloadErrorsKeepTheConnectionFrameErrorsDropIt) {
  ResultStoreHost host{ResultStoreConfig{}};

  // A plan-serving frame on the store port is a payload-level error: the
  // host answers an error frame and the connection keeps serving.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(host.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string bad = encodeFrame(FrameType::Request, "not a store op");
  ASSERT_EQ(::send(fd, bad.data(), bad.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bad.size()));
  std::ostringstream get;
  writeStoreGet(get, "no-such-key");
  const std::string good = encodeFrame(FrameType::StoreGet, get.str());
  ASSERT_EQ(::send(fd, good.data(), good.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(good.size()));
  ::shutdown(fd, SHUT_WR);
  std::string replies;
  char buf[4096];
  for (;;) {
    const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
    if (got <= 0) break;
    replies.append(buf, static_cast<std::size_t>(got));
  }
  ::close(fd);
  ASSERT_GE(replies.size(), 20u);
  EXPECT_EQ(replies[5], static_cast<char>(FrameType::Error));
  // The second reply (behind the first frame's payload) answers the GET.
  std::uint32_t len = 0;
  for (std::size_t i = 6; i < 10; ++i) {
    len = (len << 8) | static_cast<std::uint8_t>(replies[i]);
  }
  const std::size_t second = 10 + len;
  ASSERT_GE(replies.size(), second + 10);
  EXPECT_EQ(replies[second + 5], static_cast<char>(FrameType::Result));
  std::istringstream decoded(replies.substr(second + 10));
  const StoreReply reply = readStoreReply(decoded);
  EXPECT_FALSE(reply.found);
  EXPECT_GE(host.stats().errors, 1u);

  // Raw garbage is a frame-level violation: dropped without a reply.
  const int fd2 = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd2, 0);
  ASSERT_EQ(::connect(fd2, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string garbage = "definitely not a frame header...........";
  ASSERT_EQ(::send(fd2, garbage.data(), garbage.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(garbage.size()));
  char drain[64];
  EXPECT_LE(::recv(fd2, drain, sizeof(drain), 0), 0);
  ::close(fd2);
}

TEST(ResultStore, ByteLedgersAgreeAcrossTheStack) {
  ResultStoreHost storeHost{ResultStoreConfig{}};
  const PlanRequest req = smallRequest();

  // Engine A's cold solve probes the store (a miss) and publishes its
  // winner: both legs carry bytes, stamped on the solve's own stats.
  RemoteResultStore storeA("127.0.0.1", storeHost.port());
  EngineConfig cfgA;
  cfgA.resultStore = &storeA;
  PlanEngine engineA{cfgA};
  const OptimizedPlan first = engineA.optimize(req);
  EXPECT_GT(first.stats.storeBytesSent, 0u);
  EXPECT_GT(first.stats.storeBytesReceived, 0u);

  // The per-request stamps ARE the client's whole ledger so far (one GET,
  // one PUT, nothing else has crossed this socket).
  const auto csA = storeA.stats();
  EXPECT_EQ(csA.bytesSent, first.stats.storeBytesSent);
  EXPECT_EQ(csA.bytesReceived, first.stats.storeBytesReceived);

  // A cold engine B is served wholesale: its hit pays a small GET frame
  // out and a winner-carrying reply in (so received dwarfs sent).
  RemoteResultStore storeB("127.0.0.1", storeHost.port());
  EngineConfig cfgB;
  cfgB.resultStore = &storeB;
  PlanEngine engineB{cfgB};
  const OptimizedPlan repeat = engineB.optimize(req);
  EXPECT_EQ(repeat.stats.resultCacheHits, 1u);
  EXPECT_GT(repeat.stats.storeBytesSent, 0u);
  EXPECT_GT(repeat.stats.storeBytesReceived, repeat.stats.storeBytesSent);

  // The host's ledger mirrors both clients' combined traffic exactly.
  const auto csB = storeB.stats();
  const auto hs = storeHost.stats();
  EXPECT_EQ(hs.bytesIn, csA.bytesSent + csB.bytesSent);
  EXPECT_EQ(hs.bytesOut, csA.bytesReceived + csB.bytesReceived);
  EXPECT_GT(hs.framesIn, 0u);
  EXPECT_EQ(hs.framesIn, hs.framesOut);  // every verb is answered

  // The STATS verb reports the same four counters remotely; its own
  // request frame is part of the traffic it measures, so >= host snapshot.
  const StoreStatsWire wire = storeA.remoteStats();
  EXPECT_GT(wire.bytesIn, hs.bytesIn);
  EXPECT_GE(wire.bytesOut, hs.bytesOut);
  EXPECT_GT(wire.framesIn, 0u);

  // The transport ledger (wire v3) travels too: both clients' connections
  // were accepted, nothing was refused or reaped on this quiet host.
  EXPECT_GE(wire.accepted, 2u);
  EXPECT_EQ(wire.refusedOverLimit, 0u);
  EXPECT_EQ(wire.idleClosed, 0u);
}

}  // namespace
}  // namespace fsw
