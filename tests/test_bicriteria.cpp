#include <gtest/gtest.h>

#include <limits>

#include "src/oplist/validate.hpp"
#include "src/opt/bicriteria.hpp"
#include "src/sched/orchestrator.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_instances.hpp"

namespace fsw {
namespace {

BicriteriaOptions fastOpts() {
  BicriteriaOptions opt;
  opt.lambdaSamples = 8;
  opt.graphCandidates = 4;
  opt.orchestrator.order.exactCap = 100;
  opt.orchestrator.outorder.restarts = 6;
  return opt;
}

TEST(ParetoFilter, RemovesDominatedAndSorts) {
  std::vector<ParetoPoint> pts(4);
  pts[0].period = 2.0;
  pts[0].latency = 10.0;
  pts[1].period = 3.0;
  pts[1].latency = 12.0;  // dominated by [0]
  pts[2].period = 1.0;
  pts[2].latency = 20.0;
  pts[3].period = 4.0;
  pts[3].latency = 8.0;
  const auto front = paretoFilter(pts);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_DOUBLE_EQ(front[0].period, 1.0);
  EXPECT_DOUBLE_EQ(front[1].period, 2.0);
  EXPECT_DOUBLE_EQ(front[2].period, 4.0);
  // Latencies strictly decrease along the front.
  EXPECT_GT(front[0].latency, front[1].latency);
  EXPECT_GT(front[1].latency, front[2].latency);
}

TEST(Bicriteria, FrontForSec23GraphInorder) {
  const auto pi = sec23Example();
  const auto front = periodLatencyFrontForGraph(pi.app, pi.graph,
                                                CommModel::InOrder, fastOpts());
  ASSERT_FALSE(front.empty());
  // Endpoints bracket the mono-criterion optima.
  EXPECT_NEAR(front.front().period, 23.0 / 3.0, 1e-5);
  EXPECT_NEAR(front.back().latency, 21.0, 1e-6);
  // Every point validates under INORDER and is internally consistent.
  for (const auto& p : front) {
    const auto rep = validate(pi.app, p.plan.graph, p.plan.ol,
                              CommModel::InOrder);
    EXPECT_TRUE(rep.valid) << rep.summary();
    EXPECT_DOUBLE_EQ(p.period, p.plan.ol.period());
    EXPECT_DOUBLE_EQ(p.latency, p.plan.ol.latency());
  }
  // The front trades period for latency monotonically.
  for (std::size_t k = 1; k < front.size(); ++k) {
    EXPECT_GT(front[k].period, front[k - 1].period);
    EXPECT_LT(front[k].latency, front[k - 1].latency);
  }
}

TEST(Bicriteria, OverlapFrontContainsBothOptima) {
  const auto pi = sec23Example();
  const auto front = periodLatencyFrontForGraph(pi.app, pi.graph,
                                                CommModel::Overlap, fastOpts());
  ASSERT_FALSE(front.empty());
  EXPECT_NEAR(front.front().period, 4.0, 1e-9);
  EXPECT_NEAR(front.back().latency, 21.0, 1e-6);
}

TEST(Bicriteria, MinLatencyGivenPeriodInterpolates) {
  // Plan-level: for the Section 2.3 application (unit selectivities) the
  // all-parallel graph is unbeatable — every service alone has busy time
  // 1 + 4 + 1 = 6, so latency 6 and INORDER period 6 simultaneously.
  const auto pi = sec23Example();
  const auto loose = minLatencyGivenPeriod(pi.app, CommModel::InOrder, 1e9,
                                           fastOpts());
  EXPECT_NEAR(loose.latency, 6.0, 1e-5);
  // A period bound at that same 6 is still achievable (same plan)...
  const auto tight = minLatencyGivenPeriod(pi.app, CommModel::InOrder,
                                           6.0 + 1e-6, fastOpts());
  EXPECT_NEAR(tight.latency, 6.0, 1e-5);
  EXPECT_LE(tight.period, 6.0 + 1e-5);
  // ... while any period below the per-service busy time is unachievable
  // under INORDER (every server must fit 1 + 4 + sigma per cycle).
  const auto none =
      minLatencyGivenPeriod(pi.app, CommModel::InOrder, 5.5, fastOpts());
  EXPECT_EQ(none.latency, std::numeric_limits<double>::infinity());
}

TEST(Bicriteria, MinPeriodGivenLatency) {
  const auto pi = sec23Example();
  const auto r = minPeriodGivenLatency(pi.app, CommModel::InOrder, 21.0 + 1e-6,
                                       fastOpts());
  EXPECT_LE(r.latency, 21.0 + 1e-5);
  EXPECT_LT(r.period, 22.0);
}

TEST(Bicriteria, PlanLevelFrontDominatesSingleGraphFront) {
  Prng rng(99);
  WorkloadSpec spec;
  spec.n = 5;
  const auto app = randomApplication(spec, rng);
  const auto planFront = periodLatencyFront(app, CommModel::InOrder,
                                            fastOpts());
  ASSERT_FALSE(planFront.empty());
  const auto g = randomForest(app, rng);
  const auto graphFront = periodLatencyFrontForGraph(app, g,
                                                     CommModel::InOrder,
                                                     fastOpts());
  // Every single-graph point is weakly dominated by some plan-level point.
  for (const auto& q : graphFront) {
    bool dominated = false;
    for (const auto& p : planFront) {
      if (p.period <= q.period + 1e-6 && p.latency <= q.latency + 1e-6) {
        dominated = true;
        break;
      }
    }
    EXPECT_TRUE(dominated) << "point (" << q.period << ", " << q.latency
                           << ") not covered";
  }
}

TEST(Bicriteria, FrontsValidAcrossModelsOnRandomInstances) {
  Prng rng(123);
  for (int trial = 0; trial < 3; ++trial) {
    WorkloadSpec spec;
    spec.n = 5;
    const auto app = randomApplication(spec, rng);
    for (const CommModel m : kAllModels) {
      const auto front = periodLatencyFront(app, m, fastOpts());
      ASSERT_FALSE(front.empty()) << name(m);
      for (const auto& p : front) {
        EXPECT_TRUE(validate(app, p.plan.graph, p.plan.ol, m).valid)
            << name(m) << " trial " << trial;
      }
      // The front's best period ties the mono-criterion optimizer's graph
      // search at least up to heuristic noise: sanity bound only.
      EXPECT_GT(front.front().period, 0.0);
    }
  }
}

}  // namespace
}  // namespace fsw
