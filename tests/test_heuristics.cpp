#include <gtest/gtest.h>

#include "src/opt/forest_search.hpp"
#include "src/opt/heuristics.hpp"
#include "src/workload/generator.hpp"

namespace fsw {
namespace {

TEST(Heuristics, GreedyForestProducesValidForest) {
  Prng rng(1);
  WorkloadSpec spec;
  spec.n = 10;
  const auto app = randomApplication(spec, rng);
  for (const Objective obj : {Objective::Period, Objective::Latency}) {
    const auto g = greedyForest(app, CommModel::Overlap, obj);
    EXPECT_EQ(g.size(), app.size());
    EXPECT_TRUE(g.isForest());
  }
}

TEST(Heuristics, GreedyForestChainsFiltersForPeriod) {
  // Cheap strong filter + expensive service: greedy should filter the
  // expensive one.
  Application app;
  app.addService(0.5, 0.1);
  app.addService(20.0, 1.0);
  const auto g = greedyForest(app, CommModel::Overlap, Objective::Period);
  EXPECT_TRUE(g.hasEdge(0, 1));
}

TEST(Heuristics, HillClimbNeverWorsens) {
  Prng rng(2);
  for (int trial = 0; trial < 8; ++trial) {
    WorkloadSpec spec;
    spec.n = 7;
    const auto app = randomApplication(spec, rng);
    const auto start = greedyForest(app, CommModel::Overlap, Objective::Period);
    const double before =
        surrogateScore(app, start, CommModel::Overlap, Objective::Period);
    const auto improved = hillClimbForest(app, CommModel::Overlap,
                                          Objective::Period, start);
    const double after =
        surrogateScore(app, improved, CommModel::Overlap, Objective::Period);
    EXPECT_LE(after, before + 1e-9) << "trial " << trial;
  }
}

TEST(Heuristics, AnnealRespectsPrecedences) {
  Prng rng(3);
  WorkloadSpec spec;
  spec.n = 6;
  spec.precedenceDensity = 0.25;
  const auto app = randomApplication(spec, rng);
  HeuristicOptions opt;
  opt.iterations = 1500;
  for (const Objective obj : {Objective::Period, Objective::Latency}) {
    const auto g = annealForest(app, CommModel::InOrder, obj, opt);
    EXPECT_TRUE(g.respects(app)) << name(obj);
  }
}

TEST(Heuristics, AnnealNearOptimalOnSmallInstances) {
  // Compare against the exact forest optimum on the surrogate.
  Prng rng(4);
  int optimalHits = 0;
  constexpr int kTrials = 10;
  for (int trial = 0; trial < kTrials; ++trial) {
    WorkloadSpec spec;
    spec.n = 5;
    const auto app = randomApplication(spec, rng);
    const auto exact = exactForestMinPeriod(app, CommModel::Overlap);
    HeuristicOptions opt;
    opt.seed = 100 + trial;
    const auto g =
        annealForest(app, CommModel::Overlap, Objective::Period, opt);
    const double v =
        surrogateScore(app, g, CommModel::Overlap, Objective::Period);
    EXPECT_GE(v, exact.value - 1e-9);
    if (v <= exact.value * 1.001 + 1e-9) ++optimalHits;
  }
  EXPECT_GE(optimalHits, 7) << "annealing should find most small optima";
}

TEST(Heuristics, SurrogateMatchesTreeLatencyOnForests) {
  Prng rng(5);
  WorkloadSpec spec;
  spec.n = 6;
  const auto app = randomApplication(spec, rng);
  const auto g = randomForest(app, rng);
  const double s =
      surrogateScore(app, g, CommModel::InOrder, Objective::Latency);
  EXPECT_GT(s, 0.0);
}

}  // namespace
}  // namespace fsw
