#include <gtest/gtest.h>

#include "src/core/cost_model.hpp"
#include "src/opt/chain.hpp"
#include "src/opt/forest_search.hpp"
#include "src/sched/latency.hpp"
#include "src/workload/generator.hpp"

namespace fsw {
namespace {

TEST(ForestSearch, SingleServiceTrivial) {
  Application app;
  app.addService(2.0, 0.5);
  const auto r = exactForestMinPeriod(app, CommModel::Overlap);
  EXPECT_EQ(r.explored, 1u);
  EXPECT_NEAR(r.value, 2.0, 1e-12);  // max(1, 2, 0.5)
}

TEST(ForestSearch, ExploredCountsAcyclicParentFunctions) {
  // For n=2: parent vectors (none,none), (none,0), (1,none): 3 acyclic of
  // the 4 combinations (0<-1 and 1<-0 simultaneously is cyclic).
  Application app;
  app.addService(1.0, 1.0);
  app.addService(1.0, 1.0);
  const auto r = exactForestMinPeriod(app, CommModel::Overlap);
  EXPECT_EQ(r.explored, 3u);
}

TEST(ForestSearch, TwoFiltersChainBeatsParallel) {
  // Expensive filter behind a cheap one: chaining reduces the max Cexec.
  Application app;
  app.addService(1.0, 0.1);
  app.addService(10.0, 0.5);
  const auto r = exactForestMinPeriod(app, CommModel::Overlap);
  EXPECT_TRUE(r.graph.hasEdge(0, 1));
  EXPECT_NEAR(r.value, 1.0, 1e-9);  // C2 filtered: 0.1*10 = 1 = C1's cexec
}

TEST(ForestSearch, RespectsPrecedences) {
  Application app;
  app.addService(1.0, 0.5);
  app.addService(1.0, 0.5);
  app.addPrecedence(1, 0);  // C2 must precede C1
  const auto r = exactForestMinPeriod(app, CommModel::Overlap);
  // Only graphs where 1 is an ancestor of 0 are admissible.
  const auto anc = r.graph.ancestorClosure();
  EXPECT_TRUE(anc[0][1]);
}

TEST(ForestSearch, ChainGreedyIsOptimalWhenChainsWin) {
  // All filters: Prop 8's chain is a forest, so exact forest search can do
  // no better than the optimal chain when a chain is optimal; and never
  // worse than the chain in general.
  Prng rng(71);
  for (int trial = 0; trial < 10; ++trial) {
    WorkloadSpec spec;
    spec.n = 5;
    spec.filterFraction = 1.0;
    const auto app = randomApplication(spec, rng);
    const auto forest = exactForestMinPeriod(app, CommModel::Overlap);
    const double chain = chainPeriodValue(
        app, chainOrderPeriod(app, CommModel::Overlap), CommModel::Overlap);
    EXPECT_LE(forest.value, chain + 1e-9) << "trial " << trial;
  }
}

TEST(ForestSearch, MinLatencyUsesAlgorithmOne) {
  Prng rng(72);
  WorkloadSpec spec;
  spec.n = 5;
  const auto app = randomApplication(spec, rng);
  const auto r = exactForestMinLatency(app);
  EXPECT_NEAR(r.value, treeLatencyValue(app, r.graph), 1e-9);
  // Sanity: no worse than the all-roots forest or the latency chain.
  EXPECT_LE(r.value, treeLatencyValue(app, ExecutionGraph(app.size())) + 1e-9);
  EXPECT_LE(r.value,
            chainLatencyValue(app, chainOrderLatency(app)) + 1e-9);
}

TEST(ForestSearch, TooLargeThrows) {
  Application app;
  for (int i = 0; i < 12; ++i) app.addService(1.0, 1.0);
  EXPECT_THROW(exactForestMinPeriod(app, CommModel::Overlap),
               std::invalid_argument);
}

TEST(ForestSearch, OrchestratedEvaluationConsistent) {
  // With orchestrated evaluation the (valid) value can only be >= the
  // relaxation value.
  Prng rng(73);
  WorkloadSpec spec;
  spec.n = 4;
  const auto app = randomApplication(spec, rng);
  const auto relaxed = exactForestMinPeriod(app, CommModel::InOrder, false);
  const auto orched = exactForestMinPeriod(app, CommModel::InOrder, true);
  EXPECT_GE(orched.value, relaxed.value - 1e-9);
}

}  // namespace
}  // namespace fsw
