#include <gtest/gtest.h>

#include "src/oplist/operation_list.hpp"
#include "src/oplist/plan.hpp"
#include "src/workload/paper_instances.hpp"

namespace fsw {
namespace {

TEST(OperationList, EmptyConstruction) {
  const OperationList ol(3, 5.0);
  EXPECT_EQ(ol.size(), 3u);
  EXPECT_DOUBLE_EQ(ol.lambda(), 5.0);
  EXPECT_DOUBLE_EQ(ol.period(), 5.0);
  EXPECT_TRUE(ol.comms().empty());
  EXPECT_DOUBLE_EQ(ol.latency(), 0.0);
}

TEST(OperationList, SetCalcValidation) {
  OperationList ol(2, 1.0);
  ol.setCalc(0, 1.0, 3.0);
  EXPECT_DOUBLE_EQ(ol.beginCalc(0), 1.0);
  EXPECT_DOUBLE_EQ(ol.endCalc(0), 3.0);
  EXPECT_THROW(ol.setCalc(5, 0, 1), std::out_of_range);
  EXPECT_THROW(ol.setCalc(0, 2, 1), std::invalid_argument);
}

TEST(OperationList, SetCommOverwritesExisting) {
  OperationList ol(2, 1.0);
  ol.setComm(0, 1, 0.0, 1.0);
  ol.setComm(0, 1, 2.0, 3.0);
  EXPECT_EQ(ol.comms().size(), 1u);
  const auto c = ol.comm(0, 1);
  ASSERT_TRUE(c);
  EXPECT_DOUBLE_EQ(c->begin, 2.0);
  EXPECT_DOUBLE_EQ(c->duration(), 1.0);
}

TEST(OperationList, CommLookupMiss) {
  OperationList ol(2, 1.0);
  EXPECT_FALSE(ol.comm(0, 1));
}

TEST(OperationList, IncomingOutgoingFilters) {
  OperationList ol(3, 1.0);
  ol.setComm(kWorld, 0, 0, 1);
  ol.setComm(0, 1, 1, 2);
  ol.setComm(0, 2, 2, 3);
  ol.setComm(1, 2, 3, 4);
  EXPECT_EQ(ol.incoming(2).size(), 2u);
  EXPECT_EQ(ol.outgoing(0).size(), 2u);
  EXPECT_EQ(ol.incoming(0).size(), 1u);
  EXPECT_TRUE(ol.incoming(0).front().isInput());
}

TEST(OperationList, LatencyIsMaxCommEnd) {
  OperationList ol(2, 1.0);
  ol.setComm(kWorld, 0, 0, 1);
  ol.setComm(0, 1, 5, 6);
  ol.setComm(1, kWorld, 8, 9.5);
  EXPECT_DOUBLE_EQ(ol.latency(), 9.5);
}

TEST(OperationList, ShiftAllMovesEverything) {
  OperationList ol(1, 1.0);
  ol.setCalc(0, 1, 2);
  ol.setComm(kWorld, 0, 0, 1);
  ol.shiftAll(10.0);
  EXPECT_DOUBLE_EQ(ol.beginCalc(0), 11.0);
  EXPECT_DOUBLE_EQ(ol.comm(kWorld, 0)->end, 11.0);
}

TEST(OperationList, DumpMentionsOperations) {
  OperationList ol(1, 4.0);
  ol.setCalc(0, 1, 2);
  ol.setComm(kWorld, 0, 0, 1);
  const auto text = ol.dump();
  EXPECT_NE(text.find("lambda = 4"), std::string::npos);
  EXPECT_NE(text.find("calc C1"), std::string::npos);
  EXPECT_NE(text.find("comm world->C1"), std::string::npos);
}

TEST(Plan, EvaluateReportsValidityAndMetrics) {
  const auto pi = sec23Example();
  Plan plan{pi.graph, OperationList(5, 7.0)};
  // An empty OL is structurally invalid.
  const auto bad = evaluate(pi.app, plan, CommModel::OutOrder);
  EXPECT_FALSE(bad.valid);
  EXPECT_DOUBLE_EQ(bad.period, 7.0);
}

}  // namespace
}  // namespace fsw
