#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <set>
#include <vector>

#include "src/sched/inorder.hpp"
#include "src/sched/port_orders.hpp"
#include "src/workload/paper_instances.hpp"

namespace fsw {
namespace {

TEST(PortOrders, CanonicalCoversAllPorts) {
  const auto pi = sec23Example();
  const auto po = PortOrders::canonical(pi.graph);
  // C1: virtual input first; sends to C2 and C4 plus no virtual output.
  ASSERT_EQ(po.in(0).size(), 1u);
  EXPECT_EQ(po.in(0)[0], kWorld);
  EXPECT_EQ(po.out(0).size(), 2u);
  // C5: two receives, one virtual output.
  EXPECT_EQ(po.in(4).size(), 2u);
  ASSERT_EQ(po.out(4).size(), 1u);
  EXPECT_EQ(po.out(4)[0], kWorld);
}

TEST(PortOrders, HeuristicIsAPermutationOfCanonical) {
  const auto pi = sec23Example();
  const auto canon = PortOrders::canonical(pi.graph);
  const auto heur = PortOrders::heuristic(pi.app, pi.graph);
  for (NodeId i = 0; i < pi.graph.size(); ++i) {
    std::multiset<NodeId> a(canon.in(i).begin(), canon.in(i).end());
    std::multiset<NodeId> b(heur.in(i).begin(), heur.in(i).end());
    EXPECT_EQ(a, b) << "in orders of node " << i;
    std::multiset<NodeId> c(canon.out(i).begin(), canon.out(i).end());
    std::multiset<NodeId> d(heur.out(i).begin(), heur.out(i).end());
    EXPECT_EQ(c, d) << "out orders of node " << i;
  }
}

TEST(PortOrders, HeuristicFeedsLongBranchFirst) {
  // In the Section 2.3 diamond, C2 leads to the longer branch
  // (C2 -> C3 -> C5), so C1 should send to C2 before C4.
  const auto pi = sec23Example();
  const auto heur = PortOrders::heuristic(pi.app, pi.graph);
  ASSERT_EQ(heur.out(0).size(), 2u);
  EXPECT_EQ(heur.out(0)[0], 1u);  // C2 first
  EXPECT_EQ(heur.out(0)[1], 3u);  // then C4
}

TEST(PortOrders, SettersOverwriteInPlace) {
  const auto pi = sec23Example();
  auto po = PortOrders::canonical(pi.graph);
  po.setOut(0, {3, 1});
  EXPECT_EQ(po.outVec(0), (std::vector<NodeId>{3, 1}));
  po.setIn(4, {2, 3});
  EXPECT_EQ(po.inVec(4), (std::vector<NodeId>{2, 3}));
  // Round-trip through a view preserves every sequence.
  const PortOrders copy{PortOrdersView(po)};
  EXPECT_EQ(copy, po);
}

TEST(PortOrders, EnumerationCountsProductOfFactorials) {
  // Section 2.3: C1 has 2 sends, C5 has 2 receives; everything else is
  // fixed, so there are exactly 2 * 2 = 4 combinations.
  const auto pi = sec23Example();
  EXPECT_EQ(countPortOrders(pi.graph, 1000), 4u);
}

TEST(PortOrders, EnumerationTruncatesAtCap) {
  const auto pi = sec23Example();
  std::size_t seen = 0;
  const bool exhaustive =
      forEachPortOrders(pi.graph, 2, [&](const PortOrders&) {
        ++seen;
        return true;
      });
  EXPECT_FALSE(exhaustive);
  EXPECT_EQ(seen, 2u);
}

TEST(PortOrders, EnumerationVisitsDistinctOrders) {
  const auto pi = sec23Example();
  std::set<std::vector<NodeId>> c1SendOrders;
  forEachPortOrders(pi.graph, 1000, [&](const PortOrders& po) {
    c1SendOrders.insert(po.outVec(0));
    return true;
  });
  EXPECT_EQ(c1SendOrders.size(), 2u);
}

TEST(PortOrders, EarlyStopPropagates) {
  const auto pi = sec23Example();
  std::size_t seen = 0;
  const bool ok = forEachPortOrders(pi.graph, 1000, [&](const PortOrders&) {
    ++seen;
    return false;  // stop immediately
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(seen, 1u);
}

TEST(PortOrders, ForkJoinCombinatorics) {
  // Fork-join with 3 middle services: 3! send orders x 3! receive orders.
  Application app;
  for (int i = 0; i < 5; ++i) app.addService(1.0, 1.0);
  ExecutionGraph g(5);
  for (NodeId i = 1; i <= 3; ++i) {
    g.addEdge(0, i);
    g.addEdge(i, 4);
  }
  EXPECT_EQ(countPortOrders(g, 100000), 36u);
}

// ---- flat vs. legacy equivalence suite ------------------------------------
//
// The flat SoA encoding replaced a nested vector-of-vectors; this suite
// pins the contract the replacement must honor: identical enumeration
// order, identical counts, and byte-identical winners through the order
// search. The legacy encoding and enumerator are reimplemented here,
// verbatim in structure, as the reference.

struct LegacyPortOrders {
  std::vector<std::vector<NodeId>> in;
  std::vector<std::vector<NodeId>> out;
};

LegacyPortOrders legacyCanonical(const ExecutionGraph& graph) {
  LegacyPortOrders po;
  po.in.resize(graph.size());
  po.out.resize(graph.size());
  for (NodeId i = 0; i < graph.size(); ++i) {
    if (graph.isEntry(i)) po.in[i].push_back(kWorld);  // virtual input first
    auto preds = graph.predecessors(i);
    std::sort(preds.begin(), preds.end());
    po.in[i].insert(po.in[i].end(), preds.begin(), preds.end());
    auto succs = graph.successors(i);
    std::sort(succs.begin(), succs.end());
    po.out[i] = succs;
    if (graph.isExit(i)) po.out[i].push_back(kWorld);  // virtual output last
  }
  return po;
}

/// The pre-flat enumerator: recursion over per-node sequences (all ins in
/// node order, then all outs), each sorted then stepped by
/// std::next_permutation, visiting one nested candidate per leaf.
bool legacyForEach(const ExecutionGraph& graph, std::size_t maxCombos,
                   const std::function<bool(const LegacyPortOrders&)>& fn) {
  LegacyPortOrders po = legacyCanonical(graph);
  std::vector<std::vector<NodeId>*> seqs;
  for (auto& s : po.in) seqs.push_back(&s);
  for (auto& s : po.out) seqs.push_back(&s);
  std::size_t budget = maxCombos;
  bool stopped = false;
  bool truncated = false;
  const std::function<void(std::size_t)> run = [&](std::size_t idx) {
    if (stopped || truncated) return;
    if (idx == seqs.size()) {
      if (budget == 0) {
        truncated = true;
        return;
      }
      --budget;
      if (!fn(po)) stopped = true;
      return;
    }
    auto& seq = *seqs[idx];
    std::sort(seq.begin(), seq.end());
    do {
      run(idx + 1);
      if (stopped || truncated) return;
    } while (std::next_permutation(seq.begin(), seq.end()));
  };
  run(0);
  return !truncated;
}

PortOrders flatFromLegacy(const ExecutionGraph& graph,
                          const LegacyPortOrders& legacy) {
  PortOrders po = PortOrders::shapedFor(graph);
  for (NodeId i = 0; i < graph.size(); ++i) {
    po.setIn(i, legacy.in[i]);
    po.setOut(i, legacy.out[i]);
  }
  return po;
}

std::vector<ExecutionGraph> equivalenceGraphs() {
  std::vector<ExecutionGraph> graphs;
  graphs.push_back(sec23Example().graph);
  ExecutionGraph forkJoin(5);
  for (NodeId i = 1; i <= 3; ++i) {
    forkJoin.addEdge(0, i);
    forkJoin.addEdge(i, 4);
  }
  graphs.push_back(std::move(forkJoin));
  ExecutionGraph chain(4);
  for (NodeId i = 0; i + 1 < 4; ++i) chain.addEdge(i, i + 1);
  graphs.push_back(std::move(chain));
  return graphs;
}

TEST(FlatLegacyEquivalence, IdenticalEnumerationOrder) {
  for (const auto& g : equivalenceGraphs()) {
    std::vector<LegacyPortOrders> legacySeen;
    legacyForEach(g, 100000, [&](const LegacyPortOrders& po) {
      legacySeen.push_back(po);
      return true;
    });
    std::size_t k = 0;
    forEachPortOrders(g, 100000, [&](const PortOrders& po) {
      if (k >= legacySeen.size()) {
        ADD_FAILURE() << "flat enumeration visits more candidates than legacy";
        return false;
      }
      for (NodeId i = 0; i < g.size(); ++i) {
        EXPECT_EQ(po.inVec(i), legacySeen[k].in[i])
            << "candidate " << k << ", node " << i;
        EXPECT_EQ(po.outVec(i), legacySeen[k].out[i])
            << "candidate " << k << ", node " << i;
      }
      ++k;
      return true;
    });
    EXPECT_EQ(k, legacySeen.size());
  }
}

TEST(FlatLegacyEquivalence, IdenticalCounts) {
  for (const auto& g : equivalenceGraphs()) {
    for (const std::size_t cap : {std::size_t{2}, std::size_t{7},
                                  std::size_t{36}, std::size_t{100000}}) {
      std::size_t enumerated = 0;
      legacyForEach(g, cap, [&](const LegacyPortOrders&) {
        ++enumerated;
        return true;
      });
      EXPECT_EQ(countPortOrders(g, cap), enumerated) << "cap " << cap;
    }
  }
}

TEST(FlatLegacyEquivalence, ByteIdenticalWinnersThroughSearchOrders) {
  // The search's exact path must return exactly the winner a legacy
  // enumeration + index-ordered strict-less reduce over the public
  // evaluator produces — value bits included.
  const auto pi = sec23Example();
  double refValue = std::numeric_limits<double>::infinity();
  LegacyPortOrders refOrders;
  legacyForEach(pi.graph, 100000, [&](const LegacyPortOrders& po) {
    const auto r =
        inorderPeriodForOrders(pi.app, pi.graph, flatFromLegacy(pi.graph, po));
    if (r && r->value < refValue) {
      refValue = r->value;
      refOrders = po;
    }
    return true;
  });

  OrchestrationOptions opt;  // combos = 4 << exactCap: exact path
  const auto r = inorderOrchestratePeriod(pi.app, pi.graph, opt);
  EXPECT_EQ(r.value, refValue);  // bit-identical, not just close
  EXPECT_EQ(r.orders, flatFromLegacy(pi.graph, refOrders));
}

TEST(FlatLegacyEquivalence, SteadyStateEvaluationsDoNotAllocate) {
  // Regression guard for the recycled block storage + per-worker scratch:
  // a serial exact search probes every candidate, but scratch buffers grow
  // only during warm-up — if allocations scale with probes again, this
  // trips long before a profile would.
  Application app;
  for (int i = 0; i < 6; ++i) app.addService(1.0, 1.0);
  ExecutionGraph g(6);
  for (NodeId i = 1; i <= 4; ++i) {
    g.addEdge(0, i);
    g.addEdge(i, 5);
  }
  std::atomic<std::size_t> probes{0};
  std::atomic<std::size_t> allocs{0};
  OrchestrationOptions opt;
  opt.exactCap = 20000;  // 4! * 4! = 576 combos: exact path
  opt.evalProbes = &probes;
  opt.scratchHeapAllocs = &allocs;
  (void)inorderOrchestratePeriod(app, g, opt);
  EXPECT_EQ(probes.load(), countPortOrders(g, opt.exactCap));
  EXPECT_GE(probes.load(), 500u);
  // Warm-up only: constraint storage, solve vector, and the block arena
  // each grow a handful of times, then every later probe reuses them.
  EXPECT_LE(allocs.load(), 16u);
}

}  // namespace
}  // namespace fsw
