#include <gtest/gtest.h>

#include <set>

#include "src/sched/port_orders.hpp"
#include "src/workload/paper_instances.hpp"

namespace fsw {
namespace {

TEST(PortOrders, CanonicalCoversAllPorts) {
  const auto pi = sec23Example();
  const auto po = PortOrders::canonical(pi.graph);
  // C1: virtual input first; sends to C2 and C4 plus no virtual output.
  ASSERT_EQ(po.in[0].size(), 1u);
  EXPECT_EQ(po.in[0][0], kWorld);
  EXPECT_EQ(po.out[0].size(), 2u);
  // C5: two receives, one virtual output.
  EXPECT_EQ(po.in[4].size(), 2u);
  ASSERT_EQ(po.out[4].size(), 1u);
  EXPECT_EQ(po.out[4][0], kWorld);
}

TEST(PortOrders, HeuristicIsAPermutationOfCanonical) {
  const auto pi = sec23Example();
  const auto canon = PortOrders::canonical(pi.graph);
  const auto heur = PortOrders::heuristic(pi.app, pi.graph);
  for (NodeId i = 0; i < pi.graph.size(); ++i) {
    std::multiset<NodeId> a(canon.in[i].begin(), canon.in[i].end());
    std::multiset<NodeId> b(heur.in[i].begin(), heur.in[i].end());
    EXPECT_EQ(a, b) << "in orders of node " << i;
    std::multiset<NodeId> c(canon.out[i].begin(), canon.out[i].end());
    std::multiset<NodeId> d(heur.out[i].begin(), heur.out[i].end());
    EXPECT_EQ(c, d) << "out orders of node " << i;
  }
}

TEST(PortOrders, HeuristicFeedsLongBranchFirst) {
  // In the Section 2.3 diamond, C2 leads to the longer branch
  // (C2 -> C3 -> C5), so C1 should send to C2 before C4.
  const auto pi = sec23Example();
  const auto heur = PortOrders::heuristic(pi.app, pi.graph);
  ASSERT_EQ(heur.out[0].size(), 2u);
  EXPECT_EQ(heur.out[0][0], 1u);  // C2 first
  EXPECT_EQ(heur.out[0][1], 3u);  // then C4
}

TEST(PortOrders, EnumerationCountsProductOfFactorials) {
  // Section 2.3: C1 has 2 sends, C5 has 2 receives; everything else is
  // fixed, so there are exactly 2 * 2 = 4 combinations.
  const auto pi = sec23Example();
  EXPECT_EQ(countPortOrders(pi.graph, 1000), 4u);
}

TEST(PortOrders, EnumerationTruncatesAtCap) {
  const auto pi = sec23Example();
  std::size_t seen = 0;
  const bool exhaustive =
      forEachPortOrders(pi.graph, 2, [&](const PortOrders&) {
        ++seen;
        return true;
      });
  EXPECT_FALSE(exhaustive);
  EXPECT_EQ(seen, 2u);
}

TEST(PortOrders, EnumerationVisitsDistinctOrders) {
  const auto pi = sec23Example();
  std::set<std::vector<NodeId>> c1SendOrders;
  forEachPortOrders(pi.graph, 1000, [&](const PortOrders& po) {
    c1SendOrders.insert(po.out[0]);
    return true;
  });
  EXPECT_EQ(c1SendOrders.size(), 2u);
}

TEST(PortOrders, EarlyStopPropagates) {
  const auto pi = sec23Example();
  std::size_t seen = 0;
  const bool ok = forEachPortOrders(pi.graph, 1000, [&](const PortOrders&) {
    ++seen;
    return false;  // stop immediately
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(seen, 1u);
}

TEST(PortOrders, ForkJoinCombinatorics) {
  // Fork-join with 3 middle services: 3! send orders x 3! receive orders.
  Application app;
  for (int i = 0; i < 5; ++i) app.addService(1.0, 1.0);
  ExecutionGraph g(5);
  for (NodeId i = 1; i <= 3; ++i) {
    g.addEdge(0, i);
    g.addEdge(i, 4);
  }
  EXPECT_EQ(countPortOrders(g, 100000), 36u);
}

}  // namespace
}  // namespace fsw
