#include "src/common/rational.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

namespace fsw {
namespace {

TEST(Rational, DefaultIsZero) {
  const Rational r;
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
  EXPECT_TRUE(r.isZero());
  EXPECT_TRUE(r.isInteger());
}

TEST(Rational, NormalizesSignAndGcd) {
  const Rational r(6, -4);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 2);
  EXPECT_TRUE(r.isNegative());
}

TEST(Rational, ZeroNumeratorNormalizes) {
  const Rational r(0, -7);
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Rational, Addition) {
  EXPECT_EQ(Rational(1, 3) + Rational(1, 6), Rational(1, 2));
  EXPECT_EQ(Rational(-1, 2) + Rational(1, 2), Rational(0));
}

TEST(Rational, Subtraction) {
  EXPECT_EQ(Rational(23, 3) - Rational(7), Rational(2, 3));
}

TEST(Rational, Multiplication) {
  EXPECT_EQ(Rational(2, 3) * Rational(9, 4), Rational(3, 2));
}

TEST(Rational, Division) {
  EXPECT_EQ(Rational(1, 2) / Rational(3, 4), Rational(2, 3));
  EXPECT_THROW(Rational(1) / Rational(0), std::domain_error);
}

TEST(Rational, DivisionBySigned) {
  EXPECT_EQ(Rational(1, 2) / Rational(-1, 4), Rational(-2));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(1, 2), Rational(1, 2));
  EXPECT_GT(Rational(23, 3), Rational(7));
  EXPECT_GE(Rational(7), Rational(7));
  EXPECT_NE(Rational(1, 3), Rational(1, 4));
}

TEST(Rational, CompoundAssignment) {
  Rational r(1, 2);
  r += Rational(1, 3);
  EXPECT_EQ(r, Rational(5, 6));
  r -= Rational(1, 6);
  EXPECT_EQ(r, Rational(2, 3));
  r *= Rational(3);
  EXPECT_EQ(r, Rational(2));
  r /= Rational(4);
  EXPECT_EQ(r, Rational(1, 2));
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(23, 3).toDouble(), 23.0 / 3.0);
}

TEST(Rational, Str) {
  EXPECT_EQ(Rational(23, 3).str(), "23/3");
  EXPECT_EQ(Rational(7).str(), "7");
  EXPECT_EQ(Rational(-1, 2).str(), "-1/2");
}

TEST(Rational, StreamOutput) {
  std::ostringstream os;
  os << Rational(5, 4);
  EXPECT_EQ(os.str(), "5/4");
}

TEST(Rational, ParseInteger) { EXPECT_EQ(Rational::parse("42"), Rational(42)); }

TEST(Rational, ParseFraction) {
  EXPECT_EQ(Rational::parse("23/3"), Rational(23, 3));
}

TEST(Rational, ParseDecimal) {
  EXPECT_EQ(Rational::parse("0.9999"), Rational(9999, 10000));
  EXPECT_EQ(Rational::parse("-1.5"), Rational(-3, 2));
}

TEST(Rational, AbsMinMax) {
  EXPECT_EQ(abs(Rational(-1, 2)), Rational(1, 2));
  EXPECT_EQ(min(Rational(1, 3), Rational(1, 2)), Rational(1, 3));
  EXPECT_EQ(max(Rational(1, 3), Rational(1, 2)), Rational(1, 2));
}

TEST(Rational, OverflowDetected) {
  const Rational big(std::numeric_limits<std::int64_t>::max(), 1);
  EXPECT_THROW(big * big, RationalOverflow);
  EXPECT_THROW(big + big, RationalOverflow);
}

TEST(Rational, NoFalseOverflowAfterReduction) {
  // (2^62 / 3) * (3 / 2^62) = 1 must not overflow despite large operands.
  const std::int64_t big = std::int64_t{1} << 62;
  EXPECT_EQ(Rational(big, 3) * Rational(3, big), Rational(1));
}

TEST(Rational, Sec23ExampleArithmetic) {
  // The INORDER optimum of Section 2.3: busy times 7, 6, 7 on C1, C4, C5
  // with total idle 2 spread over 3 servers gives period 23/3.
  const Rational idle = Rational(2, 3);
  const Rational period = Rational(7) + idle;
  EXPECT_EQ(period, Rational(23, 3));
  EXPECT_EQ(Rational(23, 3) - Rational(7), Rational(2, 3));
}

}  // namespace
}  // namespace fsw
