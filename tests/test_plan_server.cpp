// The async serving front end: submit/future bit-identity against serial
// optimizePlan (concurrent submitters, pooled and serial engines, across
// drain/shutdown), coalescing onto queued and in-flight solves, bounded
// admission under both policies, priority draining, and the streaming
// onResult path. The timing-sensitive lifecycle tests gate the drainer on
// a CandidateSource that blocks until released, so queue states are
// observed deterministically rather than raced.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/opt/candidate.hpp"
#include "src/opt/optimizer.hpp"
#include "src/serve/plan_server.hpp"
#include "src/workload/generator.hpp"

namespace fsw {
namespace {

using namespace std::chrono_literals;

OptimizerOptions fastOptions() {
  OptimizerOptions opt;
  opt.exactForestMaxN = 5;
  opt.heuristics.iterations = 400;
  opt.heuristics.restarts = 2;
  opt.orchestrator.order.exactCap = 150;
  opt.orchestrator.outorder.restarts = 6;
  opt.orchestrator.outorder.bisectSteps = 5;
  return opt;
}

/// The engine test's mixed request set: distinct apps x models x
/// objectives; appended twice when `duplicated`.
std::vector<PlanRequest> mixedWorkload(bool duplicated) {
  std::vector<PlanRequest> reqs;
  Prng rng(515);
  for (const std::size_t n : {4u, 5u, 6u}) {
    WorkloadSpec spec;
    spec.n = n;
    spec.precedenceDensity = n == 6 ? 0.25 : 0.0;
    const auto app = randomApplication(spec, rng);
    for (const CommModel m : kAllModels) {
      for (const Objective obj : {Objective::Period, Objective::Latency}) {
        reqs.push_back({app, m, obj, fastOptions()});
      }
    }
  }
  if (duplicated) {
    const std::size_t unique = reqs.size();
    for (std::size_t i = 0; i < unique; ++i) reqs.push_back(reqs[i]);
  }
  return reqs;
}

/// A request whose key differs per `seed` (distinct service cost).
PlanRequest tinyRequest(double seed) {
  Application app;
  app.addService(1.0 + seed, 0.5);
  app.addService(2.0, 0.7);
  app.addService(0.5, 1.1);
  return {app, CommModel::Overlap, Objective::Period, fastOptions()};
}

/// Releases blocked GatedSource solves; auto-releases on destruction so a
/// failing test cannot wedge the server's drain thread.
struct Gate {
  std::promise<void> promise;
  std::shared_future<void> future = promise.get_future().share();
  bool released = false;
  void release() {
    if (!released) {
      released = true;
      promise.set_value();
    }
  }
  ~Gate() { release(); }
};

/// A source that blocks candidate generation until the gate opens —
/// turns "the drainer is busy solving" into a deterministic test state.
class GatedSource final : public CandidateSource {
 public:
  explicit GatedSource(std::shared_future<void> gate)
      : gate_(std::move(gate)) {}
  [[nodiscard]] std::string_view name() const override { return "gated"; }
  [[nodiscard]] std::vector<ExecutionGraph> generate(
      const CandidateContext&) const override {
    gate_.wait();
    return {};
  }

 private:
  std::shared_future<void> gate_;
};

CandidateRegistry gatedRegistry(std::shared_future<void> gate,
                                std::string name = "gated-test") {
  CandidateRegistry reg = CandidateRegistry::makeBuiltin();
  reg.setName(std::move(name));
  reg.add(std::make_unique<GatedSource>(std::move(gate)));
  return reg;
}

PlanRequest gatedRequest(const CandidateRegistry& reg, double seed = 7.0) {
  PlanRequest req = tinyRequest(seed);
  req.options.registry = &reg;
  return req;
}

template <typename Pred>
bool waitFor(Pred pred, std::chrono::milliseconds timeout = 10s) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

TEST(PlanServer, SubmitWinnersMatchSerialOptimizePlanOnBothEngines) {
  const auto reqs = mixedWorkload(/*duplicated=*/false);
  std::vector<OptimizedPlan> expected;
  expected.reserve(reqs.size());
  for (const auto& r : reqs) {
    OptimizerOptions serial = r.options;
    serial.threads = 1;
    expected.push_back(optimizePlan(r.app, r.model, r.objective, serial));
  }

  for (const bool serialEngine : {true, false}) {
    PlanEngine engine{
        EngineConfig{.threads = serialEngine ? std::size_t{1} : 0}};
    ServerConfig sc;
    sc.engine = &engine;
    sc.maxBatch = 4;
    sc.drainThreads = 2;
    PlanServer server{sc};

    std::vector<std::future<OptimizedPlan>> futures;
    futures.reserve(reqs.size());
    for (const auto& r : reqs) futures.push_back(server.submit(r));
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const auto r = futures[i].get();
      EXPECT_EQ(r.value, expected[i].value) << "request " << i;
      EXPECT_EQ(r.strategy, expected[i].strategy) << "request " << i;
      EXPECT_EQ(graphSignature(r.plan.graph),
                graphSignature(expected[i].plan.graph))
          << "request " << i;
    }
    server.drain();
    const auto st = server.stats();
    EXPECT_EQ(st.admitted, reqs.size());  // all keys distinct
    EXPECT_EQ(st.completed, st.admitted);
    EXPECT_EQ(st.rejected, 0u);
  }
}

TEST(PlanServer, ConcurrentSubmittersGetBitIdenticalWinners) {
  const auto reqs = mixedWorkload(/*duplicated=*/false);
  std::vector<OptimizedPlan> expected;
  expected.reserve(reqs.size());
  for (const auto& r : reqs) {
    OptimizerOptions serial = r.options;
    serial.threads = 1;
    expected.push_back(optimizePlan(r.app, r.model, r.objective, serial));
  }

  ServerConfig sc;
  sc.maxBatch = 3;
  sc.drainThreads = 2;
  PlanServer server{sc};

  const std::size_t kThreads = 4;
  std::vector<std::vector<OptimizedPlan>> got(kThreads);
  std::atomic<bool> failed{false};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      try {
        std::vector<std::future<OptimizedPlan>> futures;
        futures.reserve(reqs.size());
        for (std::size_t i = 0; i < reqs.size(); ++i) {
          // Each submitter walks the set from a different offset, so
          // identical keys are live concurrently and coalesce.
          futures.push_back(server.submit(reqs[(i + t * 5) % reqs.size()]));
        }
        for (auto& f : futures) got[t].push_back(f.get());
      } catch (...) {
        failed = true;
      }
    });
  }
  for (auto& t : submitters) t.join();
  ASSERT_FALSE(failed);

  for (std::size_t t = 0; t < kThreads; ++t) {
    ASSERT_EQ(got[t].size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const std::size_t j = (i + t * 5) % reqs.size();
      EXPECT_EQ(got[t][i].value, expected[j].value);
      EXPECT_EQ(got[t][i].strategy, expected[j].strategy);
      EXPECT_EQ(graphSignature(got[t][i].plan.graph),
                graphSignature(expected[j].plan.graph));
    }
  }
  server.drain();
  const auto st = server.stats();
  EXPECT_EQ(st.submitted, kThreads * reqs.size());
  EXPECT_EQ(st.admitted + st.coalesced, st.submitted);
  EXPECT_EQ(st.completed, st.admitted);
  EXPECT_EQ(st.rejected, 0u);
}

TEST(PlanServer, CoalescingAttachesToQueuedAndInFlightSolves) {
  Gate gate;
  const CandidateRegistry reg = gatedRegistry(gate.future);
  PlanEngine engine{EngineConfig{.threads = 1}};
  ServerConfig sc;
  sc.engine = &engine;
  sc.maxBatch = 1;
  sc.drainThreads = 1;
  PlanServer server{sc};

  auto f0 = server.submit(gatedRequest(reg));
  EXPECT_TRUE(waitFor([&] { return server.inFlight() == 1; }));

  // The drainer is pinned inside the gated solve: these queue states are
  // now deterministic.
  const PlanRequest reqA = tinyRequest(1.0);
  auto fA1 = server.submit(reqA);
  auto fA2 = server.submit(reqA);  // coalesces onto the queued solve
  auto fA3 = server.submit(reqA);
  EXPECT_EQ(server.queueDepth(), 1u);
  auto f0b = server.submit(gatedRequest(reg));  // attaches to the IN-FLIGHT solve
  auto st = server.stats();
  EXPECT_EQ(st.admitted, 2u);
  EXPECT_EQ(st.coalesced, 3u);

  gate.release();
  server.drain();

  const auto r0 = f0.get();
  const auto r0b = f0b.get();
  EXPECT_EQ(r0.value, r0b.value);
  EXPECT_EQ(r0.strategy, r0b.strategy);
  const auto rA1 = fA1.get();
  const auto rA2 = fA2.get();
  const auto rA3 = fA3.get();
  EXPECT_EQ(rA1.value, rA2.value);
  EXPECT_EQ(rA1.value, rA3.value);
  EXPECT_EQ(graphSignature(rA1.plan.graph), graphSignature(rA2.plan.graph));

  st = server.stats();
  EXPECT_EQ(st.completed, 2u);  // one solve per admitted key, ever
  EXPECT_EQ(st.batches, 2u);
}

TEST(PlanServer, RejectPolicyFailsFastAtTheQueueBound) {
  Gate gate;
  const CandidateRegistry reg = gatedRegistry(gate.future);
  ServerConfig sc;
  sc.admission = AdmissionPolicy::Reject;
  sc.maxQueueDepth = 1;
  sc.maxBatch = 1;
  sc.drainThreads = 1;
  PlanServer server{sc};

  auto f0 = server.submit(gatedRequest(reg));
  EXPECT_TRUE(waitFor([&] { return server.inFlight() == 1; }));

  auto fA = server.submit(tinyRequest(1.0));  // fills the queue
  auto fB = server.submit(tinyRequest(2.0));  // over the bound: rejected
  EXPECT_THROW(fB.get(), RejectedSubmit);
  // A duplicate of queued work coalesces — no queue space needed, so the
  // full queue does not reject it.
  auto fA2 = server.submit(tinyRequest(1.0));

  gate.release();
  server.drain();
  EXPECT_EQ(fA.get().value, fA2.get().value);
  EXPECT_GT(f0.get().stats.sourcesRun, 0u);
  const auto st = server.stats();
  EXPECT_EQ(st.rejected, 1u);
  EXPECT_EQ(st.admitted, 2u);
  EXPECT_EQ(st.coalesced, 1u);
}

TEST(PlanServer, BlockPolicyWaitsForSpace) {
  Gate gate;
  const CandidateRegistry reg = gatedRegistry(gate.future);
  ServerConfig sc;
  sc.admission = AdmissionPolicy::Block;
  sc.maxQueueDepth = 1;
  sc.maxBatch = 1;
  sc.drainThreads = 1;
  PlanServer server{sc};

  auto f0 = server.submit(gatedRequest(reg));
  EXPECT_TRUE(waitFor([&] { return server.inFlight() == 1; }));
  auto fA = server.submit(tinyRequest(1.0));  // fills the queue

  std::atomic<bool> admitted{false};
  std::future<OptimizedPlan> fB;
  std::thread blocked([&] {
    fB = server.submit(tinyRequest(2.0));  // blocks until space frees
    admitted = true;
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(admitted.load());  // still parked at the admission bound
  EXPECT_EQ(server.queueDepth(), 1u);

  gate.release();  // the gated solve finishes; A drains; space frees
  blocked.join();
  EXPECT_TRUE(admitted.load());
  server.drain();

  EXPECT_GT(f0.get().stats.sourcesRun, 0u);
  EXPECT_TRUE(std::isfinite(fA.get().value));
  EXPECT_TRUE(std::isfinite(fB.get().value));
  const auto st = server.stats();
  EXPECT_EQ(st.admitted, 3u);
  EXPECT_EQ(st.rejected, 0u);
}

TEST(PlanServer, ShutdownRejectsBlockedAndNewSubmitsButDrainsAdmittedWork) {
  Gate gate;
  const CandidateRegistry reg = gatedRegistry(gate.future);
  ServerConfig sc;
  sc.admission = AdmissionPolicy::Block;
  sc.maxQueueDepth = 1;
  sc.maxBatch = 1;
  sc.drainThreads = 1;
  PlanServer server{sc};

  auto f0 = server.submit(gatedRequest(reg));
  EXPECT_TRUE(waitFor([&] { return server.inFlight() == 1; }));
  auto fA = server.submit(tinyRequest(1.0));

  std::future<OptimizedPlan> fB;
  std::thread blocked([&] { fB = server.submit(tinyRequest(2.0)); });
  std::this_thread::sleep_for(20ms);

  // Shutdown must (a) kick the blocked submitter out with a rejection and
  // (b) still complete the two admitted solves. It can only finish once
  // the gate opens, so run it from a helper thread.
  std::thread closer([&] { server.shutdown(); });
  blocked.join();  // woken by shutdown, rejected
  EXPECT_THROW(fB.get(), RejectedSubmit);

  gate.release();
  closer.join();

  // Admitted work survived the shutdown and the winners are intact.
  EXPECT_GT(f0.get().stats.sourcesRun, 0u);
  const auto serialRef = [&] {
    PlanRequest r = tinyRequest(1.0);
    r.options.threads = 1;
    return optimizePlan(r.app, r.model, r.objective, r.options);
  }();
  const auto rA = fA.get();
  EXPECT_EQ(rA.value, serialRef.value);
  EXPECT_EQ(rA.strategy, serialRef.strategy);

  // Post-shutdown: drain is a no-op, submits are rejected, shutdown is
  // idempotent.
  server.drain();
  auto late = server.submit(tinyRequest(3.0));
  EXPECT_THROW(late.get(), RejectedSubmit);
  server.shutdown();
  const auto st = server.stats();
  EXPECT_EQ(st.admitted, 2u);
  EXPECT_EQ(st.completed, 2u);
  EXPECT_EQ(st.rejected, 2u);  // the blocked submit and the late one
}

TEST(PlanServer, PriorityOrdersDrainingAndCoalescingRaisesIt) {
  Gate gate;
  const CandidateRegistry reg = gatedRegistry(gate.future);
  std::mutex mu;
  std::vector<std::string> completionOrder;
  ServerConfig sc;
  sc.maxBatch = 1;
  sc.drainThreads = 1;
  sc.onResult = [&](const PlanRequest& r, const OptimizedPlan&) {
    const std::lock_guard<std::mutex> lock(mu);
    completionOrder.push_back(PlanEngine::requestKey(r));
  };
  PlanServer server{sc};

  const PlanRequest gated = gatedRequest(reg);
  const PlanRequest x = tinyRequest(1.0);
  const PlanRequest y = tinyRequest(2.0);
  const PlanRequest z = tinyRequest(3.0);

  auto f0 = server.submit(gated);
  EXPECT_TRUE(waitFor([&] { return server.inFlight() == 1; }));
  auto fx = server.submit(x, /*priority=*/0);
  auto fy = server.submit(y, /*priority=*/5);
  auto fz = server.submit(z, /*priority=*/0);
  auto fx2 = server.submit(x, /*priority=*/9);  // raises x above y

  gate.release();
  server.drain();

  const std::vector<std::string> want = {
      PlanEngine::requestKey(gated), PlanEngine::requestKey(x),
      PlanEngine::requestKey(y), PlanEngine::requestKey(z)};
  {
    const std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(completionOrder, want);
  }
  EXPECT_EQ(fx.get().value, fx2.get().value);
  (void)f0.get();
  (void)fy.get();
  (void)fz.get();
}

TEST(PlanServer, OnResultStreamsEveryCompletedSolveBeforeItsFutures) {
  const auto reqs = mixedWorkload(/*duplicated=*/true);
  std::mutex mu;
  std::size_t streamed = 0;
  std::unordered_map<std::string, double> streamedValue;
  ServerConfig sc;
  sc.maxBatch = 4;
  sc.onResult = [&](const PlanRequest& r, const OptimizedPlan& plan) {
    const std::lock_guard<std::mutex> lock(mu);
    ++streamed;
    streamedValue[PlanEngine::requestKey(r)] = plan.value;
  };
  PlanServer server{sc};

  std::vector<std::future<OptimizedPlan>> futures;
  futures.reserve(reqs.size());
  for (const auto& r : reqs) futures.push_back(server.submit(r));
  server.drain();

  // Every future was ready at drain-return, and its value matches what the
  // stream saw for its key.
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_EQ(futures[i].wait_for(0s), std::future_status::ready);
    const auto r = futures[i].get();
    const std::lock_guard<std::mutex> lock(mu);
    const auto it = streamedValue.find(PlanEngine::requestKey(reqs[i]));
    ASSERT_NE(it, streamedValue.end());
    EXPECT_EQ(r.value, it->second);
  }
  const auto st = server.stats();
  EXPECT_EQ(streamed, st.completed);
  EXPECT_EQ(st.completed, st.admitted);
  EXPECT_EQ(st.submitted, reqs.size());
}

TEST(PlanServer, DrainIsASnapshotNotQuiescence) {
  Gate gateA;
  Gate gateB;
  const CandidateRegistry regA = gatedRegistry(gateA.future);
  const CandidateRegistry regB = gatedRegistry(gateB.future, "gated-test-b");
  ServerConfig sc;
  sc.maxBatch = 1;
  sc.drainThreads = 1;
  PlanServer server{sc};

  auto fA = server.submit(gatedRequest(regA, 7.0));
  EXPECT_TRUE(waitFor([&] { return server.inFlight() == 1; }));

  // drain() snapshots here: only A is admitted yet. The sleep gives the
  // drainer thread ample time to take its cutoff before B is admitted (a
  // slower start would include B in the snapshot and fail the waitFor
  // below — a clean failure, not a hang, because gateB opens before the
  // join either way).
  std::atomic<bool> drained{false};
  std::thread drainer([&] {
    server.drain();
    drained = true;
  });
  std::this_thread::sleep_for(100ms);
  EXPECT_FALSE(drained.load());  // A is still gated

  // B is admitted after the snapshot; it must not extend the wait even
  // though it will itself block on its own gate.
  auto fB = server.submit(gatedRequest(regB, 8.0));
  gateA.release();
  EXPECT_TRUE(waitFor([&] { return drained.load(); }));
  gateB.release();
  drainer.join();

  server.drain();  // full drain now covers B
  EXPECT_TRUE(std::isfinite(fA.get().value));
  EXPECT_TRUE(std::isfinite(fB.get().value));
}

TEST(PlanServer, ThrowingOnResultFailsTheFuturesNotTheServer) {
  std::atomic<std::size_t> calls{0};
  ServerConfig sc;
  sc.maxBatch = 1;
  sc.onResult = [&](const PlanRequest&, const OptimizedPlan&) {
    if (calls++ == 0) throw std::runtime_error("downstream publish failed");
  };
  PlanServer server{sc};

  auto f1 = server.submit(tinyRequest(1.0));
  server.drain();
  auto f2 = server.submit(tinyRequest(2.0));
  server.drain();

  // The first solve's callback threw: its future carries the exception,
  // but the drain thread survived and served the second solve normally.
  EXPECT_THROW(f1.get(), std::runtime_error);
  EXPECT_TRUE(std::isfinite(f2.get().value));
  const auto st = server.stats();
  EXPECT_EQ(st.completed, 2u);
  EXPECT_EQ(calls.load(), 2u);
}

}  // namespace
}  // namespace fsw
