// The parallel plan-search engine: CandidateSource registration, signature
// dedup / score memoization, and the determinism contract — pooled and
// serial runs must return identical winners.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/thread_pool.hpp"
#include "src/opt/candidate.hpp"
#include "src/opt/optimizer.hpp"
#include "src/serve/plan_engine.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_instances.hpp"

namespace fsw {
namespace {

OptimizerOptions engineOptions() {
  OptimizerOptions opt;
  opt.exactForestMaxN = 5;
  opt.heuristics.iterations = 600;
  opt.heuristics.restarts = 2;
  opt.orchestrator.order.exactCap = 200;
  opt.orchestrator.outorder.restarts = 8;
  opt.orchestrator.outorder.bisectSteps = 5;
  return opt;
}

TEST(CandidateRegistry, BuiltinPortfolioIsCompleteAndOrdered) {
  const CandidateRegistry& reg = CandidateRegistry::builtin();
  ASSERT_EQ(reg.size(), 6u);
  EXPECT_EQ(reg.sources()[0]->name(), "chain-greedy");
  EXPECT_EQ(reg.sources()[1]->name(), "no-comm-baseline");
  EXPECT_EQ(reg.sources()[2]->name(), "greedy-forest");
  EXPECT_EQ(reg.sources()[3]->name(), "hill-climb");
  EXPECT_EQ(reg.sources()[4]->name(), "anneal");
  EXPECT_EQ(reg.sources()[5]->name(), "exact-forest");
  EXPECT_NE(reg.find("anneal"), nullptr);
  EXPECT_EQ(reg.find("nonexistent"), nullptr);
}

TEST(CandidateRegistry, RejectsDuplicateAndNullSources) {
  CandidateRegistry reg = CandidateRegistry::makeBuiltin();
  class Dup final : public CandidateSource {
   public:
    [[nodiscard]] std::string_view name() const override { return "anneal"; }
    [[nodiscard]] std::vector<ExecutionGraph> generate(
        const CandidateContext&) const override {
      return {};
    }
  };
  EXPECT_THROW(reg.add(std::make_unique<Dup>()), std::invalid_argument);
  EXPECT_THROW(reg.add(nullptr), std::invalid_argument);
}

TEST(CandidateRegistry, CustomSourceParticipatesAndCanWin) {
  // A source that proposes the known-optimal B.1 two-star graph must win on
  // the B.1 instance when the rest of the portfolio is heuristic-only.
  const PaperInstance b1 = counterexampleB1();
  class OracleSource final : public CandidateSource {
   public:
    explicit OracleSource(ExecutionGraph g) : graph_(std::move(g)) {}
    [[nodiscard]] std::string_view name() const override { return "oracle"; }
    [[nodiscard]] std::vector<ExecutionGraph> generate(
        const CandidateContext&) const override {
      return {graph_};
    }

   private:
    ExecutionGraph graph_;
  };
  CandidateRegistry reg = CandidateRegistry::makeBuiltin();
  reg.add(std::make_unique<OracleSource>(b1.graph));

  OptimizerOptions opt;
  opt.exactForestMaxN = 0;  // 202 services: no exact search
  opt.heuristics.iterations = 200;
  opt.heuristics.restarts = 1;
  opt.registry = &reg;
  opt.threads = 1;
  const auto r =
      optimizePlan(b1.app, CommModel::Overlap, Objective::Period, opt);
  EXPECT_NEAR(r.value, 100.0, 1e-6);
  EXPECT_EQ(r.strategy, "oracle");
}

TEST(GraphSignature, CanonicalAndCollisionFree) {
  ExecutionGraph a(3);
  a.addEdge(0, 1);
  a.addEdge(1, 2);
  ExecutionGraph b(3);
  b.addEdge(1, 2);
  b.addEdge(0, 1);  // same graph, different insertion order
  EXPECT_EQ(graphSignature(a), graphSignature(b));

  ExecutionGraph c(3);
  c.addEdge(0, 2);
  c.addEdge(1, 2);
  EXPECT_NE(graphSignature(a), graphSignature(c));
  // "n12 with edge 3->4" must not collide with "n1 2|3 -> 4"-style strings.
  EXPECT_NE(graphSignature(ExecutionGraph(12)), graphSignature(ExecutionGraph(1)));
}

TEST(CandidateCache, ScoreMemoCountsHitsAndMisses) {
  Application app;
  app.addService(1.0, 0.5);
  app.addService(2.0, 0.8);
  ExecutionGraph g(2);
  g.addEdge(0, 1);
  const std::string sig = graphSignature(g);

  CandidateCache cache;
  // The engine's miss-fill protocol: probe, compute on miss, insert.
  EXPECT_EQ(cache.lookup(sig), std::nullopt);
  const double s =
      surrogateScore(app, g, CommModel::Overlap, Objective::Period);
  EXPECT_EQ(cache.insert(sig, s), 0u);
  EXPECT_EQ(cache.lookup(sig), s);
  EXPECT_EQ(cache.lookup("no-such-key"), std::nullopt);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.scoreMisses, 2u);  // the cold probe and the bad key
  EXPECT_EQ(stats.scoreHits, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(Engine, DuplicateProposalsAreScoredAndOrchestratedOnce) {
  // Two unit services, no precedences: the chain greedies, forest greedy and
  // exact search all propose the same tiny graphs, so the run must observe
  // duplicates and serve their scores from the memo.
  Application app;
  app.addService(1.0, 0.5);
  app.addService(1.0, 0.5);
  OptimizerOptions opt = engineOptions();
  opt.threads = 1;
  // Fresh serial engine, cold score cache; full-result caching off so the
  // warm rerun below exercises the score-cache path rather than being
  // served wholesale.
  PlanEngine engine{EngineConfig{.threads = 1, .cacheFullResults = false}};
  const auto r = engine.optimize(app, CommModel::Overlap, Objective::Period,
                                 opt);
  EXPECT_EQ(r.stats.sourcesRun, 6u);
  EXPECT_GT(r.stats.generated, r.stats.unique);
  EXPECT_GE(r.stats.duplicates, 1u);
  EXPECT_EQ(r.stats.unique + r.stats.duplicates, r.stats.generated);
  EXPECT_LE(r.stats.orchestrated, r.stats.unique);
  // Cold cache: nothing shared, every unique signature computed once.
  EXPECT_EQ(r.stats.sharedHits, 0u);
  EXPECT_EQ(engine.cacheStats().scoreMisses, r.stats.unique);
  EXPECT_EQ(engine.cacheStats().scoreHits, 0u);
  // Warm rerun: every unique signature is a shared hit, none recomputed.
  const auto r2 = engine.optimize(app, CommModel::Overlap, Objective::Period,
                                  opt);
  EXPECT_EQ(r2.stats.sharedHits, r2.stats.unique);
  EXPECT_EQ(r2.stats.scoreCacheHits, r2.stats.duplicates + r2.stats.sharedHits);
  EXPECT_EQ(engine.cacheStats().scoreMisses, r.stats.unique);
  EXPECT_EQ(r2.value, r.value);
  EXPECT_EQ(r2.strategy, r.strategy);
}

TEST(Engine, PooledRunMatchesSerialRunOnPaperInstance) {
  const PaperInstance pi = sec23Example();
  ThreadPool pool(4);
  // Dedicated engines with full-result caching off: on the shared engine
  // the pooled call would be a result-cache hit of the serial one —
  // comparing a winner against a copy of itself.
  PlanEngine serialEngine{EngineConfig{.threads = 1, .cacheFullResults = false}};
  PlanEngine pooledEngine{EngineConfig{.cacheFullResults = false}};
  for (const CommModel m : kAllModels) {
    for (const Objective obj : {Objective::Period, Objective::Latency}) {
      OptimizerOptions serial = engineOptions();
      serial.threads = 1;
      OptimizerOptions pooled = engineOptions();
      pooled.pool = &pool;
      const auto rs = serialEngine.optimize(pi.app, m, obj, serial);
      const auto rp = pooledEngine.optimize(pi.app, m, obj, pooled);
      EXPECT_EQ(rs.value, rp.value) << name(m) << "/" << name(obj);
      EXPECT_EQ(rs.strategy, rp.strategy) << name(m) << "/" << name(obj);
      EXPECT_EQ(rs.surrogate, rp.surrogate) << name(m) << "/" << name(obj);
      EXPECT_EQ(graphSignature(rs.plan.graph), graphSignature(rp.plan.graph))
          << name(m) << "/" << name(obj);
    }
  }
}

TEST(Engine, PooledRunMatchesSerialRunOnCounterexamples) {
  ThreadPool pool(4);
  PlanEngine serialEngine{EngineConfig{.threads = 1, .cacheFullResults = false}};
  PlanEngine pooledEngine{EngineConfig{.cacheFullResults = false}};
  for (const auto& pi : {counterexampleB2(), counterexampleB3()}) {
    OptimizerOptions serial = engineOptions();
    serial.threads = 1;
    OptimizerOptions pooled = engineOptions();
    pooled.pool = &pool;
    const auto rs = serialEngine.optimize(pi.app, CommModel::Overlap,
                                          Objective::Period, serial);
    const auto rp = pooledEngine.optimize(pi.app, CommModel::Overlap,
                                          Objective::Period, pooled);
    EXPECT_EQ(rs.value, rp.value);
    EXPECT_EQ(rs.strategy, rp.strategy);
    EXPECT_EQ(graphSignature(rs.plan.graph), graphSignature(rp.plan.graph));
  }
}

TEST(Engine, PooledRunMatchesSerialRunOnRandomInstances) {
  Prng rng(2026);
  ThreadPool pool(3);
  PlanEngine serialEngine{EngineConfig{.threads = 1, .cacheFullResults = false}};
  PlanEngine pooledEngine{EngineConfig{.cacheFullResults = false}};
  for (int trial = 0; trial < 3; ++trial) {
    WorkloadSpec spec;
    spec.n = 6;
    spec.precedenceDensity = trial == 2 ? 0.25 : 0.0;
    const auto app = randomApplication(spec, rng);
    OptimizerOptions serial = engineOptions();
    serial.threads = 1;
    OptimizerOptions pooled = engineOptions();
    pooled.pool = &pool;
    const auto rs = serialEngine.optimize(app, CommModel::InOrder,
                                          Objective::Period, serial);
    const auto rp = pooledEngine.optimize(app, CommModel::InOrder,
                                          Objective::Period, pooled);
    EXPECT_EQ(rs.value, rp.value) << "trial " << trial;
    EXPECT_EQ(rs.strategy, rp.strategy) << "trial " << trial;
    EXPECT_EQ(graphSignature(rs.plan.graph), graphSignature(rp.plan.graph))
        << "trial " << trial;
  }
}

TEST(Engine, SchedulerSearchIsPoolInvariant) {
  // The order search inside one orchestration must itself be deterministic
  // under a pool: exact enumeration and seeded local-search restarts.
  Prng rng(77);
  WorkloadSpec spec;
  spec.n = 5;
  const auto app = randomApplication(spec, rng);
  const auto g = randomLayeredDag(app, 2, 2, rng);
  ThreadPool pool(4);

  for (const std::size_t cap : {20000u, 1u}) {  // exact path, heuristic path
    OrchestrationOptions serial;
    serial.exactCap = cap;
    serial.localSearchIters = 60;
    OrchestrationOptions pooled = serial;
    pooled.pool = &pool;
    const auto rs = inorderOrchestratePeriod(app, g, serial);
    const auto rp = inorderOrchestratePeriod(app, g, pooled);
    EXPECT_EQ(rs.value, rp.value) << "cap " << cap;
    EXPECT_EQ(rs.orders, rp.orders) << "cap " << cap;
  }
}

TEST(ThreadPoolHelpers, ParallelMapIsDeterministicAndNestable) {
  ThreadPool pool(4);
  const auto outer = parallelMap<std::vector<int>>(&pool, 8, [&](std::size_t i) {
    // Nested fan-out on the same pool must not deadlock.
    return parallelMap<int>(&pool, 16, [&](std::size_t j) {
      return static_cast<int>(i * 100 + j);
    });
  });
  for (std::size_t i = 0; i < outer.size(); ++i) {
    ASSERT_EQ(outer[i].size(), 16u);
    for (std::size_t j = 0; j < outer[i].size(); ++j) {
      EXPECT_EQ(outer[i][j], static_cast<int>(i * 100 + j));
    }
  }
}

TEST(ThreadPoolHelpers, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallelFor(&pool, 8,
                  [](std::size_t i) {
                    if (i == 5) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

}  // namespace
}  // namespace fsw
