#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/common/prng.hpp"
#include "src/common/util.hpp"
#include "src/opt/chain.hpp"
#include "src/workload/generator.hpp"

namespace fsw {
namespace {

/// Brute-force best chain value over all n! orders.
template <typename Eval>
double bruteForceChain(const Application& app, Eval eval) {
  double best = std::numeric_limits<double>::infinity();
  forEachPermutation(app.size(), [&](const std::vector<std::size_t>& perm) {
    std::vector<NodeId> order(perm.begin(), perm.end());
    best = std::min(best, eval(order));
    return true;
  });
  return best;
}

TEST(ChainPeriod, GreedyMatchesBruteForceOnePort) {
  Prng rng(101);
  for (int trial = 0; trial < 40; ++trial) {
    WorkloadSpec spec;
    spec.n = 6;
    spec.filterFraction = 0.5;
    const auto app = randomApplication(spec, rng);
    for (const CommModel m : {CommModel::InOrder, CommModel::OutOrder}) {
      const auto greedy = chainOrderPeriod(app, m);
      const double gv = chainPeriodValue(app, greedy, m);
      const double bv = bruteForceChain(app, [&](const auto& order) {
        return chainPeriodValue(app, order, m);
      });
      EXPECT_NEAR(gv, bv, 1e-9) << "trial " << trial << " " << name(m);
    }
  }
}

TEST(ChainPeriod, GreedyMatchesBruteForceOverlap) {
  Prng rng(202);
  for (int trial = 0; trial < 40; ++trial) {
    WorkloadSpec spec;
    spec.n = 6;
    spec.filterFraction = 0.5;
    const auto app = randomApplication(spec, rng);
    const auto greedy = chainOrderPeriod(app, CommModel::Overlap);
    const double gv = chainPeriodValue(app, greedy, CommModel::Overlap);
    const double bv = bruteForceChain(app, [&](const auto& order) {
      return chainPeriodValue(app, order, CommModel::Overlap);
    });
    EXPECT_NEAR(gv, bv, 1e-9) << "trial " << trial;
  }
}

TEST(ChainLatency, GreedyMatchesBruteForce) {
  Prng rng(303);
  for (int trial = 0; trial < 40; ++trial) {
    WorkloadSpec spec;
    spec.n = 6;
    spec.filterFraction = 0.5;
    const auto app = randomApplication(spec, rng);
    const auto greedy = chainOrderLatency(app);
    const double gv = chainLatencyValue(app, greedy);
    const double bv = bruteForceChain(app, [&](const auto& order) {
      return chainLatencyValue(app, order);
    });
    EXPECT_NEAR(gv, bv, 1e-9) << "trial " << trial;
  }
}

TEST(ChainPeriod, FiltersPrecedeExpanders) {
  Application app;
  app.addService(1.0, 2.0);  // expander
  app.addService(1.0, 0.5);  // filter
  app.addService(1.0, 0.9);  // filter
  for (const CommModel m : kAllModels) {
    const auto order = chainOrderPeriod(app, m);
    const auto posOf = [&](NodeId v) {
      return std::find(order.begin(), order.end(), v) - order.begin();
    };
    EXPECT_LT(posOf(1), posOf(0)) << name(m);
    EXPECT_LT(posOf(2), posOf(0)) << name(m);
  }
}

TEST(ChainOrder, RejectsPrecedenceConstraints) {
  Application app;
  app.addService(1.0, 1.0);
  app.addService(1.0, 1.0);
  app.addPrecedence(0, 1);
  EXPECT_THROW(chainOrderPeriod(app, CommModel::Overlap),
               std::invalid_argument);
  EXPECT_THROW(chainOrderLatency(app), std::invalid_argument);
  EXPECT_THROW(noCommBaselineGraph(app), std::invalid_argument);
}

TEST(NoCommBaseline, FiltersChainedByCostOverFiltering) {
  Application app;
  app.addService(4.0, 0.5);   // c/(1-s) = 8
  app.addService(1.0, 0.5);   // c/(1-s) = 2
  app.addService(10.0, 2.0);  // expander
  const auto g = noCommBaselineGraph(app);
  EXPECT_TRUE(g.hasEdge(1, 0));  // cheaper filter first
  EXPECT_TRUE(g.hasEdge(0, 2));  // expander hangs off the last filter
}

TEST(NoCommBaseline, PeriodIsMaxFilteredComputation) {
  Application app;
  app.addService(4.0, 0.5);
  app.addService(8.0, 0.5);
  app.addService(40.0, 2.0);
  const auto g = noCommBaselineGraph(app);
  // Chain 0 -> 1 (c/(1-s): 8 < 16), expander after both: 0.25 * 40 = 10.
  EXPECT_NEAR(noCommPeriodValue(app, g), 10.0, 1e-9);
}

TEST(NoCommBaseline, OptimalAmongForestsWithoutComm) {
  // Brute-force: no forest beats the baseline when communication is free.
  Prng rng(404);
  for (int trial = 0; trial < 10; ++trial) {
    WorkloadSpec spec;
    spec.n = 5;
    spec.filterFraction = 0.6;
    const auto app = randomApplication(spec, rng);
    const auto base = noCommBaselineGraph(app);
    const double baseV = noCommPeriodValue(app, base);
    // Enumerate all parent functions.
    const std::size_t n = app.size();
    std::vector<NodeId> parent(n, kNoNode);
    double best = baseV;
    std::vector<std::size_t> digit(n, n);
    bool carry = false;
    while (!carry) {
      bool ok = true;
      for (NodeId i = 0; i < n && ok; ++i) {
        parent[i] = digit[i] == n
                        ? kNoNode
                        : (static_cast<NodeId>(digit[i]) >= i ? digit[i] + 1
                                                              : digit[i]);
      }
      // Cycle check by walking up.
      for (NodeId i = 0; i < n && ok; ++i) {
        NodeId v = parent[i];
        std::size_t steps = 0;
        while (v != kNoNode && ++steps <= n) v = parent[v];
        ok = (v == kNoNode);
      }
      if (ok) {
        best = std::min(
            best, noCommPeriodValue(app, ExecutionGraph::fromParents(parent)));
      }
      carry = true;
      for (NodeId i = 0; i < n && carry; ++i) {
        if (digit[i] < n) {
          ++digit[i];
          carry = false;
        } else {
          digit[i] = 0;
        }
      }
    }
    EXPECT_NEAR(baseV, best, 1e-9) << "trial " << trial;
  }
}

}  // namespace
}  // namespace fsw
