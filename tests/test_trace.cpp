// Dynamic workload traces and the scenario driver: the trace codec round
// trips byte-exactly and fails cleanly on hostile input (truncation at
// every cut, version/kind tampering, hostile counts — the test_binio
// discipline); the generator is a pure function of (spec, seed) and only
// ever emits legal mutations; and a replay through a live 2-host
// PlanRouter fleet with a mid-trace host kill keeps every re-solved
// winner bit-identical to a cold serial optimizePlan of the mutated
// application.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/io/binio.hpp"
#include "src/io/serialize.hpp"
#include "src/serve/bound_board.hpp"
#include "src/serve/plan_engine.hpp"
#include "src/serve/plan_router.hpp"
#include "src/serve/plan_service.hpp"
#include "src/sim/scenario_driver.hpp"
#include "src/workload/trace.hpp"

namespace fsw {
namespace {

OptimizerOptions fastOptions() {
  OptimizerOptions opt;
  opt.exactForestMaxN = 5;
  opt.heuristics.iterations = 200;
  opt.heuristics.restarts = 2;
  opt.orchestrator.order.exactCap = 120;
  opt.orchestrator.outorder.restarts = 4;
  opt.orchestrator.outorder.bisectSteps = 4;
  return opt;
}

TraceSpec smallSpec() {
  TraceSpec spec;
  spec.events = 48;
  spec.streams = 3;
  spec.hosts = 2;
  spec.hostKills = 1;
  spec.workload.n = 4;
  return spec;
}

/// A hand-built trace covering every event kind with known field values.
Trace handTrace() {
  Trace t;
  TraceEvent arrive;
  arrive.atUs = 0;
  arrive.kind = TraceEventKind::Arrival;
  arrive.stream = 0;
  arrive.app.addService(2.0, 0.5, "C1");
  arrive.app.addService(1.5, 0.25, "C2");
  arrive.app.addService(3.0, 1.5, "C3");
  arrive.app.addPrecedence(0, 2);
  arrive.model = CommModel::OutOrder;
  arrive.objective = Objective::Latency;
  t.events.push_back(arrive);

  TraceEvent drift;
  drift.atUs = 120;
  drift.kind = TraceEventKind::ParamDrift;
  drift.stream = 0;
  drift.service = 1;
  drift.costScale = 1.25;
  drift.selScale = 0.9;
  t.events.push_back(drift);

  TraceEvent driftAll = drift;
  driftAll.atUs = 120;  // burst: same timestamp as its predecessor
  driftAll.service = kNoNode;
  t.events.push_back(driftAll);

  TraceEvent add;
  add.atUs = 400;
  add.kind = TraceEventKind::OperatorAdd;
  add.stream = 0;
  add.cost = 0.75;
  add.selectivity = 0.6;
  add.predecessor = 2;
  t.events.push_back(add);

  TraceEvent kill;
  kill.atUs = 500;
  kill.kind = TraceEventKind::HostKill;
  kill.host = 1;
  t.events.push_back(kill);

  TraceEvent remove;
  remove.atUs = 650;
  remove.kind = TraceEventKind::OperatorRemove;
  remove.stream = 0;
  remove.service = 1;
  t.events.push_back(remove);

  TraceEvent revive = kill;
  revive.atUs = 900;
  revive.kind = TraceEventKind::HostRevive;
  t.events.push_back(revive);
  return t;
}

// ---- codec round trips ----------------------------------------------------

TEST(TraceCodec, HandTraceRoundTripsFieldExact) {
  const Trace t = handTrace();
  const Trace back = decodeTrace(encodeTrace(t));
  ASSERT_EQ(back.events.size(), t.events.size());
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    const TraceEvent& a = t.events[i];
    const TraceEvent& b = back.events[i];
    EXPECT_EQ(b.atUs, a.atUs) << "event " << i;
    EXPECT_EQ(b.kind, a.kind) << "event " << i;
    if (isSolveEvent(a.kind)) EXPECT_EQ(b.stream, a.stream) << "event " << i;
  }
  const TraceEvent& arrive = back.events[0];
  EXPECT_EQ(arrive.app.size(), 3u);
  EXPECT_EQ(arrive.app.service(1).cost, 1.5);
  EXPECT_EQ(arrive.app.service(1).selectivity, 0.25);
  EXPECT_EQ(arrive.app.service(2).name, "C3");
  ASSERT_EQ(arrive.app.precedences().size(), 1u);
  EXPECT_EQ(arrive.app.precedences()[0].from, 0u);
  EXPECT_EQ(arrive.app.precedences()[0].to, 2u);
  EXPECT_EQ(arrive.model, CommModel::OutOrder);
  EXPECT_EQ(arrive.objective, Objective::Latency);
  EXPECT_EQ(back.events[1].service, 1u);
  EXPECT_EQ(back.events[1].costScale, 1.25);
  EXPECT_EQ(back.events[1].selScale, 0.9);
  EXPECT_EQ(back.events[2].service, kNoNode);
  EXPECT_EQ(back.events[3].cost, 0.75);
  EXPECT_EQ(back.events[3].selectivity, 0.6);
  EXPECT_EQ(back.events[3].predecessor, 2u);
  EXPECT_EQ(back.events[4].host, 1u);
  EXPECT_EQ(back.events[5].service, 1u);
  EXPECT_EQ(back.events[6].host, 1u);
}

TEST(TraceCodec, ReEncodeIsByteIdentical) {
  for (const std::uint64_t seed : {7ull, 8ull, 99ull}) {
    const std::string blob = encodeTrace(generateTrace(smallSpec(), seed));
    EXPECT_EQ(encodeTrace(decodeTrace(blob)), blob) << "seed " << seed;
  }
}

TEST(TraceCodec, StreamRoundTripMatchesInMemory) {
  const Trace t = generateTrace(smallSpec(), 11);
  std::stringstream ss;
  writeTrace(ss, t);
  EXPECT_EQ(ss.str(), encodeTrace(t));
  const Trace back = readTrace(ss);
  EXPECT_EQ(encodeTrace(back), encodeTrace(t));
}

TEST(TraceCodec, EncodeRejectsDecreasingTimestamps) {
  Trace t = handTrace();
  t.events[1].atUs = 0;
  t.events[2].atUs = 0;
  EXPECT_NO_THROW((void)encodeTrace(t));  // equal timestamps are fine
  t.events[2].atUs = 1;
  t.events[3].atUs = 0;  // goes backwards
  EXPECT_THROW((void)encodeTrace(t), std::runtime_error);
}

// ---- hostile inputs -------------------------------------------------------

TEST(TraceCodec, TruncationAtEveryCutThrows) {
  const std::string blob = encodeTrace(handTrace());
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    EXPECT_THROW((void)decodeTrace(blob.substr(0, cut)), std::runtime_error)
        << "cut " << cut;
  }
}

TEST(TraceCodec, TamperedBlockHeadersThrow) {
  const std::string blob = encodeTrace(handTrace());

  std::string badMagic = blob;
  badMagic[0] = 'X';
  EXPECT_THROW((void)decodeTrace(badMagic), std::runtime_error);

  std::string badKind = blob;
  badKind[1] = 'Q';
  EXPECT_THROW((void)decodeTrace(badKind), std::runtime_error);

  std::string trailing = blob + "x";
  EXPECT_THROW((void)decodeTrace(trailing), std::runtime_error);
}

TEST(TraceCodec, FutureVersionIsRejected) {
  // Re-wrap the valid body under version 2: the reader must refuse it
  // rather than misparse a future format.
  const std::string blob = encodeTrace(handTrace());
  binio::Reader r = binio::openBlock(blob, kBinTraceKind, kBinTraceVersion,
                                     "test");
  std::string body(blob.substr(blob.size() - r.remaining()));
  const std::string v2 =
      binio::finishBlock(kBinTraceKind, kBinTraceVersion + 1, body);
  EXPECT_THROW((void)decodeTrace(v2), std::runtime_error);
  std::stringstream ss(v2);
  EXPECT_THROW((void)readTrace(ss), std::runtime_error);
}

TEST(TraceCodec, HostileEventCountFailsBeforeAllocating) {
  binio::Writer w;
  w.u64(1ull << 40);  // claims a trillion events in a 12-byte body
  std::string blob =
      binio::finishBlock(kBinTraceKind, kBinTraceVersion, w.take());
  EXPECT_THROW((void)decodeTrace(blob), std::runtime_error);
}

TEST(TraceCodec, UnknownEventKindThrows) {
  binio::Writer w;
  w.u64(1);  // one event
  w.u64(0);  // gap
  w.u8(200);  // no such kind
  const std::string blob =
      binio::finishBlock(kBinTraceKind, kBinTraceVersion, w.take());
  EXPECT_THROW((void)decodeTrace(blob), std::runtime_error);
}

TEST(TraceCodec, UnknownModelNameThrows) {
  binio::Writer w;
  w.u64(1);
  w.u64(0);
  w.u8(static_cast<std::uint8_t>(TraceEventKind::Arrival));
  w.u64(0);          // stream
  w.str("warpdrive");  // no such comm model
  const std::string blob =
      binio::finishBlock(kBinTraceKind, kBinTraceVersion, w.take());
  EXPECT_THROW((void)decodeTrace(blob), std::runtime_error);
}

// ---- applyTraceEvent discipline -------------------------------------------

TEST(TraceApply, RejectsInconsistentEvents) {
  StreamState st;
  TraceEvent drift;
  drift.kind = TraceEventKind::ParamDrift;
  EXPECT_THROW(applyTraceEvent(st, drift), std::runtime_error);  // no arrival

  TraceEvent arrive;
  arrive.kind = TraceEventKind::Arrival;
  EXPECT_THROW(applyTraceEvent(st, arrive), std::runtime_error);  // empty app
  arrive.app.addService(1.0, 0.5);
  arrive.app.addService(2.0, 0.75);
  applyTraceEvent(st, arrive);
  EXPECT_TRUE(st.live);

  drift.service = 7;  // out of range
  EXPECT_THROW(applyTraceEvent(st, drift), std::runtime_error);

  TraceEvent kill;
  kill.kind = TraceEventKind::HostKill;
  EXPECT_THROW(applyTraceEvent(st, kill), std::runtime_error);

  TraceEvent remove;
  remove.kind = TraceEventKind::OperatorRemove;
  remove.service = 0;
  applyTraceEvent(st, remove);
  EXPECT_EQ(st.app.size(), 1u);
  EXPECT_THROW(applyTraceEvent(st, remove), std::runtime_error);  // last one
}

TEST(TraceApply, RemoveReindexesSurvivingPrecedences) {
  StreamState st;
  TraceEvent arrive;
  arrive.kind = TraceEventKind::Arrival;
  arrive.app.addService(1.0, 0.5, "A");
  arrive.app.addService(2.0, 0.6, "B");
  arrive.app.addService(3.0, 0.7, "C");
  arrive.app.addPrecedence(0, 1);
  arrive.app.addPrecedence(1, 2);
  applyTraceEvent(st, arrive);

  TraceEvent remove;
  remove.kind = TraceEventKind::OperatorRemove;
  remove.service = 1;
  applyTraceEvent(st, remove);
  ASSERT_EQ(st.app.size(), 2u);
  EXPECT_EQ(st.app.service(0).name, "A");
  EXPECT_EQ(st.app.service(1).name, "C");
  // Both precedences touched the removed service, so none survive.
  EXPECT_TRUE(st.app.precedences().empty());
}

// ---- generator ------------------------------------------------------------

TEST(TraceGenerator, DeterministicPerSeedAndDistinctAcrossSeeds) {
  const TraceSpec spec = smallSpec();
  EXPECT_EQ(encodeTrace(generateTrace(spec, 7)),
            encodeTrace(generateTrace(spec, 7)));
  EXPECT_NE(encodeTrace(generateTrace(spec, 7)),
            encodeTrace(generateTrace(spec, 8)));
}

TEST(TraceGenerator, EmitsLegalEventsWithMonotoneTimestampsAndAKillPair) {
  TraceSpec spec;
  spec.events = 500;
  spec.streams = 5;
  spec.hosts = 2;
  spec.hostKills = 1;
  spec.workload.n = 5;
  const Trace t = generateTrace(spec, 4242);
  ASSERT_EQ(t.events.size(), spec.events);

  std::size_t kills = 0;
  std::size_t revives = 0;
  std::size_t arrivals = 0;
  std::uint64_t prev = 0;
  std::vector<StreamState> streams(spec.streams);
  for (const TraceEvent& e : t.events) {
    EXPECT_GE(e.atUs, prev);
    prev = e.atUs;
    switch (e.kind) {
      case TraceEventKind::HostKill:
        ++kills;
        EXPECT_LT(e.host, spec.hosts);
        break;
      case TraceEventKind::HostRevive:
        ++revives;
        break;
      default:
        ASSERT_LT(e.stream, spec.streams);
        if (e.kind == TraceEventKind::Arrival) ++arrivals;
        // Throws (failing the test) on any illegal mutation.
        applyTraceEvent(streams[e.stream], e);
        break;
    }
  }
  EXPECT_EQ(kills, 1u);
  EXPECT_EQ(revives, 1u);
  EXPECT_GE(arrivals, spec.streams);  // every stream arrives before mutating
  for (const StreamState& st : streams) {
    EXPECT_TRUE(st.live);
    EXPECT_GE(st.app.size(), 2u);
  }
}

// ---- scenario driver ------------------------------------------------------

TEST(ScenarioDriver, RequiresASubmitHook) {
  EXPECT_THROW(ScenarioDriver(ScenarioConfig{}, nullptr),
               std::invalid_argument);
}

// Sequential replay over a bare engine with a BoundBoard: every winner
// certifies against the cold serial reference, and drift re-solves warm
// up off the board's near table (deterministic at maxInFlight = 1 — each
// publish lands before the next consult).
TEST(ScenarioDriver, SequentialReplayCertifiesAndWarmStarts) {
  BoundBoard board{256};
  EngineConfig cfg;
  cfg.threads = 1;
  cfg.boundBoard = &board;
  PlanEngine engine{cfg};

  ScenarioConfig sc;
  sc.maxInFlight = 1;
  sc.options = fastOptions();
  sc.board = &board;
  ScenarioDriver driver{sc, [&](const PlanRequest& r) {
                          std::promise<OptimizedPlan> p;
                          p.set_value(engine.optimize(r));
                          return p.get_future();
                        }};

  TraceSpec spec = smallSpec();
  spec.hostKills = 0;
  const Trace trace = generateTrace(spec, 21);
  const ScenarioReport report = driver.replay(trace);

  EXPECT_EQ(report.events, trace.events.size());
  EXPECT_EQ(report.solves, trace.events.size());  // no host events
  EXPECT_EQ(report.mismatches, 0u);
  EXPECT_TRUE(report.allIdentical());
  EXPECT_GT(report.boardNearHits, 0u);
  EXPECT_GT(report.coldRefSolves, 0u);
  EXPECT_LE(report.coldRefSolves, report.solves);
  ASSERT_EQ(report.latenciesMs.size(), report.solves);
  EXPECT_GE(report.p95Ms, report.p50Ms);
  EXPECT_GE(report.p99Ms, report.p95Ms);
  EXPECT_GE(report.maxMs, report.p99Ms);
}

// The acceptance scenario in miniature: a trace with one mid-trace host
// kill (and its revive) replayed through a PlanRouter over two live
// PlanServiceHosts. The kill fails requests over to the surviving host;
// the revive re-admits the slot; every winner stays bit-identical to the
// cold serial solve of its mutated application.
TEST(ScenarioDriver, FleetReplaySurvivesAHostKillBitIdentically) {
  std::vector<std::unique_ptr<PlanServiceHost>> hosts;
  std::vector<std::uint16_t> ports;
  RouterConfig rc;
  for (std::size_t h = 0; h < 2; ++h) {
    ServiceHostConfig hc;
    hc.serverConfig.maxBatch = 4;
    hosts.push_back(std::make_unique<PlanServiceHost>(hc));
    ports.push_back(hosts.back()->port());
    rc.hosts.push_back(RouterHost{"127.0.0.1", ports.back()});
  }
  PlanRouter router{rc};

  ScenarioConfig sc;
  sc.maxInFlight = 3;
  sc.options = fastOptions();
  sc.router = &router;
  ScenarioDriver driver{
      sc, [&](const PlanRequest& r) { return router.submit(r); },
      [&](std::uint32_t h) { hosts[h].reset(); },
      [&](std::uint32_t h) {
        ServiceHostConfig hc;
        hc.serverConfig.maxBatch = 4;
        hc.port = ports[h];
        hosts[h] = std::make_unique<PlanServiceHost>(hc);
        (void)router.reconnect();
      }};

  const Trace trace = generateTrace(smallSpec(), 33);
  const ScenarioReport report = driver.replay(trace);

  EXPECT_EQ(report.hostKills, 1u);
  EXPECT_EQ(report.hostRevives, 1u);
  EXPECT_EQ(report.solves, trace.events.size() - 2);
  EXPECT_EQ(report.mismatches, 0u);
  EXPECT_TRUE(report.allIdentical());
  EXPECT_TRUE(router.hostUp(0));
  EXPECT_TRUE(router.hostUp(1));
  EXPECT_EQ(router.stats().failed, 0u);
}

}  // namespace
}  // namespace fsw
