// Executable reductions (E9): the forward direction of each NP-hardness
// proof is checked end-to-end — a solvable RN3DM instance's witness, pushed
// through the gadget builder and the library's solvers, meets the proof's
// threshold K. For the fork-join latency gadget (Prop 9) the converse is
// checked too, by exhausting all port orders.
#include <gtest/gtest.h>

#include <limits>

#include "src/core/cost_model.hpp"
#include "src/npc/reductions.hpp"
#include "src/npc/two_partition.hpp"
#include "src/oplist/validate.hpp"
#include "src/sched/inorder.hpp"
#include "src/sched/overlap.hpp"

namespace fsw {
namespace {

Rn3dmInstance solvable3() { return Rn3dmInstance{{2, 4, 6}}; }

TEST(Prop2, GadgetShape) {
  const auto red = prop2PeriodGadget(solvable3());
  EXPECT_EQ(red.app.size(), 2u * 3 + 5);
  EXPECT_DOUBLE_EQ(red.threshold, 9.0);  // 2n+3
  // Every service's one-port busy time is at most K, with equality on the
  // critical servers (C1, C2n+5, the even chain, C2n+2..C2n+4).
  const CostModel cm(red.app, red.graph);
  EXPECT_NEAR(cm.periodLowerBound(CommModel::OutOrder), red.threshold, 1e-9);
  EXPECT_NEAR(cm.at(0).cexec(CommModel::OutOrder), 9.0, 1e-9);
  EXPECT_NEAR(cm.at(red.app.size() - 1).cexec(CommModel::OutOrder), 9.0,
              1e-9);
}

TEST(Prop2, WitnessOrdersAchieveK) {
  const auto inst = solvable3();
  const auto w = solveRn3dm(inst);
  ASSERT_TRUE(w);
  const auto red = prop2PeriodGadget(inst);
  const auto orders = prop2WitnessOrders(red, *w);
  const auto r = inorderPeriodForOrders(red.app, red.graph, orders);
  ASSERT_TRUE(r);
  EXPECT_NEAR(r->value, red.threshold, 1e-6);
  EXPECT_TRUE(validate(red.app, red.graph, r->ol, CommModel::InOrder).valid);
  EXPECT_TRUE(validate(red.app, red.graph, r->ol, CommModel::OutOrder).valid);
}

TEST(Prop2, RandomSolvableInstancesAchieveK) {
  Prng rng(21);
  for (int trial = 0; trial < 5; ++trial) {
    const auto inst = randomSolvableRn3dm(4, rng);
    const auto w = solveRn3dm(inst);
    ASSERT_TRUE(w);
    const auto red = prop2PeriodGadget(inst);
    const auto r =
        inorderPeriodForOrders(red.app, red.graph, prop2WitnessOrders(red, *w));
    ASSERT_TRUE(r) << "trial " << trial;
    EXPECT_NEAR(r->value, red.threshold, 1e-6) << "trial " << trial;
  }
}

TEST(Prop5, WitnessPlanAchievesK) {
  const auto inst = solvable3();
  const auto w = solveRn3dm(inst);
  ASSERT_TRUE(w);
  const auto red = prop5MinPeriodGadget(inst);
  EXPECT_DOUBLE_EQ(red.threshold, 1.5);
  const auto g = prop5WitnessGraph(red, *w);
  const auto ol = overlapPeriodSchedule(red.app, g);
  EXPECT_NEAR(ol.period(), red.threshold, 1e-9);
  EXPECT_TRUE(validate(red.app, g, ol, CommModel::Overlap).valid);
}

TEST(Prop5, WrongMatchingExceedsK) {
  // Pairing the chains against the witness (shifted by one) must blow the
  // computation cost of some tail service past K.
  const auto inst = solvable3();
  const auto w = solveRn3dm(inst);
  ASSERT_TRUE(w);
  const auto red = prop5MinPeriodGadget(inst);
  Rn3dmWitness bad = *w;
  std::rotate(bad.lambda1.begin(), bad.lambda1.begin() + 1, bad.lambda1.end());
  if (checkWitness(inst, bad)) GTEST_SKIP() << "rotation is also a witness";
  const auto g = prop5WitnessGraph(red, bad);
  const auto ol = overlapPeriodSchedule(red.app, g);
  EXPECT_GT(ol.period(), red.threshold + 1e-9);
}

TEST(Prop6, WitnessPlanAchievesK) {
  const auto inst = solvable3();
  const auto w = solveRn3dm(inst);
  ASSERT_TRUE(w);
  const auto red = prop6MinPeriodGadget(inst);
  const auto g = prop6WitnessGraph(red, *w);
  // All costs must be positive for the gadget to be well-formed.
  for (NodeId i = 0; i < red.app.size(); ++i) {
    EXPECT_GT(red.app.service(i).cost, 0.0) << "service " << i;
  }
  const CostModel cm(red.app, g);
  EXPECT_LE(cm.periodLowerBound(CommModel::OutOrder), red.threshold + 1e-9);
  // The witness plan orchestrates to K for the one-port models.
  OrchestrationOptions opt;
  opt.exactCap = 50;  // C0 has 3 sends: 6 orders; rest single
  const auto r = inorderOrchestratePeriod(red.app, g, opt);
  EXPECT_NEAR(r.value, red.threshold, 1e-6);
}

TEST(Prop9, GadgetShapeAndBound) {
  const auto red = prop9LatencyGadget(solvable3());
  EXPECT_EQ(red.app.size(), 5u);
  EXPECT_DOUBLE_EQ(red.threshold, 3 + 4 + 9);  // n + 4 + n^2
  const CostModel cm(red.app, red.graph);
  EXPECT_LE(cm.latencyLowerBound(), red.threshold + 1e-9);
}

TEST(Prop9, WitnessOrdersAchieveK) {
  const auto inst = solvable3();
  const auto w = solveRn3dm(inst);
  ASSERT_TRUE(w);
  const auto red = prop9LatencyGadget(inst);
  const auto r = oneportLatencyForOrders(red.app, red.graph,
                                         prop9WitnessOrders(red, *w));
  ASSERT_TRUE(r);
  EXPECT_NEAR(r->value, red.threshold, 1e-6);
  EXPECT_TRUE(validate(red.app, red.graph, r->ol, CommModel::OutOrder).valid);
}

TEST(Prop9, FullEquivalenceBySearchingAllOrders) {
  // Both directions on n = 4: the optimal fork-join latency over all port
  // orders meets K exactly when RN3DM is solvable.
  const std::vector<Rn3dmInstance> instances = {
      Rn3dmInstance{{2, 4, 6, 8}},  // solvable
      Rn3dmInstance{{5, 5, 5, 5}},  // solvable
      Rn3dmInstance{{2, 2, 8, 8}},  // unsolvable
  };
  for (const auto& inst : instances) {
    const bool solvable = solveRn3dm(inst).has_value();
    const auto red = prop9LatencyGadget(inst);
    double best = std::numeric_limits<double>::infinity();
    forEachPortOrders(red.graph, 1000, [&](const PortOrders& po) {
      if (const auto r = oneportLatencyForOrders(red.app, red.graph, po)) {
        best = std::min(best, r->value);
      }
      return true;
    });
    if (solvable) {
      EXPECT_NEAR(best, red.threshold, 1e-6);
    } else {
      EXPECT_GT(best, red.threshold + 1e-9);
    }
  }
}

TEST(Prop13, WitnessAchievesAdjustedK) {
  const auto inst = solvable3();
  const auto w = solveRn3dm(inst);
  ASSERT_TRUE(w);
  const auto red = prop13MinLatencyGadget(inst);
  const auto g = prop13WitnessGraph(red);
  const auto r =
      oneportLatencyForOrders(red.app, g, prop13WitnessOrders(red, *w));
  ASSERT_TRUE(r);
  EXPECT_LE(r->value, red.threshold + 1e-9);
  EXPECT_TRUE(validate(red.app, g, r->ol, CommModel::OutOrder).valid);
}

TEST(Prop17, ObjectiveSeparatesPartitions) {
  // Equivalence on the proof's own chain objective: the best subset meets K
  // iff a perfect partition exists (brute force over subsets, n small).
  const std::vector<std::vector<std::int64_t>> sets = {
      {3, 1, 1, 2, 2, 1},  // partitionable (sum 10)
      {10, 1, 1},          // not partitionable
      {2, 2, 2, 3},        // odd total: not partitionable
  };
  for (const auto& x : sets) {
    const bool solvable = solveTwoPartition(x).has_value();
    const auto g = prop17ForestGadget(x);
    double best = std::numeric_limits<double>::infinity();
    const std::size_t n = x.size();
    for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
      std::vector<std::size_t> subset;
      for (std::size_t i = 0; i < n; ++i) {
        if (mask & (std::size_t{1} << i)) subset.push_back(i);
      }
      best = std::min(best, prop17ChainObjective(g, subset));
    }
    if (solvable) {
      EXPECT_LE(best, g.threshold + 1e-12) << "set size " << n;
    } else {
      EXPECT_GT(best, g.threshold) << "set size " << n;
    }
  }
}

}  // namespace
}  // namespace fsw
