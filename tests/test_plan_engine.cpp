// The batched serving core: cross-request dedup, the shared LRU score
// cache, incumbent-bound pruning, cache persistence, and the extended
// determinism contract — batch winners are bit-identical to per-request
// serial optimizePlan, even when one engine is hammered from many threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/io/serialize.hpp"
#include "src/opt/optimizer.hpp"
#include "src/sched/inorder.hpp"
#include "src/serve/plan_engine.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_instances.hpp"

namespace fsw {
namespace {

OptimizerOptions fastOptions() {
  OptimizerOptions opt;
  opt.exactForestMaxN = 5;
  opt.heuristics.iterations = 400;
  opt.heuristics.restarts = 2;
  opt.orchestrator.order.exactCap = 150;
  opt.orchestrator.outorder.restarts = 6;
  opt.orchestrator.outorder.bisectSteps = 5;
  return opt;
}

/// A mixed request set: distinct apps x models x objectives, with the
/// whole set appended twice when `duplicated` so every request has an
/// identical twin later in the batch.
std::vector<PlanRequest> mixedWorkload(bool duplicated) {
  std::vector<PlanRequest> reqs;
  Prng rng(515);
  for (const std::size_t n : {4u, 5u, 6u}) {
    WorkloadSpec spec;
    spec.n = n;
    spec.precedenceDensity = n == 6 ? 0.25 : 0.0;
    const auto app = randomApplication(spec, rng);
    for (const CommModel m : kAllModels) {
      for (const Objective obj : {Objective::Period, Objective::Latency}) {
        reqs.push_back({app, m, obj, fastOptions()});
      }
    }
  }
  if (duplicated) {
    const std::size_t unique = reqs.size();
    for (std::size_t i = 0; i < unique; ++i) reqs.push_back(reqs[i]);
  }
  return reqs;
}

/// A tiny application whose key differs per `seed`.
Application tinyKeyedApp(double seed) {
  Application app;
  app.addService(1.0 + seed, 0.5);
  app.addService(2.0, 0.7);
  app.addService(0.5, 1.1);
  return app;
}

PlanRequest tinyKeyedRequest(double seed) {
  return {tinyKeyedApp(seed), CommModel::Overlap, Objective::Period,
          fastOptions()};
}

TEST(PlanEngine, BatchWinnersAreBitIdenticalToSerialOptimizePlan) {
  const auto reqs = mixedWorkload(/*duplicated=*/false);
  PlanEngine engine;
  const auto batch = engine.optimizeBatch(reqs);
  ASSERT_EQ(batch.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    OptimizerOptions serial = reqs[i].options;
    serial.threads = 1;
    const auto r =
        optimizePlan(reqs[i].app, reqs[i].model, reqs[i].objective, serial);
    EXPECT_EQ(batch[i].value, r.value) << "request " << i;
    EXPECT_EQ(batch[i].strategy, r.strategy) << "request " << i;
    EXPECT_EQ(batch[i].surrogate, r.surrogate) << "request " << i;
    EXPECT_EQ(graphSignature(batch[i].plan.graph),
              graphSignature(r.plan.graph))
        << "request " << i;
  }
}

TEST(PlanEngine, DuplicateBatchMembersReportCrossRequestHits) {
  const auto reqs = mixedWorkload(/*duplicated=*/true);
  const std::size_t unique = reqs.size() / 2;
  PlanEngine engine;
  const auto batch = engine.optimizeBatch(reqs);

  std::size_t crossHits = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    crossHits += batch[i].stats.crossRequestHits;
    // Every duplicate must be byte-for-byte the first occurrence's plan.
    if (i >= unique) {
      EXPECT_EQ(batch[i].value, batch[i - unique].value);
      EXPECT_EQ(batch[i].strategy, batch[i - unique].strategy);
      EXPECT_EQ(graphSignature(batch[i].plan.graph),
                graphSignature(batch[i - unique].plan.graph));
      EXPECT_EQ(batch[i].stats.crossRequestHits, 1u);
    } else {
      EXPECT_EQ(batch[i].stats.crossRequestHits, 0u);
    }
  }
  EXPECT_EQ(crossHits, unique);
}

TEST(PlanEngine, RepeatedTrafficHitsTheSharedScoreCache) {
  Prng rng(88);
  WorkloadSpec spec;
  spec.n = 6;
  const auto app = randomApplication(spec, rng);
  // Full-result caching off: this test exercises the score-cache path,
  // which a wholesale result-cache hit would short-circuit.
  PlanEngine engine{EngineConfig{.cacheFullResults = false}};
  const PlanRequest req{app, CommModel::Overlap, Objective::Period,
                        fastOptions()};

  const auto first = engine.optimize(req);
  EXPECT_EQ(first.stats.sharedHits, 0u);  // cold cache
  EXPECT_GT(engine.cacheSize(), 0u);

  const auto second = engine.optimize(req);
  EXPECT_GT(second.stats.sharedHits, 0u);  // same signatures, warm cache
  EXPECT_EQ(second.stats.sharedHits, second.stats.unique);
  EXPECT_GE(second.stats.scoreCacheHits, second.stats.sharedHits);
  // Warm-cache winners must not drift: the cache memoizes pure functions.
  EXPECT_EQ(first.value, second.value);
  EXPECT_EQ(first.strategy, second.strategy);
}

TEST(PlanEngine, ConcurrentHammeringMatchesSerialResults) {
  const auto reqs = mixedWorkload(/*duplicated=*/false);

  // Serial reference, computed on a fresh serial engine.
  std::vector<OptimizedPlan> expected;
  PlanEngine serialEngine{EngineConfig{.threads = 1}};
  for (const auto& r : reqs) {
    OptimizerOptions serial = r.options;
    serial.threads = 1;
    expected.push_back(serialEngine.optimize(r.app, r.model, r.objective,
                                             serial));
  }

  // Hammer one engine from N threads with interleaved mixed traffic.
  PlanEngine engine;
  const std::size_t kThreads = 4;
  std::vector<std::vector<OptimizedPlan>> got(kThreads);
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        auto& mine = got[t];
        for (std::size_t i = 0; i < reqs.size(); ++i) {
          // Each thread walks the request set from a different offset.
          const auto& r = reqs[(i + t * 5) % reqs.size()];
          mine.push_back(engine.optimize(r));
        }
      } catch (...) {
        failed = true;
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_FALSE(failed);

  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const std::size_t j = (i + t * 5) % reqs.size();
      EXPECT_EQ(got[t][i].value, expected[j].value)
          << "thread " << t << " request " << j;
      EXPECT_EQ(got[t][i].strategy, expected[j].strategy)
          << "thread " << t << " request " << j;
      EXPECT_EQ(graphSignature(got[t][i].plan.graph),
                graphSignature(expected[j].plan.graph))
          << "thread " << t << " request " << j;
    }
  }
}

TEST(PlanEngine, CacheSaveLoadRoundTripWarmsAFreshEngine) {
  const auto reqs = mixedWorkload(/*duplicated=*/false);
  PlanEngine engine;
  const auto batch = engine.optimizeBatch(reqs);
  ASSERT_GT(engine.cacheSize(), 0u);

  std::stringstream dump;
  engine.saveCache(dump);

  PlanEngine fresh;
  fresh.loadCache(dump);
  EXPECT_EQ(fresh.cacheSize(), engine.cacheSize());

  // The warmed engine serves every score from the loaded dump and returns
  // identical winners (cross-run memoization).
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto r = fresh.optimize(reqs[i]);
    EXPECT_EQ(r.stats.sharedHits, r.stats.unique) << "request " << i;
    EXPECT_EQ(r.value, batch[i].value) << "request " << i;
    EXPECT_EQ(r.strategy, batch[i].strategy) << "request " << i;
  }
}

/// Sums the per-request work counters that must be batch-invariant.
EngineStats sumStats(const std::vector<OptimizedPlan>& batch) {
  EngineStats sum;
  for (const auto& r : batch) {
    sum.sourcesRun += r.stats.sourcesRun;
    sum.generated += r.stats.generated;
    sum.unique += r.stats.unique;
    sum.duplicates += r.stats.duplicates;
    sum.scoreCacheHits += r.stats.scoreCacheHits;
    sum.orchestrated += r.stats.orchestrated;
    sum.sharedHits += r.stats.sharedHits;
    sum.evictions += r.stats.evictions;
    sum.boundAborts += r.stats.boundAborts;
    sum.crossRequestHits += r.stats.crossRequestHits;
    sum.resultCacheHits += r.stats.resultCacheHits;
  }
  return sum;
}

TEST(PlanEngine, BatchStatsCountEachRepresentativeSolveExactlyOnce) {
  // Two fresh serial engines (serial: per-request stats are exactly
  // deterministic): a batch where every request has an identical twin must
  // report, summed, exactly the work of the duplicate-free batch — the
  // crossRequestHits copies carry empty work stats.
  const auto dup = mixedWorkload(/*duplicated=*/true);
  const auto uni = mixedWorkload(/*duplicated=*/false);
  PlanEngine engineDup{EngineConfig{.threads = 1}};
  PlanEngine engineUni{EngineConfig{.threads = 1}};
  const auto batchDup = engineDup.optimizeBatch(dup);
  const auto batchUni = engineUni.optimizeBatch(uni);

  for (std::size_t i = uni.size(); i < dup.size(); ++i) {
    const EngineStats& s = batchDup[i].stats;
    EXPECT_EQ(s.crossRequestHits, 1u) << "duplicate " << i;
    EXPECT_EQ(s.sourcesRun + s.generated + s.unique + s.duplicates +
                  s.scoreCacheHits + s.orchestrated + s.sharedHits +
                  s.evictions + s.boundAborts + s.resultCacheHits,
              0u)
        << "duplicate " << i << " carries work stats";
  }

  const EngineStats sumDup = sumStats(batchDup);
  const EngineStats sumUni = sumStats(batchUni);
  EXPECT_EQ(sumDup.sourcesRun, sumUni.sourcesRun);
  EXPECT_EQ(sumDup.generated, sumUni.generated);
  EXPECT_EQ(sumDup.unique, sumUni.unique);
  EXPECT_EQ(sumDup.duplicates, sumUni.duplicates);
  EXPECT_EQ(sumDup.scoreCacheHits, sumUni.scoreCacheHits);
  EXPECT_EQ(sumDup.orchestrated, sumUni.orchestrated);
  EXPECT_EQ(sumDup.sharedHits, sumUni.sharedHits);
  EXPECT_EQ(sumDup.evictions, sumUni.evictions);
  EXPECT_EQ(sumDup.boundAborts, sumUni.boundAborts);
  EXPECT_EQ(sumDup.resultCacheHits, sumUni.resultCacheHits);
  // The only difference: one cross-request marker per duplicate member.
  EXPECT_EQ(sumDup.crossRequestHits, dup.size() - uni.size());
  EXPECT_EQ(sumUni.crossRequestHits, 0u);
}

TEST(PlanEngine, FullResultCacheServesRepeatsWithZeroNewOrchestrations) {
  const auto reqs = mixedWorkload(/*duplicated=*/false);
  PlanEngine engine;
  const auto first = engine.optimizeBatch(reqs);
  EXPECT_EQ(engine.resultCacheSize(), reqs.size());

  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto r = engine.optimize(reqs[i]);
    EXPECT_EQ(r.stats.resultCacheHits, 1u) << "request " << i;
    EXPECT_EQ(r.stats.orchestrated, 0u) << "request " << i;
    EXPECT_EQ(r.stats.generated, 0u) << "request " << i;
    EXPECT_EQ(r.value, first[i].value) << "request " << i;
    EXPECT_EQ(r.strategy, first[i].strategy) << "request " << i;
    EXPECT_EQ(graphSignature(r.plan.graph),
              graphSignature(first[i].plan.graph))
        << "request " << i;
  }
}

TEST(PlanEngine, ResultDumpRoundTripWarmStartsWithZeroOrchestrations) {
  const auto reqs = mixedWorkload(/*duplicated=*/false);
  PlanEngine engine;
  const auto batch = engine.optimizeBatch(reqs);
  ASSERT_GT(engine.resultCacheSize(), 0u);

  std::stringstream dump;
  engine.saveResults(dump);

  PlanEngine fresh;
  fresh.loadResults(dump);
  EXPECT_EQ(fresh.resultCacheSize(), engine.resultCacheSize());

  // The warm-started engine serves every repeated request wholesale: no
  // orchestrations, no candidate generation, not even surrogate scoring.
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto r = fresh.optimize(reqs[i]);
    EXPECT_EQ(r.stats.resultCacheHits, 1u) << "request " << i;
    EXPECT_EQ(r.stats.orchestrated, 0u) << "request " << i;
    EXPECT_EQ(r.stats.generated, 0u) << "request " << i;
    EXPECT_EQ(r.stats.sharedHits, 0u) << "request " << i;
    EXPECT_EQ(r.value, batch[i].value) << "request " << i;
    EXPECT_EQ(r.strategy, batch[i].strategy) << "request " << i;
    EXPECT_EQ(graphSignature(r.plan.graph),
              graphSignature(batch[i].plan.graph))
        << "request " << i;
  }
}

TEST(PlanEngine, ResultDumpBudgetKeepsTheMostRecentWinners) {
  const auto reqs = mixedWorkload(/*duplicated=*/false);
  PlanEngine engine{EngineConfig{.threads = 1}};
  (void)engine.optimizeBatch(reqs);
  ASSERT_EQ(engine.resultCacheSize(), reqs.size());

  std::stringstream dump;
  const std::size_t budget = 5;
  engine.saveResults(dump, budget);

  PlanEngine fresh;
  fresh.loadResults(dump);
  EXPECT_EQ(fresh.resultCacheSize(), budget);
  // The batch inserted winners in request order, so the budget keeps the
  // tail: the last request hits, the first must be re-solved.
  EXPECT_EQ(fresh.optimize(reqs.back()).stats.resultCacheHits, 1u);
  EXPECT_EQ(fresh.optimize(reqs.front()).stats.resultCacheHits, 0u);
}

TEST(Serialization, CacheHeadersRejectWrongMagicAndVersion) {
  PlanEngine engine;
  (void)engine.optimize(tinyKeyedApp(1.0), CommModel::Overlap,
                        Objective::Period, fastOptions());

  // Score cache: the dump opens with the binary block header (magic byte,
  // kind, current version) — the v3 artifact format.
  std::stringstream score;
  engine.saveCache(score);
  const std::string scoreDump = score.str();
  ASSERT_GE(scoreDump.size(), 3u);
  EXPECT_EQ(static_cast<unsigned char>(scoreDump[0]), binio::kMagicByte);
  EXPECT_EQ(scoreDump[1], kBinScoreCacheKind);
  EXPECT_EQ(static_cast<unsigned char>(scoreDump[2]), kBinScoreCacheVersion);

  PlanEngine sink;
  // A tampered binary version is rejected, not misparsed.
  std::string tamperedScore = scoreDump;
  tamperedScore[2] = 99;
  std::stringstream badBinScore(tamperedScore);
  EXPECT_THROW(sink.loadCache(badBinScore), std::runtime_error);
  // The frozen text formats keep their rejection contract on load.
  std::stringstream wrongVersion("fswscorecache 999\ncandidatecache 0\n");
  EXPECT_THROW(sink.loadCache(wrongVersion), std::runtime_error);
  // A headerless PR 2 dump fails the magic check instead of misparsing.
  std::stringstream legacy("candidatecache 1\nentry k 1.5\n");
  EXPECT_THROW(sink.loadCache(legacy), std::runtime_error);

  // Result cache: same contract.
  std::stringstream results;
  engine.saveResults(results);
  const std::string resultDump = results.str();
  ASSERT_GE(resultDump.size(), 3u);
  EXPECT_EQ(static_cast<unsigned char>(resultDump[0]), binio::kMagicByte);
  EXPECT_EQ(resultDump[1], kBinResultCacheKind);
  EXPECT_EQ(static_cast<unsigned char>(resultDump[2]), kBinResultCacheVersion);

  std::string tamperedResults = resultDump;
  tamperedResults[2] = 99;
  std::stringstream badBinResults(tamperedResults);
  EXPECT_THROW(sink.loadResults(badBinResults), std::runtime_error);
  std::stringstream badResults("fswresultcache 999\nresults 0\n");
  EXPECT_THROW(sink.loadResults(badResults), std::runtime_error);
  std::stringstream badMagic("bogus 1\nresults 0\n");
  EXPECT_THROW(sink.loadResults(badMagic), std::runtime_error);
}

namespace portablekeys {

/// A user-defined source, "registered in two processes" by building two
/// independent registry objects.
class EchoSource final : public CandidateSource {
 public:
  [[nodiscard]] std::string_view name() const override { return "echo"; }
  [[nodiscard]] std::vector<ExecutionGraph> generate(
      const CandidateContext& ctx) const override {
    std::vector<ExecutionGraph> out;
    out.push_back(ExecutionGraph(ctx.app.size()));
    return out;
  }
};

/// A second source, to extend a portfolio's source list.
class EchoSource2 final : public CandidateSource {
 public:
  [[nodiscard]] std::string_view name() const override { return "echo2"; }
  [[nodiscard]] std::vector<ExecutionGraph> generate(
      const CandidateContext& ctx) const override {
    std::vector<ExecutionGraph> out;
    out.push_back(ExecutionGraph(ctx.app.size()));
    return out;
  }
};

}  // namespace portablekeys

TEST(PlanEngine, RequestKeyIsPortableAcrossNamedPortfolios) {
  const auto makePortfolio = [] {
    // Simulates one process's registration sequence.
    CandidateRegistry reg = CandidateRegistry::makeBuiltin();
    reg.setName("prod-portfolio");
    reg.add(std::make_unique<portablekeys::EchoSource>());
    return reg;
  };
  const CandidateRegistry procA = makePortfolio();
  const CandidateRegistry procB = makePortfolio();
  ASSERT_NE(&procA, &procB);

  PlanRequest reqA = tinyKeyedRequest(1.0);
  reqA.options.registry = &procA;
  PlanRequest reqB = tinyKeyedRequest(1.0);
  reqB.options.registry = &procB;
  // Identical across "processes": the key covers the portfolio's name and
  // source list, never its address.
  EXPECT_EQ(PlanEngine::requestKey(reqA), PlanEngine::requestKey(reqB));

  // A different name, or a different source list, is a different key.
  CandidateRegistry renamed = makePortfolio();
  renamed.setName("canary-portfolio");
  PlanRequest reqRenamed = tinyKeyedRequest(1.0);
  reqRenamed.options.registry = &renamed;
  EXPECT_NE(PlanEngine::requestKey(reqA), PlanEngine::requestKey(reqRenamed));

  CandidateRegistry extended = makePortfolio();
  extended.add(std::make_unique<portablekeys::EchoSource2>());
  PlanRequest reqExtended = tinyKeyedRequest(1.0);
  reqExtended.options.registry = &extended;
  EXPECT_NE(PlanEngine::requestKey(reqA),
            PlanEngine::requestKey(reqExtended));

  // Explicitly passing the built-in (or an indistinguishable copy of it)
  // canonicalizes to the default-registry key.
  PlanRequest reqDefault = tinyKeyedRequest(1.0);
  PlanRequest reqBuiltin = tinyKeyedRequest(1.0);
  reqBuiltin.options.registry = &CandidateRegistry::builtin();
  const CandidateRegistry builtinCopy = CandidateRegistry::makeBuiltin();
  PlanRequest reqCopy = tinyKeyedRequest(1.0);
  reqCopy.options.registry = &builtinCopy;
  EXPECT_EQ(PlanEngine::requestKey(reqDefault),
            PlanEngine::requestKey(reqBuiltin));
  EXPECT_EQ(PlanEngine::requestKey(reqDefault),
            PlanEngine::requestKey(reqCopy));

  // Unnamed registries stay process-local: pointer identity keeps two
  // anonymous portfolios distinct even with identical source lists, so
  // naming is the explicit opt-in to a shared cross-process key space.
  EXPECT_TRUE(CandidateRegistry().name().empty());
  CandidateRegistry anonA;
  anonA.add(std::make_unique<portablekeys::EchoSource>());
  CandidateRegistry anonB;
  anonB.add(std::make_unique<portablekeys::EchoSource>());
  PlanRequest reqAnonA = tinyKeyedRequest(1.0);
  reqAnonA.options.registry = &anonA;
  PlanRequest reqAnonB = tinyKeyedRequest(1.0);
  reqAnonB.options.registry = &anonB;
  EXPECT_NE(PlanEngine::requestKey(reqAnonA),
            PlanEngine::requestKey(reqAnonB));
  EXPECT_EQ(PlanEngine::requestKey(reqAnonA),
            PlanEngine::requestKey(reqAnonA));

  // The fingerprint itself is the documented name[sources] shape.
  EXPECT_EQ(portfolioFingerprint(CandidateRegistry::builtin()),
            "builtin[chain-greedy,no-comm-baseline,greedy-forest,"
            "hill-climb,anneal,exact-forest]");

  // Portfolio and source names are file-format tokens and fingerprint
  // fields: no whitespace, no delimiters ("a,b" must not fingerprint like
  // the two sources "a" and "b").
  CandidateRegistry bad;
  EXPECT_THROW(bad.setName("has space"), std::invalid_argument);
  EXPECT_THROW(bad.setName(""), std::invalid_argument);
  EXPECT_THROW(bad.setName("a,b"), std::invalid_argument);
  EXPECT_THROW(bad.setName("a[b]"), std::invalid_argument);
}

TEST(PlanEngine, UnnamedPortfoliosBypassTheFullResultCache) {
  // An unnamed registry's key is its pointer, which is only stable for
  // the duration of the call — caching the result could serve a dead
  // registry's winner to whatever next reuses the address. Such requests
  // must re-solve; naming the portfolio opts back in.
  PlanEngine engine{EngineConfig{.threads = 1}};
  CandidateRegistry anon;
  anon.add(std::make_unique<portablekeys::EchoSource>());
  PlanRequest req = tinyKeyedRequest(1.0);
  req.options.registry = &anon;

  const auto first = engine.optimize(req);
  EXPECT_EQ(engine.resultCacheSize(), 0u);
  const auto second = engine.optimize(req);
  EXPECT_EQ(second.stats.resultCacheHits, 0u);
  EXPECT_GT(second.stats.orchestrated, 0u);
  EXPECT_EQ(second.value, first.value);

  anon.setName("now-named");
  const auto third = engine.optimize(req);
  EXPECT_EQ(third.stats.resultCacheHits, 0u);  // first solve under the name
  EXPECT_EQ(engine.resultCacheSize(), 1u);
  const auto fourth = engine.optimize(req);
  EXPECT_EQ(fourth.stats.resultCacheHits, 1u);
  EXPECT_EQ(fourth.value, first.value);
}

TEST(PlanEngine, EngineLevelRegistryOverrideBypassesTheFullResultCache) {
  // An EngineConfig::registry override changes the effective portfolio of
  // default requests, but requestKey only covers per-request state — so
  // caching under that key would misattribute the winner to the built-in
  // portfolio. Such requests must re-solve; a request-level *named*
  // portfolio on the same engine caches normally.
  CandidateRegistry portfolio("override-portfolio");
  portfolio.add(std::make_unique<portablekeys::EchoSource>());
  PlanEngine engine{EngineConfig{.threads = 1, .registry = &portfolio}};

  const PlanRequest req = tinyKeyedRequest(1.0);  // default-registry key
  const auto first = engine.optimize(req);
  EXPECT_EQ(first.stats.sourcesRun, 1u);  // the override portfolio solved it
  EXPECT_EQ(engine.resultCacheSize(), 0u);
  const auto second = engine.optimize(req);
  EXPECT_EQ(second.stats.resultCacheHits, 0u);
  EXPECT_EQ(second.value, first.value);

  PlanRequest explicitReq = tinyKeyedRequest(2.0);
  explicitReq.options.registry = &portfolio;
  (void)engine.optimize(explicitReq);
  EXPECT_EQ(engine.resultCacheSize(), 1u);
  EXPECT_EQ(engine.optimize(explicitReq).stats.resultCacheHits, 1u);
}

TEST(PlanEngine, EngineOverrideRequestsDoNotDedupWithExplicitBuiltin) {
  // Same app, same static requestKey shape — but one request is solved by
  // the engine-level override portfolio and the other explicitly asks for
  // the built-in. The engine-aware dedup key must keep them apart, or the
  // builtin request would be served the override portfolio's winner.
  CandidateRegistry portfolio("override-portfolio");
  portfolio.add(std::make_unique<portablekeys::EchoSource>());
  PlanEngine engine{EngineConfig{.threads = 1, .registry = &portfolio}};

  PlanRequest viaOverride = tinyKeyedRequest(3.0);
  PlanRequest viaBuiltin = tinyKeyedRequest(3.0);
  viaBuiltin.options.registry = &CandidateRegistry::builtin();
  EXPECT_NE(engine.dedupKey(viaOverride), engine.dedupKey(viaBuiltin));

  const std::vector<PlanRequest> batch = {viaOverride, viaBuiltin};
  const auto out = engine.optimizeBatch(batch);
  EXPECT_EQ(out[1].stats.crossRequestHits, 0u);  // two distinct solves
  EXPECT_EQ(out[0].stats.sourcesRun, 1u);  // the echo-only override
  EXPECT_EQ(out[1].stats.sourcesRun, CandidateRegistry::builtin().size());
}

TEST(PlanEngine, RequestKeySeparatesEveryDimension) {
  Prng rng(7);
  WorkloadSpec spec;
  spec.n = 5;
  const auto app = randomApplication(spec, rng);
  const auto app2 = randomApplication(spec, rng);
  const PlanRequest base{app, CommModel::Overlap, Objective::Period,
                         fastOptions()};
  PlanRequest other = base;
  EXPECT_EQ(PlanEngine::requestKey(base), PlanEngine::requestKey(other));
  other.model = CommModel::InOrder;
  EXPECT_NE(PlanEngine::requestKey(base), PlanEngine::requestKey(other));
  other = base;
  other.objective = Objective::Latency;
  EXPECT_NE(PlanEngine::requestKey(base), PlanEngine::requestKey(other));
  other = base;
  other.app = app2;
  EXPECT_NE(PlanEngine::requestKey(base), PlanEngine::requestKey(other));
  other = base;
  other.options.heuristics.seed += 1;
  EXPECT_NE(PlanEngine::requestKey(base), PlanEngine::requestKey(other));
}

TEST(CandidateCacheLru, EvictionIsBoundedAndDeterministic) {
  CandidateCache cache(2);
  EXPECT_EQ(cache.insert("k1", 1.0), 0u);
  EXPECT_EQ(cache.insert("k2", 2.0), 0u);
  EXPECT_EQ(cache.lookup("k1"), 1.0);  // touch: k2 is now least recent
  EXPECT_EQ(cache.insert("k3", 3.0), 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.lookup("k2"), std::nullopt);  // the LRU entry was evicted
  EXPECT_EQ(cache.lookup("k1"), 1.0);
  EXPECT_EQ(cache.lookup("k3"), 3.0);
  EXPECT_EQ(cache.stats().evictions, 1u);

  const auto entries = cache.snapshot();  // LRU first
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, "k1");
  EXPECT_EQ(entries[1].first, "k3");
}

TEST(CandidateCacheLru, SerializeRoundTripPreservesEntriesAndOrder) {
  CandidateCache cache;
  (void)cache.insert("a#overlap#period#n2|0>1", 1.25);
  (void)cache.insert("a#overlap#period#n2", 2.5);
  std::stringstream ss;
  writeCandidateCache(ss, cache);
  CandidateCache loaded;
  readCandidateCache(ss, loaded);
  EXPECT_EQ(loaded.snapshot(), cache.snapshot());

  std::stringstream bad("candidatecache 1\nbogus k 1\n");
  CandidateCache sink;
  EXPECT_THROW(readCandidateCache(bad, sink), std::runtime_error);
}

TEST(BoundedSolves, IncumbentAbortsDominatedOrderSolves) {
  Prng rng(31);
  WorkloadSpec spec;
  spec.n = 5;
  const auto app = randomApplication(spec, rng);
  const auto g = randomLayeredDag(app, 2, 2, rng);
  const auto po = PortOrders::canonical(g);

  const auto unbounded = inorderPeriodForOrders(app, g, po);
  ASSERT_TRUE(unbounded.has_value());

  std::atomic<std::size_t> aborts{0};
  // A bound below the achievable period makes the solve abort and count.
  const auto pruned = inorderPeriodForOrders(app, g, po,
                                             unbounded->value * 0.5, &aborts);
  EXPECT_FALSE(pruned.has_value());
  EXPECT_EQ(aborts.load(), 1u);

  // A bound at the achieved value keeps the solve and its exact result.
  const auto kept =
      inorderPeriodForOrders(app, g, po, unbounded->value, &aborts);
  ASSERT_TRUE(kept.has_value());
  EXPECT_EQ(kept->value, unbounded->value);
  EXPECT_EQ(aborts.load(), 1u);
}

TEST(BoundedSolves, BoundedOrderSearchKeepsTheUnboundedWinner) {
  Prng rng(32);
  WorkloadSpec spec;
  spec.n = 5;
  const auto app = randomApplication(spec, rng);
  const auto g = randomLayeredDag(app, 2, 2, rng);

  OrchestrationOptions opt;
  opt.exactCap = 150;
  const auto free = inorderOrchestratePeriod(app, g, opt);

  std::atomic<std::size_t> aborts{0};
  OrchestrationOptions bounded = opt;
  bounded.upperBound = free.value;
  bounded.boundAborts = &aborts;
  const auto r = inorderOrchestratePeriod(app, g, bounded);
  // The optimum meets the bound exactly, so it survives pruning bit-for-bit
  // while strictly dominated orders abort.
  EXPECT_EQ(r.value, free.value);
  EXPECT_EQ(r.orders, free.orders);
}

TEST(BoundedSolves, EngineThreadsIncumbentIntoLaterOrchestrations) {
  // An INORDER period request on a mid-size app orchestrates top-3
  // candidates; ranks 1..2 run under rank 0's achieved value, so some
  // difference-constraint solves must abort — and the winner must match
  // the serial reference exactly (the adapter uses the same engine path).
  Prng rng(33);
  WorkloadSpec spec;
  spec.n = 7;
  const auto app = randomApplication(spec, rng);
  OptimizerOptions opt = fastOptions();
  opt.threads = 1;
  PlanEngine engine{EngineConfig{.threads = 1}};
  const auto r = engine.optimize(app, CommModel::InOrder, Objective::Period,
                                 opt);
  EXPECT_GT(r.stats.orchestrated, 1u);
  const auto ref = optimizePlan(app, CommModel::InOrder, Objective::Period,
                                opt);
  EXPECT_EQ(r.value, ref.value);
  EXPECT_EQ(r.strategy, ref.strategy);
  EXPECT_TRUE(std::isfinite(r.value));
}

}  // namespace
}  // namespace fsw
