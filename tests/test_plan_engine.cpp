// The batched serving core: cross-request dedup, the shared LRU score
// cache, incumbent-bound pruning, cache persistence, and the extended
// determinism contract — batch winners are bit-identical to per-request
// serial optimizePlan, even when one engine is hammered from many threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "src/io/serialize.hpp"
#include "src/opt/optimizer.hpp"
#include "src/sched/inorder.hpp"
#include "src/serve/plan_engine.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_instances.hpp"

namespace fsw {
namespace {

OptimizerOptions fastOptions() {
  OptimizerOptions opt;
  opt.exactForestMaxN = 5;
  opt.heuristics.iterations = 400;
  opt.heuristics.restarts = 2;
  opt.orchestrator.order.exactCap = 150;
  opt.orchestrator.outorder.restarts = 6;
  opt.orchestrator.outorder.bisectSteps = 5;
  return opt;
}

/// A mixed request set: distinct apps x models x objectives, with the
/// whole set appended twice when `duplicated` so every request has an
/// identical twin later in the batch.
std::vector<PlanRequest> mixedWorkload(bool duplicated) {
  std::vector<PlanRequest> reqs;
  Prng rng(515);
  for (const std::size_t n : {4u, 5u, 6u}) {
    WorkloadSpec spec;
    spec.n = n;
    spec.precedenceDensity = n == 6 ? 0.25 : 0.0;
    const auto app = randomApplication(spec, rng);
    for (const CommModel m : kAllModels) {
      for (const Objective obj : {Objective::Period, Objective::Latency}) {
        reqs.push_back({app, m, obj, fastOptions()});
      }
    }
  }
  if (duplicated) {
    const std::size_t unique = reqs.size();
    for (std::size_t i = 0; i < unique; ++i) reqs.push_back(reqs[i]);
  }
  return reqs;
}

TEST(PlanEngine, BatchWinnersAreBitIdenticalToSerialOptimizePlan) {
  const auto reqs = mixedWorkload(/*duplicated=*/false);
  PlanEngine engine;
  const auto batch = engine.optimizeBatch(reqs);
  ASSERT_EQ(batch.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    OptimizerOptions serial = reqs[i].options;
    serial.threads = 1;
    const auto r =
        optimizePlan(reqs[i].app, reqs[i].model, reqs[i].objective, serial);
    EXPECT_EQ(batch[i].value, r.value) << "request " << i;
    EXPECT_EQ(batch[i].strategy, r.strategy) << "request " << i;
    EXPECT_EQ(batch[i].surrogate, r.surrogate) << "request " << i;
    EXPECT_EQ(graphSignature(batch[i].plan.graph),
              graphSignature(r.plan.graph))
        << "request " << i;
  }
}

TEST(PlanEngine, DuplicateBatchMembersReportCrossRequestHits) {
  const auto reqs = mixedWorkload(/*duplicated=*/true);
  const std::size_t unique = reqs.size() / 2;
  PlanEngine engine;
  const auto batch = engine.optimizeBatch(reqs);

  std::size_t crossHits = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    crossHits += batch[i].stats.crossRequestHits;
    // Every duplicate must be byte-for-byte the first occurrence's plan.
    if (i >= unique) {
      EXPECT_EQ(batch[i].value, batch[i - unique].value);
      EXPECT_EQ(batch[i].strategy, batch[i - unique].strategy);
      EXPECT_EQ(graphSignature(batch[i].plan.graph),
                graphSignature(batch[i - unique].plan.graph));
      EXPECT_EQ(batch[i].stats.crossRequestHits, 1u);
    } else {
      EXPECT_EQ(batch[i].stats.crossRequestHits, 0u);
    }
  }
  EXPECT_EQ(crossHits, unique);
}

TEST(PlanEngine, RepeatedTrafficHitsTheSharedScoreCache) {
  Prng rng(88);
  WorkloadSpec spec;
  spec.n = 6;
  const auto app = randomApplication(spec, rng);
  PlanEngine engine;
  const PlanRequest req{app, CommModel::Overlap, Objective::Period,
                        fastOptions()};

  const auto first = engine.optimize(req);
  EXPECT_EQ(first.stats.sharedHits, 0u);  // cold cache
  EXPECT_GT(engine.cacheSize(), 0u);

  const auto second = engine.optimize(req);
  EXPECT_GT(second.stats.sharedHits, 0u);  // same signatures, warm cache
  EXPECT_EQ(second.stats.sharedHits, second.stats.unique);
  EXPECT_GE(second.stats.scoreCacheHits, second.stats.sharedHits);
  // Warm-cache winners must not drift: the cache memoizes pure functions.
  EXPECT_EQ(first.value, second.value);
  EXPECT_EQ(first.strategy, second.strategy);
}

TEST(PlanEngine, ConcurrentHammeringMatchesSerialResults) {
  const auto reqs = mixedWorkload(/*duplicated=*/false);

  // Serial reference, computed on a fresh serial engine.
  std::vector<OptimizedPlan> expected;
  PlanEngine serialEngine{EngineConfig{.threads = 1}};
  for (const auto& r : reqs) {
    OptimizerOptions serial = r.options;
    serial.threads = 1;
    expected.push_back(serialEngine.optimize(r.app, r.model, r.objective,
                                             serial));
  }

  // Hammer one engine from N threads with interleaved mixed traffic.
  PlanEngine engine;
  const std::size_t kThreads = 4;
  std::vector<std::vector<OptimizedPlan>> got(kThreads);
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        auto& mine = got[t];
        for (std::size_t i = 0; i < reqs.size(); ++i) {
          // Each thread walks the request set from a different offset.
          const auto& r = reqs[(i + t * 5) % reqs.size()];
          mine.push_back(engine.optimize(r));
        }
      } catch (...) {
        failed = true;
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_FALSE(failed);

  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const std::size_t j = (i + t * 5) % reqs.size();
      EXPECT_EQ(got[t][i].value, expected[j].value)
          << "thread " << t << " request " << j;
      EXPECT_EQ(got[t][i].strategy, expected[j].strategy)
          << "thread " << t << " request " << j;
      EXPECT_EQ(graphSignature(got[t][i].plan.graph),
                graphSignature(expected[j].plan.graph))
          << "thread " << t << " request " << j;
    }
  }
}

TEST(PlanEngine, CacheSaveLoadRoundTripWarmsAFreshEngine) {
  const auto reqs = mixedWorkload(/*duplicated=*/false);
  PlanEngine engine;
  const auto batch = engine.optimizeBatch(reqs);
  ASSERT_GT(engine.cacheSize(), 0u);

  std::stringstream dump;
  engine.saveCache(dump);

  PlanEngine fresh;
  fresh.loadCache(dump);
  EXPECT_EQ(fresh.cacheSize(), engine.cacheSize());

  // The warmed engine serves every score from the loaded dump and returns
  // identical winners (cross-run memoization).
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto r = fresh.optimize(reqs[i]);
    EXPECT_EQ(r.stats.sharedHits, r.stats.unique) << "request " << i;
    EXPECT_EQ(r.value, batch[i].value) << "request " << i;
    EXPECT_EQ(r.strategy, batch[i].strategy) << "request " << i;
  }
}

TEST(PlanEngine, RequestKeySeparatesEveryDimension) {
  Prng rng(7);
  WorkloadSpec spec;
  spec.n = 5;
  const auto app = randomApplication(spec, rng);
  const auto app2 = randomApplication(spec, rng);
  const PlanRequest base{app, CommModel::Overlap, Objective::Period,
                         fastOptions()};
  PlanRequest other = base;
  EXPECT_EQ(PlanEngine::requestKey(base), PlanEngine::requestKey(other));
  other.model = CommModel::InOrder;
  EXPECT_NE(PlanEngine::requestKey(base), PlanEngine::requestKey(other));
  other = base;
  other.objective = Objective::Latency;
  EXPECT_NE(PlanEngine::requestKey(base), PlanEngine::requestKey(other));
  other = base;
  other.app = app2;
  EXPECT_NE(PlanEngine::requestKey(base), PlanEngine::requestKey(other));
  other = base;
  other.options.heuristics.seed += 1;
  EXPECT_NE(PlanEngine::requestKey(base), PlanEngine::requestKey(other));
}

TEST(CandidateCacheLru, EvictionIsBoundedAndDeterministic) {
  CandidateCache cache(2);
  EXPECT_EQ(cache.insert("k1", 1.0), 0u);
  EXPECT_EQ(cache.insert("k2", 2.0), 0u);
  EXPECT_EQ(cache.lookup("k1"), 1.0);  // touch: k2 is now least recent
  EXPECT_EQ(cache.insert("k3", 3.0), 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.lookup("k2"), std::nullopt);  // the LRU entry was evicted
  EXPECT_EQ(cache.lookup("k1"), 1.0);
  EXPECT_EQ(cache.lookup("k3"), 3.0);
  EXPECT_EQ(cache.stats().evictions, 1u);

  const auto entries = cache.snapshot();  // LRU first
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, "k1");
  EXPECT_EQ(entries[1].first, "k3");
}

TEST(CandidateCacheLru, SerializeRoundTripPreservesEntriesAndOrder) {
  CandidateCache cache;
  (void)cache.insert("a#overlap#period#n2|0>1", 1.25);
  (void)cache.insert("a#overlap#period#n2", 2.5);
  std::stringstream ss;
  writeCandidateCache(ss, cache);
  CandidateCache loaded;
  readCandidateCache(ss, loaded);
  EXPECT_EQ(loaded.snapshot(), cache.snapshot());

  std::stringstream bad("candidatecache 1\nbogus k 1\n");
  CandidateCache sink;
  EXPECT_THROW(readCandidateCache(bad, sink), std::runtime_error);
}

TEST(BoundedSolves, IncumbentAbortsDominatedOrderSolves) {
  Prng rng(31);
  WorkloadSpec spec;
  spec.n = 5;
  const auto app = randomApplication(spec, rng);
  const auto g = randomLayeredDag(app, 2, 2, rng);
  const auto po = PortOrders::canonical(g);

  const auto unbounded = inorderPeriodForOrders(app, g, po);
  ASSERT_TRUE(unbounded.has_value());

  std::atomic<std::size_t> aborts{0};
  // A bound below the achievable period makes the solve abort and count.
  const auto pruned = inorderPeriodForOrders(app, g, po,
                                             unbounded->value * 0.5, &aborts);
  EXPECT_FALSE(pruned.has_value());
  EXPECT_EQ(aborts.load(), 1u);

  // A bound at the achieved value keeps the solve and its exact result.
  const auto kept =
      inorderPeriodForOrders(app, g, po, unbounded->value, &aborts);
  ASSERT_TRUE(kept.has_value());
  EXPECT_EQ(kept->value, unbounded->value);
  EXPECT_EQ(aborts.load(), 1u);
}

TEST(BoundedSolves, BoundedOrderSearchKeepsTheUnboundedWinner) {
  Prng rng(32);
  WorkloadSpec spec;
  spec.n = 5;
  const auto app = randomApplication(spec, rng);
  const auto g = randomLayeredDag(app, 2, 2, rng);

  OrchestrationOptions opt;
  opt.exactCap = 150;
  const auto free = inorderOrchestratePeriod(app, g, opt);

  std::atomic<std::size_t> aborts{0};
  OrchestrationOptions bounded = opt;
  bounded.upperBound = free.value;
  bounded.boundAborts = &aborts;
  const auto r = inorderOrchestratePeriod(app, g, bounded);
  // The optimum meets the bound exactly, so it survives pruning bit-for-bit
  // while strictly dominated orders abort.
  EXPECT_EQ(r.value, free.value);
  EXPECT_EQ(r.orders.in, free.orders.in);
  EXPECT_EQ(r.orders.out, free.orders.out);
}

TEST(BoundedSolves, EngineThreadsIncumbentIntoLaterOrchestrations) {
  // An INORDER period request on a mid-size app orchestrates top-3
  // candidates; ranks 1..2 run under rank 0's achieved value, so some
  // difference-constraint solves must abort — and the winner must match
  // the serial reference exactly (the adapter uses the same engine path).
  Prng rng(33);
  WorkloadSpec spec;
  spec.n = 7;
  const auto app = randomApplication(spec, rng);
  OptimizerOptions opt = fastOptions();
  opt.threads = 1;
  PlanEngine engine{EngineConfig{.threads = 1}};
  const auto r = engine.optimize(app, CommModel::InOrder, Objective::Period,
                                 opt);
  EXPECT_GT(r.stats.orchestrated, 1u);
  const auto ref = optimizePlan(app, CommModel::InOrder, Objective::Period,
                                opt);
  EXPECT_EQ(r.value, ref.value);
  EXPECT_EQ(r.strategy, ref.strategy);
  EXPECT_TRUE(std::isfinite(r.value));
}

}  // namespace
}  // namespace fsw
