#include <gtest/gtest.h>

#include "src/common/util.hpp"
#include "src/core/cost_model.hpp"
#include "src/oplist/validate.hpp"
#include "src/sched/latency.hpp"
#include "src/workload/generator.hpp"

namespace fsw {
namespace {

TEST(TreeLatency, SingleService) {
  Application app;
  app.addService(3.0, 0.5);
  ExecutionGraph g(1);
  // in(1) + comp(3) + out(0.5).
  EXPECT_NEAR(treeLatencyValue(app, g), 4.5, 1e-12);
}

TEST(TreeLatency, ChainMatchesCriticalPath) {
  Application app;
  app.addService(2.0, 0.5);
  app.addService(1.0, 2.0);
  app.addService(0.5, 1.0);
  const auto g = ExecutionGraph::chain({0, 1, 2});
  const CostModel cm(app, g);
  EXPECT_NEAR(treeLatencyValue(app, g), cm.latencyLowerBound(), 1e-12);
}

TEST(TreeLatency, StarFeedsLongestBranchFirst) {
  // Root (cost 1, sigma 1) with two children: slow (cost 10) and fast
  // (cost 1). Feeding slow first: slow done at 2+1+10+1 = 14, fast at
  // 2+2+1+1 = 6 -> 14. Feeding fast first: slow at 2+2+10+1 = 15.
  Application app;
  app.addService(1.0, 1.0);
  app.addService(10.0, 1.0);
  app.addService(1.0, 1.0);
  ExecutionGraph g(3);
  g.addEdge(0, 1);
  g.addEdge(0, 2);
  EXPECT_NEAR(treeLatencyValue(app, g), 14.0, 1e-12);
}

TEST(TreeLatency, ScheduleAchievesValueAndValidates) {
  Prng rng(321);
  for (int trial = 0; trial < 25; ++trial) {
    WorkloadSpec spec;
    spec.n = 8;
    const auto app = randomApplication(spec, rng);
    const auto g = randomForest(app, rng);
    const auto r = treeLatencySchedule(app, g);
    EXPECT_NEAR(r.value, treeLatencyValue(app, g), 1e-9);
    for (const CommModel m : kAllModels) {
      const auto rep = validate(app, g, r.ol, m);
      EXPECT_TRUE(rep.valid)
          << "trial " << trial << " " << name(m) << ": " << rep.summary();
    }
  }
}

TEST(TreeLatency, OptimalAmongAllFeedOrders) {
  // Brute-force check of the Algorithm 1 exchange argument: no permutation
  // of any node's send order beats the non-increasing-R order.
  Prng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    WorkloadSpec spec;
    spec.n = 6;
    const auto app = randomApplication(spec, rng);
    const auto g = randomForest(app, rng);
    const double algo = treeLatencyValue(app, g);
    // Exhaustive: permute the children order of every node via the one-port
    // order solver (exact on trees because receives are single).
    double bruteBest = std::numeric_limits<double>::infinity();
    forEachPortOrders(g, 5000, [&](const PortOrders& po) {
      if (const auto r = oneportLatencyForOrders(app, g, po)) {
        bruteBest = std::min(bruteBest, r->value);
      }
      return true;
    });
    EXPECT_NEAR(algo, bruteBest, 1e-6) << "trial " << trial;
  }
}

TEST(TreeLatency, RejectsNonForest) {
  Application app;
  for (int i = 0; i < 3; ++i) app.addService(1.0, 1.0);
  ExecutionGraph g(3);
  g.addEdge(0, 2);
  g.addEdge(1, 2);
  EXPECT_THROW(treeLatencyValue(app, g), std::invalid_argument);
  EXPECT_THROW(treeLatencySchedule(app, g), std::invalid_argument);
}

TEST(TreeLatency, ForestTakesMaxOverRoots) {
  Application app;
  app.addService(5.0, 1.0);
  app.addService(1.0, 1.0);
  ExecutionGraph g(2);  // two isolated services
  // max(1+5+1, 1+1+1) = 7.
  EXPECT_NEAR(treeLatencyValue(app, g), 7.0, 1e-12);
}

TEST(LatencyOrchestrate, DispatchesTreeAlgorithmOnForests) {
  Prng rng(55);
  WorkloadSpec spec;
  spec.n = 7;
  const auto app = randomApplication(spec, rng);
  const auto g = randomForest(app, rng);
  for (const CommModel m : kAllModels) {
    const auto r = latencyOrchestrate(app, g, m);
    EXPECT_NEAR(r.value, treeLatencyValue(app, g), 1e-9) << name(m);
  }
}

TEST(LatencyOrchestrate, OverlapNeverWorseThanOnePortOnDags) {
  Prng rng(66);
  for (int trial = 0; trial < 8; ++trial) {
    WorkloadSpec spec;
    spec.n = 7;
    const auto app = randomApplication(spec, rng);
    const auto g = randomLayeredDag(app, 3, 3, rng);
    OrchestrationOptions opt;
    opt.exactCap = 300;
    const auto onePort = latencyOrchestrate(app, g, CommModel::InOrder, opt);
    const auto multi = latencyOrchestrate(app, g, CommModel::Overlap, opt);
    EXPECT_LE(multi.value, onePort.value + 1e-6) << "trial " << trial;
  }
}

}  // namespace
}  // namespace fsw
