#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/common/arena.hpp"

namespace fsw {
namespace {

TEST(MonotonicArena, BumpAllocatesAlignedDistinctRegions) {
  MonotonicArena arena;
  auto* a = static_cast<std::uint8_t*>(arena.allocate(24, 8));
  auto* b = static_cast<std::uint8_t*>(arena.allocate(24, 8));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  std::memset(a, 0xAB, 24);
  std::memset(b, 0xCD, 24);
  EXPECT_EQ(a[23], 0xAB);  // regions don't overlap
  EXPECT_EQ(b[0], 0xCD);
  EXPECT_GE(arena.usedBytes(), 48u);
}

TEST(MonotonicArena, ResetReusesBlocksWithoutNewHeapAllocations) {
  MonotonicArena arena;
  for (int i = 0; i < 8; ++i) (void)arena.allocate(512, 8);
  const std::size_t warmAllocs = arena.heapAllocs();
  const std::size_t warmReserved = arena.reservedBytes();
  ASSERT_GE(warmAllocs, 1u);
  // Steady state: same demand after reset is served entirely from the
  // freelist — the counter the searches' regression guards key off.
  for (int round = 0; round < 50; ++round) {
    arena.reset();
    EXPECT_EQ(arena.usedBytes(), 0u);
    for (int i = 0; i < 8; ++i) (void)arena.allocate(512, 8);
  }
  EXPECT_EQ(arena.heapAllocs(), warmAllocs);
  EXPECT_EQ(arena.reservedBytes(), warmReserved);
}

TEST(MonotonicArena, HighWaterSurvivesReset) {
  MonotonicArena arena;
  (void)arena.allocate(4000, 8);
  (void)arena.allocate(4000, 8);
  const std::size_t high = arena.highWater();
  EXPECT_GE(high, 8000u);
  arena.reset();
  (void)arena.allocate(16, 8);
  EXPECT_EQ(arena.highWater(), high);  // max over lifetime, not per epoch
}

TEST(MonotonicArena, OversizedRequestGetsItsOwnBlock) {
  MonotonicArena arena;
  (void)arena.allocate(8, 8);
  auto* big = static_cast<std::uint8_t*>(arena.allocate(1 << 20, 64));
  ASSERT_NE(big, nullptr);
  std::memset(big, 0x5A, 1 << 20);  // whole region must be writable
  EXPECT_EQ(big[(1 << 20) - 1], 0x5A);
  EXPECT_GE(arena.reservedBytes(), std::size_t{1} << 20);
}

TEST(ArenaVector, PushBackAndIndexing) {
  MonotonicArena arena;
  ArenaVector<int> v(&arena);
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 100; ++i) v.push_back(i * 3);
  ASSERT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[i], i * 3);
  EXPECT_EQ(*v.begin(), 0);
  EXPECT_EQ(*(v.end() - 1), 297);
}

TEST(ArenaVector, ClearKeepsCapacity) {
  MonotonicArena arena;
  ArenaVector<double> v(&arena);
  for (int i = 0; i < 64; ++i) v.push_back(i * 0.5);
  const std::size_t cap = v.capacity();
  ASSERT_GE(cap, 64u);
  v.clear();
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), cap);
  const double* data = v.data();
  for (int i = 0; i < 64; ++i) v.push_back(1.0);
  EXPECT_EQ(v.data(), data);  // refilled in place, no regrowth
}

TEST(ArenaVector, ReserveThenAppendSpan) {
  MonotonicArena arena;
  ArenaVector<std::uint32_t> v(&arena);
  v.reserve(10);
  const std::vector<std::uint32_t> src{1, 2, 3, 4, 5};
  v.append(src.data(), src.size());
  v.append(src.data(), src.size());
  ASSERT_EQ(v.size(), 10u);
  EXPECT_EQ(v[0], 1u);
  EXPECT_EQ(v[5], 1u);
  EXPECT_EQ(v[9], 5u);
}

TEST(ArenaVector, ResizeAndGrowthPreserveContents) {
  MonotonicArena arena;
  ArenaVector<int> v(&arena);
  v.resize(5);
  for (int i = 0; i < 5; ++i) v[i] = i + 1;
  for (int i = 0; i < 2000; ++i) v.push_back(-i);  // forces several regrowths
  ASSERT_EQ(v.size(), 2005u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[i], i + 1);
  EXPECT_EQ(v[5], 0);
  EXPECT_EQ(v[2004], -1999);
}

}  // namespace
}  // namespace fsw
