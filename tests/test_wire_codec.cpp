// The wire codec: byte-exact round trips for PlanRequest and
// OptimizedPlan, portfolio-name portability rules, non-finite double
// tokens, and the rejection discipline — wrong magic, wrong version,
// truncated or malformed payloads are clean errors, never misparses.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include "src/io/serialize.hpp"
#include "src/serve/plan_engine.hpp"
#include "src/workload/generator.hpp"

namespace fsw {
namespace {

Application sampleApp() {
  Application app;
  app.addService(2.0, 0.5, "decode");
  app.addService(1.0 / 3.0, 1.25, "detect");  // a non-terminating decimal
  app.addService(1.5, 1.0, "caption");
  app.addPrecedence(0, 1);
  return app;
}

/// A request with every value-affecting knob off its default.
PlanRequest sampleRequest() {
  PlanRequest req;
  req.app = sampleApp();
  req.model = CommModel::InOrder;
  req.objective = Objective::Latency;
  req.options.exactForestMaxN = 4;
  req.options.orchestrateTop = 2;
  req.options.heuristics.restarts = 3;
  req.options.heuristics.iterations = 123;
  req.options.heuristics.initialTemperature = 0.75;
  req.options.heuristics.seed = 99;
  req.options.orchestrator.order.exactCap = 64;
  req.options.orchestrator.order.localSearchIters = 17;
  req.options.orchestrator.order.localSearchRestarts = 2;
  req.options.orchestrator.order.seed = 5;
  req.options.orchestrator.order.upperBound = 12.5;
  req.options.orchestrator.outorder.repairIters = 33;
  req.options.orchestrator.outorder.restarts = 7;
  req.options.orchestrator.outorder.bisectSteps = 4;
  req.options.orchestrator.outorder.seed = 11;
  req.options.orchestrator.outorder.inorder.exactCap = 128;
  req.options.orchestrator.outorder.inorder.seed = 21;
  return req;
}

std::string encodeRequest(const PlanRequest& req, int priority = 0) {
  std::ostringstream os;
  writePlanRequest(os, req, priority);
  return os.str();
}

TEST(WireCodec, RequestRoundTripPreservesEveryField) {
  const PlanRequest req = sampleRequest();
  std::istringstream is(encodeRequest(req, /*priority=*/7));
  const WirePlanRequest wire = readPlanRequest(is);

  EXPECT_EQ(wire.priority, 7);
  EXPECT_EQ(wire.portfolio, "-");
  EXPECT_EQ(wire.request.model, CommModel::InOrder);
  EXPECT_EQ(wire.request.objective, Objective::Latency);
  const OptimizerOptions& o = wire.request.options;
  EXPECT_EQ(o.exactForestMaxN, 4u);
  EXPECT_EQ(o.orchestrateTop, 2u);
  EXPECT_EQ(o.heuristics.restarts, 3u);
  EXPECT_EQ(o.heuristics.iterations, 123u);
  EXPECT_EQ(o.heuristics.initialTemperature, 0.75);
  EXPECT_EQ(o.heuristics.seed, 99u);
  EXPECT_EQ(o.orchestrator.order.exactCap, 64u);
  EXPECT_EQ(o.orchestrator.order.localSearchIters, 17u);
  EXPECT_EQ(o.orchestrator.order.localSearchRestarts, 2u);
  EXPECT_EQ(o.orchestrator.order.seed, 5u);
  EXPECT_EQ(o.orchestrator.order.upperBound, 12.5);
  EXPECT_EQ(o.orchestrator.outorder.repairIters, 33u);
  EXPECT_EQ(o.orchestrator.outorder.restarts, 7u);
  EXPECT_EQ(o.orchestrator.outorder.bisectSteps, 4u);
  EXPECT_EQ(o.orchestrator.outorder.seed, 11u);
  EXPECT_EQ(o.orchestrator.outorder.inorder.exactCap, 128u);
  EXPECT_EQ(o.orchestrator.outorder.inorder.seed, 21u);
  EXPECT_EQ(o.registry, nullptr);  // portfolio travels by name, not pointer

  // The application itself (including the non-terminating decimal cost)
  // reproduces its exact signature, so both sides compute one requestKey.
  EXPECT_EQ(PlanEngine::requestKey(wire.request), PlanEngine::requestKey(req));
}

TEST(WireCodec, RequestEncodingIsByteExact) {
  const PlanRequest req = sampleRequest();
  const std::string first = encodeRequest(req, 3);
  std::istringstream is(first);
  const WirePlanRequest wire = readPlanRequest(is);
  const std::string second = encodeRequest(wire.request, wire.priority);
  EXPECT_EQ(first, second);
}

TEST(WireCodec, DefaultOptionsCarryInfinityUpperBoundCleanly) {
  // The default OrchestrationOptions::upperBound is infinity — stream
  // extraction would reject the "inf" operator<< produces, so the codec
  // writes explicit tokens. The default-constructed request must round
  // trip losslessly.
  PlanRequest req;
  req.app = sampleApp();
  std::istringstream is(encodeRequest(req));
  const WirePlanRequest wire = readPlanRequest(is);
  EXPECT_TRUE(std::isinf(wire.request.options.orchestrator.order.upperBound));
  EXPECT_GT(wire.request.options.orchestrator.order.upperBound, 0.0);
}

TEST(WireCodec, NamedPortfolioTravelsByNameUnnamedIsRejected) {
  CandidateRegistry named = CandidateRegistry::makeBuiltin();
  named.setName("prod-portfolio");
  PlanRequest req;
  req.app = sampleApp();
  req.options.registry = &named;

  std::istringstream is(encodeRequest(req, 1));
  const WirePlanRequest wire = readPlanRequest(is);
  EXPECT_EQ(wire.portfolio, "prod-portfolio");
  EXPECT_EQ(wire.request.options.registry, nullptr);

  // Unnamed portfolios are process-local (pointer identity): they must
  // not cross the wire.
  const CandidateRegistry anon;
  req.options.registry = &anon;
  std::ostringstream os;
  EXPECT_THROW(writePlanRequest(os, req), std::invalid_argument);
}

TEST(WireCodec, RequestRejectionsAreCleanErrors) {
  const std::string good = encodeRequest(sampleRequest());

  // Wrong magic.
  {
    std::istringstream is("bogusmagic 1\n" + good.substr(good.find('\n') + 1));
    EXPECT_THROW((void)readPlanRequest(is), std::runtime_error);
  }
  // Wrong version.
  {
    std::istringstream is(std::string(kPlanRequestMagic) + " 999\n" +
                          good.substr(good.find('\n') + 1));
    EXPECT_THROW((void)readPlanRequest(is), std::runtime_error);
  }
  // Truncation at every line boundary (and mid-token).
  for (const std::size_t cut :
       {good.size() / 8, good.size() / 3, good.size() - 3}) {
    std::istringstream is(good.substr(0, cut));
    EXPECT_THROW((void)readPlanRequest(is), std::runtime_error)
        << "cut at " << cut;
  }
  // Unknown model / objective tokens.
  {
    std::string bad = good;
    const std::size_t pos = bad.find("INORDER");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, 7, "SIDEWAYS");
    std::istringstream is(bad);
    EXPECT_THROW((void)readPlanRequest(is), std::runtime_error);
  }
  // A non-numeric field where a number belongs.
  {
    std::string bad = good;
    const std::size_t pos = bad.find("options ");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos + 8, 1, "x");
    std::istringstream is(bad);
    EXPECT_THROW((void)readPlanRequest(is), std::runtime_error);
  }
}

TEST(WireCodec, PlanRoundTripPreservesWinnerAndStats) {
  // A real solve, so the graph/oplist/stats blocks are non-trivial.
  PlanEngine engine{EngineConfig{.threads = 1}};
  PlanRequest req;
  req.app = sampleApp();
  const OptimizedPlan plan = engine.optimize(req);
  ASSERT_TRUE(std::isfinite(plan.value));

  std::ostringstream os;
  writeOptimizedPlan(os, plan);
  std::istringstream is(os.str());
  const OptimizedPlan back = readOptimizedPlan(is);

  EXPECT_EQ(back.value, plan.value);
  EXPECT_EQ(back.surrogate, plan.surrogate);
  EXPECT_EQ(back.strategy, plan.strategy);
  EXPECT_EQ(graphSignature(back.plan.graph), graphSignature(plan.plan.graph));
  EXPECT_EQ(toString(back.plan.ol), toString(plan.plan.ol));
  EXPECT_EQ(back.stats.sourcesRun, plan.stats.sourcesRun);
  EXPECT_EQ(back.stats.generated, plan.stats.generated);
  EXPECT_EQ(back.stats.unique, plan.stats.unique);
  EXPECT_EQ(back.stats.orchestrated, plan.stats.orchestrated);
  EXPECT_EQ(back.stats.boundAborts, plan.stats.boundAborts);
  EXPECT_EQ(back.stats.resultCacheHits, plan.stats.resultCacheHits);
  EXPECT_EQ(back.stats.evalProbes, plan.stats.evalProbes);
  EXPECT_EQ(back.stats.scratchHeapAllocs, plan.stats.scratchHeapAllocs);
  EXPECT_EQ(back.stats.arenaBytesHighWater, plan.stats.arenaBytesHighWater);

  // Byte-exact re-encode.
  std::ostringstream second;
  writeOptimizedPlan(second, back);
  EXPECT_EQ(os.str(), second.str());

  // The v2 memory-discipline counters hold distinct wire positions: pin
  // them with values a solve may not produce (this app is a forest, so
  // the tree scheduler answers without a single order-search probe).
  OptimizedPlan pinned = plan;
  pinned.stats.evalProbes = 12345;
  pinned.stats.scratchHeapAllocs = 67;
  pinned.stats.arenaBytesHighWater = 890123;
  std::ostringstream pinnedOs;
  writeOptimizedPlan(pinnedOs, pinned);
  std::istringstream pinnedIs(pinnedOs.str());
  const OptimizedPlan pinnedBack = readOptimizedPlan(pinnedIs);
  EXPECT_EQ(pinnedBack.stats.evalProbes, 12345u);
  EXPECT_EQ(pinnedBack.stats.scratchHeapAllocs, 67u);
  EXPECT_EQ(pinnedBack.stats.arenaBytesHighWater, 890123u);
}

TEST(WireCodec, DegeneratePlanRoundTripsWithInfValueAndEmptyStrategy) {
  // A solve that found no candidate: infinite value, empty strategy —
  // both need reserved tokens on the wire.
  OptimizedPlan plan;
  plan.value = std::numeric_limits<double>::infinity();
  plan.surrogate = std::numeric_limits<double>::infinity();

  std::ostringstream os;
  writeOptimizedPlan(os, plan);
  std::istringstream is(os.str());
  const OptimizedPlan back = readOptimizedPlan(is);
  EXPECT_TRUE(std::isinf(back.value));
  EXPECT_TRUE(back.strategy.empty());

  // The reserved empty-field token itself cannot be a strategy name: it
  // would decode back as empty and silently break byte-exact round trips.
  OptimizedPlan reserved;
  reserved.strategy = "-";
  std::ostringstream bad;
  EXPECT_THROW(writeOptimizedPlan(bad, reserved), std::invalid_argument);
}

TEST(WireCodec, PlanRejectionsAreCleanErrors) {
  OptimizedPlan plan;
  plan.strategy = "greedy-forest";
  std::ostringstream os;
  writeOptimizedPlan(os, plan);
  const std::string good = os.str();

  {
    std::istringstream is("nonsense");
    EXPECT_THROW((void)readOptimizedPlan(is), std::runtime_error);
  }
  {
    std::istringstream is(std::string(kPlanResponseMagic) + " 42\n");
    EXPECT_THROW((void)readOptimizedPlan(is), std::runtime_error);
  }
  for (const std::size_t cut : {good.size() / 4, good.size() - 2}) {
    std::istringstream is(good.substr(0, cut));
    EXPECT_THROW((void)readOptimizedPlan(is), std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(WireCodec, ShardSetHeaderRoundTripsAndRejects) {
  std::ostringstream os;
  writeShardSetHeader(os, 4, "result");
  std::istringstream is(os.str());
  const auto [count, kind] = readShardSetHeader(is);
  EXPECT_EQ(count, 4u);
  EXPECT_EQ(kind, "result");

  std::istringstream badMagic("bogus 1\nshards 4 result\n");
  EXPECT_THROW((void)readShardSetHeader(badMagic), std::runtime_error);
  std::istringstream badVersion(std::string(kShardSetMagic) +
                                " 99\nshards 4 result\n");
  EXPECT_THROW((void)readShardSetHeader(badVersion), std::runtime_error);
  std::istringstream badLine(std::string(kShardSetMagic) + " 1\nwhat 4\n");
  EXPECT_THROW((void)readShardSetHeader(badLine), std::runtime_error);
}

}  // namespace
}  // namespace fsw
