// The wire codec: byte-exact round trips for PlanRequest and
// OptimizedPlan, portfolio-name portability rules, non-finite double
// tokens, and the rejection discipline — wrong magic, wrong version,
// truncated or malformed payloads are clean errors, never misparses.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include "src/io/binio.hpp"
#include "src/io/serialize.hpp"
#include "src/serve/plan_engine.hpp"
#include "src/serve/result_cache.hpp"
#include "src/workload/generator.hpp"

namespace fsw {
namespace {

Application sampleApp() {
  Application app;
  app.addService(2.0, 0.5, "decode");
  app.addService(1.0 / 3.0, 1.25, "detect");  // a non-terminating decimal
  app.addService(1.5, 1.0, "caption");
  app.addPrecedence(0, 1);
  return app;
}

/// A request with every value-affecting knob off its default.
PlanRequest sampleRequest() {
  PlanRequest req;
  req.app = sampleApp();
  req.model = CommModel::InOrder;
  req.objective = Objective::Latency;
  req.options.exactForestMaxN = 4;
  req.options.orchestrateTop = 2;
  req.options.heuristics.restarts = 3;
  req.options.heuristics.iterations = 123;
  req.options.heuristics.initialTemperature = 0.75;
  req.options.heuristics.seed = 99;
  req.options.orchestrator.order.exactCap = 64;
  req.options.orchestrator.order.localSearchIters = 17;
  req.options.orchestrator.order.localSearchRestarts = 2;
  req.options.orchestrator.order.seed = 5;
  req.options.orchestrator.order.upperBound = 12.5;
  req.options.orchestrator.outorder.repairIters = 33;
  req.options.orchestrator.outorder.restarts = 7;
  req.options.orchestrator.outorder.bisectSteps = 4;
  req.options.orchestrator.outorder.seed = 11;
  req.options.orchestrator.outorder.inorder.exactCap = 128;
  req.options.orchestrator.outorder.inorder.seed = 21;
  return req;
}

std::string encodeRequest(const PlanRequest& req, int priority = 0) {
  std::ostringstream os;
  writePlanRequest(os, req, priority);
  return os.str();
}

TEST(WireCodec, RequestRoundTripPreservesEveryField) {
  const PlanRequest req = sampleRequest();
  std::istringstream is(encodeRequest(req, /*priority=*/7));
  const WirePlanRequest wire = readPlanRequest(is);

  EXPECT_EQ(wire.priority, 7);
  EXPECT_EQ(wire.portfolio, "-");
  EXPECT_EQ(wire.request.model, CommModel::InOrder);
  EXPECT_EQ(wire.request.objective, Objective::Latency);
  const OptimizerOptions& o = wire.request.options;
  EXPECT_EQ(o.exactForestMaxN, 4u);
  EXPECT_EQ(o.orchestrateTop, 2u);
  EXPECT_EQ(o.heuristics.restarts, 3u);
  EXPECT_EQ(o.heuristics.iterations, 123u);
  EXPECT_EQ(o.heuristics.initialTemperature, 0.75);
  EXPECT_EQ(o.heuristics.seed, 99u);
  EXPECT_EQ(o.orchestrator.order.exactCap, 64u);
  EXPECT_EQ(o.orchestrator.order.localSearchIters, 17u);
  EXPECT_EQ(o.orchestrator.order.localSearchRestarts, 2u);
  EXPECT_EQ(o.orchestrator.order.seed, 5u);
  EXPECT_EQ(o.orchestrator.order.upperBound, 12.5);
  EXPECT_EQ(o.orchestrator.outorder.repairIters, 33u);
  EXPECT_EQ(o.orchestrator.outorder.restarts, 7u);
  EXPECT_EQ(o.orchestrator.outorder.bisectSteps, 4u);
  EXPECT_EQ(o.orchestrator.outorder.seed, 11u);
  EXPECT_EQ(o.orchestrator.outorder.inorder.exactCap, 128u);
  EXPECT_EQ(o.orchestrator.outorder.inorder.seed, 21u);
  EXPECT_EQ(o.registry, nullptr);  // portfolio travels by name, not pointer

  // The application itself (including the non-terminating decimal cost)
  // reproduces its exact signature, so both sides compute one requestKey.
  EXPECT_EQ(PlanEngine::requestKey(wire.request), PlanEngine::requestKey(req));
}

TEST(WireCodec, RequestEncodingIsByteExact) {
  const PlanRequest req = sampleRequest();
  const std::string first = encodeRequest(req, 3);
  std::istringstream is(first);
  const WirePlanRequest wire = readPlanRequest(is);
  const std::string second = encodeRequest(wire.request, wire.priority);
  EXPECT_EQ(first, second);
}

TEST(WireCodec, DefaultOptionsCarryInfinityUpperBoundCleanly) {
  // The default OrchestrationOptions::upperBound is infinity — stream
  // extraction would reject the "inf" operator<< produces, so the codec
  // writes explicit tokens. The default-constructed request must round
  // trip losslessly.
  PlanRequest req;
  req.app = sampleApp();
  std::istringstream is(encodeRequest(req));
  const WirePlanRequest wire = readPlanRequest(is);
  EXPECT_TRUE(std::isinf(wire.request.options.orchestrator.order.upperBound));
  EXPECT_GT(wire.request.options.orchestrator.order.upperBound, 0.0);
}

TEST(WireCodec, NamedPortfolioTravelsByNameUnnamedIsRejected) {
  CandidateRegistry named = CandidateRegistry::makeBuiltin();
  named.setName("prod-portfolio");
  PlanRequest req;
  req.app = sampleApp();
  req.options.registry = &named;

  std::istringstream is(encodeRequest(req, 1));
  const WirePlanRequest wire = readPlanRequest(is);
  EXPECT_EQ(wire.portfolio, "prod-portfolio");
  EXPECT_EQ(wire.request.options.registry, nullptr);

  // Unnamed portfolios are process-local (pointer identity): they must
  // not cross the wire.
  const CandidateRegistry anon;
  req.options.registry = &anon;
  std::ostringstream os;
  EXPECT_THROW(writePlanRequest(os, req), std::invalid_argument);
}

TEST(WireCodec, RequestRejectionsAreCleanErrors) {
  const std::string good = encodeRequest(sampleRequest());

  // Wrong magic.
  {
    std::istringstream is("bogusmagic 1\n" + good.substr(good.find('\n') + 1));
    EXPECT_THROW((void)readPlanRequest(is), std::runtime_error);
  }
  // Wrong version.
  {
    std::istringstream is(std::string(kPlanRequestMagic) + " 999\n" +
                          good.substr(good.find('\n') + 1));
    EXPECT_THROW((void)readPlanRequest(is), std::runtime_error);
  }
  // Truncation at every line boundary (and mid-token).
  for (const std::size_t cut :
       {good.size() / 8, good.size() / 3, good.size() - 3}) {
    std::istringstream is(good.substr(0, cut));
    EXPECT_THROW((void)readPlanRequest(is), std::runtime_error)
        << "cut at " << cut;
  }
  // Unknown model / objective tokens.
  {
    std::string bad = good;
    const std::size_t pos = bad.find("INORDER");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, 7, "SIDEWAYS");
    std::istringstream is(bad);
    EXPECT_THROW((void)readPlanRequest(is), std::runtime_error);
  }
  // A non-numeric field where a number belongs.
  {
    std::string bad = good;
    const std::size_t pos = bad.find("options ");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos + 8, 1, "x");
    std::istringstream is(bad);
    EXPECT_THROW((void)readPlanRequest(is), std::runtime_error);
  }
}

TEST(WireCodec, PlanRoundTripPreservesWinnerAndStats) {
  // A real solve, so the graph/oplist/stats blocks are non-trivial.
  PlanEngine engine{EngineConfig{.threads = 1}};
  PlanRequest req;
  req.app = sampleApp();
  const OptimizedPlan plan = engine.optimize(req);
  ASSERT_TRUE(std::isfinite(plan.value));

  std::ostringstream os;
  writeOptimizedPlan(os, plan);
  std::istringstream is(os.str());
  const OptimizedPlan back = readOptimizedPlan(is);

  EXPECT_EQ(back.value, plan.value);
  EXPECT_EQ(back.surrogate, plan.surrogate);
  EXPECT_EQ(back.strategy, plan.strategy);
  EXPECT_EQ(graphSignature(back.plan.graph), graphSignature(plan.plan.graph));
  EXPECT_EQ(toString(back.plan.ol), toString(plan.plan.ol));
  EXPECT_EQ(back.stats.sourcesRun, plan.stats.sourcesRun);
  EXPECT_EQ(back.stats.generated, plan.stats.generated);
  EXPECT_EQ(back.stats.unique, plan.stats.unique);
  EXPECT_EQ(back.stats.orchestrated, plan.stats.orchestrated);
  EXPECT_EQ(back.stats.boundAborts, plan.stats.boundAborts);
  EXPECT_EQ(back.stats.resultCacheHits, plan.stats.resultCacheHits);
  EXPECT_EQ(back.stats.evalProbes, plan.stats.evalProbes);
  EXPECT_EQ(back.stats.scratchHeapAllocs, plan.stats.scratchHeapAllocs);
  EXPECT_EQ(back.stats.arenaBytesHighWater, plan.stats.arenaBytesHighWater);

  // Byte-exact re-encode.
  std::ostringstream second;
  writeOptimizedPlan(second, back);
  EXPECT_EQ(os.str(), second.str());

  // The v2 memory-discipline counters hold distinct wire positions: pin
  // them with values a solve may not produce (this app is a forest, so
  // the tree scheduler answers without a single order-search probe).
  OptimizedPlan pinned = plan;
  pinned.stats.evalProbes = 12345;
  pinned.stats.scratchHeapAllocs = 67;
  pinned.stats.arenaBytesHighWater = 890123;
  std::ostringstream pinnedOs;
  writeOptimizedPlan(pinnedOs, pinned);
  std::istringstream pinnedIs(pinnedOs.str());
  const OptimizedPlan pinnedBack = readOptimizedPlan(pinnedIs);
  EXPECT_EQ(pinnedBack.stats.evalProbes, 12345u);
  EXPECT_EQ(pinnedBack.stats.scratchHeapAllocs, 67u);
  EXPECT_EQ(pinnedBack.stats.arenaBytesHighWater, 890123u);
}

TEST(WireCodec, DegeneratePlanRoundTripsWithInfValueAndEmptyStrategy) {
  // A solve that found no candidate: infinite value, empty strategy —
  // both need reserved tokens on the wire.
  OptimizedPlan plan;
  plan.value = std::numeric_limits<double>::infinity();
  plan.surrogate = std::numeric_limits<double>::infinity();

  std::ostringstream os;
  writeOptimizedPlan(os, plan);
  std::istringstream is(os.str());
  const OptimizedPlan back = readOptimizedPlan(is);
  EXPECT_TRUE(std::isinf(back.value));
  EXPECT_TRUE(back.strategy.empty());

  // The reserved empty-field token itself cannot be a strategy name: it
  // would decode back as empty and silently break byte-exact round trips.
  OptimizedPlan reserved;
  reserved.strategy = "-";
  std::ostringstream bad;
  EXPECT_THROW(writeOptimizedPlan(bad, reserved), std::invalid_argument);
}

TEST(WireCodec, PlanRejectionsAreCleanErrors) {
  OptimizedPlan plan;
  plan.strategy = "greedy-forest";
  std::ostringstream os;
  writeOptimizedPlan(os, plan);
  const std::string good = os.str();

  {
    std::istringstream is("nonsense");
    EXPECT_THROW((void)readOptimizedPlan(is), std::runtime_error);
  }
  {
    std::istringstream is(std::string(kPlanResponseMagic) + " 42\n");
    EXPECT_THROW((void)readOptimizedPlan(is), std::runtime_error);
  }
  for (const std::size_t cut : {good.size() / 4, good.size() - 2}) {
    std::istringstream is(good.substr(0, cut));
    EXPECT_THROW((void)readOptimizedPlan(is), std::runtime_error)
        << "cut at " << cut;
  }
}

// ---- binary dialect (wire codec v3) ----------------------------------------

TEST(BinaryWire, RequestRoundTripIsByteExactAndKeyPreserving) {
  const PlanRequest req = sampleRequest();
  const std::string bin = encodePlanRequest(req, 7);
  ASSERT_FALSE(bin.empty());
  EXPECT_EQ(static_cast<unsigned char>(bin[0]), binio::kMagicByte);

  const WirePlanRequest wire = decodePlanRequest(bin);
  EXPECT_EQ(wire.priority, 7);
  EXPECT_EQ(wire.portfolio, "-");
  EXPECT_EQ(wire.request.model, CommModel::InOrder);
  EXPECT_EQ(wire.request.objective, Objective::Latency);
  EXPECT_EQ(PlanEngine::requestKey(wire.request), PlanEngine::requestKey(req));
  // decode(encode(x)) re-encodes to the identical byte string (canonical
  // varints make the encoding unique).
  EXPECT_EQ(encodePlanRequest(wire.request, wire.priority), bin);
  // And the binary payload undercuts the text encoding.
  EXPECT_LT(bin.size(), encodeRequest(req, 7).size());
}

TEST(BinaryWire, DecodeSniffsAndAcceptsTextDialect) {
  const PlanRequest req = sampleRequest();
  const WirePlanRequest wire = decodePlanRequest(encodeRequest(req, 3));
  EXPECT_EQ(wire.priority, 3);
  EXPECT_EQ(PlanEngine::requestKey(wire.request), PlanEngine::requestKey(req));

  OptimizedPlan plan;
  plan.strategy = "greedy-forest";
  plan.value = 4.5;
  std::ostringstream os;
  writeOptimizedPlan(os, plan);
  const OptimizedPlan back = decodeOptimizedPlan(os.str());
  EXPECT_EQ(back.value, 4.5);
  EXPECT_EQ(back.strategy, "greedy-forest");
}

TEST(BinaryWire, NamedPortfolioTravelsUnnamedIsRejected) {
  CandidateRegistry named = CandidateRegistry::makeBuiltin();
  named.setName("prod-portfolio");
  PlanRequest req;
  req.app = sampleApp();
  req.options.registry = &named;

  const WirePlanRequest wire = decodePlanRequest(encodePlanRequest(req, 1));
  EXPECT_EQ(wire.portfolio, "prod-portfolio");
  EXPECT_EQ(wire.request.options.registry, nullptr);

  const CandidateRegistry anon;
  req.options.registry = &anon;
  EXPECT_THROW((void)encodePlanRequest(req), std::invalid_argument);
}

TEST(BinaryWire, PlanRoundTripPreservesWinnerAndStatsAndShrinks) {
  PlanEngine engine{EngineConfig{.threads = 1}};
  PlanRequest req;
  req.app = sampleApp();
  OptimizedPlan plan = engine.optimize(req);
  ASSERT_TRUE(std::isfinite(plan.value));
  // Pin the v3-only counters so their wire positions are covered.
  plan.stats.evalProbes = 12345;
  plan.stats.storeBytesSent = 4242;
  plan.stats.storeBytesReceived = 777777;

  const std::string bin = encodeOptimizedPlan(plan);
  ASSERT_TRUE(binio::isBinary(bin));
  const OptimizedPlan back = decodeOptimizedPlan(bin);

  EXPECT_EQ(back.value, plan.value);
  EXPECT_EQ(back.surrogate, plan.surrogate);
  EXPECT_EQ(back.strategy, plan.strategy);
  EXPECT_EQ(graphSignature(back.plan.graph), graphSignature(plan.plan.graph));
  EXPECT_EQ(toString(back.plan.ol), toString(plan.plan.ol));
  EXPECT_EQ(back.stats.sourcesRun, plan.stats.sourcesRun);
  EXPECT_EQ(back.stats.generated, plan.stats.generated);
  EXPECT_EQ(back.stats.unique, plan.stats.unique);
  EXPECT_EQ(back.stats.orchestrated, plan.stats.orchestrated);
  EXPECT_EQ(back.stats.evalProbes, 12345u);
  EXPECT_EQ(back.stats.storeBytesSent, 4242u);
  EXPECT_EQ(back.stats.storeBytesReceived, 777777u);

  // Byte-exact re-encode, and a real size win over the text dialect.
  EXPECT_EQ(encodeOptimizedPlan(back), bin);
  std::ostringstream text;
  writeOptimizedPlan(text, plan);
  EXPECT_LT(bin.size(), text.str().size());
}

TEST(BinaryWire, DegenerateAndReservedStrategiesRoundTripInBinary) {
  OptimizedPlan plan;
  plan.value = std::numeric_limits<double>::infinity();
  plan.surrogate = std::numeric_limits<double>::infinity();
  const OptimizedPlan back = decodeOptimizedPlan(encodeOptimizedPlan(plan));
  EXPECT_TRUE(std::isinf(back.value));
  EXPECT_TRUE(back.strategy.empty());

  // Length-prefixed strings have no reserved tokens: the "-" the text
  // dialect must reject round-trips fine in binary.
  OptimizedPlan reserved;
  reserved.strategy = "-";
  const OptimizedPlan rback =
      decodeOptimizedPlan(encodeOptimizedPlan(reserved));
  EXPECT_EQ(rback.strategy, "-");
}

TEST(BinaryWire, BinaryRejectionsAreCleanErrors) {
  const std::string req = encodePlanRequest(sampleRequest(), 2);
  // Truncation anywhere is a clean error (cut 0 = empty payload, which
  // sniffs as text and fails the text reader).
  for (std::size_t cut = 0; cut < req.size(); cut += 3) {
    EXPECT_THROW((void)decodePlanRequest(req.substr(0, cut)),
                 std::runtime_error)
        << "cut at " << cut;
  }
  // Tampered kind and version bytes, and trailing garbage.
  std::string badKind = req;
  badKind[1] = 'Z';
  EXPECT_THROW((void)decodePlanRequest(badKind), std::runtime_error);
  std::string badVersion = req;
  badVersion[2] = 99;
  EXPECT_THROW((void)decodePlanRequest(badVersion), std::runtime_error);
  EXPECT_THROW((void)decodePlanRequest(req + "x"), std::runtime_error);

  OptimizedPlan plan;
  plan.strategy = "greedy-forest";
  const std::string resp = encodeOptimizedPlan(plan);
  for (std::size_t cut = 1; cut < resp.size(); ++cut) {
    EXPECT_THROW((void)decodeOptimizedPlan(resp.substr(0, cut)),
                 std::runtime_error)
        << "cut at " << cut;
  }
  EXPECT_THROW((void)decodeOptimizedPlan(resp + "x"), std::runtime_error);
}

TEST(BinaryWire, StoreVerbsRoundTripBothDialects) {
  // GET, both dialects.
  const StoreGet g = decodeStoreGet(encodeStoreGet("some#key", false));
  EXPECT_EQ(g.key, "some#key");
  EXPECT_FALSE(g.wantPlan);
  std::ostringstream textGet;
  writeStoreGet(textGet, "k2", true);
  const StoreGet tg = decodeStoreGet(textGet.str());
  EXPECT_EQ(tg.key, "k2");
  EXPECT_TRUE(tg.wantPlan);

  // PUT and replies carry a real winner byte-exactly.
  PlanEngine engine{EngineConfig{.threads = 1}};
  PlanRequest req;
  req.app = sampleApp();
  const OptimizedPlan plan = engine.optimize(req);
  const StorePut p = decodeStorePut(encodeStorePut("key", plan));
  EXPECT_EQ(p.key, "key");
  EXPECT_EQ(p.plan.value, plan.value);
  EXPECT_EQ(graphSignature(p.plan.plan.graph),
            graphSignature(plan.plan.graph));
  EXPECT_EQ(toString(p.plan.plan.ol), toString(plan.plan.ol));

  const StoreReply hit = decodeStoreReply(encodeStoreReply(&plan, 3.25));
  EXPECT_TRUE(hit.found);
  EXPECT_EQ(hit.bound, 3.25);
  EXPECT_EQ(hit.plan.value, plan.value);
  const StoreReply miss = decodeStoreReply(
      encodeStoreReply(nullptr, std::numeric_limits<double>::infinity()));
  EXPECT_FALSE(miss.found);
  EXPECT_TRUE(std::isinf(miss.bound));

  // STATS: the binary dialect carries the io counters, text zeroes them.
  StoreStatsWire s;
  s.entries = 1;
  s.gets = 2;
  s.hits = 3;
  s.boundHits = 4;
  s.puts = 5;
  s.evictions = 6;
  s.bounds = 7;
  s.framesIn = 10;
  s.bytesIn = 1000;
  s.framesOut = 11;
  s.bytesOut = 1100;
  s.accepted = 12;
  s.refusedOverLimit = 13;
  s.idleClosed = 14;
  s.peakWriteQueueBytes = 1500;
  const StoreStatsWire back = decodeStoreStats(encodeStoreStats(s));
  EXPECT_EQ(back.entries, 1u);
  EXPECT_EQ(back.gets, 2u);
  EXPECT_EQ(back.hits, 3u);
  EXPECT_EQ(back.boundHits, 4u);
  EXPECT_EQ(back.puts, 5u);
  EXPECT_EQ(back.evictions, 6u);
  EXPECT_EQ(back.bounds, 7u);
  EXPECT_EQ(back.framesIn, 10u);
  EXPECT_EQ(back.bytesIn, 1000u);
  EXPECT_EQ(back.framesOut, 11u);
  EXPECT_EQ(back.bytesOut, 1100u);
  EXPECT_EQ(back.accepted, 12u);
  EXPECT_EQ(back.refusedOverLimit, 13u);
  EXPECT_EQ(back.idleClosed, 14u);
  EXPECT_EQ(back.peakWriteQueueBytes, 1500u);
  std::ostringstream textStats;
  writeStoreStats(textStats, s);
  const StoreStatsWire tb = decodeStoreStats(textStats.str());
  EXPECT_EQ(tb.gets, 2u);
  EXPECT_EQ(tb.framesIn, 0u);
  EXPECT_EQ(tb.bytesOut, 0u);
  EXPECT_EQ(tb.accepted, 0u);

  // A v2 block (pre-transport-ledger, 11 counters) still decodes: the new
  // counters read as zero. An upgraded client keeps reading old stores.
  binio::Writer v2body;
  for (const std::uint64_t v :
       {1u, 2u, 3u, 4u, 5u, 6u, 7u, 10u, 1000u, 11u, 1100u}) {
    v2body.u64(v);
  }
  const StoreStatsWire old = decodeStoreStats(
      binio::finishBlock(kBinStoreStatsKind, 2, v2body.take()));
  EXPECT_EQ(old.bounds, 7u);
  EXPECT_EQ(old.bytesOut, 1100u);
  EXPECT_EQ(old.accepted, 0u);
  EXPECT_EQ(old.refusedOverLimit, 0u);
  EXPECT_EQ(old.idleClosed, 0u);
  EXPECT_EQ(old.peakWriteQueueBytes, 0u);
}

TEST(BinaryWire, StoreVerbRejectionsAreCleanErrors) {
  // The wantPlan flag is the last body byte: any value above 1 is
  // malformed, never silently truthy.
  std::string badFlag = encodeStoreGet("k", true);
  badFlag.back() = 2;
  EXPECT_THROW((void)decodeStoreGet(badFlag), std::runtime_error);

  const std::string reply =
      encodeStoreReply(nullptr, std::numeric_limits<double>::infinity());
  for (std::size_t cut = 1; cut < reply.size(); ++cut) {
    EXPECT_THROW((void)decodeStoreReply(reply.substr(0, cut)),
                 std::runtime_error)
        << "cut at " << cut;
  }
  OptimizedPlan plan;
  plan.strategy = "s";
  const std::string put = encodeStorePut("key", plan);
  for (std::size_t cut = 1; cut < put.size(); cut += 2) {
    EXPECT_THROW((void)decodeStorePut(put.substr(0, cut)),
                 std::runtime_error)
        << "cut at " << cut;
  }
}

// ---- cache artifacts (binary v3 writers, frozen text readers) --------------

TEST(CacheArtifacts, ScoreCacheBinaryRoundTripAndTextMigration) {
  CandidateCache cache(0);
  cache.insert("app#sig#a", 1.5);
  cache.insert("app#sig#b", 1.0 / 3.0);
  cache.insert("zzz", -0.0);

  std::stringstream bin;
  writeCandidateCache(bin, cache);
  EXPECT_TRUE(binio::isBinary(bin.str()));
  CandidateCache binBack(0);
  readCandidateCache(bin, binBack);
  // Loading preserves LRU order, so an immediate re-save is byte-identical.
  std::stringstream bin2;
  writeCandidateCache(bin2, binBack);
  EXPECT_EQ(bin.str(), bin2.str());
  EXPECT_EQ(binBack.size(), 3u);
  EXPECT_EQ(*binBack.lookup("app#sig#b"), 1.0 / 3.0);

  // The frozen v2 text artifact still loads (migration path).
  std::stringstream text;
  writeCandidateCacheText(text, cache);
  CandidateCache textBack(0);
  readCandidateCache(text, textBack);
  EXPECT_EQ(textBack.size(), 3u);
  EXPECT_EQ(*textBack.lookup("app#sig#a"), 1.5);

  // And the binary artifact is smaller (shared-prefix keys front-code).
  EXPECT_LT(bin2.str().size(), text.str().size());
}

TEST(CacheArtifacts, ResultCacheSkipsDegenerateEntriesInBothFormats) {
  PlanEngine engine{EngineConfig{.threads = 1}};
  PlanRequest req;
  req.app = sampleApp();
  const OptimizedPlan plan = engine.optimize(req);
  ASSERT_TRUE(std::isfinite(plan.value));

  ResultCache cache(0);
  cache.insert("good", plan);
  OptimizedPlan failed;  // a failed solve: +inf value, empty strategy
  failed.value = std::numeric_limits<double>::infinity();
  cache.insert("failed", failed);

  // Binary writer: the degenerate entry never reaches the artifact.
  std::stringstream bin;
  writeResultCache(bin, cache);
  ResultCache binBack(0);
  readResultCache(bin, binBack);
  EXPECT_EQ(binBack.size(), 1u);
  EXPECT_EQ(binBack.lookup("failed"), nullptr);
  const auto entry = binBack.lookup("good");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->value, plan.value);
  EXPECT_EQ(entry->strategy, plan.strategy);
  EXPECT_EQ(graphSignature(entry->plan.graph),
            graphSignature(plan.plan.graph));
  EXPECT_EQ(toString(entry->plan.ol), toString(plan.plan.ol));

  // Text writer: the same shared filter applies, and the frozen v1 text
  // artifact loads to the identical surviving winner.
  std::stringstream text;
  writeResultCacheText(text, cache);
  ResultCache textBack(0);
  readResultCache(text, textBack);
  EXPECT_EQ(textBack.size(), 1u);
  EXPECT_EQ(textBack.lookup("failed"), nullptr);
  const auto textEntry = textBack.lookup("good");
  ASSERT_NE(textEntry, nullptr);
  EXPECT_EQ(textEntry->value, entry->value);
  EXPECT_EQ(graphSignature(textEntry->plan.graph),
            graphSignature(entry->plan.graph));
  EXPECT_EQ(toString(textEntry->plan.ol), toString(entry->plan.ol));
}

TEST(CacheArtifacts, MalformedArtifactsNameEntryAndOffset) {
  // Text score cache with a corrupt second entry: the error names which
  // entry broke and roughly where.
  std::stringstream badScore(std::string(kScoreCacheMagic) +
                             " 2\ncandidatecache 2\nentry k 1.5\n"
                             "entry j notanumber\n");
  CandidateCache cache(0);
  try {
    readCandidateCache(badScore, cache);
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("entry 2 of 2"), std::string::npos) << what;
    EXPECT_NE(what.find("byte offset"), std::string::npos) << what;
  }

  // Binary result cache truncated inside the body: the block reader
  // reports the truncation cleanly (never an over-read).
  PlanEngine engine{EngineConfig{.threads = 1}};
  PlanRequest req;
  req.app = sampleApp();
  ResultCache full(0);
  full.insert("k", engine.optimize(req));
  std::stringstream bin;
  writeResultCache(bin, full);
  const std::string blob = bin.str();
  for (const std::size_t cut :
       {blob.size() / 4, blob.size() / 2, blob.size() - 1}) {
    std::stringstream truncated(blob.substr(0, cut));
    ResultCache sink(0);
    EXPECT_THROW(readResultCache(truncated, sink), std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(CacheArtifacts, InspectArtifactSummarizesBothDialects) {
  CandidateCache cache(0);
  cache.insert("a", 1.0);
  cache.insert("b", 2.0);

  std::stringstream bin;
  writeCandidateCache(bin, cache);
  const ArtifactInfo binInfo = inspectArtifact(bin);
  EXPECT_EQ(binInfo.kind, "score-cache");
  EXPECT_TRUE(binInfo.binary);
  EXPECT_EQ(binInfo.version,
            static_cast<std::uint64_t>(kBinScoreCacheVersion));
  EXPECT_EQ(binInfo.entries, 2u);
  EXPECT_EQ(binInfo.bytes, bin.str().size());

  std::stringstream text;
  writeCandidateCacheText(text, cache);
  const ArtifactInfo textInfo = inspectArtifact(text);
  EXPECT_EQ(textInfo.kind, "score-cache");
  EXPECT_FALSE(textInfo.binary);
  EXPECT_EQ(textInfo.entries, 2u);

  std::stringstream junk("not an artifact");
  EXPECT_THROW((void)inspectArtifact(junk), std::runtime_error);
}

TEST(WireCodec, ShardSetHeaderRoundTripsAndRejects) {
  std::ostringstream os;
  writeShardSetHeader(os, 4, "result");
  std::istringstream is(os.str());
  const auto [count, kind] = readShardSetHeader(is);
  EXPECT_EQ(count, 4u);
  EXPECT_EQ(kind, "result");

  std::istringstream badMagic("bogus 1\nshards 4 result\n");
  EXPECT_THROW((void)readShardSetHeader(badMagic), std::runtime_error);
  std::istringstream badVersion(std::string(kShardSetMagic) +
                                " 99\nshards 4 result\n");
  EXPECT_THROW((void)readShardSetHeader(badVersion), std::runtime_error);
  std::istringstream badLine(std::string(kShardSetMagic) + " 1\nwhat 4\n");
  EXPECT_THROW((void)readShardSetHeader(badLine), std::runtime_error);
}

}  // namespace
}  // namespace fsw
