// The socket transport: client/host round trips over loopback TCP,
// bit-identity with serial solves, warm-cache repeats served with zero new
// orchestrations, concurrent clients, sharded backends behind the same
// socket, and the frame-level rejection discipline (garbage, truncation,
// wrong versions) — the host never misparses and never wedges.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/io/serialize.hpp"
#include "src/opt/optimizer.hpp"
#include "src/serve/plan_service.hpp"
#include "src/serve/sharded_engine.hpp"
#include "src/workload/generator.hpp"

namespace fsw {
namespace {

OptimizerOptions fastOptions() {
  OptimizerOptions opt;
  opt.exactForestMaxN = 5;
  opt.heuristics.iterations = 200;
  opt.heuristics.restarts = 2;
  opt.orchestrator.order.exactCap = 120;
  opt.orchestrator.outorder.restarts = 4;
  opt.orchestrator.outorder.bisectSteps = 4;
  return opt;
}

std::vector<PlanRequest> smallWorkload() {
  std::vector<PlanRequest> reqs;
  Prng rng(4242);
  for (const std::size_t n : {4u, 5u}) {
    WorkloadSpec spec;
    spec.n = n;
    const auto app = randomApplication(spec, rng);
    for (const CommModel m : kAllModels) {
      for (const Objective obj : {Objective::Period, Objective::Latency}) {
        reqs.push_back({app, m, obj, fastOptions()});
      }
    }
  }
  return reqs;
}

/// A raw loopback connection for protocol-violation tests.
class RawConnection {
 public:
  explicit RawConnection(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }
  ~RawConnection() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Half-close: the host sees EOF after our last frame, replies to what
  /// it already has, then closes — so drain() terminates.
  void shutdownWrite() { ::shutdown(fd_, SHUT_WR); }

  /// Reads until EOF (or `max` bytes), whatever the host sends back.
  std::string drain(std::size_t max = 1 << 20) {
    std::string out;
    char buf[4096];
    while (out.size() < max) {
      const ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
      if (got <= 0) break;
      out.append(buf, static_cast<std::size_t>(got));
    }
    return out;
  }

 private:
  int fd_ = -1;
};

TEST(PlanService, RemoteWinnersMatchSerialAndWarmRepeatsSkipAllWork) {
  const auto reqs = smallWorkload();
  ServiceHostConfig hc;
  hc.serverConfig.maxBatch = 4;
  PlanServiceHost host{hc};
  ASSERT_GT(host.port(), 0);

  RemotePlanClient client("127.0.0.1", host.port());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const OptimizedPlan remote = client.optimize(reqs[i]);
    OptimizerOptions serial = reqs[i].options;
    serial.threads = 1;
    const OptimizedPlan local =
        optimizePlan(reqs[i].app, reqs[i].model, reqs[i].objective, serial);
    EXPECT_EQ(remote.value, local.value) << "request " << i;
    EXPECT_EQ(remote.strategy, local.strategy) << "request " << i;
    EXPECT_EQ(remote.surrogate, local.surrogate) << "request " << i;
    EXPECT_EQ(graphSignature(remote.plan.graph),
              graphSignature(local.plan.graph))
        << "request " << i;
    EXPECT_EQ(remote.stats.resultCacheHits, 0u) << "request " << i;
  }

  // The acceptance bar of the serving stack: a warm-cache repeat over the
  // wire does zero new orchestrations — the far side serves it wholesale
  // from the full-result store, and the stats that cross back prove it.
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const OptimizedPlan warm = client.optimize(reqs[i]);
    EXPECT_EQ(warm.stats.resultCacheHits, 1u) << "request " << i;
    EXPECT_EQ(warm.stats.orchestrated, 0u) << "request " << i;
    EXPECT_EQ(warm.stats.generated, 0u) << "request " << i;
  }

  const auto cs = client.stats();
  EXPECT_EQ(cs.submitted, 2 * reqs.size());
  EXPECT_EQ(cs.served, 2 * reqs.size());
  EXPECT_EQ(cs.failed, 0u);
  const auto hs = host.stats();
  EXPECT_EQ(hs.requests, 2 * reqs.size());
  EXPECT_EQ(hs.errors, 0u);
}

TEST(PlanService, ConcurrentClientsOverShardedBackendStayBitIdentical) {
  const auto reqs = smallWorkload();

  std::vector<OptimizedPlan> expected;
  for (const auto& r : reqs) {
    OptimizerOptions serial = r.options;
    serial.threads = 1;
    expected.push_back(optimizePlan(r.app, r.model, r.objective, serial));
  }

  ShardedPlanEngine sharded{ShardedEngineConfig{.shards = 2}};
  ServiceHostConfig hc;
  hc.serverConfig.solver = &sharded;
  hc.serverConfig.maxBatch = 4;
  hc.serverConfig.drainThreads = 2;
  PlanServiceHost host{hc};

  const std::size_t kClients = 3;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        RemotePlanClient client("127.0.0.1", host.port());
        for (std::size_t i = 0; i < reqs.size(); ++i) {
          const std::size_t j = (i + c * 5) % reqs.size();
          const OptimizedPlan remote = client.optimize(reqs[j]);
          if (remote.value != expected[j].value ||
              remote.strategy != expected[j].strategy) {
            failures[c] = "client " + std::to_string(c) + " diverged on " +
                          std::to_string(j);
            return;
          }
        }
      } catch (const std::exception& e) {
        failures[c] = e.what();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& failure : failures) EXPECT_EQ(failure, "");

  const auto stats = sharded.stats();
  EXPECT_GT(stats.requests, 0u);
  EXPECT_EQ(stats.perShard.size(), 2u);
}

TEST(PlanService, PriorityAndPortfolioTravel) {
  ServiceHostConfig hc;
  PlanServiceHost host{hc};
  RemotePlanClient client("127.0.0.1", host.port());

  PlanRequest req;
  req.app.addService(2.0, 0.5);
  req.app.addService(1.0, 0.8);
  req.options = fastOptions();

  // An urgent submit and an explicit built-in portfolio both round-trip.
  const OptimizedPlan urgent = client.optimize(req, /*priority=*/5);
  EXPECT_TRUE(urgent.value > 0.0);
  req.options.registry = &CandidateRegistry::builtin();
  const OptimizedPlan viaName = client.optimize(req);
  EXPECT_EQ(viaName.value, urgent.value);
  EXPECT_EQ(viaName.strategy, urgent.strategy);
  // The builtin name canonicalizes to the same requestKey, so the second
  // call is a remote result-cache hit.
  EXPECT_EQ(viaName.stats.resultCacheHits, 1u);

  // A portfolio the host cannot resolve is a remote error, not a hang.
  CandidateRegistry unknown = CandidateRegistry::makeBuiltin();
  unknown.setName("nobody-registered-this");
  req.options.registry = &unknown;
  EXPECT_THROW((void)client.optimize(req), RemotePlanError);
  EXPECT_GT(host.stats().errors, 0u);

  // A custom resolver serves named portfolios of its choosing.
  CandidateRegistry custom = CandidateRegistry::makeBuiltin();
  custom.setName("prod-portfolio");
  ServiceHostConfig rc;
  rc.resolvePortfolio = [&](const std::string& name) {
    return name == "prod-portfolio" ? &custom : nullptr;
  };
  PlanServiceHost resolvingHost{rc};
  RemotePlanClient resolvingClient("127.0.0.1", resolvingHost.port());
  req.options.registry = &custom;
  const OptimizedPlan viaResolver = resolvingClient.optimize(req);
  EXPECT_EQ(viaResolver.value, urgent.value);

  // Installing a resolver must not revoke the built-in fallback: a
  // request naming "builtin" still resolves even though the resolver
  // returns nullptr for it.
  req.options.registry = &CandidateRegistry::builtin();
  const OptimizedPlan builtinFallback = resolvingClient.optimize(req);
  EXPECT_EQ(builtinFallback.value, urgent.value);
}

TEST(PlanService, GarbageBytesDropTheConnectionAndTheHostSurvives) {
  ServiceHostConfig hc;
  PlanServiceHost host{hc};

  {
    RawConnection raw(host.port());
    raw.send("this is definitely not a frame header at all............");
    EXPECT_EQ(raw.drain(), "");  // dropped without a reply
  }

  // A truncated frame (the header promises more payload than arrives)
  // is dropped too once the writer half-closes.
  {
    RawConnection raw(host.port());
    std::string frame = encodeFrame(FrameType::Request, "only-a-fragment");
    frame.resize(frame.size() - 4);
    raw.send(frame);
    raw.shutdownWrite();  // the host's recv sees EOF mid-payload
    EXPECT_EQ(raw.drain(), "");
  }

  // The host still serves real clients afterwards.
  RemotePlanClient client("127.0.0.1", host.port());
  PlanRequest req;
  req.app.addService(2.0, 0.5);
  req.app.addService(1.0, 0.8);
  req.options = fastOptions();
  const OptimizedPlan plan = client.optimize(req);
  EXPECT_TRUE(plan.value > 0.0);
  EXPECT_GE(host.stats().errors, 1u);
}

TEST(PlanService, WrongFrameVersionGetsAnErrorFrameThenTheBoot) {
  ServiceHostConfig hc;
  PlanServiceHost host{hc};
  RawConnection raw(host.port());

  std::ostringstream payload;
  PlanRequest req;
  req.app.addService(1.0, 0.5);
  writePlanRequest(payload, req);
  std::string frame = encodeFrame(FrameType::Request, payload.str());
  frame[4] = static_cast<char>(kFrameVersion + 1);  // the version byte
  raw.send(frame);

  const std::string reply = raw.drain();
  ASSERT_GE(reply.size(), 10u);  // one error frame, then EOF
  EXPECT_EQ(reply.compare(0, 4, kFrameMagic, 4), 0);
  EXPECT_EQ(reply[5], static_cast<char>(FrameType::Error));
  EXPECT_NE(reply.find("unsupported frame version"), std::string::npos);
}

TEST(PlanService, MalformedPayloadGetsAnErrorFrameAndTheConnectionLives) {
  ServiceHostConfig hc;
  PlanServiceHost host{hc};
  RawConnection raw(host.port());

  // A well-framed request whose payload fails the codec's magic check:
  // answered with an error frame, and the stream stays in sync...
  raw.send(encodeFrame(FrameType::Request, "not a codec payload"));
  // ...so a valid request on the SAME connection still gets a result.
  std::ostringstream payload;
  PlanRequest req;
  req.app.addService(2.0, 0.5);
  req.app.addService(1.0, 0.8);
  req.options = fastOptions();
  writePlanRequest(payload, req);
  raw.send(encodeFrame(FrameType::Request, payload.str()));
  raw.shutdownWrite();

  const std::string replies = raw.drain(1 << 16);
  ASSERT_GE(replies.size(), 20u);
  EXPECT_EQ(replies[5], static_cast<char>(FrameType::Error));
  // Locate the second frame behind the first frame's payload length.
  std::uint32_t len = 0;
  for (std::size_t i = 6; i < 10; ++i) {
    len = (len << 8) | static_cast<std::uint8_t>(replies[i]);
  }
  const std::size_t second = 10 + len;
  ASSERT_GE(replies.size(), second + 10);
  EXPECT_EQ(replies[second + 5], static_cast<char>(FrameType::Result));
  std::istringstream decoded(replies.substr(second + 10));
  const OptimizedPlan plan = readOptimizedPlan(decoded);
  EXPECT_TRUE(plan.value > 0.0);
}

TEST(PlanService, TruncatedResultFrameFailsTheFutureCleanly) {
  // A fake host that reads one request frame, answers with a *truncated*
  // result frame (the header promises more payload than is sent), then
  // closes. The client future must fail with a clean transport error —
  // no hang, and never a misparsed plan.
  const auto listener = frameio::listenLoopback(0, "fake host");
  const int listenFd = listener.fd;
  const std::uint16_t port = listener.port;

  std::thread fakeHost([listenFd] {
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) return;
    // Consume the request frame: 10-byte header, then its payload length.
    char header[10];
    std::size_t got = 0;
    while (got < sizeof(header)) {
      const ssize_t r = ::recv(fd, header + got, sizeof(header) - got, 0);
      if (r <= 0) break;
      got += static_cast<std::size_t>(r);
    }
    std::uint32_t len = 0;
    for (std::size_t i = 6; i < 10; ++i) {
      len = (len << 8) | static_cast<std::uint8_t>(header[i]);
    }
    std::vector<char> payload(len);
    std::size_t gotPayload = 0;
    while (gotPayload < len) {
      const ssize_t r =
          ::recv(fd, payload.data() + gotPayload, len - gotPayload, 0);
      if (r <= 0) break;
      gotPayload += static_cast<std::size_t>(r);
    }
    // A result frame whose header promises far more payload than follows.
    std::string frame =
        encodeFrame(FrameType::Result, "fswplanresp 1\nplan 1 1 chain\n");
    frame.resize(frame.size() / 2);
    (void)::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
    ::close(fd);
  });

  RemotePlanClient client("127.0.0.1", port);
  PlanRequest req;
  req.app.addService(2.0, 0.5);
  req.app.addService(1.0, 0.8);
  req.options = fastOptions();
  auto future = client.submit(req);
  bool threw = false;
  try {
    (void)future.get();
  } catch (const RemotePlanError& e) {
    threw = true;
    EXPECT_TRUE(e.transport());  // a stream failure, retryable elsewhere
  }
  EXPECT_TRUE(threw);
  EXPECT_EQ(client.stats().failed, 1u);
  EXPECT_EQ(client.stats().served, 0u);

  fakeHost.join();
  ::close(listenFd);
}

TEST(PlanService, DesynchronizedStreamFailsSubsequentSubmitsFast) {
  // A host that answers with garbage (bad magic) but keeps the connection
  // open: the first future fails with a transport error, and — because a
  // broken stream can never be resynchronized — every LATER submit on the
  // same client must fail fast too, not block on the dead fd.
  const auto listener = frameio::listenLoopback(0, "fake host");
  const int listenFd = listener.fd;

  std::promise<void> replied;
  std::thread fakeHost([listenFd, &replied] {
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) return;
    const char garbage[16] = "no frame here..";
    (void)::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL);
    replied.set_value();
    // Stay open and silent: drain whatever else arrives until the client
    // gives up and closes.
    char buf[4096];
    while (::recv(fd, buf, sizeof(buf), 0) > 0) {
    }
    ::close(fd);
  });

  RemotePlanClient client("127.0.0.1", listener.port);
  PlanRequest req;
  req.app.addService(2.0, 0.5);
  req.options = fastOptions();
  replied.get_future().wait();
  EXPECT_THROW((void)client.optimize(req), RemotePlanError);
  // The poisoned stream fails the next submit promptly instead of
  // hanging in recv on bytes that will never align.
  EXPECT_THROW((void)client.optimize(req), RemotePlanError);
  EXPECT_EQ(client.stats().failed, 2u);

  client.close();
  fakeHost.join();
  ::close(listenFd);
}

TEST(PlanService, ClientCloseFailsPendingAndRejectsNewSubmits) {
  ServiceHostConfig hc;
  PlanServiceHost host{hc};
  auto client =
      std::make_unique<RemotePlanClient>("127.0.0.1", host.port());
  client->close();

  PlanRequest req;
  req.app.addService(1.0, 0.5);
  auto future = client->submit(req);
  EXPECT_THROW((void)future.get(), RemotePlanError);
}

TEST(PlanService, HostStopUnblocksClients) {
  auto host = std::make_unique<PlanServiceHost>(ServiceHostConfig{});
  RemotePlanClient client("127.0.0.1", host->port());
  host->stop();

  PlanRequest req;
  req.app.addService(1.0, 0.5);
  req.options = fastOptions();
  // The connection is gone: the future fails with a transport error
  // instead of hanging.
  auto future = client.submit(req);
  EXPECT_THROW((void)future.get(), RemotePlanError);
}

TEST(PlanService, ByteCountersTrackRequestTraffic) {
  PlanServiceHost host{ServiceHostConfig{}};
  RemotePlanClient client("127.0.0.1", host.port());
  const PlanRequest req = smallWorkload().front();
  (void)client.optimize(req);

  // Both ends kept a ledger, and they agree byte for byte: one request
  // frame in, one result frame out, headers included.
  const auto cs = client.stats();
  EXPECT_GT(cs.bytesSent, 0u);
  EXPECT_GT(cs.bytesReceived, 0u);
  const auto hs = host.stats();
  EXPECT_EQ(hs.framesIn, 1u);
  EXPECT_EQ(hs.framesOut, 1u);
  EXPECT_EQ(hs.bytesIn, cs.bytesSent);
  EXPECT_EQ(hs.bytesOut, cs.bytesReceived);
}

TEST(PlanService, IoTimeoutBoundsABlackHoledHost) {
  // A listener that never accepts: connects complete into the kernel's
  // backlog and the request frame buffers, but no reply ever comes — the
  // SIGSTOP/partition shape that error codes alone cannot surface. The
  // regression this pins: RemotePlanClient used to open its socket
  // without any I/O deadline, so this recv blocked forever.
  const frameio::Listener blackhole =
      frameio::listenLoopback(0, "blackhole-test");

  RemotePlanClient client("127.0.0.1", blackhole.port,
                          /*ioTimeoutMs=*/300);
  const PlanRequest req = smallWorkload().front();
  const auto start = std::chrono::steady_clock::now();
  auto future = client.submit(req);
  bool transport = false;
  try {
    (void)future.get();
  } catch (const RemotePlanError& e) {
    transport = e.transport();
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  // Transport-class (retryable by a router), and bounded by the timeout
  // plus scheduling slack — not the kernel's multi-minute TCP patience.
  EXPECT_TRUE(transport);
  EXPECT_GE(elapsed.count(), 250);
  EXPECT_LT(elapsed.count(), 5000);
  client.close();
  frameio::closeFd(blackhole.fd);
}

}  // namespace
}  // namespace fsw
