#include <gtest/gtest.h>

#include "src/core/cost_model.hpp"
#include "src/oplist/validate.hpp"
#include "src/opt/forest_search.hpp"
#include "src/opt/optimizer.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_instances.hpp"

namespace fsw {
namespace {

OptimizerOptions fastOptions() {
  OptimizerOptions opt;
  opt.exactForestMaxN = 5;
  opt.heuristics.iterations = 800;
  opt.heuristics.restarts = 2;
  opt.orchestrator.order.exactCap = 200;
  opt.orchestrator.outorder.restarts = 8;
  opt.orchestrator.outorder.bisectSteps = 6;
  return opt;
}

TEST(Optimizer, ReturnsValidPlansForAllModelsAndObjectives) {
  Prng rng(9);
  WorkloadSpec spec;
  spec.n = 5;
  const auto app = randomApplication(spec, rng);
  for (const CommModel m : kAllModels) {
    for (const Objective obj : {Objective::Period, Objective::Latency}) {
      const auto r = optimizePlan(app, m, obj, fastOptions());
      ASSERT_EQ(r.plan.graph.size(), app.size()) << name(m) << name(obj);
      const auto rep = validate(app, r.plan.graph, r.plan.ol, m);
      EXPECT_TRUE(rep.valid) << name(m) << "/" << name(obj) << ": "
                             << rep.summary();
      EXPECT_GT(r.value, 0.0);
      EXPECT_FALSE(r.strategy.empty());
    }
  }
}

TEST(Optimizer, B1FindsTheCommAwareShape) {
  // On the B.1 application the optimizer must avoid the naive chain and get
  // close to the optimal period of 100 (the chain plan costs ~200).
  const auto pi = counterexampleB1();
  OptimizerOptions opt;
  opt.exactForestMaxN = 0;  // 202 services: heuristics only
  opt.heuristics.iterations = 3000;
  opt.heuristics.restarts = 1;
  const auto r = optimizePlan(pi.app, CommModel::Overlap, Objective::Period,
                              opt);
  EXPECT_LT(r.value, 140.0);
}

TEST(Optimizer, PeriodValueAtLeastSurrogate) {
  Prng rng(10);
  WorkloadSpec spec;
  spec.n = 6;
  const auto app = randomApplication(spec, rng);
  const auto r =
      optimizePlan(app, CommModel::Overlap, Objective::Period, fastOptions());
  // OVERLAP orchestration achieves the surrogate exactly on the same graph.
  const CostModel cm(app, r.plan.graph);
  EXPECT_NEAR(r.value, cm.periodLowerBound(CommModel::Overlap), 1e-9);
}

TEST(Optimizer, RespectsPrecedences) {
  Prng rng(11);
  WorkloadSpec spec;
  spec.n = 5;
  spec.precedenceDensity = 0.3;
  const auto app = randomApplication(spec, rng);
  const auto r =
      optimizePlan(app, CommModel::Overlap, Objective::Period, fastOptions());
  EXPECT_TRUE(r.plan.graph.respects(app));
}

TEST(Optimizer, SmallInstanceMatchesExactForest) {
  Prng rng(12);
  for (int trial = 0; trial < 5; ++trial) {
    WorkloadSpec spec;
    spec.n = 4;
    const auto app = randomApplication(spec, rng);
    const auto r = optimizePlan(app, CommModel::Overlap, Objective::Period,
                                fastOptions());
    const auto exact = exactForestMinPeriod(app, CommModel::Overlap);
    EXPECT_NEAR(r.value, exact.value, 1e-6) << "trial " << trial;
  }
}

}  // namespace
}  // namespace fsw
