// The epoll reactor transport (PR 8): slow-loris connections reaped by
// the idle timer while the host stays healthy, the accept gate refusing
// over-limit connections with a clean error frame, backpressure on a
// stalling reader flushing every pipelined reply without corrupting
// frame boundaries, graceful drain delivering in-flight replies through
// stop(), and the legacy thread-per-connection transport serving
// bit-identical winners through the same handler path.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/io/serialize.hpp"
#include "src/opt/optimizer.hpp"
#include "src/serve/plan_engine.hpp"
#include "src/serve/plan_service.hpp"
#include "src/serve/result_store.hpp"

namespace fsw {
namespace {

OptimizerOptions fastOptions() {
  OptimizerOptions opt;
  opt.exactForestMaxN = 5;
  opt.heuristics.iterations = 200;
  opt.heuristics.restarts = 2;
  opt.orchestrator.order.exactCap = 120;
  opt.orchestrator.outorder.restarts = 4;
  opt.orchestrator.outorder.bisectSteps = 4;
  return opt;
}

PlanRequest smallRequest(double seed = 2.0) {
  PlanRequest req;
  req.app.addService(seed, 0.5);
  req.app.addService(1.0, 0.8);
  req.app.addService(3.0, 0.4);
  req.options = fastOptions();
  return req;
}

/// A raw loopback connection with byte-level control (trickle, pipelining,
/// tiny receive buffers) for transport tests.
class RawConnection {
 public:
  explicit RawConnection(std::uint16_t port, int rcvBuf = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    if (rcvBuf > 0) {
      // Before connect: the window is negotiated at handshake time.
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvBuf, sizeof(rcvBuf));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }
  ~RawConnection() { closeNow(); }

  void closeNow() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  /// False when the peer already closed on us (the reaped-loris case).
  bool trySend(const std::string& bytes) {
    return ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(bytes.size());
  }

  void send(const std::string& bytes) { ASSERT_TRUE(trySend(bytes)); }

  void shutdownWrite() { ::shutdown(fd_, SHUT_WR); }

  /// One blocking read; empty on EOF/error.
  std::string recvSome() {
    char buf[4096];
    const ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
    return got > 0 ? std::string(buf, static_cast<std::size_t>(got))
                   : std::string();
  }

  /// Reads until EOF (or `max` bytes), whatever the host sends back.
  std::string drain(std::size_t max = 64u << 20) {
    std::string out;
    char buf[65536];
    while (out.size() < max) {
      const ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
      if (got <= 0) break;
      out.append(buf, static_cast<std::size_t>(got));
    }
    return out;
  }

 private:
  int fd_ = -1;
};

/// Splits a raw byte stream into frames, failing on any malformed header
/// — the test-side proof that a stressed host never corrupts boundaries.
std::vector<frameio::Frame> parseStream(const std::string& bytes) {
  std::vector<frameio::Frame> frames;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    EXPECT_GE(bytes.size() - pos, frameio::kFrameHeaderSize)
        << "truncated header at offset " << pos;
    if (bytes.size() - pos < frameio::kFrameHeaderSize) break;
    EXPECT_EQ(std::memcmp(bytes.data() + pos, kFrameMagic, 4), 0)
        << "bad magic at offset " << pos;
    EXPECT_EQ(static_cast<std::uint8_t>(bytes[pos + 4]), kFrameVersion);
    frameio::Frame f;
    f.type = static_cast<FrameType>(bytes[pos + 5]);
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len = (len << 8) | static_cast<std::uint8_t>(bytes[pos + 6 + i]);
    }
    EXPECT_GE(bytes.size() - pos - frameio::kFrameHeaderSize, len)
        << "truncated payload at offset " << pos;
    if (bytes.size() - pos - frameio::kFrameHeaderSize < len) break;
    f.payload = bytes.substr(pos + frameio::kFrameHeaderSize, len);
    frames.push_back(std::move(f));
    pos += frameio::kFrameHeaderSize + len;
  }
  return frames;
}

TEST(ServingTransport, SlowLorisIsReapedAndTheHostStaysHealthy) {
  ResultStoreConfig rc;
  rc.transport.idleTimeoutMs = 200;
  ResultStoreHost store{rc};

  // Trickle a valid request header one byte at a time: each byte arrives
  // well inside any per-byte timeout, but no *complete frame* ever forms,
  // so the idle clock never refreshes and the timer wheel reaps the
  // connection like a silent peer.
  RawConnection loris(store.port());
  const std::string frame = encodeFrame(FrameType::StoreStats, "");
  bool reaped = false;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < frame.size() && !reaped; ++i) {
    if (!loris.trySend(frame.substr(i, 1))) reaped = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }
  // The send side can outlive the close by one buffered byte; the read
  // side is definitive: a reaped connection drains to EOF.
  EXPECT_EQ(loris.drain(), "");
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 5000) << "reap took implausibly long";
  EXPECT_GE(store.stats().idleClosed, 1u);

  // The host is unharmed: a well-behaved client round-trips normally.
  RemoteResultStore client("127.0.0.1", store.port());
  const StoreStatsWire remote = client.remoteStats();
  EXPECT_GE(remote.idleClosed, 1u);
  EXPECT_GE(remote.accepted, 2u);
}

TEST(ServingTransport, OverLimitConnectionsAreRefusedWithACleanError) {
  ResultStoreConfig rc;
  rc.transport.maxConnections = 2;
  ResultStoreHost store{rc};

  auto first = std::make_unique<RawConnection>(store.port());
  RawConnection second(store.port());
  // Prove both slots are actually held (a full round trip each) before
  // probing the gate — connect() alone can race the host's accept.
  for (RawConnection* held : {first.get(), &second}) {
    held->send(encodeFrame(FrameType::StoreStats, ""));
    ASSERT_FALSE(held->recvSome().empty());
  }

  RawConnection refused(store.port());
  const std::vector<frameio::Frame> frames = parseStream(refused.drain());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::Error);
  EXPECT_NE(frames[0].payload.find("capacity"), std::string::npos);
  EXPECT_EQ(store.stats().refusedOverLimit, 1u);

  // Releasing a held slot re-opens the gate (the loop processes the close
  // asynchronously, so poll briefly).
  first->closeNow();
  first.reset();
  bool admitted = false;
  for (int attempt = 0; attempt < 100 && !admitted; ++attempt) {
    RawConnection probe(store.port());
    probe.send(encodeFrame(FrameType::StoreStats, ""));
    probe.shutdownWrite();
    const std::vector<frameio::Frame> got = parseStream(probe.drain());
    admitted = got.size() == 1 && got[0].type == FrameType::Result;
    if (!admitted) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(admitted) << "slot never freed after the held conn closed";
}

TEST(ServingTransport, BackpressureFlushesPipelinedRepliesUncorrupted) {
  const PlanRequest req = smallRequest();
  OptimizerOptions serial = req.options;
  serial.threads = 1;
  const OptimizedPlan plan =
      optimizePlan(req.app, req.model, req.objective, serial);
  const std::string key = PlanEngine::requestKey(req);

  ResultStoreConfig rc;
  rc.transport.writeQueueCap = 16u << 10;  // far below the reply burst
  ResultStoreHost store{rc};
  store.results().insert(key, plan);

  // A reader with a tiny receive window sends one burst of pipelined GETs
  // and stalls: replies overflow the socket into the bounded write queue,
  // reads park at the cap, and the EPOLLOUT flush path drains everything
  // once we start reading. Every boundary must survive.
  constexpr std::size_t kGets = 128;
  RawConnection slow(store.port(), /*rcvBuf=*/4096);
  std::string burst;
  for (std::size_t i = 0; i < kGets; ++i) {
    burst += encodeFrame(FrameType::StoreGet, encodeStoreGet(key));
  }
  slow.send(burst);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  slow.shutdownWrite();

  const std::vector<frameio::Frame> frames = parseStream(slow.drain());
  ASSERT_EQ(frames.size(), kGets);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].type, FrameType::Result) << "reply " << i;
    const StoreReply reply = decodeStoreReply(frames[i].payload);
    ASSERT_TRUE(reply.found) << "reply " << i;
    EXPECT_EQ(reply.plan.value, plan.value) << "reply " << i;
    EXPECT_EQ(graphSignature(reply.plan.plan.graph),
              graphSignature(plan.plan.graph))
        << "reply " << i;
  }
  const auto stats = store.stats();
  EXPECT_EQ(stats.gets, kGets);
  EXPECT_EQ(stats.hits, kGets);
  EXPECT_GT(stats.peakWriteQueueBytes, 0u);
}

TEST(ServingTransport, GracefulStopDeliversTheInFlightReply) {
  const PlanRequest req = smallRequest(4.0);
  OptimizerOptions serial = req.options;
  serial.threads = 1;
  const OptimizedPlan expected =
      optimizePlan(req.app, req.model, req.objective, serial);

  auto host = std::make_unique<PlanServiceHost>(ServiceHostConfig{});
  const std::uint16_t port = host->port();
  RemotePlanClient client("127.0.0.1", port);
  std::future<OptimizedPlan> future = client.submit(req);
  // Wait until the request frame is parsed (the handler owns it from
  // there), then stop: drain must finish the solve and flush the reply.
  while (host->stats().framesIn == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  host->stop();
  const OptimizedPlan got = future.get();
  EXPECT_EQ(got.value, expected.value);
  EXPECT_EQ(got.strategy, expected.strategy);
  EXPECT_EQ(graphSignature(got.plan.graph), graphSignature(expected.plan.graph));
  host.reset();

  // The port no longer serves: a fresh client cannot complete a round
  // trip (the connect may still land on TIME_WAIT leftovers, so probe the
  // full RPC, which cannot succeed against a stopped host).
  EXPECT_THROW(
      {
        RemotePlanClient late("127.0.0.1", port, /*ioTimeoutMs=*/500);
        (void)late.optimize(req);
      },
      std::exception);
}

TEST(ServingTransport, LegacyTransportServesIdenticalWinnersAndGates) {
  const PlanRequest req = smallRequest(6.0);
  OptimizerOptions serial = req.options;
  serial.threads = 1;
  const OptimizedPlan expected =
      optimizePlan(req.app, req.model, req.objective, serial);

  ServiceHostConfig hc;
  hc.transport.mode = frameio::TransportMode::ThreadPerConnection;
  hc.transport.maxConnections = 1;
  PlanServiceHost host{hc};

  RemotePlanClient client("127.0.0.1", host.port());
  const OptimizedPlan got = client.optimize(req);
  EXPECT_EQ(got.value, expected.value);
  EXPECT_EQ(got.strategy, expected.strategy);
  EXPECT_EQ(graphSignature(got.plan.graph), graphSignature(expected.plan.graph));

  // The accept gate is transport-independent: with the client holding the
  // only slot, a second connection is refused with the same error frame.
  RawConnection refused(host.port());
  const std::vector<frameio::Frame> frames = parseStream(refused.drain());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::Error);
  EXPECT_NE(frames[0].payload.find("capacity"), std::string::npos);
  const auto stats = host.stats();
  EXPECT_EQ(stats.refusedOverLimit, 1u);
  EXPECT_EQ(stats.requests, 1u);
}

TEST(ServingTransport, ReactorKeepsPipeliningBelowTheParkingCaps) {
  // A well-behaved pipelined store client (window 8) against reactor
  // defaults: parking caps must never wedge a reader that drains its
  // replies — the getMany window is below maxPipelinedFrames by design.
  const PlanRequest req = smallRequest(8.0);
  OptimizerOptions serial = req.options;
  serial.threads = 1;
  const OptimizedPlan plan =
      optimizePlan(req.app, req.model, req.objective, serial);

  ResultStoreHost store{ResultStoreConfig{}};
  RemoteResultStore client("127.0.0.1", store.port());
  std::vector<std::string> keys;
  std::vector<const OptimizedPlan*> plans;
  for (int i = 0; i < 64; ++i) {
    keys.push_back("key-" + std::to_string(i));
    plans.push_back(&plan);
  }
  client.putMany(keys, plans);
  const std::vector<RemoteResultStore::Lookup> got = client.getMany(keys);
  ASSERT_EQ(got.size(), keys.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NE(got[i].plan, nullptr) << "key " << i;
    EXPECT_EQ(got[i].plan->value, plan.value) << "key " << i;
  }
  EXPECT_EQ(client.stats().failures, 0u);
  EXPECT_EQ(store.stats().puts, keys.size());
}

}  // namespace
}  // namespace fsw
