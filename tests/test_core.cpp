#include <gtest/gtest.h>

#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"
#include "src/core/model.hpp"

namespace fsw {
namespace {

TEST(Application, AddServiceAssignsIdsAndDefaultNames) {
  Application app;
  EXPECT_EQ(app.addService(1.0, 0.5), 0u);
  EXPECT_EQ(app.addService(2.0, 1.5, "mine"), 1u);
  EXPECT_EQ(app.service(0).name, "C1");
  EXPECT_EQ(app.service(1).name, "mine");
  EXPECT_EQ(app.size(), 2u);
}

TEST(Application, RejectsNegativeParameters) {
  Application app;
  EXPECT_THROW(app.addService(-1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(app.addService(1.0, -0.5), std::invalid_argument);
}

TEST(Application, FilterExpanderClassification) {
  Application app;
  app.addService(1.0, 0.5);
  app.addService(1.0, 1.0);
  app.addService(1.0, 2.0);
  EXPECT_TRUE(app.service(0).isFilter());
  EXPECT_FALSE(app.service(1).isFilter());
  EXPECT_FALSE(app.service(1).isExpander());
  EXPECT_TRUE(app.service(2).isExpander());
}

TEST(Application, PrecedenceValidation) {
  Application app;
  app.addService(1.0, 1.0);
  app.addService(1.0, 1.0);
  app.addService(1.0, 1.0);
  app.addPrecedence(0, 1);
  app.addPrecedence(1, 2);
  EXPECT_THROW(app.addPrecedence(2, 0), std::invalid_argument);  // cycle
  EXPECT_THROW(app.addPrecedence(0, 0), std::invalid_argument);  // self
  EXPECT_THROW(app.addPrecedence(0, 9), std::invalid_argument);  // range
}

TEST(Application, RejectsDuplicatePrecedences) {
  // Regression: duplicates used to be inserted twice, inflating precSucc_
  // and every precedences() consumer.
  Application app;
  app.addService(1.0, 1.0);
  app.addService(1.0, 1.0);
  app.addPrecedence(0, 1);
  EXPECT_THROW(app.addPrecedence(0, 1), std::invalid_argument);
  EXPECT_EQ(app.precedences().size(), 1u);
  // The transitive relation (1 reaches via another edge) is not a duplicate.
  app.addService(1.0, 1.0);
  app.addPrecedence(1, 2);
  app.addPrecedence(0, 2);  // parallel to the 0->1->2 path: allowed
  EXPECT_EQ(app.precedences().size(), 3u);
}

TEST(Application, MustPrecedeIsTransitive) {
  Application app;
  for (int i = 0; i < 4; ++i) app.addService(1.0, 1.0);
  app.addPrecedence(0, 1);
  app.addPrecedence(1, 2);
  EXPECT_TRUE(app.mustPrecede(0, 2));
  EXPECT_FALSE(app.mustPrecede(2, 0));
  EXPECT_FALSE(app.mustPrecede(0, 3));
  EXPECT_FALSE(app.mustPrecede(1, 1));
}

TEST(Application, TopologicalOrderRespectsPrecedences) {
  Application app;
  for (int i = 0; i < 4; ++i) app.addService(1.0, 1.0);
  app.addPrecedence(3, 0);
  app.addPrecedence(0, 2);
  const auto order = app.topologicalOrder();
  std::vector<std::size_t> pos(4);
  for (std::size_t k = 0; k < order.size(); ++k) pos[order[k]] = k;
  EXPECT_LT(pos[3], pos[0]);
  EXPECT_LT(pos[0], pos[2]);
}

TEST(ExecutionGraph, AddEdgeValidation) {
  ExecutionGraph g(3);
  g.addEdge(0, 1);
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_THROW(g.addEdge(0, 1), std::invalid_argument);  // duplicate
  EXPECT_THROW(g.addEdge(1, 1), std::invalid_argument);  // self loop
  EXPECT_THROW(g.addEdge(0, 7), std::invalid_argument);  // range
  g.addEdge(1, 2);
  EXPECT_THROW(g.addEdge(2, 0), std::invalid_argument);  // cycle
}

TEST(ExecutionGraph, EntriesAndExits) {
  ExecutionGraph g(4);
  g.addEdge(0, 1);
  g.addEdge(0, 2);
  g.addEdge(1, 3);
  g.addEdge(2, 3);
  EXPECT_EQ(g.entries(), std::vector<NodeId>{0});
  EXPECT_EQ(g.exits(), std::vector<NodeId>{3});
  EXPECT_TRUE(g.isEntry(0));
  EXPECT_TRUE(g.isExit(3));
  EXPECT_FALSE(g.isExit(1));
}

TEST(ExecutionGraph, TopologicalOrderOfDiamond) {
  ExecutionGraph g(4);
  g.addEdge(0, 1);
  g.addEdge(0, 2);
  g.addEdge(1, 3);
  g.addEdge(2, 3);
  const auto topo = g.topologicalOrder();
  EXPECT_EQ(topo.front(), 0u);
  EXPECT_EQ(topo.back(), 3u);
}

TEST(ExecutionGraph, AncestorClosureOfDiamond) {
  ExecutionGraph g(4);
  g.addEdge(0, 1);
  g.addEdge(0, 2);
  g.addEdge(1, 3);
  g.addEdge(2, 3);
  const auto anc = g.ancestorClosure();
  EXPECT_TRUE(anc[3][0]);
  EXPECT_TRUE(anc[3][1]);
  EXPECT_TRUE(anc[3][2]);
  EXPECT_FALSE(anc[3][3]);
  EXPECT_TRUE(anc[1][0]);
  EXPECT_FALSE(anc[0][1]);
}

TEST(ExecutionGraph, RespectsPrecedencesViaTransitiveClosure) {
  Application app;
  for (int i = 0; i < 3; ++i) app.addService(1.0, 1.0);
  app.addPrecedence(0, 2);
  // 0 -> 1 -> 2 contains 0 -> 2 in its transitive closure.
  ExecutionGraph chain(3);
  chain.addEdge(0, 1);
  chain.addEdge(1, 2);
  EXPECT_TRUE(chain.respects(app));
  // 2 -> 0 -> 1 does not.
  ExecutionGraph bad(3);
  bad.addEdge(2, 0);
  bad.addEdge(0, 1);
  EXPECT_FALSE(bad.respects(app));
}

TEST(ExecutionGraph, ForestAndChainPredicates) {
  ExecutionGraph forest(4);
  forest.addEdge(0, 1);
  forest.addEdge(0, 2);
  EXPECT_TRUE(forest.isForest());
  EXPECT_FALSE(forest.isChain());

  const auto chain = ExecutionGraph::chain({2, 0, 1, 3});
  EXPECT_TRUE(chain.isChain());
  EXPECT_TRUE(chain.isForest());

  ExecutionGraph dag(3);
  dag.addEdge(0, 2);
  dag.addEdge(1, 2);
  EXPECT_FALSE(dag.isForest());
}

TEST(ExecutionGraph, FromParentsBuildsForest) {
  const std::vector<NodeId> parent = {kNoNode, 0, 0, 2};
  const auto g = ExecutionGraph::fromParents(parent);
  EXPECT_TRUE(g.isForest());
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(0, 2));
  EXPECT_TRUE(g.hasEdge(2, 3));
  EXPECT_EQ(g.edgeCount(), 3u);
}

TEST(ExecutionGraph, EqualityIgnoresEdgeOrder) {
  ExecutionGraph a(3);
  a.addEdge(0, 1);
  a.addEdge(0, 2);
  ExecutionGraph b(3);
  b.addEdge(0, 2);
  b.addEdge(0, 1);
  EXPECT_EQ(a, b);
  ExecutionGraph c(3);
  c.addEdge(1, 2);
  EXPECT_FALSE(a == c);
}

TEST(Model, Names) {
  EXPECT_EQ(name(CommModel::Overlap), "OVERLAP");
  EXPECT_EQ(name(CommModel::OutOrder), "OUTORDER");
  EXPECT_EQ(name(CommModel::InOrder), "INORDER");
  EXPECT_EQ(name(Objective::Period), "period");
  EXPECT_EQ(name(Objective::Latency), "latency");
}

}  // namespace
}  // namespace fsw
