#include <gtest/gtest.h>

#include "src/npc/rn3dm.hpp"
#include "src/npc/two_partition.hpp"

namespace fsw {
namespace {

TEST(Rn3dm, PlausibilityConditions) {
  EXPECT_TRUE((Rn3dmInstance{{2, 4, 6}}.plausible()));   // sum 12 = 3*4
  EXPECT_FALSE((Rn3dmInstance{{2, 4, 5}}.plausible()));  // sum 11
  EXPECT_FALSE((Rn3dmInstance{{1, 5, 6}}.plausible()));  // 1 < 2
  EXPECT_FALSE((Rn3dmInstance{{2, 2, 8}}.plausible()));  // 8 > 6
}

TEST(Rn3dm, SolvesTrivialInstance) {
  const Rn3dmInstance inst{{2, 4, 6}};
  const auto w = solveRn3dm(inst);
  ASSERT_TRUE(w);
  EXPECT_TRUE(checkWitness(inst, *w));
}

TEST(Rn3dm, DetectsUnsolvableInstance) {
  // n=4, sum 20, but two entries equal to 2 both need lambda1 = lambda2 = 1.
  const Rn3dmInstance inst{{2, 2, 8, 8}};
  EXPECT_TRUE(inst.plausible());
  EXPECT_FALSE(solveRn3dm(inst));
}

TEST(Rn3dm, ImplausibleInstanceUnsolvable) {
  EXPECT_FALSE(solveRn3dm(Rn3dmInstance{{2, 4, 5}}));
}

TEST(Rn3dm, RandomSolvableInstancesAlwaysSolve) {
  Prng rng(8);
  for (int trial = 0; trial < 50; ++trial) {
    const auto inst = randomSolvableRn3dm(3 + trial % 8, rng);
    EXPECT_TRUE(inst.plausible()) << "trial " << trial;
    const auto w = solveRn3dm(inst);
    ASSERT_TRUE(w) << "trial " << trial;
    EXPECT_TRUE(checkWitness(inst, *w)) << "trial " << trial;
  }
}

TEST(Rn3dm, RandomPlausibleInstancesKeepSumCondition) {
  Prng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    const auto inst = randomPlausibleRn3dm(5, rng);
    EXPECT_TRUE(inst.plausible()) << "trial " << trial;
  }
}

TEST(Rn3dm, CheckWitnessRejectsBadWitnesses) {
  const Rn3dmInstance inst{{2, 4, 6}};
  // Wrong sums.
  EXPECT_FALSE(checkWitness(inst, {{1, 2, 3}, {2, 2, 2}}));
  // Not a permutation.
  EXPECT_FALSE(checkWitness(inst, {{1, 1, 3}, {1, 3, 3}}));
  // Out of range.
  EXPECT_FALSE(checkWitness(inst, {{0, 2, 3}, {2, 2, 3}}));
  // Wrong size.
  EXPECT_FALSE(checkWitness(inst, {{1, 2}, {1, 2}}));
}

TEST(TwoPartition, FindsEvenSplit) {
  const auto w = solveTwoPartition({3, 1, 1, 2, 2, 1});  // total 10
  ASSERT_TRUE(w);
  std::int64_t sum = 0;
  const std::vector<std::int64_t> x = {3, 1, 1, 2, 2, 1};
  for (const auto i : *w) sum += x[i];
  EXPECT_EQ(sum, 5);
}

TEST(TwoPartition, OddTotalImpossible) {
  EXPECT_FALSE(solveTwoPartition({1, 1, 1}));
}

TEST(TwoPartition, DominantItemImpossible) {
  EXPECT_FALSE(solveTwoPartition({10, 1, 1}));
}

TEST(TwoPartition, EmptySetSolvable) {
  const auto w = solveTwoPartition({});
  ASSERT_TRUE(w);
  EXPECT_TRUE(w->empty());
}

TEST(TwoPartition, NegativeRejected) {
  EXPECT_FALSE(solveTwoPartition({-1, 1}));
}

}  // namespace
}  // namespace fsw
