// fsw_artifact — structural inspector for fsw cache artifacts.
//
//   fsw_artifact <file>...
//
// Walks every artifact unit in each file (a shard set is its header
// followed by one payload unit per shard, so the walk just continues) and
// prints one line per unit: format, dialect, version, declared entries and
// encoded size. The per-file total makes text-vs-binary size comparisons a
// one-liner:
//
//   $ fsw_artifact results.txt results.bin
//   results.txt  result-cache  text    v1  19 entries  29990 B
//   results.txt  total: 1 unit, 29990 bytes
//   results.bin  result-cache  binary  v1  19 entries  6384 B
//   results.bin  total: 1 unit, 6384 bytes
//
// A malformed unit stops the walk with the decoder's error (which names
// the entry and byte offset) and the exit code turns nonzero — usable as a
// cheap integrity check over a directory of warm-start dumps.
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>

#include "src/io/serialize.hpp"

namespace {

/// Inspects every unit in one stream; returns false on a malformed unit.
bool inspectFile(const std::string& path, std::istream& is) {
  std::size_t units = 0;
  std::uint64_t totalBytes = 0;
  for (;;) {
    is >> std::ws;
    if (is.peek() == std::char_traits<char>::eof()) break;
    fsw::ArtifactInfo info;
    try {
      info = fsw::inspectArtifact(is);
    } catch (const std::exception& e) {
      std::cerr << path << ": unit " << (units + 1) << ": " << e.what()
                << "\n";
      return false;
    }
    ++units;
    totalBytes += info.bytes;
    std::cout << path << "  " << std::left << std::setw(12) << info.kind
              << "  " << std::setw(6) << (info.binary ? "binary" : "text")
              << "  v" << info.version << "  " << info.entries
              << (info.kind == "shard-set" ? " shards" : " entries");
    if (!info.shardKind.empty()) std::cout << " of " << info.shardKind;
    std::cout << "  " << info.bytes << " B\n";
  }
  if (units == 0) {
    std::cerr << path << ": empty artifact\n";
    return false;
  }
  std::cout << path << "  total: " << units
            << (units == 1 ? " unit, " : " units, ") << totalBytes
            << " bytes\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: fsw_artifact <file>...\n"
              << "Prints the structure of fsw cache artifacts (score/result "
              << "caches and shard sets, text or binary dialect).\n";
    return 2;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::ifstream is(path, std::ios::binary);
    if (!is) {
      std::cerr << path << ": cannot open\n";
      ok = false;
      continue;
    }
    ok = inspectFile(path, is) && ok;
  }
  return ok ? 0 : 1;
}
