#include "src/sim/greedy.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <vector>

#include "src/core/cost_model.hpp"

namespace fsw {
namespace {

SimResult finish(const std::vector<double>& completion) {
  SimResult res;
  res.ok = true;
  res.firstLatency = completion.front();
  res.makespan = completion.back();
  const std::size_t n = completion.size();
  if (n >= 4) {
    // Steady-state slope between the warm-up and drain transients.
    const std::size_t lo = n / 4;
    const std::size_t hi = 3 * n / 4;
    res.measuredPeriod =
        (completion[hi] - completion[lo]) / static_cast<double>(hi - lo);
  } else if (n >= 2) {
    res.measuredPeriod = (completion.back() - completion.front()) /
                         static_cast<double>(n - 1);
  }
  return res;
}

}  // namespace

SimResult simulateGreedyInOrder(const Application& app,
                                const ExecutionGraph& graph,
                                const PortOrders& orders,
                                std::size_t numDataSets) {
  const CostModel costs(app, graph);
  const std::size_t n = graph.size();
  const std::size_t N = numDataSets;

  // Per server, the op sequence of one cycle: receives (in order), calc,
  // sends (in order). A communication appears in two sequences and starts
  // when both sides reach it (rendez-vous): its begin is the max of the two
  // sequence frontiers. We iterate the unrolled marked graph to a fixed
  // point with a worklist-free sweep: positions only depend on earlier
  // positions of each server and the peer's frontier, so cycling over data
  // sets and servers until stable converges in one pass per data set.
  struct SeqItem {
    bool isCalc;
    NodeId peer;      // comm peer (kWorld for virtual)
    bool incoming;    // receive vs send
    double dur;
  };
  std::vector<std::vector<SeqItem>> seq(n);
  for (NodeId i = 0; i < n; ++i) {
    for (const NodeId s : orders.in(i)) {
      seq[i].push_back({false, s, true, s == kWorld ? 1.0 : costs.at(s).sigmaOut});
    }
    seq[i].push_back({true, kWorld, false, costs.at(i).ccomp});
    for (const NodeId t : orders.out(i)) {
      seq[i].push_back({false, t, false, costs.at(i).sigmaOut});
    }
  }

  // begin[(i, pos, ds)] computed lazily: comm ops are shared, so we store a
  // begin per (edge, ds) and per (calc, ds), then advance server frontiers.
  std::map<std::pair<std::pair<NodeId, NodeId>, std::size_t>, double> commBegin;
  std::vector<double> completion(N, 0.0);
  std::vector<double> frontier(n, 0.0);  // server-ready time
  std::vector<std::size_t> pos(n, 0);    // index into seq x dataset stream
  const std::size_t total = [&] {
    std::size_t t = 0;
    for (const auto& s : seq) t += s.size() * N;
    return t;
  }();

  // Event-driven: repeatedly advance the server whose next op can start
  // earliest. A receive can start only once the sender has *offered* it
  // (sender frontier at that op); we model the rendez-vous by allowing a
  // server's op to start only when the peer's matching op is the peer's
  // current op too. Deadlock cannot occur for consistent orders; we guard
  // with a progress check regardless.
  std::vector<std::size_t> done(n, 0);  // ops completed per server
  auto opDataSet = [&](NodeId i) { return done[i] / seq[i].size(); };
  auto opIndex = [&](NodeId i) { return done[i] % seq[i].size(); };

  std::size_t completed = 0;
  while (completed < total) {
    // Find the startable op with the smallest start time.
    double bestT = std::numeric_limits<double>::infinity();
    NodeId bestI = kNoNode;
    for (NodeId i = 0; i < n; ++i) {
      if (done[i] >= seq[i].size() * N) continue;
      const auto& item = seq[i][opIndex(i)];
      const std::size_t ds = opDataSet(i);
      double t = frontier[i];
      if (!item.isCalc && item.peer != kWorld) {
        // Rendez-vous: peer must be at the matching op of the same data set.
        const NodeId p = item.peer;
        if (done[p] >= seq[p].size() * N) continue;
        const auto& peerItem = seq[p][opIndex(p)];
        const bool match = !peerItem.isCalc && peerItem.peer == i &&
                           peerItem.incoming != item.incoming &&
                           opDataSet(p) == ds;
        if (!match) continue;
        t = std::max(t, frontier[p]);
      }
      if (t < bestT) {
        bestT = t;
        bestI = i;
      }
    }
    if (bestI == kNoNode) {
      // Deadlock (inconsistent orders): report failure.
      SimResult res;
      res.ok = false;
      res.violations = 1;
      return res;
    }
    const NodeId i = bestI;
    const auto& item = seq[i][opIndex(i)];
    const std::size_t ds = opDataSet(i);
    const double end = bestT + item.dur;
    frontier[i] = end;
    ++done[i];
    ++completed;
    if (!item.isCalc && item.peer != kWorld) {
      frontier[item.peer] = end;
      ++done[item.peer];
      ++completed;
    }
    if (!item.isCalc && !item.incoming && item.peer == kWorld) {
      completion[ds] = std::max(completion[ds], end);
    }
  }
  return finish(completion);
}

SimResult simulateGreedyOutOrder(const Application& app,
                                 const ExecutionGraph& graph,
                                 std::size_t numDataSets) {
  const CostModel costs(app, graph);
  const std::size_t n = graph.size();
  const std::size_t N = numDataSets;

  // Op instances: (kind, endpoints, data set). Precedences: receives of set
  // ds precede calc(ds); calc(ds) precedes sends of set ds; FIFO per edge
  // and per service keeps channels ordered.
  struct OpInst {
    bool isCalc;
    NodeId a, b;   // calc: a; comm: a -> b
    double dur;
    std::vector<std::size_t> preds;
    double ready = 0.0;
    bool started = false;
    std::size_t remaining = 0;
  };
  std::vector<OpInst> ops;
  std::vector<std::vector<std::size_t>> succ;
  auto link = [&](std::size_t p, std::size_t o) {
    ops[o].preds.push_back(p);
    succ[p].push_back(o);
  };

  std::vector<std::vector<std::size_t>> calcOf(N, std::vector<std::size_t>(n));
  auto newOp = [&](bool isCalc, NodeId a, NodeId b, double dur) {
    ops.push_back({isCalc, a, b, dur, {}, 0.0, false, 0});
    succ.emplace_back();
    return ops.size() - 1;
  };
  for (std::size_t ds = 0; ds < N; ++ds) {
    for (NodeId i = 0; i < n; ++i) {
      calcOf[ds][i] = newOp(true, i, kWorld, costs.at(i).ccomp);
      if (ds > 0) link(calcOf[ds - 1][i], calcOf[ds][i]);
    }
  }
  std::vector<std::vector<std::size_t>> outputsOf(N);
  std::map<std::pair<NodeId, NodeId>, std::size_t> lastOnEdge;
  for (std::size_t ds = 0; ds < N; ++ds) {
    auto addComm = [&](NodeId from, NodeId to, double dur) {
      const std::size_t o = newOp(false, from, to, dur);
      if (from != kWorld) link(calcOf[ds][from], o);
      if (to != kWorld) link(o, calcOf[ds][to]);
      if (to == kWorld) outputsOf[ds].push_back(o);
      // Synchronous channels are FIFO: instance ds follows instance ds-1.
      const auto key = std::make_pair(from, to);
      const auto it = lastOnEdge.find(key);
      if (it != lastOnEdge.end()) link(it->second, o);
      lastOnEdge[key] = o;
      return o;
    };
    for (NodeId i = 0; i < n; ++i) {
      if (graph.isEntry(i)) addComm(kWorld, i, 1.0);
    }
    for (const auto& e : graph.edges()) {
      addComm(e.from, e.to, costs.at(e.from).sigmaOut);
    }
    for (NodeId i = 0; i < n; ++i) {
      if (graph.isExit(i)) addComm(i, kWorld, costs.at(i).sigmaOut);
    }
  }
  for (auto& op : ops) op.remaining = op.preds.size();

  // Greedy dispatch: repeatedly start the released op with the earliest
  // feasible start (server busy times + readiness), earliest-released first.
  std::vector<double> busy(n, 0.0);
  std::vector<std::size_t> released;
  for (std::size_t o = 0; o < ops.size(); ++o) {
    if (ops[o].remaining == 0) released.push_back(o);
  }
  std::vector<double> opEnd(ops.size(), 0.0);
  std::size_t startedCount = 0;
  while (startedCount < ops.size()) {
    double bestT = std::numeric_limits<double>::infinity();
    std::size_t bestO = ops.size();
    for (const std::size_t o : released) {
      if (ops[o].started) continue;
      double t = ops[o].ready;
      if (ops[o].isCalc) {
        t = std::max(t, busy[ops[o].a]);
      } else {
        if (ops[o].a != kWorld) t = std::max(t, busy[ops[o].a]);
        if (ops[o].b != kWorld) t = std::max(t, busy[ops[o].b]);
      }
      if (t < bestT) {
        bestT = t;
        bestO = o;
      }
    }
    auto& op = ops[bestO];
    op.started = true;
    ++startedCount;
    const double end = bestT + op.dur;
    opEnd[bestO] = end;
    if (op.isCalc) {
      busy[op.a] = end;
    } else {
      if (op.a != kWorld) busy[op.a] = end;
      if (op.b != kWorld) busy[op.b] = end;
    }
    for (const std::size_t s : succ[bestO]) {
      ops[s].ready = std::max(ops[s].ready, end);
      if (--ops[s].remaining == 0) released.push_back(s);
    }
    released.erase(std::remove_if(released.begin(), released.end(),
                                  [&](std::size_t o) { return ops[o].started; }),
                   released.end());
  }

  std::vector<double> completion(N, 0.0);
  for (std::size_t ds = 0; ds < N; ++ds) {
    for (const std::size_t o : outputsOf[ds]) {
      completion[ds] = std::max(completion[ds], opEnd[o]);
    }
  }
  return finish(completion);
}

}  // namespace fsw
