// Scenario driver: replays a dynamic workload trace (src/workload/trace.hpp)
// against a live serving stack and measures what the static benches cannot —
// behavior under *evolving* load.
//
// The driver owns the stream states: each solve event (arrival, drift,
// operator add/remove) derives the successor application via applyTraceEvent
// and submits the successor PlanRequest through a caller-supplied hook —
// a PlanRouter fleet, a PlanServer, a bare engine; the driver is
// transport-agnostic, exactly like the front ends it drives. Host events
// invoke kill/revive hooks after draining every in-flight solve, so fleet
// membership only changes at quiescent points (the router's failover path
// is exercised by the kill itself: subsequent requests ranked to the dead
// slot re-route, and the revive hook re-admits it).
//
// Submission runs through a bounded in-flight window (ScenarioConfig::
// maxInFlight): arrivals queue behind at most that many outstanding solves,
// so a burst translates into queueing delay — which is the point: the
// reported arrival-to-result latency includes it.
//
// Certification: with certify on (the default), every completed solve is
// compared bit-identical — value bits, winning strategy, graph signature,
// operation list — against a cold one-shot serial optimizePlan of the same
// mutated application. A solve is a pure function of its request key, so
// cold references are memoized per key; re-solves that repeat a key cost
// one reference, not two. This is the E14 identity contract extended to
// whole traces: warm starts, caches, failover and re-sharding may change
// *when* an answer arrives, never *what* it is.
//
// Observability: the report carries arrival-to-result percentiles and the
// engine counters summed over the replay (bound aborts, cache hits); wire
// the optional board/store/router pointers to also capture near-hit,
// store-traffic and failover deltas across the replay window.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <string>
#include <vector>

#include "src/opt/optimizer.hpp"
#include "src/workload/trace.hpp"

namespace fsw {

class BoundBoard;
class ResultStoreHost;
class PlanRouter;

struct ScenarioConfig {
  /// Outstanding solves the driver keeps in flight; arrivals beyond it
  /// wait on the oldest future (their wait is part of the measured
  /// arrival-to-result latency). Floored to 1.
  std::size_t maxInFlight = 8;
  /// Re-certify every winner against a memoized cold serial solve.
  bool certify = true;
  /// Per-request solve knobs stamped onto every derived PlanRequest.
  OptimizerOptions options{};

  // Optional observability taps (not owned; stats snapshotted around the
  // replay so the report shows the deltas this trace caused).
  const BoundBoard* board = nullptr;
  const ResultStoreHost* store = nullptr;
  const PlanRouter* router = nullptr;
};

struct ScenarioReport {
  std::size_t events = 0;       ///< trace events replayed
  std::size_t solves = 0;       ///< solve events completed
  std::size_t hostKills = 0;
  std::size_t hostRevives = 0;

  std::size_t certified = 0;    ///< winners bit-identical to the cold ref
  std::size_t mismatches = 0;   ///< winners that differed (must stay 0)
  std::size_t coldRefSolves = 0;  ///< distinct keys solved for references
  /// One line per mismatch (which field diverged, got vs ref) — empty on a
  /// clean replay. Capped at 8 so a systemic divergence cannot balloon the
  /// report.
  std::vector<std::string> mismatchNotes;

  // Engine counters summed over every completed solve.
  std::size_t boundAborts = 0;
  std::size_t resultCacheHits = 0;
  std::size_t storeBytes = 0;   ///< store wire bytes, both directions

  // Deltas from the optional taps (0 when the tap is unset).
  std::size_t boardNearHits = 0;
  std::size_t storeNearGets = 0;
  std::size_t storeNearHits = 0;
  std::size_t storeExactHits = 0;
  std::size_t routerFailovers = 0;
  std::size_t routerReconnects = 0;

  // Arrival-to-result latency over the completed solves.
  double p50Ms = 0.0;
  double p95Ms = 0.0;
  double p99Ms = 0.0;
  double maxMs = 0.0;
  std::vector<double> latenciesMs;

  [[nodiscard]] bool allIdentical() const noexcept {
    return mismatches == 0 && certified == solves;
  }
  [[nodiscard]] std::size_t nearHits() const noexcept {
    return boardNearHits + storeNearHits;
  }
};

class ScenarioDriver {
 public:
  /// Submits one derived request to the system under test and returns its
  /// future (PlanRouter::submit, PlanServer::submit, or a lambda over a
  /// bare engine — anything with the serving stack's future surface).
  using Submit = std::function<std::future<OptimizedPlan>(const PlanRequest&)>;
  /// Fleet membership hooks for HostKill/HostRevive events (host = the
  /// event's fleet slot). Either may be empty: the event still drains
  /// in-flight work and is counted, but no hook fires.
  using HostHook = std::function<void(std::uint32_t host)>;

  ScenarioDriver(ScenarioConfig config, Submit submit,
                 HostHook killHost = {}, HostHook reviveHost = {});

  /// Replays the trace start to finish and returns the report. Throws
  /// std::runtime_error on an inconsistent trace (applyTraceEvent's
  /// checks) and propagates solve failures from the submit hook's future.
  [[nodiscard]] ScenarioReport replay(const Trace& trace);

 private:
  ScenarioConfig config_;
  Submit submit_;
  HostHook killHost_;
  HostHook reviveHost_;
};

}  // namespace fsw
