// Greedy dynamic simulators: reconstructed runtime baselines.
//
// The paper compares against *optimized* operation lists; a real deployment
// without an orchestrator would run greedily (start every operation as soon
// as its server and its peer are free). These simulators execute that policy
// over a stream of data sets and report the steady-state period it achieves,
// which upper-bounds the optimum and quantifies the value of orchestration.
//
//  * simulateGreedyInOrder: servers follow the strict INORDER cycle
//    (receive in order, compute, send in order) with rendez-vous
//    synchronization; the given port orders are the only degree of freedom.
//  * simulateGreedyOutOrder: servers pick, at every instant, the earliest
//    startable operation (comms need both endpoints idle), letting data sets
//    overtake each other as OUTORDER allows.
#pragma once

#include <cstddef>

#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"
#include "src/sched/port_orders.hpp"
#include "src/sim/replay.hpp"

namespace fsw {

[[nodiscard]] SimResult simulateGreedyInOrder(const Application& app,
                                              const ExecutionGraph& graph,
                                              const PortOrders& orders,
                                              std::size_t numDataSets = 64);

[[nodiscard]] SimResult simulateGreedyOutOrder(const Application& app,
                                               const ExecutionGraph& graph,
                                               std::size_t numDataSets = 64);

}  // namespace fsw
