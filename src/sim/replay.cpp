#include "src/sim/replay.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/util.hpp"
#include "src/core/cost_model.hpp"

namespace fsw {
namespace {

/// One unrolled (absolute-time) operation instance.
struct Interval {
  double begin;
  double end;
  double ratio;   // bandwidth share (1 for one-port operations)
  bool isCalc;
  bool incoming;  // direction at the owning server (comms only)
};

bool overlaps(const Interval& a, const Interval& b, double eps) {
  return std::min(a.end, b.end) - std::max(a.begin, b.begin) > eps;
}

}  // namespace

SimResult replayOperationList(const Application& app,
                              const ExecutionGraph& graph,
                              const OperationList& ol, CommModel m,
                              std::size_t numDataSets) {
  SimResult res;
  const std::size_t n = app.size();
  const double lambda = ol.lambda();
  if (lambda <= 0.0 || numDataSets == 0) return res;
  const CostModel costs(app, graph);
  constexpr double eps = 1e-9;

  // Unroll every operation for data sets 0..N-1 onto its hosting servers.
  std::vector<std::vector<Interval>> hosted(n);
  std::vector<double> completion(numDataSets, 0.0);
  for (std::size_t ds = 0; ds < numDataSets; ++ds) {
    const double shift = static_cast<double>(ds) * lambda;
    for (NodeId i = 0; i < n; ++i) {
      hosted[i].push_back({ol.beginCalc(i) + shift, ol.endCalc(i) + shift,
                           1.0, true, false});
    }
    for (const auto& c : ol.comms()) {
      const double vol = c.isInput() ? 1.0 : costs.at(c.from).sigmaOut;
      const double dur = c.duration();
      const double ratio = dur > eps ? vol / dur : 0.0;
      const Interval iv{c.begin + shift, c.end + shift, ratio, false, false};
      if (!c.isInput()) {
        hosted[c.from].push_back(iv);
        hosted[c.from].back().incoming = false;
      }
      if (!c.isOutput()) {
        hosted[c.to].push_back(iv);
        hosted[c.to].back().incoming = true;
      }
      if (c.isOutput()) {
        completion[ds] = std::max(completion[ds], c.end + shift);
      }
    }
  }

  // Operational resource checking, per server.
  std::size_t violations = 0;
  for (NodeId i = 0; i < n; ++i) {
    auto& ops = hosted[i];
    std::sort(ops.begin(), ops.end(),
              [](const Interval& a, const Interval& b) {
                return a.begin < b.begin;
              });
    if (m != CommModel::Overlap) {
      // Serialized server: any overlapping pair is a violation.
      for (std::size_t a = 0; a < ops.size(); ++a) {
        for (std::size_t b = a + 1; b < ops.size(); ++b) {
          if (ops[b].begin >= ops[a].end - eps) break;  // sorted by begin
          if (overlaps(ops[a], ops[b], eps)) ++violations;
        }
      }
    } else {
      // Multi-port: computations serialized, directional bandwidth <= 1.
      std::vector<const Interval*> calcs;
      for (const auto& op : ops) {
        if (op.isCalc) calcs.push_back(&op);
      }
      for (std::size_t a = 0; a + 1 < calcs.size(); ++a) {
        if (overlaps(*calcs[a], *calcs[a + 1], eps)) ++violations;
      }
      for (const bool inDir : {true, false}) {
        std::vector<std::pair<double, double>> events;  // (time, +-ratio)
        for (const auto& op : ops) {
          if (op.isCalc || op.incoming != inDir || op.ratio <= 0.0) continue;
          events.emplace_back(op.begin, op.ratio);
          events.emplace_back(op.end, -op.ratio);
        }
        std::sort(events.begin(), events.end());
        double load = 0.0;
        for (std::size_t k = 0; k < events.size(); ++k) {
          load += events[k].second;
          const bool atEnd = k + 1 == events.size();
          const bool closes = !atEnd && events[k + 1].first - events[k].first <= eps;
          if (!closes && load > 1.0 + 1e-6) ++violations;
        }
      }
    }
  }

  res.violations = violations;
  res.ok = violations == 0;
  res.firstLatency = completion.front();
  res.makespan = completion.back();
  if (numDataSets >= 2) {
    const std::size_t half = numDataSets / 2;
    res.measuredPeriod = (completion.back() - completion[half]) /
                         static_cast<double>(numDataSets - 1 - half);
  } else {
    res.measuredPeriod = lambda;
  }
  return res;
}

}  // namespace fsw
