// Operation-list replayer: the simulation substrate standing in for the
// paper's (absent) experimental platform.
//
// The replayer unrolls the cyclic operation list over N consecutive data
// sets into absolute time intervals and *executes* it: every server is a
// resource, every transfer occupies its endpoints, and the replayer checks
// operationally — with no modulo-lambda reasoning — that the rules of the
// communication model are never violated, while measuring the achieved
// period (completion spacing in steady state) and per-data-set latency.
// A valid OL must replay with measuredPeriod == lambda exactly; this is the
// "measured = analytic" experiment of EXPERIMENTS.md.
#pragma once

#include <cstddef>

#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"
#include "src/core/model.hpp"
#include "src/oplist/operation_list.hpp"

namespace fsw {

struct SimResult {
  bool ok = false;               ///< no resource violation observed
  std::size_t violations = 0;    ///< number of violating interval pairs
  double measuredPeriod = 0.0;   ///< steady-state completion spacing
  double firstLatency = 0.0;     ///< data set 0 injection-to-completion
  double makespan = 0.0;         ///< completion of the last data set
};

/// Replays `numDataSets` cyclic repetitions of ol under model m.
[[nodiscard]] SimResult replayOperationList(const Application& app,
                                            const ExecutionGraph& graph,
                                            const OperationList& ol,
                                            CommModel m,
                                            std::size_t numDataSets = 32);

}  // namespace fsw
