#include "src/sim/scenario_driver.hpp"

#include <chrono>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/common/util.hpp"
#include "src/io/serialize.hpp"
#include "src/opt/candidate.hpp"
#include "src/serve/bound_board.hpp"
#include "src/serve/plan_engine.hpp"
#include "src/serve/plan_router.hpp"
#include "src/serve/result_store.hpp"

namespace fsw {

namespace {

/// memcmp equality: NaN-safe, -0.0-strict — the identity the serving
/// stack's bit-identical contract is stated in.
bool bitsEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// The E14 identity predicate over whole winners. resultCacheHits is NOT
/// part of it here: a trace may legitimately revisit a key (a drift cycle
/// returning to prior parameters), and a wholesale cache answer for a key
/// is the bit-identical winner by the cache's own contract.
bool identicalWinner(const OptimizedPlan& got, const OptimizedPlan& ref) {
  return bitsEqual(got.value, ref.value) && got.strategy == ref.strategy &&
         graphSignature(got.plan.graph) == graphSignature(ref.plan.graph) &&
         toString(got.plan.ol) == toString(ref.plan.ol);
}

struct InFlight {
  std::future<OptimizedPlan> future;
  std::chrono::steady_clock::time_point submitted;
  PlanRequest request;
};

}  // namespace

ScenarioDriver::ScenarioDriver(ScenarioConfig config, Submit submit,
                               HostHook killHost, HostHook reviveHost)
    : config_(std::move(config)),
      submit_(std::move(submit)),
      killHost_(std::move(killHost)),
      reviveHost_(std::move(reviveHost)) {
  if (!submit_) {
    throw std::invalid_argument("ScenarioDriver: submit hook is required");
  }
}

ScenarioReport ScenarioDriver::replay(const Trace& trace) {
  ScenarioReport report;
  report.events = trace.events.size();

  const BoundBoard::Stats board0 =
      config_.board != nullptr ? config_.board->stats() : BoundBoard::Stats{};
  const ResultStoreHost::Stats store0 = config_.store != nullptr
                                            ? config_.store->stats()
                                            : ResultStoreHost::Stats{};
  const std::size_t failovers0 =
      config_.router != nullptr ? config_.router->stats().failovers : 0;
  const std::size_t reconnects0 =
      config_.router != nullptr ? config_.router->stats().reconnects : 0;

  // Cold serial references, memoized per request key: a solve is a pure
  // function of its key, so one reference certifies every revisit.
  std::unordered_map<std::string, OptimizedPlan> refs;
  const auto coldReference = [&](const PlanRequest& request)
      -> const OptimizedPlan& {
    const std::string key = PlanEngine::requestKey(request);
    auto it = refs.find(key);
    if (it == refs.end()) {
      OptimizerOptions serial = request.options;
      serial.threads = 1;
      serial.pool = nullptr;
      it = refs.emplace(key, optimizePlan(request.app, request.model,
                                          request.objective, serial))
               .first;
      ++report.coldRefSolves;
    }
    return it->second;
  };

  std::deque<InFlight> window;
  const std::size_t maxInFlight = std::max<std::size_t>(1, config_.maxInFlight);

  const auto settle = [&](InFlight job) {
    const OptimizedPlan got = job.future.get();
    const auto done = std::chrono::steady_clock::now();
    report.latenciesMs.push_back(
        std::chrono::duration<double, std::milli>(done - job.submitted)
            .count());
    ++report.solves;
    report.boundAborts += got.stats.boundAborts;
    report.resultCacheHits += got.stats.resultCacheHits;
    report.storeBytes +=
        got.stats.storeBytesSent + got.stats.storeBytesReceived;
    if (config_.certify) {
      const OptimizedPlan& ref = coldReference(job.request);
      if (identicalWinner(got, ref)) {
        ++report.certified;
      } else {
        ++report.mismatches;
        if (report.mismatchNotes.size() < 8) {
          std::string note = "key=" + PlanEngine::requestKey(job.request);
          if (!bitsEqual(got.value, ref.value)) {
            note += " value " + std::to_string(got.value) + " vs " +
                    std::to_string(ref.value);
          }
          if (got.strategy != ref.strategy) {
            note += " strategy '" + got.strategy + "' vs '" + ref.strategy +
                    "'";
          }
          if (graphSignature(got.plan.graph) !=
              graphSignature(ref.plan.graph)) {
            note += " graph " + graphSignature(got.plan.graph) + " vs " +
                    graphSignature(ref.plan.graph);
          }
          if (toString(got.plan.ol) != toString(ref.plan.ol)) {
            note += " ol " + toString(got.plan.ol) + " vs " +
                    toString(ref.plan.ol);
          }
          report.mismatchNotes.push_back(std::move(note));
        }
      }
    }
  };
  const auto drain = [&] {
    while (!window.empty()) {
      InFlight job = std::move(window.front());
      window.pop_front();
      settle(std::move(job));
    }
  };

  std::vector<StreamState> streams;
  for (const TraceEvent& event : trace.events) {
    if (!isSolveEvent(event.kind)) {
      // Membership changes only at quiescent points: every submitted
      // solve completes (and certifies) before the fleet shrinks or
      // grows, so a kill can fail over queued-later work but never
      // strand an already-measured future.
      drain();
      if (event.kind == TraceEventKind::HostKill) {
        ++report.hostKills;
        if (killHost_) killHost_(event.host);
      } else {
        ++report.hostRevives;
        if (reviveHost_) reviveHost_(event.host);
      }
      continue;
    }
    if (event.stream >= streams.size()) streams.resize(event.stream + 1);
    applyTraceEvent(streams[event.stream], event);
    const StreamState& st = streams[event.stream];
    PlanRequest request{st.app, st.model, st.objective, config_.options};
    InFlight job;
    job.request = request;
    job.submitted = std::chrono::steady_clock::now();
    job.future = submit_(request);
    window.push_back(std::move(job));
    if (window.size() > maxInFlight) {
      InFlight oldest = std::move(window.front());
      window.pop_front();
      settle(std::move(oldest));
    }
  }
  drain();

  if (config_.board != nullptr) {
    report.boardNearHits = config_.board->stats().nearHits - board0.nearHits;
  }
  if (config_.store != nullptr) {
    const ResultStoreHost::Stats s = config_.store->stats();
    report.storeNearGets = s.nearGets - store0.nearGets;
    report.storeNearHits = s.nearHits - store0.nearHits;
    report.storeExactHits = s.hits - store0.hits;
  }
  if (config_.router != nullptr) {
    const PlanRouter::Stats s = config_.router->stats();
    report.routerFailovers = s.failovers - failovers0;
    report.routerReconnects = s.reconnects - reconnects0;
  }

  report.p50Ms = percentile(report.latenciesMs, 0.50);
  report.p95Ms = percentile(report.latenciesMs, 0.95);
  report.p99Ms = percentile(report.latenciesMs, 0.99);
  for (const double ms : report.latenciesMs) {
    report.maxMs = std::max(report.maxMs, ms);
  }
  return report;
}

}  // namespace fsw
