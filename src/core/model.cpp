#include "src/core/model.hpp"

namespace fsw {

std::string_view name(CommModel m) noexcept {
  switch (m) {
    case CommModel::Overlap:
      return "OVERLAP";
    case CommModel::OutOrder:
      return "OUTORDER";
    case CommModel::InOrder:
      return "INORDER";
  }
  return "?";
}

std::string_view name(Objective o) noexcept {
  switch (o) {
    case Objective::Period:
      return "period";
    case Objective::Latency:
      return "latency";
  }
  return "?";
}

std::optional<CommModel> commModelFromName(std::string_view token) noexcept {
  for (const CommModel m : kAllModels) {
    if (name(m) == token) return m;
  }
  return std::nullopt;
}

std::optional<Objective> objectiveFromName(std::string_view token) noexcept {
  for (const Objective o : {Objective::Period, Objective::Latency}) {
    if (name(o) == token) return o;
  }
  return std::nullopt;
}

}  // namespace fsw
