#include "src/core/model.hpp"

namespace fsw {

std::string_view name(CommModel m) noexcept {
  switch (m) {
    case CommModel::Overlap:
      return "OVERLAP";
    case CommModel::OutOrder:
      return "OUTORDER";
    case CommModel::InOrder:
      return "INORDER";
  }
  return "?";
}

std::string_view name(Objective o) noexcept {
  switch (o) {
    case Objective::Period:
      return "period";
    case Objective::Latency:
      return "latency";
  }
  return "?";
}

}  // namespace fsw
