// A service (filter/query) of the target application: Section 2.1.
#pragma once

#include <cstddef>
#include <string>

namespace fsw {

/// Index of a service within its Application / ExecutionGraph.
using NodeId = std::size_t;

/// Sentinel for "no node" (e.g. a root's parent in a forest encoding).
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// A service C_i with elementary cost c_i and selectivity sigma_i.
///
/// If fed an input of size delta, it computes for c_i * delta time units and
/// emits an output of size sigma_i * delta. Costs are pre-normalized as
/// c <- (b / delta0) * (c / s), so delta0 = b = s = 1 throughout (Section
/// 2.1, "Because everything is homogeneous...").
struct Service {
  double cost = 1.0;
  double selectivity = 1.0;
  std::string name;

  [[nodiscard]] bool isFilter() const noexcept { return selectivity < 1.0; }
  [[nodiscard]] bool isExpander() const noexcept { return selectivity > 1.0; }
};

}  // namespace fsw
