// Communication models and optimization objectives studied by the paper
// (Section 2.2): one bounded multi-port model with communication/computation
// overlap, and two one-port models without overlap.
#pragma once

#include <array>
#include <optional>
#include <string_view>

namespace fsw {

enum class CommModel {
  /// Multi-port, full comm/comp overlap, bandwidth shared between concurrent
  /// transfers; servers pipeline different data sets (Section 2.2 "With
  /// overlap").
  Overlap,
  /// One-port, serialized comm/comp, but operations belonging to different
  /// data sets may interleave (Section 2.2 "OUTORDER").
  OutOrder,
  /// One-port, serialized comm/comp, each data set fully processed
  /// (receive* -> compute -> send*) before the next begins (Section 2.2
  /// "INORDER").
  InOrder,
};

enum class Objective {
  Period,   ///< interval between completions of consecutive data sets
  Latency,  ///< end-to-end time for one data set (response time)
};

inline constexpr std::array<CommModel, 3> kAllModels = {
    CommModel::Overlap, CommModel::OutOrder, CommModel::InOrder};

[[nodiscard]] std::string_view name(CommModel m) noexcept;
[[nodiscard]] std::string_view name(Objective o) noexcept;

/// Inverse of name(): the model/objective whose name is `token`, or
/// nullopt for an unknown token — the parse side of the wire codec and
/// any other format that stores models by name.
[[nodiscard]] std::optional<CommModel> commModelFromName(
    std::string_view token) noexcept;
[[nodiscard]] std::optional<Objective> objectiveFromName(
    std::string_view token) noexcept;

}  // namespace fsw
