// Per-node cost quantities of an execution graph (Section 2.1):
//
//   sigmaIn(k)  = prod_{a in Ancest(k)} sigma_a        (input size factor)
//   sigmaOut(k) = sigmaIn(k) * sigma_k                 (output size factor)
//   Ccomp(k)    = sigmaIn(k) * c_k
//   Cin(k)      = delta0 (=1) for entry nodes, else sum of predecessors'
//                 sigmaOut
//   Cout(k)     = max(1, |Sout(k)|) * sigmaOut(k)      (exit nodes emit one
//                 virtual output)
//
// Edge communication volume: vol(i -> j) = sigmaOut(i), i.e. the size of
// C_i's output. See DESIGN.md Section 2 for why this (and not the Appendix A
// literal formula) is the convention every worked example of the paper uses.
#pragma once

#include <vector>

#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"
#include "src/core/model.hpp"

namespace fsw {

/// Cost bundle of one node of the execution graph.
struct NodeCosts {
  double sigmaIn = 1.0;
  double sigmaOut = 1.0;
  double cin = 0.0;
  double ccomp = 0.0;
  double cout = 0.0;

  /// Cexec(k): per-model busy time of the server per data set, the quantity
  /// whose max over k lower-bounds the period (Section 2.2).
  [[nodiscard]] double cexec(CommModel m) const noexcept;
};

class CostModel {
 public:
  /// Requires graph.size() == app.size(); graph must be acyclic (invariant of
  /// ExecutionGraph).
  CostModel(const Application& app, const ExecutionGraph& graph);

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] const NodeCosts& at(NodeId k) const { return nodes_.at(k); }

  /// Communication volume on edge i -> j (equals sigmaOut(i)); the volume of
  /// the virtual input edge to an entry node is delta0 = 1, and of the
  /// virtual output edge of an exit node is sigmaOut(exit).
  [[nodiscard]] double volume(NodeId from) const { return at(from).sigmaOut; }

  /// max_k Cexec(k): lower bound on the period of any valid operation list
  /// for this execution graph under model m (Section 2.2). Tight for
  /// Overlap (Theorem 1), not always for the one-port models (Section 2.3).
  [[nodiscard]] double periodLowerBound(CommModel m) const noexcept;

  /// Longest in->...->out path (computation + communication volumes): lower
  /// bound on the latency of any operation list, any model.
  [[nodiscard]] double latencyLowerBound() const noexcept;

  /// Sum over nodes of Ccomp: total computation per data set.
  [[nodiscard]] double totalComputation() const noexcept;
  /// Sum over all (real and virtual) edges of their volume.
  [[nodiscard]] double totalCommunication() const noexcept;

 private:
  std::vector<NodeCosts> nodes_;
  double latencyLb_ = 0.0;
  double totalComm_ = 0.0;
};

}  // namespace fsw
