#include "src/core/cost_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace fsw {

double NodeCosts::cexec(CommModel m) const noexcept {
  switch (m) {
    case CommModel::Overlap:
      return std::max({cin, ccomp, cout});
    case CommModel::OutOrder:
    case CommModel::InOrder:
      return cin + ccomp + cout;
  }
  return 0.0;
}

CostModel::CostModel(const Application& app, const ExecutionGraph& graph) {
  if (app.size() != graph.size()) {
    throw std::invalid_argument("CostModel: application/graph size mismatch");
  }
  const std::size_t n = app.size();
  nodes_.resize(n);
  const auto topo = graph.topologicalOrder();

  // sigmaIn via a forward sweep: the product of a node's ancestors'
  // selectivities equals the product over *direct* predecessors is wrong in a
  // DAG (shared ancestors would be double-counted), so we propagate ancestor
  // bitsets instead. Independent selectivities (Section 2.1) make the product
  // over the ancestor *set* the right quantity.
  const auto anc = graph.ancestorClosure();
  for (const NodeId k : topo) {
    double prod = 1.0;
    for (NodeId a = 0; a < n; ++a) {
      if (anc[k][a]) prod *= app.service(a).selectivity;
    }
    auto& nc = nodes_[k];
    nc.sigmaIn = prod;
    nc.sigmaOut = prod * app.service(k).selectivity;
    nc.ccomp = prod * app.service(k).cost;
  }

  for (NodeId k = 0; k < n; ++k) {
    auto& nc = nodes_[k];
    if (graph.isEntry(k)) {
      nc.cin = 1.0;  // delta0
    } else {
      nc.cin = 0.0;
      for (const NodeId p : graph.predecessors(k)) {
        nc.cin += nodes_[p].sigmaOut;
      }
    }
    const std::size_t fanout = std::max<std::size_t>(
        1, graph.successors(k).size());  // exit nodes emit one virtual output
    nc.cout = static_cast<double>(fanout) * nc.sigmaOut;
  }

  // Longest path for the latency lower bound.
  std::vector<double> finish(n, 0.0);
  for (const NodeId k : topo) {
    double ready = 1.0;  // virtual input communication of size delta0
    if (!graph.isEntry(k)) {
      ready = 0.0;
      for (const NodeId p : graph.predecessors(k)) {
        ready = std::max(ready, finish[p] + nodes_[p].sigmaOut);
      }
    }
    finish[k] = ready + nodes_[k].ccomp;
  }
  latencyLb_ = 0.0;
  for (NodeId k = 0; k < n; ++k) {
    if (graph.isExit(k)) {
      latencyLb_ = std::max(latencyLb_, finish[k] + nodes_[k].sigmaOut);
    }
  }

  totalComm_ = 0.0;
  for (NodeId k = 0; k < n; ++k) {
    if (graph.isEntry(k)) totalComm_ += 1.0;
    totalComm_ += nodes_[k].cout;
  }
}

double CostModel::periodLowerBound(CommModel m) const noexcept {
  double lb = 0.0;
  for (const auto& nc : nodes_) lb = std::max(lb, nc.cexec(m));
  return lb;
}

double CostModel::latencyLowerBound() const noexcept { return latencyLb_; }

double CostModel::totalComputation() const noexcept {
  double s = 0.0;
  for (const auto& nc : nodes_) s += nc.ccomp;
  return s;
}

double CostModel::totalCommunication() const noexcept { return totalComm_; }

}  // namespace fsw
