// The target application A = (F, G): a set of services plus precedence
// constraints (Section 2.1).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "src/core/service.hpp"

namespace fsw {

/// A directed precedence edge: `from` must be an ancestor of `to` in every
/// execution graph.
struct Precedence {
  NodeId from;
  NodeId to;
  friend bool operator==(const Precedence&, const Precedence&) = default;
};

/// An application: services F = {C_1..C_n} and precedence constraints
/// G subset of F x F. Most of the paper's hardness results hold even with
/// G empty ("without dependence constraints").
class Application {
 public:
  Application() = default;
  explicit Application(std::vector<Service> services)
      : services_(std::move(services)), precSucc_(services_.size()) {}

  /// Adds a service and returns its NodeId.
  NodeId addService(Service s);
  NodeId addService(double cost, double selectivity, std::string name = "");

  /// Adds a precedence constraint C_from -> C_to. Throws std::invalid_argument
  /// on out-of-range ids, self-loops, duplicate edges, or if the edge would
  /// create a cycle.
  void addPrecedence(NodeId from, NodeId to);

  [[nodiscard]] std::size_t size() const noexcept { return services_.size(); }
  [[nodiscard]] const Service& service(NodeId i) const {
    return services_.at(i);
  }
  [[nodiscard]] const std::vector<Service>& services() const noexcept {
    return services_;
  }
  [[nodiscard]] const std::vector<Precedence>& precedences() const noexcept {
    return precedences_;
  }
  [[nodiscard]] bool hasPrecedences() const noexcept {
    return !precedences_.empty();
  }

  /// Transitive "must precede" relation: true iff G forces `a` to be an
  /// ancestor of `b`.
  [[nodiscard]] bool mustPrecede(NodeId a, NodeId b) const;

  /// A topological order of the precedence DAG (identity order when G is
  /// empty).
  [[nodiscard]] std::vector<NodeId> topologicalOrder() const;

 private:
  [[nodiscard]] bool reachable(NodeId from, NodeId to) const;

  std::vector<Service> services_;
  std::vector<Precedence> precedences_;
  std::vector<std::vector<NodeId>> precSucc_;  // adjacency of G
};

}  // namespace fsw
