#include "src/core/execution_graph.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace fsw {

ExecutionGraph::ExecutionGraph(std::size_t n) : succ_(n), pred_(n) {}

ExecutionGraph ExecutionGraph::fromParents(const std::vector<NodeId>& parent) {
  ExecutionGraph g(parent.size());
  for (NodeId i = 0; i < parent.size(); ++i) {
    if (parent[i] != kNoNode) g.addEdge(parent[i], i);
  }
  return g;
}

ExecutionGraph ExecutionGraph::chain(const std::vector<NodeId>& order) {
  ExecutionGraph g(order.size());
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    g.addEdge(order[i], order[i + 1]);
  }
  return g;
}

void ExecutionGraph::addEdge(NodeId from, NodeId to) {
  if (from >= size() || to >= size()) {
    throw std::invalid_argument("addEdge: node id out of range");
  }
  if (from == to) throw std::invalid_argument("addEdge: self-loop");
  if (hasEdge(from, to)) throw std::invalid_argument("addEdge: duplicate");
  if (reachable(to, from)) {
    throw std::invalid_argument("addEdge: edge would create a cycle");
  }
  succ_[from].push_back(to);
  pred_[to].push_back(from);
  ++edgeCount_;
}

bool ExecutionGraph::hasEdge(NodeId from, NodeId to) const noexcept {
  if (from >= size() || to >= size()) return false;
  const auto& s = succ_[from];
  return std::find(s.begin(), s.end(), to) != s.end();
}

std::vector<Edge> ExecutionGraph::edges() const {
  std::vector<Edge> out;
  out.reserve(edgeCount_);
  for (NodeId i = 0; i < size(); ++i) {
    for (const NodeId j : succ_[i]) out.push_back({i, j});
  }
  return out;
}

std::vector<NodeId> ExecutionGraph::entries() const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < size(); ++i) {
    if (isEntry(i)) out.push_back(i);
  }
  return out;
}

std::vector<NodeId> ExecutionGraph::exits() const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < size(); ++i) {
    if (isExit(i)) out.push_back(i);
  }
  return out;
}

bool ExecutionGraph::reachable(NodeId from, NodeId to) const {
  if (from == to) return true;
  std::vector<bool> seen(size(), false);
  std::queue<NodeId> q;
  q.push(from);
  seen[from] = true;
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const NodeId v : succ_[u]) {
      if (v == to) return true;
      if (!seen[v]) {
        seen[v] = true;
        q.push(v);
      }
    }
  }
  return false;
}

std::vector<NodeId> ExecutionGraph::topologicalOrder() const {
  std::vector<std::size_t> indeg(size(), 0);
  for (NodeId i = 0; i < size(); ++i) indeg[i] = pred_[i].size();
  // Priority by index for determinism.
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> q;
  for (NodeId i = 0; i < size(); ++i) {
    if (indeg[i] == 0) q.push(i);
  }
  std::vector<NodeId> order;
  order.reserve(size());
  while (!q.empty()) {
    const NodeId u = q.top();
    q.pop();
    order.push_back(u);
    for (const NodeId v : succ_[u]) {
      if (--indeg[v] == 0) q.push(v);
    }
  }
  if (order.size() != size()) {
    throw std::logic_error("ExecutionGraph: cycle detected");
  }
  return order;
}

std::vector<std::vector<bool>> ExecutionGraph::ancestorClosure() const {
  std::vector<std::vector<bool>> anc(size(), std::vector<bool>(size(), false));
  for (const NodeId u : topologicalOrder()) {
    for (const NodeId p : pred_[u]) {
      anc[u][p] = true;
      for (NodeId k = 0; k < size(); ++k) {
        if (anc[p][k]) anc[u][k] = true;
      }
    }
  }
  return anc;
}

bool ExecutionGraph::respects(const Application& app) const {
  if (app.size() != size()) return false;
  if (!app.hasPrecedences()) return true;
  const auto anc = ancestorClosure();
  for (const auto& e : app.precedences()) {
    if (!anc[e.to][e.from]) return false;
  }
  return true;
}

bool ExecutionGraph::isForest() const noexcept {
  for (NodeId i = 0; i < size(); ++i) {
    if (pred_[i].size() > 1) return false;
  }
  return true;
}

bool ExecutionGraph::isChain() const noexcept {
  if (size() == 0) return true;
  std::size_t entries = 0;
  for (NodeId i = 0; i < size(); ++i) {
    if (pred_[i].size() > 1 || succ_[i].size() > 1) return false;
    if (pred_[i].empty()) ++entries;
  }
  // Acyclicity is an invariant, so one entry + max degree 1 implies a chain.
  return entries == 1;
}

bool operator==(const ExecutionGraph& a, const ExecutionGraph& b) {
  if (a.size() != b.size() || a.edgeCount_ != b.edgeCount_) return false;
  for (NodeId i = 0; i < a.size(); ++i) {
    auto sa = a.succ_[i];
    auto sb = b.succ_[i];
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    if (sa != sb) return false;
  }
  return true;
}

}  // namespace fsw
