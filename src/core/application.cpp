#include "src/core/application.hpp"

#include <queue>
#include <stdexcept>

namespace fsw {

NodeId Application::addService(Service s) {
  services_.push_back(std::move(s));
  precSucc_.emplace_back();
  return services_.size() - 1;
}

NodeId Application::addService(double cost, double selectivity,
                               std::string name) {
  if (cost < 0) throw std::invalid_argument("Service cost must be >= 0");
  if (selectivity < 0) {
    throw std::invalid_argument("Service selectivity must be >= 0");
  }
  if (name.empty()) name = "C" + std::to_string(services_.size() + 1);
  return addService(Service{cost, selectivity, std::move(name)});
}

void Application::addPrecedence(NodeId from, NodeId to) {
  if (from >= size() || to >= size()) {
    throw std::invalid_argument("addPrecedence: node id out of range");
  }
  if (from == to) {
    throw std::invalid_argument("addPrecedence: self-loop");
  }
  for (const NodeId v : precSucc_[from]) {
    if (v == to) {
      throw std::invalid_argument("addPrecedence: duplicate edge");
    }
  }
  if (reachable(to, from)) {
    throw std::invalid_argument("addPrecedence: edge would create a cycle");
  }
  precedences_.push_back({from, to});
  precSucc_[from].push_back(to);
}

bool Application::reachable(NodeId from, NodeId to) const {
  if (from == to) return true;
  std::vector<bool> seen(size(), false);
  std::queue<NodeId> q;
  q.push(from);
  seen[from] = true;
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const NodeId v : precSucc_[u]) {
      if (v == to) return true;
      if (!seen[v]) {
        seen[v] = true;
        q.push(v);
      }
    }
  }
  return false;
}

bool Application::mustPrecede(NodeId a, NodeId b) const {
  if (a == b) return false;
  return reachable(a, b);
}

std::vector<NodeId> Application::topologicalOrder() const {
  std::vector<std::size_t> indeg(size(), 0);
  for (const auto& e : precedences_) ++indeg[e.to];
  std::queue<NodeId> q;
  for (NodeId i = 0; i < size(); ++i) {
    if (indeg[i] == 0) q.push(i);
  }
  std::vector<NodeId> order;
  order.reserve(size());
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    order.push_back(u);
    for (const NodeId v : precSucc_[u]) {
      if (--indeg[v] == 0) q.push(v);
    }
  }
  if (order.size() != size()) {
    throw std::logic_error("Application: precedence graph has a cycle");
  }
  return order;
}

}  // namespace fsw
