// The execution graph EG = (C, E) of a plan: a DAG over the services whose
// transitive closure contains all precedence constraints of the application
// (Section 2.1). Edges beyond G are "filtering" edges added to shrink the
// data seen by downstream services.
//
// Virtual input/output nodes are *not* materialized: entry services
// (no predecessor) implicitly receive a size-delta0 input, and exit services
// (no successor) implicitly emit one output (Section 2.1).
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/application.hpp"
#include "src/core/service.hpp"

namespace fsw {

/// A directed edge of the execution graph.
struct Edge {
  NodeId from;
  NodeId to;
  friend bool operator==(const Edge&, const Edge&) = default;
};

class ExecutionGraph {
 public:
  /// An edgeless graph over n services.
  explicit ExecutionGraph(std::size_t n = 0);

  /// Builds a forest from a parent function: parent[i] == kNoNode makes C_i a
  /// root. Throws on cycles.
  static ExecutionGraph fromParents(const std::vector<NodeId>& parent);

  /// Builds a linear chain following `order` (order[0] is the entry service).
  static ExecutionGraph chain(const std::vector<NodeId>& order);

  [[nodiscard]] std::size_t size() const noexcept { return succ_.size(); }

  /// Adds edge from -> to. Throws std::invalid_argument on out-of-range ids,
  /// self-loops, duplicate edges, or if the edge would create a cycle.
  void addEdge(NodeId from, NodeId to);
  [[nodiscard]] bool hasEdge(NodeId from, NodeId to) const noexcept;

  [[nodiscard]] const std::vector<NodeId>& successors(NodeId i) const {
    return succ_.at(i);
  }
  [[nodiscard]] const std::vector<NodeId>& predecessors(NodeId i) const {
    return pred_.at(i);
  }
  [[nodiscard]] std::vector<Edge> edges() const;
  [[nodiscard]] std::size_t edgeCount() const noexcept { return edgeCount_; }

  [[nodiscard]] bool isEntry(NodeId i) const { return pred_.at(i).empty(); }
  [[nodiscard]] bool isExit(NodeId i) const { return succ_.at(i).empty(); }
  [[nodiscard]] std::vector<NodeId> entries() const;
  [[nodiscard]] std::vector<NodeId> exits() const;

  /// Topological order; stable (ready nodes released in index order).
  [[nodiscard]] std::vector<NodeId> topologicalOrder() const;

  /// ancestors(i)[j] == true iff C_j is a (strict) ancestor of C_i.
  [[nodiscard]] std::vector<std::vector<bool>> ancestorClosure() const;

  /// True iff the transitive closure of E contains every precedence edge of
  /// `app` (the validity condition of Section 2.1).
  [[nodiscard]] bool respects(const Application& app) const;

  /// True iff every node has at most one predecessor (Prop 4's optimal
  /// structure for MinPeriod).
  [[nodiscard]] bool isForest() const noexcept;

  /// True iff the graph is one linear chain covering all nodes.
  [[nodiscard]] bool isChain() const noexcept;

  friend bool operator==(const ExecutionGraph&, const ExecutionGraph&);

 private:
  [[nodiscard]] bool reachable(NodeId from, NodeId to) const;

  std::vector<std::vector<NodeId>> succ_;
  std::vector<std::vector<NodeId>> pred_;
  std::size_t edgeCount_ = 0;
};

}  // namespace fsw
