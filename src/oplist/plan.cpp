#include "src/oplist/plan.hpp"

namespace fsw {

PlanMetrics evaluate(const Application& app, const Plan& plan, CommModel m) {
  PlanMetrics out;
  out.valid = validate(app, plan.graph, plan.ol, m).valid;
  out.period = plan.ol.period();
  out.latency = plan.ol.latency();
  return out;
}

}  // namespace fsw
