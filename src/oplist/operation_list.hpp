// The operation list OL of a plan (Section 2.1, "Characterizing solutions"):
// for data set number 0, the begin/end time of every computation and every
// communication; the whole schedule repeats cyclically with period lambda
// (data set n is shifted by n * lambda).
//
// Virtual communications with the outside world are first-class entries:
// every entry service has an input communication from kWorld and every exit
// service an output communication to kWorld, because the paper's period and
// latency arithmetic counts them (e.g. C1's OUTORDER bound of 7 in Section
// 2.3 includes its input communication).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/core/service.hpp"

namespace fsw {

/// Pseudo-node representing the outside world (input/output nodes of EG).
inline constexpr NodeId kWorld = static_cast<NodeId>(-2);

/// One cyclic communication record (data set 0 occurrence).
struct CommRecord {
  NodeId from = kWorld;
  NodeId to = kWorld;
  double begin = 0.0;
  double end = 0.0;

  [[nodiscard]] double duration() const noexcept { return end - begin; }
  [[nodiscard]] bool isInput() const noexcept { return from == kWorld; }
  [[nodiscard]] bool isOutput() const noexcept { return to == kWorld; }
};

class OperationList {
 public:
  OperationList() = default;
  /// An empty OL over n services with period lambda.
  OperationList(std::size_t n, double lambda);

  [[nodiscard]] std::size_t size() const noexcept { return beginCalc_.size(); }

  [[nodiscard]] double lambda() const noexcept { return lambda_; }
  void setLambda(double lambda) noexcept { lambda_ = lambda; }

  void setCalc(NodeId i, double begin, double end);
  [[nodiscard]] double beginCalc(NodeId i) const { return beginCalc_.at(i); }
  [[nodiscard]] double endCalc(NodeId i) const { return endCalc_.at(i); }

  /// Adds (or overwrites) the communication from -> to. Use kWorld for the
  /// virtual input/output endpoints.
  void setComm(NodeId from, NodeId to, double begin, double end);
  [[nodiscard]] const std::vector<CommRecord>& comms() const noexcept {
    return comms_;
  }
  [[nodiscard]] std::optional<CommRecord> comm(NodeId from, NodeId to) const;

  /// Incoming (resp. outgoing) communications of node i, including virtual
  /// ones, in insertion order.
  [[nodiscard]] std::vector<CommRecord> incoming(NodeId i) const;
  [[nodiscard]] std::vector<CommRecord> outgoing(NodeId i) const;

  /// Period of the plan: P = lambda (Section 2.1).
  [[nodiscard]] double period() const noexcept { return lambda_; }

  /// Latency of the plan: max over communications of EndComm for data set 0
  /// (Section 2.1; output communications terminate every in->out path).
  [[nodiscard]] double latency() const noexcept;

  /// Shifts every time in the list by delta (used to re-anchor at t = 0).
  void shiftAll(double delta) noexcept;

  /// Human-readable dump (one line per operation, sorted by begin time).
  [[nodiscard]] std::string dump() const;

 private:
  double lambda_ = 0.0;
  std::vector<double> beginCalc_;
  std::vector<double> endCalc_;
  std::vector<CommRecord> comms_;
};

}  // namespace fsw
