// A plan PL = (EG, OL) (Section 2.1) and its evaluated metrics.
#pragma once

#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"
#include "src/core/model.hpp"
#include "src/oplist/operation_list.hpp"
#include "src/oplist/validate.hpp"

namespace fsw {

struct Plan {
  ExecutionGraph graph;
  OperationList ol;
};

/// Evaluated plan quality; `valid` is the validator's verdict under the
/// model the plan was built for.
struct PlanMetrics {
  bool valid = false;
  double period = 0.0;
  double latency = 0.0;
};

/// Validates and measures a plan under model m.
[[nodiscard]] PlanMetrics evaluate(const Application& app, const Plan& plan,
                                   CommModel m);

}  // namespace fsw
