// Validity of an operation list with respect to a communication model:
// the rule sets of Appendix A, implemented literally.
//
// Common rules (all models):
//   * structure: one communication per EG edge, one virtual input per entry
//     service, one virtual output per exit service, nothing else;
//   * durations: EndCalc - BeginCalc = Ccomp; one-port communications last
//     exactly their volume; OVERLAP communications last >= volume (a fixed
//     bandwidth ratio <= 1 for their whole execution — communications are
//     non-preemptive and their bandwidth share is constant);
//   * same-data-set precedence: incoming communications complete before the
//     computation, which completes before outgoing communications begin.
//
// INORDER adds: per node, incoming (resp. outgoing) communications pairwise
// disjoint in absolute time, and every outgoing communication of data set n
// ends before any incoming communication of data set n+1 begins
// (Appendix A constraint (1)).
//
// OUTORDER instead requires: every pair of operations hosted by the same
// server (its computation and all its incident communications) occupy
// disjoint windows *modulo lambda* (the case-1/case-2 analyses of Appendix
// A are exactly wrapped-interval disjointness).
//
// OVERLAP instead requires: the computation fits in one period, and at every
// instant the bandwidth ratios of the incoming (resp. outgoing)
// communications concurrently active on a server — counting multiple
// in-flight data sets — sum to at most b = 1.
#pragma once

#include <string>
#include <vector>

#include "src/core/application.hpp"
#include "src/core/cost_model.hpp"
#include "src/core/execution_graph.hpp"
#include "src/core/model.hpp"
#include "src/oplist/operation_list.hpp"

namespace fsw {

struct ValidationReport {
  bool valid = true;
  std::vector<std::string> violations;

  void fail(std::string msg) {
    valid = false;
    violations.push_back(std::move(msg));
  }
  [[nodiscard]] std::string summary() const;
};

/// Checks ol against the rules of model m for the plan (app, graph).
[[nodiscard]] ValidationReport validate(const Application& app,
                                        const ExecutionGraph& graph,
                                        const OperationList& ol, CommModel m,
                                        double eps = 1e-7);

/// The hybrid used by counter-examples B.2/B.3 to separate one-port from
/// multi-port: communication/computation overlap as in OVERLAP, but each
/// server's incoming (resp. outgoing) communications are serialized on a
/// one-port basis (pairwise disjoint modulo lambda). Computations remain
/// serialized with themselves (Ccomp <= lambda).
[[nodiscard]] ValidationReport validateOnePortOverlap(
    const Application& app, const ExecutionGraph& graph,
    const OperationList& ol, double eps = 1e-7);

/// True iff the two cyclic occupancy windows (begin b, duration d) overlap
/// modulo lambda. Zero-duration windows never overlap; windows touching at
/// endpoints do not overlap. Exposed for tests.
[[nodiscard]] bool wrappedOverlap(double b1, double d1, double b2, double d2,
                                  double lambda, double eps = 1e-9);

/// Number of instances of the cyclic window (begin b, duration d, period
/// lambda) active at time t, i.e. |{k in Z : b + k*lambda <= t < b + k*lambda
/// + d}|. Exposed for tests.
[[nodiscard]] int activeInstances(double b, double d, double t, double lambda,
                                  double eps = 1e-9);

}  // namespace fsw
