#include "src/oplist/operation_list.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace fsw {
namespace {

std::string nodeName(NodeId i) {
  if (i == kWorld) return "world";
  return "C" + std::to_string(i + 1);
}

}  // namespace

OperationList::OperationList(std::size_t n, double lambda)
    : lambda_(lambda), beginCalc_(n, 0.0), endCalc_(n, 0.0) {}

void OperationList::setCalc(NodeId i, double begin, double end) {
  if (i >= size()) throw std::out_of_range("setCalc: node out of range");
  if (end < begin) throw std::invalid_argument("setCalc: end < begin");
  beginCalc_[i] = begin;
  endCalc_[i] = end;
}

void OperationList::setComm(NodeId from, NodeId to, double begin, double end) {
  if (end < begin) throw std::invalid_argument("setComm: end < begin");
  for (auto& c : comms_) {
    if (c.from == from && c.to == to) {
      c.begin = begin;
      c.end = end;
      return;
    }
  }
  comms_.push_back({from, to, begin, end});
}

std::optional<CommRecord> OperationList::comm(NodeId from, NodeId to) const {
  for (const auto& c : comms_) {
    if (c.from == from && c.to == to) return c;
  }
  return std::nullopt;
}

std::vector<CommRecord> OperationList::incoming(NodeId i) const {
  std::vector<CommRecord> out;
  for (const auto& c : comms_) {
    if (c.to == i) out.push_back(c);
  }
  return out;
}

std::vector<CommRecord> OperationList::outgoing(NodeId i) const {
  std::vector<CommRecord> out;
  for (const auto& c : comms_) {
    if (c.from == i) out.push_back(c);
  }
  return out;
}

double OperationList::latency() const noexcept {
  double l = 0.0;
  for (const auto& c : comms_) l = std::max(l, c.end);
  return l;
}

void OperationList::shiftAll(double delta) noexcept {
  for (auto& b : beginCalc_) b += delta;
  for (auto& e : endCalc_) e += delta;
  for (auto& c : comms_) {
    c.begin += delta;
    c.end += delta;
  }
}

std::string OperationList::dump() const {
  struct Row {
    double begin;
    double end;
    std::string what;
  };
  std::vector<Row> rows;
  for (NodeId i = 0; i < size(); ++i) {
    rows.push_back({beginCalc_[i], endCalc_[i], "calc " + nodeName(i)});
  }
  for (const auto& c : comms_) {
    rows.push_back(
        {c.begin, c.end, "comm " + nodeName(c.from) + "->" + nodeName(c.to)});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.begin < b.begin || (a.begin == b.begin && a.end < b.end);
  });
  std::ostringstream os;
  os << "lambda = " << lambda_ << "\n";
  for (const auto& r : rows) {
    os << "  [" << r.begin << ", " << r.end << ")  " << r.what << "\n";
  }
  return os.str();
}

}  // namespace fsw
