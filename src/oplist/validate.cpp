#include "src/oplist/validate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/util.hpp"

namespace fsw {
namespace {

std::string nodeName(NodeId i) {
  if (i == kWorld) return "world";
  return "C" + std::to_string(i + 1);
}

std::string commName(const CommRecord& c) {
  return nodeName(c.from) + "->" + nodeName(c.to);
}

/// One server-hosted operation (computation or incident communication).
struct Op {
  double begin;
  double duration;
  std::string what;
};

/// Reduces x into [0, lambda).
double wrap(double x, double lambda) {
  double r = std::fmod(x, lambda);
  if (r < 0) r += lambda;
  return r;
}

/// Shared structural / duration / precedence validation. `onePortComms`
/// selects exact-volume communication durations (one-port) vs ratio <= 1
/// (multi-port).
struct Checker {
  const Application& app;
  const ExecutionGraph& graph;
  const OperationList& ol;
  double eps;
  CostModel costs;
  ValidationReport rep;

  Checker(const Application& a, const ExecutionGraph& g,
          const OperationList& o, double e)
      : app(a), graph(g), ol(o), eps(e), costs(a, g) {}

  [[nodiscard]] double volumeOf(const CommRecord& c) const {
    return c.isInput() ? 1.0 : costs.at(c.from).sigmaOut;
  }

  bool structure() {
    const std::size_t n = app.size();
    if (ol.size() != n || graph.size() != n) {
      rep.fail("size mismatch between application, graph and operation list");
      return false;
    }
    if (ol.lambda() <= 0.0) {
      rep.fail("lambda must be positive");
      return false;
    }
    std::size_t expected = graph.edgeCount();
    for (NodeId i = 0; i < n; ++i) {
      if (graph.isEntry(i)) ++expected;
      if (graph.isExit(i)) ++expected;
    }
    if (ol.comms().size() != expected) {
      rep.fail("operation list has " + std::to_string(ol.comms().size()) +
               " communications, expected " + std::to_string(expected));
    }
    for (const auto& c : ol.comms()) {
      if (c.from == kWorld) {
        if (c.to >= n || !graph.isEntry(c.to)) {
          rep.fail("input communication to non-entry node " + nodeName(c.to));
        }
      } else if (c.to == kWorld) {
        if (c.from >= n || !graph.isExit(c.from)) {
          rep.fail("output communication from non-exit node " +
                   nodeName(c.from));
        }
      } else if (!graph.hasEdge(c.from, c.to)) {
        rep.fail("communication " + commName(c) + " has no EG edge");
      }
    }
    for (const auto& e : graph.edges()) {
      if (!ol.comm(e.from, e.to)) {
        rep.fail("missing communication for edge " + nodeName(e.from) + "->" +
                 nodeName(e.to));
      }
    }
    for (NodeId i = 0; i < n; ++i) {
      if (graph.isEntry(i) && !ol.comm(kWorld, i)) {
        rep.fail("missing virtual input communication for " + nodeName(i));
      }
      if (graph.isExit(i) && !ol.comm(i, kWorld)) {
        rep.fail("missing virtual output communication for " + nodeName(i));
      }
    }
    return rep.valid;
  }

  void durations(bool onePortComms) {
    for (NodeId i = 0; i < app.size(); ++i) {
      const double want = costs.at(i).ccomp;
      const double got = ol.endCalc(i) - ol.beginCalc(i);
      if (!almostEqual(got, want, eps)) {
        rep.fail("calc " + nodeName(i) + " lasts " + std::to_string(got) +
                 ", Ccomp is " + std::to_string(want));
      }
    }
    for (const auto& c : ol.comms()) {
      const double vol = volumeOf(c);
      const double d = c.duration();
      if (onePortComms) {
        if (!almostEqual(d, vol, eps)) {
          rep.fail("comm " + commName(c) + " lasts " + std::to_string(d) +
                   ", volume is " + std::to_string(vol));
        }
      } else if (d + eps < vol) {  // fixed bandwidth ratio vol/d <= 1
        rep.fail("comm " + commName(c) + " lasts " + std::to_string(d) +
                 " < volume " + std::to_string(vol));
      }
    }
  }

  void precedence() {
    for (const auto& c : ol.comms()) {
      if (!c.isInput() && !almostLeq(ol.endCalc(c.from), c.begin, eps)) {
        rep.fail("comm " + commName(c) + " begins before calc of " +
                 nodeName(c.from) + " ends");
      }
      if (!c.isOutput() && !almostLeq(c.end, ol.beginCalc(c.to), eps)) {
        rep.fail("comm " + commName(c) + " ends after calc of " +
                 nodeName(c.to) + " begins");
      }
    }
  }

  /// Pairwise mod-lambda disjointness of a set of operations.
  void noOverlapModLambda(const std::vector<Op>& ops, const std::string& where) {
    const double lambda = ol.lambda();
    for (const auto& op : ops) {
      if (op.duration > lambda + eps) {
        rep.fail(op.what + " lasts " + std::to_string(op.duration) +
                 " > lambda at " + where);
      }
    }
    for (std::size_t a = 0; a < ops.size(); ++a) {
      for (std::size_t b = a + 1; b < ops.size(); ++b) {
        if (wrappedOverlap(ops[a].begin, ops[a].duration, ops[b].begin,
                           ops[b].duration, lambda, eps)) {
          rep.fail("no-overlap: " + ops[a].what + " and " + ops[b].what +
                   " collide modulo lambda at " + where);
        }
      }
    }
  }

  [[nodiscard]] std::vector<Op> commOps(const std::vector<CommRecord>& comms) const {
    std::vector<Op> ops;
    ops.reserve(comms.size());
    for (const auto& c : comms) {
      ops.push_back({c.begin, c.duration(), "comm " + commName(c)});
    }
    return ops;
  }

  void inorderRules() {
    const double lambda = ol.lambda();
    for (NodeId i = 0; i < app.size(); ++i) {
      const auto ins = ol.incoming(i);
      const auto outs = ol.outgoing(i);
      auto disjoint = [&](const CommRecord& a, const CommRecord& b) {
        return almostLeq(a.end, b.begin, eps) || almostLeq(b.end, a.begin, eps);
      };
      for (std::size_t a = 0; a < ins.size(); ++a) {
        for (std::size_t b = a + 1; b < ins.size(); ++b) {
          if (!disjoint(ins[a], ins[b])) {
            rep.fail("one-port: incoming " + commName(ins[a]) + " and " +
                     commName(ins[b]) + " overlap at " + nodeName(i));
          }
        }
      }
      for (std::size_t a = 0; a < outs.size(); ++a) {
        for (std::size_t b = a + 1; b < outs.size(); ++b) {
          if (!disjoint(outs[a], outs[b])) {
            rep.fail("one-port: outgoing " + commName(outs[a]) + " and " +
                     commName(outs[b]) + " overlap at " + nodeName(i));
          }
        }
      }
      // Appendix A constraint (1): sends of data set n precede receives of
      // data set n+1.
      for (const auto& out : outs) {
        for (const auto& in : ins) {
          if (!almostLeq(out.end, in.begin + lambda, eps)) {
            rep.fail("in-order: " + commName(out) + " (set n) ends after " +
                     commName(in) + " (set n+1) begins at " + nodeName(i));
          }
        }
      }
    }
  }

  void outorderRules() {
    for (NodeId i = 0; i < app.size(); ++i) {
      std::vector<Op> ops = commOps(ol.incoming(i));
      const auto outs = commOps(ol.outgoing(i));
      ops.insert(ops.end(), outs.begin(), outs.end());
      ops.push_back({ol.beginCalc(i), costs.at(i).ccomp, "calc " + nodeName(i)});
      noOverlapModLambda(ops, nodeName(i));
    }
  }

  void overlapRules() {
    const double lambda = ol.lambda();
    for (NodeId i = 0; i < app.size(); ++i) {
      if (costs.at(i).ccomp > lambda + eps) {
        rep.fail("calc " + nodeName(i) + " exceeds lambda");
      }
    }
    // Bandwidth capacity, per server and direction, at interval midpoints
    // between all communication endpoints (load is piecewise constant).
    for (NodeId i = 0; i < app.size(); ++i) {
      for (const bool inDir : {true, false}) {
        const auto dir = inDir ? ol.incoming(i) : ol.outgoing(i);
        std::vector<double> points;
        for (const auto& c : dir) {
          points.push_back(wrap(c.begin, lambda));
          points.push_back(wrap(c.end, lambda));
        }
        std::sort(points.begin(), points.end());
        points.push_back(lambda);
        double prev = 0.0;
        for (const double p : points) {
          if (p - prev < 10 * eps) {
            prev = p;
            continue;
          }
          const double t = 0.5 * (prev + p);
          prev = p;
          double load = 0.0;
          for (const auto& c : dir) {
            const double d = c.duration();
            const double vol = volumeOf(c);
            if (d <= eps || vol <= 0.0) continue;
            load += (vol / d) * activeInstances(c.begin, d, t, lambda);
          }
          if (load > 1.0 + 100 * eps) {
            rep.fail(std::string(inDir ? "incoming" : "outgoing") +
                     " bandwidth exceeded at " + nodeName(i) +
                     " (t=" + std::to_string(t) +
                     ", load=" + std::to_string(load) + ")");
          }
        }
      }
    }
  }

  void onePortOverlapRules() {
    const double lambda = ol.lambda();
    for (NodeId i = 0; i < app.size(); ++i) {
      if (costs.at(i).ccomp > lambda + eps) {
        rep.fail("calc " + nodeName(i) + " exceeds lambda");
      }
      noOverlapModLambda(commOps(ol.incoming(i)), nodeName(i) + " (in port)");
      noOverlapModLambda(commOps(ol.outgoing(i)), nodeName(i) + " (out port)");
    }
  }
};

}  // namespace

std::string ValidationReport::summary() const {
  if (valid) return "valid";
  std::ostringstream os;
  os << violations.size() << " violation(s):";
  for (const auto& v : violations) os << "\n  - " << v;
  return os.str();
}

bool wrappedOverlap(double b1, double d1, double b2, double d2, double lambda,
                    double eps) {
  if (d1 <= eps || d2 <= eps) return false;
  const double r1 = wrap(b1, lambda);
  const double r2 = wrap(b2, lambda);
  for (int k = -1; k <= 1; ++k) {
    const double lo = std::max(r1, r2 + k * lambda);
    const double hi = std::min(r1 + d1, r2 + k * lambda + d2);
    if (hi - lo > eps) return true;
  }
  return false;
}

int activeInstances(double b, double d, double t, double lambda, double eps) {
  if (d <= eps) return 0;
  // Count integers k with b + k*lambda <= t < b + k*lambda + d, i.e.
  // k in ((t - b - d)/lambda, (t - b)/lambda].
  const double hi = (t - b) / lambda;
  const double lo = (t - b - d) / lambda;
  return static_cast<int>(std::floor(hi + eps) - std::floor(lo + eps));
}

ValidationReport validate(const Application& app, const ExecutionGraph& graph,
                          const OperationList& ol, CommModel m, double eps) {
  Checker chk(app, graph, ol, eps);
  if (!chk.structure()) return chk.rep;
  chk.durations(/*onePortComms=*/m != CommModel::Overlap);
  chk.precedence();
  switch (m) {
    case CommModel::InOrder:
      chk.inorderRules();
      break;
    case CommModel::OutOrder:
      chk.outorderRules();
      break;
    case CommModel::Overlap:
      chk.overlapRules();
      break;
  }
  return chk.rep;
}

ValidationReport validateOnePortOverlap(const Application& app,
                                        const ExecutionGraph& graph,
                                        const OperationList& ol, double eps) {
  Checker chk(app, graph, ol, eps);
  if (!chk.structure()) return chk.rep;
  chk.durations(/*onePortComms=*/true);
  chk.precedence();
  chk.onePortOverlapRules();
  return chk.rep;
}

}  // namespace fsw
