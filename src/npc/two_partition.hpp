// 2-Partition (Garey & Johnson [18]), used by Prop 17's reduction: does a
// subset I of X sum to (sum X) / 2?
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace fsw {

/// Exact pseudo-polynomial DP. Returns the indices of a witness subset, or
/// nullopt when none exists (including odd total sums).
[[nodiscard]] std::optional<std::vector<std::size_t>> solveTwoPartition(
    const std::vector<std::int64_t>& x);

}  // namespace fsw
