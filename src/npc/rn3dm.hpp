// RN3DM — the "permutation sums" restriction of Numerical 3-Dimensional
// Matching (Yu, Hoogeveen & Lenstra [22]) that every NP-hardness proof of
// the paper reduces from:
//
//   given A[1..n], do two permutations lambda1, lambda2 of {1..n} exist with
//   lambda1(i) + lambda2(i) = A[i] for all i?
//
// Necessary condition: sum A[i] = n(n+1) and 2 <= A[i] <= 2n.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/prng.hpp"

namespace fsw {

struct Rn3dmInstance {
  std::vector<std::int64_t> a;  ///< A[0..n-1] (paper indexes from 1)

  [[nodiscard]] std::size_t size() const noexcept { return a.size(); }
  /// The necessary feasibility conditions (sum and range).
  [[nodiscard]] bool plausible() const noexcept;
};

/// Witness: lambda1[i] + lambda2[i] == a[i], both permutations of {1..n}.
struct Rn3dmWitness {
  std::vector<std::int64_t> lambda1;
  std::vector<std::int64_t> lambda2;
};

/// Exact solver (DFS with feasibility pruning); exponential worst case but
/// instantaneous for the test-scale n <= 12 this library uses.
[[nodiscard]] std::optional<Rn3dmWitness> solveRn3dm(const Rn3dmInstance& inst);

/// True iff `w` is a valid witness for `inst`.
[[nodiscard]] bool checkWitness(const Rn3dmInstance& inst,
                                const Rn3dmWitness& w);

/// A solvable instance: A = lambda1 + lambda2 for random permutations.
[[nodiscard]] Rn3dmInstance randomSolvableRn3dm(std::size_t n, Prng& rng);

/// A random instance satisfying the necessary sum condition but otherwise
/// arbitrary (may or may not be solvable).
[[nodiscard]] Rn3dmInstance randomPlausibleRn3dm(std::size_t n, Prng& rng);

}  // namespace fsw
