#include "src/npc/rn3dm.hpp"

#include <algorithm>
#include <numeric>

namespace fsw {

bool Rn3dmInstance::plausible() const noexcept {
  const auto n = static_cast<std::int64_t>(a.size());
  std::int64_t sum = 0;
  for (const auto v : a) {
    if (v < 2 || v > 2 * n) return false;
    sum += v;
  }
  return sum == n * (n + 1);
}

namespace {

struct Dfs {
  const std::vector<std::int64_t>& a;
  std::int64_t n;
  std::vector<bool> used1, used2;
  std::vector<std::int64_t> l1, l2;
  std::vector<std::size_t> order;  // indices sorted by ascending slack

  explicit Dfs(const std::vector<std::int64_t>& av)
      : a(av),
        n(static_cast<std::int64_t>(av.size())),
        used1(av.size() + 1, false),
        used2(av.size() + 1, false),
        l1(av.size(), 0),
        l2(av.size(), 0),
        order(av.size()) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    // Most-constrained first: extreme sums admit the fewest splits.
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      const auto slack = [&](std::size_t i) {
        const std::int64_t lo = std::max<std::int64_t>(1, a[i] - n);
        const std::int64_t hi = std::min<std::int64_t>(n, a[i] - 1);
        return hi - lo;
      };
      return slack(x) < slack(y);
    });
  }

  bool solve(std::size_t k) {
    if (k == order.size()) return true;
    const std::size_t i = order[k];
    const std::int64_t lo = std::max<std::int64_t>(1, a[i] - n);
    const std::int64_t hi = std::min<std::int64_t>(n, a[i] - 1);
    for (std::int64_t v = lo; v <= hi; ++v) {
      const std::int64_t w = a[i] - v;
      if (used1[static_cast<std::size_t>(v)] ||
          used2[static_cast<std::size_t>(w)]) {
        continue;
      }
      used1[static_cast<std::size_t>(v)] = true;
      used2[static_cast<std::size_t>(w)] = true;
      l1[i] = v;
      l2[i] = w;
      if (solve(k + 1)) return true;
      used1[static_cast<std::size_t>(v)] = false;
      used2[static_cast<std::size_t>(w)] = false;
    }
    return false;
  }
};

}  // namespace

std::optional<Rn3dmWitness> solveRn3dm(const Rn3dmInstance& inst) {
  if (!inst.plausible()) return std::nullopt;
  Dfs dfs(inst.a);
  if (!dfs.solve(0)) return std::nullopt;
  return Rn3dmWitness{dfs.l1, dfs.l2};
}

bool checkWitness(const Rn3dmInstance& inst, const Rn3dmWitness& w) {
  const auto n = inst.size();
  if (w.lambda1.size() != n || w.lambda2.size() != n) return false;
  std::vector<bool> seen1(n + 1, false);
  std::vector<bool> seen2(n + 1, false);
  for (std::size_t i = 0; i < n; ++i) {
    const auto v1 = w.lambda1[i];
    const auto v2 = w.lambda2[i];
    if (v1 < 1 || v1 > static_cast<std::int64_t>(n)) return false;
    if (v2 < 1 || v2 > static_cast<std::int64_t>(n)) return false;
    if (seen1[static_cast<std::size_t>(v1)]) return false;
    if (seen2[static_cast<std::size_t>(v2)]) return false;
    seen1[static_cast<std::size_t>(v1)] = true;
    seen2[static_cast<std::size_t>(v2)] = true;
    if (v1 + v2 != inst.a[i]) return false;
  }
  return true;
}

Rn3dmInstance randomSolvableRn3dm(std::size_t n, Prng& rng) {
  const auto p1 = rng.permutation(n);
  const auto p2 = rng.permutation(n);
  Rn3dmInstance inst;
  inst.a.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    inst.a[i] = static_cast<std::int64_t>(p1[i] + 1 + p2[i] + 1);
  }
  return inst;
}

Rn3dmInstance randomPlausibleRn3dm(std::size_t n, Prng& rng) {
  // Start from a solvable instance and apply sum-preserving perturbations
  // (+1 / -1 on a pair), keeping values in range.
  Rn3dmInstance inst = randomSolvableRn3dm(n, rng);
  const auto limit = static_cast<std::int64_t>(2 * n);
  for (std::size_t k = 0; k < 4 * n; ++k) {
    const auto i = static_cast<std::size_t>(rng.uniformInt(0, n - 1));
    const auto j = static_cast<std::size_t>(rng.uniformInt(0, n - 1));
    if (i == j) continue;
    if (inst.a[i] < limit && inst.a[j] > 2) {
      ++inst.a[i];
      --inst.a[j];
    }
  }
  return inst;
}

}  // namespace fsw
