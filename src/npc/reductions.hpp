// Executable NP-hardness reductions: each builder maps an RN3DM (or
// 2-Partition) instance to the scheduling gadget of the corresponding proof,
// together with the decision threshold K and — when a witness is supplied —
// the schedule the forward direction of the proof constructs. Tests validate
// the forward direction end-to-end: witness orders/graphs fed to the
// library's solvers meet K exactly.
//
// Fidelity notes (see DESIGN.md):
//  * Prop 2 (Fig 9): the text enumerates C1's sends and C_{2n+5}'s receives
//    slightly inconsistently (C_{2n+4} both sends to C_{2n+5} and is
//    implied not to); we resolve it by making C_{2n+4} an exit service,
//    which preserves every busy-time identity of the proof (all servers on
//    the critical cycle have zero slack at K = 2n+3).
//  * Prop 5: the rational a, b, gamma with power-of-two denominators exist
//    only for large n (the proof's encoding-size argument); we pick
//    double-precision values in the same open intervals, which preserves
//    every inequality the proof uses.
//  * Prop 6: the OCR of K's definition is garbled; K only needs to be large
//    enough for cost positivity (the proof's identities fix everything
//    else), so we take K = 2n + 4.
//  * Prop 13: the proof's latency accounting omits the initial size-delta0
//    input transfer; our latency includes it, so the threshold is K + 1.
//  * Prop 17: the proof's chain latency counts only computation terms, and
//    its expansion of prod(1 - x_i/A) uses pair coefficient 2 where the
//    correct Taylor expansion has 1 — with exact product arithmetic the
//    gadget does not separate partitions (we verified numerically: the full
//    set minimizes the exact formula). prop17ChainObjective therefore
//    implements the proof's *expanded quadratic* objective
//    cLast + (3/(2A(A-S)))((S/2 - w)^2 - S^2/4), which is the quantity the
//    proof actually compares against K.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"
#include "src/core/model.hpp"
#include "src/npc/rn3dm.hpp"
#include "src/sched/port_orders.hpp"

namespace fsw {

struct ReductionInstance {
  Application app;
  ExecutionGraph graph{0};  ///< the proof's EG (given-EG problems) or the
                            ///< witness-optimal EG (Min* problems)
  double threshold = 0.0;   ///< decision bound K
  CommModel model = CommModel::OutOrder;
  Objective objective = Objective::Period;
};

// ---- Theorem 1 / Prop 2: period of a given EG, OUTORDER (also INORDER). --
/// Gadget of Fig 9 over 2n+5 unit-selectivity services; K = 2n+3.
[[nodiscard]] ReductionInstance prop2PeriodGadget(const Rn3dmInstance& inst);
/// The proof's witness port orders (C1 sends by lambda1, C_{2n+5} receives
/// by n+1-lambda2).
[[nodiscard]] PortOrders prop2WitnessOrders(const ReductionInstance& red,
                                            const Rn3dmWitness& w);

// ---- Theorem 2 / Prop 5: MinPeriod, OVERLAP. ----------------------------
/// 3n services; K = 3/2.
[[nodiscard]] ReductionInstance prop5MinPeriodGadget(const Rn3dmInstance& inst);
/// The Fig 10 witness plan: chains C1,l1(i) -> C2,l2(i) -> C3,i.
[[nodiscard]] ExecutionGraph prop5WitnessGraph(const ReductionInstance& red,
                                               const Rn3dmWitness& w);

// ---- Theorem 2 / Prop 6: MinPeriod, OUTORDER (also INORDER, Prop 7). ----
/// 3n+1 services; K = 2n+4 (see fidelity note).
[[nodiscard]] ReductionInstance prop6MinPeriodGadget(const Rn3dmInstance& inst);
/// The Fig 11 witness plan: C0 -> Cx_i -> Cy_{l1(i)} -> Cz_{l2(i)} chains.
[[nodiscard]] ExecutionGraph prop6WitnessGraph(const ReductionInstance& red,
                                               const Rn3dmWitness& w);

// ---- Theorem 3 / Prop 9: latency of a given EG, OUTORDER (also INORDER). -
/// Fork-join of Fig 12 over n+2 unit-selectivity services; K = n + 4 + n^2.
[[nodiscard]] ReductionInstance prop9LatencyGadget(const Rn3dmInstance& inst);
[[nodiscard]] PortOrders prop9WitnessOrders(const ReductionInstance& red,
                                            const Rn3dmWitness& w);

// ---- Theorem 4 / Prop 13: MinLatency, OUTORDER. --------------------------
/// Fork-join gadget (fork F, n filters, join J); threshold includes the
/// size-delta0 input (K + 1, fidelity note above).
[[nodiscard]] ReductionInstance prop13MinLatencyGadget(
    const Rn3dmInstance& inst);
[[nodiscard]] ExecutionGraph prop13WitnessGraph(const ReductionInstance& red);
[[nodiscard]] PortOrders prop13WitnessOrders(const ReductionInstance& red,
                                             const Rn3dmWitness& w);

// ---- Prop 17: MinLatency restricted to forests, via 2-Partition. ---------
struct Prop17Gadget {
  Application app;                ///< n + 1 services (x-services + C_{n+1})
  std::vector<std::int64_t> xs;   ///< the 2-Partition items
  double sum = 0.0;               ///< S
  double threshold = 0.0;         ///< K
  double bigA = 0.0;              ///< the scaling constant A
};
[[nodiscard]] Prop17Gadget prop17ForestGadget(const std::vector<std::int64_t>& x);
/// The proof's expanded chain-latency objective for chaining subset I before
/// C_{n+1} (see fidelity note): a convex quadratic in w = sum_I x, minimized
/// exactly at a perfect partition.
[[nodiscard]] double prop17ChainObjective(const Prop17Gadget& g,
                                          const std::vector<std::size_t>& subset);

}  // namespace fsw
