#include "src/npc/two_partition.hpp"

#include <numeric>

namespace fsw {

std::optional<std::vector<std::size_t>> solveTwoPartition(
    const std::vector<std::int64_t>& x) {
  std::int64_t total = 0;
  for (const auto v : x) {
    if (v < 0) return std::nullopt;
    total += v;
  }
  if (total % 2 != 0) return std::nullopt;
  const auto target = static_cast<std::size_t>(total / 2);

  // reach[s] = index of the last item used to first reach sum s (+1), 0 if
  // unreachable; lets us backtrack a witness.
  std::vector<std::size_t> reach(target + 1, 0);
  std::vector<std::size_t> from(target + 1, 0);
  reach[0] = x.size() + 1;  // sentinel: empty set
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto v = static_cast<std::size_t>(x[i]);
    if (v > target) return std::nullopt;  // item exceeds half: no partition
    for (std::size_t s = target; s + 1 > v; --s) {
      if (reach[s - v] != 0 && reach[s] == 0) {
        reach[s] = i + 1;
        from[s] = s - v;
      }
    }
  }
  if (reach[target] == 0) return std::nullopt;
  std::vector<std::size_t> witness;
  std::size_t s = target;
  while (s != 0) {
    const std::size_t item = reach[s] - 1;
    witness.push_back(item);
    s = from[s];
  }
  return witness;
}

}  // namespace fsw
