#include "src/npc/reductions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fsw {
namespace {

void requireWitnessSize(const Rn3dmWitness& w, std::size_t n) {
  if (w.lambda1.size() != n || w.lambda2.size() != n) {
    throw std::invalid_argument("witness size mismatch");
  }
}

}  // namespace

// ---------------------------------------------------------------- Prop 2 --
//
// Index map (0-based) for the 2n+5 services of Fig 9:
//   0        C1        cost n      hub: n+2 sends (evens, C2n+2, C2n+4)
//   2i-1     C_{2i}    cost 2n+1   "even" chain heads, i = 1..n
//   2i       C_{2i+1}  cost 2n+1-A[i], chain tails feeding C2n+5
//   2n+1     C_{2n+2}  cost 2n+1   two-hop branch head
//   2n+2     C_{2n+3}  cost 2n+1   its tail, feeds C2n+5
//   2n+3     C_{2n+4}  cost 2n+1   one-hop branch, feeds C2n+5
//   2n+4     C_{2n+5}  cost n      join: n+2 receives (odds, C2n+3, C2n+4)
//
// Every service on the C1 -> ... -> C2n+5 branches has one-port busy time
// exactly 2n+3 = K except the odd tails, whose slack A[i] is what the
// witness permutations consume.
ReductionInstance prop2PeriodGadget(const Rn3dmInstance& inst) {
  const std::size_t n = inst.size();
  const double dn = static_cast<double>(n);
  ReductionInstance red;
  red.model = CommModel::OutOrder;
  red.objective = Objective::Period;
  red.threshold = 2.0 * dn + 3.0;

  auto& app = red.app;
  app.addService(dn, 1.0, "C1");
  for (std::size_t i = 1; i <= n; ++i) {
    app.addService(2.0 * dn + 1.0, 1.0, "C" + std::to_string(2 * i));
    app.addService(2.0 * dn + 1.0 - static_cast<double>(inst.a[i - 1]), 1.0,
                   "C" + std::to_string(2 * i + 1));
  }
  app.addService(2.0 * dn + 1.0, 1.0, "C" + std::to_string(2 * n + 2));
  app.addService(2.0 * dn + 1.0, 1.0, "C" + std::to_string(2 * n + 3));
  app.addService(2.0 * dn + 1.0, 1.0, "C" + std::to_string(2 * n + 4));
  app.addService(dn, 1.0, "C" + std::to_string(2 * n + 5));

  const NodeId c1 = 0;
  const NodeId c2n2 = 2 * n + 1;
  const NodeId c2n3 = 2 * n + 2;
  const NodeId c2n4 = 2 * n + 3;
  const NodeId c2n5 = 2 * n + 4;

  ExecutionGraph g(app.size());
  for (std::size_t i = 1; i <= n; ++i) {
    const NodeId even = 2 * i - 1;
    const NodeId odd = 2 * i;
    g.addEdge(c1, even);
    g.addEdge(even, odd);
    g.addEdge(odd, c2n5);
  }
  g.addEdge(c1, c2n2);
  g.addEdge(c2n2, c2n3);
  g.addEdge(c2n3, c2n5);
  g.addEdge(c1, c2n4);
  g.addEdge(c2n4, c2n5);
  red.graph = std::move(g);
  return red;
}

PortOrders prop2WitnessOrders(const ReductionInstance& red,
                              const Rn3dmWitness& w) {
  const std::size_t n = (red.app.size() - 5) / 2;
  requireWitnessSize(w, n);
  PortOrders po = PortOrders::canonical(red.graph);
  const NodeId c1 = 0;
  const NodeId c2n2 = 2 * n + 1;
  const NodeId c2n3 = 2 * n + 2;
  const NodeId c2n4 = 2 * n + 3;
  const NodeId c2n5 = 2 * n + 4;

  // C1 sends: C2n+2 (the two-hop branch) first, then the even heads at
  // positions lambda1, then C2n+4 (the one-hop branch) last.
  std::vector<NodeId> sends(n + 2, kNoNode);
  sends[0] = c2n2;
  for (std::size_t i = 1; i <= n; ++i) {
    const NodeId even = 2 * i - 1;
    sends[static_cast<std::size_t>(w.lambda1[i - 1])] = even;
  }
  sends[n + 1] = c2n4;
  po.setOut(c1, sends);

  // C2n+5 receives: C2n+4 first, then the odd tails at positions
  // n+2-lambda2, then C2n+3 last.
  std::vector<NodeId> recvs(n + 2, kNoNode);
  recvs[0] = c2n4;
  for (std::size_t i = 1; i <= n; ++i) {
    const NodeId odd = 2 * i;
    recvs[n + 1 - static_cast<std::size_t>(w.lambda2[i - 1])] = odd;
  }
  recvs[n + 1] = c2n3;
  po.setIn(c2n5, recvs);
  return po;
}

// ---------------------------------------------------------------- Prop 5 --
//
// Index map for the 3n services: C1,i -> i-1; C2,i -> n+i-1; C3,i -> 2n+i-1.
ReductionInstance prop5MinPeriodGadget(const Rn3dmInstance& inst) {
  const std::size_t n = inst.size();
  const double dn = static_cast<double>(n);
  const double K = 1.5;
  // a, b in ((3/4)^(1/2n), (3.2/4)^(1/2n)); 1 < gamma < (b/a)^(1/n).
  const double lo = std::pow(0.75, 1.0 / (2.0 * dn));
  const double hi = std::pow(0.80, 1.0 / (2.0 * dn));
  const double a = lo + (hi - lo) / 3.0;
  const double b = lo + 2.0 * (hi - lo) / 3.0;
  const double gamma = std::pow(b / a, 1.0 / (2.0 * dn));

  ReductionInstance red;
  red.model = CommModel::Overlap;
  red.objective = Objective::Period;
  red.threshold = K;
  auto& app = red.app;
  for (std::size_t i = 1; i <= n; ++i) {
    app.addService(K, a * std::pow(gamma, static_cast<double>(i)),
                   "C1," + std::to_string(i));
  }
  for (std::size_t i = 1; i <= n; ++i) {
    app.addService(K * 2.0 / (b + 1.0),
                   a * std::pow(gamma, static_cast<double>(i)),
                   "C2," + std::to_string(i));
  }
  for (std::size_t i = 1; i <= n; ++i) {
    app.addService(
        (K / (a * a)) * std::pow(gamma, -static_cast<double>(inst.a[i - 1])),
        K / (b * b), "C3," + std::to_string(i));
  }
  red.graph = ExecutionGraph(app.size());  // MinPeriod: no EG prescribed
  return red;
}

ExecutionGraph prop5WitnessGraph(const ReductionInstance& red,
                                 const Rn3dmWitness& w) {
  const std::size_t n = red.app.size() / 3;
  requireWitnessSize(w, n);
  ExecutionGraph g(red.app.size());
  for (std::size_t i = 1; i <= n; ++i) {
    const NodeId first = static_cast<std::size_t>(w.lambda1[i - 1]) - 1;
    const NodeId second = n + static_cast<std::size_t>(w.lambda2[i - 1]) - 1;
    const NodeId third = 2 * n + i - 1;
    g.addEdge(first, second);
    g.addEdge(second, third);
  }
  return g;
}

// ---------------------------------------------------------------- Prop 6 --
//
// Index map for the 3n+1 services: C0 -> 0; Cx_i -> i; Cy_i -> n+i;
// Cz_i -> 2n+i (i = 1..n). x_i = y_i = n - i, z_i = A[i].
ReductionInstance prop6MinPeriodGadget(const Rn3dmInstance& inst) {
  const std::size_t n = inst.size();
  const double dn = static_cast<double>(n);
  const double eps = 1.0 / (2.0 * dn);
  // The proof's alpha = 1 + 2^-n needs n >= 7 for alpha^(n-1) <= 1 + eps;
  // 1 + eps/(2n) preserves every identity and works at all n (see
  // reductions.hpp fidelity notes).
  const double alpha = 1.0 + eps / (2.0 * dn);
  const double alpha2n = std::pow(alpha, 2.0 * dn);
  const double K = 2.0 * dn + 4.0;  // any K large enough for positive costs
  const double sigma0 = 1.0 / (alpha2n * (1.0 + eps));

  ReductionInstance red;
  red.model = CommModel::OutOrder;
  red.objective = Objective::Period;
  red.threshold = K;
  auto& app = red.app;
  app.addService(K - 1.0 - dn * sigma0, sigma0, "C0");
  for (std::size_t i = 1; i <= n; ++i) {  // Cx_i: sigma = alpha^(n-i)
    const double s = std::pow(alpha, dn - static_cast<double>(i));
    app.addService(K / sigma0 - s - 1.0, s, "Cx" + std::to_string(i));
  }
  for (std::size_t i = 1; i <= n; ++i) {  // Cy_i: sigma = (1+eps) alpha^(n-i)
    const double s =
        (1.0 + eps) * std::pow(alpha, dn - static_cast<double>(i));
    app.addService(K / (sigma0 * (1.0 + eps)) - 1.0 - s, s,
                   "Cy" + std::to_string(i));
  }
  for (std::size_t i = 1; i <= n; ++i) {  // Cz_i: 1 + sigma + c = alpha^z K
    const double s = 1.0 + 2.0 * eps;
    const double c =
        std::pow(alpha, static_cast<double>(inst.a[i - 1])) * K - 1.0 - s;
    app.addService(c, s, "Cz" + std::to_string(i));
  }
  red.graph = ExecutionGraph(app.size());
  return red;
}

ExecutionGraph prop6WitnessGraph(const ReductionInstance& red,
                                 const Rn3dmWitness& w) {
  const std::size_t n = (red.app.size() - 1) / 3;
  requireWitnessSize(w, n);
  // Chain j is Cx_{lambda1(j)} -> Cy_{lambda2(j)} -> Cz_j: the exponent sum
  // (n - lambda1(j)) + (n - lambda2(j)) + A[j] is exactly 2n on a witness.
  ExecutionGraph g(red.app.size());
  for (std::size_t j = 1; j <= n; ++j) {
    const NodeId x = static_cast<std::size_t>(w.lambda1[j - 1]);
    const NodeId y = n + static_cast<std::size_t>(w.lambda2[j - 1]);
    const NodeId z = 2 * n + j;
    g.addEdge(0, x);
    g.addEdge(x, y);
    g.addEdge(y, z);
  }
  return g;
}

// ---------------------------------------------------------------- Prop 9 --
//
// Fork-join of Fig 12: C0 -> 0, C_i -> i (i = 1..n), C_{n+1} -> n+1.
ReductionInstance prop9LatencyGadget(const Rn3dmInstance& inst) {
  const std::size_t n = inst.size();
  const double dn = static_cast<double>(n);
  ReductionInstance red;
  red.model = CommModel::OutOrder;
  red.objective = Objective::Latency;
  red.threshold = dn + 4.0 + dn * dn;

  auto& app = red.app;
  app.addService(1.0, 1.0, "C0");
  for (std::size_t i = 1; i <= n; ++i) {
    app.addService(dn - static_cast<double>(inst.a[i - 1]) + dn * dn, 1.0,
                   "C" + std::to_string(i));
  }
  app.addService(1.0, 1.0, "C" + std::to_string(n + 1));

  ExecutionGraph g(app.size());
  for (std::size_t i = 1; i <= n; ++i) {
    g.addEdge(0, i);
    g.addEdge(i, n + 1);
  }
  red.graph = std::move(g);
  return red;
}

PortOrders prop9WitnessOrders(const ReductionInstance& red,
                              const Rn3dmWitness& w) {
  const std::size_t n = red.app.size() - 2;
  requireWitnessSize(w, n);
  PortOrders po = PortOrders::canonical(red.graph);
  std::vector<NodeId> sends(n, kNoNode);
  std::vector<NodeId> recvs(n, kNoNode);
  for (std::size_t i = 1; i <= n; ++i) {
    sends[static_cast<std::size_t>(w.lambda1[i - 1]) - 1] = i;
    recvs[n - static_cast<std::size_t>(w.lambda2[i - 1])] = i;
  }
  po.setOut(0, sends);
  po.setIn(n + 1, recvs);
  return po;
}

// --------------------------------------------------------------- Prop 13 --
//
// Index map: F -> 0; C_i -> i (i = 1..n); J -> n+1.
ReductionInstance prop13MinLatencyGadget(const Rn3dmInstance& inst) {
  const std::size_t n = inst.size();
  const double dn = static_cast<double>(n);
  const double cf = 1.0 / (20.0 * dn);
  const double sigma = 1.0 - 1.0 / (2.0 * dn);

  ReductionInstance red;
  red.model = CommModel::OutOrder;
  red.objective = Objective::Latency;
  // Proof's K plus the size-delta0 input transfer our latency counts.
  red.threshold =
      1.0 + 0.5 + 10.0 * dn * std::pow(sigma, dn) + 1.0 / (20.0 * dn);

  auto& app = red.app;
  app.addService(cf, cf, "F");
  for (std::size_t i = 1; i <= n; ++i) {
    app.addService(10.0 * dn - static_cast<double>(inst.a[i - 1]), sigma,
                   "C" + std::to_string(i));
  }
  app.addService(1.0, 200.0 * dn * dn - 1.0, "J");
  red.graph = ExecutionGraph(app.size());
  return red;
}

ExecutionGraph prop13WitnessGraph(const ReductionInstance& red) {
  const std::size_t n = red.app.size() - 2;
  ExecutionGraph g(red.app.size());
  for (std::size_t i = 1; i <= n; ++i) {
    g.addEdge(0, i);
    g.addEdge(i, n + 1);
  }
  return g;
}

PortOrders prop13WitnessOrders(const ReductionInstance& red,
                               const Rn3dmWitness& w) {
  ReductionInstance tmp;  // reuse Prop 9's order layout on the same shape
  tmp.app = red.app;
  tmp.graph = prop13WitnessGraph(red);
  return prop9WitnessOrders(tmp, w);
}

// --------------------------------------------------------------- Prop 17 --
Prop17Gadget prop17ForestGadget(const std::vector<std::int64_t>& x) {
  Prop17Gadget g;
  const std::size_t n = x.size();
  double xm = 0.0;
  double s = 0.0;
  for (const auto v : x) {
    xm = std::max(xm, static_cast<double>(v));
    s += static_cast<double>(v);
  }
  const double dn = static_cast<double>(n);
  // A > (4/3) n 3^n beta^n xM^3 with beta < 1/2: A = 4 n 3^n xM^3 suffices
  // (and keeps beta = (A-S)/(2A+S) well-defined).
  const double A = std::max(4.0 * dn * std::pow(3.0, dn) * xm * xm * xm,
                            8.0 * s + 8.0);
  const double beta = (A - s) / (2.0 * A + s);
  g.bigA = A;
  g.xs = x;
  g.sum = s;
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = static_cast<double>(x[i]);
    g.app.addService(xi / A, 1.0 - xi / A + beta * xi * xi / (A * A),
                     "X" + std::to_string(i + 1));
  }
  const double cLast = (2.0 * A + s) / (2.0 * A - 2.0 * s);
  g.app.addService(cLast, 1.0, "C_last");
  g.threshold = cLast - 3.0 * s * s / (8.0 * A * (A - s)) +
                dn * std::pow(3.0, dn) * std::pow(beta, dn) * xm * xm * xm /
                    (A * A * A);
  return g;
}

double prop17ChainObjective(const Prop17Gadget& g,
                            const std::vector<std::size_t>& subset) {
  // The proof's expanded chain latency (see the header's fidelity note):
  // cLast + (3/(2A(A-S))) ((S/2 - w)^2 - S^2/4) with w the subset sum.
  double w = 0.0;
  for (const std::size_t idx : subset) {
    w += static_cast<double>(g.xs.at(idx));
  }
  const double cLast = g.app.service(g.app.size() - 1).cost;
  const double coeff = 3.0 / (2.0 * g.bigA * (g.bigA - g.sum));
  const double half = g.sum / 2.0;
  return cLast + coeff * ((half - w) * (half - w) - half * half);
}

}  // namespace fsw
