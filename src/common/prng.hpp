// Deterministic, seedable pseudo-random number generation.
//
// Benchmarks and property tests must be reproducible run-to-run, so the
// library carries its own xoshiro256** generator (public-domain algorithm by
// Blackman & Vigna) instead of relying on implementation-defined std::
// distributions.
#pragma once

#include <cstdint>
#include <vector>

namespace fsw {

/// xoshiro256** seeded via splitmix64. Satisfies UniformRandomBitGenerator.
class Prng {
 public:
  using result_type = std::uint64_t;

  explicit Prng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) noexcept;
  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniformInt(0, i - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of {0, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n) noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace fsw
