// Per-solve monotonic arena — the memory discipline of the order-search hot
// path (ROADMAP "hot-path memory discipline").
//
// A MonotonicArena hands out bump-pointer allocations from chunked blocks;
// reset() retires every block to an internal freelist instead of returning
// it to the heap, so a steady-state user (one reset per repair iteration or
// per block flush) stops touching the allocator entirely after warm-up.
// ArenaVector<T> is the minimal vector shape the hot loops need (POD
// elements, push_back/clear/indexing) backed by arena memory.
//
// The shape follows the pool-backed idiom of cilkmem's MemPoolVector /
// SingleThreadPool (see PAPERS.md): single-threaded by design — every
// EvalScratch / repair worker owns its own arena — with observability
// counters (heapAllocs, bytes high water) that the engine surfaces through
// EngineStats so allocation regressions show up in benchmarks, not profiles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace fsw {

class MonotonicArena {
 public:
  /// Blocks are at least this large; oversized requests get their own block.
  static constexpr std::size_t kMinBlockBytes = 4096;

  MonotonicArena() = default;
  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (power of two).
  void* allocate(std::size_t bytes, std::size_t align) {
    std::uint8_t* p = alignUp(cursor_, align);
    if (p == nullptr || p + bytes > end_) {
      newBlock(bytes + align);
      p = alignUp(cursor_, align);
    }
    cursor_ = p + bytes;
    const std::size_t used = usedBytes();
    if (used > highWater_) highWater_ = used;
    return p;
  }

  template <typename T>
  T* allocateArray(std::size_t count) {
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Retires every block to the freelist; the next allocations reuse them
  /// oldest-first. All memory previously handed out becomes invalid.
  void reset() {
    for (auto& b : live_) free_.push_back(std::move(b));
    live_.clear();
    cursor_ = end_ = nullptr;
    usedBefore_ = 0;
    nextFree_ = 0;
  }

  /// Bytes currently handed out (across all live blocks).
  [[nodiscard]] std::size_t usedBytes() const noexcept {
    return usedBefore_ +
           (live_.empty() ? 0
                          : static_cast<std::size_t>(
                                cursor_ - live_.back().data.get()));
  }
  /// Max of usedBytes() ever observed (survives reset()).
  [[nodiscard]] std::size_t highWater() const noexcept { return highWater_; }
  /// Heap block allocations performed so far (growth events; a freelist hit
  /// on reset-reuse does not count). Steady state: stops growing.
  [[nodiscard]] std::size_t heapAllocs() const noexcept { return heapAllocs_; }
  /// Total bytes owned (live + freelist).
  [[nodiscard]] std::size_t reservedBytes() const noexcept {
    std::size_t s = 0;
    for (const auto& b : live_) s += b.size;
    for (const auto& b : free_) s += b.size;
    return s;
  }

 private:
  struct Block {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
  };

  static std::uint8_t* alignUp(std::uint8_t* p, std::size_t align) {
    const auto v = reinterpret_cast<std::uintptr_t>(p);
    return reinterpret_cast<std::uint8_t*>((v + align - 1) & ~(align - 1));
  }

  void newBlock(std::size_t atLeast) {
    if (!live_.empty()) {
      usedBefore_ +=
          static_cast<std::size_t>(cursor_ - live_.back().data.get());
    }
    // Freelist first: reuse retired blocks in retirement order. Blocks too
    // small for the request are skipped but stay available for later,
    // smaller requests of the same solve.
    while (nextFree_ < free_.size()) {
      if (free_[nextFree_].size >= atLeast) {
        live_.push_back(std::move(free_[nextFree_]));
        free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(nextFree_));
        cursor_ = live_.back().data.get();
        end_ = cursor_ + live_.back().size;
        return;
      }
      ++nextFree_;
    }
    std::size_t size = kMinBlockBytes;
    if (!free_.empty() || !live_.empty()) {
      // Geometric growth keeps block counts (and heapAllocs) logarithmic.
      size = reservedBytes();
    }
    if (size < atLeast) size = atLeast;
    Block b;
    b.data = std::make_unique<std::uint8_t[]>(size);
    b.size = size;
    ++heapAllocs_;
    live_.push_back(std::move(b));
    cursor_ = live_.back().data.get();
    end_ = cursor_ + live_.back().size;
  }

  std::vector<Block> live_;
  std::vector<Block> free_;
  std::size_t nextFree_ = 0;   ///< scan position into free_ since last reset
  std::uint8_t* cursor_ = nullptr;
  std::uint8_t* end_ = nullptr;
  std::size_t usedBefore_ = 0;  ///< bytes consumed in non-tail live blocks
  std::size_t highWater_ = 0;
  std::size_t heapAllocs_ = 0;
};

/// Minimal contiguous vector over arena memory for trivially copyable
/// element types. Growth allocates a fresh arena slab and memcpys — the old
/// slab is bump-garbage until the owner's reset(), which is the deal a
/// monotonic arena offers. clear() keeps capacity, so a reuse cycle of
/// clear()/push_back is allocation-free once warmed up.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaVector is for POD-like hot-path records");

 public:
  ArenaVector() = default;
  explicit ArenaVector(MonotonicArena* arena) : arena_(arena) {}

  void attach(MonotonicArena* arena) {
    arena_ = arena;
    data_ = nullptr;
    size_ = cap_ = 0;
  }
  /// Forget the (arena-owned) storage, e.g. after the arena was reset.
  void detachStorage() {
    data_ = nullptr;
    size_ = cap_ = 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

  void clear() noexcept { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

  void push_back(const T& v) {
    if (size_ == cap_) grow(cap_ == 0 ? 16 : cap_ * 2);
    data_[size_++] = v;
  }

  void append(const T* src, std::size_t n) {
    reserve(size_ + n);
    std::memcpy(data_ + size_, src, n * sizeof(T));
    size_ += n;
  }

  void resize(std::size_t n, const T& fill = T{}) {
    reserve(n);
    for (std::size_t i = size_; i < n; ++i) data_[i] = fill;
    size_ = n;
  }

 private:
  void grow(std::size_t cap) {
    T* fresh = arena_->allocateArray<T>(cap);
    if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    data_ = fresh;
    cap_ = cap;
  }

  MonotonicArena* arena_ = nullptr;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace fsw
