#include "src/common/prng.hpp"

#include <numeric>

namespace fsw {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Prng::Prng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Prng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Prng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Prng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Prng::uniformInt(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL) - (~0ULL) % range;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % range);
}

bool Prng::bernoulli(double p) noexcept { return uniform() < p; }

std::vector<std::size_t> Prng::permutation(std::size_t n) noexcept {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  shuffle(p);
  return p;
}

}  // namespace fsw
