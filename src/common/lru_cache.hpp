// The one strict-LRU implementation behind every serving-layer cache.
//
// PR 2's CandidateCache (surrogate scores) and PR 3's ResultCache (whole
// winning plans) each grew their own mutex+list+map LRU with identical
// eviction and stats discipline — a discipline the engine's determinism
// contract relies on (eviction must be a pure function of the operation
// sequence, so a serial request sequence always evicts identically). Two
// copies of that machinery is two places for the contract to rot; this
// template is the single implementation both wrap.
//
// Semantics, shared by every instantiation:
//   * lookup(key) touches the entry's LRU slot and counts a hit or a miss;
//   * insert(key, value) stores (touching the slot if the key is already
//     present), evicts least-recently-used entries past `capacity`
//     (0 = unbounded) and returns how many entries it evicted — it counts
//     *nothing* else, so bulk restores (cache loads) never skew hit ratios;
//   * snapshot() lists entries least recently used first, the save/load
//     order that makes persistence round trips preserve eviction order;
//   * all operations are thread-safe behind one mutex. Values are expected
//     to be cheap to copy under the lock (a double, a shared_ptr) — callers
//     holding large payloads wrap them in shared_ptr snapshots, as
//     ResultCache does.
#pragma once

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace fsw {

template <typename Value>
class LruCache {
 public:
  struct Stats {
    std::size_t hits = 0;       ///< lookups that found an entry
    std::size_t misses = 0;     ///< lookups that found nothing
    std::size_t evictions = 0;  ///< LRU entries dropped at the capacity bound
  };

  /// `capacity` caps the retained entries (0 = unbounded).
  explicit LruCache(std::size_t capacity = 0) : capacity_(capacity) {}

  /// The stored value for `key` (nullopt on a miss), touching its LRU slot.
  [[nodiscard]] std::optional<Value> lookup(const std::string& key) {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.hits;
    lru_.splice(lru_.end(), lru_, it->second);  // move to most-recently-used
    return it->second->second;
  }

  /// Stores `value` under `key` (touching the slot if already present) and
  /// returns how many entries the capacity bound evicted (0 or 1).
  std::size_t insert(const std::string& key, Value value) {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second->second = std::move(value);
      lru_.splice(lru_.end(), lru_, it->second);
      return 0;
    }
    lru_.emplace_back(key, std::move(value));
    entries_.emplace(key, std::prev(lru_.end()));
    std::size_t evicted = 0;
    while (capacity_ != 0 && entries_.size() > capacity_) {
      entries_.erase(lru_.front().first);
      lru_.pop_front();
      ++stats_.evictions;
      ++evicted;
    }
    return evicted;
  }

  /// Stored entries, least recently used first (the save/load order).
  [[nodiscard]] std::vector<std::pair<std::string, Value>> snapshot() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return {lru_.begin(), lru_.end()};
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] Stats stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  using LruList = std::list<std::pair<std::string, Value>>;

  mutable std::mutex mu_;
  std::size_t capacity_ = 0;
  LruList lru_;  ///< front = least recently used
  std::unordered_map<std::string, typename LruList::iterator> entries_;
  Stats stats_{};
};

}  // namespace fsw
