// Exact rational arithmetic on 64-bit integers with overflow checking.
//
// The paper's worked example (Section 2.3) has an optimal INORDER period of
// 23/3: floating point would force every test of that value through an
// epsilon. Rational lets small instances be evaluated exactly. Products of
// hundreds of selectivities overflow any fixed-width rational, so the general
// evaluation path of the library uses double; Rational is reserved for small
// exact computations and cross-checks.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

namespace fsw {

/// Thrown when a Rational operation would overflow int64 after reduction.
class RationalOverflow : public std::overflow_error {
 public:
  explicit RationalOverflow(const std::string& what)
      : std::overflow_error(what) {}
};

/// An exact rational number num/den with den > 0, always in lowest terms.
class Rational {
 public:
  constexpr Rational() noexcept : num_(0), den_(1) {}
  // NOLINTNEXTLINE(google-explicit-constructor): integers embed exactly.
  constexpr Rational(std::int64_t n) noexcept : num_(n), den_(1) {}
  Rational(std::int64_t num, std::int64_t den);

  [[nodiscard]] std::int64_t num() const noexcept { return num_; }
  [[nodiscard]] std::int64_t den() const noexcept { return den_; }

  [[nodiscard]] double toDouble() const noexcept {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }
  [[nodiscard]] std::string str() const;

  [[nodiscard]] bool isInteger() const noexcept { return den_ == 1; }
  [[nodiscard]] bool isZero() const noexcept { return num_ == 0; }
  [[nodiscard]] bool isNegative() const noexcept { return num_ < 0; }

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  friend Rational operator+(const Rational& a, const Rational& b);
  friend Rational operator-(const Rational& a, const Rational& b);
  friend Rational operator*(const Rational& a, const Rational& b);
  friend Rational operator/(const Rational& a, const Rational& b);
  friend Rational operator-(const Rational& a);

  friend bool operator==(const Rational& a, const Rational& b) noexcept {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) noexcept {
    return !(a == b);
  }
  friend bool operator<(const Rational& a, const Rational& b);
  friend bool operator<=(const Rational& a, const Rational& b) {
    return a == b || a < b;
  }
  friend bool operator>(const Rational& a, const Rational& b) { return b < a; }
  friend bool operator>=(const Rational& a, const Rational& b) {
    return b <= a;
  }

  /// Parses "n", "n/d" or a decimal like "0.9999" into an exact Rational.
  static Rational parse(const std::string& text);

 private:
  std::int64_t num_;
  std::int64_t den_;
};

[[nodiscard]] Rational abs(const Rational& r);
[[nodiscard]] Rational min(const Rational& a, const Rational& b);
[[nodiscard]] Rational max(const Rational& a, const Rational& b);

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace fsw
