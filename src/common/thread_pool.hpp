// A small fixed-size thread pool plus deterministic parallel-for/map
// helpers — the execution substrate of the plan-search engine.
//
// Design constraints, in order:
//   1. Determinism: parallelMap writes result i to slot i, so reductions
//      over the output vector are independent of execution interleaving.
//      Every search in this library reduces with explicit index-ordered
//      tie-breaks, which makes pooled and serial runs bit-identical.
//   2. Nesting safety: a task blocked in parallelFor *helps* by draining
//      the shared queue instead of sleeping, so the optimizer facade can
//      fan orchestrations out while each orchestration fans its own order
//      enumeration out, without deadlocking a fixed-size pool.
//   3. No work stealing, no per-thread deques: a single mutex-guarded
//      queue is plenty for the coarse-grained tasks (candidate generation,
//      constraint-system solves) this engine schedules.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fsw {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t threadCount() const noexcept {
    return workers_.size();
  }

  /// Enqueues a task for execution on some worker.
  void submit(std::function<void()> task);

  /// Runs one queued task on the calling thread if any is pending.
  /// Returns false when the queue was empty. Used by blocked callers to
  /// help instead of sleeping (nesting safety).
  bool runOneTask();

  /// Process-wide pool sized to the hardware, created on first use.
  static ThreadPool& shared();

  /// Sentinel for "the calling thread is not a worker of any pool".
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  /// The pool the calling thread is a worker of, or nullptr. Lets per-worker
  /// scratch caches distinguish "worker k of pool P" from a foreign thread
  /// that is merely helping via runOneTask() during cross-pool nesting.
  static ThreadPool* currentPool() noexcept;

  /// 0-based worker index of the calling thread within currentPool(), or
  /// kNoSlot for non-worker threads.
  static std::size_t currentWorkerSlot() noexcept;

 private:
  void workerLoop(std::size_t slot);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

/// Invokes fn(i) for every i in [0, n), distributing the calls over the
/// pool's workers plus the calling thread, and blocks until all complete.
/// With a null pool (or a single-threaded one, or n <= 1) the loop runs
/// serially on the caller — the canonical "--serial" escape hatch. The
/// first exception thrown by any fn(i) is rethrown on the caller.
void parallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

/// Deterministic map: out[i] = fn(i), computed over the pool. Result order
/// depends only on the index, never on scheduling.
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> parallelMap(ThreadPool* pool, std::size_t n,
                                         Fn&& fn) {
  std::vector<T> out(n);
  parallelFor(pool, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace fsw
