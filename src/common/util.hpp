// Small shared helpers: approximate comparison, permutation enumeration,
// string joining. Kept deliberately tiny; anything domain-specific lives in
// the domain modules.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace fsw {

/// Absolute/relative tolerance used when comparing schedule times computed in
/// double precision. Times in this library are O(n * max-cost), so a mixed
/// tolerance is appropriate.
constexpr double kTimeEps = 1e-9;

/// True iff |a - b| <= eps * max(1, |a|, |b|).
[[nodiscard]] bool almostEqual(double a, double b, double eps = kTimeEps);

/// True iff a <= b + eps * max(1, |a|, |b|): tolerant "less or equal".
[[nodiscard]] bool almostLeq(double a, double b, double eps = kTimeEps);

/// Invokes fn for every permutation of {0,...,n-1}; stops early if fn returns
/// false. Returns false iff stopped early.
bool forEachPermutation(std::size_t n,
                        const std::function<bool(const std::vector<std::size_t>&)>& fn);

/// n! as double (exact for n <= 20 range we care about).
[[nodiscard]] double factorial(std::size_t n);

/// Joins items with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& items,
                               const std::string& sep);

/// The q-quantile of `values` (q in [0, 1]) by linear interpolation over
/// the sorted copy; 0 for an empty input. q = 0.5 is the median — the
/// serving benchmarks report p50/p95 latency through this.
[[nodiscard]] double percentile(std::vector<double> values, double q);

}  // namespace fsw
