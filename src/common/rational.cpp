#include "src/common/rational.hpp"

#include <cstdlib>
#include <limits>
#include <numeric>
#include <ostream>

namespace fsw {
namespace {

using I128 = __int128;

constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();

std::int64_t narrow(I128 v, const char* op) {
  if (v > static_cast<I128>(kMax) || v < static_cast<I128>(kMin)) {
    throw RationalOverflow(std::string("Rational overflow in ") + op);
  }
  return static_cast<std::int64_t>(v);
}

I128 gcd128(I128 a, I128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const I128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

Rational::Rational(std::int64_t num, std::int64_t den) {
  if (den == 0) {
    throw std::invalid_argument("Rational: zero denominator");
  }
  if (den < 0) {
    if (num == kMin || den == kMin) {
      throw RationalOverflow("Rational: negation of INT64_MIN");
    }
    num = -num;
    den = -den;
  }
  const std::int64_t g = std::gcd(num, den);
  num_ = (g == 0) ? 0 : num / g;
  den_ = (g == 0) ? 1 : den / g;
}

Rational operator+(const Rational& a, const Rational& b) {
  const I128 n =
      static_cast<I128>(a.num_) * b.den_ + static_cast<I128>(b.num_) * a.den_;
  const I128 d = static_cast<I128>(a.den_) * b.den_;
  const I128 g = gcd128(n, d);
  if (g == 0) return Rational(0);
  return Rational(narrow(n / g, "+"), narrow(d / g, "+"));
}

Rational operator-(const Rational& a, const Rational& b) { return a + (-b); }

Rational operator-(const Rational& a) {
  if (a.num_ == std::numeric_limits<std::int64_t>::min()) {
    throw RationalOverflow("Rational: negation overflow");
  }
  Rational r;
  r.num_ = -a.num_;
  r.den_ = a.den_;
  return r;
}

Rational operator*(const Rational& a, const Rational& b) {
  const I128 n = static_cast<I128>(a.num_) * b.num_;
  const I128 d = static_cast<I128>(a.den_) * b.den_;
  const I128 g = gcd128(n, d);
  if (g == 0) return Rational(0);
  return Rational(narrow(n / g, "*"), narrow(d / g, "*"));
}

Rational operator/(const Rational& a, const Rational& b) {
  if (b.num_ == 0) throw std::domain_error("Rational: division by zero");
  const I128 n = static_cast<I128>(a.num_) * b.den_;
  const I128 d = static_cast<I128>(a.den_) * b.num_;
  I128 nn = n;
  I128 dd = d;
  if (dd < 0) {
    nn = -nn;
    dd = -dd;
  }
  const I128 g = gcd128(nn, dd);
  if (g == 0) return Rational(0);
  return Rational(narrow(nn / g, "/"), narrow(dd / g, "/"));
}

bool operator<(const Rational& a, const Rational& b) {
  return static_cast<I128>(a.num_) * b.den_ <
         static_cast<I128>(b.num_) * a.den_;
}

std::string Rational::str() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational Rational::parse(const std::string& text) {
  const auto slash = text.find('/');
  if (slash != std::string::npos) {
    return Rational(std::stoll(text.substr(0, slash)),
                    std::stoll(text.substr(slash + 1)));
  }
  const auto dot = text.find('.');
  if (dot == std::string::npos) {
    return Rational(std::stoll(text));
  }
  const std::string whole = text.substr(0, dot);
  const std::string frac = text.substr(dot + 1);
  if (frac.size() > 18) {
    throw std::invalid_argument("Rational::parse: too many decimals");
  }
  std::int64_t den = 1;
  for (std::size_t i = 0; i < frac.size(); ++i) den *= 10;
  const bool neg = !whole.empty() && whole[0] == '-';
  const std::int64_t w = whole.empty() || whole == "-" ? 0 : std::stoll(whole);
  const std::int64_t f = frac.empty() ? 0 : std::stoll(frac);
  const I128 num = static_cast<I128>(std::llabs(w)) * den + f;
  return Rational(narrow(neg ? -num : num, "parse"), den);
}

Rational abs(const Rational& r) { return r.isNegative() ? -r : r; }
Rational min(const Rational& a, const Rational& b) { return a < b ? a : b; }
Rational max(const Rational& a, const Rational& b) { return a < b ? b : a; }

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.str();
}

}  // namespace fsw
