#include "src/common/thread_pool.hpp"

#include <algorithm>

namespace fsw {

namespace {
// Worker identity of the calling thread; set once at worker startup and
// never changed, so a task can ask "which worker slot of which pool am I
// on" without synchronization.
thread_local ThreadPool* tlsPool = nullptr;
thread_local std::size_t tlsSlot = ThreadPool::kNoSlot;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this, t] {
      tlsPool = this;
      tlsSlot = t;
      workerLoop(t);
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::runOneTask() {
  std::function<void()> task;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

ThreadPool* ThreadPool::currentPool() noexcept { return tlsPool; }

std::size_t ThreadPool::currentWorkerSlot() noexcept { return tlsSlot; }

void ThreadPool::workerLoop(std::size_t /*slot*/) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(0);
  return pool;
}

void parallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || pool->threadCount() <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex errorMu;
  };
  auto shared = std::make_shared<Shared>();

  auto drain = [shared, n, &fn] {
    for (;;) {
      const std::size_t i = shared->next.fetch_add(1);
      if (i >= n) return;
      try {
        if (!shared->failed.load()) fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(shared->errorMu);
        if (!shared->failed.exchange(true)) {
          shared->error = std::current_exception();
        }
      }
      shared->done.fetch_add(1);
    }
  };

  const std::size_t helpers = std::min(pool->threadCount(), n - 1);
  for (std::size_t t = 0; t < helpers; ++t) pool->submit(drain);
  drain();  // the caller participates
  // All indices are claimed; help with unrelated queued work (possibly the
  // inner loops of our own still-running fn calls) until every fn returned.
  while (shared->done.load() < n) {
    if (!pool->runOneTask()) std::this_thread::yield();
  }
  if (shared->failed.load()) std::rethrow_exception(shared->error);
}

}  // namespace fsw
