#include "src/common/util.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace fsw {

bool almostEqual(double a, double b, double eps) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= eps * scale;
}

bool almostLeq(double a, double b, double eps) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return a <= b + eps * scale;
}

bool forEachPermutation(
    std::size_t n,
    const std::function<bool(const std::vector<std::size_t>&)>& fn) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  do {
    if (!fn(perm)) return false;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return true;
}

double factorial(std::size_t n) {
  double r = 1.0;
  for (std::size_t i = 2; i <= n; ++i) r *= static_cast<double>(i);
  return r;
}

std::string join(const std::vector<std::string>& items,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (q <= 0.0) return values.front();
  if (q >= 1.0) return values.back();
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= values.size()) return values.back();
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[lo + 1] - values[lo]);
}

}  // namespace fsw
