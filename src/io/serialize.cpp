#include "src/io/serialize.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "src/serve/result_cache.hpp"

namespace fsw {

void writeApplication(std::ostream& os, const Application& app) {
  os << "application " << app.size() << "\n";
  os << std::setprecision(17);
  for (NodeId i = 0; i < app.size(); ++i) {
    const auto& s = app.service(i);
    os << "service " << (s.name.empty() ? "C" + std::to_string(i + 1) : s.name)
       << " " << s.cost << " " << s.selectivity << "\n";
  }
  for (const auto& e : app.precedences()) {
    os << "precedence " << e.from << " " << e.to << "\n";
  }
}

Application readApplication(std::istream& is) {
  std::string tag;
  std::size_t n = 0;
  if (!(is >> tag >> n) || tag != "application") {
    throw std::runtime_error("readApplication: bad header");
  }
  Application app;
  for (std::size_t i = 0; i < n; ++i) {
    std::string name;
    double cost = 0.0;
    double sel = 0.0;
    if (!(is >> tag >> name >> cost >> sel) || tag != "service") {
      throw std::runtime_error("readApplication: bad service line");
    }
    app.addService(cost, sel, name);
  }
  while (is >> tag) {
    if (tag != "precedence") {
      for (auto it = tag.rbegin(); it != tag.rend(); ++it) is.putback(*it);
      break;
    }
    NodeId from = 0;
    NodeId to = 0;
    if (!(is >> from >> to)) {
      throw std::runtime_error("readApplication: bad precedence line");
    }
    app.addPrecedence(from, to);
  }
  return app;
}

void writeGraph(std::ostream& os, const ExecutionGraph& graph) {
  os << "graph " << graph.size() << " " << graph.edgeCount() << "\n";
  for (const auto& e : graph.edges()) {
    os << "edge " << e.from << " " << e.to << "\n";
  }
}

ExecutionGraph readGraph(std::istream& is) {
  std::string tag;
  std::size_t n = 0;
  std::size_t m = 0;
  if (!(is >> tag >> n >> m) || tag != "graph") {
    throw std::runtime_error("readGraph: bad header");
  }
  ExecutionGraph g(n);
  for (std::size_t k = 0; k < m; ++k) {
    NodeId from = 0;
    NodeId to = 0;
    if (!(is >> tag >> from >> to) || tag != "edge") {
      throw std::runtime_error("readGraph: bad edge line");
    }
    g.addEdge(from, to);
  }
  return g;
}

void writeOperationList(std::ostream& os, const OperationList& ol) {
  os << std::setprecision(17);
  os << "oplist " << ol.size() << " " << ol.lambda() << " "
     << ol.comms().size() << "\n";
  for (NodeId i = 0; i < ol.size(); ++i) {
    os << "calc " << i << " " << ol.beginCalc(i) << " " << ol.endCalc(i)
       << "\n";
  }
  for (const auto& c : ol.comms()) {
    const auto enc = [](NodeId v) {
      return v == kWorld ? std::int64_t{-1} : static_cast<std::int64_t>(v);
    };
    os << "comm " << enc(c.from) << " " << enc(c.to) << " " << c.begin << " "
       << c.end << "\n";
  }
}

OperationList readOperationList(std::istream& is) {
  std::string tag;
  std::size_t n = 0;
  double lambda = 0.0;
  std::size_t comms = 0;
  if (!(is >> tag >> n >> lambda >> comms) || tag != "oplist") {
    throw std::runtime_error("readOperationList: bad header");
  }
  OperationList ol(n, lambda);
  for (std::size_t k = 0; k < n; ++k) {
    NodeId i = 0;
    double b = 0.0;
    double e = 0.0;
    if (!(is >> tag >> i >> b >> e) || tag != "calc") {
      throw std::runtime_error("readOperationList: bad calc line");
    }
    ol.setCalc(i, b, e);
  }
  for (std::size_t k = 0; k < comms; ++k) {
    std::int64_t from = 0;
    std::int64_t to = 0;
    double b = 0.0;
    double e = 0.0;
    if (!(is >> tag >> from >> to >> b >> e) || tag != "comm") {
      throw std::runtime_error("readOperationList: bad comm line");
    }
    const auto dec = [](std::int64_t v) {
      return v < 0 ? kWorld : static_cast<NodeId>(v);
    };
    ol.setComm(dec(from), dec(to), b, e);
  }
  return ol;
}

namespace {

/// Checks the `<magic> <version>` line every versioned format opens with.
void readVersionedHeader(std::istream& is, const char* magic, int version,
                         const char* where) {
  std::string word;
  int got = 0;
  if (!(is >> word) || word != magic) {
    throw std::runtime_error(std::string(where) + ": bad magic '" + word +
                             "' (expected '" + magic + "')");
  }
  if (!(is >> got)) {
    throw std::runtime_error(std::string(where) + ": missing format version");
  }
  if (got != version) {
    throw std::runtime_error(std::string(where) + ": unsupported version " +
                             std::to_string(got) + " (expected " +
                             std::to_string(version) + ")");
  }
}

/// Writes a double as a parseable token: full precision for finite values,
/// explicit inf/-inf/nan words for the rest (plain stream extraction
/// rejects the non-finite spellings operator<< produces). The caller's
/// stream precision must already be 17 for byte-exact round trips.
void writeDoubleToken(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "nan";
  } else if (std::isinf(v)) {
    os << (v > 0 ? "inf" : "-inf");
  } else {
    os << v;
  }
}

/// The inverse of writeDoubleToken; throws on a malformed token.
double readDoubleToken(std::istream& is, const char* where) {
  std::string tok;
  if (!(is >> tok)) {
    throw std::runtime_error(std::string(where) + ": missing number");
  }
  if (tok == "inf") return std::numeric_limits<double>::infinity();
  if (tok == "-inf") return -std::numeric_limits<double>::infinity();
  if (tok == "nan") return std::numeric_limits<double>::quiet_NaN();
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(tok, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != tok.size() || tok.empty()) {
    throw std::runtime_error(std::string(where) + ": bad number '" + tok +
                             "'");
  }
  return v;
}

/// A whitespace-free token field, with "-" decoding to the empty string.
/// A value literally equal to the reserved token is rejected — encoding it
/// would silently decode back as empty, breaking byte-exact round trips.
std::string fieldToken(const std::string& value, const char* where) {
  if (value.empty()) return "-";
  if (value == "-") {
    throw std::invalid_argument(std::string(where) +
                                ": '-' is reserved for the empty field");
  }
  if (value.find_first_of(" \t\n\r\f\v") != std::string::npos) {
    throw std::invalid_argument(std::string(where) + ": token '" + value +
                                "' contains whitespace");
  }
  return value;
}

}  // namespace

void writeCandidateCache(std::ostream& os, const CandidateCache& cache) {
  const auto entries = cache.snapshot();
  os << kScoreCacheMagic << " " << kScoreCacheVersion << "\n";
  os << "candidatecache " << entries.size() << "\n";
  os << std::setprecision(17);
  for (const auto& [key, score] : entries) {
    os << "entry " << key << " " << score << "\n";
  }
}

void readCandidateCache(std::istream& is, CandidateCache& cache) {
  readVersionedHeader(is, kScoreCacheMagic, kScoreCacheVersion,
                  "readCandidateCache");
  std::string tag;
  std::size_t n = 0;
  if (!(is >> tag >> n) || tag != "candidatecache") {
    throw std::runtime_error("readCandidateCache: bad header");
  }
  for (std::size_t k = 0; k < n; ++k) {
    std::string key;
    double score = 0.0;
    if (!(is >> tag >> key >> score) || tag != "entry") {
      throw std::runtime_error("readCandidateCache: bad entry line");
    }
    (void)cache.insert(key, score);
  }
}

void writeResultCache(std::ostream& os, const ResultCache& cache,
                      std::size_t budget) {
  const auto entries = cache.snapshot();  // LRU first
  std::vector<const std::pair<std::string, ResultCache::Entry>*> writable;
  writable.reserve(entries.size());
  for (const auto& entry : entries) {
    if (std::isfinite(entry.second->value) &&
        !entry.second->strategy.empty()) {
      writable.push_back(&entry);
    }
  }
  // The on-disk budget keeps the most recently used winners (the tail of
  // the LRU-first snapshot), still written LRU-first.
  const std::size_t keep =
      budget == 0 ? writable.size() : std::min(budget, writable.size());
  const std::size_t start = writable.size() - keep;

  os << kResultCacheMagic << " " << kResultCacheVersion << "\n";
  os << "results " << keep << "\n";
  os << std::setprecision(17);
  for (std::size_t i = start; i < writable.size(); ++i) {
    const auto& [key, plan] = *writable[i];
    os << "result " << key << " " << plan->value << " " << plan->surrogate
       << " " << plan->strategy << "\n";
    writeGraph(os, plan->plan.graph);
    writeOperationList(os, plan->plan.ol);
  }
}

void readResultCache(std::istream& is, ResultCache& cache) {
  readVersionedHeader(is, kResultCacheMagic, kResultCacheVersion,
                  "readResultCache");
  std::string tag;
  std::size_t n = 0;
  if (!(is >> tag >> n) || tag != "results") {
    throw std::runtime_error("readResultCache: bad header");
  }
  for (std::size_t k = 0; k < n; ++k) {
    OptimizedPlan plan;
    std::string key;
    if (!(is >> tag >> key >> plan.value >> plan.surrogate >> plan.strategy) ||
        tag != "result") {
      throw std::runtime_error("readResultCache: bad result line");
    }
    plan.plan.graph = readGraph(is);
    plan.plan.ol = readOperationList(is);
    (void)cache.insert(key, plan);
  }
}

void writeShardSetHeader(std::ostream& os, std::size_t shards,
                         const std::string& kind) {
  os << kShardSetMagic << " " << kShardSetVersion << "\n";
  os << "shards " << shards << " " << kind << "\n";
}

std::pair<std::size_t, std::string> readShardSetHeader(std::istream& is) {
  readVersionedHeader(is, kShardSetMagic, kShardSetVersion,
                      "readShardSetHeader");
  std::string tag;
  std::size_t count = 0;
  std::string kind;
  if (!(is >> tag >> count >> kind) || tag != "shards") {
    throw std::runtime_error("readShardSetHeader: bad shards line");
  }
  return {count, kind};
}

void writeStoreGet(std::ostream& os, const std::string& key, bool wantPlan) {
  os << kStoreGetMagic << " " << kStoreGetVersion << "\n";
  os << "get " << fieldToken(key, "writeStoreGet") << " " << (wantPlan ? 1 : 0)
     << "\n";
}

StoreGet readStoreGet(std::istream& is) {
  readVersionedHeader(is, kStoreGetMagic, kStoreGetVersion, "readStoreGet");
  StoreGet get;
  std::string tag;
  int wantPlan = 0;
  if (!(is >> tag >> get.key >> wantPlan) || tag != "get" ||
      (wantPlan != 0 && wantPlan != 1)) {
    throw std::runtime_error("readStoreGet: bad get line");
  }
  if (get.key == "-") get.key.clear();
  get.wantPlan = wantPlan == 1;
  return get;
}

void writeStorePut(std::ostream& os, const std::string& key,
                   const OptimizedPlan& plan) {
  os << kStorePutMagic << " " << kStorePutVersion << "\n";
  os << "put " << fieldToken(key, "writeStorePut") << "\n";
  writeOptimizedPlan(os, plan);
}

StorePut readStorePut(std::istream& is) {
  readVersionedHeader(is, kStorePutMagic, kStorePutVersion, "readStorePut");
  StorePut put;
  std::string tag;
  if (!(is >> tag >> put.key) || tag != "put") {
    throw std::runtime_error("readStorePut: bad put line");
  }
  if (put.key == "-") put.key.clear();
  put.plan = readOptimizedPlan(is);
  return put;
}

void writeStoreReply(std::ostream& os, const OptimizedPlan* plan,
                     double bound) {
  os << kStoreReplyMagic << " " << kStoreReplyVersion << "\n";
  os << std::setprecision(17);
  os << "reply " << (plan != nullptr ? 1 : 0) << " ";
  writeDoubleToken(os, bound);
  os << "\n";
  if (plan != nullptr) writeOptimizedPlan(os, *plan);
}

StoreReply readStoreReply(std::istream& is) {
  readVersionedHeader(is, kStoreReplyMagic, kStoreReplyVersion,
                      "readStoreReply");
  StoreReply reply;
  std::string tag;
  int found = 0;
  if (!(is >> tag >> found) || tag != "reply" || (found != 0 && found != 1)) {
    throw std::runtime_error("readStoreReply: bad reply line");
  }
  reply.found = found == 1;
  reply.bound = readDoubleToken(is, "readStoreReply");
  if (reply.found) reply.plan = readOptimizedPlan(is);
  return reply;
}

void writeStoreStats(std::ostream& os, const StoreStatsWire& stats) {
  os << kStoreStatsMagic << " " << kStoreStatsVersion << "\n";
  os << "storestats " << stats.entries << " " << stats.gets << " "
     << stats.hits << " " << stats.boundHits << " " << stats.puts << " "
     << stats.evictions << " " << stats.bounds << "\n";
}

StoreStatsWire readStoreStats(std::istream& is) {
  readVersionedHeader(is, kStoreStatsMagic, kStoreStatsVersion,
                      "readStoreStats");
  StoreStatsWire stats;
  std::string tag;
  if (!(is >> tag >> stats.entries >> stats.gets >> stats.hits >>
        stats.boundHits >> stats.puts >> stats.evictions >> stats.bounds) ||
      tag != "storestats") {
    throw std::runtime_error("readStoreStats: bad storestats line");
  }
  return stats;
}

namespace {

/// The wire token naming a request's portfolio: "-" for the default, the
/// portfolio's registered name otherwise. Unnamed portfolios are
/// process-local by contract (their key is a pointer), so they cannot
/// travel.
std::string portfolioToken(const OptimizerOptions& options) {
  if (options.registry == nullptr) return "-";
  if (options.registry->name().empty()) {
    throw std::invalid_argument(
        "writePlanRequest: an unnamed portfolio is process-local and cannot "
        "cross the wire; name it (CandidateRegistry::setName) to opt in to "
        "portable keys");
  }
  return options.registry->name();
}

}  // namespace

void writePlanRequest(std::ostream& os, const PlanRequest& request,
                      int priority) {
  const OptimizerOptions& o = request.options;
  const OrchestrationOptions& ord = o.orchestrator.order;
  const OutorderOptions& oo = o.orchestrator.outorder;
  const OrchestrationOptions& seed = oo.inorder;

  os << kPlanRequestMagic << " " << kPlanRequestVersion << "\n";
  os << std::setprecision(17);
  os << "request " << priority << " " << name(request.model) << " "
     << name(request.objective) << " " << portfolioToken(o) << "\n";
  os << "options " << o.exactForestMaxN << " " << o.orchestrateTop << "\n";
  os << "heuristics " << o.heuristics.restarts << " "
     << o.heuristics.iterations << " ";
  writeDoubleToken(os, o.heuristics.initialTemperature);
  os << " " << o.heuristics.seed << "\n";
  os << "order " << ord.exactCap << " " << ord.localSearchIters << " "
     << ord.localSearchRestarts << " " << ord.seed << " ";
  writeDoubleToken(os, ord.upperBound);
  os << "\n";
  os << "outorder " << oo.repairIters << " " << oo.restarts << " "
     << oo.bisectSteps << " " << oo.seed << "\n";
  os << "seedorder " << seed.exactCap << " " << seed.localSearchIters << " "
     << seed.localSearchRestarts << " " << seed.seed << " ";
  writeDoubleToken(os, seed.upperBound);
  os << "\n";
  writeApplication(os, request.app);
}

WirePlanRequest readPlanRequest(std::istream& is) {
  readVersionedHeader(is, kPlanRequestMagic, kPlanRequestVersion,
                      "readPlanRequest");
  WirePlanRequest wire;
  OptimizerOptions& o = wire.request.options;

  std::string tag;
  std::string model;
  std::string objective;
  if (!(is >> tag >> wire.priority >> model >> objective >> wire.portfolio) ||
      tag != "request") {
    throw std::runtime_error("readPlanRequest: bad request line");
  }
  const auto m = commModelFromName(model);
  if (!m) {
    throw std::runtime_error("readPlanRequest: unknown model '" + model +
                             "'");
  }
  wire.request.model = *m;
  const auto obj = objectiveFromName(objective);
  if (!obj) {
    throw std::runtime_error("readPlanRequest: unknown objective '" +
                             objective + "'");
  }
  wire.request.objective = *obj;
  if (wire.portfolio.empty()) {
    throw std::runtime_error("readPlanRequest: empty portfolio token");
  }

  if (!(is >> tag >> o.exactForestMaxN >> o.orchestrateTop) ||
      tag != "options") {
    throw std::runtime_error("readPlanRequest: bad options line");
  }
  if (!(is >> tag >> o.heuristics.restarts >> o.heuristics.iterations) ||
      tag != "heuristics") {
    throw std::runtime_error("readPlanRequest: bad heuristics line");
  }
  o.heuristics.initialTemperature = readDoubleToken(is, "readPlanRequest");
  if (!(is >> o.heuristics.seed)) {
    throw std::runtime_error("readPlanRequest: bad heuristics seed");
  }
  OrchestrationOptions& ord = o.orchestrator.order;
  if (!(is >> tag >> ord.exactCap >> ord.localSearchIters >>
        ord.localSearchRestarts >> ord.seed) ||
      tag != "order") {
    throw std::runtime_error("readPlanRequest: bad order line");
  }
  ord.upperBound = readDoubleToken(is, "readPlanRequest");
  OutorderOptions& oo = o.orchestrator.outorder;
  if (!(is >> tag >> oo.repairIters >> oo.restarts >> oo.bisectSteps >>
        oo.seed) ||
      tag != "outorder") {
    throw std::runtime_error("readPlanRequest: bad outorder line");
  }
  OrchestrationOptions& seed = oo.inorder;
  if (!(is >> tag >> seed.exactCap >> seed.localSearchIters >>
        seed.localSearchRestarts >> seed.seed) ||
      tag != "seedorder") {
    throw std::runtime_error("readPlanRequest: bad seedorder line");
  }
  seed.upperBound = readDoubleToken(is, "readPlanRequest");
  wire.request.app = readApplication(is);
  return wire;
}

void writeOptimizedPlan(std::ostream& os, const OptimizedPlan& plan) {
  const EngineStats& s = plan.stats;
  os << kPlanResponseMagic << " " << kPlanResponseVersion << "\n";
  os << std::setprecision(17);
  os << "plan ";
  writeDoubleToken(os, plan.value);
  os << " ";
  writeDoubleToken(os, plan.surrogate);
  os << " " << fieldToken(plan.strategy, "writeOptimizedPlan") << "\n";
  os << "stats " << s.sourcesRun << " " << s.generated << " " << s.unique
     << " " << s.duplicates << " " << s.scoreCacheHits << " "
     << s.orchestrated << " " << s.sharedHits << " " << s.evictions << " "
     << s.boundAborts << " " << s.crossRequestHits << " "
     << s.resultCacheHits << " " << s.evalProbes << " "
     << s.scratchHeapAllocs << " " << s.arenaBytesHighWater << "\n";
  writeGraph(os, plan.plan.graph);
  writeOperationList(os, plan.plan.ol);
}

OptimizedPlan readOptimizedPlan(std::istream& is) {
  readVersionedHeader(is, kPlanResponseMagic, kPlanResponseVersion,
                      "readOptimizedPlan");
  OptimizedPlan plan;
  std::string tag;
  if (!(is >> tag) || tag != "plan") {
    throw std::runtime_error("readOptimizedPlan: bad plan line");
  }
  plan.value = readDoubleToken(is, "readOptimizedPlan");
  plan.surrogate = readDoubleToken(is, "readOptimizedPlan");
  if (!(is >> plan.strategy)) {
    throw std::runtime_error("readOptimizedPlan: missing strategy");
  }
  if (plan.strategy == "-") plan.strategy.clear();
  EngineStats& s = plan.stats;
  if (!(is >> tag >> s.sourcesRun >> s.generated >> s.unique >>
        s.duplicates >> s.scoreCacheHits >> s.orchestrated >> s.sharedHits >>
        s.evictions >> s.boundAborts >> s.crossRequestHits >>
        s.resultCacheHits >> s.evalProbes >> s.scratchHeapAllocs >>
        s.arenaBytesHighWater) ||
      tag != "stats") {
    throw std::runtime_error("readOptimizedPlan: bad stats line");
  }
  plan.plan.graph = readGraph(is);
  plan.plan.ol = readOperationList(is);
  return plan;
}

std::string toString(const Application& app) {
  std::ostringstream os;
  writeApplication(os, app);
  return os.str();
}

Application applicationFromString(const std::string& text) {
  std::istringstream is(text);
  return readApplication(is);
}

std::string toString(const ExecutionGraph& graph) {
  std::ostringstream os;
  writeGraph(os, graph);
  return os.str();
}

ExecutionGraph graphFromString(const std::string& text) {
  std::istringstream is(text);
  return readGraph(is);
}

std::string toString(const OperationList& ol) {
  std::ostringstream os;
  writeOperationList(os, ol);
  return os.str();
}

OperationList operationListFromString(const std::string& text) {
  std::istringstream is(text);
  return readOperationList(is);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) os_ << ",";
    os_ << cells[i];
  }
  os_ << "\n";
}

}  // namespace fsw
