#include "src/io/serialize.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/serve/result_cache.hpp"

namespace fsw {

void writeApplication(std::ostream& os, const Application& app) {
  os << "application " << app.size() << "\n";
  os << std::setprecision(17);
  for (NodeId i = 0; i < app.size(); ++i) {
    const auto& s = app.service(i);
    os << "service " << (s.name.empty() ? "C" + std::to_string(i + 1) : s.name)
       << " " << s.cost << " " << s.selectivity << "\n";
  }
  for (const auto& e : app.precedences()) {
    os << "precedence " << e.from << " " << e.to << "\n";
  }
}

Application readApplication(std::istream& is) {
  std::string tag;
  std::size_t n = 0;
  if (!(is >> tag >> n) || tag != "application") {
    throw std::runtime_error("readApplication: bad header");
  }
  Application app;
  for (std::size_t i = 0; i < n; ++i) {
    std::string name;
    double cost = 0.0;
    double sel = 0.0;
    if (!(is >> tag >> name >> cost >> sel) || tag != "service") {
      throw std::runtime_error("readApplication: bad service line");
    }
    app.addService(cost, sel, name);
  }
  while (is >> tag) {
    if (tag != "precedence") {
      for (auto it = tag.rbegin(); it != tag.rend(); ++it) is.putback(*it);
      break;
    }
    NodeId from = 0;
    NodeId to = 0;
    if (!(is >> from >> to)) {
      throw std::runtime_error("readApplication: bad precedence line");
    }
    app.addPrecedence(from, to);
  }
  return app;
}

void writeGraph(std::ostream& os, const ExecutionGraph& graph) {
  os << "graph " << graph.size() << " " << graph.edgeCount() << "\n";
  for (const auto& e : graph.edges()) {
    os << "edge " << e.from << " " << e.to << "\n";
  }
}

ExecutionGraph readGraph(std::istream& is) {
  std::string tag;
  std::size_t n = 0;
  std::size_t m = 0;
  if (!(is >> tag >> n >> m) || tag != "graph") {
    throw std::runtime_error("readGraph: bad header");
  }
  ExecutionGraph g(n);
  for (std::size_t k = 0; k < m; ++k) {
    NodeId from = 0;
    NodeId to = 0;
    if (!(is >> tag >> from >> to) || tag != "edge") {
      throw std::runtime_error("readGraph: bad edge line");
    }
    g.addEdge(from, to);
  }
  return g;
}

void writeOperationList(std::ostream& os, const OperationList& ol) {
  os << std::setprecision(17);
  os << "oplist " << ol.size() << " " << ol.lambda() << " "
     << ol.comms().size() << "\n";
  for (NodeId i = 0; i < ol.size(); ++i) {
    os << "calc " << i << " " << ol.beginCalc(i) << " " << ol.endCalc(i)
       << "\n";
  }
  for (const auto& c : ol.comms()) {
    const auto enc = [](NodeId v) {
      return v == kWorld ? std::int64_t{-1} : static_cast<std::int64_t>(v);
    };
    os << "comm " << enc(c.from) << " " << enc(c.to) << " " << c.begin << " "
       << c.end << "\n";
  }
}

OperationList readOperationList(std::istream& is) {
  std::string tag;
  std::size_t n = 0;
  double lambda = 0.0;
  std::size_t comms = 0;
  if (!(is >> tag >> n >> lambda >> comms) || tag != "oplist") {
    throw std::runtime_error("readOperationList: bad header");
  }
  OperationList ol(n, lambda);
  for (std::size_t k = 0; k < n; ++k) {
    NodeId i = 0;
    double b = 0.0;
    double e = 0.0;
    if (!(is >> tag >> i >> b >> e) || tag != "calc") {
      throw std::runtime_error("readOperationList: bad calc line");
    }
    ol.setCalc(i, b, e);
  }
  for (std::size_t k = 0; k < comms; ++k) {
    std::int64_t from = 0;
    std::int64_t to = 0;
    double b = 0.0;
    double e = 0.0;
    if (!(is >> tag >> from >> to >> b >> e) || tag != "comm") {
      throw std::runtime_error("readOperationList: bad comm line");
    }
    const auto dec = [](std::int64_t v) {
      return v < 0 ? kWorld : static_cast<NodeId>(v);
    };
    ol.setComm(dec(from), dec(to), b, e);
  }
  return ol;
}

namespace {

/// Checks the `<magic> <version>` line every versioned format opens with.
void readVersionedHeader(std::istream& is, const char* magic, int version,
                         const char* where) {
  std::string word;
  int got = 0;
  if (!(is >> word) || word != magic) {
    throw std::runtime_error(std::string(where) + ": bad magic '" + word +
                             "' (expected '" + magic + "')");
  }
  if (!(is >> got)) {
    throw std::runtime_error(std::string(where) + ": missing format version");
  }
  if (got != version) {
    throw std::runtime_error(std::string(where) + ": unsupported version " +
                             std::to_string(got) + " (expected " +
                             std::to_string(version) + ")");
  }
}

/// Writes a double as a parseable token: full precision for finite values,
/// explicit inf/-inf/nan words for the rest (plain stream extraction
/// rejects the non-finite spellings operator<< produces). The caller's
/// stream precision must already be 17 for byte-exact round trips.
void writeDoubleToken(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "nan";
  } else if (std::isinf(v)) {
    os << (v > 0 ? "inf" : "-inf");
  } else {
    os << v;
  }
}

/// The inverse of writeDoubleToken; throws on a malformed token.
double readDoubleToken(std::istream& is, const char* where) {
  std::string tok;
  if (!(is >> tok)) {
    throw std::runtime_error(std::string(where) + ": missing number");
  }
  if (tok == "inf") return std::numeric_limits<double>::infinity();
  if (tok == "-inf") return -std::numeric_limits<double>::infinity();
  if (tok == "nan") return std::numeric_limits<double>::quiet_NaN();
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(tok, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != tok.size() || tok.empty()) {
    throw std::runtime_error(std::string(where) + ": bad number '" + tok +
                             "'");
  }
  return v;
}

/// A whitespace-free token field, with "-" decoding to the empty string.
/// A value literally equal to the reserved token is rejected — encoding it
/// would silently decode back as empty, breaking byte-exact round trips.
std::string fieldToken(const std::string& value, const char* where) {
  if (value.empty()) return "-";
  if (value == "-") {
    throw std::invalid_argument(std::string(where) +
                                ": '-' is reserved for the empty field");
  }
  if (value.find_first_of(" \t\n\r\f\v") != std::string::npos) {
    throw std::invalid_argument(std::string(where) + ": token '" + value +
                                "' contains whitespace");
  }
  return value;
}

/// Appends "where it broke" to a text-artifact error: which entry of how
/// many, and the stream byte offset where parsing stopped. Truncated or
/// corrupt dumps are debuggable without a hex editor.
[[noreturn]] void failEntry(std::istream& is, const char* where,
                            std::size_t entry, std::size_t total,
                            const std::string& what) {
  is.clear();  // tellg() on a failed stream returns -1; clear to locate
  const auto at = is.tellg();
  std::string msg = std::string(where) + ": " + what + " (entry " +
                    std::to_string(entry + 1) + " of " + std::to_string(total);
  if (at >= 0) {
    msg += ", near byte offset " +
           std::to_string(static_cast<long long>(at));
  }
  msg += ")";
  throw std::runtime_error(msg);
}

/// The non-degenerate slice of an LRU-first result-cache snapshot, trimmed
/// to the most recently used `budget` winners (0 = unbounded), still LRU
/// first. Shared by both dialect writers so the skip-degenerate contract
/// cannot drift between them: a non-finite value or empty strategy is a
/// solve that found no candidate — cheap to recompute, no reusable winner.
std::vector<const std::pair<std::string, ResultCache::Entry>*>
writableResultEntries(
    const std::vector<std::pair<std::string, ResultCache::Entry>>& entries,
    std::size_t budget) {
  std::vector<const std::pair<std::string, ResultCache::Entry>*> writable;
  writable.reserve(entries.size());
  for (const auto& entry : entries) {
    if (std::isfinite(entry.second->value) &&
        !entry.second->strategy.empty()) {
      writable.push_back(&entry);
    }
  }
  const std::size_t keep =
      budget == 0 ? writable.size() : std::min(budget, writable.size());
  writable.erase(writable.begin(),
                 writable.begin() +
                     static_cast<std::ptrdiff_t>(writable.size() - keep));
  return writable;
}

/// The frozen v2 text score-cache body (header already consumed).
void readCandidateCacheTextV2(std::istream& is, CandidateCache& cache) {
  std::string tag;
  std::size_t n = 0;
  if (!(is >> tag >> n) || tag != "candidatecache") {
    throw std::runtime_error("readCandidateCache: bad header");
  }
  for (std::size_t k = 0; k < n; ++k) {
    std::string key;
    double score = 0.0;
    if (!(is >> tag >> key >> score) || tag != "entry") {
      failEntry(is, "readCandidateCache", k, n, "bad entry line");
    }
    (void)cache.insert(key, score);
  }
}

/// The frozen v1 text result-cache body (header already consumed).
void readResultCacheTextV1(std::istream& is, ResultCache& cache) {
  std::string tag;
  std::size_t n = 0;
  if (!(is >> tag >> n) || tag != "results") {
    throw std::runtime_error("readResultCache: bad header");
  }
  for (std::size_t k = 0; k < n; ++k) {
    OptimizedPlan plan;
    std::string key;
    if (!(is >> tag >> key >> plan.value >> plan.surrogate >> plan.strategy) ||
        tag != "result") {
      failEntry(is, "readResultCache", k, n, "bad result line");
    }
    try {
      plan.plan.graph = readGraph(is);
      plan.plan.ol = readOperationList(is);
    } catch (const std::runtime_error& e) {
      failEntry(is, "readResultCache", k, n, e.what());
    }
    (void)cache.insert(key, plan);
  }
}

}  // namespace

void writeCandidateCacheText(std::ostream& os, const CandidateCache& cache) {
  const auto entries = cache.snapshot();
  os << kScoreCacheMagic << " " << kScoreCacheVersion << "\n";
  os << "candidatecache " << entries.size() << "\n";
  os << std::setprecision(17);
  for (const auto& [key, score] : entries) {
    os << "entry " << key << " " << score << "\n";
  }
}

void writeResultCacheText(std::ostream& os, const ResultCache& cache,
                          std::size_t budget) {
  const auto entries = cache.snapshot();  // LRU first
  const auto writable = writableResultEntries(entries, budget);
  os << kResultCacheMagic << " " << kResultCacheVersion << "\n";
  os << "results " << writable.size() << "\n";
  os << std::setprecision(17);
  for (const auto* entry : writable) {
    const auto& [key, plan] = *entry;
    os << "result " << key << " " << plan->value << " " << plan->surrogate
       << " " << plan->strategy << "\n";
    writeGraph(os, plan->plan.graph);
    writeOperationList(os, plan->plan.ol);
  }
}

void writeShardSetHeader(std::ostream& os, std::size_t shards,
                         const std::string& kind) {
  os << kShardSetMagic << " " << kShardSetVersion << "\n";
  os << "shards " << shards << " " << kind << "\n";
}

std::pair<std::size_t, std::string> readShardSetHeader(std::istream& is) {
  readVersionedHeader(is, kShardSetMagic, kShardSetVersion,
                      "readShardSetHeader");
  std::string tag;
  std::size_t count = 0;
  std::string kind;
  if (!(is >> tag >> count >> kind) || tag != "shards") {
    throw std::runtime_error("readShardSetHeader: bad shards line");
  }
  return {count, kind};
}

void writeStoreGet(std::ostream& os, const std::string& key, bool wantPlan) {
  os << kStoreGetMagic << " " << kStoreGetVersion << "\n";
  os << "get " << fieldToken(key, "writeStoreGet") << " " << (wantPlan ? 1 : 0)
     << "\n";
}

StoreGet readStoreGet(std::istream& is) {
  readVersionedHeader(is, kStoreGetMagic, kStoreGetVersion, "readStoreGet");
  StoreGet get;
  std::string tag;
  int wantPlan = 0;
  if (!(is >> tag >> get.key >> wantPlan) || tag != "get" ||
      (wantPlan != 0 && wantPlan != 1)) {
    throw std::runtime_error("readStoreGet: bad get line");
  }
  if (get.key == "-") get.key.clear();
  get.wantPlan = wantPlan == 1;
  return get;
}

void writeStorePut(std::ostream& os, const std::string& key,
                   const OptimizedPlan& plan) {
  os << kStorePutMagic << " " << kStorePutVersion << "\n";
  os << "put " << fieldToken(key, "writeStorePut") << "\n";
  writeOptimizedPlan(os, plan);
}

StorePut readStorePut(std::istream& is) {
  readVersionedHeader(is, kStorePutMagic, kStorePutVersion, "readStorePut");
  StorePut put;
  std::string tag;
  if (!(is >> tag >> put.key) || tag != "put") {
    throw std::runtime_error("readStorePut: bad put line");
  }
  if (put.key == "-") put.key.clear();
  put.plan = readOptimizedPlan(is);
  return put;
}

void writeStoreReply(std::ostream& os, const OptimizedPlan* plan,
                     double bound) {
  os << kStoreReplyMagic << " " << kStoreReplyVersion << "\n";
  os << std::setprecision(17);
  os << "reply " << (plan != nullptr ? 1 : 0) << " ";
  writeDoubleToken(os, bound);
  os << "\n";
  if (plan != nullptr) writeOptimizedPlan(os, *plan);
}

StoreReply readStoreReply(std::istream& is) {
  readVersionedHeader(is, kStoreReplyMagic, kStoreReplyVersion,
                      "readStoreReply");
  StoreReply reply;
  std::string tag;
  int found = 0;
  if (!(is >> tag >> found) || tag != "reply" || (found != 0 && found != 1)) {
    throw std::runtime_error("readStoreReply: bad reply line");
  }
  reply.found = found == 1;
  reply.bound = readDoubleToken(is, "readStoreReply");
  if (reply.found) reply.plan = readOptimizedPlan(is);
  return reply;
}

void writeStoreStats(std::ostream& os, const StoreStatsWire& stats) {
  os << kStoreStatsMagic << " " << kStoreStatsVersion << "\n";
  os << "storestats " << stats.entries << " " << stats.gets << " "
     << stats.hits << " " << stats.boundHits << " " << stats.puts << " "
     << stats.evictions << " " << stats.bounds << "\n";
}

StoreStatsWire readStoreStats(std::istream& is) {
  readVersionedHeader(is, kStoreStatsMagic, kStoreStatsVersion,
                      "readStoreStats");
  StoreStatsWire stats;
  std::string tag;
  if (!(is >> tag >> stats.entries >> stats.gets >> stats.hits >>
        stats.boundHits >> stats.puts >> stats.evictions >> stats.bounds) ||
      tag != "storestats") {
    throw std::runtime_error("readStoreStats: bad storestats line");
  }
  return stats;
}

namespace {

/// The wire token naming a request's portfolio: "-" for the default, the
/// portfolio's registered name otherwise. Unnamed portfolios are
/// process-local by contract (their key is a pointer), so they cannot
/// travel.
std::string portfolioToken(const OptimizerOptions& options) {
  if (options.registry == nullptr) return "-";
  if (options.registry->name().empty()) {
    throw std::invalid_argument(
        "writePlanRequest: an unnamed portfolio is process-local and cannot "
        "cross the wire; name it (CandidateRegistry::setName) to opt in to "
        "portable keys");
  }
  return options.registry->name();
}

}  // namespace

void writePlanRequest(std::ostream& os, const PlanRequest& request,
                      int priority) {
  const OptimizerOptions& o = request.options;
  const OrchestrationOptions& ord = o.orchestrator.order;
  const OutorderOptions& oo = o.orchestrator.outorder;
  const OrchestrationOptions& seed = oo.inorder;

  os << kPlanRequestMagic << " " << kPlanRequestVersion << "\n";
  os << std::setprecision(17);
  os << "request " << priority << " " << name(request.model) << " "
     << name(request.objective) << " " << portfolioToken(o) << "\n";
  os << "options " << o.exactForestMaxN << " " << o.orchestrateTop << "\n";
  os << "heuristics " << o.heuristics.restarts << " "
     << o.heuristics.iterations << " ";
  writeDoubleToken(os, o.heuristics.initialTemperature);
  os << " " << o.heuristics.seed << "\n";
  os << "order " << ord.exactCap << " " << ord.localSearchIters << " "
     << ord.localSearchRestarts << " " << ord.seed << " ";
  writeDoubleToken(os, ord.upperBound);
  os << "\n";
  os << "outorder " << oo.repairIters << " " << oo.restarts << " "
     << oo.bisectSteps << " " << oo.seed << "\n";
  os << "seedorder " << seed.exactCap << " " << seed.localSearchIters << " "
     << seed.localSearchRestarts << " " << seed.seed << " ";
  writeDoubleToken(os, seed.upperBound);
  os << "\n";
  writeApplication(os, request.app);
}

WirePlanRequest readPlanRequest(std::istream& is) {
  readVersionedHeader(is, kPlanRequestMagic, kPlanRequestVersion,
                      "readPlanRequest");
  WirePlanRequest wire;
  OptimizerOptions& o = wire.request.options;

  std::string tag;
  std::string model;
  std::string objective;
  if (!(is >> tag >> wire.priority >> model >> objective >> wire.portfolio) ||
      tag != "request") {
    throw std::runtime_error("readPlanRequest: bad request line");
  }
  const auto m = commModelFromName(model);
  if (!m) {
    throw std::runtime_error("readPlanRequest: unknown model '" + model +
                             "'");
  }
  wire.request.model = *m;
  const auto obj = objectiveFromName(objective);
  if (!obj) {
    throw std::runtime_error("readPlanRequest: unknown objective '" +
                             objective + "'");
  }
  wire.request.objective = *obj;
  if (wire.portfolio.empty()) {
    throw std::runtime_error("readPlanRequest: empty portfolio token");
  }

  if (!(is >> tag >> o.exactForestMaxN >> o.orchestrateTop) ||
      tag != "options") {
    throw std::runtime_error("readPlanRequest: bad options line");
  }
  if (!(is >> tag >> o.heuristics.restarts >> o.heuristics.iterations) ||
      tag != "heuristics") {
    throw std::runtime_error("readPlanRequest: bad heuristics line");
  }
  o.heuristics.initialTemperature = readDoubleToken(is, "readPlanRequest");
  if (!(is >> o.heuristics.seed)) {
    throw std::runtime_error("readPlanRequest: bad heuristics seed");
  }
  OrchestrationOptions& ord = o.orchestrator.order;
  if (!(is >> tag >> ord.exactCap >> ord.localSearchIters >>
        ord.localSearchRestarts >> ord.seed) ||
      tag != "order") {
    throw std::runtime_error("readPlanRequest: bad order line");
  }
  ord.upperBound = readDoubleToken(is, "readPlanRequest");
  OutorderOptions& oo = o.orchestrator.outorder;
  if (!(is >> tag >> oo.repairIters >> oo.restarts >> oo.bisectSteps >>
        oo.seed) ||
      tag != "outorder") {
    throw std::runtime_error("readPlanRequest: bad outorder line");
  }
  OrchestrationOptions& seed = oo.inorder;
  if (!(is >> tag >> seed.exactCap >> seed.localSearchIters >>
        seed.localSearchRestarts >> seed.seed) ||
      tag != "seedorder") {
    throw std::runtime_error("readPlanRequest: bad seedorder line");
  }
  seed.upperBound = readDoubleToken(is, "readPlanRequest");
  wire.request.app = readApplication(is);
  return wire;
}

void writeOptimizedPlan(std::ostream& os, const OptimizedPlan& plan) {
  const EngineStats& s = plan.stats;
  os << kPlanResponseMagic << " " << kPlanResponseVersion << "\n";
  os << std::setprecision(17);
  os << "plan ";
  writeDoubleToken(os, plan.value);
  os << " ";
  writeDoubleToken(os, plan.surrogate);
  os << " " << fieldToken(plan.strategy, "writeOptimizedPlan") << "\n";
  os << "stats " << s.sourcesRun << " " << s.generated << " " << s.unique
     << " " << s.duplicates << " " << s.scoreCacheHits << " "
     << s.orchestrated << " " << s.sharedHits << " " << s.evictions << " "
     << s.boundAborts << " " << s.crossRequestHits << " "
     << s.resultCacheHits << " " << s.evalProbes << " "
     << s.scratchHeapAllocs << " " << s.arenaBytesHighWater << "\n";
  writeGraph(os, plan.plan.graph);
  writeOperationList(os, plan.plan.ol);
}

OptimizedPlan readOptimizedPlan(std::istream& is) {
  readVersionedHeader(is, kPlanResponseMagic, kPlanResponseVersion,
                      "readOptimizedPlan");
  OptimizedPlan plan;
  std::string tag;
  if (!(is >> tag) || tag != "plan") {
    throw std::runtime_error("readOptimizedPlan: bad plan line");
  }
  plan.value = readDoubleToken(is, "readOptimizedPlan");
  plan.surrogate = readDoubleToken(is, "readOptimizedPlan");
  if (!(is >> plan.strategy)) {
    throw std::runtime_error("readOptimizedPlan: missing strategy");
  }
  if (plan.strategy == "-") plan.strategy.clear();
  EngineStats& s = plan.stats;
  if (!(is >> tag >> s.sourcesRun >> s.generated >> s.unique >>
        s.duplicates >> s.scoreCacheHits >> s.orchestrated >> s.sharedHits >>
        s.evictions >> s.boundAborts >> s.crossRequestHits >>
        s.resultCacheHits >> s.evalProbes >> s.scratchHeapAllocs >>
        s.arenaBytesHighWater) ||
      tag != "stats") {
    throw std::runtime_error("readOptimizedPlan: bad stats line");
  }
  plan.plan.graph = readGraph(is);
  plan.plan.ol = readOperationList(is);
  return plan;
}

/// ---- binary bodies (wire codec v3 / binary artifacts) ---------------------

namespace {

/// Bit-pattern double equality: the delta-coding exactness check. operator==
/// would call -0.0 == 0.0 and never match NaNs, both of which break the
/// byte-exact re-encode contract; the bits are the contract.
bool bitsEqual(double a, double b) {
  std::uint64_t x = 0;
  std::uint64_t y = 0;
  std::memcpy(&x, &a, sizeof(x));
  std::memcpy(&y, &b, sizeof(y));
  return x == y;
}

/// Delta arithmetic runs in uint64 with wraparound (signed overflow on a
/// hostile delta would be UB); callers bounds-check the result.
std::int64_t wrapAdd(std::int64_t prev, std::int64_t delta) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(prev) +
                                   static_cast<std::uint64_t>(delta));
}

/// Front coding: consecutive cache keys share long signature prefixes, so
/// each key is stored as (shared-prefix-length, suffix) against its
/// predecessor. The suffix itself is LZ-compressed — a request key lists
/// every service's cost:selectivity token, so even the unshared tail is
/// internally repetitive.
void putFrontCodedKey(binio::Writer& w, const std::string& prev,
                      const std::string& key) {
  std::size_t share = 0;
  const std::size_t lim = std::min(prev.size(), key.size());
  while (share < lim && prev[share] == key[share]) ++share;
  w.u64(share);
  w.zstr(std::string_view(key).substr(share));
}

std::string getFrontCodedKey(binio::Reader& r, const std::string& prev) {
  const std::uint64_t share = r.u64();
  if (share > prev.size()) {
    r.fail("front-coded key shares " + std::to_string(share) +
           " bytes but the previous key has only " +
           std::to_string(prev.size()));
  }
  std::string key = prev.substr(0, static_cast<std::size_t>(share));
  key.append(r.zstr());
  return key;
}

/// Calc/comm interval codec: begin travels as a delta against the previous
/// record's begin and end as a duration, each only when the delta
/// reconstructs the original bits exactly (flag bits 0/1; absolute f64
/// fallback otherwise, which also covers NaNs). The transformed values are
/// then pooled in a per-oplist dictionary of distinct bit patterns:
/// schedules repeat durations and alignment gaps relentlessly (B.1's 1208
/// interval values collapse to 5 distinct deltas), so each interval costs
/// a flags byte plus two short dictionary indices instead of two doubles.
/// Interning by bit pattern (not ==) keeps -0.0 and NaN payloads exact and
/// the dictionary order (first use) deterministic.
struct IntervalPool {
  std::vector<double> values;  ///< distinct doubles, first-use order
  std::unordered_map<std::uint64_t, std::size_t> index;

  std::size_t intern(double v) {
    std::uint64_t b = 0;
    std::memcpy(&b, &v, sizeof(b));
    const auto [it, fresh] = index.emplace(b, values.size());
    if (fresh) values.push_back(v);
    return it->second;
  }
};

struct CodedInterval {
  std::uint8_t flags = 0;
  std::size_t a = 0;  ///< pool slot of delta-begin (or absolute begin)
  std::size_t b = 0;  ///< pool slot of duration (or absolute end)
};

CodedInterval codeInterval(IntervalPool& pool, double begin, double end,
                           double& prevBegin) {
  const double db = begin - prevBegin;
  const double de = end - begin;
  CodedInterval c;
  if (bitsEqual(prevBegin + db, begin)) c.flags |= 1;
  if (bitsEqual(begin + de, end)) c.flags |= 2;
  c.a = pool.intern((c.flags & 1) != 0 ? db : begin);
  c.b = pool.intern((c.flags & 2) != 0 ? de : end);
  prevBegin = begin;
  return c;
}

bool operator==(const CodedInterval& x, const CodedInterval& y) {
  return x.flags == y.flags && x.a == y.a && x.b == y.b;
}

}  // namespace

void putApplication(binio::Writer& w, const Application& app) {
  w.u64(app.size());
  for (NodeId i = 0; i < app.size(); ++i) {
    const auto& s = app.service(i);
    // Same empty-name substitution as writeApplication: both dialects
    // decode an unnamed service to the identical Application (and so the
    // identical request key).
    w.str(s.name.empty() ? "C" + std::to_string(i + 1) : s.name);
    w.f64(s.cost);
    w.f64(s.selectivity);
  }
  const auto& precs = app.precedences();
  w.u64(precs.size());
  std::int64_t prevFrom = 0;
  std::int64_t prevTo = 0;
  for (const auto& e : precs) {
    w.i64(static_cast<std::int64_t>(e.from) - prevFrom);
    w.i64(static_cast<std::int64_t>(e.to) - prevTo);
    prevFrom = static_cast<std::int64_t>(e.from);
    prevTo = static_cast<std::int64_t>(e.to);
  }
}

Application getApplication(binio::Reader& r) {
  const std::uint64_t n = r.u64();
  if (n > r.remaining()) {
    r.fail("application declares more services than bytes present");
  }
  Application app;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::string name(r.str());
    const double cost = r.f64();
    const double sel = r.f64();
    app.addService(cost, sel, name);
  }
  const std::uint64_t m = r.u64();
  if (m > r.remaining()) {
    r.fail("application declares more precedences than bytes present");
  }
  std::int64_t prevFrom = 0;
  std::int64_t prevTo = 0;
  for (std::uint64_t k = 0; k < m; ++k) {
    const std::int64_t from = wrapAdd(prevFrom, r.i64());
    const std::int64_t to = wrapAdd(prevTo, r.i64());
    if (from < 0 || static_cast<std::uint64_t>(from) >= n || to < 0 ||
        static_cast<std::uint64_t>(to) >= n) {
      r.fail("precedence endpoint out of range");
    }
    try {
      app.addPrecedence(static_cast<NodeId>(from), static_cast<NodeId>(to));
    } catch (const std::invalid_argument& e) {
      r.fail(e.what());
    }
    prevFrom = from;
    prevTo = to;
  }
  return app;
}

namespace {

/// Adjacency in STORED successor order (not sorted): decode rebuilds the
/// exact succ_/pred_ vectors, so a binary-loaded plan re-serializes and
/// signs byte-identically to the text-loaded one. Targets of one node are
/// near each other in practice, so zigzag deltas stay short anyway.
void putGraph(binio::Writer& w, const ExecutionGraph& g) {
  w.u64(g.size());
  w.u64(g.edgeCount());
  for (NodeId i = 0; i < g.size(); ++i) {
    const auto& succ = g.successors(i);
    w.u64(succ.size());
    std::int64_t prev = 0;
    for (const NodeId t : succ) {
      w.i64(static_cast<std::int64_t>(t) - prev);
      prev = static_cast<std::int64_t>(t);
    }
  }
}

ExecutionGraph getGraph(binio::Reader& r) {
  const std::uint64_t n = r.u64();
  const std::uint64_t m = r.u64();
  if (n > r.remaining()) {
    r.fail("graph declares more nodes than bytes present");
  }
  if (m > r.remaining()) {
    r.fail("graph declares more edges than bytes present");
  }
  ExecutionGraph g(static_cast<std::size_t>(n));
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t deg = r.u64();
    total += deg;
    if (total > m) r.fail("more edges than the declared edge count");
    std::int64_t prev = 0;
    for (std::uint64_t k = 0; k < deg; ++k) {
      const std::int64_t v = wrapAdd(prev, r.i64());
      if (v < 0 || static_cast<std::uint64_t>(v) >= n) {
        r.fail("edge target out of range");
      }
      try {
        g.addEdge(static_cast<NodeId>(i), static_cast<NodeId>(v));
      } catch (const std::invalid_argument& e) {
        r.fail(e.what());
      }
      prev = v;
    }
  }
  if (total != m) {
    r.fail("edge count mismatch (declared " + std::to_string(m) + ", found " +
           std::to_string(total) + ")");
  }
  return g;
}

void putOperationList(binio::Writer& w, const OperationList& ol) {
  // Pass 1: delta-transform every interval (calcs first, then comms) and
  // intern the transformed values. Pass 2 writes the dictionary, then the
  // coded intervals as one run-length stream — a schedule that repeats the
  // same duration back to back (every round-robin period does) codes as
  // one (run, flags, slot, slot) group — then the comm endpoints as zigzag
  // deltas against the previous comm (adjacent comms connect neighbouring
  // services, so the deltas are small).
  IntervalPool pool;
  std::vector<CodedInterval> coded;
  coded.reserve(ol.size() + ol.comms().size());
  double prevBegin = 0.0;
  for (NodeId i = 0; i < ol.size(); ++i) {
    coded.push_back(
        codeInterval(pool, ol.beginCalc(i), ol.endCalc(i), prevBegin));
  }
  for (const auto& c : ol.comms()) {
    coded.push_back(codeInterval(pool, c.begin, c.end, prevBegin));
  }

  w.u64(ol.size());
  w.f64(ol.lambda());
  w.u64(ol.comms().size());
  w.u64(pool.values.size());
  for (const double v : pool.values) w.f64(v);
  for (std::size_t k = 0; k < coded.size();) {
    std::size_t run = 1;
    while (k + run < coded.size() && coded[k + run] == coded[k]) ++run;
    w.u64(run);
    w.u8(coded[k].flags);
    w.u64(coded[k].a);
    w.u64(coded[k].b);
    k += run;
  }
  const auto enc = [](NodeId v) {
    return v == kWorld ? std::int64_t{-1} : static_cast<std::int64_t>(v);
  };
  std::int64_t prevFrom = 0;
  std::int64_t prevTo = 0;
  for (const auto& c : ol.comms()) {
    w.i64(enc(c.from) - prevFrom);
    w.i64(enc(c.to) - prevTo);
    prevFrom = enc(c.from);
    prevTo = enc(c.to);
  }
}

OperationList getOperationList(binio::Reader& r) {
  const std::uint64_t n = r.u64();
  const double lambda = r.f64();
  const std::uint64_t comms = r.u64();
  if (n > r.remaining()) {
    r.fail("oplist declares more calcs than bytes present");
  }
  if (comms > r.remaining()) {
    r.fail("oplist declares more comms than bytes present");
  }
  const std::uint64_t dict = r.u64();
  if (dict > r.remaining()) {
    r.fail("oplist declares more dictionary values than bytes present");
  }
  if (dict > 2 * (n + comms)) {
    r.fail("oplist dictionary larger than its interval count allows");
  }
  std::vector<double> pool;
  pool.reserve(static_cast<std::size_t>(dict));
  for (std::uint64_t i = 0; i < dict; ++i) pool.push_back(r.f64());

  // The run-length interval stream buffers into absolute (begin, end)
  // spans: calc spans land directly, comm spans wait for the endpoint
  // deltas that follow the stream.
  const std::uint64_t total = n + comms;
  std::vector<std::pair<double, double>> spans;
  spans.reserve(static_cast<std::size_t>(total));
  double prevBegin = 0.0;
  while (spans.size() < total) {
    const std::uint64_t run = r.u64();
    if (run == 0) r.fail("zero-length interval run");
    if (run > total - spans.size()) {
      r.fail("interval run overruns the declared calc+comm count");
    }
    const std::uint8_t flags = r.u8();
    if ((flags & ~3u) != 0) r.fail("unknown interval flag bits");
    const std::uint64_t ia = r.u64();
    const std::uint64_t ib = r.u64();
    if (ia >= pool.size() || ib >= pool.size()) {
      r.fail("interval value index out of dictionary range");
    }
    const double a = pool[static_cast<std::size_t>(ia)];
    const double b = pool[static_cast<std::size_t>(ib)];
    for (std::uint64_t j = 0; j < run; ++j) {
      const double begin = (flags & 1) != 0 ? prevBegin + a : a;
      const double end = (flags & 2) != 0 ? begin + b : b;
      spans.emplace_back(begin, end);
      prevBegin = begin;
    }
  }

  OperationList ol(static_cast<std::size_t>(n), lambda);
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto& s = spans[static_cast<std::size_t>(i)];
    try {
      ol.setCalc(static_cast<NodeId>(i), s.first, s.second);
    } catch (const std::invalid_argument& ex) {
      r.fail(ex.what());
    }
  }
  const auto dec = [&](std::int64_t v) -> NodeId {
    if (v == -1) return kWorld;
    if (v < 0 || static_cast<std::uint64_t>(v) >= n) {
      r.fail("comm endpoint out of range");
    }
    return static_cast<NodeId>(v);
  };
  std::int64_t prevFrom = 0;
  std::int64_t prevTo = 0;
  for (std::uint64_t k = 0; k < comms; ++k) {
    const std::int64_t from = wrapAdd(prevFrom, r.i64());
    const std::int64_t to = wrapAdd(prevTo, r.i64());
    const auto& s = spans[static_cast<std::size_t>(n + k)];
    try {
      ol.setComm(dec(from), dec(to), s.first, s.second);
    } catch (const std::invalid_argument& ex) {
      r.fail(ex.what());
    }
    prevFrom = from;
    prevTo = to;
  }
  return ol;
}

void putStats(binio::Writer& w, const EngineStats& s) {
  w.u64(s.sourcesRun);
  w.u64(s.generated);
  w.u64(s.unique);
  w.u64(s.duplicates);
  w.u64(s.scoreCacheHits);
  w.u64(s.orchestrated);
  w.u64(s.sharedHits);
  w.u64(s.evictions);
  w.u64(s.boundAborts);
  w.u64(s.crossRequestHits);
  w.u64(s.resultCacheHits);
  w.u64(s.evalProbes);
  w.u64(s.scratchHeapAllocs);
  w.u64(s.arenaBytesHighWater);
  w.u64(s.storeBytesSent);
  w.u64(s.storeBytesReceived);
  w.u64(s.seedBoundAborts);
  w.u64(s.repairBoundAborts);
}

/// `extended` = the enclosing block's version carries the v4 bound-abort
/// phase split; older blocks leave the split counters at 0 (boundAborts in
/// its original slot remains the total either way).
void getStats(binio::Reader& r, EngineStats& s, bool extended) {
  s.sourcesRun = static_cast<std::size_t>(r.u64());
  s.generated = static_cast<std::size_t>(r.u64());
  s.unique = static_cast<std::size_t>(r.u64());
  s.duplicates = static_cast<std::size_t>(r.u64());
  s.scoreCacheHits = static_cast<std::size_t>(r.u64());
  s.orchestrated = static_cast<std::size_t>(r.u64());
  s.sharedHits = static_cast<std::size_t>(r.u64());
  s.evictions = static_cast<std::size_t>(r.u64());
  s.boundAborts = static_cast<std::size_t>(r.u64());
  s.crossRequestHits = static_cast<std::size_t>(r.u64());
  s.resultCacheHits = static_cast<std::size_t>(r.u64());
  s.evalProbes = static_cast<std::size_t>(r.u64());
  s.scratchHeapAllocs = static_cast<std::size_t>(r.u64());
  s.arenaBytesHighWater = static_cast<std::size_t>(r.u64());
  s.storeBytesSent = static_cast<std::size_t>(r.u64());
  s.storeBytesReceived = static_cast<std::size_t>(r.u64());
  if (extended) {
    s.seedBoundAborts = static_cast<std::size_t>(r.u64());
    s.repairBoundAborts = static_cast<std::size_t>(r.u64());
  }
}

/// The winner without its stats — the result-cache entry body (the cache
/// clears stats on insert, so storing them would be dead bytes).
void putPlanCore(binio::Writer& w, const OptimizedPlan& plan) {
  w.f64(plan.value);
  w.f64(plan.surrogate);
  w.str(plan.strategy);
  putGraph(w, plan.plan.graph);
  putOperationList(w, plan.plan.ol);
}

void getPlanCore(binio::Reader& r, OptimizedPlan& plan) {
  plan.value = r.f64();
  plan.surrogate = r.f64();
  plan.strategy = std::string(r.str());
  plan.plan.graph = getGraph(r);
  plan.plan.ol = getOperationList(r);
}

/// The wire plan body: core + the 18 EngineStats counters (stats cross the
/// wire so a remote client observes the same counters a local caller
/// would).
void putPlanBody(binio::Writer& w, const OptimizedPlan& plan) {
  putPlanCore(w, plan);
  putStats(w, plan.stats);
}

OptimizedPlan getPlanBody(binio::Reader& r, bool extendedStats) {
  OptimizedPlan plan;
  getPlanCore(r, plan);
  getStats(r, plan.stats, extendedStats);
  return plan;
}

void putOrder(binio::Writer& w, const OrchestrationOptions& ord) {
  w.u64(ord.exactCap);
  w.u64(ord.localSearchIters);
  w.u64(ord.localSearchRestarts);
  w.u64(ord.seed);
  w.f64(ord.upperBound);
}

void getOrder(binio::Reader& r, OrchestrationOptions& ord) {
  ord.exactCap = static_cast<std::size_t>(r.u64());
  ord.localSearchIters = static_cast<std::size_t>(r.u64());
  ord.localSearchRestarts = static_cast<std::size_t>(r.u64());
  ord.seed = r.u64();
  ord.upperBound = r.f64();
}

void putPlanRequestBody(binio::Writer& w, const PlanRequest& request,
                        int priority) {
  const OptimizerOptions& o = request.options;
  const OutorderOptions& oo = o.orchestrator.outorder;
  w.i64(priority);
  w.str(name(request.model));
  w.str(name(request.objective));
  w.str(portfolioToken(o));  // "-" = default portfolio, as in text
  w.u64(o.exactForestMaxN);
  w.u64(o.orchestrateTop);
  w.u64(o.heuristics.restarts);
  w.u64(o.heuristics.iterations);
  w.f64(o.heuristics.initialTemperature);
  w.u64(o.heuristics.seed);
  putOrder(w, o.orchestrator.order);
  w.u64(oo.repairIters);
  w.u64(oo.restarts);
  w.u64(oo.bisectSteps);
  w.u64(oo.seed);
  putOrder(w, oo.inorder);
  putApplication(w, request.app);
}

WirePlanRequest getPlanRequestBody(binio::Reader& r) {
  WirePlanRequest wire;
  OptimizerOptions& o = wire.request.options;
  wire.priority = static_cast<int>(r.i64());
  const std::string model(r.str());
  const auto m = commModelFromName(model);
  if (!m) r.fail("unknown model '" + model + "'");
  wire.request.model = *m;
  const std::string objective(r.str());
  const auto obj = objectiveFromName(objective);
  if (!obj) r.fail("unknown objective '" + objective + "'");
  wire.request.objective = *obj;
  wire.portfolio = std::string(r.str());
  if (wire.portfolio.empty()) r.fail("empty portfolio token");
  o.exactForestMaxN = static_cast<std::size_t>(r.u64());
  o.orchestrateTop = static_cast<std::size_t>(r.u64());
  o.heuristics.restarts = static_cast<std::size_t>(r.u64());
  o.heuristics.iterations = static_cast<std::size_t>(r.u64());
  o.heuristics.initialTemperature = r.f64();
  o.heuristics.seed = r.u64();
  getOrder(r, o.orchestrator.order);
  OutorderOptions& oo = o.orchestrator.outorder;
  oo.repairIters = static_cast<std::size_t>(r.u64());
  oo.restarts = static_cast<std::size_t>(r.u64());
  oo.bisectSteps = static_cast<std::size_t>(r.u64());
  oo.seed = r.u64();
  getOrder(r, oo.inorder);
  wire.request.app = getApplication(r);
  return wire;
}

/// Pulls one binary artifact block off a stream and checks its identity.
binio::Block readArtifactBlock(std::istream& is, char kind, int version,
                               const char* where) {
  binio::Block block = binio::readBlock(is, where);
  if (block.kind != kind) {
    throw std::runtime_error(std::string(where) +
                             ": unexpected binary block kind '" + block.kind +
                             "' (expected '" + kind + "')");
  }
  if (block.version != static_cast<std::uint64_t>(version)) {
    throw std::runtime_error(
        std::string(where) + ": unsupported binary version " +
        std::to_string(block.version) + " (expected " +
        std::to_string(version) + ")");
  }
  return block;
}

/// Rethrows a Reader error with which-entry context appended.
[[noreturn]] void rethrowEntry(const std::runtime_error& e, std::uint64_t k,
                               std::uint64_t n) {
  throw std::runtime_error(std::string(e.what()) + " (entry " +
                           std::to_string(k + 1) + " of " +
                           std::to_string(n) + ")");
}

}  // namespace

void writeCandidateCache(std::ostream& os, const CandidateCache& cache) {
  const auto entries = cache.snapshot();  // LRU first
  binio::Writer body;
  body.u64(entries.size());
  std::string prev;
  for (const auto& [key, score] : entries) {
    putFrontCodedKey(body, prev, key);
    body.f64(score);
    prev = key;
  }
  const std::string block = binio::finishBlock(
      kBinScoreCacheKind, kBinScoreCacheVersion, body.take());
  os.write(block.data(), static_cast<std::streamsize>(block.size()));
}

void readCandidateCache(std::istream& is, CandidateCache& cache) {
  if (binio::sniffBinary(is)) {
    const binio::Block block = readArtifactBlock(
        is, kBinScoreCacheKind, kBinScoreCacheVersion, "readCandidateCache");
    binio::Reader r(block.body, "readCandidateCache");
    const std::uint64_t n = r.u64();
    std::string prev;
    for (std::uint64_t k = 0; k < n; ++k) {
      std::string key;
      double score = 0.0;
      try {
        key = getFrontCodedKey(r, prev);
        score = r.f64();
      } catch (const std::runtime_error& e) {
        rethrowEntry(e, k, n);
      }
      (void)cache.insert(key, score);
      prev = std::move(key);
    }
    r.expectEnd();
    return;
  }
  readVersionedHeader(is, kScoreCacheMagic, kScoreCacheVersion,
                      "readCandidateCache");
  readCandidateCacheTextV2(is, cache);
}

void writeResultCache(std::ostream& os, const ResultCache& cache,
                      std::size_t budget) {
  const auto entries = cache.snapshot();  // LRU first
  const auto writable = writableResultEntries(entries, budget);
  binio::Writer body;
  body.u64(writable.size());
  std::string prev;
  for (const auto* entry : writable) {
    const auto& [key, plan] = *entry;
    putFrontCodedKey(body, prev, key);
    putPlanCore(body, *plan);
    prev = key;
  }
  const std::string block = binio::finishBlock(
      kBinResultCacheKind, kBinResultCacheVersion, body.take());
  os.write(block.data(), static_cast<std::streamsize>(block.size()));
}

void readResultCache(std::istream& is, ResultCache& cache) {
  if (binio::sniffBinary(is)) {
    const binio::Block block = readArtifactBlock(
        is, kBinResultCacheKind, kBinResultCacheVersion, "readResultCache");
    binio::Reader r(block.body, "readResultCache");
    const std::uint64_t n = r.u64();
    std::string prev;
    for (std::uint64_t k = 0; k < n; ++k) {
      std::string key;
      OptimizedPlan plan;
      try {
        key = getFrontCodedKey(r, prev);
        getPlanCore(r, plan);
      } catch (const std::runtime_error& e) {
        rethrowEntry(e, k, n);
      }
      (void)cache.insert(key, plan);
      prev = std::move(key);
    }
    r.expectEnd();
    return;
  }
  readVersionedHeader(is, kResultCacheMagic, kResultCacheVersion,
                      "readResultCache");
  readResultCacheTextV1(is, cache);
}

std::string encodePlanRequest(const PlanRequest& request, int priority) {
  binio::Writer body;
  putPlanRequestBody(body, request, priority);
  return binio::finishBlock(kBinPlanRequestKind, kBinPlanRequestVersion,
                            body.take());
}

WirePlanRequest decodePlanRequest(std::string_view payload) {
  if (binio::isBinary(payload)) {
    binio::Reader r =
        binio::openBlock(payload, kBinPlanRequestKind, kBinPlanRequestVersion,
                         "decodePlanRequest");
    WirePlanRequest wire = getPlanRequestBody(r);
    r.expectEnd();
    return wire;
  }
  std::istringstream is{std::string(payload)};
  return readPlanRequest(is);
}

std::string encodeOptimizedPlan(const OptimizedPlan& plan) {
  binio::Writer body;
  putPlanBody(body, plan);
  return binio::finishBlock(kBinPlanResponseKind, kBinPlanResponseVersion,
                            body.take());
}

OptimizedPlan decodeOptimizedPlan(std::string_view payload) {
  if (binio::isBinary(payload)) {
    // Tolerant across v3/v4: a v3 peer predates the bound-abort phase
    // split, so the split counters stay 0.
    std::uint64_t version = 0;
    binio::Reader r = binio::openBlockRange(
        payload, kBinPlanResponseKind, /*minVersion=*/3,
        kBinPlanResponseVersion, &version, "decodeOptimizedPlan");
    OptimizedPlan plan = getPlanBody(r, version >= 4);
    r.expectEnd();
    return plan;
  }
  std::istringstream is{std::string(payload)};
  return readOptimizedPlan(is);
}

std::string encodeStoreGet(const std::string& key, bool wantPlan, bool near) {
  binio::Writer body;
  body.zstr(key);
  body.u8(wantPlan ? 1 : 0);
  body.u8(near ? 1 : 0);
  return binio::finishBlock(kBinStoreGetKind, kBinStoreGetVersion,
                            body.take());
}

StoreGet decodeStoreGet(std::string_view payload) {
  if (binio::isBinary(payload)) {
    // Tolerant across v2/v3: a v2 client predates the near flag (exact-key
    // GETs only).
    std::uint64_t version = 0;
    binio::Reader r =
        binio::openBlockRange(payload, kBinStoreGetKind, /*minVersion=*/2,
                              kBinStoreGetVersion, &version, "decodeStoreGet");
    StoreGet get;
    get.key = r.zstr();
    const std::uint8_t wantPlan = r.u8();
    if (wantPlan > 1) r.fail("bad wantPlan flag");
    get.wantPlan = wantPlan == 1;
    if (version >= 3) {
      const std::uint8_t near = r.u8();
      if (near > 1) r.fail("bad near flag");
      get.near = near == 1;
    }
    r.expectEnd();
    return get;
  }
  std::istringstream is{std::string(payload)};
  return readStoreGet(is);
}

std::string encodeStorePut(const std::string& key, const OptimizedPlan& plan) {
  binio::Writer body;
  body.zstr(key);
  putPlanBody(body, plan);
  return binio::finishBlock(kBinStorePutKind, kBinStorePutVersion,
                            body.take());
}

StorePut decodeStorePut(std::string_view payload) {
  if (binio::isBinary(payload)) {
    // Tolerant across v2/v3: a v2 peer's plan body carries the 16-counter
    // stats vector (no bound-abort phase split).
    std::uint64_t version = 0;
    binio::Reader r =
        binio::openBlockRange(payload, kBinStorePutKind, /*minVersion=*/2,
                              kBinStorePutVersion, &version, "decodeStorePut");
    StorePut put;
    put.key = r.zstr();
    put.plan = getPlanBody(r, version >= 3);
    r.expectEnd();
    return put;
  }
  std::istringstream is{std::string(payload)};
  return readStorePut(is);
}

std::string encodeStoreReply(const OptimizedPlan* plan, double bound) {
  binio::Writer body;
  body.u8(plan != nullptr ? 1 : 0);
  body.f64(bound);
  if (plan != nullptr) putPlanBody(body, *plan);
  return binio::finishBlock(kBinStoreReplyKind, kBinStoreReplyVersion,
                            body.take());
}

StoreReply decodeStoreReply(std::string_view payload) {
  if (binio::isBinary(payload)) {
    // Tolerant across v2/v3, mirroring decodeStorePut.
    std::uint64_t version = 0;
    binio::Reader r = binio::openBlockRange(
        payload, kBinStoreReplyKind, /*minVersion=*/2, kBinStoreReplyVersion,
        &version, "decodeStoreReply");
    StoreReply reply;
    const std::uint8_t found = r.u8();
    if (found > 1) r.fail("bad found flag");
    reply.found = found == 1;
    reply.bound = r.f64();
    if (reply.found) reply.plan = getPlanBody(r, version >= 3);
    r.expectEnd();
    return reply;
  }
  std::istringstream is{std::string(payload)};
  return readStoreReply(is);
}

std::string encodeStoreStats(const StoreStatsWire& stats) {
  binio::Writer body;
  body.u64(stats.entries);
  body.u64(stats.gets);
  body.u64(stats.hits);
  body.u64(stats.boundHits);
  body.u64(stats.puts);
  body.u64(stats.evictions);
  body.u64(stats.bounds);
  body.u64(stats.framesIn);
  body.u64(stats.bytesIn);
  body.u64(stats.framesOut);
  body.u64(stats.bytesOut);
  body.u64(stats.accepted);
  body.u64(stats.refusedOverLimit);
  body.u64(stats.idleClosed);
  body.u64(stats.peakWriteQueueBytes);
  return binio::finishBlock(kBinStoreStatsKind, kBinStoreStatsVersion,
                            body.take());
}

StoreStatsWire decodeStoreStats(std::string_view payload) {
  if (binio::isBinary(payload)) {
    // Tolerant across v2/v3: a v2 host predates the transport ledger, so
    // those counters stay 0 — an upgraded client keeps reading old stores.
    std::uint64_t version = 0;
    binio::Reader r = binio::openBlockRange(
        payload, kBinStoreStatsKind, /*minVersion=*/2,
        kBinStoreStatsVersion, &version, "decodeStoreStats");
    StoreStatsWire stats;
    stats.entries = static_cast<std::size_t>(r.u64());
    stats.gets = static_cast<std::size_t>(r.u64());
    stats.hits = static_cast<std::size_t>(r.u64());
    stats.boundHits = static_cast<std::size_t>(r.u64());
    stats.puts = static_cast<std::size_t>(r.u64());
    stats.evictions = static_cast<std::size_t>(r.u64());
    stats.bounds = static_cast<std::size_t>(r.u64());
    stats.framesIn = static_cast<std::size_t>(r.u64());
    stats.bytesIn = static_cast<std::size_t>(r.u64());
    stats.framesOut = static_cast<std::size_t>(r.u64());
    stats.bytesOut = static_cast<std::size_t>(r.u64());
    if (version >= 3) {
      stats.accepted = static_cast<std::size_t>(r.u64());
      stats.refusedOverLimit = static_cast<std::size_t>(r.u64());
      stats.idleClosed = static_cast<std::size_t>(r.u64());
      stats.peakWriteQueueBytes = static_cast<std::size_t>(r.u64());
    }
    r.expectEnd();
    return stats;
  }
  std::istringstream is{std::string(payload)};
  return readStoreStats(is);
}

ArtifactInfo inspectArtifact(std::istream& is) {
  ArtifactInfo info;
  if (binio::sniffBinary(is)) {
    const auto start = is.tellg();
    const binio::Block block = binio::readBlock(is, "inspectArtifact");
    is.clear();
    const auto end = is.tellg();
    info.binary = true;
    info.version = block.version;
    if (start >= 0 && end >= 0) {
      info.bytes = static_cast<std::uint64_t>(end - start);
    }
    binio::Reader r(block.body, "inspectArtifact");
    switch (block.kind) {
      case kBinScoreCacheKind:
        info.kind = "score-cache";
        info.entries = r.u64();
        break;
      case kBinResultCacheKind:
        info.kind = "result-cache";
        info.entries = r.u64();
        break;
      default:
        throw std::runtime_error(
            std::string("inspectArtifact: unrecognized binary block kind '") +
            block.kind + "'");
    }
    return info;
  }

  is >> std::ws;
  const auto start = is.tellg();
  std::string word;
  if (!(is >> word)) {
    throw std::runtime_error("inspectArtifact: empty or unreadable artifact");
  }
  int version = 0;
  if (!(is >> version)) {
    throw std::runtime_error(
        "inspectArtifact: missing format version after magic '" + word + "'");
  }
  info.version = static_cast<std::uint64_t>(version);
  std::string tag;
  if (word == kScoreCacheMagic) {
    info.kind = "score-cache";
    if (version != kScoreCacheVersion) {
      throw std::runtime_error("inspectArtifact: unsupported score-cache "
                               "version " + std::to_string(version));
    }
    std::size_t n = 0;
    if (!(is >> tag >> n) || tag != "candidatecache") {
      throw std::runtime_error("inspectArtifact: bad score-cache header");
    }
    info.entries = n;
    for (std::size_t k = 0; k < n; ++k) {
      std::string key;
      double score = 0.0;
      if (!(is >> tag >> key >> score) || tag != "entry") {
        failEntry(is, "inspectArtifact", k, n, "bad entry line");
      }
    }
  } else if (word == kResultCacheMagic) {
    info.kind = "result-cache";
    if (version != kResultCacheVersion) {
      throw std::runtime_error("inspectArtifact: unsupported result-cache "
                               "version " + std::to_string(version));
    }
    std::size_t n = 0;
    if (!(is >> tag >> n) || tag != "results") {
      throw std::runtime_error("inspectArtifact: bad result-cache header");
    }
    info.entries = n;
    for (std::size_t k = 0; k < n; ++k) {
      std::string key;
      double value = 0.0;
      double surrogate = 0.0;
      std::string strategy;
      if (!(is >> tag >> key >> value >> surrogate >> strategy) ||
          tag != "result") {
        failEntry(is, "inspectArtifact", k, n, "bad result line");
      }
      try {
        (void)readGraph(is);
        (void)readOperationList(is);
      } catch (const std::runtime_error& e) {
        failEntry(is, "inspectArtifact", k, n, e.what());
      }
    }
  } else if (word == kShardSetMagic) {
    info.kind = "shard-set";
    if (version != kShardSetVersion) {
      throw std::runtime_error("inspectArtifact: unsupported shard-set "
                               "version " + std::to_string(version));
    }
    std::size_t count = 0;
    std::string kind;
    if (!(is >> tag >> count >> kind) || tag != "shards") {
      throw std::runtime_error("inspectArtifact: bad shards line");
    }
    info.entries = count;
    info.shardKind = kind;
  } else {
    throw std::runtime_error("inspectArtifact: unrecognized artifact magic '" +
                             word + "'");
  }
  is.clear();
  const auto end = is.tellg();
  if (start >= 0 && end >= 0) {
    info.bytes = static_cast<std::uint64_t>(end - start);
  }
  return info;
}

std::string toString(const Application& app) {
  std::ostringstream os;
  writeApplication(os, app);
  return os.str();
}

Application applicationFromString(const std::string& text) {
  std::istringstream is(text);
  return readApplication(is);
}

std::string toString(const ExecutionGraph& graph) {
  std::ostringstream os;
  writeGraph(os, graph);
  return os.str();
}

ExecutionGraph graphFromString(const std::string& text) {
  std::istringstream is(text);
  return readGraph(is);
}

std::string toString(const OperationList& ol) {
  std::ostringstream os;
  writeOperationList(os, ol);
  return os.str();
}

OperationList operationListFromString(const std::string& text) {
  std::istringstream is(text);
  return readOperationList(is);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) os_ << ",";
    os_ << cells[i];
  }
  os_ << "\n";
}

}  // namespace fsw
