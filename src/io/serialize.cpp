#include "src/io/serialize.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "src/serve/result_cache.hpp"

namespace fsw {

void writeApplication(std::ostream& os, const Application& app) {
  os << "application " << app.size() << "\n";
  os << std::setprecision(17);
  for (NodeId i = 0; i < app.size(); ++i) {
    const auto& s = app.service(i);
    os << "service " << (s.name.empty() ? "C" + std::to_string(i + 1) : s.name)
       << " " << s.cost << " " << s.selectivity << "\n";
  }
  for (const auto& e : app.precedences()) {
    os << "precedence " << e.from << " " << e.to << "\n";
  }
}

Application readApplication(std::istream& is) {
  std::string tag;
  std::size_t n = 0;
  if (!(is >> tag >> n) || tag != "application") {
    throw std::runtime_error("readApplication: bad header");
  }
  Application app;
  for (std::size_t i = 0; i < n; ++i) {
    std::string name;
    double cost = 0.0;
    double sel = 0.0;
    if (!(is >> tag >> name >> cost >> sel) || tag != "service") {
      throw std::runtime_error("readApplication: bad service line");
    }
    app.addService(cost, sel, name);
  }
  while (is >> tag) {
    if (tag != "precedence") {
      for (auto it = tag.rbegin(); it != tag.rend(); ++it) is.putback(*it);
      break;
    }
    NodeId from = 0;
    NodeId to = 0;
    if (!(is >> from >> to)) {
      throw std::runtime_error("readApplication: bad precedence line");
    }
    app.addPrecedence(from, to);
  }
  return app;
}

void writeGraph(std::ostream& os, const ExecutionGraph& graph) {
  os << "graph " << graph.size() << " " << graph.edgeCount() << "\n";
  for (const auto& e : graph.edges()) {
    os << "edge " << e.from << " " << e.to << "\n";
  }
}

ExecutionGraph readGraph(std::istream& is) {
  std::string tag;
  std::size_t n = 0;
  std::size_t m = 0;
  if (!(is >> tag >> n >> m) || tag != "graph") {
    throw std::runtime_error("readGraph: bad header");
  }
  ExecutionGraph g(n);
  for (std::size_t k = 0; k < m; ++k) {
    NodeId from = 0;
    NodeId to = 0;
    if (!(is >> tag >> from >> to) || tag != "edge") {
      throw std::runtime_error("readGraph: bad edge line");
    }
    g.addEdge(from, to);
  }
  return g;
}

void writeOperationList(std::ostream& os, const OperationList& ol) {
  os << std::setprecision(17);
  os << "oplist " << ol.size() << " " << ol.lambda() << " "
     << ol.comms().size() << "\n";
  for (NodeId i = 0; i < ol.size(); ++i) {
    os << "calc " << i << " " << ol.beginCalc(i) << " " << ol.endCalc(i)
       << "\n";
  }
  for (const auto& c : ol.comms()) {
    const auto enc = [](NodeId v) {
      return v == kWorld ? std::int64_t{-1} : static_cast<std::int64_t>(v);
    };
    os << "comm " << enc(c.from) << " " << enc(c.to) << " " << c.begin << " "
       << c.end << "\n";
  }
}

OperationList readOperationList(std::istream& is) {
  std::string tag;
  std::size_t n = 0;
  double lambda = 0.0;
  std::size_t comms = 0;
  if (!(is >> tag >> n >> lambda >> comms) || tag != "oplist") {
    throw std::runtime_error("readOperationList: bad header");
  }
  OperationList ol(n, lambda);
  for (std::size_t k = 0; k < n; ++k) {
    NodeId i = 0;
    double b = 0.0;
    double e = 0.0;
    if (!(is >> tag >> i >> b >> e) || tag != "calc") {
      throw std::runtime_error("readOperationList: bad calc line");
    }
    ol.setCalc(i, b, e);
  }
  for (std::size_t k = 0; k < comms; ++k) {
    std::int64_t from = 0;
    std::int64_t to = 0;
    double b = 0.0;
    double e = 0.0;
    if (!(is >> tag >> from >> to >> b >> e) || tag != "comm") {
      throw std::runtime_error("readOperationList: bad comm line");
    }
    const auto dec = [](std::int64_t v) {
      return v < 0 ? kWorld : static_cast<NodeId>(v);
    };
    ol.setComm(dec(from), dec(to), b, e);
  }
  return ol;
}

namespace {

/// Checks the `<magic> <version>` line every cache file opens with.
void readCacheHeader(std::istream& is, const char* magic, int version,
                     const char* where) {
  std::string word;
  int got = 0;
  if (!(is >> word) || word != magic) {
    throw std::runtime_error(std::string(where) + ": bad magic '" + word +
                             "' (expected '" + magic + "')");
  }
  if (!(is >> got)) {
    throw std::runtime_error(std::string(where) + ": missing format version");
  }
  if (got != version) {
    throw std::runtime_error(std::string(where) + ": unsupported version " +
                             std::to_string(got) + " (expected " +
                             std::to_string(version) + ")");
  }
}

}  // namespace

void writeCandidateCache(std::ostream& os, const CandidateCache& cache) {
  const auto entries = cache.snapshot();
  os << kScoreCacheMagic << " " << kScoreCacheVersion << "\n";
  os << "candidatecache " << entries.size() << "\n";
  os << std::setprecision(17);
  for (const auto& [key, score] : entries) {
    os << "entry " << key << " " << score << "\n";
  }
}

void readCandidateCache(std::istream& is, CandidateCache& cache) {
  readCacheHeader(is, kScoreCacheMagic, kScoreCacheVersion,
                  "readCandidateCache");
  std::string tag;
  std::size_t n = 0;
  if (!(is >> tag >> n) || tag != "candidatecache") {
    throw std::runtime_error("readCandidateCache: bad header");
  }
  for (std::size_t k = 0; k < n; ++k) {
    std::string key;
    double score = 0.0;
    if (!(is >> tag >> key >> score) || tag != "entry") {
      throw std::runtime_error("readCandidateCache: bad entry line");
    }
    (void)cache.insert(key, score);
  }
}

void writeResultCache(std::ostream& os, const ResultCache& cache,
                      std::size_t budget) {
  const auto entries = cache.snapshot();  // LRU first
  std::vector<const std::pair<std::string, ResultCache::Entry>*> writable;
  writable.reserve(entries.size());
  for (const auto& entry : entries) {
    if (std::isfinite(entry.second->value) &&
        !entry.second->strategy.empty()) {
      writable.push_back(&entry);
    }
  }
  // The on-disk budget keeps the most recently used winners (the tail of
  // the LRU-first snapshot), still written LRU-first.
  const std::size_t keep =
      budget == 0 ? writable.size() : std::min(budget, writable.size());
  const std::size_t start = writable.size() - keep;

  os << kResultCacheMagic << " " << kResultCacheVersion << "\n";
  os << "results " << keep << "\n";
  os << std::setprecision(17);
  for (std::size_t i = start; i < writable.size(); ++i) {
    const auto& [key, plan] = *writable[i];
    os << "result " << key << " " << plan->value << " " << plan->surrogate
       << " " << plan->strategy << "\n";
    writeGraph(os, plan->plan.graph);
    writeOperationList(os, plan->plan.ol);
  }
}

void readResultCache(std::istream& is, ResultCache& cache) {
  readCacheHeader(is, kResultCacheMagic, kResultCacheVersion,
                  "readResultCache");
  std::string tag;
  std::size_t n = 0;
  if (!(is >> tag >> n) || tag != "results") {
    throw std::runtime_error("readResultCache: bad header");
  }
  for (std::size_t k = 0; k < n; ++k) {
    OptimizedPlan plan;
    std::string key;
    if (!(is >> tag >> key >> plan.value >> plan.surrogate >> plan.strategy) ||
        tag != "result") {
      throw std::runtime_error("readResultCache: bad result line");
    }
    plan.plan.graph = readGraph(is);
    plan.plan.ol = readOperationList(is);
    (void)cache.insert(key, plan);
  }
}

std::string toString(const Application& app) {
  std::ostringstream os;
  writeApplication(os, app);
  return os.str();
}

Application applicationFromString(const std::string& text) {
  std::istringstream is(text);
  return readApplication(is);
}

std::string toString(const ExecutionGraph& graph) {
  std::ostringstream os;
  writeGraph(os, graph);
  return os.str();
}

ExecutionGraph graphFromString(const std::string& text) {
  std::istringstream is(text);
  return readGraph(is);
}

std::string toString(const OperationList& ol) {
  std::ostringstream os;
  writeOperationList(os, ol);
  return os.str();
}

OperationList operationListFromString(const std::string& text) {
  std::istringstream is(text);
  return readOperationList(is);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) os_ << ",";
    os_ << cells[i];
  }
  os_ << "\n";
}

}  // namespace fsw
