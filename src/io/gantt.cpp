#include "src/io/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

namespace fsw {

std::string renderGantt(const Application& app, const OperationList& ol,
                        const GanttOptions& opt) {
  const std::size_t n = ol.size();
  const double horizon = std::max(ol.latency(), ol.lambda());
  const std::size_t cols = std::min(
      opt.maxColumns,
      static_cast<std::size_t>(std::ceil(horizon / opt.quantum)) + 1);

  std::vector<std::string> rows(n, std::string(cols, '.'));
  auto paint = [&](NodeId node, double begin, double end, char ch) {
    if (node >= n) return;
    const auto first = static_cast<std::size_t>(
        std::max(0.0, std::floor(begin / opt.quantum)));
    const auto last = static_cast<std::size_t>(
        std::max(0.0, std::ceil(end / opt.quantum)));
    for (std::size_t c = first; c < last && c < cols; ++c) {
      // Computation wins over communication glyphs for readability.
      if (rows[node][c] == '.' || ch == '#') rows[node][c] = ch;
    }
  };

  for (NodeId i = 0; i < n; ++i) {
    paint(i, ol.beginCalc(i), ol.endCalc(i), '#');
  }
  for (const auto& c : ol.comms()) {
    if (!c.isInput()) paint(c.from, c.begin, c.end, '>');
    if (!c.isOutput()) paint(c.to, c.begin, c.end, '<');
  }
  if (opt.showCycle && ol.lambda() > 0.0) {
    for (double t = ol.lambda(); t < horizon; t += ol.lambda()) {
      const auto col = static_cast<std::size_t>(std::round(t / opt.quantum));
      for (auto& row : rows) {
        if (col < cols && row[col] == '.') row[col] = '|';
      }
    }
  }

  std::size_t nameWidth = 2;
  for (NodeId i = 0; i < n; ++i) {
    nameWidth = std::max(nameWidth, app.service(i).name.size());
  }
  std::ostringstream os;
  os << "t = 0 .. " << horizon << " (one column = " << opt.quantum
     << " time units; # calc, > send, < recv)\n";
  for (NodeId i = 0; i < n; ++i) {
    std::string label = app.service(i).name;
    label.resize(nameWidth, ' ');
    os << label << " |" << rows[i] << "\n";
  }
  return os.str();
}

}  // namespace fsw
