// ASCII Gantt rendering of an operation list: one row per server, one
// column per time quantum; computations print as '#', sends as '>',
// receives as '<', idle as '.'. Wide enough schedules are clipped.
#pragma once

#include <string>

#include "src/core/application.hpp"
#include "src/oplist/operation_list.hpp"

namespace fsw {

struct GanttOptions {
  double quantum = 0.5;       ///< time units per character cell
  std::size_t maxColumns = 120;
  bool showCycle = true;      ///< mark each lambda boundary with '|'
};

/// Renders [0, horizon) of the data-set-0 schedule (horizon defaults to the
/// schedule's latency).
[[nodiscard]] std::string renderGantt(const Application& app,
                                      const OperationList& ol,
                                      const GanttOptions& opt = {});

}  // namespace fsw
