#include "src/io/dot.hpp"

#include <sstream>

namespace fsw {
namespace {

std::string label(const Application& app, NodeId i) {
  std::ostringstream os;
  const auto& s = app.service(i);
  os << (s.name.empty() ? "C" + std::to_string(i + 1) : s.name) << "\\nc="
     << s.cost << " s=" << s.selectivity;
  return os.str();
}

}  // namespace

std::string toDot(const Application& app, const ExecutionGraph& graph) {
  std::ostringstream os;
  os << "digraph EG {\n  rankdir=LR;\n  node [shape=box];\n";
  os << "  in [shape=plaintext];\n  out [shape=plaintext];\n";
  for (NodeId i = 0; i < graph.size(); ++i) {
    os << "  n" << i << " [label=\"" << label(app, i) << "\"];\n";
  }
  for (NodeId i = 0; i < graph.size(); ++i) {
    if (graph.isEntry(i)) os << "  in -> n" << i << ";\n";
    for (const NodeId s : graph.successors(i)) {
      os << "  n" << i << " -> n" << s << ";\n";
    }
    if (graph.isExit(i)) os << "  n" << i << " -> out;\n";
  }
  os << "}\n";
  return os.str();
}

std::string precedenceDot(const Application& app) {
  std::ostringstream os;
  os << "digraph G {\n  rankdir=LR;\n  node [shape=box];\n";
  for (NodeId i = 0; i < app.size(); ++i) {
    os << "  n" << i << " [label=\"" << label(app, i) << "\"];\n";
  }
  for (const auto& e : app.precedences()) {
    os << "  n" << e.from << " -> n" << e.to << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace fsw
