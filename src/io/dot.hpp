// Graphviz DOT export of applications and execution graphs (the format the
// paper's figures use conceptually: services as boxes, filtering edges,
// virtual in/out nodes).
#pragma once

#include <string>

#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"

namespace fsw {

/// Execution graph with cost/selectivity labels and virtual in/out nodes.
[[nodiscard]] std::string toDot(const Application& app,
                                const ExecutionGraph& graph);

/// Precedence constraints only.
[[nodiscard]] std::string precedenceDot(const Application& app);

}  // namespace fsw
