// Succinct binary primitives for the v3 wire codec and binary cache
// artifacts (src/io/serialize.hpp): LEB128 varints, zigzag-coded signed
// deltas, length-prefixed strings, and a bit-exact double codec.
//
// Doubles are written as the LEB128 varint of the *byte-reversed* IEEE 754
// bit pattern: clean values (integers, halves, short decimals) have long
// runs of trailing mantissa zeros, which byte reversal turns into leading
// zeros the varint drops — 2.0 encodes in one byte, a full-entropy double
// costs 10 (vs 8 raw). Mixed payloads win large; round trips are bit-exact
// for every value including ±inf, NaN payloads and signed zeros.
//
// Every encoded unit lives inside a length-delimited block:
//
//   offset 0  1 byte   magic 0xFB (never the first byte of any text format)
//   offset 1  1 byte   kind (which codec body follows, see serialize.hpp)
//   offset 2  varint   body format version
//   ...       varint   body length in bytes
//   ...       body
//
// so blocks can be sniffed against the text formats by their first byte,
// embedded back to back in one stream (shard sets), and skipped without
// decoding. Reader enforces canonical LEB128 (overlong encodings are
// malformed, so decode(encode(x)) is the unique encoding), checks every
// declared length against the bytes actually present *before* allocating,
// and reports the byte offset of the first malformed unit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace fsw::binio {

/// First byte of every binary block. All text formats open with an ASCII
/// magic word, so one peeked byte decides the dialect.
inline constexpr unsigned char kMagicByte = 0xFB;

/// Cap on a block's declared body length: a corrupt or hostile length
/// prefix must fail the read, not become a multi-gigabyte allocation.
inline constexpr std::uint64_t kMaxBlockBody = 1ull << 30;

/// Appends primitive encodings to an owned buffer.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  /// Unsigned LEB128 (the canonical, shortest encoding).
  void u64(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<char>(0x80 | (v & 0x7f)));
      v >>= 7;
    }
    buf_.push_back(static_cast<char>(v));
  }

  /// Zigzag-mapped LEB128: small magnitudes of either sign stay short.
  void i64(std::int64_t v) {
    u64((static_cast<std::uint64_t>(v) << 1) ^
        static_cast<std::uint64_t>(v >> 63));
  }

  /// Bit-exact double: LEB128 of the byte-reversed IEEE 754 pattern.
  void f64(double v);

  /// Length-prefixed bytes (no reserved tokens — any value round-trips).
  void str(std::string_view s) {
    u64(s.size());
    buf_.append(s.data(), s.size());
  }

  /// LZ-compressed string: the varint decompressed length, then a token
  /// stream of literal runs and back-references (varint length/distance;
  /// overlapping references allowed, so runs collapse too). Canonical
  /// cache keys repeat their per-service tokens hundreds of times and
  /// shrink 10-30x; an incompressible string costs one extra varint.
  /// Greedy matching over a last-occurrence index is deterministic, so
  /// re-encode is byte-identical.
  void zstr(std::string_view s);

  void raw(std::string_view bytes) { buf_.append(bytes.data(), bytes.size()); }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked decoding over a borrowed buffer. Every malformed input
/// (truncated varint, overlong LEB128, a declared length exceeding the
/// bytes present) throws std::runtime_error naming `where` and the byte
/// offset — never over-reads, never allocates for a length it cannot
/// satisfy.
class Reader {
 public:
  Reader(std::string_view buf, const char* where)
      : buf_(buf), where_(where) {}

  std::uint8_t u8() {
    need(1, "byte");
    return static_cast<std::uint8_t>(buf_[pos_++]);
  }

  std::uint64_t u64();

  std::int64_t i64() {
    const std::uint64_t z = u64();
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  double f64();

  /// The string's bytes, zero-copy (a view into the borrowed buffer).
  std::string_view str();

  /// Decompresses a Writer::zstr token stream (owned — the bytes do not
  /// exist contiguously in the buffer). Every malformed stream — a
  /// literal or match overrunning the declared length, a reference
  /// outside the decoded prefix, a declared length beyond kMaxBlockBody —
  /// throws before the overrun.
  [[nodiscard]] std::string zstr();

  [[nodiscard]] std::size_t offset() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return buf_.size() - pos_;
  }
  [[nodiscard]] bool atEnd() const noexcept { return pos_ == buf_.size(); }

  /// Throws unless every byte was consumed (a body longer than its codec
  /// decodes is as malformed as one shorter).
  void expectEnd() const;

  [[noreturn]] void fail(const std::string& what) const;

 private:
  void need(std::size_t n, const char* what) const {
    if (remaining() < n) {
      fail(std::string("truncated ") + what + " (need " + std::to_string(n) +
           " bytes, have " + std::to_string(remaining()) + ")");
    }
  }

  std::string_view buf_;
  std::size_t pos_ = 0;
  const char* where_;
};

/// True when `payload` opens with the binary magic byte — the dialect
/// sniff for wire payloads held fully in memory.
[[nodiscard]] inline bool isBinary(std::string_view payload) {
  return !payload.empty() &&
         static_cast<unsigned char>(payload[0]) == kMagicByte;
}

/// True when the next non-whitespace byte of `is` is the binary magic
/// byte (the stream is left positioned at it) — the dialect sniff for
/// artifacts read from a stream.
[[nodiscard]] bool sniffBinary(std::istream& is);

/// Wraps a finished body in the block container (magic, kind, version,
/// length, body).
[[nodiscard]] std::string finishBlock(char kind, std::uint64_t version,
                                      std::string body);

/// One block pulled off a stream (shard sets concatenate blocks, so the
/// read consumes exactly the block's bytes and leaves the stream at the
/// next one). Throws std::runtime_error on a bad magic/kind byte, a body
/// length beyond kMaxBlockBody, or truncation.
struct Block {
  char kind = 0;
  std::uint64_t version = 0;
  std::string body;
};
[[nodiscard]] Block readBlock(std::istream& is, const char* where);

/// Opens an in-memory block, verifying magic, kind and version and that
/// the declared body length is exactly the remaining payload (wire
/// payloads are whole frames — trailing bytes are malformed). The
/// returned Reader is positioned at the body; `blob` must outlive it.
[[nodiscard]] Reader openBlock(std::string_view blob, char kind,
                               std::uint64_t version, const char* where);

/// openBlock for codecs whose current writer appends fields to older
/// bodies: accepts any version in [minVersion, maxVersion] and reports the
/// one found through `gotVersionOut` (may be null) so the caller can stop
/// reading where that version's body ends. Same checks otherwise.
[[nodiscard]] Reader openBlockRange(std::string_view blob, char kind,
                                    std::uint64_t minVersion,
                                    std::uint64_t maxVersion,
                                    std::uint64_t* gotVersionOut,
                                    const char* where);

}  // namespace fsw::binio
