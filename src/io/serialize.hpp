// (De)serialization of applications, execution graphs, operation lists,
// cache artifacts and the serving wire payloads, in two dialects:
//
//   * the original plain-text formats (whitespace-separated tokens,
//     full-precision double tokens) — kept as READERS for migration and as
//     explicitly-named writeXxxText writers for tooling and size
//     comparisons; their formats are frozen at their current versions;
//   * the succinct binary formats (wire codec v3 / binary artifacts),
//     built on src/io/binio.hpp: LEB128 varints, zigzag deltas for the
//     structured sequences (graph adjacency, precedence pairs, operation
//     intervals), front-coded cache keys and a bit-exact double codec.
//     These are what every writer emits and every transport sends today.
//
// Every reader sniffs the dialect by the first byte (binary blocks open
// with 0xFB, text formats with an ASCII magic word), so old artifacts and
// old peers keep working: hosts answer in the dialect the request arrived
// in. decode(encode(x)) is byte-identical in both dialects.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"
#include "src/io/binio.hpp"
#include "src/oplist/operation_list.hpp"
#include "src/opt/candidate.hpp"
#include "src/opt/optimizer.hpp"

namespace fsw {

/// Format:
///   application <n>
///   service <name> <cost> <selectivity>      (n lines)
///   precedence <from> <to>                   (0+ lines)
void writeApplication(std::ostream& os, const Application& app);
[[nodiscard]] Application readApplication(std::istream& is);

/// Format:
///   graph <n> <edges>
///   edge <from> <to>
void writeGraph(std::ostream& os, const ExecutionGraph& graph);
[[nodiscard]] ExecutionGraph readGraph(std::istream& is);

/// Format:
///   oplist <n> <lambda> <comms>
///   calc <i> <begin> <end>                    (n lines)
///   comm <from> <to> <begin> <end>            (comms lines; -1 = world)
void writeOperationList(std::ostream& os, const OperationList& ol);
[[nodiscard]] OperationList readOperationList(std::istream& is);

/// On-disk cache versioning. Every cache file opens with a magic word and
/// a format version; readers reject a wrong magic or version with a clean
/// std::runtime_error instead of silently misparsing (the headerless PR 2
/// score-cache dumps fail the magic check). Bump a version whenever its
/// format or the meaning of its keys changes.
///
/// The TEXT formats are frozen at the versions below; the binary formats
/// continue the same version line (score cache v3, result cache v2, …)
/// under binio block kinds, so "format version" stays one number per
/// artifact kind regardless of dialect.
inline constexpr const char* kScoreCacheMagic = "fswscorecache";
inline constexpr int kScoreCacheVersion = 2;  ///< 1 = headerless PR 2 format
inline constexpr const char* kResultCacheMagic = "fswresultcache";
inline constexpr int kResultCacheVersion = 1;

/// ---- binary block registry (wire codec v3 / binary artifacts) -------------
///
/// Every binary unit is a binio block `0xFB <kind> <version> <len> <body>`;
/// the kind byte plays the role of the text magic word. Versions continue
/// each format's existing line (e.g. the score cache: v1 headerless text,
/// v2 text, v3 binary), so one number names a format unambiguously across
/// dialects.
inline constexpr char kBinScoreCacheKind = 'C';
inline constexpr int kBinScoreCacheVersion = 3;
inline constexpr char kBinResultCacheKind = 'F';
inline constexpr int kBinResultCacheVersion = 2;
inline constexpr char kBinPlanRequestKind = 'Q';
inline constexpr int kBinPlanRequestVersion = 2;
/// v3: binary, and the stats vector grew the store byte counters
/// (storeBytesSent, storeBytesReceived) — 16 counters total.
/// v4: the stats vector grew the bound-abort phase split
/// (seedBoundAborts, repairBoundAborts) — 18 counters total. Decoders
/// accept v3 blocks (the split counters read as 0; boundAborts stays the
/// total in its original slot).
inline constexpr char kBinPlanResponseKind = 'R';
inline constexpr int kBinPlanResponseVersion = 4;
/// v3: appended the `near` flag — when set, the key is a structural prefix
/// and the host answers with the most recent winner sharing that prefix
/// (bound omitted: a near plan is a warm-start hint the asker must
/// re-validate, never a served result). Decoders accept v2 (near = false).
inline constexpr char kBinStoreGetKind = 'G';
inline constexpr int kBinStoreGetVersion = 3;
/// Put/Reply v3: the embedded plan body carries the v4 stats vector (see
/// the plan-response note). Decoders accept v2 blocks.
inline constexpr char kBinStorePutKind = 'P';
inline constexpr int kBinStorePutVersion = 3;
inline constexpr char kBinStoreReplyKind = 'Y';
inline constexpr int kBinStoreReplyVersion = 3;
/// v2: binary, and the snapshot grew the host's frame/byte IO counters.
/// v3: the transport ledger — accepted / refused-over-limit / idle-closed
/// connections and the peak write-queue depth (PR 8's epoll reactor).
/// Decoders accept v2 blocks (the new counters read as 0).
inline constexpr char kBinStoreStatsKind = 'S';
inline constexpr int kBinStoreStatsVersion = 3;
/// Workload trace (src/workload/trace.hpp): timestamped arrival/mutation
/// events for the dynamic scenario engine, recordable and replayable
/// byte-exactly. Binary-only — the format postdates the text dialect.
inline constexpr char kBinTraceKind = 'T';
inline constexpr int kBinTraceVersion = 1;

/// The shared binary application body: service (name, cost, selectivity)
/// records plus delta-coded precedence pairs — the encoding plan-request
/// blocks embed, exposed for other codecs that carry applications (the
/// workload trace's arrival events). getApplication throws via Reader on
/// malformed bodies (counts beyond the bytes present, out-of-range or
/// cyclic precedences).
void putApplication(binio::Writer& w, const Application& app);
[[nodiscard]] Application getApplication(binio::Reader& r);

/// Binary score-cache artifact (v3, kind 'C'): one block whose body is the
/// entry count followed by (front-coded key, varint-double score) pairs,
/// LRU first — consecutive keys share long signature prefixes, so each is
/// stored as (shared-prefix-len, suffix). The cross-run memoization seam:
/// PlanEngine::saveCache / loadCache wrap these.
void writeCandidateCache(std::ostream& os, const CandidateCache& cache);
/// The frozen v2 text format (kept for migration tests and size
/// comparisons):
///   fswscorecache 2
///   candidatecache <entries>
///   entry <key> <score>                       (entries lines, LRU first)
void writeCandidateCacheText(std::ostream& os, const CandidateCache& cache);
/// Inserts the dump's entries into `cache` (on top of current contents,
/// subject to its capacity bound). Sniffs the dialect: reads the v3 binary
/// block or the frozen v2 text format. Throws std::runtime_error on a bad
/// magic, a version mismatch, or malformed entries — naming the offending
/// entry and byte offset.
void readCandidateCache(std::istream& is, CandidateCache& cache);

class ResultCache;

/// Binary result-cache artifact (v2, kind 'F'): one block whose body is
/// the entry count followed by (front-coded key, plan body) records, LRU
/// first — each plan body delta-codes its graph adjacency and operation
/// intervals (see the codec notes at the top of this header).
/// `budget` is the on-disk entry budget (0 = unbounded): only the most
/// recently used `budget` winners are written, still LRU-first, so the
/// artifact stays sequential and size-bounded while a round trip
/// preserves the eviction order of what it keeps. Degenerate entries — a
/// non-finite value or empty strategy, i.e. a solve that found no
/// candidate — are skipped in BOTH dialects: they are cheap to recompute
/// and carry no reusable winner.
void writeResultCache(std::ostream& os, const ResultCache& cache,
                      std::size_t budget = 0);
/// The frozen v1 text format (kept for migration tests and size
/// comparisons):
///   fswresultcache 1
///   results <entries>
///   result <key> <value> <surrogate> <strategy>   (then the winner's
///   graph/oplist blocks via writeGraph / writeOperationList; LRU first)
void writeResultCacheText(std::ostream& os, const ResultCache& cache,
                          std::size_t budget = 0);
/// Inserts the dump's winners into `cache` (on top of current contents,
/// subject to its capacity bound). Sniffs the dialect: reads the v2 binary
/// block or the frozen v1 text format. Throws std::runtime_error on a bad
/// magic, a version mismatch, or malformed entries — naming the offending
/// entry and byte offset.
void readResultCache(std::istream& is, ResultCache& cache);

/// ---- sharded cache container ----------------------------------------------
///
/// The on-disk shape of a ShardedPlanEngine's per-shard persistence: a
/// versioned container header naming the shard count and payload kind,
/// followed by that many ordinary per-shard dumps (writeCandidateCache /
/// writeResultCache blocks). Keeping the payloads in the existing formats
/// means a shard set saved by an N-shard engine can be merged into any
/// other shard count — the loader re-routes entries, not bytes.
inline constexpr const char* kShardSetMagic = "fswshardset";
inline constexpr int kShardSetVersion = 1;

/// Format: `fswshardset 1` then `shards <count> <kind>`; `kind` is a
/// whitespace-free payload tag ("score" or "result" today).
void writeShardSetHeader(std::ostream& os, std::size_t shards,
                         const std::string& kind);
/// Reads and validates the container header, returning (count, kind).
/// Throws std::runtime_error on a bad magic, version or header line.
[[nodiscard]] std::pair<std::size_t, std::string> readShardSetHeader(
    std::istream& is);

/// ---- wire codec (cross-process serving) -----------------------------------
///
/// The byte-exact encoding of the two values that cross process boundaries
/// in ROADMAP's distributed fan-out: a PlanRequest travelling to a remote
/// PlanServer, and the OptimizedPlan travelling back. Same magic/version
/// discipline as the cache formats — a malformed, truncated or
/// version-mismatched payload is a clean std::runtime_error, never a
/// misparse. Byte-exact means encode(decode(encode(x))) == encode(x):
/// doubles are written at full precision (with explicit inf/-inf/nan
/// tokens, which plain stream extraction would reject), so a decoded
/// request computes the *identical* PlanEngine::requestKey on the far
/// side — the property the shared cross-process cache key space rests on.
///
/// Pointer-valued knobs never cross the wire: threads/pool are execution
/// placement (they change wall time, never winners — the host solves with
/// its own engine placement), and the portfolio travels as its *name*
/// ("-" reserved for the default/built-in portfolio; readers get the name
/// back and resolve it against their own process's registrations). An
/// unnamed request-level portfolio is process-local by contract, so
/// writePlanRequest rejects it with std::invalid_argument.
inline constexpr const char* kPlanRequestMagic = "fswplanreq";
inline constexpr int kPlanRequestVersion = 1;
inline constexpr const char* kPlanResponseMagic = "fswplanresp";
/// v2: the stats line grew the memory-discipline counters (evalProbes,
/// scratchHeapAllocs, arenaBytesHighWater) — 14 counters total.
inline constexpr int kPlanResponseVersion = 2;

/// A PlanRequest decoded from the wire. `request.options.registry` is left
/// null — `portfolio` carries the portfolio name ("-" = default) and the
/// transport layer resolves it against locally registered portfolios.
struct WirePlanRequest {
  PlanRequest request;
  std::string portfolio = "-";
  int priority = 0;
};

/// Frozen v1 text format:
///   fswplanreq 1
///   request <priority> <model> <objective> <portfolio>
///   options <exactForestMaxN> <orchestrateTop>
///   heuristics <restarts> <iterations> <initialTemperature> <seed>
///   order <exactCap> <lsIters> <lsRestarts> <seed> <upperBound>
///   outorder <repairIters> <restarts> <bisectSteps> <seed>
///   seedorder <exactCap> <lsIters> <lsRestarts> <seed> <upperBound>
///   (application block via writeApplication)
void writePlanRequest(std::ostream& os, const PlanRequest& request,
                      int priority = 0);
[[nodiscard]] WirePlanRequest readPlanRequest(std::istream& is);

/// Frozen v2 text format:
///   fswplanresp 2
///   plan <value> <surrogate> <strategy>      ("-" = empty strategy)
///   stats <14 EngineStats counters, declaration order>
///   (graph + oplist blocks via writeGraph / writeOperationList)
/// Stats cross the wire so a remote client observes the same counters a
/// local caller would (e.g. resultCacheHits = 1 on a warm repeat). The
/// text stats line predates the store byte counters and the bound-abort
/// phase split and stays at 14 counters; readers zero the newer fields.
void writeOptimizedPlan(std::ostream& os, const OptimizedPlan& plan);
[[nodiscard]] OptimizedPlan readOptimizedPlan(std::istream& is);

/// ---- wire codec v3 (binary payloads + dialect-sniffing decoders) ----------
///
/// encodeXxx produces the binary block payload the transports send today;
/// decodeXxx sniffs the payload's first byte and accepts EITHER dialect
/// (binary block or the frozen text format), so hosts interoperate with
/// text-speaking peers and can answer in the dialect a request arrived in
/// (binio::isBinary on the request payload names it). Both directions are
/// byte-exact: decode(encode(x)) re-encodes to the identical byte string.
[[nodiscard]] std::string encodePlanRequest(const PlanRequest& request,
                                            int priority = 0);
[[nodiscard]] WirePlanRequest decodePlanRequest(std::string_view payload);
[[nodiscard]] std::string encodeOptimizedPlan(const OptimizedPlan& plan);
[[nodiscard]] OptimizedPlan decodeOptimizedPlan(std::string_view payload);

/// ---- result-store wire ops (cross-host shared result store) ---------------
///
/// The payloads of the result-store service (src/serve/result_store.*):
/// GET/PUT/STATS verbs riding the same FSWF frame protocol as plan
/// serving, with the same magic/version discipline per payload. Keys are
/// the engine's whitespace-free canonical request keys
/// (PlanEngine::requestKey) — the portable cross-process key space —  so a
/// winner PUT by one host is the byte-exact winner every other host GETs.
inline constexpr const char* kStoreGetMagic = "fswstoreget";
inline constexpr int kStoreGetVersion = 1;
inline constexpr const char* kStorePutMagic = "fswstoreput";
inline constexpr int kStorePutVersion = 1;
inline constexpr const char* kStoreReplyMagic = "fswstorereply";
inline constexpr int kStoreReplyVersion = 1;
inline constexpr const char* kStoreStatsMagic = "fswstorestats";
inline constexpr int kStoreStatsVersion = 1;

/// Frozen v1 text format: `fswstoreget 1` then `get <key> <wantPlan 0|1>`.
/// `wantPlan 0` asks for the incumbent bound only — the reply skips the
/// stored winner even on a hit, so an engine that re-solves by policy
/// (full-result caching off) does not download plans it would discard.
struct StoreGet {
  std::string key;
  bool wantPlan = true;
  /// Binary v3 only: `key` is a structural prefix (BoundBoard's
  /// structuralPrefixOfKey) and the host replies with the most recent
  /// winner whose key shares it — a warm-start hint, sent without a bound.
  /// The frozen text format has no near field (text readers see false).
  bool near = false;
};
void writeStoreGet(std::ostream& os, const std::string& key,
                   bool wantPlan = true);
[[nodiscard]] StoreGet readStoreGet(std::istream& is);

/// Frozen v1 text format: `fswstoreput 1`, `put <key>`, then the winner
/// via writeOptimizedPlan. The plan's value doubles as the incumbent bound
/// the store forwards to later same-key GETs.
void writeStorePut(std::ostream& os, const std::string& key,
                   const OptimizedPlan& plan);
struct StorePut {
  std::string key;
  OptimizedPlan plan;
};
[[nodiscard]] StorePut readStorePut(std::istream& is);

/// The reply to GET and PUT. `found` says whether a stored winner follows;
/// `bound` is the store's incumbent bound for the key (+inf = none posted)
/// — it travels even on a plan miss, so an evicted winner still tightens
/// the asker's abort thresholds. A PUT's ack simply echoes the published
/// value (frame sync for pipelined putters).
/// Frozen v1 text format: `fswstorereply 1`,
/// `reply <found 0|1> <bound token>`, then the winner via
/// writeOptimizedPlan when found.
struct StoreReply {
  bool found = false;
  double bound = 0.0;  ///< +inf when the store has no bound for the key
  OptimizedPlan plan;  ///< meaningful only when `found`
};
void writeStoreReply(std::ostream& os, const OptimizedPlan* plan,
                     double bound);
[[nodiscard]] StoreReply readStoreReply(std::istream& is);

/// The store's counters snapshot (the STATS verb).
/// Frozen v1 text format: `fswstorestats 1` then `storestats <7 counters>`
/// — the text line predates the IO counters below and stays at 7; text
/// readers zero the rest.
struct StoreStatsWire {
  std::size_t entries = 0;      ///< winners currently stored
  std::size_t gets = 0;         ///< GET ops served
  std::size_t hits = 0;         ///< GETs that returned a stored winner
  std::size_t boundHits = 0;    ///< GETs that returned a finite bound
  std::size_t puts = 0;         ///< PUT ops applied
  std::size_t evictions = 0;    ///< winners dropped at the capacity bound
  std::size_t bounds = 0;       ///< bounds currently posted
  /// Host-side FSWF frame traffic (headers included), all connections
  /// combined. Binary-only fields (wire v2): text snapshots report 0.
  std::size_t framesIn = 0;
  std::size_t bytesIn = 0;
  std::size_t framesOut = 0;
  std::size_t bytesOut = 0;
  /// Transport ledger (wire v3, binary-only): connection admission and
  /// backpressure counters from frameio::TransportTotals. v2 blocks and
  /// text snapshots report 0.
  std::size_t accepted = 0;            ///< connections accepted
  std::size_t refusedOverLimit = 0;    ///< connections refused at the gate
  std::size_t idleClosed = 0;          ///< connections reaped by idle timer
  std::size_t peakWriteQueueBytes = 0; ///< deepest per-conn write queue
};
void writeStoreStats(std::ostream& os, const StoreStatsWire& stats);
[[nodiscard]] StoreStatsWire readStoreStats(std::istream& is);

/// Binary store verbs (wire codec v3) — same sniff-both-dialects contract
/// as decodePlanRequest/decodeOptimizedPlan above.
[[nodiscard]] std::string encodeStoreGet(const std::string& key,
                                         bool wantPlan = true,
                                         bool near = false);
[[nodiscard]] StoreGet decodeStoreGet(std::string_view payload);
[[nodiscard]] std::string encodeStorePut(const std::string& key,
                                         const OptimizedPlan& plan);
[[nodiscard]] StorePut decodeStorePut(std::string_view payload);
[[nodiscard]] std::string encodeStoreReply(const OptimizedPlan* plan,
                                           double bound);
[[nodiscard]] StoreReply decodeStoreReply(std::string_view payload);
[[nodiscard]] std::string encodeStoreStats(const StoreStatsWire& stats);
[[nodiscard]] StoreStatsWire decodeStoreStats(std::string_view payload);

/// ---- artifact inspection (tools/fsw_artifact) ------------------------------
///
/// A cheap structural summary of one artifact unit at the stream's current
/// position: which format it is, which dialect, how many entries it
/// declares and how many encoded bytes it occupies. Recognizes score
/// caches, result caches and shard-set containers in both dialects
/// (binary bodies are counted without being fully decoded). For a shard
/// set, `entries` is the shard count — call again per payload block.
struct ArtifactInfo {
  std::string kind;          ///< "score-cache", "result-cache", "shard-set"
  bool binary = false;       ///< binio block vs text
  std::uint64_t version = 0;
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;   ///< encoded size of this unit, headers included
  std::string shardKind;     ///< shard sets only: the payload tag
};
/// Throws std::runtime_error when the stream holds neither a recognized
/// binary block nor a recognized text magic word.
[[nodiscard]] ArtifactInfo inspectArtifact(std::istream& is);

/// Round-trip helpers via strings.
[[nodiscard]] std::string toString(const Application& app);
[[nodiscard]] Application applicationFromString(const std::string& text);
[[nodiscard]] std::string toString(const ExecutionGraph& graph);
[[nodiscard]] ExecutionGraph graphFromString(const std::string& text);
[[nodiscard]] std::string toString(const OperationList& ol);
[[nodiscard]] OperationList operationListFromString(const std::string& text);

/// Minimal CSV row writer (quotes nothing; callers pass clean cells).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}
  void row(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
};

}  // namespace fsw
