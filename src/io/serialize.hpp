// Plain-text (de)serialization of applications, execution graphs and
// operation lists — a stable on-disk format for reproducing bench inputs —
// plus a minimal CSV writer for the harness outputs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"
#include "src/oplist/operation_list.hpp"
#include "src/opt/candidate.hpp"

namespace fsw {

/// Format:
///   application <n>
///   service <name> <cost> <selectivity>      (n lines)
///   precedence <from> <to>                   (0+ lines)
void writeApplication(std::ostream& os, const Application& app);
[[nodiscard]] Application readApplication(std::istream& is);

/// Format:
///   graph <n> <edges>
///   edge <from> <to>
void writeGraph(std::ostream& os, const ExecutionGraph& graph);
[[nodiscard]] ExecutionGraph readGraph(std::istream& is);

/// Format:
///   oplist <n> <lambda> <comms>
///   calc <i> <begin> <end>                    (n lines)
///   comm <from> <to> <begin> <end>            (comms lines; -1 = world)
void writeOperationList(std::ostream& os, const OperationList& ol);
[[nodiscard]] OperationList readOperationList(std::istream& is);

/// On-disk cache versioning. Every cache file opens with a magic word and
/// a format version; readers reject a wrong magic or version with a clean
/// std::runtime_error instead of silently misparsing (the headerless PR 2
/// score-cache dumps fail the magic check). Bump a version whenever its
/// format or the meaning of its keys changes.
inline constexpr const char* kScoreCacheMagic = "fswscorecache";
inline constexpr int kScoreCacheVersion = 2;  ///< 1 = headerless PR 2 format
inline constexpr const char* kResultCacheMagic = "fswresultcache";
inline constexpr int kResultCacheVersion = 1;

/// Format:
///   fswscorecache 2
///   candidatecache <entries>
///   entry <key> <score>                       (entries lines, LRU first)
/// Keys are the engine's whitespace-free signature strings, scores are
/// written at full precision, and the least-recently-used entry comes
/// first so a round trip preserves the eviction order. The cross-run
/// memoization seam: PlanEngine::saveCache / loadCache wrap these.
void writeCandidateCache(std::ostream& os, const CandidateCache& cache);
/// Inserts the dump's entries into `cache` (on top of current contents,
/// subject to its capacity bound). Throws std::runtime_error on a bad
/// magic, a version mismatch, or malformed entries.
void readCandidateCache(std::istream& is, CandidateCache& cache);

class ResultCache;

/// Format:
///   fswresultcache 1
///   results <entries>
///   result <key> <value> <surrogate> <strategy>   (then the winner's
///   graph/oplist blocks via writeGraph / writeOperationList; LRU first)
/// `budget` is the on-disk entry budget (0 = unbounded): only the most
/// recently used `budget` winners are written, still LRU-first, so the
/// artifact stays sequential and size-bounded while a round trip
/// preserves the eviction order of what it keeps. Degenerate entries — a
/// non-finite value or empty strategy, i.e. a solve that found no
/// candidate — are skipped: they are cheap to recompute and their fields
/// would not tokenize.
void writeResultCache(std::ostream& os, const ResultCache& cache,
                      std::size_t budget = 0);
/// Inserts the dump's winners into `cache` (on top of current contents,
/// subject to its capacity bound). Throws std::runtime_error on a bad
/// magic, a version mismatch, or malformed entries.
void readResultCache(std::istream& is, ResultCache& cache);

/// Round-trip helpers via strings.
[[nodiscard]] std::string toString(const Application& app);
[[nodiscard]] Application applicationFromString(const std::string& text);
[[nodiscard]] std::string toString(const ExecutionGraph& graph);
[[nodiscard]] ExecutionGraph graphFromString(const std::string& text);
[[nodiscard]] std::string toString(const OperationList& ol);
[[nodiscard]] OperationList operationListFromString(const std::string& text);

/// Minimal CSV row writer (quotes nothing; callers pass clean cells).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}
  void row(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
};

}  // namespace fsw
