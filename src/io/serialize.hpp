// Plain-text (de)serialization of applications, execution graphs and
// operation lists — a stable on-disk format for reproducing bench inputs —
// plus a minimal CSV writer for the harness outputs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"
#include "src/oplist/operation_list.hpp"
#include "src/opt/candidate.hpp"

namespace fsw {

/// Format:
///   application <n>
///   service <name> <cost> <selectivity>      (n lines)
///   precedence <from> <to>                   (0+ lines)
void writeApplication(std::ostream& os, const Application& app);
[[nodiscard]] Application readApplication(std::istream& is);

/// Format:
///   graph <n> <edges>
///   edge <from> <to>
void writeGraph(std::ostream& os, const ExecutionGraph& graph);
[[nodiscard]] ExecutionGraph readGraph(std::istream& is);

/// Format:
///   oplist <n> <lambda> <comms>
///   calc <i> <begin> <end>                    (n lines)
///   comm <from> <to> <begin> <end>            (comms lines; -1 = world)
void writeOperationList(std::ostream& os, const OperationList& ol);
[[nodiscard]] OperationList readOperationList(std::istream& is);

/// Format:
///   candidatecache <entries>
///   entry <key> <score>                       (entries lines, LRU first)
/// Keys are the engine's whitespace-free signature strings, scores are
/// written at full precision, and the least-recently-used entry comes
/// first so a round trip preserves the eviction order. The cross-run
/// memoization seam: PlanEngine::saveCache / loadCache wrap these.
void writeCandidateCache(std::ostream& os, const CandidateCache& cache);
/// Inserts the dump's entries into `cache` (on top of current contents,
/// subject to its capacity bound). Throws std::runtime_error on bad input.
void readCandidateCache(std::istream& is, CandidateCache& cache);

/// Round-trip helpers via strings.
[[nodiscard]] std::string toString(const Application& app);
[[nodiscard]] Application applicationFromString(const std::string& text);
[[nodiscard]] std::string toString(const ExecutionGraph& graph);
[[nodiscard]] ExecutionGraph graphFromString(const std::string& text);
[[nodiscard]] std::string toString(const OperationList& ol);
[[nodiscard]] OperationList operationListFromString(const std::string& text);

/// Minimal CSV row writer (quotes nothing; callers pass clean cells).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}
  void row(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
};

}  // namespace fsw
