// Plain-text (de)serialization of applications, execution graphs and
// operation lists — a stable on-disk format for reproducing bench inputs —
// plus a minimal CSV writer for the harness outputs.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"
#include "src/oplist/operation_list.hpp"
#include "src/opt/candidate.hpp"
#include "src/opt/optimizer.hpp"

namespace fsw {

/// Format:
///   application <n>
///   service <name> <cost> <selectivity>      (n lines)
///   precedence <from> <to>                   (0+ lines)
void writeApplication(std::ostream& os, const Application& app);
[[nodiscard]] Application readApplication(std::istream& is);

/// Format:
///   graph <n> <edges>
///   edge <from> <to>
void writeGraph(std::ostream& os, const ExecutionGraph& graph);
[[nodiscard]] ExecutionGraph readGraph(std::istream& is);

/// Format:
///   oplist <n> <lambda> <comms>
///   calc <i> <begin> <end>                    (n lines)
///   comm <from> <to> <begin> <end>            (comms lines; -1 = world)
void writeOperationList(std::ostream& os, const OperationList& ol);
[[nodiscard]] OperationList readOperationList(std::istream& is);

/// On-disk cache versioning. Every cache file opens with a magic word and
/// a format version; readers reject a wrong magic or version with a clean
/// std::runtime_error instead of silently misparsing (the headerless PR 2
/// score-cache dumps fail the magic check). Bump a version whenever its
/// format or the meaning of its keys changes.
inline constexpr const char* kScoreCacheMagic = "fswscorecache";
inline constexpr int kScoreCacheVersion = 2;  ///< 1 = headerless PR 2 format
inline constexpr const char* kResultCacheMagic = "fswresultcache";
inline constexpr int kResultCacheVersion = 1;

/// Format:
///   fswscorecache 2
///   candidatecache <entries>
///   entry <key> <score>                       (entries lines, LRU first)
/// Keys are the engine's whitespace-free signature strings, scores are
/// written at full precision, and the least-recently-used entry comes
/// first so a round trip preserves the eviction order. The cross-run
/// memoization seam: PlanEngine::saveCache / loadCache wrap these.
void writeCandidateCache(std::ostream& os, const CandidateCache& cache);
/// Inserts the dump's entries into `cache` (on top of current contents,
/// subject to its capacity bound). Throws std::runtime_error on a bad
/// magic, a version mismatch, or malformed entries.
void readCandidateCache(std::istream& is, CandidateCache& cache);

class ResultCache;

/// Format:
///   fswresultcache 1
///   results <entries>
///   result <key> <value> <surrogate> <strategy>   (then the winner's
///   graph/oplist blocks via writeGraph / writeOperationList; LRU first)
/// `budget` is the on-disk entry budget (0 = unbounded): only the most
/// recently used `budget` winners are written, still LRU-first, so the
/// artifact stays sequential and size-bounded while a round trip
/// preserves the eviction order of what it keeps. Degenerate entries — a
/// non-finite value or empty strategy, i.e. a solve that found no
/// candidate — are skipped: they are cheap to recompute and their fields
/// would not tokenize.
void writeResultCache(std::ostream& os, const ResultCache& cache,
                      std::size_t budget = 0);
/// Inserts the dump's winners into `cache` (on top of current contents,
/// subject to its capacity bound). Throws std::runtime_error on a bad
/// magic, a version mismatch, or malformed entries.
void readResultCache(std::istream& is, ResultCache& cache);

/// ---- sharded cache container ----------------------------------------------
///
/// The on-disk shape of a ShardedPlanEngine's per-shard persistence: a
/// versioned container header naming the shard count and payload kind,
/// followed by that many ordinary per-shard dumps (writeCandidateCache /
/// writeResultCache blocks). Keeping the payloads in the existing formats
/// means a shard set saved by an N-shard engine can be merged into any
/// other shard count — the loader re-routes entries, not bytes.
inline constexpr const char* kShardSetMagic = "fswshardset";
inline constexpr int kShardSetVersion = 1;

/// Format: `fswshardset 1` then `shards <count> <kind>`; `kind` is a
/// whitespace-free payload tag ("score" or "result" today).
void writeShardSetHeader(std::ostream& os, std::size_t shards,
                         const std::string& kind);
/// Reads and validates the container header, returning (count, kind).
/// Throws std::runtime_error on a bad magic, version or header line.
[[nodiscard]] std::pair<std::size_t, std::string> readShardSetHeader(
    std::istream& is);

/// ---- wire codec (cross-process serving) -----------------------------------
///
/// The byte-exact encoding of the two values that cross process boundaries
/// in ROADMAP's distributed fan-out: a PlanRequest travelling to a remote
/// PlanServer, and the OptimizedPlan travelling back. Same magic/version
/// discipline as the cache formats — a malformed, truncated or
/// version-mismatched payload is a clean std::runtime_error, never a
/// misparse. Byte-exact means encode(decode(encode(x))) == encode(x):
/// doubles are written at full precision (with explicit inf/-inf/nan
/// tokens, which plain stream extraction would reject), so a decoded
/// request computes the *identical* PlanEngine::requestKey on the far
/// side — the property the shared cross-process cache key space rests on.
///
/// Pointer-valued knobs never cross the wire: threads/pool are execution
/// placement (they change wall time, never winners — the host solves with
/// its own engine placement), and the portfolio travels as its *name*
/// ("-" reserved for the default/built-in portfolio; readers get the name
/// back and resolve it against their own process's registrations). An
/// unnamed request-level portfolio is process-local by contract, so
/// writePlanRequest rejects it with std::invalid_argument.
inline constexpr const char* kPlanRequestMagic = "fswplanreq";
inline constexpr int kPlanRequestVersion = 1;
inline constexpr const char* kPlanResponseMagic = "fswplanresp";
/// v2: the stats line grew the memory-discipline counters (evalProbes,
/// scratchHeapAllocs, arenaBytesHighWater) — 14 counters total.
inline constexpr int kPlanResponseVersion = 2;

/// A PlanRequest decoded from the wire. `request.options.registry` is left
/// null — `portfolio` carries the portfolio name ("-" = default) and the
/// transport layer resolves it against locally registered portfolios.
struct WirePlanRequest {
  PlanRequest request;
  std::string portfolio = "-";
  int priority = 0;
};

/// Format:
///   fswplanreq 1
///   request <priority> <model> <objective> <portfolio>
///   options <exactForestMaxN> <orchestrateTop>
///   heuristics <restarts> <iterations> <initialTemperature> <seed>
///   order <exactCap> <lsIters> <lsRestarts> <seed> <upperBound>
///   outorder <repairIters> <restarts> <bisectSteps> <seed>
///   seedorder <exactCap> <lsIters> <lsRestarts> <seed> <upperBound>
///   (application block via writeApplication)
void writePlanRequest(std::ostream& os, const PlanRequest& request,
                      int priority = 0);
[[nodiscard]] WirePlanRequest readPlanRequest(std::istream& is);

/// Format:
///   fswplanresp 2
///   plan <value> <surrogate> <strategy>      ("-" = empty strategy)
///   stats <14 EngineStats counters, declaration order>
///   (graph + oplist blocks via writeGraph / writeOperationList)
/// Stats cross the wire so a remote client observes the same counters a
/// local caller would (e.g. resultCacheHits = 1 on a warm repeat).
void writeOptimizedPlan(std::ostream& os, const OptimizedPlan& plan);
[[nodiscard]] OptimizedPlan readOptimizedPlan(std::istream& is);

/// ---- result-store wire ops (cross-host shared result store) ---------------
///
/// The payloads of the result-store service (src/serve/result_store.*):
/// GET/PUT/STATS verbs riding the same FSWF frame protocol as plan
/// serving, with the same magic/version discipline per payload. Keys are
/// the engine's whitespace-free canonical request keys
/// (PlanEngine::requestKey) — the portable cross-process key space —  so a
/// winner PUT by one host is the byte-exact winner every other host GETs.
inline constexpr const char* kStoreGetMagic = "fswstoreget";
inline constexpr int kStoreGetVersion = 1;
inline constexpr const char* kStorePutMagic = "fswstoreput";
inline constexpr int kStorePutVersion = 1;
inline constexpr const char* kStoreReplyMagic = "fswstorereply";
inline constexpr int kStoreReplyVersion = 1;
inline constexpr const char* kStoreStatsMagic = "fswstorestats";
inline constexpr int kStoreStatsVersion = 1;

/// Format: `fswstoreget 1` then `get <key> <wantPlan 0|1>`. `wantPlan 0`
/// asks for the incumbent bound only — the reply skips the stored winner
/// even on a hit, so an engine that re-solves by policy (full-result
/// caching off) does not download plans it would discard.
struct StoreGet {
  std::string key;
  bool wantPlan = true;
};
void writeStoreGet(std::ostream& os, const std::string& key,
                   bool wantPlan = true);
[[nodiscard]] StoreGet readStoreGet(std::istream& is);

/// Format: `fswstoreput 1`, `put <key>`, then the winner via
/// writeOptimizedPlan. The plan's value doubles as the incumbent bound the
/// store forwards to later same-key GETs.
void writeStorePut(std::ostream& os, const std::string& key,
                   const OptimizedPlan& plan);
struct StorePut {
  std::string key;
  OptimizedPlan plan;
};
[[nodiscard]] StorePut readStorePut(std::istream& is);

/// The reply to GET and PUT. `found` says whether a stored winner follows;
/// `bound` is the store's incumbent bound for the key (+inf = none posted)
/// — it travels even on a plan miss, so an evicted winner still tightens
/// the asker's abort thresholds. A PUT's ack simply echoes the published
/// value (frame sync for pipelined putters).
/// Format: `fswstorereply 1`, `reply <found 0|1> <bound token>`, then the
/// winner via writeOptimizedPlan when found.
struct StoreReply {
  bool found = false;
  double bound = 0.0;  ///< +inf when the store has no bound for the key
  OptimizedPlan plan;  ///< meaningful only when `found`
};
void writeStoreReply(std::ostream& os, const OptimizedPlan* plan,
                     double bound);
[[nodiscard]] StoreReply readStoreReply(std::istream& is);

/// The store's counters snapshot (the STATS verb).
/// Format: `fswstorestats 1` then `storestats <7 counters>`.
struct StoreStatsWire {
  std::size_t entries = 0;      ///< winners currently stored
  std::size_t gets = 0;         ///< GET ops served
  std::size_t hits = 0;         ///< GETs that returned a stored winner
  std::size_t boundHits = 0;    ///< GETs that returned a finite bound
  std::size_t puts = 0;         ///< PUT ops applied
  std::size_t evictions = 0;    ///< winners dropped at the capacity bound
  std::size_t bounds = 0;       ///< bounds currently posted
};
void writeStoreStats(std::ostream& os, const StoreStatsWire& stats);
[[nodiscard]] StoreStatsWire readStoreStats(std::istream& is);

/// Round-trip helpers via strings.
[[nodiscard]] std::string toString(const Application& app);
[[nodiscard]] Application applicationFromString(const std::string& text);
[[nodiscard]] std::string toString(const ExecutionGraph& graph);
[[nodiscard]] ExecutionGraph graphFromString(const std::string& text);
[[nodiscard]] std::string toString(const OperationList& ol);
[[nodiscard]] OperationList operationListFromString(const std::string& text);

/// Minimal CSV row writer (quotes nothing; callers pass clean cells).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}
  void row(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
};

}  // namespace fsw
