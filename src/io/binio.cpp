#include "src/io/binio.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <stdexcept>
#include <unordered_map>

namespace fsw::binio {

namespace {

std::uint64_t byteswap64(std::uint64_t v) {
  return ((v & 0x00000000000000ffull) << 56) |
         ((v & 0x000000000000ff00ull) << 40) |
         ((v & 0x0000000000ff0000ull) << 24) |
         ((v & 0x00000000ff000000ull) << 8) |
         ((v & 0x000000ff00000000ull) >> 8) |
         ((v & 0x0000ff0000000000ull) >> 24) |
         ((v & 0x00ff000000000000ull) >> 40) |
         ((v & 0xff00000000000000ull) >> 56);
}

}  // namespace

void Writer::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(byteswap64(bits));
}

void Writer::zstr(std::string_view s) {
  u64(s.size());
  if (s.empty()) return;
  // Greedy LZ over a last-occurrence index of 4-byte prefixes. Matches may
  // overlap their own output (dist < len), which is how pure repetition
  // collapses to one reference. The token stream is
  //   [litLen, literal bytes, matchLen, dist]*  [litLen, literal bytes]?
  // and ends exactly when the decompressed length is reached, so a final
  // match needs no empty literal tail.
  constexpr std::size_t kMinMatch = 4;
  std::unordered_map<std::uint32_t, std::size_t> last;
  std::size_t litStart = 0;
  std::size_t i = 0;
  const auto emitLiterals = [&](std::size_t end) {
    u64(end - litStart);
    raw(s.substr(litStart, end - litStart));
  };
  while (i < s.size()) {
    std::size_t matchLen = 0;
    std::size_t matchPos = 0;
    if (i + kMinMatch <= s.size()) {
      std::uint32_t key = 0;
      std::memcpy(&key, s.data() + i, sizeof(key));
      if (const auto it = last.find(key); it != last.end()) {
        const std::size_t cand = it->second;
        std::size_t len = 0;
        while (i + len < s.size() && s[cand + len] == s[i + len]) ++len;
        if (len >= kMinMatch) {
          matchLen = len;
          matchPos = cand;
        }
      }
      last[key] = i;
    }
    if (matchLen > 0) {
      emitLiterals(i);
      u64(matchLen);
      u64(i - matchPos);
      i += matchLen;
      litStart = i;
    } else {
      ++i;
    }
  }
  if (litStart < s.size()) emitLiterals(s.size());
}

std::uint64_t Reader::u64() {
  std::uint64_t v = 0;
  unsigned shift = 0;
  for (;;) {
    if (pos_ >= buf_.size()) fail("truncated varint");
    const auto b = static_cast<unsigned char>(buf_[pos_++]);
    if (shift == 63 && (b & 0x7f) > 1) {
      fail("varint overflows 64 bits");
    }
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      // Canonical LEB128 only: a final zero byte after any prior byte is
      // the overlong spelling of a shorter encoding. Rejecting it keeps
      // encode() the unique byte string for every value.
      if (b == 0 && shift != 0) fail("overlong varint (non-canonical LEB128)");
      return v;
    }
    shift += 7;
    if (shift > 63) fail("varint longer than 10 bytes");
  }
}

double Reader::f64() {
  const std::uint64_t bits = byteswap64(u64());
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string_view Reader::str() {
  const std::size_t at = pos_;
  const std::uint64_t len = u64();
  if (len > remaining()) {
    const std::size_t have = remaining();
    pos_ = at;
    fail("declared string length " + std::to_string(len) + " exceeds the " +
         std::to_string(have) + " bytes present");
  }
  const std::string_view s = buf_.substr(pos_, static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return s;
}

std::string Reader::zstr() {
  const std::uint64_t rawLen = u64();
  if (rawLen > kMaxBlockBody) {
    fail("declared decompressed length " + std::to_string(rawLen) +
         " exceeds the " + std::to_string(kMaxBlockBody) + "-byte cap");
  }
  std::string out;
  out.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(rawLen, remaining() * 8)));
  while (out.size() < rawLen) {
    const std::uint64_t lit = u64();
    if (lit > rawLen - out.size()) {
      fail("literal run overruns the declared decompressed length");
    }
    if (lit > remaining()) {
      fail("truncated literal run (need " + std::to_string(lit) +
           " bytes, have " + std::to_string(remaining()) + ")");
    }
    out.append(buf_.substr(pos_, static_cast<std::size_t>(lit)));
    pos_ += static_cast<std::size_t>(lit);
    if (out.size() == rawLen) break;
    const std::uint64_t len = u64();
    if (len == 0) fail("zero-length match");
    if (len > rawLen - out.size()) {
      fail("match overruns the declared decompressed length");
    }
    const std::uint64_t dist = u64();
    if (dist == 0 || dist > out.size()) {
      fail("match distance " + std::to_string(dist) +
           " outside the decoded prefix");
    }
    // Byte-wise copy: a reference may overlap the bytes it produces.
    for (std::uint64_t k = 0; k < len; ++k) {
      out.push_back(out[out.size() - static_cast<std::size_t>(dist)]);
    }
  }
  return out;
}

void Reader::expectEnd() const {
  if (!atEnd()) {
    fail(std::to_string(remaining()) + " trailing bytes after the decoded body");
  }
}

void Reader::fail(const std::string& what) const {
  throw std::runtime_error(std::string(where_) + ": " + what +
                           " (at byte offset " + std::to_string(pos_) + ")");
}

bool sniffBinary(std::istream& is) {
  is >> std::ws;
  return is.good() && is.peek() == static_cast<int>(kMagicByte);
}

std::string finishBlock(char kind, std::uint64_t version, std::string body) {
  Writer header;
  header.u8(kMagicByte);
  header.u8(static_cast<std::uint8_t>(kind));
  header.u64(version);
  header.u64(body.size());
  std::string block = header.take();
  block.append(body);
  return block;
}

namespace {

/// A canonical LEB128 varint read byte-by-byte off a stream (block
/// headers only — bodies are slurped whole and decoded via Reader).
std::uint64_t streamVarint(std::istream& is, const char* where,
                           const char* what) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  for (;;) {
    const int c = is.get();
    if (c < 0) {
      throw std::runtime_error(std::string(where) + ": truncated " + what +
                               " varint in block header");
    }
    const auto b = static_cast<unsigned char>(c);
    if (shift == 63 && (b & 0x7f) > 1) {
      throw std::runtime_error(std::string(where) + ": " + what +
                               " varint overflows 64 bits");
    }
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      if (b == 0 && shift != 0) {
        throw std::runtime_error(std::string(where) + ": overlong " + what +
                                 " varint (non-canonical LEB128)");
      }
      return v;
    }
    shift += 7;
    if (shift > 63) {
      throw std::runtime_error(std::string(where) + ": " + what +
                               " varint longer than 10 bytes");
    }
  }
}

}  // namespace

Block readBlock(std::istream& is, const char* where) {
  const int magic = is.get();
  if (magic != static_cast<int>(kMagicByte)) {
    throw std::runtime_error(std::string(where) +
                             ": missing binary block magic byte");
  }
  const int kind = is.get();
  if (kind < 0) {
    throw std::runtime_error(std::string(where) +
                             ": truncated block header (no kind byte)");
  }
  Block block;
  block.kind = static_cast<char>(kind);
  block.version = streamVarint(is, where, "version");
  const std::uint64_t len = streamVarint(is, where, "body-length");
  if (len > kMaxBlockBody) {
    throw std::runtime_error(std::string(where) + ": declared body length " +
                             std::to_string(len) + " exceeds the " +
                             std::to_string(kMaxBlockBody) + "-byte block cap");
  }
  block.body.resize(static_cast<std::size_t>(len));
  if (len > 0) {
    is.read(block.body.data(), static_cast<std::streamsize>(len));
    if (static_cast<std::uint64_t>(is.gcount()) != len) {
      throw std::runtime_error(
          std::string(where) + ": truncated block body (declared " +
          std::to_string(len) + " bytes, stream held " +
          std::to_string(is.gcount()) + ")");
    }
  }
  return block;
}

Reader openBlock(std::string_view blob, char kind, std::uint64_t version,
                 const char* where) {
  return openBlockRange(blob, kind, version, version, nullptr, where);
}

Reader openBlockRange(std::string_view blob, char kind,
                      std::uint64_t minVersion, std::uint64_t maxVersion,
                      std::uint64_t* gotVersionOut, const char* where) {
  Reader r(blob, where);
  if (r.u8() != kMagicByte) {
    r.fail("missing binary block magic byte");
  }
  const char gotKind = static_cast<char>(r.u8());
  if (gotKind != kind) {
    r.fail(std::string("unexpected block kind '") + gotKind +
           "' (expected '" + kind + "')");
  }
  const std::uint64_t gotVersion = r.u64();
  if (gotVersion < minVersion || gotVersion > maxVersion) {
    r.fail("unsupported binary version " + std::to_string(gotVersion) +
           (minVersion == maxVersion
                ? " (expected " + std::to_string(minVersion) + ")"
                : " (expected " + std::to_string(minVersion) + ".." +
                      std::to_string(maxVersion) + ")"));
  }
  if (gotVersionOut != nullptr) *gotVersionOut = gotVersion;
  const std::uint64_t len = r.u64();
  if (len != r.remaining()) {
    r.fail("declared body length " + std::to_string(len) + " but " +
           std::to_string(r.remaining()) + " bytes follow");
  }
  return r;
}

}  // namespace fsw::binio
