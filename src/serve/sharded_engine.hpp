// ShardedPlanEngine: N independent PlanEngine shards behind one PlanSolver
// surface — the routing layer of ROADMAP's distributed fan-out.
//
// Every request is routed by rendezvous (highest-random-weight) consistent
// hashing of its canonical key: shardOfKey hashes (key, shard index) with
// a fixed FNV-1a seed per shard and picks the argmax, so
//   * routing is a pure function of the key and the shard count —
//     identical across processes, the precondition for running shards in
//     separate hosts behind the same router;
//   * identical requests always land on the same shard, so each shard's
//     own dedup, score cache and full-result cache keep working unchanged;
//   * changing the shard count moves only ~1/N of the key space (the
//     rendezvous property) — resharding mostly preserves cache locality.
//
// Each shard is a complete PlanEngine — its own pool (per EngineConfig),
// score cache, full-result cache and stats — so shards never contend on a
// shared lock. What *is* shared is the incumbent BoundBoard
// (src/serve/bound_board.hpp): any shard's completed solve publishes its
// winner value, and a later solve of the same key on any shard tightens
// its abort thresholds with it — the best winner seen anywhere can only
// shrink a shard's search space (how much is workload-dependent), never
// change a winner (the bit-identity contract holds across 1-shard,
// N-shard and remote paths).
//
// Persistence is shard-aware: saveCache/saveResults write one versioned
// shard-set artifact holding every shard's dump; loadCache/loadResults
// merge a shard set of ANY count into the current one — result-cache
// entries re-route by their key (so warm lookups land where requests
// will), score-cache entries broadcast to every shard (scores are pure
// and shard-agnostic; broadcasting keeps each shard warm under any
// routing).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/serve/bound_board.hpp"
#include "src/serve/plan_engine.hpp"
#include "src/serve/plan_solver.hpp"

namespace fsw {

struct ShardedEngineConfig {
  /// Independent PlanEngine shards (floored to 1).
  std::size_t shards = 2;
  /// Configuration applied to every shard. `boundBoard` is overwritten by
  /// the engine-owned cross-shard board when `shareIncumbents` is set.
  EngineConfig shard{};
  /// Wire one BoundBoard through every shard, so any shard's completed
  /// winner tightens the others' abort thresholds (winner-preserving).
  bool shareIncumbents = true;
};

/// The sharded serving core. Thread-safe: any number of threads may call
/// optimize/optimizeBatch concurrently — aggregation is locked, shards are
/// independent.
class ShardedPlanEngine : public PlanSolver {
 public:
  /// An aggregated snapshot across shards. Work counters are summed from
  /// completed requests under one mutex (never racing increments); cache
  /// counters are summed from the shards' own locked snapshots.
  struct Stats {
    std::size_t requests = 0;      ///< requests routed through this engine
    std::size_t batches = 0;       ///< optimizeBatch calls observed
    EngineStats work{};            ///< per-request counters, summed
    CandidateCache::Stats scores{};  ///< score caches, summed across shards
    ResultCache::Stats results{};    ///< result caches, summed across shards
    BoundBoard::Stats bounds{};      ///< cross-shard incumbent board
    std::vector<std::size_t> perShard;  ///< requests routed per shard
  };

  explicit ShardedPlanEngine(ShardedEngineConfig config = {});

  ShardedPlanEngine(const ShardedPlanEngine&) = delete;
  ShardedPlanEngine& operator=(const ShardedPlanEngine&) = delete;

  /// Routes one request to its shard (via a one-element batch, like
  /// PlanEngine::optimize — one code path for stats and routing).
  [[nodiscard]] OptimizedPlan optimize(const PlanRequest& request);

  /// Partitions the batch by shard, solves the partitions concurrently
  /// (each on its shard's engine, with per-shard dedup and caching), and
  /// returns results index-aligned with `requests`. Winners are
  /// bit-identical to per-request serial optimizePlan.
  [[nodiscard]] std::vector<OptimizedPlan> optimizeBatch(
      std::span<const PlanRequest> requests) override;

  /// The engine-aware dedup key (identical across shards by construction:
  /// every shard shares one EngineConfig).
  [[nodiscard]] std::string dedupKey(
      const PlanRequest& request) const override;

  [[nodiscard]] std::size_t shardCount() const noexcept {
    return shards_.size();
  }
  /// The shard this request routes to.
  [[nodiscard]] std::size_t shardOf(const PlanRequest& request) const;
  /// Rendezvous-hash routing: the shard (argmax over per-shard FNV-1a
  /// hashes of `key`) among `shards` shards. A pure function of its
  /// arguments — stable across processes and runs.
  [[nodiscard]] static std::size_t shardOfKey(const std::string& key,
                                              std::size_t shards);
  /// Direct access to one shard's engine (tests, persistence tooling).
  [[nodiscard]] PlanEngine& shard(std::size_t i) { return *shards_[i]; }

  [[nodiscard]] Stats stats() const;

  /// Persist / restore every shard's score cache as one shard-set
  /// artifact. Loading merges a dump of ANY shard count: each stored
  /// shard's entries are broadcast to every current shard (scores are pure
  /// functions of their keys, so duplication is safe and keeps every shard
  /// warm under any routing). Throws std::runtime_error on a bad magic,
  /// version, kind, or malformed payload.
  void saveCache(std::ostream& os) const;
  void loadCache(std::istream& is);

  /// Persist / restore every shard's full-result store. `budgetPerShard`
  /// caps the winners written per shard (0 = all). Loading merges a dump
  /// of ANY shard count: entries re-route by consistent hash of their
  /// request key, so a warm lookup lands on the shard that will serve the
  /// request. Throws std::runtime_error on mismatched headers.
  void saveResults(std::ostream& os, std::size_t budgetPerShard = 0) const;
  void loadResults(std::istream& is);

 private:
  ShardedEngineConfig config_;
  BoundBoard board_;  ///< shared across shards when shareIncumbents
  std::vector<std::unique_ptr<PlanEngine>> shards_;

  mutable std::mutex statsMu_;
  std::size_t requests_ = 0;
  std::size_t batches_ = 0;
  EngineStats work_{};
  std::vector<std::size_t> perShard_;
};

}  // namespace fsw
