// The FSWF frame protocol and its shared plumbing — one implementation for
// every socket service in src/serve (PlanServiceHost/RemotePlanClient in
// plan_service.*, ResultStoreHost/RemoteResultStore in result_store.*).
// One implementation means one failure discipline: a malformed frame is
// ReadStatus::Bad everywhere, a version mismatch is answered before the
// drop everywhere, and a new service cannot drift from the protocol by
// re-implementing it.
//
// Frame layout (length-prefixed, fixed 10-byte header):
//
//   offset 0  4 bytes  magic "FSWF"
//   offset 4  1 byte   frame version (kFrameVersion)
//   offset 5  1 byte   type (FrameType)
//   offset 6  4 bytes  payload length, big-endian
//   offset 10 payload  codec text (src/io/serialize.hpp) or, for 'E', a
//                      human-readable message
//
// The protocol surface (magic, version, FrameType, encodeFrame) lives in
// namespace fsw; the plumbing (exact send/recv, frame reads, the shared
// service transport) in fsw::frameio.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <vector>

namespace fsw {

inline constexpr char kFrameMagic[4] = {'F', 'S', 'W', 'F'};
inline constexpr std::uint8_t kFrameVersion = 1;
/// Frames above this payload size are protocol violations (the codec's
/// plans are far smaller; the cap keeps a corrupt length prefix from
/// looking like a multi-gigabyte allocation).
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

enum class FrameType : char {
  Request = 'Q',
  Result = 'R',
  Error = 'E',
  // The result-store service (src/serve/result_store.*) shares the frame
  // protocol: one header discipline, one failure contract, new verbs.
  StoreGet = 'G',    ///< result-store lookup by request key
  StorePut = 'P',    ///< result-store publish (winner + incumbent bound)
  StoreStats = 'S',  ///< result-store counters snapshot
};

/// Serializes one frame (header + payload) to bytes — exposed so tests can
/// craft byte-exact, truncated or version-tweaked frames.
[[nodiscard]] std::string encodeFrame(FrameType type,
                                      std::string_view payload);

}  // namespace fsw

namespace fsw::frameio {

inline constexpr std::size_t kFrameHeaderSize = 10;

/// Sends the whole buffer (MSG_NOSIGNAL: a peer that vanished mid-write is
/// an error return here, never a SIGPIPE). False on any failure.
bool sendAll(int fd, const char* data, std::size_t len);

/// Reads exactly `len` bytes. 1 = ok, 0 = clean EOF before the first byte,
/// -1 = error or EOF mid-buffer (a truncated frame).
int recvExact(int fd, char* data, std::size_t len);

enum class ReadStatus {
  Ok,            ///< a well-formed frame
  Eof,           ///< clean close at a frame boundary
  Bad,           ///< garbage/truncated/oversized — drop the connection
  WrongVersion,  ///< well-formed header, unsupported version
};

struct Frame {
  FrameType type = FrameType::Error;
  std::string payload;
};

/// Bytes-on-the-wire accounting, shared by every frame endpoint. Counters
/// include the 10-byte frame headers — they measure what actually crossed
/// (or, for a reactor host's replies, was committed to) the socket, not
/// just payload — and count only complete, well-formed frames (a truncated
/// read contributes nothing). Outbound frames are counted when the service
/// commits them to a connection (enqueue on the reactor, successful send on
/// the blocking paths): by the time a peer observes a reply, the counters
/// already include it. Atomic so one instance can sit behind a service's
/// concurrent threads.
struct IoCounters {
  std::atomic<std::size_t> framesIn{0};
  std::atomic<std::size_t> bytesIn{0};
  std::atomic<std::size_t> framesOut{0};
  std::atomic<std::size_t> bytesOut{0};
};

/// A plain snapshot of IoCounters (for stats structs).
struct IoTotals {
  std::size_t framesIn = 0;
  std::size_t bytesIn = 0;
  std::size_t framesOut = 0;
  std::size_t bytesOut = 0;
};
[[nodiscard]] IoTotals totals(const IoCounters& io);

/// `io`, when non-null, accumulates the frame and its header bytes on a
/// successful read/send.
ReadStatus readFrame(int fd, Frame& out, IoCounters* io = nullptr);

bool sendFrame(int fd, FrameType type, std::string_view payload,
               IoCounters* io = nullptr);

void closeFd(int fd);

/// Binds and listens on 127.0.0.1:`port` (0 = ephemeral), returning the
/// listening fd and the bound port. Throws std::runtime_error (prefixed
/// with `who`) on failure.
struct Listener {
  int fd = -1;
  std::uint16_t port = 0;
};
[[nodiscard]] Listener listenLoopback(std::uint16_t port, const char* who);

/// Connects to host:port (an IPv4 literal), returning the fd. Throws
/// std::runtime_error (prefixed with `who`) on failure. `timeoutMs`
/// bounds the connect itself (non-blocking connect + poll) so a
/// black-holed peer fails in seconds, not the kernel's multi-minute SYN
/// retry schedule; <= 0 means a plain blocking connect.
[[nodiscard]] int connectTcp(const std::string& host, std::uint16_t port,
                             const char* who, int timeoutMs = 10000);

/// Applies SO_RCVTIMEO/SO_SNDTIMEO so a peer that stops responding
/// (SIGSTOP, partition without RST) surfaces as a recv/send error after
/// `timeoutMs` instead of blocking forever. <= 0 leaves the socket
/// blocking.
void setIoTimeout(int fd, int timeoutMs);

/// How a SocketService moves bytes.
enum class TransportMode {
  /// Nonblocking epoll reactor: a small fixed pool of event-loop threads
  /// owns every connection's state machine (incremental frame assembly
  /// across partial reads, bounded write queues flushed on EPOLLOUT), and
  /// a fixed handler pool runs handleFrame so a blocking solve never
  /// stalls an event loop. Host thread count is O(1) in the number of
  /// connections.
  Reactor,
  /// The pre-reactor transport: one blocking serving thread per accepted
  /// connection. Kept as the bench baseline (E13) and as a fallback;
  /// handler semantics are identical — only the byte-moving differs.
  ThreadPerConnection,
};

/// Reactor/transport knobs (all with serviceable defaults). The same
/// struct configures the legacy transport, which honors `mode` and
/// `maxConnections` and ignores the reactor-only knobs.
struct TransportConfig {
  TransportMode mode = TransportMode::Reactor;
  /// Event-loop threads (reactor). Clamped to >= 1; loop 0 also accepts.
  std::size_t eventLoopThreads = 2;
  /// Handler threads running handleFrame (reactor). 0 = auto
  /// (max(2, min(8, hardware_concurrency()))). This bounds how many
  /// connections' frames are *being handled* at once; parsed frames wait
  /// in per-connection inboxes, connections themselves are only bounded
  /// by maxConnections.
  std::size_t handlerThreads = 0;
  /// Accept gate: live connections at or above this are refused with a
  /// best-effort error frame and a clean shutdown (counted in
  /// TransportTotals::refusedOverLimit). 0 = unbounded.
  std::size_t maxConnections = 0;
  /// A connection with no *complete* frame parsed and no handler or
  /// pending reply for this long is reaped (timer wheel; counted in
  /// idleClosed). Partial bytes do NOT refresh the clock — a slow-loris
  /// trickling a frame byte-by-byte is reaped like a silent peer. 0 =
  /// never reap. Reactor only.
  int idleTimeoutMs = 0;
  /// Per-connection queued-reply cap in bytes. At or above the cap the
  /// connection's reads are parked (backpressure) until the queue drains
  /// below it — a slow reader throttles itself, never an unbounded
  /// buffer. Reactor only.
  std::size_t writeQueueCap = 4u << 20;
  /// Parsed-but-unhandled frames per connection before reads park (the
  /// inbox half of backpressure; must stay above the store clients'
  /// pipeline window so batched GET/PUT keeps streaming). Reactor only.
  std::size_t maxPipelinedFrames = 64;
  /// stopService() drains gracefully: in-flight frames finish and their
  /// replies flush, bounded by this budget; stragglers are then
  /// force-closed. Reactor only.
  int drainTimeoutMs = 2000;
};

/// Transport-level counters for stats snapshots (per host; the
/// per-connection write-queue peak is folded into one high-water mark).
struct TransportTotals {
  std::size_t accepted = 0;          ///< connections accepted
  std::size_t refusedOverLimit = 0;  ///< accepts refused by the gate
  std::size_t idleClosed = 0;        ///< connections reaped by the idle timer
  std::size_t streamErrors = 0;      ///< bad frames + version mismatches
  std::size_t peakWriteQueueBytes = 0;  ///< max queued reply bytes (any conn)
  std::size_t liveConnections = 0;
  /// Threads the transport itself owns right now: event loops + handlers
  /// (reactor) or acceptor + one per live connection (legacy). The E13
  /// scaling bench reads this to show O(1) vs O(clients).
  std::size_t transportThreads = 0;
};

/// The shared transport of an FSWF socket service (PlanServiceHost,
/// ResultStoreHost): bind + listen on loopback, move frames via the
/// configured TransportMode, apply the shared frame discipline (garbage →
/// drop; wrong version → error frame, then drop), and hand every
/// well-formed frame to the derived handleFrame.
///
/// handleFrame runs on a handler-pool thread (reactor) or the connection's
/// own thread (legacy) — never on an event loop — so it may block (e.g. on
/// PlanServer::submit().get()). Frames from one connection are handled
/// strictly in arrival order, one at a time (replies stay in order for
/// pipelined peers); different connections are handled concurrently.
/// Subclasses MUST call stopService() from their destructor: the base
/// destructor cannot do it alone, because by the time it runs the derived
/// object (and with it the virtual handleFrame) is already gone while
/// handler threads could still be inside it.
class SocketService {
 public:
  SocketService(const SocketService&) = delete;
  SocketService& operator=(const SocketService&) = delete;

  /// The bound listening port (resolves an ephemeral request).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] IoTotals ioTotals() const { return totals(io_); }
  [[nodiscard]] TransportTotals transportTotals() const;

 protected:
  struct Conn;  // per-connection reactor state machine (frame_io.cpp)

  /// The reply seam handed to handleFrame. send() commits a frame to the
  /// connection: on the reactor it lands in the bounded write queue (the
  /// event loop flushes it, on EPOLLOUT when the socket stalls); on the
  /// legacy transport it is written synchronously. False when the
  /// connection is already gone — handlers treat that as "peer lost
  /// interest", never an error.
  class Responder {
   public:
    bool send(FrameType type, std::string_view payload);
    /// Drop the connection once queued replies have flushed (the legacy
    /// transport closes when the handler returns). Frames already parsed
    /// but not yet handled on this connection are discarded.
    void closeAfterReply() { close_ = true; }

   private:
    friend class SocketService;
    Responder(SocketService* svc, std::shared_ptr<Conn> conn)
        : svc_(svc), conn_(std::move(conn)) {}
    Responder(SocketService* svc, int fd) : svc_(svc), fd_(fd) {}

    SocketService* svc_ = nullptr;
    std::shared_ptr<Conn> conn_;  ///< reactor target (null on legacy)
    int fd_ = -1;                 ///< legacy target
    bool close_ = false;
    bool dead_ = false;  ///< legacy: a send failed; the stream is gone
  };

  SocketService();   ///< out-of-line: members need Reactor complete
  ~SocketService();  ///< backstop stopService(); derived must call it first

  /// Binds, listens and starts the transport threads. Throws
  /// std::runtime_error (prefixed with `who`) on failure.
  void startService(std::uint16_t port, const char* who,
                    TransportConfig transport = {});

  /// Stops accepting, drains in-flight frames (reactor: replies flush
  /// within drainTimeoutMs, then stragglers are force-closed), joins all
  /// threads. Idempotent; safe to call from the derived destructor.
  void stopService();

  /// One well-formed frame from one connection; runs off the event loops
  /// and may block. Must not throw — an escaping exception drops the
  /// connection.
  virtual void handleFrame(Responder& out, Frame frame) = 0;

  /// Connections accepted so far (for derived stats snapshots).
  [[nodiscard]] std::size_t acceptedConnections() const {
    return accepted_.load(std::memory_order_relaxed);
  }

  /// The service-wide IO counters (ioTotals() snapshots them for stats).
  [[nodiscard]] IoCounters& ioCounters() noexcept { return io_; }

 private:
  struct Loop;     // one event loop: epoll fd + eventfd + timer wheel
  struct Reactor;  // the loops, the handler pool, the drain machinery

  // ---- shared by both transports
  void refuseOverLimit(int fd);
  void bumpPeakQueue(std::size_t depth);

  // ---- legacy transport
  void acceptLoop();
  void runConnection(int fd);
  void serveLegacy(int fd);
  void reapFinishedLocked();
  void stopLegacy();

  // ---- reactor transport
  void loopMain(std::size_t index);
  void handlerMain();
  void acceptReady(Loop& loop);
  void registerConn(Loop& loop, const std::shared_ptr<Conn>& conn);
  void handleReadable(Loop& loop, const std::shared_ptr<Conn>& conn);
  void parseFrames(Loop& loop, const std::shared_ptr<Conn>& conn);
  void flushConn(Loop& loop, const std::shared_ptr<Conn>& conn);
  void updateInterest(Loop& loop, const std::shared_ptr<Conn>& conn);
  void closeConn(Loop& loop, const std::shared_ptr<Conn>& conn,
                 bool countIdle = false);
  void processWakes(Loop& loop);
  void wheelSchedule(Loop& loop, const std::shared_ptr<Conn>& conn);
  void wheelAdvance(Loop& loop);
  void wakeConn(const std::shared_ptr<Conn>& conn);
  void wakeLoop(Loop& loop);
  void enqueueHandlerWork(const std::shared_ptr<Conn>& conn);
  void stopReactor();

  int listenFd_ = -1;
  std::uint16_t port_ = 0;
  TransportConfig cfg_{};
  IoCounters io_;

  std::atomic<std::size_t> accepted_{0};
  std::atomic<std::size_t> refused_{0};
  std::atomic<std::size_t> idleClosed_{0};
  std::atomic<std::size_t> streamErrors_{0};
  std::atomic<std::size_t> peakWriteQueue_{0};
  std::atomic<std::size_t> live_{0};

  std::unique_ptr<Reactor> reactor_;

  // legacy-transport state
  mutable std::mutex acceptMu_;
  bool stopping_ = false;
  std::unordered_set<int> connections_;  ///< live connection fds
  std::vector<std::thread> threads_;     ///< connection threads
  std::vector<std::thread::id> finished_;  ///< threads ready to reap
  std::thread acceptor_;

  std::mutex stopMu_;  ///< serializes the join phase of stopService()
  bool stopped_ = false;
};

}  // namespace fsw::frameio
