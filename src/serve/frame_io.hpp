// The FSWF frame protocol and its shared plumbing — one implementation for
// every socket service in src/serve (PlanServiceHost/RemotePlanClient in
// plan_service.*, ResultStoreHost/RemoteResultStore in result_store.*).
// One implementation means one failure discipline: a malformed frame is
// ReadStatus::Bad everywhere, a version mismatch is answered before the
// drop everywhere, and a new service cannot drift from the protocol by
// re-implementing it.
//
// Frame layout (length-prefixed, fixed 10-byte header):
//
//   offset 0  4 bytes  magic "FSWF"
//   offset 4  1 byte   frame version (kFrameVersion)
//   offset 5  1 byte   type (FrameType)
//   offset 6  4 bytes  payload length, big-endian
//   offset 10 payload  codec text (src/io/serialize.hpp) or, for 'E', a
//                      human-readable message
//
// The protocol surface (magic, version, FrameType, encodeFrame) lives in
// namespace fsw; the plumbing (exact send/recv, frame reads, the shared
// listener/connection-thread lifecycle) in fsw::frameio.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <vector>

namespace fsw {

inline constexpr char kFrameMagic[4] = {'F', 'S', 'W', 'F'};
inline constexpr std::uint8_t kFrameVersion = 1;
/// Frames above this payload size are protocol violations (the codec's
/// plans are far smaller; the cap keeps a corrupt length prefix from
/// looking like a multi-gigabyte allocation).
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

enum class FrameType : char {
  Request = 'Q',
  Result = 'R',
  Error = 'E',
  // The result-store service (src/serve/result_store.*) shares the frame
  // protocol: one header discipline, one failure contract, new verbs.
  StoreGet = 'G',    ///< result-store lookup by request key
  StorePut = 'P',    ///< result-store publish (winner + incumbent bound)
  StoreStats = 'S',  ///< result-store counters snapshot
};

/// Serializes one frame (header + payload) to bytes — exposed so tests can
/// craft byte-exact, truncated or version-tweaked frames.
[[nodiscard]] std::string encodeFrame(FrameType type,
                                      std::string_view payload);

}  // namespace fsw

namespace fsw::frameio {

inline constexpr std::size_t kFrameHeaderSize = 10;

/// Sends the whole buffer (MSG_NOSIGNAL: a peer that vanished mid-write is
/// an error return here, never a SIGPIPE). False on any failure.
bool sendAll(int fd, const char* data, std::size_t len);

/// Reads exactly `len` bytes. 1 = ok, 0 = clean EOF before the first byte,
/// -1 = error or EOF mid-buffer (a truncated frame).
int recvExact(int fd, char* data, std::size_t len);

enum class ReadStatus {
  Ok,            ///< a well-formed frame
  Eof,           ///< clean close at a frame boundary
  Bad,           ///< garbage/truncated/oversized — drop the connection
  WrongVersion,  ///< well-formed header, unsupported version
};

struct Frame {
  FrameType type = FrameType::Error;
  std::string payload;
};

/// Bytes-on-the-wire accounting, shared by every frame endpoint. Counters
/// include the 10-byte frame headers — they measure what actually crossed
/// the socket, not just payload — and count only complete, well-formed
/// frames (a truncated read or failed send contributes nothing). Atomic so
/// one instance can sit behind a service's concurrent connection threads.
struct IoCounters {
  std::atomic<std::size_t> framesIn{0};
  std::atomic<std::size_t> bytesIn{0};
  std::atomic<std::size_t> framesOut{0};
  std::atomic<std::size_t> bytesOut{0};
};

/// A plain snapshot of IoCounters (for stats structs).
struct IoTotals {
  std::size_t framesIn = 0;
  std::size_t bytesIn = 0;
  std::size_t framesOut = 0;
  std::size_t bytesOut = 0;
};
[[nodiscard]] IoTotals totals(const IoCounters& io);

/// `io`, when non-null, accumulates the frame and its header bytes on a
/// successful read/send.
ReadStatus readFrame(int fd, Frame& out, IoCounters* io = nullptr);

bool sendFrame(int fd, FrameType type, std::string_view payload,
               IoCounters* io = nullptr);

void closeFd(int fd);

/// Binds and listens on 127.0.0.1:`port` (0 = ephemeral), returning the
/// listening fd and the bound port. Throws std::runtime_error (prefixed
/// with `who`) on failure.
struct Listener {
  int fd = -1;
  std::uint16_t port = 0;
};
[[nodiscard]] Listener listenLoopback(std::uint16_t port, const char* who);

/// Connects to host:port (an IPv4 literal), returning the fd. Throws
/// std::runtime_error (prefixed with `who`) on failure. `timeoutMs`
/// bounds the connect itself (non-blocking connect + poll) so a
/// black-holed peer fails in seconds, not the kernel's multi-minute SYN
/// retry schedule; <= 0 means a plain blocking connect.
[[nodiscard]] int connectTcp(const std::string& host, std::uint16_t port,
                             const char* who, int timeoutMs = 10000);

/// Applies SO_RCVTIMEO/SO_SNDTIMEO so a peer that stops responding
/// (SIGSTOP, partition without RST) surfaces as a recv/send error after
/// `timeoutMs` instead of blocking forever. <= 0 leaves the socket
/// blocking.
void setIoTimeout(int fd, int timeoutMs);

/// The shared listener/connection lifecycle of an FSWF socket service
/// (PlanServiceHost, ResultStoreHost): bind + listen on loopback, an
/// accept loop handing every connection to its own serving thread
/// (finished threads are reaped on accept, so a long-lived service under
/// connection churn never accumulates dead handles), and an idempotent
/// stopService() that closes the listener and every live connection, then
/// joins everything.
///
/// Subclasses implement serveConnection(fd) — run on the connection's own
/// thread; the base owns the fd (it is shut down and closed after the
/// override returns) — and MUST call stopService() from their destructor:
/// the base destructor cannot do it alone, because by the time it runs the
/// derived object (and with it the virtual serveConnection) is already
/// gone while connection threads could still be inside it.
class SocketService {
 public:
  SocketService(const SocketService&) = delete;
  SocketService& operator=(const SocketService&) = delete;

  /// The bound listening port (resolves an ephemeral request).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 protected:
  SocketService() = default;
  ~SocketService();  ///< backstop stopService(); derived must call it first

  /// Binds, listens and starts the acceptor thread. Throws
  /// std::runtime_error (prefixed with `who`) on failure.
  void startService(std::uint16_t port, const char* who);

  /// Stops accepting, shuts every live connection down, joins all
  /// threads. Idempotent; safe to call from the derived destructor.
  void stopService();

  /// One connection's serving loop; called on its own thread.
  virtual void serveConnection(int fd) = 0;

  /// Connections accepted so far (for derived stats snapshots).
  [[nodiscard]] std::size_t acceptedConnections() const;

  /// The service-wide IO counters. Derived serveConnection overrides pass
  /// `&ioCounters()` to readFrame/sendFrame so every connection's traffic
  /// lands in one place; ioTotals() snapshots it for stats.
  [[nodiscard]] IoCounters& ioCounters() noexcept { return io_; }

 public:
  [[nodiscard]] IoTotals ioTotals() const { return totals(io_); }

 private:
  void acceptLoop();
  void runConnection(int fd);
  /// Joins and drops threads whose connections already finished (called
  /// with acceptMu_ held on every accept).
  void reapFinishedLocked();

  int listenFd_ = -1;
  std::uint16_t port_ = 0;
  IoCounters io_;

  mutable std::mutex acceptMu_;
  bool stopping_ = false;
  std::size_t accepted_ = 0;
  std::unordered_set<int> connections_;  ///< live connection fds
  std::vector<std::thread> threads_;     ///< connection threads
  std::vector<std::thread::id> finished_;  ///< threads ready to reap

  std::mutex stopMu_;  ///< serializes the join phase of stopService()
  std::thread acceptor_;
};

}  // namespace fsw::frameio
