#include "src/serve/plan_engine.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/io/serialize.hpp"
#include "src/sched/inorder.hpp"
#include "src/sched/orchestrator.hpp"
#include "src/sched/port_orders.hpp"
#include "src/serve/bound_board.hpp"
#include "src/serve/result_store.hpp"

namespace fsw {
namespace {

struct Candidate {
  ExecutionGraph graph{0};
  std::string signature;
  std::string strategy;
  double surrogate = std::numeric_limits<double>::infinity();
};

/// Value-affecting optimizer knobs, serialized into the request key. The
/// threads/pool fields are excluded: they change wall time, never winners.
std::string optionsFingerprint(const OptimizerOptions& o) {
  std::ostringstream os;
  os << std::setprecision(17) << 'o' << o.exactForestMaxN << ':'
     << o.orchestrateTop << ";h" << o.heuristics.restarts << ':'
     << o.heuristics.iterations << ':' << o.heuristics.initialTemperature
     << ':' << o.heuristics.seed << ";r" << o.orchestrator.order.exactCap
     << ':' << o.orchestrator.order.localSearchIters << ':'
     << o.orchestrator.order.localSearchRestarts << ':'
     << o.orchestrator.order.seed << ':' << o.orchestrator.order.upperBound
     << ";x" << o.orchestrator.outorder.repairIters << ':'
     << o.orchestrator.outorder.restarts << ':'
     << o.orchestrator.outorder.bisectSteps << ':'
     << o.orchestrator.outorder.seed;
  if (o.registry != nullptr) {
    if (o.registry->name().empty()) {
      // An unnamed portfolio is process-local: pointer identity keeps two
      // anonymous registries distinct even when their source names
      // collide (naming is the explicit opt-in to portable keys).
      os << ";reg" << static_cast<const void*>(o.registry);
    } else {
      // A named portfolio's *portable* identity — name plus ordered
      // source-name list, never the pointer — is part of the key. A
      // portfolio indistinguishable from the built-in is canonicalized
      // away, so explicitly passing (a copy of) the built-in keys
      // identically to the default.
      static const std::string builtinFp =
          portfolioFingerprint(CandidateRegistry::builtin());
      const std::string fp = portfolioFingerprint(*o.registry);
      if (fp != builtinFp) os << ";reg:" << fp;
    }
  }
  return os.str();
}

}  // namespace

PlanEngine::PlanEngine(EngineConfig config)
    : config_(config),
      cache_(config.cacheCapacity),
      results_(config.resultCacheCapacity) {
  if (config_.pool != nullptr) {
    pool_ = config_.pool;
  } else if (config_.threads == 1) {
    pool_ = nullptr;  // fully serial engine
  } else if (config_.threads == 0) {
    ThreadPool& sharedPool = ThreadPool::shared();
    pool_ = sharedPool.threadCount() > 1 ? &sharedPool : nullptr;
  } else {
    ownedPool_ = std::make_unique<ThreadPool>(config_.threads);
    pool_ = ownedPool_.get();
  }
}

bool PlanEngine::resultCacheable(const PlanRequest& request) const {
  // The full-result store is only sound when the request's key describes
  // the portfolio that actually solves it, beyond this call:
  //   * an *unnamed* request-level portfolio is keyed by pointer, which is
  //     only guaranteed live (and unique) while the caller's registry
  //     exists — sound for in-batch dedup, unsound for a store that
  //     outlives the call or is persisted;
  //   * an engine-level EngineConfig::registry override changes the
  //     effective portfolio of default requests while their key still
  //     reads "builtin" — caching (or serving) under that key would hand
  //     one portfolio's winner to another's request.
  const CandidateRegistry* reg = request.options.registry;
  if (reg == nullptr) return config_.registry == nullptr;
  return !reg->name().empty();
}

ThreadPool* PlanEngine::poolFor(const OptimizerOptions& opt) const {
  if (opt.threads == 1) return nullptr;  // the --serial escape hatch
  if (opt.pool != nullptr) return opt.pool;
  return pool_;
}

OptimizedPlan PlanEngine::solveOne(const Application& app, CommModel m,
                                   Objective obj, const OptimizerOptions& opt,
                                   double externalBound) {
  ThreadPool* pool = poolFor(opt);
  const CandidateRegistry& registry =
      opt.registry != nullptr
          ? *opt.registry
          : (config_.registry != nullptr ? *config_.registry
                                         : CandidateRegistry::builtin());
  HeuristicOptions heuristics = opt.heuristics;
  heuristics.pool = pool;  // anneal restarts share the engine pool
  const CandidateContext ctx{app, m, obj, opt.exactForestMaxN, heuristics};

  OptimizedPlan best;
  best.value = std::numeric_limits<double>::infinity();

  // 1. Fan candidate generation out across the applicable sources.
  std::vector<const CandidateSource*> active;
  for (const auto& source : registry.sources()) {
    if (source->applicable(ctx)) active.push_back(source.get());
  }
  best.stats.sourcesRun = active.size();
  auto proposals = parallelMap<std::vector<ExecutionGraph>>(
      pool, active.size(),
      [&](std::size_t i) { return active[i]->generate(ctx); });

  // 2. Flatten in registry order (the deterministic tie-break), drop graphs
  //    that do not respect the application, and dedup within the request.
  //    Dedup is request-local on purpose: the shared cache amortizes
  //    *scores* across requests, never a request's own candidate set.
  std::unordered_set<std::string> seen;
  std::vector<Candidate> candidates;
  for (std::size_t i = 0; i < proposals.size(); ++i) {
    for (ExecutionGraph& g : proposals[i]) {
      ++best.stats.generated;
      if (!g.respects(app)) continue;
      std::string sig = graphSignature(g);
      if (!seen.insert(sig).second) {
        ++best.stats.duplicates;
        continue;
      }
      Candidate c;
      c.signature = std::move(sig);
      c.graph = std::move(g);
      c.strategy = std::string(active[i]->name());
      candidates.push_back(std::move(c));
    }
  }
  best.stats.unique = candidates.size();

  // 3. Surrogate-score through the shared cross-request cache. The probe
  //    and fill passes are serial and index-ordered, so LRU touch/eviction
  //    order is deterministic for a serial request sequence (concurrent
  //    requests interleave passes, which can reorder evictions but never
  //    change the memoized values); only the missing scores are computed,
  //    fanned out over the pool.
  const std::string keyPrefix = applicationSignature(app) + '#' +
                                std::string(name(m)) + '#' +
                                std::string(name(obj)) + '#';
  std::vector<std::string> keys(candidates.size());
  std::vector<std::size_t> misses;
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    keys[k] = keyPrefix + candidates[k].signature;
    if (const auto hit = cache_.lookup(keys[k])) {
      candidates[k].surrogate = *hit;
      ++best.stats.sharedHits;
    } else {
      misses.push_back(k);
    }
  }
  const auto scores =
      parallelMap<double>(pool, misses.size(), [&](std::size_t i) {
        return surrogateScore(app, candidates[misses[i]].graph, m, obj);
      });
  for (std::size_t i = 0; i < misses.size(); ++i) {
    candidates[misses[i]].surrogate = scores[i];
    best.stats.evictions += cache_.insert(keys[misses[i]], scores[i]);
  }
  best.stats.scoreCacheHits = best.stats.duplicates + best.stats.sharedHits;

  // 4. Deterministic ranking: surrogate, then strategy name, then proposal
  //    order (stable sort preserves it).
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     if (a.surrogate != b.surrogate) {
                       return a.surrogate < b.surrogate;
                     }
                     return a.strategy < b.strategy;
                   });

  // 5. Orchestrate the top-K. The best-ranked candidate runs first and
  //    unbounded; its achieved value is threaded into the remaining
  //    orchestrations as an incumbent upper bound, so order-search solves
  //    that provably cannot beat it abort early. The bound is fixed before
  //    the parallel region, which keeps pooled and serial runs identical.
  OrchestratorOptions orch = opt.orchestrator;
  orch.order.pool = pool;
  orch.outorder.pool = pool;
  orch.outorder.inorder.pool = pool;  // the OUTORDER path's INORDER seed
  // Bound-abort accounting, split by phase: order searches (the plain
  // INORDER/latency enumerations and the OUTORDER seed's derived bound)
  // count as seed-phase; OUTORDER repair bisections cut short by the
  // final-value incumbent count as repair-phase. orchestrate() threads the
  // final-value incumbent (order.upperBound) into the OUTORDER search,
  // which derives its own sound seed bound from it — see
  // src/sched/outorder.hpp.
  std::atomic<std::size_t> seedAborts{0};
  std::atomic<std::size_t> repairAborts{0};
  orch.order.boundAborts = &seedAborts;
  orch.outorder.seedBoundAborts = &seedAborts;
  orch.outorder.repairBoundAborts = &repairAborts;
  // Memory-discipline counters, aggregated once per search (not per probe).
  std::atomic<std::size_t> probes{0};
  std::atomic<std::size_t> scratchAllocs{0};
  std::atomic<std::size_t> arenaHighWater{0};
  orch.order.evalProbes = &probes;
  orch.order.scratchHeapAllocs = &scratchAllocs;
  orch.order.arenaBytesHighWater = &arenaHighWater;
  orch.outorder.evalProbes = &probes;
  orch.outorder.scratchHeapAllocs = &scratchAllocs;
  orch.outorder.arenaBytesHighWater = &arenaHighWater;
  orch.outorder.inorder.evalProbes = &probes;
  orch.outorder.inorder.scratchHeapAllocs = &scratchAllocs;
  orch.outorder.inorder.arenaBytesHighWater = &arenaHighWater;
  const std::size_t top = std::min(opt.orchestrateTop, candidates.size());
  best.stats.orchestrated = top;

  // Early tightening: the candidate that runs first (the "lead") is the
  // one whose source has the highest observed win rate on this engine, so
  // the incumbent is as strong as history can make it before the tail
  // sources start. Strictly an *execution-order* choice: the reduce below
  // stays index-ordered over the step-4 ranking, so winners — and every
  // per-request stat except the abort counters — are independent of the
  // lead. Ties (including the empty-history engine, where every rate is
  // 0) keep the lowest index, i.e. the step-4 rank-0 candidate.
  std::size_t lead = 0;
  if (top > 1) {
    const std::lock_guard<std::mutex> lock(sourceMu_);
    double bestRate = -1.0;
    for (std::size_t k = 0; k < top; ++k) {
      double rate = 0.0;
      if (const auto it = sourceTallies_.find(candidates[k].strategy);
          it != sourceTallies_.end() && it->second.solves > 0) {
        rate = static_cast<double>(it->second.wins) /
               static_cast<double>(it->second.solves);
      }
      if (rate > bestRate) {
        bestRate = rate;
        lead = k;
      }
    }
  }

  std::vector<Orchestration> results(top);
  if (top > 0) {
    // A cross-engine incumbent for this request (the shared BoundBoard /
    // store, exact- or validated near-key) bounds even the lead, which the
    // within-request incumbent never can. Sound for an exact key because
    // the board value is this key's own deterministic winner value w: no
    // candidate achieves less, every candidate achieving exactly w is kept
    // bit-exact by the feasibility probe, and dominated solves (the
    // lead's included — it may return infinity and lose) abort without
    // ever having been able to win. Sound for a validated near key because
    // the bound is an achievable value under this request's own
    // parameters. Winners cannot change; only the abort counters grow —
    // and the post-reduce re-run below makes even an unsound bound
    // winner-preserving.
    OrchestratorOptions first = orch;
    first.order.upperBound = std::min(orch.order.upperBound, externalBound);
    results[lead] = orchestrate(app, candidates[lead].graph, m, obj, first);
  }
  if (top > 1) {
    OrchestratorOptions bounded = orch;
    bounded.order.upperBound =
        std::min({orch.order.upperBound, results[lead].result.value,
                  externalBound});
    auto rest = parallelMap<Orchestration>(pool, top - 1, [&](std::size_t j) {
      const std::size_t k = j < lead ? j : j + 1;
      return orchestrate(app, candidates[k].graph, m, obj, bounded);
    });
    for (std::size_t j = 0; j + 1 < top; ++j) {
      const std::size_t k = j < lead ? j : j + 1;
      results[k] = std::move(rest[j]);
    }
  }
  best.stats.seedBoundAborts = seedAborts.load(std::memory_order_relaxed);
  best.stats.repairBoundAborts = repairAborts.load(std::memory_order_relaxed);
  best.stats.boundAborts =
      best.stats.seedBoundAborts + best.stats.repairBoundAborts;
  best.stats.evalProbes = probes.load(std::memory_order_relaxed);
  best.stats.scratchHeapAllocs = scratchAllocs.load(std::memory_order_relaxed);
  best.stats.arenaBytesHighWater =
      arenaHighWater.load(std::memory_order_relaxed);

  // 6. Deterministic winner: strictly lower value wins; ties keep the
  //    earliest candidate in the ranking of step 4.
  for (std::size_t k = 0; k < top; ++k) {
    if (results[k].result.value < best.value) {
      best.value = results[k].result.value;
      best.plan = {std::move(candidates[k].graph),
                   std::move(results[k].result.ol)};
      best.surrogate = candidates[k].surrogate;
      best.strategy = candidates[k].strategy;
    }
  }

  // Belt-and-braces for external bounds: a *sound* externalBound (an exact
  // key's own winner value, or a value achievable under this request's
  // parameters) can never end the reduce above itself — some candidate
  // achieves it. If the reduce DID end above a finite external bound, the
  // bound was too tight (it pruned the true winner), so re-run this one
  // solve unbounded: the re-run is byte-for-byte the reference solve, and
  // its stats (which describe the work that produced the returned winner)
  // replace the aborted attempt's.
  if (top > 0 && std::isfinite(externalBound) &&
      !(best.value <= externalBound)) {
    return solveOne(app, m, obj, opt,
                    std::numeric_limits<double>::infinity());
  }

  // Feed the per-source tallies (the early-tightening signal). Counted
  // after the re-run guard so a discarded bounded attempt never skews the
  // history that future lead choices read.
  {
    const std::lock_guard<std::mutex> lock(sourceMu_);
    for (std::size_t k = 0; k < top; ++k) {
      SourceTally& tally = sourceTallies_[candidates[k].strategy];
      ++tally.solves;
      if (!std::isfinite(results[k].result.value)) ++tally.aborts;
    }
    if (std::isfinite(best.value)) ++sourceTallies_[best.strategy].wins;
  }
  return best;
}

double PlanEngine::validatedWarmBound(const PlanRequest& r,
                                      const OptimizedPlan& neighbor) {
  // A neighbor's VALUE is meaningless under this request's parameters; its
  // ORDERS might still be good. Re-run the exact single-order evaluator on
  // them under r's costs/selectivities: whatever comes back is achievable
  // for r, hence a sound incumbent. Anything short of that certainty — a
  // size mismatch, a graph that misses a precedence, orders the evaluator
  // rejects — is "no information" (+inf), never a guess.
  constexpr double inf = std::numeric_limits<double>::infinity();
  try {
    if (!std::isfinite(neighbor.value)) return inf;
    const ExecutionGraph& graph = neighbor.plan.graph;
    if (graph.size() != r.app.size() || !graph.respects(r.app)) return inf;
    const PortOrders orders = ordersFromOperationList(graph, neighbor.plan.ol);
    // An INORDER-valid schedule is OUTORDER-achievable (OUTORDER only
    // relaxes sequencing), so the INORDER evaluator bounds both period
    // models; one-port latency is model-agnostic already. A wrapped
    // OUTORDER OL may induce cyclic orders — the evaluator answers nullopt
    // and the warm start simply yields nothing.
    if (r.model == CommModel::InOrder || r.model == CommModel::OutOrder) {
      if (r.objective == Objective::Period) {
        const auto probe = inorderPeriodForOrders(r.app, graph, orders);
        return probe ? probe->value : inf;
      }
      if (r.objective == Objective::Latency) {
        const auto probe = oneportLatencyForOrders(r.app, graph, orders);
        return probe ? probe->value : inf;
      }
    }
    return inf;
  } catch (...) {
    return inf;
  }
}

std::vector<std::pair<std::string, PlanEngine::SourceTally>>
PlanEngine::sourceStats() const {
  std::vector<std::pair<std::string, SourceTally>> out;
  const std::lock_guard<std::mutex> lock(sourceMu_);
  out.reserve(sourceTallies_.size());
  for (const auto& [source, tally] : sourceTallies_) {
    out.emplace_back(source, tally);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

OptimizedPlan PlanEngine::optimize(const PlanRequest& request) {
  // One code path: a single request is a one-element batch, so dedup,
  // result-cache, incumbent and stats accounting cannot drift between the
  // two entry points.
  return std::move(
      optimizeBatch(std::span<const PlanRequest>(&request, 1)).front());
}

OptimizedPlan PlanEngine::optimize(const Application& app, CommModel m,
                                   Objective obj,
                                   const OptimizerOptions& opt) {
  const PlanRequest request{app, m, obj, opt};
  return optimize(request);
}

std::vector<OptimizedPlan> PlanEngine::optimizeBatch(
    std::span<const PlanRequest> requests) {
  const std::size_t n = requests.size();
  std::vector<OptimizedPlan> out(n);

  // Cross-request dedup: members with identical canonical keys collapse
  // onto the first occurrence's solve.
  std::unordered_map<std::string, std::size_t> firstOf;
  std::vector<std::string> keys(n);
  std::vector<std::size_t> representative(n);
  std::vector<std::size_t> distinct;
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = dedupKey(requests[i]);
    const auto [it, inserted] = firstOf.emplace(keys[i], i);
    representative[i] = it->second;
    if (inserted) distinct.push_back(i);
  }

  // Serve whole solves from the full-result store where possible. The
  // probe pass is serial and index-ordered (like the score cache's), so
  // LRU order stays deterministic for serial request sequences; a hit is
  // sound because a solve is a pure function of its key.
  std::vector<std::size_t> pending;  // local misses, in distinct order
  pending.reserve(distinct.size());
  for (const std::size_t i : distinct) {
    if (config_.cacheFullResults && resultCacheable(requests[i])) {
      if (const auto hit = results_.lookup(keys[i])) {
        out[i] = *hit;  // the plan copy happens outside the cache lock
        out[i].stats.resultCacheHits = 1;
        continue;
      }
    }
    pending.push_back(i);
  }

  // Local misses fall through to the fleet-shared remote store (second
  // level) in ONE pipelined multi-GET: a winner another host already
  // computed is served wholesale — and cached locally — and even a remote
  // miss can carry the fleet's incumbent bound for the key, which prunes
  // the solve below exactly like a BoundBoard entry (it IS this key's own
  // winner value, posted by whichever host completed it). With full-result
  // caching off the store is asked for bounds only — no winner payloads
  // travel just to be discarded. Transport failures degrade to misses.
  std::unordered_map<std::size_t, RemoteResultStore::Lookup> remote;
  if (config_.resultStore != nullptr) {
    std::vector<std::size_t> ask;
    std::vector<std::string> askKeys;
    for (const std::size_t i : pending) {
      if (resultCacheable(requests[i])) {
        ask.push_back(i);
        askKeys.push_back(keys[i]);
      }
    }
    if (!ask.empty()) {
      auto lookups =
          config_.resultStore->getMany(askKeys, config_.cacheFullResults);
      for (std::size_t k = 0; k < ask.size(); ++k) {
        remote.emplace(ask[k], std::move(lookups[k]));
      }
    }
  }

  std::vector<std::size_t> misses;
  std::vector<double> externalBounds;
  misses.reserve(pending.size());
  externalBounds.reserve(pending.size());
  for (const std::size_t i : pending) {
    double external = std::numeric_limits<double>::infinity();
    if (const auto it = remote.find(i); it != remote.end()) {
      if (it->second.plan != nullptr && config_.cacheFullResults) {
        out[i] = *it->second.plan;
        out[i].stats = EngineStats{};
        out[i].stats.resultCacheHits = 1;
        // The wire cost of being served wholesale: this key's GET frame
        // and its winner-carrying reply.
        out[i].stats.storeBytesSent = it->second.bytesSent;
        out[i].stats.storeBytesReceived = it->second.bytesReceived;
        (void)results_.insert(keys[i], out[i]);
        continue;
      }
      external = it->second.bound;
    }
    // Fix every external incumbent in this serial, index-ordered pass —
    // before the parallel region — so pooled and serial batches consult
    // board and store identically. Exact key first (the board value IS
    // this key's winner); on an exact miss, a near-key warm start: fetch
    // the most recent winner sharing this request's structural prefix
    // (board hint + local results, then the remote store) and re-evaluate
    // its orders under THIS request's parameters. Only that certified
    // achievable value — never the neighbor's value or plan — joins the
    // incumbent min.
    const PlanRequest& r = requests[i];
    if (resultCacheable(r)) {
      if (config_.boundBoard != nullptr) {
        external = std::min(
            external,
            config_.boundBoard->lookup(keys[i]).value_or(
                std::numeric_limits<double>::infinity()));
      }
      if (!std::isfinite(external) &&
          (config_.boundBoard != nullptr || config_.resultStore != nullptr)) {
        const std::string prefix = structuralPrefixOfKey(keys[i]);
        std::shared_ptr<const OptimizedPlan> neighbor;
        if (config_.boundBoard != nullptr) {
          if (const auto nearKey = config_.boundBoard->nearestKey(prefix);
              nearKey && *nearKey != keys[i]) {
            neighbor = results_.lookup(*nearKey);
          }
        }
        if (neighbor == nullptr && config_.resultStore != nullptr) {
          auto lookup = config_.resultStore->getNear(prefix);
          neighbor = std::move(lookup.plan);
          remote[i].bytesSent += lookup.bytesSent;
          remote[i].bytesReceived += lookup.bytesReceived;
        }
        if (neighbor != nullptr) {
          external = std::min(external, validatedWarmBound(r, *neighbor));
        }
      }
    }
    misses.push_back(i);
    externalBounds.push_back(external);
  }

  // Fan the remaining solves out over the engine pool. Each solve nests
  // its own fan-out on the same workers; the pool's helping discipline
  // makes nested regions deadlock-free. Every external incumbent (board,
  // store, near-key warm start) was fixed in the serial pass above, so
  // the parallel region only reads.
  auto solved =
      parallelMap<OptimizedPlan>(pool_, misses.size(), [&](std::size_t k) {
        const PlanRequest& r = requests[misses[k]];
        return solveOne(r.app, r.model, r.objective, r.options,
                        externalBounds[k]);
      });
  std::vector<std::string> publishKeys;
  std::vector<const OptimizedPlan*> publishPlans;
  std::vector<std::size_t> publishIdx;
  for (std::size_t k = 0; k < misses.size(); ++k) {
    const std::size_t i = misses[k];
    out[i] = std::move(solved[k]);
    // A miss that still probed the store pays that probe's wire cost (its
    // GET frame and the bound-carrying reply).
    if (const auto it = remote.find(i); it != remote.end()) {
      out[i].stats.storeBytesSent += it->second.bytesSent;
      out[i].stats.storeBytesReceived += it->second.bytesReceived;
    }
    // Result-store evictions are engine-level state, reported through
    // resultCacheStats() — EngineStats::evictions stays score-cache-only.
    if (config_.cacheFullResults && resultCacheable(requests[i])) {
      (void)results_.insert(keys[i], out[i]);
    }
    if (config_.boundBoard != nullptr && resultCacheable(requests[i])) {
      config_.boundBoard->publish(keys[i], out[i].value);
    }
    if (config_.resultStore != nullptr && resultCacheable(requests[i])) {
      publishKeys.push_back(keys[i]);
      publishPlans.push_back(&out[i]);
      publishIdx.push_back(i);
    }
  }
  // Publish to the fleet store last, in one pipelined putMany (mirroring
  // the getMany probe): each PUT carries the winner AND its value (the
  // store posts it to the fleet bound board), so any host's later
  // same-key solve is served or tightened — and a cold batch's publishes
  // pay ~1 round trip, not one per solve. Each PUT's wire cost lands on
  // the request that published it (the representative — duplicates below
  // carry no bytes, so summing a batch counts every wire byte once).
  if (!publishKeys.empty()) {
    std::vector<RemoteResultStore::OpBytes> putBytes;
    config_.resultStore->putMany(publishKeys, publishPlans, &putBytes);
    for (std::size_t k = 0; k < publishIdx.size(); ++k) {
      out[publishIdx[k]].stats.storeBytesSent += putBytes[k].sent;
      out[publishIdx[k]].stats.storeBytesReceived += putBytes[k].received;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (representative[i] != i) {
      out[i] = out[representative[i]];
      // The work is accounted once, at the representative: a duplicate
      // carries only its cross-request marker so that summing stats over
      // the batch never double-counts hits, aborts or evictions.
      out[i].stats = EngineStats{};
      out[i].stats.crossRequestHits = 1;
    }
  }
  return out;
}

CandidateCache::Stats PlanEngine::cacheStats() const { return cache_.stats(); }

std::size_t PlanEngine::cacheSize() const { return cache_.size(); }

void PlanEngine::saveCache(std::ostream& os) const {
  writeCandidateCache(os, cache_);
}

void PlanEngine::loadCache(std::istream& is) {
  readCandidateCache(is, cache_);
}

ResultCache::Stats PlanEngine::resultCacheStats() const {
  return results_.stats();
}

std::size_t PlanEngine::resultCacheSize() const { return results_.size(); }

void PlanEngine::saveResults(std::ostream& os, std::size_t budget) const {
  writeResultCache(os, results_, budget);
}

void PlanEngine::loadResults(std::istream& is) {
  readResultCache(is, results_);
}

std::string PlanEngine::requestKey(const PlanRequest& request) {
  return applicationSignature(request.app) + '#' +
         std::string(name(request.model)) + '#' +
         std::string(name(request.objective)) + '#' +
         optionsFingerprint(request.options);
}

std::string PlanEngine::dedupKey(const PlanRequest& request) const {
  std::string key = requestKey(request);
  if (config_.registry != nullptr && request.options.registry == nullptr) {
    // Solved by the engine-level override, not the "builtin" the static
    // key describes: keep it apart from true builtin-portfolio requests.
    key += ";engreg";
  }
  return key;
}

PlanEngine& PlanEngine::shared() {
  static PlanEngine engine;
  return engine;
}

std::vector<OptimizedPlan> optimizePlanBatch(
    std::span<const PlanRequest> requests) {
  return PlanEngine::shared().optimizeBatch(requests);
}

}  // namespace fsw
