#include "src/serve/bound_board.hpp"

#include <cmath>

namespace fsw {

void BoundBoard::publish(const std::string& key, double value) {
  if (!std::isfinite(value)) return;
  // The inner cache's own hit/miss counters are ignored — the board keeps
  // its domain counters (published/tightened/consulted/hits) itself.
  // lookup-then-insert is not atomic across publishers, which is safe
  // precisely because of the board's key discipline: every publisher of a
  // key posts that key's one deterministic winner value, so any
  // interleaving stores the same number (the min below is belt-and-braces,
  // never a semantic branch).
  const auto posted = bounds_.lookup(key);
  const bool tightens = !posted.has_value() || value < *posted;
  if (tightens) (void)bounds_.insert(key, value);
  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.published;
  if (tightens) ++stats_.tightened;
}

std::optional<double> BoundBoard::lookup(const std::string& key) {
  const auto posted = bounds_.lookup(key);
  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.consulted;
  if (posted.has_value()) ++stats_.hits;
  return posted;
}

std::size_t BoundBoard::size() const { return bounds_.size(); }

BoundBoard::Stats BoundBoard::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace fsw
