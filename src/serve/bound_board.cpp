#include "src/serve/bound_board.hpp"

#include <cmath>
#include <string_view>

namespace fsw {

std::string structuralPrefixOfKey(const std::string& key) {
  // Key shape (PlanEngine::requestKey): applicationSignature '#' model '#'
  // objective '#' optionsFingerprint, where applicationSignature is
  //   a<n> (';' <cost> ':' <selectivity>)*n (";p" <from> '>' <to>)*
  // The structural prefix keeps "a<n>", the ";p..." precedence segments and
  // everything from the first '#' on, dropping the parametric
  // cost:selectivity segments. Signatures never contain '#', so the first
  // '#' ends the application part unambiguously.
  const std::size_t hash = key.find('#');
  if (hash == std::string::npos) return key;
  std::string prefix;
  prefix.reserve(key.size());
  std::size_t pos = 0;
  while (pos < hash) {
    std::size_t next = key.find(';', pos);
    if (next == std::string::npos || next > hash) next = hash;
    const std::string_view seg(key.data() + pos, next - pos);
    // Segments start with 'a' (the node count), 'p' (a precedence), or a
    // number (a cost:selectivity pair — the part to drop).
    if (!seg.empty() && (seg.front() == 'a' || seg.front() == 'p')) {
      prefix.append(seg);
      prefix.push_back(';');
    }
    pos = next + 1;
  }
  prefix.append(key, hash, std::string::npos);
  return prefix;
}

void BoundBoard::publish(const std::string& key, double value) {
  if (!std::isfinite(value)) return;
  // The inner cache's own hit/miss counters are ignored — the board keeps
  // its domain counters (published/tightened/consulted/hits) itself.
  // lookup-then-insert is not atomic across publishers, which is safe
  // precisely because of the board's key discipline: every publisher of a
  // key posts that key's one deterministic winner value, so any
  // interleaving stores the same number (the min below is belt-and-braces,
  // never a semantic branch).
  const auto posted = bounds_.lookup(key);
  const bool tightens = !posted.has_value() || value < *posted;
  if (tightens) (void)bounds_.insert(key, value);
  // Index the key under its structural prefix for near-key warm starts.
  // "Most recent publish wins" is the whole policy: concurrent posters of
  // different keys race benignly (the table names a hint to re-validate,
  // never a bound), and re-posts of the same key are idempotent.
  (void)near_.insert(structuralPrefixOfKey(key), key);
  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.published;
  if (tightens) ++stats_.tightened;
}

std::optional<double> BoundBoard::lookup(const std::string& key) {
  const auto posted = bounds_.lookup(key);
  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.consulted;
  if (posted.has_value()) ++stats_.hits;
  return posted;
}

std::optional<std::string> BoundBoard::nearestKey(const std::string& prefix) {
  const auto named = near_.lookup(prefix);
  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.nearConsulted;
  if (named.has_value()) ++stats_.nearHits;
  return named;
}

std::size_t BoundBoard::size() const { return bounds_.size(); }

BoundBoard::Stats BoundBoard::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace fsw
