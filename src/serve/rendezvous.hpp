// Rendezvous (highest-random-weight) consistent hashing — the one routing
// function of the distributed serving layer. ShardedPlanEngine picks the
// argmax slot for in-process shards; PlanRouter ranks *all* slots so a
// request can fail over to the next-ranked host when its first choice
// drops. Both views are pure functions of (key, slot count): identical
// across processes and runs, which is what lets a client-side router, a
// far-side sharded engine and a persisted shard-set artifact all agree on
// where a key lives — and the rendezvous property guarantees that changing
// the slot count remaps only ~1/N of the key space.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fsw {

/// The rendezvous score of (key, slot): a FNV-1a key hash decorrelated per
/// slot by a SplitMix64 finalizer. Higher wins.
[[nodiscard]] std::uint64_t rendezvousScore(const std::string& key,
                                            std::size_t slot);

/// The winning slot among `slots` (argmax score; 0 when slots <= 1).
[[nodiscard]] std::size_t rendezvousPick(const std::string& key,
                                         std::size_t slots);

/// Every slot ranked by descending score (ties broken by lower index, for
/// a total order): rank[0] is rendezvousPick, rank[1] is the failover
/// target when rank[0] is down, and so on.
[[nodiscard]] std::vector<std::size_t> rendezvousRank(const std::string& key,
                                                      std::size_t slots);

}  // namespace fsw
