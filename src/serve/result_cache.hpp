// The full-result store of the serving layer: requestKey -> OptimizedPlan.
//
// The score cache (CandidateCache) amortizes *surrogate evaluations*; this
// cache amortizes entire solves. Because a solve is a pure function of its
// request key — the key fingerprints every value-affecting knob, including
// the portfolio — a stored winner can be served wholesale to a repeated
// request with zero new orchestrations, in-process or across runs
// (writeResultCache / readResultCache in src/io/serialize treat it as a
// versioned, size-budgeted on-disk artifact).
//
// Thread-safe, strict-LRU bounded like CandidateCache — both are thin
// domain wrappers over the one LruCache implementation in
// src/common/lru_cache.hpp, so eviction stays a deterministic function of
// the operation sequence and a serial request sequence always evicts
// identically. Entries are immutable shared snapshots
// (shared_ptr<const OptimizedPlan>), so the cache-wide mutex only ever
// guards pointer and list operations — never an O(plan-size) copy — and
// concurrent warm-path lookups do not serialize on plan copying.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/lru_cache.hpp"
#include "src/opt/optimizer.hpp"

namespace fsw {

class ResultCache {
 public:
  struct Stats {
    std::size_t hits = 0;       ///< lookups that served a stored winner
    std::size_t misses = 0;     ///< lookups that found nothing
    std::size_t evictions = 0;  ///< LRU entries dropped at the capacity bound
  };

  using Entry = std::shared_ptr<const OptimizedPlan>;

  /// `capacity` caps the retained winners (0 = unbounded).
  explicit ResultCache(std::size_t capacity = 0) : lru_(capacity) {}

  /// The stored winner for `key` (nullptr on a miss), touching its LRU
  /// slot. The stored plan's stats are empty — a cached hit did no work;
  /// the engine copies the snapshot outside the lock and stamps
  /// EngineStats::resultCacheHits on its copy.
  [[nodiscard]] Entry lookup(const std::string& key);

  /// Stores a snapshot of `plan` under `key` with its stats cleared
  /// (touching the slot if already present) and returns how many entries
  /// the capacity bound evicted (0 or 1). Counts nothing — misses are
  /// counted by the failed lookup, so bulk restores do not skew the hit
  /// ratio.
  std::size_t insert(const std::string& key, const OptimizedPlan& plan);

  /// Stored entries, least recently used first (the save/load order).
  [[nodiscard]] std::vector<std::pair<std::string, Entry>> snapshot() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept {
    return lru_.capacity();
  }
  [[nodiscard]] Stats stats() const;

 private:
  LruCache<Entry> lru_;
};

}  // namespace fsw
