// PlanServer: the asynchronous request-lifecycle layer over PlanEngine.
//
// The engine is a blocking batch call: callers assemble a batch, wait for
// optimizeBatch, and receive every result at once. A serving process sees
// the opposite shape — requests arrive one at a time from many clients,
// and the *server* must decide admission, ordering and batching. The
// PlanServer owns that lifecycle:
//
//   submit -> admit -> coalesce -> batch -> solve -> stream
//
//   * submit(request, priority) returns a std::future<OptimizedPlan>
//     immediately; drain threads assemble admitted work into batches of at
//     most maxBatch and hand them to PlanEngine::optimizeBatch;
//   * admission is bounded: at most maxQueueDepth queued solves and
//     maxInFlight solving ones. Over the queue bound, Block waits for
//     space while Reject fails the future fast (RejectedSubmit);
//   * identical requests coalesce: a submit whose requestKey matches a
//     queued *or in-flight* solve attaches to it instead of queueing new
//     work — it consumes no queue space, and one solve fulfills every
//     attached future;
//   * priorities order the queue (higher drains first, FIFO within a
//     priority; a coalescing submit can raise a queued solve's priority);
//   * onResult streams every completed solve to a callback as its batch
//     finishes, before the solve's futures are fulfilled;
//   * drain() blocks until everything admitted so far has completed;
//     shutdown() additionally rejects subsequent submits and stops the
//     drain threads once the queue empties — admitted work is never
//     dropped. The destructor shuts down gracefully.
//
// Determinism contract, inherited from the engine: every fulfilled future
// holds a winner bit-identical to a serial optimizePlan of the same
// request — the server reorders *when* pure solves run, never their
// inputs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/serve/plan_engine.hpp"

namespace fsw {

/// A submit refused at admission: the Reject policy saw a full queue, or
/// the server had been shut down. Delivered through the returned future.
class RejectedSubmit : public std::runtime_error {
 public:
  explicit RejectedSubmit(const std::string& what)
      : std::runtime_error(what) {}
};

/// What submit does when the queue is at maxQueueDepth.
enum class AdmissionPolicy {
  Block,   ///< wait for queue space (a shutdown rejects blocked submits)
  Reject,  ///< fail fast: the future throws RejectedSubmit
};

struct ServerConfig {
  /// Serving backend (not owned): any PlanSolver — a PlanEngine, a
  /// ShardedPlanEngine, or a custom spine. Takes precedence over `engine`.
  PlanSolver* solver = nullptr;
  /// Serving engine (not owned); consulted when `solver` is null. If both
  /// are null the server owns a private engine built from `engineConfig`.
  PlanEngine* engine = nullptr;
  EngineConfig engineConfig{};
  AdmissionPolicy admission = AdmissionPolicy::Block;
  /// Queued-solve bound enforced at admission (0 = unbounded). Coalesced
  /// submits never count against it — they queue no new work.
  std::size_t maxQueueDepth = 256;
  /// Solves concurrently handed to the engine, across all drain threads
  /// (0 = drainThreads * maxBatch, the natural bound).
  std::size_t maxInFlight = 0;
  /// Solves drained into one optimizeBatch call (floored to 1).
  std::size_t maxBatch = 8;
  /// Concurrent drain loops (floored to 1). More than one lets a fresh
  /// batch start while an earlier one is still solving.
  std::size_t drainThreads = 1;
  /// Streaming result path: invoked once per completed solve, from a
  /// drain thread, in batch order, before the solve's futures are
  /// fulfilled. Must be thread-safe when drainThreads > 1. If the
  /// callback throws, that solve's futures are failed with its exception
  /// (the drain thread itself never unwinds).
  std::function<void(const PlanRequest&, const OptimizedPlan&)> onResult;
};

/// The asynchronous serving front end. Thread-safe: any number of threads
/// may submit concurrently; drain() and shutdown() may race with submits.
class PlanServer {
 public:
  struct Stats {
    std::size_t submitted = 0;  ///< submit() calls observed
    std::size_t admitted = 0;   ///< submits that queued a new solve
    std::size_t coalesced = 0;  ///< submits attached to an existing solve
    std::size_t rejected = 0;   ///< submits refused (policy or shutdown)
    std::size_t batches = 0;    ///< optimizeBatch calls issued
    std::size_t completed = 0;  ///< solves finished (one per admitted)
  };

  explicit PlanServer(ServerConfig config = {});
  ~PlanServer();  ///< graceful: drains admitted work, then stops

  PlanServer(const PlanServer&) = delete;
  PlanServer& operator=(const PlanServer&) = delete;

  /// Queues (or coalesces) one request and returns its future. Higher
  /// `priority` drains earlier; ties drain in submit order. On rejection
  /// the future throws RejectedSubmit from get().
  [[nodiscard]] std::future<OptimizedPlan> submit(PlanRequest request,
                                                 int priority = 0);

  /// Blocks until every solve admitted *before this call* has completed,
  /// streamed and fulfilled its futures. A snapshot, not quiescence:
  /// submits admitted while draining do not extend the wait, so periodic
  /// flush points return even under continuous traffic. Submits stay
  /// open.
  void drain();

  /// Graceful shutdown: rejects subsequent (and blocked) submits, lets the
  /// drain threads finish everything already admitted, and joins them.
  /// Idempotent; concurrent callers block until the shutdown completes.
  void shutdown();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t queueDepth() const;
  [[nodiscard]] std::size_t inFlight() const;
  /// The serving backend (one solve spine across single, batched, sharded
  /// and remote paths).
  [[nodiscard]] PlanSolver& solver() noexcept { return *solver_; }
  /// The backing PlanEngine, or nullptr when a non-engine solver serves
  /// this server (e.g. a ShardedPlanEngine — reach its shards directly).
  [[nodiscard]] PlanEngine* engine() noexcept { return engine_; }

 private:
  /// One admitted unit of work; every coalesced submit parks a promise in
  /// `waiters`.
  struct Solve {
    PlanRequest request;
    int priority = 0;
    std::uint64_t seq = 0;
    std::vector<std::promise<OptimizedPlan>> waiters;
  };

  void drainLoop();
  [[nodiscard]] std::size_t inFlightLimit() const noexcept;

  ServerConfig config_;
  std::unique_ptr<PlanEngine> ownedEngine_;
  PlanEngine* engine_ = nullptr;  ///< backing engine when the solver is one
  PlanSolver* solver_ = nullptr;  ///< the resolved serving backend

  mutable std::mutex mu_;
  std::condition_variable cvWork_;   ///< drainers: work available / stopping
  std::condition_variable cvSpace_;  ///< blocked submitters: space freed
  std::condition_variable cvIdle_;   ///< drain(): a solve completed
  /// Drain order: (-priority, seq) -> key, so begin() is the highest
  /// priority, earliest submit.
  std::map<std::pair<int, std::uint64_t>, std::string> order_;
  /// Seqs of admitted-but-incomplete solves (queued or in flight);
  /// drain() waits until no member precedes its admission cutoff.
  std::set<std::uint64_t> liveSeqs_;
  std::unordered_map<std::string, Solve> queued_;  ///< admitted, by key
  /// Solving now; late-coalescing submits park their promises here.
  std::unordered_map<std::string, std::vector<std::promise<OptimizedPlan>>>
      inFlight_;
  std::uint64_t nextSeq_ = 0;
  std::size_t inFlightCount_ = 0;
  bool stopping_ = false;
  Stats stats_{};

  std::mutex joinMu_;  ///< serializes the join phase of shutdown()
  std::vector<std::thread> drainers_;
};

}  // namespace fsw
