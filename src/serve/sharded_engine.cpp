#include "src/serve/sharded_engine.hpp"

#include <algorithm>
#include <cstdint>
#include <exception>
#include <sstream>
#include <thread>
#include <utility>

#include "src/io/serialize.hpp"
#include "src/serve/rendezvous.hpp"

namespace fsw {
namespace {

/// Sums the counters of `s` into `into` (the batch-invariant accounting:
/// representatives carry the work, duplicates carry only their marker, so
/// summing over returned plans counts every solve exactly once).
void accumulate(EngineStats& into, const EngineStats& s) {
  into.sourcesRun += s.sourcesRun;
  into.generated += s.generated;
  into.unique += s.unique;
  into.duplicates += s.duplicates;
  into.scoreCacheHits += s.scoreCacheHits;
  into.orchestrated += s.orchestrated;
  into.sharedHits += s.sharedHits;
  into.evictions += s.evictions;
  into.boundAborts += s.boundAborts;
  into.crossRequestHits += s.crossRequestHits;
  into.resultCacheHits += s.resultCacheHits;
  into.evalProbes += s.evalProbes;
  into.scratchHeapAllocs += s.scratchHeapAllocs;
  // High water is a max, not a sum: shards don't share arenas.
  into.arenaBytesHighWater =
      std::max(into.arenaBytesHighWater, s.arenaBytesHighWater);
  into.storeBytesSent += s.storeBytesSent;
  into.storeBytesReceived += s.storeBytesReceived;
  into.seedBoundAborts += s.seedBoundAborts;
  into.repairBoundAborts += s.repairBoundAborts;
}

}  // namespace

ShardedPlanEngine::ShardedPlanEngine(ShardedEngineConfig config)
    : config_(std::move(config)) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.shareIncumbents) config_.shard.boundBoard = &board_;
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<PlanEngine>(config_.shard));
  }
  perShard_.assign(config_.shards, 0);
}

std::size_t ShardedPlanEngine::shardOfKey(const std::string& key,
                                          std::size_t shards) {
  // Delegates to the shared rendezvous implementation (also ranked by
  // PlanRouter across hosts), so in-process shards, cross-host routing and
  // persisted shard-set re-routing can never disagree on where a key lives.
  return rendezvousPick(key, shards);
}

std::size_t ShardedPlanEngine::shardOf(const PlanRequest& request) const {
  return shardOfKey(dedupKey(request), shards_.size());
}

std::string ShardedPlanEngine::dedupKey(const PlanRequest& request) const {
  // Every shard shares one EngineConfig, so shard 0 speaks for all.
  return shards_[0]->dedupKey(request);
}

OptimizedPlan ShardedPlanEngine::optimize(const PlanRequest& request) {
  return std::move(
      optimizeBatch(std::span<const PlanRequest>(&request, 1)).front());
}

std::vector<OptimizedPlan> ShardedPlanEngine::optimizeBatch(
    std::span<const PlanRequest> requests) {
  const std::size_t n = requests.size();
  const std::size_t nShards = shards_.size();
  std::vector<OptimizedPlan> out(n);
  if (n == 0) return out;

  // Partition by consistent hash of the dedup key — computed once per
  // request here (the key serializes the whole application signature, so
  // it is not free) — so identical requests land together and each
  // shard's own dedup/result-cache does the collapsing.
  std::vector<std::vector<std::size_t>> byShard(nShards);
  for (std::size_t i = 0; i < n; ++i) {
    byShard[shardOfKey(dedupKey(requests[i]), nShards)].push_back(i);
  }

  // One plain thread per non-empty shard (the last runs inline). Shards
  // are independent engines, so the partitions solve concurrently and
  // results scatter to disjoint slots of `out`, no lock needed. Plain
  // threads (not the ThreadPool) are deliberate: the fan-out is tiny
  // (≤ shards-1 spawns per batch, ~µs) against ms-scale plan solves, it
  // stays truly concurrent even when ThreadPool::shared() has width 1,
  // and it never competes with the shards' own pools for workers.
  std::vector<std::size_t> active;
  for (std::size_t s = 0; s < nShards; ++s) {
    if (!byShard[s].empty()) active.push_back(s);
  }
  std::vector<std::exception_ptr> failures(active.size());
  const auto solveShard = [&](std::size_t a) {
    const std::size_t s = active[a];
    try {
      std::vector<PlanRequest> sub;
      sub.reserve(byShard[s].size());
      for (const std::size_t i : byShard[s]) sub.push_back(requests[i]);
      auto solved = shards_[s]->optimizeBatch(sub);
      for (std::size_t k = 0; k < byShard[s].size(); ++k) {
        out[byShard[s][k]] = std::move(solved[k]);
      }
    } catch (...) {
      failures[a] = std::current_exception();
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(active.size() > 0 ? active.size() - 1 : 0);
  for (std::size_t a = 1; a < active.size(); ++a) {
    workers.emplace_back(solveShard, a);
  }
  if (!active.empty()) solveShard(0);
  for (auto& w : workers) w.join();
  for (const auto& failure : failures) {
    if (failure != nullptr) std::rethrow_exception(failure);
  }

  // Aggregate under one lock — sums, never racing increments.
  {
    const std::lock_guard<std::mutex> lock(statsMu_);
    requests_ += n;
    ++batches_;
    for (std::size_t s = 0; s < nShards; ++s) {
      perShard_[s] += byShard[s].size();
    }
    for (const OptimizedPlan& plan : out) accumulate(work_, plan.stats);
  }
  return out;
}

ShardedPlanEngine::Stats ShardedPlanEngine::stats() const {
  Stats snapshot;
  {
    const std::lock_guard<std::mutex> lock(statsMu_);
    snapshot.requests = requests_;
    snapshot.batches = batches_;
    snapshot.work = work_;
    snapshot.perShard = perShard_;
  }
  for (const auto& shard : shards_) {
    const auto scores = shard->cacheStats();
    snapshot.scores.scoreHits += scores.scoreHits;
    snapshot.scores.scoreMisses += scores.scoreMisses;
    snapshot.scores.evictions += scores.evictions;
    const auto results = shard->resultCacheStats();
    snapshot.results.hits += results.hits;
    snapshot.results.misses += results.misses;
    snapshot.results.evictions += results.evictions;
  }
  snapshot.bounds = board_.stats();
  return snapshot;
}

void ShardedPlanEngine::saveCache(std::ostream& os) const {
  writeShardSetHeader(os, shards_.size(), "score");
  for (const auto& shard : shards_) shard->saveCache(os);
}

void ShardedPlanEngine::loadCache(std::istream& is) {
  const auto [count, kind] = readShardSetHeader(is);
  if (kind != "score") {
    throw std::runtime_error(
        "ShardedPlanEngine::loadCache: shard set holds '" + kind +
        "' payloads (expected 'score')");
  }
  for (std::size_t k = 0; k < count; ++k) {
    // Each stored shard's dump is read once, then broadcast to every
    // current shard: scores are pure functions of their keys, so the
    // duplication is sound and keeps each shard warm under any routing.
    CandidateCache merged(0);
    readCandidateCache(is, merged);
    std::ostringstream dump;
    writeCandidateCache(dump, merged);
    for (const auto& shard : shards_) {
      std::istringstream copy(dump.str());
      shard->loadCache(copy);
    }
  }
}

void ShardedPlanEngine::saveResults(std::ostream& os,
                                    std::size_t budgetPerShard) const {
  writeShardSetHeader(os, shards_.size(), "result");
  for (const auto& shard : shards_) shard->saveResults(os, budgetPerShard);
}

void ShardedPlanEngine::loadResults(std::istream& is) {
  const auto [count, kind] = readShardSetHeader(is);
  if (kind != "result") {
    throw std::runtime_error(
        "ShardedPlanEngine::loadResults: shard set holds '" + kind +
        "' payloads (expected 'result')");
  }
  // Entries re-route by the consistent hash of their request key — the
  // same function that routes live requests — so a dump saved under any
  // shard count lands its winners where lookups will occur. LRU order is
  // preserved per destination shard (dumps are LRU-first and re-inserted
  // in order).
  std::vector<std::unique_ptr<ResultCache>> rerouted;
  rerouted.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    rerouted.push_back(std::make_unique<ResultCache>(0));
  }
  for (std::size_t k = 0; k < count; ++k) {
    ResultCache dump(0);
    readResultCache(is, dump);
    for (const auto& [key, entry] : dump.snapshot()) {
      (void)rerouted[shardOfKey(key, shards_.size())]->insert(key, *entry);
    }
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    std::ostringstream dump;
    writeResultCache(dump, *rerouted[s]);
    std::istringstream copy(dump.str());
    shards_[s]->loadResults(copy);
  }
}

}  // namespace fsw
