// PlanRouter: client-side multi-host routing over the FSWF frame protocol
// — the layer that turns N independent PlanServiceHosts into one serving
// fleet.
//
// PR 4's transport stopped at one host: a RemotePlanClient speaks to one
// PlanServiceHost. The router holds one connection per host and
// rendezvous-ranks every request's canonical key (PlanEngine::requestKey,
// via src/serve/rendezvous.hpp — the same hash ShardedPlanEngine routes
// shards with) across the live host set:
//
//   * identical requests always land on the same host, so that host's
//     dedup, score cache and full-result cache keep working — the fleet's
//     cache locality is a pure function of the key space;
//   * when a host's connection drops mid-request, the request retries on
//     the next-ranked host for its key (solves are pure and idempotent —
//     a retry can change which machine answers, never the answer), the
//     host is marked down, and later requests rank around it;
//   * a down host is re-admitted when a reconnect succeeds: reconnect()
//     probes all down hosts, and when the whole fleet is down a request
//     probes its top-ranked host as a last resort (so the first request
//     after an outage heals the router);
//   * adding/removing hosts remaps only ~1/N of the key space (the
//     rendezvous property) — resharding mostly preserves cache locality.
//
// Surface: the same submit -> std::future<OptimizedPlan> as PlanServer and
// RemotePlanClient — the front end of the serving stack is host-count
// agnostic. Remote *solve* errors (an 'E' frame: unknown portfolio,
// malformed payload) are deterministic answers and are never retried;
// only transport failures fail over. The bit-identity contract holds
// through every routing path, mid-stream host failure included, because
// every host returns the serial winner for a key.
//
// One connection (and one in-flight request) per host: fleet concurrency
// comes from the host fan-out; per-host concurrency comes from running
// several routers (the host serves each connection on its own thread).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/plan_service.hpp"

namespace fsw {

struct RouterHost {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct RouterConfig {
  /// The fleet, in slot order (slot index = rendezvous slot, so the list
  /// order is part of the routing function — keep it identical across
  /// routers that should agree).
  std::vector<RouterHost> hosts;
  /// Per-socket I/O bound (connect, send, recv) for every per-host client,
  /// in milliseconds; <= 0 disables. The router's whole value is failover,
  /// and failover needs a clock: a black-holed host (SIGSTOP, partition
  /// without RST) must surface as a transport failure so the request
  /// retries on the next-ranked host instead of hanging its future. Solves
  /// are idempotent, so a timeout fired while the host was merely slow
  /// costs a redundant solve elsewhere, never a wrong answer.
  int ioTimeoutMs = 30000;
};

/// Thread-safe: any number of threads may submit concurrently; each host
/// slot is drained by its own worker thread.
class PlanRouter {
 public:
  struct HostStats {
    std::size_t served = 0;             ///< futures fulfilled by this host
    std::size_t transportFailures = 0;  ///< drops observed on this host
    /// Wire bytes moved to/from this host across every connection this
    /// slot has held (frame headers included): the live client's counters
    /// plus those of every retired connection, folded in when it dropped.
    std::size_t bytesSent = 0;
    std::size_t bytesReceived = 0;
    bool up = true;                     ///< currently admitted for routing
  };

  struct Stats {
    std::size_t submitted = 0;   ///< submit() calls accepted
    std::size_t served = 0;      ///< futures fulfilled with a plan
    std::size_t failed = 0;      ///< futures failed (remote error/no hosts)
    std::size_t failovers = 0;   ///< requests re-routed after a drop
    std::size_t reconnects = 0;  ///< down hosts re-admitted
    std::vector<HostStats> perHost;
  };

  /// Connects lazily: construction validates the host list (throws
  /// std::invalid_argument when empty) but opens no sockets — each slot
  /// connects on its first routed request, so a fleet can be declared
  /// before every host is up.
  explicit PlanRouter(RouterConfig config);
  ~PlanRouter();

  PlanRouter(const PlanRouter&) = delete;
  PlanRouter& operator=(const PlanRouter&) = delete;

  /// Routes one request by its canonical key and returns its future: the
  /// remote winner (bit-identical to a serial optimizePlan) or a
  /// RemotePlanError. Throws std::invalid_argument synchronously for a
  /// non-portable request (unnamed portfolio), like RemotePlanClient.
  [[nodiscard]] std::future<OptimizedPlan> submit(const PlanRequest& request,
                                                  int priority = 0);

  /// Blocking convenience: submit(request, priority).get().
  [[nodiscard]] OptimizedPlan optimize(const PlanRequest& request,
                                       int priority = 0);

  [[nodiscard]] std::size_t hostCount() const noexcept;
  /// The top-ranked slot for this request's key (down-marks ignored — the
  /// static routing function, identical across routers).
  [[nodiscard]] std::size_t hostOf(const PlanRequest& request) const;
  [[nodiscard]] bool hostUp(std::size_t slot) const;

  /// Probes every down host and re-admits those that accept a connection.
  /// Returns how many were re-admitted. Never throws.
  std::size_t reconnect();

  [[nodiscard]] Stats stats() const;

  /// Fails queued work, closes every connection and joins the workers.
  /// Idempotent; the destructor calls it.
  void close();

 private:
  struct Job {
    PlanRequest request;
    int priority = 0;
    std::vector<std::size_t> rank;  ///< rendezvous order for the key
    std::size_t attempt = 0;        ///< position in `rank` being tried
    std::promise<OptimizedPlan> promise;
  };

  struct Slot {
    RouterHost endpoint;
    std::unique_ptr<RemotePlanClient> client;  ///< null while down
    bool down = false;
    std::deque<Job> queue;
    HostStats stats;
    std::thread worker;
  };

  void workerLoop(std::size_t slot);
  /// Adds a retiring connection's byte counters into the slot's HostStats
  /// (called with mu_ held, just before the client is dropped) so per-host
  /// traffic survives reconnect churn.
  void foldClientStatsLocked(Slot& s);
  /// Serves one job on `slot` (connecting first if needed); on a
  /// transport failure marks the slot down and fails the job over.
  void process(std::size_t slot, Job job);
  /// Queues `job` at rank[attempt]'s slot, preferring live slots (a down
  /// slot is skipped unless every remaining ranked slot is down, in which
  /// case the next ranked slot is probed anyway). Fails the promise when
  /// the rank list is exhausted or the router is closing.
  void dispatch(Job job);

  int ioTimeoutMs_ = 30000;  ///< RouterConfig::ioTimeoutMs, fixed at birth

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Slot>> slots_;
  bool stopping_ = false;
  Stats stats_{};
};

}  // namespace fsw
