#include "src/serve/plan_service.hpp"

#include <sys/socket.h>

#include <sstream>
#include <utility>

#include "src/io/serialize.hpp"

namespace fsw {

using frameio::closeFd;
using frameio::Frame;
using frameio::readFrame;
using frameio::ReadStatus;
using frameio::sendAll;
using frameio::sendFrame;

// ---- PlanServiceHost -------------------------------------------------------

PlanServiceHost::PlanServiceHost(ServiceHostConfig config)
    : config_(std::move(config)) {
  if (config_.server != nullptr) {
    server_ = config_.server;
  } else {
    ownedServer_ = std::make_unique<PlanServer>(config_.serverConfig);
    server_ = ownedServer_.get();
  }
  startService(config_.port, "PlanServiceHost");
}

PlanServiceHost::~PlanServiceHost() { stop(); }

void PlanServiceHost::serveConnection(int fd) {
  for (;;) {
    Frame frame;
    const ReadStatus status = readFrame(fd, frame);
    if (status == ReadStatus::Eof) break;
    if (status == ReadStatus::Bad) {
      // The stream itself cannot be trusted (garbage magic, oversized or
      // truncated frame): drop the connection.
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.errors;
      break;
    }
    if (status == ReadStatus::WrongVersion) {
      (void)sendFrame(fd, FrameType::Error,
                      "unsupported frame version (expected " +
                          std::to_string(kFrameVersion) + ")");
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.errors;
      break;
    }
    if (frame.type != FrameType::Request) {
      (void)sendFrame(fd, FrameType::Error, "expected a request frame");
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.errors;
      break;
    }

    // From here the length prefix has kept the stream in sync, so payload
    // problems are answered with an error frame and the connection stays
    // serviceable.
    std::string error;
    try {
      std::istringstream payload(frame.payload);
      WirePlanRequest wire = readPlanRequest(payload);
      if (wire.portfolio != "-") {
        const CandidateRegistry* registry =
            config_.resolvePortfolio ? config_.resolvePortfolio(wire.portfolio)
                                     : nullptr;
        // The built-in portfolio always resolves, resolver or not — a
        // custom resolver extends the name space, it never revokes the
        // default (a resolver may still shadow "builtin" by resolving it
        // itself).
        if (registry == nullptr &&
            wire.portfolio == CandidateRegistry::builtin().name()) {
          registry = &CandidateRegistry::builtin();
        }
        if (registry == nullptr) {
          throw std::runtime_error("unknown portfolio '" + wire.portfolio +
                                   "'");
        }
        wire.request.options.registry = registry;
      }
      const OptimizedPlan plan =
          server_->submit(std::move(wire.request), wire.priority).get();
      std::ostringstream encoded;
      writeOptimizedPlan(encoded, plan);
      {
        // Counted before the send (as the error path counts before its
        // frame): once a client holds the result, a stats() snapshot must
        // already include it — counting after the send would race the
        // client's view of its own completed request.
        const std::lock_guard<std::mutex> lock(mu_);
        ++stats_.requests;
      }
      if (!sendFrame(fd, FrameType::Result, encoded.str())) break;
      continue;
    } catch (const std::exception& e) {
      error = e.what();
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.errors;
    }
    if (!sendFrame(fd, FrameType::Error, error)) break;
  }
  // The shared SocketService owns the fd from here: it is shut down,
  // erased and closed by the base's connection wrapper.
}

PlanServiceHost::Stats PlanServiceHost::stats() const {
  Stats snapshot;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    snapshot = stats_;
  }
  snapshot.connections = acceptedConnections();
  return snapshot;
}

// ---- RemotePlanClient ------------------------------------------------------

RemotePlanClient::RemotePlanClient(const std::string& host,
                                   std::uint16_t port) {
  fd_ = frameio::connectTcp(host, port, "RemotePlanClient");
  sender_ = std::thread([this] { senderLoop(); });
}

RemotePlanClient::~RemotePlanClient() { close(); }

std::future<OptimizedPlan> RemotePlanClient::submit(
    const PlanRequest& request, int priority) {
  // Encode eagerly: a non-portable request (unnamed portfolio) throws
  // std::invalid_argument here, synchronously, like the codec itself.
  std::ostringstream encoded;
  writePlanRequest(encoded, request, priority);

  Pending pending;
  pending.payload = encoded.str();
  std::future<OptimizedPlan> future = pending.promise.get_future();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      pending.promise.set_exception(std::make_exception_ptr(
          RemotePlanError("RemotePlanClient: submit after close",
                          /*transport=*/true)));
      return future;
    }
    ++stats_.submitted;
    queue_.push_back(std::move(pending));
  }
  cv_.notify_one();
  return future;
}

OptimizedPlan RemotePlanClient::optimize(const PlanRequest& request,
                                         int priority) {
  return submit(request, priority).get();
}

void RemotePlanClient::senderLoop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, and nothing left queued
      pending = std::move(queue_.front());
      queue_.erase(queue_.begin());
    }

    std::exception_ptr failure;
    try {
      const std::string encoded =
          encodeFrame(FrameType::Request, pending.payload);
      if (!sendAll(fd_, encoded.data(), encoded.size())) {
        throw RemotePlanError("RemotePlanClient: connection lost (send)",
                              /*transport=*/true);
      }
      Frame frame;
      const ReadStatus status = readFrame(fd_, frame);
      if (status != ReadStatus::Ok) {
        // Covers a clean drop AND a garbled/truncated result frame: a
        // stream that breaks mid-frame cannot be resynchronized, so the
        // future fails with a transport error — never a misparsed plan.
        throw RemotePlanError("RemotePlanClient: connection lost (recv)",
                              /*transport=*/true);
      }
      if (frame.type == FrameType::Error) {
        throw RemotePlanError("remote: " + frame.payload);
      }
      if (frame.type != FrameType::Result) {
        throw RemotePlanError("RemotePlanClient: unexpected frame type",
                              /*transport=*/true);
      }
      std::istringstream payload(frame.payload);
      OptimizedPlan plan;
      try {
        plan = readOptimizedPlan(payload);
      } catch (const std::exception& e) {
        // A well-framed but undecodable result: the host is not speaking
        // our codec. Transport-class — a retry elsewhere is sound because
        // solves are idempotent.
        throw RemotePlanError(
            std::string("RemotePlanClient: undecodable result (") + e.what() +
                ")",
            /*transport=*/true);
      }
      {
        const std::lock_guard<std::mutex> lock(mu_);
        ++stats_.served;
      }
      pending.promise.set_value(std::move(plan));
      continue;
    } catch (const RemotePlanError& e) {
      if (e.transport()) {
        // The stream cannot be resynchronized after a transport failure:
        // kill the socket so every later queued request fails fast with
        // the same error instead of blocking on a desynchronized fd.
        ::shutdown(fd_, SHUT_RDWR);
      }
      failure = std::current_exception();
    } catch (...) {
      failure = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.failed;
    }
    pending.promise.set_exception(failure);
  }
}

void RemotePlanClient::close() {
  std::vector<Pending> orphans;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    orphans.swap(queue_);
    stats_.failed += orphans.size();
  }
  cv_.notify_all();
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);  // unblocks the sender's recv
  if (sender_.joinable()) sender_.join();
  if (fd_ >= 0) {
    closeFd(fd_);
    fd_ = -1;
  }
  for (auto& orphan : orphans) {
    orphan.promise.set_exception(std::make_exception_ptr(
        RemotePlanError("RemotePlanClient: closed before dispatch",
                        /*transport=*/true)));
  }
}

RemotePlanClient::Stats RemotePlanClient::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace fsw
