#include "src/serve/plan_service.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "src/io/serialize.hpp"

namespace fsw {
namespace {

constexpr std::size_t kFrameHeaderSize = 10;

/// Sends the whole buffer (MSG_NOSIGNAL: a peer that vanished mid-write is
/// an error return here, never a SIGPIPE). False on any failure.
bool sendAll(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t sent = ::send(fd, data, len, MSG_NOSIGNAL);
    if (sent <= 0) {
      if (sent < 0 && errno == EINTR) continue;
      return false;
    }
    data += sent;
    len -= static_cast<std::size_t>(sent);
  }
  return true;
}

/// Reads exactly `len` bytes. 1 = ok, 0 = clean EOF before the first byte,
/// -1 = error or EOF mid-buffer (a truncated frame).
int recvExact(int fd, char* data, std::size_t len) {
  bool any = false;
  while (len > 0) {
    const ssize_t got = ::recv(fd, data, len, 0);
    if (got == 0) return any ? -1 : 0;
    if (got < 0) {
      if (errno == EINTR) continue;
      return any ? -1 : 0;  // shutdown() surfaces as an error: treat as EOF
    }
    any = true;
    data += got;
    len -= static_cast<std::size_t>(got);
  }
  return 1;
}

enum class ReadStatus {
  Ok,            ///< a well-formed frame
  Eof,           ///< clean close at a frame boundary
  Bad,           ///< garbage/truncated/oversized — drop the connection
  WrongVersion,  ///< well-formed header, unsupported version
};

struct Frame {
  FrameType type = FrameType::Error;
  std::string payload;
};

ReadStatus readFrame(int fd, Frame& out) {
  char header[kFrameHeaderSize];
  const int got = recvExact(fd, header, sizeof(header));
  if (got == 0) return ReadStatus::Eof;
  if (got < 0) return ReadStatus::Bad;
  if (std::memcmp(header, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return ReadStatus::Bad;
  }
  if (static_cast<std::uint8_t>(header[4]) != kFrameVersion) {
    return ReadStatus::WrongVersion;
  }
  const char type = header[5];
  if (type != static_cast<char>(FrameType::Request) &&
      type != static_cast<char>(FrameType::Result) &&
      type != static_cast<char>(FrameType::Error)) {
    return ReadStatus::Bad;
  }
  std::uint32_t len = 0;
  for (std::size_t i = 6; i < kFrameHeaderSize; ++i) {
    len = (len << 8) | static_cast<std::uint8_t>(header[i]);
  }
  if (len > kMaxFramePayload) return ReadStatus::Bad;
  out.type = static_cast<FrameType>(type);
  out.payload.resize(len);
  if (len > 0 && recvExact(fd, out.payload.data(), len) != 1) {
    return ReadStatus::Bad;
  }
  return ReadStatus::Ok;
}

bool sendFrame(int fd, FrameType type, std::string_view payload) {
  const std::string frame = encodeFrame(type, payload);
  return sendAll(fd, frame.data(), frame.size());
}

void closeFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace

std::string encodeFrame(FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw std::invalid_argument("encodeFrame: payload exceeds frame cap");
  }
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  frame.append(kFrameMagic, sizeof(kFrameMagic));
  frame.push_back(static_cast<char>(kFrameVersion));
  frame.push_back(static_cast<char>(type));
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int shift = 24; shift >= 0; shift -= 8) {
    frame.push_back(static_cast<char>((len >> shift) & 0xff));
  }
  frame.append(payload);
  return frame;
}

// ---- PlanServiceHost -------------------------------------------------------

PlanServiceHost::PlanServiceHost(ServiceHostConfig config)
    : config_(std::move(config)) {
  if (config_.server != nullptr) {
    server_ = config_.server;
  } else {
    ownedServer_ = std::make_unique<PlanServer>(config_.serverConfig);
    server_ = ownedServer_.get();
  }

  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd_ < 0) {
    throw std::runtime_error("PlanServiceHost: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listenFd_, 64) != 0) {
    closeFd(listenFd_);
    throw std::runtime_error("PlanServiceHost: bind/listen on 127.0.0.1:" +
                             std::to_string(config_.port) + " failed");
  }
  sockaddr_in bound{};
  socklen_t boundLen = sizeof(bound);
  if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound),
                    &boundLen) != 0) {
    closeFd(listenFd_);
    throw std::runtime_error("PlanServiceHost: getsockname failed");
  }
  port_ = ntohs(bound.sin_port);
  acceptor_ = std::thread([this] { acceptLoop(); });
}

PlanServiceHost::~PlanServiceHost() { stop(); }

void PlanServiceHost::acceptLoop() {
  for (;;) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      closeFd(fd);
      return;
    }
    ++stats_.connections;
    connections_.insert(fd);
    threads_.emplace_back([this, fd] { serveConnection(fd); });
  }
}

void PlanServiceHost::serveConnection(int fd) {
  for (;;) {
    Frame frame;
    const ReadStatus status = readFrame(fd, frame);
    if (status == ReadStatus::Eof) break;
    if (status == ReadStatus::Bad) {
      // The stream itself cannot be trusted (garbage magic, oversized or
      // truncated frame): drop the connection.
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.errors;
      break;
    }
    if (status == ReadStatus::WrongVersion) {
      (void)sendFrame(fd, FrameType::Error,
                      "unsupported frame version (expected " +
                          std::to_string(kFrameVersion) + ")");
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.errors;
      break;
    }
    if (frame.type != FrameType::Request) {
      (void)sendFrame(fd, FrameType::Error, "expected a request frame");
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.errors;
      break;
    }

    // From here the length prefix has kept the stream in sync, so payload
    // problems are answered with an error frame and the connection stays
    // serviceable.
    std::string error;
    try {
      std::istringstream payload(frame.payload);
      WirePlanRequest wire = readPlanRequest(payload);
      if (wire.portfolio != "-") {
        const CandidateRegistry* registry =
            config_.resolvePortfolio ? config_.resolvePortfolio(wire.portfolio)
                                     : nullptr;
        // The built-in portfolio always resolves, resolver or not — a
        // custom resolver extends the name space, it never revokes the
        // default (a resolver may still shadow "builtin" by resolving it
        // itself).
        if (registry == nullptr &&
            wire.portfolio == CandidateRegistry::builtin().name()) {
          registry = &CandidateRegistry::builtin();
        }
        if (registry == nullptr) {
          throw std::runtime_error("unknown portfolio '" + wire.portfolio +
                                   "'");
        }
        wire.request.options.registry = registry;
      }
      const OptimizedPlan plan =
          server_->submit(std::move(wire.request), wire.priority).get();
      std::ostringstream encoded;
      writeOptimizedPlan(encoded, plan);
      {
        // Counted before the send (as the error path counts before its
        // frame): once a client holds the result, a stats() snapshot must
        // already include it — counting after the send would race the
        // client's view of its own completed request.
        const std::lock_guard<std::mutex> lock(mu_);
        ++stats_.requests;
      }
      if (!sendFrame(fd, FrameType::Result, encoded.str())) break;
      continue;
    } catch (const std::exception& e) {
      error = e.what();
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.errors;
    }
    if (!sendFrame(fd, FrameType::Error, error)) break;
  }
  ::shutdown(fd, SHUT_RDWR);
  const std::lock_guard<std::mutex> lock(mu_);
  if (connections_.erase(fd) > 0) closeFd(fd);
}

void PlanServiceHost::stop() {
  const std::lock_guard<std::mutex> stopLock(stopMu_);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    // Wake every connection thread blocked in recv; fds are closed by
    // their owning threads (or below, for threads past their erase).
    for (const int fd : connections_) ::shutdown(fd, SHUT_RDWR);
  }
  if (listenFd_ >= 0) {
    ::shutdown(listenFd_, SHUT_RDWR);  // unblocks accept()
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (listenFd_ >= 0) {
    closeFd(listenFd_);
    listenFd_ = -1;
  }
  // No new threads can appear now (the acceptor is gone), so the vector
  // is stable outside the lock for joining.
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    threads.swap(threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  const std::lock_guard<std::mutex> lock(mu_);
  for (const int fd : connections_) closeFd(fd);
  connections_.clear();
}

PlanServiceHost::Stats PlanServiceHost::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// ---- RemotePlanClient ------------------------------------------------------

RemotePlanClient::RemotePlanClient(const std::string& host,
                                   std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error("RemotePlanClient: socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    closeFd(fd_);
    throw std::runtime_error("RemotePlanClient: bad IPv4 literal '" + host +
                             "'");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    closeFd(fd_);
    throw std::runtime_error("RemotePlanClient: connect to " + host + ":" +
                             std::to_string(port) + " failed");
  }
  sender_ = std::thread([this] { senderLoop(); });
}

RemotePlanClient::~RemotePlanClient() { close(); }

std::future<OptimizedPlan> RemotePlanClient::submit(
    const PlanRequest& request, int priority) {
  // Encode eagerly: a non-portable request (unnamed portfolio) throws
  // std::invalid_argument here, synchronously, like the codec itself.
  std::ostringstream encoded;
  writePlanRequest(encoded, request, priority);

  Pending pending;
  pending.payload = encoded.str();
  std::future<OptimizedPlan> future = pending.promise.get_future();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      pending.promise.set_exception(std::make_exception_ptr(
          RemotePlanError("RemotePlanClient: submit after close")));
      return future;
    }
    ++stats_.submitted;
    queue_.push_back(std::move(pending));
  }
  cv_.notify_one();
  return future;
}

OptimizedPlan RemotePlanClient::optimize(const PlanRequest& request,
                                         int priority) {
  return submit(request, priority).get();
}

void RemotePlanClient::senderLoop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, and nothing left queued
      pending = std::move(queue_.front());
      queue_.erase(queue_.begin());
    }

    std::exception_ptr failure;
    try {
      const std::string encoded =
          encodeFrame(FrameType::Request, pending.payload);
      if (!sendAll(fd_, encoded.data(), encoded.size())) {
        throw RemotePlanError("RemotePlanClient: connection lost (send)");
      }
      Frame frame;
      const ReadStatus status = readFrame(fd_, frame);
      if (status != ReadStatus::Ok) {
        throw RemotePlanError("RemotePlanClient: connection lost (recv)");
      }
      if (frame.type == FrameType::Error) {
        throw RemotePlanError("remote: " + frame.payload);
      }
      if (frame.type != FrameType::Result) {
        throw RemotePlanError("RemotePlanClient: unexpected frame type");
      }
      std::istringstream payload(frame.payload);
      OptimizedPlan plan = readOptimizedPlan(payload);
      {
        const std::lock_guard<std::mutex> lock(mu_);
        ++stats_.served;
      }
      pending.promise.set_value(std::move(plan));
      continue;
    } catch (...) {
      failure = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.failed;
    }
    pending.promise.set_exception(failure);
  }
}

void RemotePlanClient::close() {
  std::vector<Pending> orphans;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    orphans.swap(queue_);
    stats_.failed += orphans.size();
  }
  cv_.notify_all();
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);  // unblocks the sender's recv
  if (sender_.joinable()) sender_.join();
  if (fd_ >= 0) {
    closeFd(fd_);
    fd_ = -1;
  }
  for (auto& orphan : orphans) {
    orphan.promise.set_exception(std::make_exception_ptr(
        RemotePlanError("RemotePlanClient: closed before dispatch")));
  }
}

RemotePlanClient::Stats RemotePlanClient::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace fsw
