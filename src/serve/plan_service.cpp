#include "src/serve/plan_service.hpp"

#include <sys/socket.h>

#include <sstream>
#include <utility>

#include "src/io/binio.hpp"
#include "src/io/serialize.hpp"

namespace fsw {

using frameio::closeFd;
using frameio::Frame;
using frameio::readFrame;
using frameio::ReadStatus;
using frameio::sendFrame;

// ---- PlanServiceHost -------------------------------------------------------

PlanServiceHost::PlanServiceHost(ServiceHostConfig config)
    : config_(std::move(config)) {
  if (config_.server != nullptr) {
    server_ = config_.server;
  } else {
    ownedServer_ = std::make_unique<PlanServer>(config_.serverConfig);
    server_ = ownedServer_.get();
  }
  startService(config_.port, "PlanServiceHost", config_.transport);
}

PlanServiceHost::~PlanServiceHost() { stop(); }

void PlanServiceHost::handleFrame(Responder& out, Frame frame) {
  // Frame-level discipline (garbage/truncation -> drop, wrong version ->
  // error then drop) already ran in the shared transport; only
  // well-formed frames arrive here.
  if (frame.type != FrameType::Request) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.errors;
    }
    (void)out.send(FrameType::Error, "expected a request frame");
    out.closeAfterReply();
    return;
  }

  // From here the length prefix has kept the stream in sync, so payload
  // problems are answered with an error frame and the connection stays
  // serviceable.
  std::string error;
  try {
    // The decoder sniffs the dialect; the reply speaks the same one, so
    // a legacy text client round-trips text end to end.
    const bool binary = binio::isBinary(frame.payload);
    WirePlanRequest wire = decodePlanRequest(frame.payload);
    if (wire.portfolio != "-") {
      const CandidateRegistry* registry =
          config_.resolvePortfolio ? config_.resolvePortfolio(wire.portfolio)
                                   : nullptr;
      // The built-in portfolio always resolves, resolver or not — a
      // custom resolver extends the name space, it never revokes the
      // default (a resolver may still shadow "builtin" by resolving it
      // itself).
      if (registry == nullptr &&
          wire.portfolio == CandidateRegistry::builtin().name()) {
        registry = &CandidateRegistry::builtin();
      }
      if (registry == nullptr) {
        throw std::runtime_error("unknown portfolio '" + wire.portfolio +
                                 "'");
      }
      wire.request.options.registry = registry;
    }
    const OptimizedPlan plan =
        server_->submit(std::move(wire.request), wire.priority).get();
    std::string encoded;
    if (binary) {
      encoded = encodeOptimizedPlan(plan);
    } else {
      std::ostringstream text;
      writeOptimizedPlan(text, plan);
      encoded = text.str();
    }
    {
      // Counted before the reply is committed (as the error path counts
      // before its frame): once a client holds the result, a stats()
      // snapshot must already include it.
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.requests;
    }
    (void)out.send(FrameType::Result, encoded);
    return;
  } catch (const std::exception& e) {
    error = e.what();
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.errors;
  }
  (void)out.send(FrameType::Error, error);
}

PlanServiceHost::Stats PlanServiceHost::stats() const {
  Stats snapshot;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    snapshot = stats_;
  }
  snapshot.connections = acceptedConnections();
  const frameio::IoTotals io = ioTotals();
  snapshot.framesIn = io.framesIn;
  snapshot.bytesIn = io.bytesIn;
  snapshot.framesOut = io.framesOut;
  snapshot.bytesOut = io.bytesOut;
  const frameio::TransportTotals t = transportTotals();
  // Dropped streams (garbage, truncation, version mismatches) are counted
  // by the transport; fold them into the host's error ledger as before.
  snapshot.errors += t.streamErrors;
  snapshot.refusedOverLimit = t.refusedOverLimit;
  snapshot.idleClosed = t.idleClosed;
  snapshot.peakWriteQueueBytes = t.peakWriteQueueBytes;
  snapshot.transportThreads = t.transportThreads;
  return snapshot;
}

// ---- RemotePlanClient ------------------------------------------------------

RemotePlanClient::RemotePlanClient(const std::string& host,
                                   std::uint16_t port, int ioTimeoutMs) {
  // The connect is bounded either way (connectTcp's own default); when an
  // I/O timeout is configured it also caps the connect so a black-holed
  // host fails in ioTimeoutMs everywhere, not just after the handshake.
  fd_ = frameio::connectTcp(host, port, "RemotePlanClient",
                            ioTimeoutMs > 0 ? ioTimeoutMs : 10000);
  frameio::setIoTimeout(fd_, ioTimeoutMs);
  sender_ = std::thread([this] { senderLoop(); });
}

RemotePlanClient::~RemotePlanClient() { close(); }

std::future<OptimizedPlan> RemotePlanClient::submit(
    const PlanRequest& request, int priority) {
  // Encode eagerly: a non-portable request (unnamed portfolio) throws
  // std::invalid_argument here, synchronously, like the codec itself.
  Pending pending;
  pending.payload = encodePlanRequest(request, priority);
  std::future<OptimizedPlan> future = pending.promise.get_future();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      pending.promise.set_exception(std::make_exception_ptr(
          RemotePlanError("RemotePlanClient: submit after close",
                          /*transport=*/true)));
      return future;
    }
    ++stats_.submitted;
    queue_.push_back(std::move(pending));
  }
  cv_.notify_one();
  return future;
}

OptimizedPlan RemotePlanClient::optimize(const PlanRequest& request,
                                         int priority) {
  return submit(request, priority).get();
}

void RemotePlanClient::senderLoop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, and nothing left queued
      pending = std::move(queue_.front());
      queue_.erase(queue_.begin());
    }

    std::exception_ptr failure;
    try {
      if (!sendFrame(fd_, FrameType::Request, pending.payload, &io_)) {
        throw RemotePlanError("RemotePlanClient: connection lost (send)",
                              /*transport=*/true);
      }
      Frame frame;
      const ReadStatus status = readFrame(fd_, frame, &io_);
      if (status != ReadStatus::Ok) {
        // Covers a clean drop AND a garbled/truncated result frame: a
        // stream that breaks mid-frame cannot be resynchronized, so the
        // future fails with a transport error — never a misparsed plan.
        throw RemotePlanError("RemotePlanClient: connection lost (recv)",
                              /*transport=*/true);
      }
      if (frame.type == FrameType::Error) {
        throw RemotePlanError("remote: " + frame.payload);
      }
      if (frame.type != FrameType::Result) {
        throw RemotePlanError("RemotePlanClient: unexpected frame type",
                              /*transport=*/true);
      }
      OptimizedPlan plan;
      try {
        plan = decodeOptimizedPlan(frame.payload);
      } catch (const std::exception& e) {
        // A well-framed but undecodable result: the host is not speaking
        // our codec. Transport-class — a retry elsewhere is sound because
        // solves are idempotent.
        throw RemotePlanError(
            std::string("RemotePlanClient: undecodable result (") + e.what() +
                ")",
            /*transport=*/true);
      }
      {
        const std::lock_guard<std::mutex> lock(mu_);
        ++stats_.served;
      }
      pending.promise.set_value(std::move(plan));
      continue;
    } catch (const RemotePlanError& e) {
      if (e.transport()) {
        // The stream cannot be resynchronized after a transport failure:
        // kill the socket so every later queued request fails fast with
        // the same error instead of blocking on a desynchronized fd.
        ::shutdown(fd_, SHUT_RDWR);
      }
      failure = std::current_exception();
    } catch (...) {
      failure = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.failed;
    }
    pending.promise.set_exception(failure);
  }
}

void RemotePlanClient::close() {
  std::vector<Pending> orphans;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    orphans.swap(queue_);
    stats_.failed += orphans.size();
  }
  cv_.notify_all();
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);  // unblocks the sender's recv
  if (sender_.joinable()) sender_.join();
  if (fd_ >= 0) {
    closeFd(fd_);
    fd_ = -1;
  }
  for (auto& orphan : orphans) {
    orphan.promise.set_exception(std::make_exception_ptr(
        RemotePlanError("RemotePlanClient: closed before dispatch",
                        /*transport=*/true)));
  }
}

RemotePlanClient::Stats RemotePlanClient::stats() const {
  Stats snapshot;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    snapshot = stats_;
  }
  const frameio::IoTotals io = frameio::totals(io_);
  snapshot.bytesSent = io.bytesOut;
  snapshot.bytesReceived = io.bytesIn;
  return snapshot;
}

}  // namespace fsw
