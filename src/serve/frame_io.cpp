#include "src/serve/frame_io.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace fsw {

std::string encodeFrame(FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw std::invalid_argument("encodeFrame: payload exceeds frame cap");
  }
  std::string frame;
  frame.reserve(frameio::kFrameHeaderSize + payload.size());
  frame.append(kFrameMagic, sizeof(kFrameMagic));
  frame.push_back(static_cast<char>(kFrameVersion));
  frame.push_back(static_cast<char>(type));
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int shift = 24; shift >= 0; shift -= 8) {
    frame.push_back(static_cast<char>((len >> shift) & 0xff));
  }
  frame.append(payload);
  return frame;
}

}  // namespace fsw

namespace fsw::frameio {

bool sendAll(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t sent = ::send(fd, data, len, MSG_NOSIGNAL);
    if (sent <= 0) {
      if (sent < 0 && errno == EINTR) continue;
      return false;
    }
    data += sent;
    len -= static_cast<std::size_t>(sent);
  }
  return true;
}

int recvExact(int fd, char* data, std::size_t len) {
  bool any = false;
  while (len > 0) {
    const ssize_t got = ::recv(fd, data, len, 0);
    if (got == 0) return any ? -1 : 0;
    if (got < 0) {
      if (errno == EINTR) continue;
      return any ? -1 : 0;  // shutdown() surfaces as an error: treat as EOF
    }
    any = true;
    data += got;
    len -= static_cast<std::size_t>(got);
  }
  return 1;
}

IoTotals totals(const IoCounters& io) {
  IoTotals t;
  t.framesIn = io.framesIn.load(std::memory_order_relaxed);
  t.bytesIn = io.bytesIn.load(std::memory_order_relaxed);
  t.framesOut = io.framesOut.load(std::memory_order_relaxed);
  t.bytesOut = io.bytesOut.load(std::memory_order_relaxed);
  return t;
}

ReadStatus readFrame(int fd, Frame& out, IoCounters* io) {
  char header[kFrameHeaderSize];
  const int got = recvExact(fd, header, sizeof(header));
  if (got == 0) return ReadStatus::Eof;
  if (got < 0) return ReadStatus::Bad;
  if (std::memcmp(header, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return ReadStatus::Bad;
  }
  if (static_cast<std::uint8_t>(header[4]) != kFrameVersion) {
    return ReadStatus::WrongVersion;
  }
  const char type = header[5];
  if (type != static_cast<char>(FrameType::Request) &&
      type != static_cast<char>(FrameType::Result) &&
      type != static_cast<char>(FrameType::Error) &&
      type != static_cast<char>(FrameType::StoreGet) &&
      type != static_cast<char>(FrameType::StorePut) &&
      type != static_cast<char>(FrameType::StoreStats)) {
    return ReadStatus::Bad;
  }
  std::uint32_t len = 0;
  for (std::size_t i = 6; i < kFrameHeaderSize; ++i) {
    len = (len << 8) | static_cast<std::uint8_t>(header[i]);
  }
  if (len > kMaxFramePayload) return ReadStatus::Bad;
  out.type = static_cast<FrameType>(type);
  out.payload.resize(len);
  if (len > 0 && recvExact(fd, out.payload.data(), len) != 1) {
    return ReadStatus::Bad;
  }
  if (io != nullptr) {
    io->framesIn.fetch_add(1, std::memory_order_relaxed);
    io->bytesIn.fetch_add(kFrameHeaderSize + len, std::memory_order_relaxed);
  }
  return ReadStatus::Ok;
}

bool sendFrame(int fd, FrameType type, std::string_view payload,
               IoCounters* io) {
  const std::string frame = encodeFrame(type, payload);
  if (!sendAll(fd, frame.data(), frame.size())) return false;
  if (io != nullptr) {
    io->framesOut.fetch_add(1, std::memory_order_relaxed);
    io->bytesOut.fetch_add(frame.size(), std::memory_order_relaxed);
  }
  return true;
}

void closeFd(int fd) {
  if (fd >= 0) ::close(fd);
}

Listener listenLoopback(std::uint16_t port, const char* who) {
  Listener listener;
  listener.fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener.fd < 0) {
    throw std::runtime_error(std::string(who) + ": socket() failed");
  }
  const int one = 1;
  ::setsockopt(listener.fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listener.fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener.fd, 64) != 0) {
    closeFd(listener.fd);
    throw std::runtime_error(std::string(who) + ": bind/listen on 127.0.0.1:" +
                             std::to_string(port) + " failed");
  }
  sockaddr_in bound{};
  socklen_t boundLen = sizeof(bound);
  if (::getsockname(listener.fd, reinterpret_cast<sockaddr*>(&bound),
                    &boundLen) != 0) {
    closeFd(listener.fd);
    throw std::runtime_error(std::string(who) + ": getsockname failed");
  }
  listener.port = ntohs(bound.sin_port);
  return listener;
}

int connectTcp(const std::string& host, std::uint16_t port, const char* who,
               int timeoutMs) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string(who) + ": socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    closeFd(fd);
    throw std::runtime_error(std::string(who) + ": bad IPv4 literal '" + host +
                             "'");
  }
  const auto fail = [&](const char* what) {
    closeFd(fd);
    throw std::runtime_error(std::string(who) + ": " + what + " " + host +
                             ":" + std::to_string(port) + " failed");
  };
  if (timeoutMs <= 0) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      fail("connect to");
    }
    return fd;
  }
  // Bounded connect: a black-holed peer (no RST) must fail in `timeoutMs`,
  // not the kernel's multi-minute SYN retry schedule — a router fails over
  // in seconds instead of stalling its slot.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    fail("configure socket for");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (errno != EINPROGRESS) fail("connect to");
    pollfd pending{};
    pending.fd = fd;
    pending.events = POLLOUT;
    int polled = 0;
    do {
      polled = ::poll(&pending, 1, timeoutMs);
    } while (polled < 0 && errno == EINTR);
    if (polled <= 0) fail("connect (timed out) to");
    int soError = 0;
    socklen_t len = sizeof(soError);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soError, &len) != 0 ||
        soError != 0) {
      fail("connect to");
    }
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    fail("configure socket for");
  }
  return fd;
}

void setIoTimeout(int fd, int timeoutMs) {
  if (timeoutMs <= 0) return;
  timeval tv{};
  tv.tv_sec = timeoutMs / 1000;
  tv.tv_usec = (timeoutMs % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// ---- SocketService ---------------------------------------------------------

SocketService::~SocketService() {
  // Backstop only: a derived class that started the service must already
  // have called stopService() from its own destructor (see the class
  // comment); this call is then an idempotent no-op.
  stopService();
}

void SocketService::startService(std::uint16_t port, const char* who) {
  const Listener listener = listenLoopback(port, who);
  listenFd_ = listener.fd;
  port_ = listener.port;
  acceptor_ = std::thread([this] { acceptLoop(); });
}

void SocketService::acceptLoop() {
  for (;;) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stopService()
    }
    const std::lock_guard<std::mutex> lock(acceptMu_);
    if (stopping_) {
      closeFd(fd);
      return;
    }
    ++accepted_;
    connections_.insert(fd);
    reapFinishedLocked();
    threads_.emplace_back([this, fd] { runConnection(fd); });
  }
}

void SocketService::runConnection(int fd) {
  serveConnection(fd);
  ::shutdown(fd, SHUT_RDWR);
  const std::lock_guard<std::mutex> lock(acceptMu_);
  if (connections_.erase(fd) > 0) closeFd(fd);
  finished_.push_back(std::this_thread::get_id());
}

void SocketService::reapFinishedLocked() {
  if (finished_.empty()) return;
  for (auto it = threads_.begin(); it != threads_.end();) {
    const auto f = std::find(finished_.begin(), finished_.end(),
                             it->get_id());
    if (f != finished_.end()) {
      it->join();  // the thread already ran to completion: returns at once
      finished_.erase(f);
      it = threads_.erase(it);
    } else {
      ++it;
    }
  }
}

void SocketService::stopService() {
  const std::lock_guard<std::mutex> stopLock(stopMu_);
  {
    const std::lock_guard<std::mutex> lock(acceptMu_);
    stopping_ = true;
    // Wake every connection thread blocked in recv; fds are closed by
    // their owning threads (or below, for threads past their erase).
    for (const int fd : connections_) ::shutdown(fd, SHUT_RDWR);
  }
  if (listenFd_ >= 0) {
    ::shutdown(listenFd_, SHUT_RDWR);  // unblocks accept()
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (listenFd_ >= 0) {
    closeFd(listenFd_);
    listenFd_ = -1;
  }
  // No new threads can appear now (the acceptor is gone), so the vector
  // is stable outside the lock for joining.
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(acceptMu_);
    threads.swap(threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  const std::lock_guard<std::mutex> lock(acceptMu_);
  for (const int fd : connections_) closeFd(fd);
  connections_.clear();
  finished_.clear();  // every thread was joined above
}

std::size_t SocketService::acceptedConnections() const {
  const std::lock_guard<std::mutex> lock(acceptMu_);
  return accepted_;
}

}  // namespace fsw::frameio
