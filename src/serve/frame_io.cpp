#include "src/serve/frame_io.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <unordered_map>

namespace fsw {

std::string encodeFrame(FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw std::invalid_argument("encodeFrame: payload exceeds frame cap");
  }
  std::string frame;
  frame.reserve(frameio::kFrameHeaderSize + payload.size());
  frame.append(kFrameMagic, sizeof(kFrameMagic));
  frame.push_back(static_cast<char>(kFrameVersion));
  frame.push_back(static_cast<char>(type));
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int shift = 24; shift >= 0; shift -= 8) {
    frame.push_back(static_cast<char>((len >> shift) & 0xff));
  }
  frame.append(payload);
  return frame;
}

}  // namespace fsw

namespace fsw::frameio {

bool sendAll(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t sent = ::send(fd, data, len, MSG_NOSIGNAL);
    if (sent <= 0) {
      if (sent < 0 && errno == EINTR) continue;
      return false;
    }
    data += sent;
    len -= static_cast<std::size_t>(sent);
  }
  return true;
}

int recvExact(int fd, char* data, std::size_t len) {
  bool any = false;
  while (len > 0) {
    const ssize_t got = ::recv(fd, data, len, 0);
    if (got == 0) return any ? -1 : 0;
    if (got < 0) {
      if (errno == EINTR) continue;
      return any ? -1 : 0;  // shutdown() surfaces as an error: treat as EOF
    }
    any = true;
    data += got;
    len -= static_cast<std::size_t>(got);
  }
  return 1;
}

IoTotals totals(const IoCounters& io) {
  IoTotals t;
  t.framesIn = io.framesIn.load(std::memory_order_relaxed);
  t.bytesIn = io.bytesIn.load(std::memory_order_relaxed);
  t.framesOut = io.framesOut.load(std::memory_order_relaxed);
  t.bytesOut = io.bytesOut.load(std::memory_order_relaxed);
  return t;
}

namespace {

bool frameTypeKnown(char type) {
  return type == static_cast<char>(FrameType::Request) ||
         type == static_cast<char>(FrameType::Result) ||
         type == static_cast<char>(FrameType::Error) ||
         type == static_cast<char>(FrameType::StoreGet) ||
         type == static_cast<char>(FrameType::StorePut) ||
         type == static_cast<char>(FrameType::StoreStats);
}

std::string wrongVersionMessage() {
  return "unsupported frame version (expected " +
         std::to_string(static_cast<int>(kFrameVersion)) + ")";
}

// epoll user-data tags for the two non-connection fds; connection events
// carry the Conn pointer (always > 2: pointers are aligned).
constexpr std::uint64_t kTagEventFd = 1;
constexpr std::uint64_t kTagListener = 2;

}  // namespace

ReadStatus readFrame(int fd, Frame& out, IoCounters* io) {
  char header[kFrameHeaderSize];
  const int got = recvExact(fd, header, sizeof(header));
  if (got == 0) return ReadStatus::Eof;
  if (got < 0) return ReadStatus::Bad;
  if (std::memcmp(header, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return ReadStatus::Bad;
  }
  if (static_cast<std::uint8_t>(header[4]) != kFrameVersion) {
    return ReadStatus::WrongVersion;
  }
  const char type = header[5];
  if (!frameTypeKnown(type)) {
    return ReadStatus::Bad;
  }
  std::uint32_t len = 0;
  for (std::size_t i = 6; i < kFrameHeaderSize; ++i) {
    len = (len << 8) | static_cast<std::uint8_t>(header[i]);
  }
  if (len > kMaxFramePayload) return ReadStatus::Bad;
  out.type = static_cast<FrameType>(type);
  out.payload.resize(len);
  if (len > 0 && recvExact(fd, out.payload.data(), len) != 1) {
    return ReadStatus::Bad;
  }
  if (io != nullptr) {
    io->framesIn.fetch_add(1, std::memory_order_relaxed);
    io->bytesIn.fetch_add(kFrameHeaderSize + len, std::memory_order_relaxed);
  }
  return ReadStatus::Ok;
}

bool sendFrame(int fd, FrameType type, std::string_view payload,
               IoCounters* io) {
  const std::string frame = encodeFrame(type, payload);
  if (!sendAll(fd, frame.data(), frame.size())) return false;
  if (io != nullptr) {
    io->framesOut.fetch_add(1, std::memory_order_relaxed);
    io->bytesOut.fetch_add(frame.size(), std::memory_order_relaxed);
  }
  return true;
}

void closeFd(int fd) {
  if (fd >= 0) ::close(fd);
}

Listener listenLoopback(std::uint16_t port, const char* who) {
  Listener listener;
  listener.fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener.fd < 0) {
    throw std::runtime_error(std::string(who) + ": socket() failed");
  }
  const int one = 1;
  ::setsockopt(listener.fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listener.fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener.fd, 256) != 0) {
    closeFd(listener.fd);
    throw std::runtime_error(std::string(who) + ": bind/listen on 127.0.0.1:" +
                             std::to_string(port) + " failed");
  }
  sockaddr_in bound{};
  socklen_t boundLen = sizeof(bound);
  if (::getsockname(listener.fd, reinterpret_cast<sockaddr*>(&bound),
                    &boundLen) != 0) {
    closeFd(listener.fd);
    throw std::runtime_error(std::string(who) + ": getsockname failed");
  }
  listener.port = ntohs(bound.sin_port);
  return listener;
}

int connectTcp(const std::string& host, std::uint16_t port, const char* who,
               int timeoutMs) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string(who) + ": socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    closeFd(fd);
    throw std::runtime_error(std::string(who) + ": bad IPv4 literal '" + host +
                             "'");
  }
  const auto fail = [&](const char* what) {
    closeFd(fd);
    throw std::runtime_error(std::string(who) + ": " + what + " " + host +
                             ":" + std::to_string(port) + " failed");
  };
  if (timeoutMs <= 0) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      fail("connect to");
    }
    return fd;
  }
  // Bounded connect: a black-holed peer (no RST) must fail in `timeoutMs`,
  // not the kernel's multi-minute SYN retry schedule — a router fails over
  // in seconds instead of stalling its slot.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    fail("configure socket for");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (errno != EINPROGRESS) fail("connect to");
    pollfd pending{};
    pending.fd = fd;
    pending.events = POLLOUT;
    int polled = 0;
    do {
      polled = ::poll(&pending, 1, timeoutMs);
    } while (polled < 0 && errno == EINTR);
    if (polled <= 0) fail("connect (timed out) to");
    int soError = 0;
    socklen_t len = sizeof(soError);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soError, &len) != 0 ||
        soError != 0) {
      fail("connect to");
    }
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    fail("configure socket for");
  }
  return fd;
}

void setIoTimeout(int fd, int timeoutMs) {
  if (timeoutMs <= 0) return;
  timeval tv{};
  tv.tv_sec = timeoutMs / 1000;
  tv.tv_usec = (timeoutMs % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// ---- SocketService: shared state -------------------------------------------

/// One connection's state machine. Ownership/threading discipline:
///   * `fd` and `loopIndex` are immutable after creation.
///   * The read buffer, epoll-interest shadow (`armed`, `parked`,
///     `wantWrite`), and timer-wheel fields are touched ONLY by the owning
///     event loop (legacy transport never builds a Conn).
///   * Everything under `mu` (inbox, outbox, flags) is the loop <-> handler
///     handoff. `closed` is additionally atomic so event dispatch can skip
///     dead connections without taking the lock.
struct SocketService::Conn {
  int fd = -1;
  std::size_t loopIndex = 0;

  // Event-loop-thread-only state.
  std::string rbuf;        ///< partial-frame assembly across reads
  std::size_t rpos = 0;    ///< parse offset into rbuf
  std::uint32_t armed = 0;  ///< epoll events currently registered
  bool parked = false;     ///< EPOLLIN disarmed (backpressure/drain/EOF)
  bool wantWrite = false;  ///< EPOLLOUT armed (kernel buffer was full)
  bool inWheel = false;
  std::chrono::steady_clock::time_point deadline{};

  // Loop <-> handler shared state.
  std::mutex mu;
  std::deque<Frame> inbox;  ///< parsed, unhandled frames (arrival order)
  bool handling = false;    ///< a handler thread owns this conn's inbox
  std::deque<std::string> outbox;  ///< encoded reply frames awaiting flush
  std::size_t outPos = 0;          ///< flushed bytes of outbox.front()
  std::size_t outBytes = 0;        ///< total queued reply bytes
  bool closeAfterFlush = false;
  bool readClosed = false;  ///< peer EOF seen (half-close: drain then close)
  std::atomic<bool> closed{false};
};

/// One event loop: an epoll instance, an eventfd for cross-thread wakes,
/// the connections it owns, and a lazy hashed timer wheel for idle reaping.
struct SocketService::Loop {
  static constexpr std::size_t kWheelSlots = 64;

  int epollFd = -1;
  int eventFd = -1;
  std::thread thread;

  // Loop-thread-only.
  std::unordered_map<int, std::shared_ptr<Conn>> conns;
  /// Conns closed during the current event batch; kept alive until the
  /// batch ends so stale `epoll_event.data.ptr`s in the same batch stay
  /// dereferenceable (their `closed` flag makes dispatch skip them).
  std::vector<std::shared_ptr<Conn>> graveyard;
  std::vector<std::vector<std::weak_ptr<Conn>>> wheel;
  std::size_t wheelCursor = 0;
  std::chrono::steady_clock::time_point wheelBase{};
  std::chrono::milliseconds tick{0};

  // Cross-thread handoff (guarded by mu, drained by the loop after an
  // eventfd wake).
  std::mutex mu;
  std::vector<std::shared_ptr<Conn>> incoming;  ///< freshly accepted conns
  std::vector<std::shared_ptr<Conn>> wakes;  ///< conns needing flush/unpark
};

struct SocketService::Reactor {
  std::vector<std::unique_ptr<Loop>> loops;
  std::size_t nextLoop = 0;  ///< round-robin conn placement (loop-0 only)
  std::atomic<bool> draining{false};
  std::atomic<bool> loopStop{false};
  std::atomic<bool> listenerClosed{false};

  std::vector<std::thread> handlers;
  std::mutex handlerMu;
  std::condition_variable handlerCv;
  std::deque<std::shared_ptr<Conn>> handlerQueue;
  bool handlerStop = false;

  /// Every live conn, for the drain-quiescence scan in stopService().
  std::mutex connsMu;
  std::unordered_set<std::shared_ptr<Conn>> allConns;
};

// ---- SocketService: lifecycle ----------------------------------------------

SocketService::SocketService() = default;

SocketService::~SocketService() {
  // Backstop only: a derived class that started the service must already
  // have called stopService() from its own destructor (see the class
  // comment); this call is then an idempotent no-op.
  stopService();
}

void SocketService::startService(std::uint16_t port, const char* who,
                                 TransportConfig transport) {
  cfg_ = transport;
  if (cfg_.eventLoopThreads == 0) cfg_.eventLoopThreads = 1;
  if (cfg_.handlerThreads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    cfg_.handlerThreads = std::max<std::size_t>(
        2, std::min<std::size_t>(8, hw == 0 ? 2 : hw));
  }
  if (cfg_.maxPipelinedFrames == 0) cfg_.maxPipelinedFrames = 1;

  const Listener listener = listenLoopback(port, who);
  listenFd_ = listener.fd;
  port_ = listener.port;

  if (cfg_.mode == TransportMode::ThreadPerConnection) {
    acceptor_ = std::thread([this] { acceptLoop(); });
    return;
  }

  const int flags = ::fcntl(listenFd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(listenFd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    closeFd(listenFd_);
    listenFd_ = -1;
    throw std::runtime_error(std::string(who) +
                             ": nonblocking listener setup failed");
  }
  reactor_ = std::make_unique<Reactor>();
  try {
    for (std::size_t i = 0; i < cfg_.eventLoopThreads; ++i) {
      auto loop = std::make_unique<Loop>();
      loop->epollFd = ::epoll_create1(EPOLL_CLOEXEC);
      loop->eventFd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
      if (loop->epollFd < 0 || loop->eventFd < 0) {
        closeFd(loop->epollFd);
        closeFd(loop->eventFd);
        throw std::runtime_error(std::string(who) +
                                 ": epoll/eventfd setup failed");
      }
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = kTagEventFd;
      ::epoll_ctl(loop->epollFd, EPOLL_CTL_ADD, loop->eventFd, &ev);
      if (cfg_.idleTimeoutMs > 0) {
        loop->wheel.assign(Loop::kWheelSlots, {});
        loop->tick = std::chrono::milliseconds(
            std::clamp(cfg_.idleTimeoutMs / 16, 5, 1000));
        loop->wheelBase = std::chrono::steady_clock::now();
      }
      reactor_->loops.push_back(std::move(loop));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kTagListener;
    if (::epoll_ctl(reactor_->loops[0]->epollFd, EPOLL_CTL_ADD, listenFd_,
                    &ev) != 0) {
      throw std::runtime_error(std::string(who) +
                               ": registering the listener failed");
    }
  } catch (...) {
    for (auto& loop : reactor_->loops) {
      closeFd(loop->epollFd);
      closeFd(loop->eventFd);
    }
    reactor_.reset();
    closeFd(listenFd_);
    listenFd_ = -1;
    throw;
  }
  for (std::size_t i = 0; i < reactor_->loops.size(); ++i) {
    reactor_->loops[i]->thread = std::thread([this, i] { loopMain(i); });
  }
  for (std::size_t h = 0; h < cfg_.handlerThreads; ++h) {
    reactor_->handlers.emplace_back([this] { handlerMain(); });
  }
}

void SocketService::stopService() {
  const std::lock_guard<std::mutex> stopLock(stopMu_);
  if (stopped_) return;
  stopped_ = true;
  if (reactor_ != nullptr) {
    stopReactor();
  } else {
    stopLegacy();
  }
}

TransportTotals SocketService::transportTotals() const {
  TransportTotals t;
  t.accepted = accepted_.load(std::memory_order_relaxed);
  t.refusedOverLimit = refused_.load(std::memory_order_relaxed);
  t.idleClosed = idleClosed_.load(std::memory_order_relaxed);
  t.streamErrors = streamErrors_.load(std::memory_order_relaxed);
  t.peakWriteQueueBytes = peakWriteQueue_.load(std::memory_order_relaxed);
  t.liveConnections = live_.load(std::memory_order_relaxed);
  t.transportThreads =
      reactor_ != nullptr
          ? reactor_->loops.size() + reactor_->handlers.size()
          : 1 + t.liveConnections;  // acceptor + one thread per conn
  return t;
}

void SocketService::refuseOverLimit(int fd) {
  refused_.fetch_add(1, std::memory_order_relaxed);
  // Best-effort refusal before the clean shutdown: a fresh connection's
  // send buffer is empty, so the tiny error frame goes out without
  // blocking even on a nonblocking fd. Deliberately not counted in the
  // IoCounters — refused connections never enter the frame stream.
  const std::string frame =
      fsw::encodeFrame(FrameType::Error, "service at connection capacity");
  (void)::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
  ::shutdown(fd, SHUT_RDWR);
  closeFd(fd);
}

void SocketService::bumpPeakQueue(std::size_t depth) {
  std::size_t prev = peakWriteQueue_.load(std::memory_order_relaxed);
  while (depth > prev && !peakWriteQueue_.compare_exchange_weak(
                             prev, depth, std::memory_order_relaxed)) {
  }
}

// ---- SocketService: Responder ----------------------------------------------

bool SocketService::Responder::send(FrameType type, std::string_view payload) {
  if (conn_ != nullptr) {
    std::string frame = fsw::encodeFrame(type, payload);
    const std::size_t size = frame.size();
    std::size_t depth = 0;
    {
      const std::lock_guard<std::mutex> lock(conn_->mu);
      if (conn_->closed.load(std::memory_order_relaxed)) return false;
      conn_->outBytes += size;
      depth = conn_->outBytes;
      conn_->outbox.push_back(std::move(frame));
    }
    // Counted at the commit point (enqueue): by the time the peer holds
    // the reply, the host's counters already include it.
    svc_->io_.framesOut.fetch_add(1, std::memory_order_relaxed);
    svc_->io_.bytesOut.fetch_add(size, std::memory_order_relaxed);
    svc_->bumpPeakQueue(depth);
    svc_->wakeConn(conn_);
    return true;
  }
  if (dead_) return false;
  if (!sendFrame(fd_, type, payload, &svc_->io_)) {
    dead_ = true;
    return false;
  }
  return true;
}

// ---- SocketService: legacy thread-per-connection transport -----------------

void SocketService::acceptLoop() {
  for (;;) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stopService()
    }
    if (cfg_.maxConnections > 0 &&
        live_.load(std::memory_order_relaxed) >= cfg_.maxConnections) {
      refuseOverLimit(fd);
      continue;
    }
    const std::lock_guard<std::mutex> lock(acceptMu_);
    if (stopping_) {
      closeFd(fd);
      return;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    live_.fetch_add(1, std::memory_order_relaxed);
    connections_.insert(fd);
    reapFinishedLocked();
    threads_.emplace_back([this, fd] { runConnection(fd); });
  }
}

void SocketService::runConnection(int fd) {
  serveLegacy(fd);
  ::shutdown(fd, SHUT_RDWR);
  const std::lock_guard<std::mutex> lock(acceptMu_);
  if (connections_.erase(fd) > 0) closeFd(fd);
  live_.fetch_sub(1, std::memory_order_relaxed);
  finished_.push_back(std::this_thread::get_id());
}

void SocketService::serveLegacy(int fd) {
  for (;;) {
    Frame frame;
    const ReadStatus status = readFrame(fd, frame, &io_);
    if (status == ReadStatus::Eof) return;
    if (status == ReadStatus::Bad) {
      // The stream itself cannot be trusted (garbage magic, oversized or
      // truncated frame): drop the connection.
      streamErrors_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (status == ReadStatus::WrongVersion) {
      streamErrors_.fetch_add(1, std::memory_order_relaxed);
      (void)sendFrame(fd, FrameType::Error, wrongVersionMessage(), &io_);
      return;
    }
    Responder out(this, fd);
    try {
      handleFrame(out, std::move(frame));
    } catch (...) {
      return;  // an escaping handler poisons the connection
    }
    if (out.dead_ || out.close_) return;
  }
}

void SocketService::reapFinishedLocked() {
  if (finished_.empty()) return;
  for (auto it = threads_.begin(); it != threads_.end();) {
    const auto f = std::find(finished_.begin(), finished_.end(),
                             it->get_id());
    if (f != finished_.end()) {
      it->join();  // the thread already ran to completion: returns at once
      finished_.erase(f);
      it = threads_.erase(it);
    } else {
      ++it;
    }
  }
}

void SocketService::stopLegacy() {
  {
    const std::lock_guard<std::mutex> lock(acceptMu_);
    stopping_ = true;
    // Wake every connection thread blocked in recv; fds are closed by
    // their owning threads (or below, for threads past their erase).
    for (const int fd : connections_) ::shutdown(fd, SHUT_RDWR);
  }
  if (listenFd_ >= 0) {
    ::shutdown(listenFd_, SHUT_RDWR);  // unblocks accept()
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (listenFd_ >= 0) {
    closeFd(listenFd_);
    listenFd_ = -1;
  }
  // No new threads can appear now (the acceptor is gone), so the vector
  // is stable outside the lock for joining.
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(acceptMu_);
    threads.swap(threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  const std::lock_guard<std::mutex> lock(acceptMu_);
  for (const int fd : connections_) closeFd(fd);
  connections_.clear();
  finished_.clear();  // every thread was joined above
}

// ---- SocketService: epoll reactor transport --------------------------------

void SocketService::loopMain(std::size_t index) {
  Loop& loop = *reactor_->loops[index];
  std::vector<epoll_event> events(64);
  bool drainSwept = false;
  for (;;) {
    int timeoutMs = -1;
    if (cfg_.idleTimeoutMs > 0 && !loop.conns.empty()) {
      timeoutMs = static_cast<int>(loop.tick.count());
    }
    const int n = ::epoll_wait(loop.epollFd, events.data(),
                               static_cast<int>(events.size()), timeoutMs);
    if (n < 0 && errno != EINTR) return;
    for (int i = 0; i < std::max(n, 0); ++i) {
      const epoll_event& ev = events[i];
      if (ev.data.u64 == kTagEventFd) {
        std::uint64_t token = 0;
        while (::read(loop.eventFd, &token, sizeof(token)) > 0) {
        }
        continue;
      }
      if (ev.data.u64 == kTagListener) {
        acceptReady(loop);
        continue;
      }
      Conn* raw = static_cast<Conn*>(ev.data.ptr);
      if (raw == nullptr || raw->closed.load(std::memory_order_acquire)) {
        continue;
      }
      const auto it = loop.conns.find(raw->fd);
      if (it == loop.conns.end() || it->second.get() != raw) continue;
      const std::shared_ptr<Conn> conn = it->second;
      if (ev.events & EPOLLERR) {
        closeConn(loop, conn);
        continue;
      }
      if (ev.events & EPOLLOUT) flushConn(loop, conn);
      if (conn->closed.load(std::memory_order_relaxed)) continue;
      if (ev.events & EPOLLIN) handleReadable(loop, conn);
      if (conn->closed.load(std::memory_order_relaxed)) continue;
      if ((ev.events & EPOLLHUP) && conn->parked) {
        // Full hangup on a parked connection: nothing can be read (reads
        // are disarmed) and nothing sent will be received — close, or a
        // level-triggered HUP would spin this loop forever.
        closeConn(loop, conn);
      }
    }
    processWakes(loop);
    if (cfg_.idleTimeoutMs > 0) wheelAdvance(loop);
    if (reactor_->draining.load(std::memory_order_acquire) && !drainSwept) {
      drainSwept = true;
      if (index == 0 && !reactor_->listenerClosed.exchange(true)) {
        ::epoll_ctl(loop.epollFd, EPOLL_CTL_DEL, listenFd_, nullptr);
        closeFd(listenFd_);
        listenFd_ = -1;
      }
      // Park every read and kick every flush: no new frames during drain,
      // queued replies keep going out.
      std::vector<std::shared_ptr<Conn>> conns;
      conns.reserve(loop.conns.size());
      for (const auto& [fd, c] : loop.conns) conns.push_back(c);
      for (const auto& c : conns) {
        updateInterest(loop, c);
        flushConn(loop, c);
      }
    }
    loop.graveyard.clear();
    if (reactor_->loopStop.load(std::memory_order_acquire)) {
      std::vector<std::shared_ptr<Conn>> conns;
      conns.reserve(loop.conns.size());
      for (const auto& [fd, c] : loop.conns) conns.push_back(c);
      for (const auto& c : conns) closeConn(loop, c);
      loop.graveyard.clear();
      return;
    }
  }
}

void SocketService::acceptReady(Loop& loop) {
  for (;;) {
    const int fd =
        ::accept4(listenFd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or the listener is gone
    }
    if (reactor_->draining.load(std::memory_order_acquire)) {
      closeFd(fd);
      continue;
    }
    if (cfg_.maxConnections > 0 &&
        live_.load(std::memory_order_relaxed) >= cfg_.maxConnections) {
      refuseOverLimit(fd);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    live_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->loopIndex = reactor_->nextLoop++ % reactor_->loops.size();
    {
      const std::lock_guard<std::mutex> lock(reactor_->connsMu);
      reactor_->allConns.insert(conn);
    }
    if (conn->loopIndex == 0) {
      registerConn(loop, conn);  // we ARE loop 0
    } else {
      Loop& target = *reactor_->loops[conn->loopIndex];
      {
        const std::lock_guard<std::mutex> lock(target.mu);
        target.incoming.push_back(std::move(conn));
      }
      wakeLoop(target);
    }
  }
}

void SocketService::registerConn(Loop& loop,
                                 const std::shared_ptr<Conn>& conn) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = conn.get();
  if (::epoll_ctl(loop.epollFd, EPOLL_CTL_ADD, conn->fd, &ev) != 0) {
    conn->closed.store(true, std::memory_order_release);
    closeFd(conn->fd);
    {
      const std::lock_guard<std::mutex> lock(reactor_->connsMu);
      reactor_->allConns.erase(conn);
    }
    live_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  conn->armed = EPOLLIN;
  loop.conns[conn->fd] = conn;
  if (cfg_.idleTimeoutMs > 0) {
    conn->deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(cfg_.idleTimeoutMs);
    wheelSchedule(loop, conn);
  }
  updateInterest(loop, conn);  // parks immediately if a drain raced the add
}

void SocketService::handleReadable(Loop& loop,
                                   const std::shared_ptr<Conn>& conn) {
  if (conn->closed.load(std::memory_order_relaxed) || conn->parked) return;
  bool eof = false;
  bool error = false;
  char buf[64 * 1024];
  std::size_t total = 0;
  for (;;) {
    const ssize_t got = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (got > 0) {
      conn->rbuf.append(buf, static_cast<std::size_t>(got));
      total += static_cast<std::size_t>(got);
      // Fairness cap: a firehose peer yields after 1 MiB; level-triggered
      // epoll re-reports the leftover on the next wait.
      if (static_cast<std::size_t>(got) < sizeof(buf) || total >= (1u << 20)) {
        break;
      }
      continue;
    }
    if (got == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    error = true;
    break;
  }
  parseFrames(loop, conn);
  if (conn->closed.load(std::memory_order_relaxed)) return;
  if (error) {
    closeConn(loop, conn);
    return;
  }
  if (eof) {
    if (conn->rbuf.size() > conn->rpos) {
      // EOF mid-frame: a truncated stream, same discipline as
      // ReadStatus::Bad.
      streamErrors_.fetch_add(1, std::memory_order_relaxed);
      closeConn(loop, conn);
      return;
    }
    {
      const std::lock_guard<std::mutex> lock(conn->mu);
      conn->readClosed = true;
    }
    updateInterest(loop, conn);  // half-close: reads off,
    flushConn(loop, conn);       // in-flight frames drain, then close
  }
}

void SocketService::parseFrames(Loop& loop,
                                const std::shared_ptr<Conn>& conn) {
  bool gotFrame = false;
  for (;;) {
    const std::size_t avail = conn->rbuf.size() - conn->rpos;
    if (avail < kFrameHeaderSize) break;
    const char* h = conn->rbuf.data() + conn->rpos;
    if (std::memcmp(h, kFrameMagic, sizeof(kFrameMagic)) != 0) {
      streamErrors_.fetch_add(1, std::memory_order_relaxed);
      closeConn(loop, conn);
      return;
    }
    if (static_cast<std::uint8_t>(h[4]) != kFrameVersion) {
      // Same discipline as ReadStatus::WrongVersion: answer, then drop
      // (once the error frame has flushed).
      streamErrors_.fetch_add(1, std::memory_order_relaxed);
      std::string frame =
          fsw::encodeFrame(FrameType::Error, wrongVersionMessage());
      const std::size_t size = frame.size();
      {
        const std::lock_guard<std::mutex> lock(conn->mu);
        conn->outBytes += size;
        conn->outbox.push_back(std::move(frame));
        conn->closeAfterFlush = true;
      }
      io_.framesOut.fetch_add(1, std::memory_order_relaxed);
      io_.bytesOut.fetch_add(size, std::memory_order_relaxed);
      updateInterest(loop, conn);
      flushConn(loop, conn);
      return;
    }
    const char type = h[5];
    if (!frameTypeKnown(type)) {
      streamErrors_.fetch_add(1, std::memory_order_relaxed);
      closeConn(loop, conn);
      return;
    }
    std::uint32_t len = 0;
    for (std::size_t i = 6; i < kFrameHeaderSize; ++i) {
      len = (len << 8) | static_cast<std::uint8_t>(h[i]);
    }
    if (len > kMaxFramePayload) {
      streamErrors_.fetch_add(1, std::memory_order_relaxed);
      closeConn(loop, conn);
      return;
    }
    if (avail < kFrameHeaderSize + len) break;  // partial frame: wait
    Frame frame;
    frame.type = static_cast<FrameType>(type);
    frame.payload.assign(h + kFrameHeaderSize, len);
    conn->rpos += kFrameHeaderSize + len;
    io_.framesIn.fetch_add(1, std::memory_order_relaxed);
    io_.bytesIn.fetch_add(kFrameHeaderSize + len, std::memory_order_relaxed);
    bool dispatch = false;
    {
      const std::lock_guard<std::mutex> lock(conn->mu);
      conn->inbox.push_back(std::move(frame));
      if (!conn->handling) {
        conn->handling = true;
        dispatch = true;
      }
    }
    if (dispatch) enqueueHandlerWork(conn);
    gotFrame = true;
  }
  if (conn->rpos > 0) {
    conn->rbuf.erase(0, conn->rpos);
    conn->rpos = 0;
  }
  if (gotFrame) {
    // The idle clock refreshes ONLY on complete parsed frames — a
    // slow-loris trickling bytes never resets it.
    if (cfg_.idleTimeoutMs > 0) {
      conn->deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(cfg_.idleTimeoutMs);
      wheelSchedule(loop, conn);
    }
    updateInterest(loop, conn);  // park if the inbox/outbox caps tripped
  }
}

void SocketService::flushConn(Loop& loop, const std::shared_ptr<Conn>& conn) {
  if (conn->closed.load(std::memory_order_relaxed)) return;
  bool blocked = false;
  bool dead = false;
  bool finished = false;
  {
    const std::lock_guard<std::mutex> lock(conn->mu);
    while (!conn->outbox.empty()) {
      const std::string& front = conn->outbox.front();
      const ssize_t sent = ::send(conn->fd, front.data() + conn->outPos,
                                  front.size() - conn->outPos, MSG_NOSIGNAL);
      if (sent < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          blocked = true;  // kernel buffer full: EPOLLOUT resumes us
          break;
        }
        dead = true;  // peer gone mid-reply
        break;
      }
      conn->outPos += static_cast<std::size_t>(sent);
      conn->outBytes -= static_cast<std::size_t>(sent);
      if (conn->outPos == front.size()) {
        conn->outbox.pop_front();
        conn->outPos = 0;
      }
    }
    if (!dead && conn->outbox.empty()) {
      if (conn->closeAfterFlush) {
        dead = true;  // everything owed is out: drop as requested
      } else if (conn->readClosed && conn->inbox.empty() && !conn->handling) {
        finished = true;  // half-closed peer got every reply: finish
      }
    }
  }
  if (dead || finished) {
    closeConn(loop, conn);
    return;
  }
  conn->wantWrite = blocked;
  updateInterest(loop, conn);
}

void SocketService::updateInterest(Loop& loop,
                                   const std::shared_ptr<Conn>& conn) {
  if (conn->closed.load(std::memory_order_relaxed)) return;
  bool park = reactor_->draining.load(std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->readClosed || conn->closeAfterFlush) park = true;
    if (conn->inbox.size() >= cfg_.maxPipelinedFrames) park = true;
    if (conn->outBytes >= cfg_.writeQueueCap) park = true;
  }
  conn->parked = park;
  const std::uint32_t want =
      (park ? 0u : EPOLLIN) | (conn->wantWrite ? EPOLLOUT : 0u);
  if (want == conn->armed) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.ptr = conn.get();
  if (::epoll_ctl(loop.epollFd, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->armed = want;
  }
}

void SocketService::closeConn(Loop& loop, const std::shared_ptr<Conn>& conn,
                              bool countIdle) {
  {
    const std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed.load(std::memory_order_relaxed)) return;
    conn->closed.store(true, std::memory_order_release);
    conn->inbox.clear();
    conn->outbox.clear();
    conn->outPos = 0;
    conn->outBytes = 0;
  }
  if (countIdle) idleClosed_.fetch_add(1, std::memory_order_relaxed);
  ::epoll_ctl(loop.epollFd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::shutdown(conn->fd, SHUT_RDWR);
  closeFd(conn->fd);
  loop.conns.erase(conn->fd);
  loop.graveyard.push_back(conn);
  {
    const std::lock_guard<std::mutex> lock(reactor_->connsMu);
    reactor_->allConns.erase(conn);
  }
  live_.fetch_sub(1, std::memory_order_relaxed);
}

void SocketService::processWakes(Loop& loop) {
  std::vector<std::shared_ptr<Conn>> incoming;
  std::vector<std::shared_ptr<Conn>> wakes;
  {
    const std::lock_guard<std::mutex> lock(loop.mu);
    incoming.swap(loop.incoming);
    wakes.swap(loop.wakes);
  }
  for (const auto& conn : incoming) registerConn(loop, conn);
  for (const auto& conn : wakes) {
    if (conn->closed.load(std::memory_order_relaxed)) continue;
    flushConn(loop, conn);  // also unparks / closes-after-flush / finishes
    if (conn->closed.load(std::memory_order_relaxed)) continue;
    if (cfg_.idleTimeoutMs > 0) {
      // Handler/reply activity counts as liveness.
      conn->deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(cfg_.idleTimeoutMs);
      wheelSchedule(loop, conn);
    }
  }
}

void SocketService::wheelSchedule(Loop& loop,
                                  const std::shared_ptr<Conn>& conn) {
  if (cfg_.idleTimeoutMs <= 0 || conn->inWheel ||
      conn->closed.load(std::memory_order_relaxed)) {
    return;
  }
  // Lazy wheel: at most one entry per conn; the deadline field is the
  // truth, slots only bound when we look again.
  const auto delta = conn->deadline - loop.wheelBase;
  long ticks = loop.tick.count() > 0 ? delta / loop.tick + 1 : 1;
  ticks = std::clamp<long>(ticks, 1,
                           static_cast<long>(Loop::kWheelSlots) - 1);
  loop.wheel[(loop.wheelCursor + static_cast<std::size_t>(ticks)) %
             Loop::kWheelSlots]
      .push_back(conn);
  conn->inWheel = true;
}

void SocketService::wheelAdvance(Loop& loop) {
  const auto now = std::chrono::steady_clock::now();
  int steps = 0;
  while (loop.wheelBase + loop.tick <= now) {
    if (++steps > static_cast<int>(2 * Loop::kWheelSlots)) {
      loop.wheelBase = now;  // stalled (VM pause): rebase, deadlines decide
      break;
    }
    loop.wheelBase += loop.tick;
    loop.wheelCursor = (loop.wheelCursor + 1) % Loop::kWheelSlots;
    std::vector<std::weak_ptr<Conn>> due;
    due.swap(loop.wheel[loop.wheelCursor]);
    for (const auto& weak : due) {
      const std::shared_ptr<Conn> conn = weak.lock();
      if (!conn || conn->closed.load(std::memory_order_relaxed)) continue;
      conn->inWheel = false;
      if (conn->deadline > now) {
        wheelSchedule(loop, conn);
        continue;
      }
      bool idle = false;
      {
        const std::lock_guard<std::mutex> lock(conn->mu);
        idle = conn->inbox.empty() && !conn->handling && conn->outbox.empty();
      }
      if (idle) {
        closeConn(loop, conn, /*countIdle=*/true);
      } else {
        // A solve in flight or replies still flushing is not idle: push
        // the clock forward instead of reaping under the peer.
        conn->deadline =
            now + std::chrono::milliseconds(cfg_.idleTimeoutMs);
        wheelSchedule(loop, conn);
      }
    }
  }
}

void SocketService::wakeConn(const std::shared_ptr<Conn>& conn) {
  Loop& loop = *reactor_->loops[conn->loopIndex];
  {
    const std::lock_guard<std::mutex> lock(loop.mu);
    loop.wakes.push_back(conn);
  }
  wakeLoop(loop);
}

void SocketService::wakeLoop(Loop& loop) {
  const std::uint64_t one = 1;
  while (::write(loop.eventFd, &one, sizeof(one)) < 0 && errno == EINTR) {
  }
}

void SocketService::enqueueHandlerWork(const std::shared_ptr<Conn>& conn) {
  {
    const std::lock_guard<std::mutex> lock(reactor_->handlerMu);
    reactor_->handlerQueue.push_back(conn);
  }
  reactor_->handlerCv.notify_one();
}

void SocketService::handlerMain() {
  Reactor& r = *reactor_;
  for (;;) {
    std::shared_ptr<Conn> conn;
    {
      std::unique_lock<std::mutex> lock(r.handlerMu);
      r.handlerCv.wait(lock,
                       [&] { return r.handlerStop || !r.handlerQueue.empty(); });
      if (r.handlerQueue.empty()) return;  // stopping, queue drained
      conn = std::move(r.handlerQueue.front());
      r.handlerQueue.pop_front();
    }
    // Drain this connection's inbox: one frame at a time, in arrival
    // order (replies for pipelined peers stay in order). `handling` keeps
    // exactly one handler on a connection.
    for (;;) {
      Frame frame;
      {
        const std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->inbox.empty() ||
            conn->closed.load(std::memory_order_relaxed) ||
            conn->closeAfterFlush) {
          conn->handling = false;
          break;
        }
        frame = std::move(conn->inbox.front());
        conn->inbox.pop_front();
      }
      Responder out(this, conn);
      try {
        handleFrame(out, std::move(frame));
      } catch (...) {
        out.close_ = true;  // an escaping handler poisons the connection
      }
      if (out.close_) {
        const std::lock_guard<std::mutex> lock(conn->mu);
        conn->closeAfterFlush = true;
        conn->inbox.clear();  // frames behind a close-worthy one are dropped
        conn->handling = false;
        break;
      }
    }
    wakeConn(conn);  // flush replies, unpark reads, or finish the close
  }
}

void SocketService::stopReactor() {
  Reactor& r = *reactor_;
  // 1. Stop accepting and park every read: no new frames enter.
  r.draining.store(true, std::memory_order_release);
  for (auto& loop : r.loops) wakeLoop(*loop);
  // 2. Finish in-flight frames: handlers drain every parsed inbox, then
  // exit. Deliberately unbounded — a frame mid-solve completes and its
  // reply is committed while the loops keep flushing.
  {
    const std::lock_guard<std::mutex> lock(r.handlerMu);
    r.handlerStop = true;
  }
  r.handlerCv.notify_all();
  for (auto& t : r.handlers) {
    if (t.joinable()) t.join();
  }
  // 3. Bounded flush: wait for every write queue to empty (or its peer to
  // vanish), up to drainTimeoutMs; stragglers are force-closed below.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(std::max(0, cfg_.drainTimeoutMs));
  for (;;) {
    bool quiescent = true;
    {
      const std::lock_guard<std::mutex> lock(r.connsMu);
      for (const auto& conn : r.allConns) {
        const std::lock_guard<std::mutex> cl(conn->mu);
        if (!conn->outbox.empty() || conn->handling ||
            !conn->inbox.empty()) {
          quiescent = false;
          break;
        }
      }
    }
    if (quiescent || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // 4. Tear the loops down; they force-close whatever is left.
  r.loopStop.store(true, std::memory_order_release);
  for (auto& loop : r.loops) wakeLoop(*loop);
  for (auto& loop : r.loops) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  if (!r.listenerClosed.load(std::memory_order_relaxed) && listenFd_ >= 0) {
    closeFd(listenFd_);  // the loops never ran the drain sweep
  }
  listenFd_ = -1;
  for (auto& loop : r.loops) {
    closeFd(loop->eventFd);
    closeFd(loop->epollFd);
    loop->conns.clear();
    loop->graveyard.clear();
  }
  const std::lock_guard<std::mutex> lock(r.connsMu);
  r.allConns.clear();
}

}  // namespace fsw::frameio
