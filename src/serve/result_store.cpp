#include "src/serve/result_store.hpp"

#include <sys/socket.h>

#include <cmath>
#include <sstream>
#include <utility>

namespace fsw {

using frameio::closeFd;
using frameio::Frame;
using frameio::readFrame;
using frameio::ReadStatus;
using frameio::sendFrame;

// ---- ResultStoreHost -------------------------------------------------------

ResultStoreHost::ResultStoreHost(ResultStoreConfig config)
    : config_(config),
      results_(config.capacity),
      bounds_(config.boundCapacity) {
  startService(config_.port, "ResultStoreHost", config_.transport);
}

ResultStoreHost::~ResultStoreHost() { stop(); }

void ResultStoreHost::handleFrame(Responder& out, Frame frame) {
  // Frame-level discipline already ran in the shared transport; only
  // well-formed frames arrive here. The length prefix kept the stream in
  // sync: payload problems are answered with an error frame and the
  // connection stays serviceable. Replies speak the dialect the request
  // arrived in (binary block vs frozen text), so text-speaking peers keep
  // working unchanged.
  std::string error;
  try {
    const bool binary = binio::isBinary(frame.payload);
    std::string encoded;
    switch (frame.type) {
      case FrameType::StoreGet: {
        const StoreGet get = decodeStoreGet(frame.payload);
        if (get.near) {
          // Near (prefix) GET: `key` is a structural prefix; answer with
          // the most recently stored winner sharing it. NO bound travels —
          // a neighbor's value is not a bound for the asker's key; the
          // asker re-evaluates the plan under its own parameters.
          const auto neighbor = bounds_.nearestKey(get.key);
          const ResultCache::Entry entry =
              neighbor ? results_.lookup(*neighbor) : ResultCache::Entry{};
          const double noBound = std::numeric_limits<double>::infinity();
          if (binary) {
            encoded = encodeStoreReply(entry.get(), noBound);
          } else {
            std::ostringstream os;
            writeStoreReply(os, entry.get(), noBound);
            encoded = os.str();
          }
          const std::lock_guard<std::mutex> lock(mu_);
          ++stats_.nearGets;
          if (entry != nullptr) ++stats_.nearHits;
          break;
        }
        // wantPlan = false is a bound-only probe (the asker re-solves by
        // policy): skip the result lookup so no plan is serialized just
        // to be discarded on the far side.
        const ResultCache::Entry entry =
            get.wantPlan ? results_.lookup(get.key) : ResultCache::Entry{};
        // The board's bound travels on every reply: a stored winner's
        // value IS its bound, and an evicted winner's bound survives on
        // the board — either way the asker learns the fleet incumbent.
        const double bound =
            bounds_.lookup(get.key).value_or(
                std::numeric_limits<double>::infinity());
        if (binary) {
          encoded = encodeStoreReply(entry.get(), bound);
        } else {
          std::ostringstream os;
          writeStoreReply(os, entry.get(), bound);
          encoded = os.str();
        }
        {
          const std::lock_guard<std::mutex> lock(mu_);
          ++stats_.gets;
          if (entry != nullptr) ++stats_.hits;
          if (std::isfinite(bound)) ++stats_.boundHits;
        }
        break;
      }
      case FrameType::StorePut: {
        StorePut put = decodeStorePut(frame.payload);
        (void)results_.insert(put.key, put.plan);
        bounds_.publish(put.key, put.plan.value);
        // The ack echoes the published value — frame sync for the
        // pipelined putter, no extra board lookup.
        if (binary) {
          encoded = encodeStoreReply(nullptr, put.plan.value);
        } else {
          std::ostringstream os;
          writeStoreReply(os, nullptr, put.plan.value);
          encoded = os.str();
        }
        const std::lock_guard<std::mutex> lock(mu_);
        ++stats_.puts;
        break;
      }
      case FrameType::StoreStats: {
        StoreStatsWire wire;
        const ResultCache::Stats rs = results_.stats();
        wire.entries = results_.size();
        wire.evictions = rs.evictions;
        wire.bounds = bounds_.size();
        {
          const std::lock_guard<std::mutex> lock(mu_);
          wire.gets = stats_.gets;
          wire.hits = stats_.hits;
          wire.boundHits = stats_.boundHits;
          wire.puts = stats_.puts;
        }
        const frameio::IoTotals io = ioTotals();
        wire.framesIn = io.framesIn;
        wire.bytesIn = io.bytesIn;
        wire.framesOut = io.framesOut;
        wire.bytesOut = io.bytesOut;
        // The transport ledger (PR 8): who the store accepts, refuses and
        // reaps, and the backpressure high-water mark — the sparse
        // per-host accounting fleet operators read instead of attaching
        // heavyweight instrumentation.
        const frameio::TransportTotals t = transportTotals();
        wire.accepted = t.accepted;
        wire.refusedOverLimit = t.refusedOverLimit;
        wire.idleClosed = t.idleClosed;
        wire.peakWriteQueueBytes = t.peakWriteQueueBytes;
        if (binary) {
          encoded = encodeStoreStats(wire);
        } else {
          // The frozen text snapshot predates the IO counters; text
          // askers get the original 7.
          std::ostringstream os;
          writeStoreStats(os, wire);
          encoded = os.str();
        }
        break;
      }
      default:
        throw std::runtime_error("expected a store frame (GET/PUT/STATS)");
    }
    (void)out.send(FrameType::Result, encoded);
    return;
  } catch (const std::exception& e) {
    error = e.what();
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.errors;
  }
  (void)out.send(FrameType::Error, error);
}

ResultStoreHost::Stats ResultStoreHost::stats() const {
  Stats snapshot;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    snapshot = stats_;
  }
  snapshot.connections = acceptedConnections();
  const frameio::IoTotals io = ioTotals();
  snapshot.framesIn = io.framesIn;
  snapshot.bytesIn = io.bytesIn;
  snapshot.framesOut = io.framesOut;
  snapshot.bytesOut = io.bytesOut;
  const frameio::TransportTotals t = transportTotals();
  snapshot.errors += t.streamErrors;
  snapshot.refusedOverLimit = t.refusedOverLimit;
  snapshot.idleClosed = t.idleClosed;
  snapshot.peakWriteQueueBytes = t.peakWriteQueueBytes;
  snapshot.transportThreads = t.transportThreads;
  return snapshot;
}

// ---- RemoteResultStore -----------------------------------------------------

namespace {

/// Pipelined ops in flight per batch (getMany/putMany): enough to
/// amortize the round trip, small enough that the unread frames of either
/// direction can never fill both peers' socket buffers at once — the
/// write-everything-first alternative deadlocks via TCP flow control once
/// a large batch's frames exceed the buffers (client blocked in send,
/// host blocked in send, nobody reading).
constexpr std::size_t kPipelineWindow = 8;

}  // namespace

RemoteResultStore::RemoteResultStore(const std::string& host,
                                     std::uint16_t port, int ioTimeoutMs)
    : host_(host), port_(port), ioTimeoutMs_(ioTimeoutMs) {
  fd_ = frameio::connectTcp(host_, port_, "RemoteResultStore", ioTimeoutMs_);
  frameio::setIoTimeout(fd_, ioTimeoutMs_);
}

RemoteResultStore::~RemoteResultStore() { close(); }

bool RemoteResultStore::roundTrip(FrameType type, const std::string& payload,
                                  std::string& reply, std::string& error,
                                  bool& errorFrame) {
  // Caller holds mu_. Any transport failure closes the socket — the
  // stream cannot be resynchronized — and the client runs degraded until
  // reconnect().
  errorFrame = false;
  if (fd_ < 0) return false;
  const std::string frame = encodeFrame(type, payload);
  if (!frameio::sendAll(fd_, frame.data(), frame.size())) {
    closeFd(fd_);
    fd_ = -1;
    return false;
  }
  stats_.bytesSent += frame.size();
  Frame back;
  if (readFrame(fd_, back) != ReadStatus::Ok) {
    closeFd(fd_);
    fd_ = -1;
    return false;
  }
  stats_.bytesReceived += frameio::kFrameHeaderSize + back.payload.size();
  if (back.type == FrameType::Error) {
    errorFrame = true;
    error = std::move(back.payload);
    return true;
  }
  if (back.type != FrameType::Result) {
    closeFd(fd_);
    fd_ = -1;
    return false;
  }
  reply = std::move(back.payload);
  return true;
}

RemoteResultStore::Lookup RemoteResultStore::get(const std::string& key) {
  return std::move(getMany({key}).front());
}

RemoteResultStore::Lookup RemoteResultStore::getNear(
    const std::string& prefix) {
  Lookup lookup;
  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.nearGets;
  if (fd_ < 0) {
    ++stats_.failures;
    return lookup;  // degraded: a miss
  }
  const std::string payload =
      encodeStoreGet(prefix, /*wantPlan=*/true, /*near=*/true);
  const std::size_t sentBefore = stats_.bytesSent;
  const std::size_t receivedBefore = stats_.bytesReceived;
  std::string reply;
  std::string error;
  bool errorFrame = false;
  const bool ok = roundTrip(FrameType::StoreGet, payload, reply, error,
                            errorFrame);
  lookup.bytesSent = stats_.bytesSent - sentBefore;
  lookup.bytesReceived = stats_.bytesReceived - receivedBefore;
  if (!ok) {
    ++stats_.failures;
    return lookup;
  }
  if (errorFrame) {
    // A host predating the near flag rejects the v3 payload with an error
    // frame; the stream stayed in sync, so only this hint degrades.
    ++stats_.failures;
    return lookup;
  }
  try {
    StoreReply decoded = decodeStoreReply(reply);
    // Any bound on a near reply is ignored by construction — a neighbor's
    // value is not a bound for the asker's key.
    if (decoded.found) {
      lookup.plan =
          std::make_shared<const OptimizedPlan>(std::move(decoded.plan));
      ++stats_.nearHits;
    }
  } catch (const std::exception&) {
    closeFd(fd_);
    fd_ = -1;
    ++stats_.failures;
  }
  return lookup;
}

std::vector<RemoteResultStore::Lookup> RemoteResultStore::getMany(
    const std::vector<std::string>& keys, bool wantPlans) {
  std::vector<Lookup> lookups(keys.size());
  if (keys.empty()) return lookups;

  const std::lock_guard<std::mutex> lock(mu_);
  stats_.gets += keys.size();
  if (fd_ < 0) {
    ++stats_.failures;
    return lookups;  // degraded: every key is a miss
  }
  // Pipelined with a bounded window: up to kPipelineWindow GET frames are
  // in flight before their replies are drained (the host answers in
  // order, so reply r belongs to key r). The window amortizes the round
  // trip like a full pipeline would, without the flow-control deadlock of
  // writing an unbounded batch before reading anything.
  std::size_t sent = 0;
  std::size_t received = 0;
  bool dead = false;
  while (received < keys.size() && !dead) {
    while (sent < keys.size() && sent - received < kPipelineWindow) {
      const std::string frame = encodeFrame(
          FrameType::StoreGet, encodeStoreGet(keys[sent], wantPlans));
      if (!frameio::sendAll(fd_, frame.data(), frame.size())) {
        dead = true;
        break;
      }
      // One frame per key each way: the wire cost attributes exactly.
      lookups[sent].bytesSent = frame.size();
      stats_.bytesSent += frame.size();
      ++sent;
    }
    if (dead || received >= sent) break;
    Frame back;
    if (readFrame(fd_, back) != ReadStatus::Ok) {
      dead = true;
      break;
    }
    const std::size_t replyBytes =
        frameio::kFrameHeaderSize + back.payload.size();
    lookups[received].bytesReceived = replyBytes;
    stats_.bytesReceived += replyBytes;
    if (back.type == FrameType::Error) {
      // A per-key payload error: the length prefix kept the stream in
      // sync, so only this key degrades.
      ++stats_.failures;
      ++received;
      continue;
    }
    if (back.type != FrameType::Result) {
      dead = true;
      break;
    }
    try {
      StoreReply decoded = decodeStoreReply(back.payload);
      lookups[received].bound = decoded.bound;
      if (decoded.found) {
        lookups[received].plan =
            std::make_shared<const OptimizedPlan>(std::move(decoded.plan));
        ++stats_.hits;
      }
      ++received;
    } catch (const std::exception&) {
      // An undecodable reply from a well-framed stream: the peer is not
      // speaking our codec — degrade.
      const std::size_t sentBytes = lookups[received].bytesSent;
      lookups[received] = Lookup{};
      lookups[received].bytesSent = sentBytes;
      lookups[received].bytesReceived = replyBytes;
      dead = true;
    }
  }
  if (dead) {
    closeFd(fd_);
    fd_ = -1;
    ++stats_.failures;  // the unanswered tail degrades to misses
  }
  return lookups;
}

void RemoteResultStore::put(const std::string& key,
                            const OptimizedPlan& plan) {
  putMany({key}, {&plan});
}

void RemoteResultStore::putMany(const std::vector<std::string>& keys,
                                const std::vector<const OptimizedPlan*>& plans,
                                std::vector<OpBytes>* perKey) {
  if (perKey != nullptr) {
    perKey->assign(keys.size(), OpBytes{});
  }
  if (keys.empty() || keys.size() != plans.size()) return;

  const std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) {
    ++stats_.failures;
    return;  // degraded: publishes are no-ops
  }
  // Same bounded pipeline as getMany (acks are tiny, but the outbound PUT
  // frames are not — the window keeps the in-flight bytes under the
  // socket buffers in both directions).
  std::size_t sent = 0;
  std::size_t acked = 0;
  bool dead = false;
  while (acked < keys.size() && !dead) {
    while (sent < keys.size() && sent - acked < kPipelineWindow) {
      const std::string frame = encodeFrame(
          FrameType::StorePut, encodeStorePut(keys[sent], *plans[sent]));
      if (!frameio::sendAll(fd_, frame.data(), frame.size())) {
        dead = true;
        break;
      }
      if (perKey != nullptr) (*perKey)[sent].sent = frame.size();
      stats_.bytesSent += frame.size();
      ++sent;
    }
    if (dead || acked >= sent) break;
    Frame back;
    if (readFrame(fd_, back) != ReadStatus::Ok) {
      dead = true;
      break;
    }
    const std::size_t replyBytes =
        frameio::kFrameHeaderSize + back.payload.size();
    if (perKey != nullptr) (*perKey)[acked].received = replyBytes;
    stats_.bytesReceived += replyBytes;
    if (back.type == FrameType::Error) {
      ++stats_.failures;  // this key's publish was refused; stream lives
      ++acked;
      continue;
    }
    if (back.type != FrameType::Result) {
      dead = true;
      break;
    }
    ++stats_.puts;
    ++acked;
  }
  if (dead) {
    closeFd(fd_);
    fd_ = -1;
    ++stats_.failures;
  }
}

StoreStatsWire RemoteResultStore::remoteStats() {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string reply;
  std::string error;
  bool errorFrame = false;
  // The STATS payload is one binary magic byte: hosts ignore the payload
  // and use it only to pick the reply dialect (old hosts reply text, which
  // decodeStoreStats accepts with the IO counters zeroed).
  if (!roundTrip(FrameType::StoreStats,
                 std::string(1, static_cast<char>(binio::kMagicByte)), reply,
                 error, errorFrame)) {
    ++stats_.failures;
    throw RemotePlanError("RemoteResultStore: store unreachable",
                          /*transport=*/true);
  }
  if (errorFrame) {
    ++stats_.failures;
    throw RemotePlanError("remote: " + error);
  }
  return decodeStoreStats(reply);
}

bool RemoteResultStore::reconnect() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) return true;
  try {
    fd_ = frameio::connectTcp(host_, port_, "RemoteResultStore",
                              ioTimeoutMs_);
  } catch (const std::exception&) {
    return false;
  }
  frameio::setIoTimeout(fd_, ioTimeoutMs_);
  return true;
}

bool RemoteResultStore::connected() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return fd_ >= 0;
}

RemoteResultStore::Stats RemoteResultStore::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void RemoteResultStore::close() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    closeFd(fd_);
    fd_ = -1;
  }
}

}  // namespace fsw
