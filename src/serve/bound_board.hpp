// BoundBoard: the cross-shard incumbent store of the sharded serving layer.
//
// Each shard's PlanEngine already threads an incumbent upper bound *within*
// a request — the best-ranked candidate's achieved value aborts dominated
// order solves (Bounded-Dijkstra-style pruning, PR 2). The board extends
// that across engines: when any shard completes a solve, it publishes
// (requestKey -> winner value); a later solve of the *same key* — on any
// shard, e.g. after an eviction, with full-result caching disabled, or
// warm-started from a published bounds set — consults the board and
// tightens its ranks-1+ incumbent before orchestration starts. Scale-out
// becomes a search-space reduction, not just more cores.
//
// Soundness (the bit-identity contract): a board entry is only ever the
// *deterministic winner value* w of its request key — every serving path
// returns bit-identical winners for a key, so w is THE value of that
// request, not an estimate. That is a strictly stronger guarantee than the
// within-request incumbent's (rank 0's achieved value), which is why the
// board bound may be applied to EVERY orchestration of the re-solve, rank
// 0 included: no candidate of the same key can achieve a value below w,
// every candidate achieving exactly w is kept bit-exact (the feasibility
// probe at the incumbent), and a candidate whose optimum exceeds w aborts
// without ever having been able to win — even if that candidate is rank 0
// (its orchestration then reports infinity and loses the reduce, exactly
// as it would have lost on value). The winner — value, strategy,
// surrogate, graph and operation list — is unchanged; only
// EngineStats::boundAborts grows. Publishing anything other than the
// key's own winner value would break this; the board therefore only
// accepts publishes keyed by the canonical requestKey of the solved
// request.
//
// Thread-safe and LRU-bounded (the keys — full request fingerprints,
// application signature included — dominate an entry's footprint, so a
// long-lived server streaming ever-new requests must not accumulate them
// forever). Eviction only ever forgets a *hint*: a re-solve of an evicted
// key runs exactly like a first solve, so the bound has no correctness
// face.
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <string>

#include "src/common/lru_cache.hpp"

namespace fsw {

class BoundBoard {
 public:
  struct Stats {
    std::size_t published = 0;  ///< publish calls with a finite value
    std::size_t tightened = 0;  ///< publishes that created/lowered an entry
    std::size_t consulted = 0;  ///< lookups observed
    std::size_t hits = 0;       ///< lookups that found a bound
  };

  /// `capacity` caps the retained bounds, strict-LRU (0 = unbounded).
  explicit BoundBoard(std::size_t capacity = 1 << 16) : bounds_(capacity) {}

  /// Records `value` as the winner of `key`, keeping the minimum if the
  /// key is already posted (identical winners make this a no-op re-post;
  /// the min is belt-and-braces, never a semantic branch). Non-finite
  /// values (a solve that found no candidate) are ignored.
  void publish(const std::string& key, double value);

  /// The posted bound for `key`, if any.
  [[nodiscard]] std::optional<double> lookup(const std::string& key);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] Stats stats() const;

 private:
  mutable std::mutex mu_;        ///< guards stats_ (bounds_ locks itself)
  LruCache<double> bounds_;      ///< the one strict-LRU implementation
  Stats stats_{};
};

}  // namespace fsw
