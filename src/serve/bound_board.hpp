// BoundBoard: the cross-shard incumbent store of the sharded serving layer.
//
// Each shard's PlanEngine already threads an incumbent upper bound *within*
// a request — the best-ranked candidate's achieved value aborts dominated
// order solves (Bounded-Dijkstra-style pruning, PR 2). The board extends
// that across engines: when any shard completes a solve, it publishes
// (requestKey -> winner value); a later solve of the *same key* — on any
// shard, e.g. after an eviction, with full-result caching disabled, or
// warm-started from a published bounds set — consults the board and
// tightens its ranks-1+ incumbent before orchestration starts. Scale-out
// becomes a search-space reduction, not just more cores.
//
// Soundness (the bit-identity contract): a board entry is only ever the
// *deterministic winner value* w of its request key — every serving path
// returns bit-identical winners for a key, so w is THE value of that
// request, not an estimate. That is a strictly stronger guarantee than the
// within-request incumbent's (rank 0's achieved value), which is why the
// board bound may be applied to EVERY orchestration of the re-solve, rank
// 0 included: no candidate of the same key can achieve a value below w,
// every candidate achieving exactly w is kept bit-exact (the feasibility
// probe at the incumbent), and a candidate whose optimum exceeds w aborts
// without ever having been able to win — even if that candidate is rank 0
// (its orchestration then reports infinity and loses the reduce, exactly
// as it would have lost on value). The winner — value, strategy,
// surrogate, graph and operation list — is unchanged; only
// EngineStats::boundAborts grows. Publishing anything other than the
// key's own winner value would break this; the board therefore only
// accepts publishes keyed by the canonical requestKey of the solved
// request.
//
// Thread-safe and LRU-bounded (the keys — full request fingerprints,
// application signature included — dominate an entry's footprint, so a
// long-lived server streaming ever-new requests must not accumulate them
// forever). Eviction only ever forgets a *hint*: a re-solve of an evicted
// key runs exactly like a first solve, so the bound has no correctness
// face.
//
// Near-key reuse (the warm-start half): alongside the exact-key bounds the
// board keeps a prefix-indexed side table mapping a key's STRUCTURAL
// prefix — graph shape, precedences, model/objective and portfolio, i.e.
// everything but the cost/selectivity numbers (see structuralPrefixOfKey)
// — to the most recently published full key sharing it. A re-solve of a
// mutated application (same structure, drifted parameters) asks
// nearestKey() for that neighbor, fetches its stored winner, and
// RE-EVALUATES it under the new parameters to obtain a certified achievable
// value before using it as an incumbent. The contract is strict: a
// near-key answer is a *hint naming a key*, never a bound and never a
// servable plan — different parametric suffixes are different requests,
// and only a value re-certified under the asker's own parameters may prune
// anything. Which neighbor the table names may depend on publish order
// (concurrent posters race benignly); winners never do, because any
// validated value is a true bound and the engine re-runs unbounded in the
// (impossible-for-sound-bounds) event that a bound beats every candidate.
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <string>

#include "src/common/lru_cache.hpp"

namespace fsw {

/// The structural prefix of a canonical request key
/// (PlanEngine::requestKey): the application's node count and precedence
/// segments plus everything from the model onward, with the per-service
/// cost:selectivity segments (the parametric suffix) dropped. Two requests
/// share a prefix iff they differ only in service costs/selectivities —
/// exactly the "mutated application" shape of an online re-solve. Pure
/// string surgery on the key format, so the engine and the store host
/// derive identical prefixes without new wire fields on PUT.
[[nodiscard]] std::string structuralPrefixOfKey(const std::string& key);

class BoundBoard {
 public:
  struct Stats {
    std::size_t published = 0;  ///< publish calls with a finite value
    std::size_t tightened = 0;  ///< publishes that created/lowered an entry
    std::size_t consulted = 0;  ///< lookups observed
    std::size_t hits = 0;       ///< lookups that found a bound
    std::size_t nearConsulted = 0;  ///< nearestKey calls observed
    std::size_t nearHits = 0;       ///< nearestKey calls that named a key
  };

  /// `capacity` caps the retained bounds, strict-LRU (0 = unbounded); the
  /// near-key side table shares the same cap (it holds at most one entry
  /// per distinct structural prefix, so it is never the larger of the two).
  explicit BoundBoard(std::size_t capacity = 1 << 16)
      : bounds_(capacity), near_(capacity) {}

  /// Records `value` as the winner of `key`, keeping the minimum if the
  /// key is already posted (identical winners make this a no-op re-post;
  /// the min is belt-and-braces, never a semantic branch). Non-finite
  /// values (a solve that found no candidate) are ignored.
  void publish(const std::string& key, double value);

  /// The posted bound for `key`, if any.
  [[nodiscard]] std::optional<double> lookup(const std::string& key);

  /// The most recently published full key whose structural prefix is
  /// `prefix`, if any. A HINT, not a bound: the caller must fetch that
  /// key's winner and re-evaluate it under its own parameters before using
  /// the result as an incumbent (see the header comment).
  [[nodiscard]] std::optional<std::string> nearestKey(
      const std::string& prefix);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] Stats stats() const;

 private:
  mutable std::mutex mu_;        ///< guards stats_ (the caches lock themselves)
  LruCache<double> bounds_;      ///< the one strict-LRU implementation
  LruCache<std::string> near_;   ///< structural prefix -> latest full key
  Stats stats_{};
};

}  // namespace fsw
