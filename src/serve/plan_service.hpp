// The socket transport of the serving stack: PlanServiceHost exposes a
// PlanServer behind a loopback TCP listener, RemotePlanClient speaks the
// wire codec to it with the same submit -> future surface — the last layer
// of ROADMAP's distributed fan-out (requests cross process boundaries; the
// portable requestKey discipline from PR 3 keeps caches coherent on the
// far side).
//
// Frame protocol (length-prefixed, fixed 10-byte header):
//
//   offset 0  4 bytes  magic "FSWF"
//   offset 4  1 byte   frame version (kFrameVersion)
//   offset 5  1 byte   type: 'Q' request, 'R' result, 'E' error
//   offset 6  4 bytes  payload length, big-endian
//   offset 10 payload  wire codec (src/io/serialize.hpp) — binary blocks or
//                      legacy text, sniffed by the first payload byte; for
//                      'E', a human-readable message. Hosts reply in the
//                      dialect the request arrived in, so old text clients
//                      keep working against new hosts.
//
// Failure discipline: a malformed *payload* (bad codec magic/version,
// truncated block, unknown portfolio) is answered with an 'E' frame and
// the connection stays up — the length prefix kept the stream in sync. A
// malformed *frame* (bad magic, oversized length, truncated header or
// body) means the stream itself cannot be trusted: the host drops the
// connection; a version-mismatched frame is answered with 'E' first, then
// dropped. The client surfaces 'E' frames and lost connections as
// RemotePlanError through the returned future — never a misparse, never a
// hang.
//
// Scope: one request at a time per connection (synchronous RPC);
// concurrency comes from multiple connections/clients, which the
// PlanServer behind the host coalesces and batches as usual. POSIX
// sockets, loopback-oriented (IPv4 literals).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/frame_io.hpp"
#include "src/serve/plan_server.hpp"

namespace fsw {

/// A solve that failed on the far side (an 'E' frame) or a transport
/// failure (lost/garbled connection), delivered through the future.
/// `transport()` separates the two: a transport failure means the
/// *connection* broke (the request may never have been seen, and a pure
/// solve is idempotent), so a router can retry it on another host; a
/// remote error is the host's deterministic answer for this payload and
/// would recur anywhere — it must not be retried.
class RemotePlanError : public std::runtime_error {
 public:
  explicit RemotePlanError(const std::string& what, bool transport = false)
      : std::runtime_error(what), transport_(transport) {}

  [[nodiscard]] bool transport() const noexcept { return transport_; }

 private:
  bool transport_ = false;
};

struct ServiceHostConfig {
  /// The served front end (not owned). nullptr = the host owns a private
  /// PlanServer built from `serverConfig`.
  PlanServer* server = nullptr;
  ServerConfig serverConfig{};
  /// Listening port on 127.0.0.1; 0 picks an ephemeral port (read it back
  /// via port() — the loopback-pair pattern the tests and example use).
  std::uint16_t port = 0;
  /// How the host moves bytes: the epoll reactor (default — O(1) host
  /// threads in the number of connections, bounded write queues, optional
  /// accept gate and idle reaping) or the legacy thread-per-connection
  /// transport. Handler semantics are identical either way.
  frameio::TransportConfig transport{};
  /// Resolves a wire portfolio name to a locally registered portfolio.
  /// The reserved token "-" (default portfolio) never reaches this hook.
  /// "builtin" always resolves to CandidateRegistry::builtin() when the
  /// resolver is unset or returns nullptr for it — a resolver extends the
  /// name space (and may shadow "builtin"), it never revokes the default.
  /// A name that resolves nowhere is answered with an error frame.
  std::function<const CandidateRegistry*(const std::string&)>
      resolvePortfolio;
};

/// The listening side. The shared frameio::SocketService transport
/// (epoll reactor by default) delivers each request frame to handleFrame
/// on a handler thread: decode -> resolve portfolio -> PlanServer::submit
/// -> await -> encode -> result frame. Stats are locked; stop() (and the
/// destructor) drains in-flight requests, closes every connection, then
/// joins.
class PlanServiceHost : public frameio::SocketService {
 public:
  struct Stats {
    std::size_t connections = 0;  ///< connections accepted
    std::size_t requests = 0;     ///< request frames served with a result
    std::size_t errors = 0;       ///< error frames sent + dropped streams
    /// Frame traffic across every connection, headers included.
    std::size_t framesIn = 0;
    std::size_t bytesIn = 0;
    std::size_t framesOut = 0;
    std::size_t bytesOut = 0;
    /// Transport counters (see frameio::TransportTotals).
    std::size_t refusedOverLimit = 0;
    std::size_t idleClosed = 0;
    std::size_t peakWriteQueueBytes = 0;
    std::size_t transportThreads = 0;
  };

  explicit PlanServiceHost(ServiceHostConfig config);
  ~PlanServiceHost();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] PlanServer& server() noexcept { return *server_; }

  /// Stops accepting, drops live connections, joins every thread.
  /// Idempotent. The wrapped PlanServer is left running (its owner — or
  /// the host destructor, for an owned server — shuts it down).
  void stop() { stopService(); }

 private:
  void handleFrame(Responder& out, frameio::Frame frame) override;

  ServiceHostConfig config_;
  std::unique_ptr<PlanServer> ownedServer_;
  PlanServer* server_ = nullptr;

  mutable std::mutex mu_;  ///< guards stats_
  Stats stats_{};
};

/// The connecting side: the same submit -> future surface as PlanServer,
/// spoken over one socket. submit() encodes eagerly (throwing
/// std::invalid_argument for a non-portable unnamed portfolio, like the
/// codec) and queues the frame; a sender thread performs the RPCs in
/// submit order, fulfilling each future with the decoded plan or a
/// RemotePlanError. One in-flight request per client — run several clients
/// for concurrency (the host serves each connection on its own thread).
class RemotePlanClient {
 public:
  struct Stats {
    std::size_t submitted = 0;  ///< submit() calls accepted
    std::size_t served = 0;     ///< futures fulfilled with a plan
    std::size_t failed = 0;     ///< futures failed (error frame/transport)
    /// Wire bytes this client moved (frame headers included) — the
    /// per-peer ledger PlanRouter folds into its per-host stats.
    std::size_t bytesSent = 0;
    std::size_t bytesReceived = 0;
  };

  /// Connects to host:port (an IPv4 literal, e.g. "127.0.0.1"). Throws
  /// std::runtime_error when the connection cannot be established.
  /// `ioTimeoutMs` bounds every send/recv after the connect (and the
  /// connect itself): a black-holed host (SIGSTOP, partition without RST)
  /// surfaces as a transport-class RemotePlanError after the timeout
  /// instead of hanging the submit forever — and transport errors are the
  /// retryable kind, so a router fails the request over. <= 0 disables
  /// the bound (the pre-existing behavior): solves have no universal
  /// ceiling, so the DEFAULT stays unbounded and callers that know their
  /// latency budget (PlanRouter) opt in.
  RemotePlanClient(const std::string& host, std::uint16_t port,
                   int ioTimeoutMs = 0);
  ~RemotePlanClient();

  RemotePlanClient(const RemotePlanClient&) = delete;
  RemotePlanClient& operator=(const RemotePlanClient&) = delete;

  /// Queues one request; the future delivers the remote winner (with the
  /// far side's EngineStats — e.g. resultCacheHits = 1 on a warm repeat)
  /// or throws RemotePlanError.
  [[nodiscard]] std::future<OptimizedPlan> submit(const PlanRequest& request,
                                                  int priority = 0);

  /// Blocking convenience: submit(request, priority).get().
  [[nodiscard]] OptimizedPlan optimize(const PlanRequest& request,
                                       int priority = 0);

  [[nodiscard]] Stats stats() const;

  /// Fails queued work, closes the socket and joins the sender.
  /// Idempotent; the destructor calls it.
  void close();

 private:
  struct Pending {
    std::string payload;
    std::promise<OptimizedPlan> promise;
  };

  void senderLoop();

  int fd_ = -1;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Pending> queue_;
  bool stopping_ = false;
  Stats stats_{};
  frameio::IoCounters io_;  ///< wire bytes (sender thread writes, stats() reads)
  std::thread sender_;
};

}  // namespace fsw
