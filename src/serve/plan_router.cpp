#include "src/serve/plan_router.hpp"

#include <stdexcept>
#include <utility>

#include "src/serve/plan_engine.hpp"
#include "src/serve/rendezvous.hpp"

namespace fsw {

PlanRouter::PlanRouter(RouterConfig config) : ioTimeoutMs_(config.ioTimeoutMs) {
  if (config.hosts.empty()) {
    throw std::invalid_argument("PlanRouter: empty host list");
  }
  slots_.reserve(config.hosts.size());
  for (const RouterHost& endpoint : config.hosts) {
    auto slot = std::make_unique<Slot>();
    slot->endpoint = endpoint;
    slots_.push_back(std::move(slot));
  }
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    slots_[s]->worker = std::thread([this, s] { workerLoop(s); });
  }
}

PlanRouter::~PlanRouter() { close(); }

std::size_t PlanRouter::hostCount() const noexcept { return slots_.size(); }

std::size_t PlanRouter::hostOf(const PlanRequest& request) const {
  return rendezvousPick(PlanEngine::requestKey(request), slots_.size());
}

bool PlanRouter::hostUp(std::size_t slot) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return !slots_[slot]->down;
}

std::future<OptimizedPlan> PlanRouter::submit(const PlanRequest& request,
                                              int priority) {
  // Validate portability eagerly, like RemotePlanClient: a non-portable
  // request (unnamed portfolio) throws std::invalid_argument here,
  // synchronously, instead of surfacing later on a worker thread. This is
  // the codec's portfolioToken condition checked directly — encoding the
  // whole request just to probe it would double the submit path's work.
  if (request.options.registry != nullptr &&
      request.options.registry->name().empty()) {
    throw std::invalid_argument(
        "PlanRouter: an unnamed portfolio is process-local and cannot cross "
        "the wire; name it (CandidateRegistry::setName) to opt in to "
        "portable keys");
  }
  Job job;
  job.request = request;
  job.priority = priority;
  job.rank = rendezvousRank(PlanEngine::requestKey(request), slots_.size());
  std::future<OptimizedPlan> future = job.promise.get_future();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
  }
  dispatch(std::move(job));
  return future;
}

OptimizedPlan PlanRouter::optimize(const PlanRequest& request, int priority) {
  return submit(request, priority).get();
}

void PlanRouter::dispatch(Job job) {
  std::promise<OptimizedPlan> failing;
  std::string reason;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ++stats_.failed;
      failing = std::move(job.promise);
      reason = "PlanRouter: closed";
    } else {
      // Prefer the first *live* slot from the job's current rank
      // position; when every remaining ranked slot is down, probe the
      // next ranked one anyway (its reconnect attempt is the re-admission
      // path once the whole fleet has blinked).
      std::size_t position = job.rank.size();
      for (std::size_t p = job.attempt; p < job.rank.size(); ++p) {
        if (!slots_[job.rank[p]]->down) {
          position = p;
          break;
        }
      }
      if (position == job.rank.size() && job.attempt < job.rank.size()) {
        position = job.attempt;
      }
      if (position == job.rank.size()) {
        ++stats_.failed;
        failing = std::move(job.promise);
        reason = "PlanRouter: no hosts left for request (all " +
                 std::to_string(job.rank.size()) + " ranked hosts failed)";
      } else {
        job.attempt = position;
        slots_[job.rank[position]]->queue.push_back(std::move(job));
      }
    }
  }
  cv_.notify_all();
  if (!reason.empty()) {
    failing.set_exception(std::make_exception_ptr(
        RemotePlanError(reason, /*transport=*/true)));
  }
}

void PlanRouter::foldClientStatsLocked(Slot& s) {
  if (s.client == nullptr) return;
  const RemotePlanClient::Stats cs = s.client->stats();
  s.stats.bytesSent += cs.bytesSent;
  s.stats.bytesReceived += cs.bytesReceived;
}

void PlanRouter::workerLoop(std::size_t slot) {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stopping_ || !slots_[slot]->queue.empty();
      });
      if (stopping_) return;  // close() fails whatever is still queued
      job = std::move(slots_[slot]->queue.front());
      slots_[slot]->queue.pop_front();
    }
    process(slot, std::move(job));
  }
}

void PlanRouter::process(std::size_t slot, Job job) {
  Slot& s = *slots_[slot];

  // Ensure a connection (only this slot's worker touches its client
  // between close() calls, so the pointer is stable outside the lock; the
  // connect itself happens unlocked — it is a blocking syscall).
  RemotePlanClient* client = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ++stats_.failed;
      job.promise.set_exception(std::make_exception_ptr(
          RemotePlanError("PlanRouter: closed", /*transport=*/true)));
      return;
    }
    client = s.client.get();
  }
  if (client == nullptr) {
    std::unique_ptr<RemotePlanClient> fresh;
    try {
      fresh = std::make_unique<RemotePlanClient>(s.endpoint.host,
                                                 s.endpoint.port, ioTimeoutMs_);
    } catch (const std::exception&) {
      {
        const std::lock_guard<std::mutex> lock(mu_);
        s.down = true;
        s.stats.up = false;
        ++s.stats.transportFailures;
        ++job.attempt;
        ++stats_.failovers;
      }
      dispatch(std::move(job));
      return;
    }
    bool closed = false;
    std::unique_ptr<RemotePlanClient> discard;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        // close() already swept the slots (this client did not exist yet,
        // so it was never told to close): do not install it — a blocking
        // RPC on it would have no cancellation path and close() would
        // hang joining this worker.
        closed = true;
        ++stats_.failed;
        discard = std::move(fresh);
      } else if (s.client != nullptr) {
        // reconnect() won the race and already re-admitted the slot with
        // its own connection: use that one (overwriting would destroy a
        // live client under mu_ and double-count the re-admission).
        discard = std::move(fresh);
        client = s.client.get();
      } else {
        if (s.down) {
          s.down = false;
          s.stats.up = true;
          ++stats_.reconnects;
        }
        s.client = std::move(fresh);
        client = s.client.get();
      }
    }
    discard.reset();  // outside the lock: its close() joins a thread
    if (closed) {
      job.promise.set_exception(std::make_exception_ptr(
          RemotePlanError("PlanRouter: closed", /*transport=*/true)));
      return;
    }
  }

  std::unique_ptr<RemotePlanClient> dropped;
  try {
    OptimizedPlan plan = client->optimize(job.request, job.priority);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++s.stats.served;
      ++stats_.served;
    }
    job.promise.set_value(std::move(plan));
    return;
  } catch (const RemotePlanError& e) {
    if (!e.transport()) {
      // The host's deterministic answer for this payload (unknown
      // portfolio, malformed request): it would recur on every host.
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.failed;
      job.promise.set_exception(std::current_exception());
      return;
    }
    // The connection broke: mark the host down and fail over. The dead
    // client is destroyed outside the lock (its close() joins a thread).
    {
      const std::lock_guard<std::mutex> lock(mu_);
      s.down = true;
      s.stats.up = false;
      ++s.stats.transportFailures;
      foldClientStatsLocked(s);
      dropped = std::move(s.client);
      ++job.attempt;
      ++stats_.failovers;
    }
    dropped.reset();
    dispatch(std::move(job));
    return;
  } catch (const std::exception&) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.failed;
    job.promise.set_exception(std::current_exception());
    return;
  }
}

std::size_t PlanRouter::reconnect() {
  std::size_t readmitted = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& s = *slots_[i];
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stopping_ || !s.down) continue;
    }
    std::unique_ptr<RemotePlanClient> fresh;
    try {
      fresh = std::make_unique<RemotePlanClient>(s.endpoint.host,
                                                 s.endpoint.port, ioTimeoutMs_);
    } catch (const std::exception&) {
      continue;
    }
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || !s.down) continue;  // raced with a worker's probe
    s.client = std::move(fresh);
    s.down = false;
    s.stats.up = true;
    ++stats_.reconnects;
    ++readmitted;
  }
  return readmitted;
}

PlanRouter::Stats PlanRouter::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Stats snapshot = stats_;
  snapshot.perHost.reserve(slots_.size());
  for (const auto& slot : slots_) {
    HostStats hs = slot->stats;
    if (slot->client != nullptr) {
      // The folded base covers retired connections; add the live one.
      // Lock order is router mu_ -> client mu_, never the reverse (the
      // client has no back-reference to the router).
      const RemotePlanClient::Stats cs = slot->client->stats();
      hs.bytesSent += cs.bytesSent;
      hs.bytesReceived += cs.bytesReceived;
    }
    snapshot.perHost.push_back(hs);
  }
  return snapshot;
}

void PlanRouter::close() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    // Fail every in-flight RPC: each client's close() makes its worker's
    // blocking optimize() throw, and the worker then observes stopping_.
    for (const auto& slot : slots_) {
      if (slot->client != nullptr) slot->client->close();
    }
  }
  cv_.notify_all();
  for (const auto& slot : slots_) {
    if (slot->worker.joinable()) slot->worker.join();
  }
  std::vector<Job> orphans;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& slot : slots_) {
      for (Job& job : slot->queue) orphans.push_back(std::move(job));
      slot->queue.clear();
    }
    stats_.failed += orphans.size();
  }
  for (Job& job : orphans) {
    job.promise.set_exception(std::make_exception_ptr(
        RemotePlanError("PlanRouter: closed before dispatch",
                        /*transport=*/true)));
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& slot : slots_) foldClientStatsLocked(*slot);
  }
  for (const auto& slot : slots_) slot->client.reset();
}

}  // namespace fsw
