#include "src/serve/rendezvous.hpp"

#include <algorithm>
#include <numeric>

namespace fsw {
namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(const std::string& key) {
  std::uint64_t h = kFnvOffset;
  for (const unsigned char c : key) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

/// SplitMix64 finalizer: decorrelates the per-slot rendezvous scores
/// derived from one key hash.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t rendezvousScore(const std::string& key, std::size_t slot) {
  return mix(fnv1a(key) ^ static_cast<std::uint64_t>(slot));
}

std::size_t rendezvousPick(const std::string& key, std::size_t slots) {
  if (slots <= 1) return 0;
  const std::uint64_t h = fnv1a(key);
  std::size_t best = 0;
  std::uint64_t bestScore = mix(h ^ 0);
  for (std::size_t s = 1; s < slots; ++s) {
    const std::uint64_t score = mix(h ^ static_cast<std::uint64_t>(s));
    if (score > bestScore) {
      bestScore = score;
      best = s;
    }
  }
  return best;
}

std::vector<std::size_t> rendezvousRank(const std::string& key,
                                        std::size_t slots) {
  std::vector<std::size_t> rank(slots);
  std::iota(rank.begin(), rank.end(), std::size_t{0});
  if (slots <= 1) return rank;
  const std::uint64_t h = fnv1a(key);
  std::vector<std::uint64_t> scores(slots);
  for (std::size_t s = 0; s < slots; ++s) {
    scores[s] = mix(h ^ static_cast<std::uint64_t>(s));
  }
  std::stable_sort(rank.begin(), rank.end(),
                   [&](std::size_t a, std::size_t b) {
                     return scores[a] > scores[b];
                   });
  return rank;
}

}  // namespace fsw
