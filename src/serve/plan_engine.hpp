// PlanEngine: the long-lived batched serving core of the plan search.
//
// PR 1 built a parallel, pluggable engine but re-wired it per call: every
// optimizePlan constructed its own registry view, dedup/score cache and
// pool hookup, so repeated traffic on similar applications redid dedup and
// surrogate scoring from scratch. The PlanEngine owns that wiring for the
// lifetime of a serving process:
//
//   * one ThreadPool (owned, or an injected external pool) shared by every
//     request — candidate generation, scoring and orchestration of
//     concurrent requests interleave on the same workers;
//   * one CandidateRegistry (per-request override supported);
//   * one thread-safe, LRU-bounded CandidateCache keyed by
//     (application, model, objective, graph) signatures, shared across
//     requests and batches, and persistable across runs via
//     saveCache/loadCache (src/io/serialize.*);
//   * optimizeBatch: fans a batch of PlanRequests out over the pool,
//     serving members with identical canonical signatures from the first
//     occurrence's solve (cross-request dedup), and threads the incumbent
//     value of each request's best-ranked candidate into the remaining
//     orchestrations as an upper bound so dominated difference-constraint
//     solves abort early (Bounded-Dijkstra-style pruning).
//
// Determinism contract, unchanged from PR 1 and extended to batches: the
// winner of every request is bit-identical across serial, pooled and
// batched execution, and independent of the shared cache's state (the
// cache memoizes pure functions of its keys).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/core/application.hpp"
#include "src/core/model.hpp"
#include "src/opt/candidate.hpp"
#include "src/opt/optimizer.hpp"

namespace fsw {

/// One unit of serving traffic: solve (app, model, objective) under the
/// given per-request knobs. Requests are values — a serving front end can
/// queue, shard and replay them freely.
struct PlanRequest {
  Application app;
  CommModel model = CommModel::Overlap;
  Objective objective = Objective::Period;
  OptimizerOptions options{};
};

/// Engine-wide configuration (per-request knobs live in PlanRequest).
struct EngineConfig {
  /// Workers in the engine-owned pool; 0 defers to ThreadPool::shared()
  /// (no extra threads), 1 makes the engine fully serial by default.
  /// Ignored when `pool` is set.
  std::size_t threads = 0;
  ThreadPool* pool = nullptr;  ///< external pool override (not owned)
  /// Candidate portfolio; nullptr = CandidateRegistry::builtin().
  const CandidateRegistry* registry = nullptr;
  /// Capacity of the shared cross-request score cache (0 = unbounded).
  std::size_t cacheCapacity = 1 << 16;
};

/// The long-lived serving core. Thread-safe: any number of threads may call
/// optimize/optimizeBatch on one engine concurrently.
class PlanEngine {
 public:
  explicit PlanEngine(EngineConfig config = {});

  PlanEngine(const PlanEngine&) = delete;
  PlanEngine& operator=(const PlanEngine&) = delete;

  /// Solves one request (equivalent to a one-element batch).
  [[nodiscard]] OptimizedPlan optimize(const PlanRequest& request);
  [[nodiscard]] OptimizedPlan optimize(const Application& app, CommModel m,
                                       Objective obj,
                                       const OptimizerOptions& opt = {});

  /// Solves a batch: requests with identical canonical signatures (same
  /// application, model, objective and value-affecting options) are solved
  /// once; the copies report EngineStats::crossRequestHits = 1 and
  /// otherwise empty stats (the work is accounted at the representative,
  /// so summing stats over the batch counts it once). Distinct requests
  /// fan out over the pool and share the score cache. The result
  /// vector is index-aligned with `requests`, and every winner is
  /// bit-identical to a per-request serial optimizePlan.
  [[nodiscard]] std::vector<OptimizedPlan> optimizeBatch(
      std::span<const PlanRequest> requests);

  /// Cumulative shared-cache counters since construction (or loadCache).
  [[nodiscard]] CandidateCache::Stats cacheStats() const;
  [[nodiscard]] std::size_t cacheSize() const;

  /// Persist / restore the shared score cache (cross-run memoization).
  /// loadCache inserts on top of the current contents, oldest entries
  /// first, so the LRU order survives a round trip.
  void saveCache(std::ostream& os) const;
  void loadCache(std::istream& is);

  /// The canonical batch dedup key of a request: application, model and
  /// objective signatures plus a fingerprint of the value-affecting
  /// options. Process-local: a custom options.registry is fingerprinted by
  /// pointer identity, which distinguishes registries within one process
  /// but is meaningless across processes — a cross-process sharding layer
  /// must restrict itself to default-registry requests (or add its own
  /// portfolio naming) before using these keys as a shared cache key
  /// space.
  [[nodiscard]] static std::string requestKey(const PlanRequest& request);

  /// The process-wide default engine behind the optimizePlan facade.
  static PlanEngine& shared();

 private:
  [[nodiscard]] OptimizedPlan solveOne(const Application& app, CommModel m,
                                       Objective obj,
                                       const OptimizerOptions& opt);
  [[nodiscard]] ThreadPool* poolFor(const OptimizerOptions& opt) const;

  EngineConfig config_;
  std::unique_ptr<ThreadPool> ownedPool_;
  ThreadPool* pool_ = nullptr;  ///< resolved engine pool (may be null: serial)
  CandidateCache cache_;        ///< shared cross-request score cache
};

/// Batch adapter on the process-wide engine, mirroring optimizePlan.
[[nodiscard]] std::vector<OptimizedPlan> optimizePlanBatch(
    std::span<const PlanRequest> requests);

}  // namespace fsw
