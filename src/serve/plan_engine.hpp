// PlanEngine: the long-lived batched serving core of the plan search.
//
// PR 1 built a parallel, pluggable engine but re-wired it per call: every
// optimizePlan constructed its own registry view, dedup/score cache and
// pool hookup, so repeated traffic on similar applications redid dedup and
// surrogate scoring from scratch. The PlanEngine owns that wiring for the
// lifetime of a serving process:
//
//   * one ThreadPool (owned, or an injected external pool) shared by every
//     request — candidate generation, scoring and orchestration of
//     concurrent requests interleave on the same workers;
//   * one CandidateRegistry (per-request override supported);
//   * one thread-safe, LRU-bounded CandidateCache keyed by
//     (application, model, objective, graph) signatures, shared across
//     requests and batches, and persistable across runs via
//     saveCache/loadCache (src/io/serialize.*);
//   * one ResultCache (requestKey -> winning OptimizedPlan): identical
//     repeated requests are served wholesale with zero new orchestrations,
//     in-process or across runs (saveResults/loadResults persist it as a
//     versioned, size-budgeted artifact);
//   * optimizeBatch: fans a batch of PlanRequests out over the pool,
//     serving members with identical canonical signatures from the first
//     occurrence's solve (cross-request dedup), and threads the incumbent
//     value of each request's best-ranked candidate into the remaining
//     orchestrations as an upper bound so dominated difference-constraint
//     solves abort early (Bounded-Dijkstra-style pruning).
//
// The asynchronous request lifecycle (queueing, admission control,
// coalescing, streaming results) lives one layer up in PlanServer
// (src/serve/plan_server.hpp); this engine stays a blocking batch core.
//
// Determinism contract, unchanged from PR 1 and extended to batches: the
// winner of every request is bit-identical across serial, pooled and
// batched execution, and independent of the shared cache's state (the
// cache memoizes pure functions of its keys).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/core/application.hpp"
#include "src/core/model.hpp"
#include "src/opt/candidate.hpp"
#include "src/opt/optimizer.hpp"
#include "src/serve/plan_solver.hpp"
#include "src/serve/result_cache.hpp"

namespace fsw {

class BoundBoard;
class RemoteResultStore;

/// Engine-wide configuration (per-request knobs live in PlanRequest —
/// since PR 4 the request struct itself lives with the optimizer facade in
/// src/opt/optimizer.hpp, the canonical form every serving path shares).
struct EngineConfig {
  /// Workers in the engine-owned pool; 0 defers to ThreadPool::shared()
  /// (no extra threads), 1 makes the engine fully serial by default.
  /// Ignored when `pool` is set.
  std::size_t threads = 0;
  ThreadPool* pool = nullptr;  ///< external pool override (not owned)
  /// Candidate portfolio; nullptr = CandidateRegistry::builtin(). An
  /// engine-level override is NOT part of requestKey (keys only cover
  /// per-request state), so requests that rely on it bypass the
  /// full-result cache — its key would misattribute their winner to the
  /// built-in portfolio. To serve a custom portfolio with full-result
  /// caching, pass it per request via OptimizerOptions::registry with a
  /// stable name.
  const CandidateRegistry* registry = nullptr;
  /// Capacity of the shared cross-request score cache (0 = unbounded).
  std::size_t cacheCapacity = 1 << 16;
  /// Full-result memoization: when enabled the engine keeps a
  /// (requestKey -> winning OptimizedPlan) store and serves an identical
  /// repeated request wholesale — zero new orchestrations,
  /// EngineStats::resultCacheHits = 1. Sound because a solve is a pure
  /// function of its request key. Requests carrying an *unnamed* custom
  /// portfolio bypass this store: their pointer-identity key is only
  /// stable for the duration of the call, so caching it could serve a
  /// dead registry's winner to whatever next reuses the address.
  bool cacheFullResults = true;
  /// Retained winners in the full-result store (0 = unbounded).
  std::size_t resultCacheCapacity = 1024;
  /// Cross-engine incumbent sharing (not owned; nullptr = off). When set —
  /// the ShardedPlanEngine wires one board through every shard — a
  /// completed solve publishes (requestKey -> winner value) and a later
  /// solve of the same key, on any engine sharing the board, tightens
  /// every orchestration's abort threshold (rank 0 included) with the
  /// posted value. Winner-preserving by construction (see
  /// src/serve/bound_board.hpp): only EngineStats::boundAborts can grow.
  /// The board also powers near-key warm starts: on an exact-key miss the
  /// engine asks for the most recent winner sharing the request's
  /// STRUCTURAL prefix (same graph/precedences/portfolio, drifted
  /// costs/selectivities), re-evaluates that winner's orders under the
  /// request's own parameters, and uses the certified achievable value as
  /// an incumbent — a true bound, never a guess, and the neighbor's plan
  /// itself is never served. Only result-cacheable requests participate —
  /// the board's key discipline is the result cache's.
  BoundBoard* boundBoard = nullptr;
  /// Fleet-shared second-level result store (not owned; nullptr = off) —
  /// a RemoteResultStore speaking to a ResultStoreHost, possibly on
  /// another machine (src/serve/result_store.hpp). Local result-cache
  /// misses are consulted in one pipelined multi-GET per batch: with
  /// `cacheFullResults` set a stored winner is served wholesale — a cold
  /// engine repeats another host's solve with zero new orchestrations —
  /// while with it unset only the fleet's incumbent bound is fetched (no
  /// winner payloads travel just to be discarded). Either way a consult
  /// imports the store's bound for the key (its own winner value, posted
  /// by whichever host solved it first), tightening abort thresholds
  /// exactly like a shared BoundBoard — winner-preserving for the same
  /// reason. Completed solves publish their winner back. Transport
  /// failures degrade to misses/no-ops: the store is an accelerator,
  /// never a dependency. Only result-cacheable requests participate.
  /// On an exact-key miss with no local near neighbor, the engine also
  /// asks the store for a near (structural-prefix) neighbor to warm-start
  /// from — same validate-before-use contract as the board's near table.
  RemoteResultStore* resultStore = nullptr;
};

/// The long-lived serving core. Thread-safe: any number of threads may call
/// optimize/optimizeBatch on one engine concurrently. Implements
/// PlanSolver, so a PlanServer can serve one engine or a sharded set of
/// them through the same lifecycle.
class PlanEngine : public PlanSolver {
 public:
  explicit PlanEngine(EngineConfig config = {});

  PlanEngine(const PlanEngine&) = delete;
  PlanEngine& operator=(const PlanEngine&) = delete;

  /// Solves one request by routing it through optimizeBatch on a
  /// one-element span — single-request and batch serving share one code
  /// path, so dedup, result-cache, incumbent and stats accounting can
  /// never drift between the two entry points.
  [[nodiscard]] OptimizedPlan optimize(const PlanRequest& request);
  [[nodiscard]] OptimizedPlan optimize(const Application& app, CommModel m,
                                       Objective obj,
                                       const OptimizerOptions& opt = {});

  /// Solves a batch: requests with identical canonical signatures (same
  /// application, model, objective and value-affecting options) are solved
  /// once; the copies report EngineStats::crossRequestHits = 1 and
  /// otherwise empty stats (the work is accounted at the representative,
  /// so summing stats over the batch counts it once). Distinct requests
  /// fan out over the pool and share the score cache. The result
  /// vector is index-aligned with `requests`, and every winner is
  /// bit-identical to a per-request serial optimizePlan.
  [[nodiscard]] std::vector<OptimizedPlan> optimizeBatch(
      std::span<const PlanRequest> requests) override;

  /// Cumulative shared-cache counters since construction (or loadCache).
  [[nodiscard]] CandidateCache::Stats cacheStats() const;
  [[nodiscard]] std::size_t cacheSize() const;

  /// Persist / restore the shared score cache (cross-run memoization).
  /// loadCache inserts on top of the current contents, oldest entries
  /// first, so the LRU order survives a round trip. The file carries a
  /// magic/version header; loadCache throws std::runtime_error on a
  /// mismatch.
  void saveCache(std::ostream& os) const;
  void loadCache(std::istream& is);

  /// Counters and size of the full-result store.
  [[nodiscard]] ResultCache::Stats resultCacheStats() const;
  [[nodiscard]] std::size_t resultCacheSize() const;

  /// Persist / restore the full-result store (signature -> OptimizedPlan)
  /// as a versioned on-disk artifact: magic/version header (loadResults
  /// throws std::runtime_error on a mismatch) and an on-disk entry budget
  /// (`budget` = max winners written, most recently used kept; 0 = all).
  /// A warm-started engine serves a repeated request from the dump with
  /// zero new orchestrations.
  void saveResults(std::ostream& os, std::size_t budget = 0) const;
  void loadResults(std::istream& is);

  /// The canonical dedup/cache key of a request: application, model and
  /// objective signatures plus a fingerprint of the value-affecting
  /// options. Portable across processes for *named* portfolios: a named
  /// options.registry is fingerprinted by its portfolio name and ordered
  /// source-name list (portfolioFingerprint), never by pointer, so two
  /// processes that register the same portfolio compute identical keys —
  /// the key space of ROADMAP's distributed fan-out. A portfolio whose
  /// fingerprint matches the built-in's keys identically to a
  /// default-registry request; an *unnamed* registry falls back to
  /// pointer identity (process-local), so anonymous portfolios can never
  /// collide in a shared cache.
  [[nodiscard]] static std::string requestKey(const PlanRequest& request);

  /// The engine-aware dedup/coalescing key: requestKey, plus a marker on
  /// requests solved by this engine's EngineConfig::registry override —
  /// their static key reads "builtin" while a different portfolio solves
  /// them, so they must never collapse onto (or coalesce with) a true
  /// builtin-portfolio request. optimizeBatch and PlanServer key by this;
  /// persisted result-cache keys never carry the marker (such requests
  /// are not result-cacheable).
  [[nodiscard]] std::string dedupKey(
      const PlanRequest& request) const override;

  /// Per-source outcome tally across this engine's lifetime — the signal
  /// behind early tightening (see solveOne): the portfolio member whose
  /// source has the highest observed win rate runs first, so the incumbent
  /// is strong before the expensive tail sources start.
  struct SourceTally {
    std::size_t solves = 0;  ///< orchestrated candidates from this source
    std::size_t wins = 0;    ///< solves whose candidate won the reduce
    std::size_t aborts = 0;  ///< solves fully pruned by an incumbent bound
  };

  /// Snapshot of the per-source tallies (source name -> tally), engine
  /// state rather than per-request wire stats: the ranking signal is
  /// cumulative and local by design. Purely observational — execution
  /// order never changes the canonical index-ordered reduce, so winners
  /// (and per-request stats) stay bit-identical whatever the history.
  [[nodiscard]] std::vector<std::pair<std::string, SourceTally>> sourceStats()
      const;

  /// The process-wide default engine behind the optimizePlan facade.
  static PlanEngine& shared();

 private:
  /// `externalBound` is a cross-engine incumbent for this request (an
  /// exact-key board/store bound, or a validated near-key warm bound): it
  /// bounds every orchestration, the lead rank included. Exact-key bounds
  /// are winner-preserving because they are this key's own winner value
  /// (see bound_board.hpp); validated near bounds are achievable values
  /// under this request's own parameters. Belt-and-braces for both: if the
  /// reduce ends above a finite externalBound (a bound that beat every
  /// candidate — impossible for a sound bound), solveOne re-runs itself
  /// unbounded, so even a corrupted bound can only cost time, never
  /// change a winner. Infinity = none.
  [[nodiscard]] OptimizedPlan solveOne(const Application& app, CommModel m,
                                       Objective obj,
                                       const OptimizerOptions& opt,
                                       double externalBound);
  /// A certified warm-start incumbent for `r` from `neighbor` (a prior
  /// winner sharing r's structural prefix): re-evaluates the neighbor's
  /// port orders under r's own application. Returns infinity when the
  /// re-evaluation is infeasible or the shape does not apply — "no
  /// information", never a guess.
  [[nodiscard]] static double validatedWarmBound(const PlanRequest& r,
                                                 const OptimizedPlan& neighbor);
  [[nodiscard]] ThreadPool* poolFor(const OptimizerOptions& opt) const;
  /// Whether the request's key soundly identifies its winner beyond this
  /// call (see the definition for the two unsound shapes it excludes).
  [[nodiscard]] bool resultCacheable(const PlanRequest& request) const;

  EngineConfig config_;
  std::unique_ptr<ThreadPool> ownedPool_;
  ThreadPool* pool_ = nullptr;  ///< resolved engine pool (may be null: serial)
  CandidateCache cache_;        ///< shared cross-request score cache
  ResultCache results_;         ///< full-result store (requestKey -> winner)
  mutable std::mutex sourceMu_;  ///< guards sourceTallies_
  std::unordered_map<std::string, SourceTally> sourceTallies_;
};

/// Batch adapter on the process-wide engine, mirroring optimizePlan.
[[nodiscard]] std::vector<OptimizedPlan> optimizePlanBatch(
    std::span<const PlanRequest> requests);

}  // namespace fsw
