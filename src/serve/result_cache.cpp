#include "src/serve/result_cache.hpp"

namespace fsw {

ResultCache::Entry ResultCache::lookup(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.end(), lru_, it->second);  // move to most-recently-used
  return it->second->second;
}

std::size_t ResultCache::insert(const std::string& key,
                                const OptimizedPlan& plan) {
  // The snapshot (an O(plan-size) copy) is built before taking the lock.
  auto stored = std::make_shared<OptimizedPlan>(plan);
  stored->stats = EngineStats{};  // a cached winner carries no work counters
  Entry entry = std::move(stored);
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second->second = std::move(entry);
    lru_.splice(lru_.end(), lru_, it->second);
    return 0;
  }
  lru_.emplace_back(key, std::move(entry));
  entries_.emplace(key, std::prev(lru_.end()));
  std::size_t evicted = 0;
  while (capacity_ != 0 && entries_.size() > capacity_) {
    entries_.erase(lru_.front().first);
    lru_.pop_front();
    ++stats_.evictions;
    ++evicted;
  }
  return evicted;
}

std::vector<std::pair<std::string, ResultCache::Entry>> ResultCache::snapshot()
    const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {lru_.begin(), lru_.end()};
}

std::size_t ResultCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

ResultCache::Stats ResultCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace fsw
