#include "src/serve/result_cache.hpp"

namespace fsw {

ResultCache::Entry ResultCache::lookup(const std::string& key) {
  return lru_.lookup(key).value_or(nullptr);
}

std::size_t ResultCache::insert(const std::string& key,
                                const OptimizedPlan& plan) {
  // The snapshot (an O(plan-size) copy) is built before the cache lock is
  // taken inside insert().
  auto stored = std::make_shared<OptimizedPlan>(plan);
  stored->stats = EngineStats{};  // a cached winner carries no work counters
  return lru_.insert(key, Entry{std::move(stored)});
}

std::vector<std::pair<std::string, ResultCache::Entry>> ResultCache::snapshot()
    const {
  return lru_.snapshot();
}

std::size_t ResultCache::size() const { return lru_.size(); }

ResultCache::Stats ResultCache::stats() const {
  const auto s = lru_.stats();
  return Stats{s.hits, s.misses, s.evictions};
}

}  // namespace fsw
