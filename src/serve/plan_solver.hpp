// PlanSolver: the blocking batch-solve surface every serving backend
// exposes — the seam that lets one request lifecycle (PlanServer's
// submit/admit/coalesce/batch/stream) run over interchangeable solve
// spines: a single PlanEngine, a ShardedPlanEngine fanning across N
// engines, or anything a future PR plugs in (a remote fan-out, a
// recording shim). The contract is the engine's: optimizeBatch returns an
// index-aligned result vector whose winners are bit-identical to
// per-request serial optimizePlan, and dedupKey is the engine-aware
// coalescing key (identical keys may be collapsed onto one solve).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/opt/optimizer.hpp"

namespace fsw {

class PlanSolver {
 public:
  virtual ~PlanSolver() = default;

  /// Solves a batch; results are index-aligned with `requests` and every
  /// winner is bit-identical to a per-request serial optimizePlan. Must be
  /// safe to call from any number of threads concurrently.
  [[nodiscard]] virtual std::vector<OptimizedPlan> optimizeBatch(
      std::span<const PlanRequest> requests) = 0;

  /// The dedup/coalescing key: requests with equal keys are
  /// interchangeable — one solve may serve all of them.
  [[nodiscard]] virtual std::string dedupKey(
      const PlanRequest& request) const = 0;
};

}  // namespace fsw
