// The shared remote result store: the full-result cache behind its own
// socket service, so engines on different machines warm each other.
//
// PR 3 gave each PlanEngine a local (requestKey -> winning OptimizedPlan)
// store; PR 4 sharded it in-process. This pair puts that store behind the
// FSWF frame protocol (src/serve/plan_service.hpp) as a fleet-level
// second-level cache:
//
//   * ResultStoreHost — a loopback TCP listener owning one ResultCache and
//     one BoundBoard. GET returns the stored winner for a key (or a miss),
//     PUT stores a winner AND publishes its value to the board, and every
//     GET reply carries the board's incumbent bound for the key — so even
//     after the winner itself is evicted, a later same-key solve anywhere
//     in the fleet tightens its abort thresholds with the fleet's best
//     known value (winner-preserving, see src/serve/bound_board.hpp).
//   * RemoteResultStore — the engine-side client. PlanEngine consults it
//     on a local result-cache miss and populates it on solve completion
//     (EngineConfig::resultStore), so a cold engine behind host B serves a
//     repeat first solved behind host A with zero new orchestrations.
//
// Failure discipline: the store is an accelerator, never a dependency. A
// transport failure mid-op degrades the client — get() becomes a miss,
// put() a no-op, counted in Stats::failures — and solves proceed locally;
// reconnect() re-establishes the session. Soundness is the result cache's:
// a solve is a pure function of its canonical request key and every
// serving path returns bit-identical winners, so a stored winner (and its
// value as a bound) is THE answer for that key, whichever host computed it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/io/serialize.hpp"
#include "src/serve/bound_board.hpp"
#include "src/serve/frame_io.hpp"
#include "src/serve/plan_service.hpp"
#include "src/serve/result_cache.hpp"

namespace fsw {

struct ResultStoreConfig {
  /// Listening port on 127.0.0.1; 0 picks an ephemeral port (port()).
  std::uint16_t port = 0;
  /// Retained winners (0 = unbounded). Keys dominate an entry's footprint,
  /// so a fleet-level store should be bounded like any long-lived cache.
  std::size_t capacity = 1 << 14;
  /// Retained incumbent bounds (0 = unbounded). Bounds are tiny, so the
  /// board outliving the winners it came from is the point: an evicted
  /// winner keeps pruning.
  std::size_t boundCapacity = 1 << 16;
  /// Transport selection and knobs (epoll reactor by default); see
  /// frameio::TransportConfig.
  frameio::TransportConfig transport{};
};

/// The serving side: the shared frameio::SocketService transport (epoll
/// reactor by default) delivers each frame to handleFrame — decode ->
/// apply (GET/PUT/STATS) -> reply. Same frame failure discipline as
/// PlanServiceHost: malformed payloads get an error frame and the
/// connection lives; malformed frames drop it.
class ResultStoreHost : public frameio::SocketService {
 public:
  struct Stats {
    std::size_t connections = 0;  ///< connections accepted
    std::size_t gets = 0;         ///< GET frames answered
    std::size_t hits = 0;         ///< GETs answered with a stored winner
    std::size_t boundHits = 0;    ///< GETs answered with a finite bound
    std::size_t nearGets = 0;     ///< near (prefix) GET frames answered
    std::size_t nearHits = 0;     ///< near GETs that returned a neighbor
    std::size_t puts = 0;         ///< PUT frames applied
    std::size_t errors = 0;       ///< error frames sent + dropped streams
    /// Frame traffic across every connection, headers included (the STATS
    /// verb reports these counters to remote askers).
    std::size_t framesIn = 0;
    std::size_t bytesIn = 0;
    std::size_t framesOut = 0;
    std::size_t bytesOut = 0;
    /// Transport counters (see frameio::TransportTotals); STATS reports
    /// them too, so fleet operators see who is consuming a store.
    std::size_t refusedOverLimit = 0;
    std::size_t idleClosed = 0;
    std::size_t peakWriteQueueBytes = 0;
    std::size_t transportThreads = 0;
  };

  explicit ResultStoreHost(ResultStoreConfig config = {});
  ~ResultStoreHost();

  [[nodiscard]] Stats stats() const;
  /// Direct access to the stored state (tests, persistence tooling — the
  /// store can be warm-started via readResultCache into results()).
  [[nodiscard]] ResultCache& results() noexcept { return results_; }
  [[nodiscard]] BoundBoard& bounds() noexcept { return bounds_; }

  /// Stops accepting, drops live connections, joins every thread.
  /// Idempotent; the destructor calls it.
  void stop() { stopService(); }

 private:
  void handleFrame(Responder& out, frameio::Frame frame) override;

  ResultStoreConfig config_;
  ResultCache results_;
  BoundBoard bounds_;

  mutable std::mutex mu_;  ///< guards stats_
  Stats stats_{};
};

/// The engine-side client: blocking GET/PUT/STATS RPCs over one socket,
/// serialized by an internal mutex (safe to share across an engine's
/// concurrent batches). Construction connects eagerly and throws on
/// failure — a misconfigured endpoint should surface at wiring time; every
/// *later* transport failure degrades the client instead (miss / no-op)
/// so the store can die without failing a single solve.
class RemoteResultStore {
 public:
  struct Stats {
    std::size_t gets = 0;      ///< get() calls issued
    std::size_t hits = 0;      ///< gets that returned a stored winner
    std::size_t nearGets = 0;  ///< getNear() calls issued
    std::size_t nearHits = 0;  ///< getNears that returned a neighbor plan
    std::size_t puts = 0;      ///< put() calls delivered
    std::size_t failures = 0;  ///< ops degraded by transport failures
    /// Cumulative wire bytes this client moved (frame headers included),
    /// every verb combined — the per-peer ledger the engine's E12 bench
    /// reads.
    std::size_t bytesSent = 0;
    std::size_t bytesReceived = 0;
  };

  /// The result of one GET: the stored winner (nullptr = miss) and the
  /// fleet's incumbent bound for the key (+inf = none), plus what that
  /// lookup cost on the wire (its GET frame out, its reply frame in,
  /// headers included) so callers can attribute store traffic per key.
  struct Lookup {
    std::shared_ptr<const OptimizedPlan> plan;
    double bound = std::numeric_limits<double>::infinity();
    std::size_t bytesSent = 0;
    std::size_t bytesReceived = 0;
  };

  /// Per-key wire cost of one putMany entry (frame headers included).
  struct OpBytes {
    std::size_t sent = 0;
    std::size_t received = 0;
  };

  /// `ioTimeoutMs` bounds every socket op (connect, send, recv): a store
  /// that stops responding without closing (SIGSTOP, partition) degrades
  /// the session after the timeout instead of hanging a solve — the
  /// "never a dependency" contract needs a clock, not just error codes.
  /// <= 0 disables the bound (blocking sockets).
  RemoteResultStore(const std::string& host, std::uint16_t port,
                    int ioTimeoutMs = 5000);
  ~RemoteResultStore();

  RemoteResultStore(const RemoteResultStore&) = delete;
  RemoteResultStore& operator=(const RemoteResultStore&) = delete;

  /// The stored winner and bound for `key`. Degrades to a miss (and marks
  /// the client disconnected) on transport failure — never throws, never
  /// hangs a solve on a dead store.
  [[nodiscard]] Lookup get(const std::string& key);

  /// The most recent stored winner whose key shares the structural
  /// `prefix` (structuralPrefixOfKey): the warm-start hint for a re-solve
  /// of a mutated application. The reply never carries a bound — a
  /// neighbor's value is not a bound for the asker's key; the caller must
  /// re-evaluate the plan under its own parameters (see
  /// src/serve/bound_board.hpp). Degrades to a miss like get(); a host
  /// predating the near flag answers with an error frame, which also
  /// degrades to a miss (without dropping the session).
  [[nodiscard]] Lookup getNear(const std::string& prefix);

  /// The stored winners and bounds for `keys`, answered index-aligned in
  /// ONE pipelined pass over the socket (every GET frame is written, then
  /// every reply read) — a cold batch pays ~1 round trip, not
  /// keys.size() of them. `wantPlans = false` asks for bounds only: the
  /// store skips the winner payloads, for engines that re-solve by
  /// policy. Same degradation contract as get().
  [[nodiscard]] std::vector<Lookup> getMany(
      const std::vector<std::string>& keys, bool wantPlans = true);

  /// Publishes `plan` as the winner of `key` (the store also posts its
  /// value to the fleet bound board). No-op when disconnected.
  void put(const std::string& key, const OptimizedPlan& plan);

  /// Publishes a batch of winners (index-aligned keys/plans; plans are
  /// borrowed for the call) in one pipelined pass, mirroring getMany — a
  /// cold batch's publishes pay ~1 round trip, not keys.size() of them.
  /// Same degradation contract as put(). `perKey`, when non-null, is
  /// resized to keys.size() and filled with each key's wire cost (zeros
  /// for keys degraded away).
  void putMany(const std::vector<std::string>& keys,
               const std::vector<const OptimizedPlan*>& plans,
               std::vector<OpBytes>* perKey = nullptr);

  /// The store's own counters. Throws RemotePlanError when the store
  /// cannot be reached — unlike get/put this is an observability call, so
  /// failing loudly is the useful behavior.
  [[nodiscard]] StoreStatsWire remoteStats();

  /// Attempts to re-establish a degraded session; true when connected
  /// after the call. Never throws.
  bool reconnect();

  [[nodiscard]] bool connected() const;
  [[nodiscard]] Stats stats() const;

  /// Closes the socket; subsequent ops degrade until reconnect().
  void close();

 private:
  /// One framed RPC under the lock. Returns false (and degrades the
  /// session) on any transport failure; `reply` holds the payload of a
  /// Result frame, `error` the payload of an Error frame (errorFrame set).
  bool roundTrip(FrameType type, const std::string& payload,
                 std::string& reply, std::string& error, bool& errorFrame);

  std::string host_;
  std::uint16_t port_ = 0;
  int ioTimeoutMs_ = 5000;

  mutable std::mutex mu_;
  int fd_ = -1;
  Stats stats_{};
};

}  // namespace fsw
