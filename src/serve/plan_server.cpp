#include "src/serve/plan_server.hpp"

#include <algorithm>
#include <exception>
#include <span>

namespace fsw {

PlanServer::PlanServer(ServerConfig config) : config_(std::move(config)) {
  if (config_.maxBatch == 0) config_.maxBatch = 1;
  if (config_.drainThreads == 0) config_.drainThreads = 1;
  if (config_.solver != nullptr) {
    solver_ = config_.solver;
    // The backend may still be an engine — surface it when it is.
    engine_ = dynamic_cast<PlanEngine*>(config_.solver);
  } else if (config_.engine != nullptr) {
    engine_ = config_.engine;
    solver_ = engine_;
  } else {
    ownedEngine_ = std::make_unique<PlanEngine>(config_.engineConfig);
    engine_ = ownedEngine_.get();
    solver_ = engine_;
  }
  drainers_.reserve(config_.drainThreads);
  for (std::size_t i = 0; i < config_.drainThreads; ++i) {
    drainers_.emplace_back([this] { drainLoop(); });
  }
}

PlanServer::~PlanServer() { shutdown(); }

std::size_t PlanServer::inFlightLimit() const noexcept {
  if (config_.maxInFlight != 0) return config_.maxInFlight;
  return config_.drainThreads * config_.maxBatch;
}

std::future<OptimizedPlan> PlanServer::submit(PlanRequest request,
                                              int priority) {
  std::promise<OptimizedPlan> promise;
  std::future<OptimizedPlan> future = promise.get_future();
  // The backend-aware key: requests relying on an engine-level portfolio
  // override must not coalesce with explicit-builtin ones.
  const std::string key = solver_->dedupKey(request);

  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.submitted;
  for (;;) {
    if (stopping_) {
      ++stats_.rejected;
      lock.unlock();
      promise.set_exception(std::make_exception_ptr(
          RejectedSubmit("PlanServer: submit after shutdown")));
      return future;
    }
    // Coalesce onto an identical solve, queued or already in flight: the
    // submit consumes no queue space and spawns no new work — one solve
    // fulfills every attached future.
    if (const auto it = inFlight_.find(key); it != inFlight_.end()) {
      it->second.push_back(std::move(promise));
      ++stats_.coalesced;
      return future;
    }
    if (const auto it = queued_.find(key); it != queued_.end()) {
      Solve& solve = it->second;
      if (priority > solve.priority) {
        // The urgent duplicate drags the queued solve forward.
        order_.erase({-solve.priority, solve.seq});
        solve.priority = priority;
        order_.emplace(std::make_pair(-priority, solve.seq), key);
      }
      solve.waiters.push_back(std::move(promise));
      ++stats_.coalesced;
      return future;
    }
    if (config_.maxQueueDepth == 0 || queued_.size() < config_.maxQueueDepth) {
      break;  // space: admit below
    }
    if (config_.admission == AdmissionPolicy::Reject) {
      ++stats_.rejected;
      lock.unlock();
      promise.set_exception(std::make_exception_ptr(RejectedSubmit(
          "PlanServer: queue full (depth " +
          std::to_string(config_.maxQueueDepth) + ")")));
      return future;
    }
    // Block: wait for space, then re-examine from scratch — the key may
    // meanwhile have become coalescible or the server may be stopping.
    cvSpace_.wait(lock);
  }

  Solve solve;
  solve.request = std::move(request);
  solve.priority = priority;
  solve.seq = nextSeq_++;
  solve.waiters.push_back(std::move(promise));
  order_.emplace(std::make_pair(-priority, solve.seq), key);
  liveSeqs_.insert(solve.seq);
  queued_.emplace(key, std::move(solve));
  ++stats_.admitted;
  cvWork_.notify_all();
  return future;
}

void PlanServer::drainLoop() {
  for (;;) {
    std::vector<std::string> keys;
    std::vector<std::uint64_t> seqs;
    std::vector<PlanRequest> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cvWork_.wait(lock, [&] {
        return (!order_.empty() && inFlightCount_ < inFlightLimit()) ||
               (stopping_ && order_.empty());
      });
      if (order_.empty()) return;  // stopping, and nothing left to drain

      const std::size_t take =
          std::min({config_.maxBatch, inFlightLimit() - inFlightCount_,
                    order_.size()});
      keys.reserve(take);
      seqs.reserve(take);
      batch.reserve(take);
      for (std::size_t k = 0; k < take; ++k) {
        const auto it = order_.begin();
        const std::string key = it->second;
        order_.erase(it);
        const auto qit = queued_.find(key);
        // The solve moves from queued to in flight; late duplicates of it
        // now attach through inFlight_.
        inFlight_.emplace(key, std::move(qit->second.waiters));
        batch.push_back(std::move(qit->second.request));
        keys.push_back(key);
        seqs.push_back(qit->second.seq);
        queued_.erase(qit);
      }
      inFlightCount_ += take;
      ++stats_.batches;
      cvSpace_.notify_all();
    }

    std::vector<OptimizedPlan> results;
    std::exception_ptr failure;
    try {
      results = solver_->optimizeBatch(
          std::span<const PlanRequest>(batch.data(), batch.size()));
    } catch (...) {
      failure = std::current_exception();
    }

    for (std::size_t i = 0; i < keys.size(); ++i) {
      std::vector<std::promise<OptimizedPlan>> waiters;
      {
        std::unique_lock<std::mutex> lock(mu_);
        const auto it = inFlight_.find(keys[i]);
        waiters = std::move(it->second);
        inFlight_.erase(it);
        // inFlightCount_ stays up through delivery: drain()/shutdown must
        // not observe "completed" before the stream callback has run and
        // every attached future is fulfilled. (An identical submit landing
        // right now queues a fresh solve — the key is gone from inFlight_,
        // so no waiter can be lost.)
      }
      std::exception_ptr delivery = failure;
      if (delivery == nullptr && config_.onResult) {
        // A throwing stream callback must not unwind the drain thread
        // (std::terminate) or leave futures forever unfulfilled — it
        // fails this solve's futures with its exception instead.
        try {
          config_.onResult(batch[i], results[i]);
        } catch (...) {
          delivery = std::current_exception();
        }
      }
      if (delivery == nullptr) {
        for (auto& waiter : waiters) waiter.set_value(results[i]);
      } else {
        for (auto& waiter : waiters) waiter.set_exception(delivery);
      }
      {
        std::unique_lock<std::mutex> lock(mu_);
        --inFlightCount_;
        liveSeqs_.erase(seqs[i]);
        ++stats_.completed;
      }
      // In-flight room freed: another drainer may proceed — and the
      // oldest live solve may have advanced past a drain() cutoff.
      cvWork_.notify_all();
      cvIdle_.notify_all();
    }
  }
}

void PlanServer::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  // Snapshot semantics: only solves admitted before this call (seq below
  // the cutoff) are waited on, so drain() returns under continuous
  // traffic once its snapshot has completed.
  const std::uint64_t cutoff = nextSeq_;
  cvIdle_.wait(lock, [&] {
    return liveSeqs_.empty() || *liveSeqs_.begin() >= cutoff;
  });
}

void PlanServer::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cvSpace_.notify_all();  // blocked submitters wake up and get rejected
  cvWork_.notify_all();
  const std::lock_guard<std::mutex> join(joinMu_);
  for (auto& drainer : drainers_) {
    if (drainer.joinable()) drainer.join();
  }
}

PlanServer::Stats PlanServer::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t PlanServer::queueDepth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queued_.size();
}

std::size_t PlanServer::inFlight() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return inFlightCount_;
}

}  // namespace fsw
