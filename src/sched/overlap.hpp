// OVERLAP (bounded multi-port) orchestration.
//
// Period: polynomial (Theorem 1 / Prop 1). With T = max_k Cexec(k), assign
// every communication of volume v the fixed bandwidth ratio v / T, so all
// communications last exactly T; computations run as soon as their inputs
// have arrived. Per-server incoming (outgoing) ratios sum to Cin/T (Cout/T)
// <= 1, so the multi-port capacity holds and the lower bound T is achieved.
//
// Latency: NP-hard (Theorem 3 / Prop 11). We provide a fluid heuristic that
// synchronizes each node's receive phase (all incoming transfers share
// bandwidth, as in the counter-example of Appendix B.2) and falls back to
// the best one-port schedule when that is better (every one-port OL is
// OVERLAP-valid).
#pragma once

#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"
#include "src/oplist/operation_list.hpp"

namespace fsw {

/// The Prop 1 optimal-period OVERLAP operation list: period = max_k Cexec(k).
[[nodiscard]] OperationList overlapPeriodSchedule(const Application& app,
                                                  const ExecutionGraph& graph);

/// Fluid (bandwidth-sharing) latency heuristic for the OVERLAP model.
/// Returns an OVERLAP-valid OL with lambda = latency.
[[nodiscard]] OperationList overlapLatencyFluid(const Application& app,
                                                const ExecutionGraph& graph);

}  // namespace fsw
