#include "src/sched/orchestrator.hpp"

#include <limits>

#include "src/core/cost_model.hpp"
#include "src/sched/latency.hpp"
#include "src/sched/overlap.hpp"

namespace fsw {

Orchestration orchestrate(const Application& app, const ExecutionGraph& graph,
                          CommModel m, Objective obj,
                          const OrchestratorOptions& opt) {
  const CostModel costs(app, graph);
  Orchestration out;
  if (obj == Objective::Period) {
    out.lowerBound = costs.periodLowerBound(m);
    switch (m) {
      case CommModel::Overlap: {
        out.result.ol = overlapPeriodSchedule(app, graph);
        out.result.value = out.result.ol.period();
        out.result.orders = PortOrders::canonical(graph);
        break;
      }
      case CommModel::InOrder:
        out.result = inorderOrchestratePeriod(app, graph, opt.order);
        break;
      case CommModel::OutOrder: {
        OutorderOptions oo = opt.outorder;
        oo.inorder = opt.order;
        // The conflict repair improves *below* its INORDER seed, so an
        // incumbent that dominates the seed does not dominate the final
        // OUTORDER value — pruning the seed search would be unsound here.
        oo.inorder.upperBound = std::numeric_limits<double>::infinity();
        oo.inorder.boundAborts = nullptr;
        out.result = outorderOrchestratePeriod(app, graph, oo);
        break;
      }
    }
  } else {
    out.lowerBound = costs.latencyLowerBound();
    out.result = latencyOrchestrate(app, graph, m, opt.order);
  }
  return out;
}

}  // namespace fsw
