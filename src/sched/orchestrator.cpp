#include "src/sched/orchestrator.hpp"

#include <limits>

#include "src/core/cost_model.hpp"
#include "src/sched/latency.hpp"
#include "src/sched/overlap.hpp"

namespace fsw {

Orchestration orchestrate(const Application& app, const ExecutionGraph& graph,
                          CommModel m, Objective obj,
                          const OrchestratorOptions& opt) {
  const CostModel costs(app, graph);
  Orchestration out;
  if (obj == Objective::Period) {
    out.lowerBound = costs.periodLowerBound(m);
    switch (m) {
      case CommModel::Overlap: {
        out.result.ol = overlapPeriodSchedule(app, graph);
        out.result.value = out.result.ol.period();
        out.result.orders = PortOrders::canonical(graph);
        break;
      }
      case CommModel::InOrder:
        out.result = inorderOrchestratePeriod(app, graph, opt.order);
        break;
      case CommModel::OutOrder: {
        OutorderOptions oo = opt.outorder;
        oo.inorder = opt.order;
        // The incumbent bounds the *final* OUTORDER value; the search
        // derives its own sound seed-phase bound from it (the plain
        // incumbent would be unsound against the seed, which the repair
        // improves below), so strip the caller's INORDER bound here.
        oo.inorder.upperBound = std::numeric_limits<double>::infinity();
        oo.inorder.boundAborts = nullptr;
        oo.upperBound = opt.order.upperBound;
        out.result = outorderOrchestratePeriod(app, graph, oo);
        break;
      }
    }
  } else {
    out.lowerBound = costs.latencyLowerBound();
    out.result = latencyOrchestrate(app, graph, m, opt.order);
  }
  return out;
}

}  // namespace fsw
