// Latency orchestration.
//
// For a single data set the overlap / no-overlap distinction vanishes
// (Section 2.2, "Latency"): processing is fully serialized and the period
// equals the latency. What remains is the one-port vs multi-port choice:
//
//   * tree execution graphs: Algorithm 1 (feed subtrees by non-increasing
//     remaining time) is optimal for all three models (Prop 12);
//   * general DAGs, one-port: NP-hard (Theorem 3); port-order search via the
//     difference-constraint system (exact for small graphs);
//   * general DAGs, multi-port: NP-hard (Prop 11); the fluid
//     bandwidth-sharing heuristic can beat every one-port schedule
//     (counter-example B.2), so OVERLAP takes the better of the two.
#pragma once

#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"
#include "src/core/model.hpp"
#include "src/sched/inorder.hpp"

namespace fsw {

/// Algorithm 1 value: optimal latency of a forest execution graph (all
/// models). Only the number is computed; O(n log n).
[[nodiscard]] double treeLatencyValue(const Application& app,
                                      const ExecutionGraph& graph);

/// Algorithm 1 with schedule construction. Requires graph.isForest().
[[nodiscard]] OrchestrationResult treeLatencySchedule(
    const Application& app, const ExecutionGraph& graph);

/// Best latency OL for the given model (dispatches to the tree algorithm,
/// the one-port order search, and the OVERLAP fluid heuristic).
[[nodiscard]] OrchestrationResult latencyOrchestrate(
    const Application& app, const ExecutionGraph& graph, CommModel m,
    const OrchestrationOptions& opt = {});

}  // namespace fsw
