// INORDER orchestration: given an execution graph, find the operation list
// minimizing the period (NP-hard, Theorem 1/Prop 3) or the latency.
//
// For *fixed* port orders the problem is polynomial: the INORDER rules become
// a periodic difference-constraint system (see periodic_cg.hpp) whose minimal
// feasible lambda is the optimal period for those orders. The hardness lives
// in choosing the orders, so this module offers exhaustive order enumeration
// (exact, small graphs) and heuristic orders + local search (large graphs).
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>

#include "src/common/thread_pool.hpp"
#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"
#include "src/oplist/operation_list.hpp"
#include "src/sched/port_orders.hpp"

namespace fsw {

struct OrchestrationResult {
  double value = 0.0;  ///< achieved period (or latency, per the call)
  OperationList ol;
  PortOrders orders;
};

/// Incumbent dominance against an ANALYTIC floor (busy time, the period
/// lower bound), with cross-expression rounding slack. The floor and the
/// search's achieved value compute the same mathematical quantity through
/// different floating-point expressions, so they can disagree by a few ulp
/// in either direction — a plain `floor > incumbent` prune firing inside
/// that disagreement drops a candidate that would have TIED the incumbent
/// bit-exactly, and the deterministic tie-break (step-4 rank) silently
/// follows execution order instead. Only floors strictly beyond the slack
/// are dominated: 1e-12 relative is ~4 decimal orders above double ulp at
/// any magnitude and far below the 1e-6 resolution the searches certify,
/// so no candidate that matters survives spuriously. Prunes that compare
/// the incumbent against the SAME evaluator that produced it (the
/// feasibleInto probes) stay exact — they are bit-consistent by
/// construction and need no slack.
[[nodiscard]] inline bool analyticallyDominated(double floor,
                                                double incumbent) {
  return floor >
         incumbent + 1e-12 * std::max(1.0, std::abs(incumbent));
}

struct OrchestrationOptions {
  /// Enumerate all port orders exactly when their count is at most this.
  std::size_t exactCap = 20000;
  /// Local-search random adjacent swaps tried per restart when not exact.
  std::size_t localSearchIters = 300;
  /// Independent local-search restarts; restart r derives its own PRNG from
  /// `seed` + r, so pooled and serial runs visit identical search chains and
  /// the deterministic reduce (lowest value, then lowest restart index)
  /// returns bit-identical winners.
  std::size_t localSearchRestarts = 4;
  std::uint64_t seed = 1;
  /// Evaluations fan out over this pool; nullptr means fully serial.
  ThreadPool* pool = nullptr;
  /// Incumbent upper bound (Bounded-Dijkstra-style pruning): an evaluation
  /// whose value provably cannot be strictly below this aborts without
  /// running the full solve. The PlanEngine threads the value achieved by a
  /// request's best-ranked candidate into the remaining orchestrations.
  /// Infinity disables pruning. Only *independently reduced* evaluations
  /// are pruned — the exhaustive order enumeration and the standalone
  /// list-scheduling probe — where a dominated order can never be the
  /// returned winner; the heuristic local search always runs unbounded
  /// because it may descend through dominated intermediate orders to a
  /// winner below the incumbent.
  double upperBound = std::numeric_limits<double>::infinity();
  /// When non-null, every aborted solve increments this counter (shared
  /// across pool workers; the engine surfaces it as EngineStats.boundAborts).
  std::atomic<std::size_t>* boundAborts = nullptr;
  /// Memory-discipline observability (EngineStats.evalProbes /
  /// .scratchHeapAllocs / .arenaBytesHighWater). A search aggregates its
  /// per-worker scratch counters into these once, after the parallel
  /// sections complete: probes = hot-loop candidate evaluations,
  /// scratchHeapAllocs = buffer-growth events observed by the reusable
  /// scratch (constraint storage, solve vectors, arena blocks — ~0 in
  /// steady state), arenaBytesHighWater = max bytes live in any search
  /// arena (accumulated by max, not sum).
  std::atomic<std::size_t>* evalProbes = nullptr;
  std::atomic<std::size_t>* scratchHeapAllocs = nullptr;
  std::atomic<std::size_t>* arenaBytesHighWater = nullptr;
};

/// Minimal INORDER period achievable with the given port orders, or nullopt
/// if the orders are inconsistent (cyclic sequencing requirements) — or if
/// `upperBound` is finite and the minimal period provably cannot be strictly
/// below it (per-node busy time exceeds the bound, or the system is already
/// infeasible at the bound), in which case the solve aborts early and
/// `boundAborts` (when non-null) is incremented.
[[nodiscard]] std::optional<OrchestrationResult> inorderPeriodForOrders(
    const Application& app, const ExecutionGraph& graph,
    const PortOrders& orders,
    double upperBound = std::numeric_limits<double>::infinity(),
    std::atomic<std::size_t>* boundAborts = nullptr);

/// The minimal-begin-times INORDER schedule with the given orders at a
/// *fixed* period lambda, or nullopt if infeasible. Because the solution is
/// componentwise minimal, its latency is the smallest achievable for these
/// orders at this lambda — the primitive behind the bi-criteria front.
[[nodiscard]] std::optional<OperationList> inorderScheduleAtLambda(
    const Application& app, const ExecutionGraph& graph,
    const PortOrders& orders, double lambda);

/// Minimal one-port latency (single data set, valid for both INORDER and
/// OUTORDER) with the given port orders, or nullopt if inconsistent. The
/// returned OL serializes data sets: lambda = latency (Section 2.2,
/// "Latency"). A finite `upperBound` aborts (and counts) solves whose
/// per-node busy time already exceeds the bound.
[[nodiscard]] std::optional<OrchestrationResult> oneportLatencyForOrders(
    const Application& app, const ExecutionGraph& graph,
    const PortOrders& orders,
    double upperBound = std::numeric_limits<double>::infinity(),
    std::atomic<std::size_t>* boundAborts = nullptr);

/// Best INORDER period over port orders (exact below exactCap, otherwise
/// heuristic + local search).
[[nodiscard]] OrchestrationResult inorderOrchestratePeriod(
    const Application& app, const ExecutionGraph& graph,
    const OrchestrationOptions& opt = {});

/// Best one-port latency over port orders (exact below exactCap, otherwise
/// heuristic + local search).
[[nodiscard]] OrchestrationResult oneportOrchestrateLatency(
    const Application& app, const ExecutionGraph& graph,
    const OrchestrationOptions& opt = {});

}  // namespace fsw
