#include "src/sched/outorder.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/prng.hpp"
#include "src/core/cost_model.hpp"
#include "src/core/model.hpp"
#include "src/oplist/validate.hpp"

namespace fsw {
namespace {

/// Which operations must be mutually exclusive on a server.
enum class Exclusion {
  FullSerial,  ///< OUTORDER: calc + every incident comm serialized
  PortOnly,    ///< one-port-overlap hybrid: in-port and out-port serialized
};

/// One pipelined operation of the cyclic schedule (data set 0 occurrence).
struct POp {
  bool isCalc = false;
  NodeId a = kWorld;  // calc: the node; comm: sender (kWorld for input)
  NodeId b = kWorld;  // comm: receiver (kWorld for output)
  double dur = 0.0;
  double release = 0.0;  // repair-imposed earliest begin
  double begin = 0.0;
  std::vector<std::size_t> preds;  // same-data-set precedence
};

struct Pipeline {
  std::vector<POp> ops;
  std::vector<std::vector<std::size_t>> groups;  // mutual-exclusion sets
  std::vector<std::size_t> topo;                 // op evaluation order

  Pipeline(const Application& app, const ExecutionGraph& graph,
           Exclusion mode) {
    const CostModel costs(app, graph);
    const std::size_t n = graph.size();

    std::vector<std::size_t> calcOf(n);
    std::vector<std::vector<std::size_t>> ins(n), outs(n);
    for (NodeId i = 0; i < n; ++i) {
      POp op;
      op.isCalc = true;
      op.a = i;
      op.dur = costs.at(i).ccomp;
      calcOf[i] = ops.size();
      ops.push_back(op);
    }
    auto addComm = [&](NodeId from, NodeId to, double dur) {
      POp op;
      op.a = from;
      op.b = to;
      op.dur = dur;
      if (from != kWorld) {
        op.preds.push_back(calcOf[from]);
        outs[from].push_back(ops.size());
      }
      if (to != kWorld) {
        ops[calcOf[to]].preds.push_back(ops.size());
        ins[to].push_back(ops.size());
      }
      ops.push_back(op);
    };
    for (NodeId i = 0; i < n; ++i) {
      if (graph.isEntry(i)) addComm(kWorld, i, 1.0);
    }
    for (const auto& e : graph.edges()) {
      addComm(e.from, e.to, costs.at(e.from).sigmaOut);
    }
    for (NodeId i = 0; i < n; ++i) {
      if (graph.isExit(i)) addComm(i, kWorld, costs.at(i).sigmaOut);
    }

    for (NodeId i = 0; i < n; ++i) {
      if (mode == Exclusion::FullSerial) {
        std::vector<std::size_t> g = ins[i];
        g.insert(g.end(), outs[i].begin(), outs[i].end());
        g.push_back(calcOf[i]);
        groups.push_back(std::move(g));
      } else {
        groups.push_back(ins[i]);
        groups.push_back(outs[i]);
      }
    }

    // Kahn order over the op precedence DAG.
    std::vector<std::size_t> indeg(ops.size(), 0);
    std::vector<std::vector<std::size_t>> succ(ops.size());
    for (std::size_t o = 0; o < ops.size(); ++o) {
      for (const std::size_t p : ops[o].preds) {
        succ[p].push_back(o);
        ++indeg[o];
      }
    }
    std::vector<std::size_t> stack;
    for (std::size_t o = 0; o < ops.size(); ++o) {
      if (indeg[o] == 0) stack.push_back(o);
    }
    while (!stack.empty()) {
      const std::size_t o = stack.back();
      stack.pop_back();
      topo.push_back(o);
      for (const std::size_t s : succ[o]) {
        if (--indeg[s] == 0) stack.push_back(s);
      }
    }
  }

  void resetReleases() {
    for (auto& op : ops) op.release = 0.0;
  }

  void asap() {
    for (const std::size_t o : topo) {
      double t = ops[o].release;
      for (const std::size_t p : ops[o].preds) {
        t = std::max(t, ops[p].begin + ops[p].dur);
      }
      ops[o].begin = t;
    }
  }

  /// All exclusion-group pairs violating the mod-lambda no-overlap rule.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> conflicts(
      double lambda) const {
    std::vector<std::pair<std::size_t, std::size_t>> out;
    for (const auto& g : groups) {
      for (std::size_t x = 0; x < g.size(); ++x) {
        for (std::size_t y = x + 1; y < g.size(); ++y) {
          const auto& u = ops[g[x]];
          const auto& v = ops[g[y]];
          if (wrappedOverlap(u.begin, u.dur, v.begin, v.dur, lambda)) {
            out.emplace_back(g[x], g[y]);
          }
        }
      }
    }
    return out;
  }

  [[nodiscard]] OperationList extract(std::size_t n, double lambda) const {
    OperationList ol(n, lambda);
    for (const auto& op : ops) {
      if (op.isCalc) {
        ol.setCalc(op.a, op.begin, op.begin + op.dur);
      } else {
        ol.setComm(op.a, op.b, op.begin, op.begin + op.dur);
      }
    }
    return ol;
  }
};

double wrapTo(double x, double lambda) {
  double r = std::fmod(x, lambda);
  if (r < 0) r += lambda;
  return r;
}

std::optional<OperationList> repairAtLambda(const Application& app,
                                            const ExecutionGraph& graph,
                                            double lambda, Exclusion mode,
                                            const OutorderOptions& opt) {
  const CostModel costs(app, graph);
  const CommModel boundModel = (mode == Exclusion::FullSerial)
                                   ? CommModel::OutOrder
                                   : CommModel::Overlap;
  if (costs.periodLowerBound(boundModel) > lambda + 1e-9) return std::nullopt;

  auto accepted = [&](const OperationList& ol) {
    return mode == Exclusion::FullSerial
               ? validate(app, graph, ol, CommModel::OutOrder).valid
               : validateOnePortOverlap(app, graph, ol).valid;
  };

  // One independent repair chain: a pure function of its restart index, so
  // restarts can fan out over the pool and reproduce bit-identically.
  auto tryRestart = [&](std::size_t restart) -> std::optional<OperationList> {
    Pipeline pipe(app, graph, mode);
    Prng rng((opt.seed + restart) * 0x9E3779B97F4A7C15ULL + 17);
    for (std::size_t iter = 0; iter < opt.repairIters; ++iter) {
      pipe.asap();
      const auto bad = pipe.conflicts(lambda);
      if (bad.empty()) {
        OperationList ol = pipe.extract(graph.size(), lambda);
        if (accepted(ol)) return ol;
        return std::nullopt;  // numerical disagreement with the validator
      }
      const auto& [x, y] =
          bad[static_cast<std::size_t>(rng.uniformInt(0, bad.size() - 1))];
      // Delay one of the two ops to just past the other, modulo lambda.
      std::size_t victim = x;
      std::size_t other = y;
      const bool delayLater = rng.bernoulli(0.7);
      const bool xLater = pipe.ops[x].begin > pipe.ops[y].begin;
      if (delayLater != xLater) std::swap(victim, other);
      const double otherEndRel =
          wrapTo(pipe.ops[other].begin + pipe.ops[other].dur, lambda);
      const double victimRel = wrapTo(pipe.ops[victim].begin, lambda);
      double delta = otherEndRel - victimRel;
      if (delta <= 1e-12) delta += lambda;
      // Occasionally jump a full extra period to escape tight packings.
      if (rng.bernoulli(0.15)) delta += lambda;
      pipe.ops[victim].release = pipe.ops[victim].begin + delta;
    }
    return std::nullopt;
  };

  // Scan restarts in pool-width waves so the serial early-exit survives:
  // within a wave every chain runs, then the lowest restart index wins —
  // exactly the winner a serial scan of 0,1,2,... would return.
  const std::size_t wave =
      opt.pool == nullptr ? 1 : std::max<std::size_t>(1, opt.pool->threadCount());
  for (std::size_t base = 0; base < opt.restarts; base += wave) {
    const std::size_t count = std::min(wave, opt.restarts - base);
    auto results = parallelMap<std::optional<OperationList>>(
        opt.pool, count,
        [&](std::size_t i) { return tryRestart(base + i); });
    for (auto& r : results) {
      if (r) return std::move(*r);
    }
  }
  return std::nullopt;
}

OrchestrationResult orchestratePeriod(const Application& app,
                                      const ExecutionGraph& graph,
                                      Exclusion mode,
                                      const OutorderOptions& opt) {
  const CostModel costs(app, graph);
  const CommModel boundModel = (mode == Exclusion::FullSerial)
                                   ? CommModel::OutOrder
                                   : CommModel::Overlap;
  const double lb = costs.periodLowerBound(boundModel);

  // Seed with the INORDER optimum: INORDER-valid implies valid for both
  // relaxations searched here.
  OrchestrationResult best = inorderOrchestratePeriod(app, graph, opt.inorder);
  if (best.value <= lb + 1e-9) return best;

  if (auto ol = repairAtLambda(app, graph, lb, mode, opt)) {
    best.value = lb;
    best.ol = std::move(*ol);
    return best;
  }
  double lo = lb;
  double hi = best.value;
  for (std::size_t step = 0; step < opt.bisectSteps && hi - lo > 1e-6; ++step) {
    const double mid = 0.5 * (lo + hi);
    if (auto ol = repairAtLambda(app, graph, mid, mode, opt)) {
      best.value = mid;
      best.ol = std::move(*ol);
      hi = mid;
    } else {
      lo = mid;  // heuristic failure treated as infeasible
    }
  }
  return best;
}

}  // namespace

std::optional<OperationList> outorderRepairAtLambda(
    const Application& app, const ExecutionGraph& graph, double lambda,
    const OutorderOptions& opt) {
  return repairAtLambda(app, graph, lambda, Exclusion::FullSerial, opt);
}

std::optional<OperationList> onePortOverlapRepairAtLambda(
    const Application& app, const ExecutionGraph& graph, double lambda,
    const OutorderOptions& opt) {
  return repairAtLambda(app, graph, lambda, Exclusion::PortOnly, opt);
}

OrchestrationResult outorderOrchestratePeriod(const Application& app,
                                              const ExecutionGraph& graph,
                                              const OutorderOptions& opt) {
  return orchestratePeriod(app, graph, Exclusion::FullSerial, opt);
}

OrchestrationResult onePortOverlapOrchestratePeriod(
    const Application& app, const ExecutionGraph& graph,
    const OutorderOptions& opt) {
  return orchestratePeriod(app, graph, Exclusion::PortOnly, opt);
}

}  // namespace fsw
