#include "src/sched/outorder.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/arena.hpp"
#include "src/common/prng.hpp"
#include "src/core/cost_model.hpp"
#include "src/core/model.hpp"
#include "src/oplist/validate.hpp"
#include "src/sched/eval_scratch.hpp"

namespace fsw {
namespace {

/// Which operations must be mutually exclusive on a server.
enum class Exclusion {
  FullSerial,  ///< OUTORDER: calc + every incident comm serialized
  PortOnly,    ///< one-port-overlap hybrid: in-port and out-port serialized
};

/// The lambda- and restart-independent half of the repair pipeline: one
/// pipelined operation set with precedences, exclusion groups, and a fixed
/// evaluation order. Built once per orchestration and shared read-only by
/// every restart on every worker (and across all bisection probes); the
/// per-restart mutable state (release / begin times) lives in RepairScratch.
struct PipelineShape {
  struct OpMeta {
    bool isCalc = false;
    NodeId a = kWorld;  // calc: the node; comm: sender (kWorld for input)
    NodeId b = kWorld;  // comm: receiver (kWorld for output)
    double dur = 0.0;
  };

  std::vector<OpMeta> ops;
  // Same-data-set precedences, CSR over ops.
  std::vector<std::uint32_t> predOff;
  std::vector<std::uint32_t> preds;
  std::vector<std::vector<std::size_t>> groups;  // mutual-exclusion sets
  std::vector<std::size_t> topo;                 // op evaluation order

  PipelineShape(const Application& app, const ExecutionGraph& graph,
                Exclusion mode) {
    const CostModel costs(app, graph);
    const std::size_t n = graph.size();

    std::vector<std::size_t> calcOf(n);
    std::vector<std::vector<std::uint32_t>> predsOf;
    std::vector<std::vector<std::size_t>> ins(n), outs(n);
    for (NodeId i = 0; i < n; ++i) {
      OpMeta op;
      op.isCalc = true;
      op.a = i;
      op.dur = costs.at(i).ccomp;
      calcOf[i] = ops.size();
      ops.push_back(op);
      predsOf.emplace_back();
    }
    auto addComm = [&](NodeId from, NodeId to, double dur) {
      OpMeta op;
      op.a = from;
      op.b = to;
      op.dur = dur;
      predsOf.emplace_back();
      if (from != kWorld) {
        predsOf.back().push_back(static_cast<std::uint32_t>(calcOf[from]));
        outs[from].push_back(ops.size());
      }
      if (to != kWorld) {
        predsOf[calcOf[to]].push_back(static_cast<std::uint32_t>(ops.size()));
        ins[to].push_back(ops.size());
      }
      ops.push_back(op);
    };
    for (NodeId i = 0; i < n; ++i) {
      if (graph.isEntry(i)) addComm(kWorld, i, 1.0);
    }
    for (const auto& e : graph.edges()) {
      addComm(e.from, e.to, costs.at(e.from).sigmaOut);
    }
    for (NodeId i = 0; i < n; ++i) {
      if (graph.isExit(i)) addComm(i, kWorld, costs.at(i).sigmaOut);
    }

    predOff.resize(ops.size() + 1, 0);
    for (std::size_t o = 0; o < ops.size(); ++o) {
      predOff[o + 1] =
          predOff[o] + static_cast<std::uint32_t>(predsOf[o].size());
    }
    preds.reserve(predOff.back());
    for (const auto& p : predsOf) {
      preds.insert(preds.end(), p.begin(), p.end());
    }

    for (NodeId i = 0; i < n; ++i) {
      if (mode == Exclusion::FullSerial) {
        std::vector<std::size_t> g = ins[i];
        g.insert(g.end(), outs[i].begin(), outs[i].end());
        g.push_back(calcOf[i]);
        groups.push_back(std::move(g));
      } else {
        groups.push_back(ins[i]);
        groups.push_back(outs[i]);
      }
    }

    // Kahn order over the op precedence DAG (stack-based, matching the
    // historical evaluation order).
    std::vector<std::size_t> indeg(ops.size(), 0);
    std::vector<std::vector<std::size_t>> succ(ops.size());
    for (std::size_t o = 0; o < ops.size(); ++o) {
      for (std::uint32_t k = predOff[o]; k < predOff[o + 1]; ++k) {
        succ[preds[k]].push_back(o);
        ++indeg[o];
      }
    }
    std::vector<std::size_t> stack;
    for (std::size_t o = 0; o < ops.size(); ++o) {
      if (indeg[o] == 0) stack.push_back(o);
    }
    while (!stack.empty()) {
      const std::size_t o = stack.back();
      stack.pop_back();
      topo.push_back(o);
      for (const std::size_t s : succ[o]) {
        if (--indeg[s] == 0) stack.push_back(s);
      }
    }
  }

  [[nodiscard]] OperationList extract(std::size_t n, double lambda,
                                      const std::vector<double>& begin) const {
    OperationList ol(n, lambda);
    for (std::size_t o = 0; o < ops.size(); ++o) {
      if (ops[o].isCalc) {
        ol.setCalc(ops[o].a, begin[o], begin[o] + ops[o].dur);
      } else {
        ol.setComm(ops[o].a, ops[o].b, begin[o], begin[o] + ops[o].dur);
      }
    }
    return ol;
  }
};

/// Conflict record: an exclusion-group pair violating the mod-lambda
/// no-overlap rule.
struct Conflict {
  std::size_t x;
  std::size_t y;
};

/// Per-worker repair state, recycled across restarts and bisection probes.
struct RepairScratch {
  std::vector<double> release;
  std::vector<double> begin;
  MonotonicArena arena;  ///< backs the per-iteration conflict list
  std::size_t probes = 0;      ///< repair iterations (asap + conflict scan)
  std::size_t heapAllocs = 0;  ///< observed vector-growth events
};

void asap(const PipelineShape& shape, const std::vector<double>& release,
          std::vector<double>& begin) {
  for (const std::size_t o : shape.topo) {
    double t = release[o];
    for (std::uint32_t k = shape.predOff[o]; k < shape.predOff[o + 1]; ++k) {
      const std::uint32_t p = shape.preds[k];
      t = std::max(t, begin[p] + shape.ops[p].dur);
    }
    begin[o] = t;
  }
}

void conflictsInto(const PipelineShape& shape, const std::vector<double>& begin,
                   double lambda, ArenaVector<Conflict>& out) {
  for (const auto& g : shape.groups) {
    for (std::size_t x = 0; x < g.size(); ++x) {
      for (std::size_t y = x + 1; y < g.size(); ++y) {
        const auto& u = shape.ops[g[x]];
        const auto& v = shape.ops[g[y]];
        if (wrappedOverlap(begin[g[x]], u.dur, begin[g[y]], v.dur, lambda)) {
          out.push_back({g[x], g[y]});
        }
      }
    }
  }
}

double wrapTo(double x, double lambda) {
  double r = std::fmod(x, lambda);
  if (r < 0) r += lambda;
  return r;
}

std::optional<OperationList> repairWithShape(
    const Application& app, const ExecutionGraph& graph,
    const PipelineShape& shape, WorkerScratchPool<RepairScratch>& scratch,
    double lambda, Exclusion mode, const OutorderOptions& opt) {
  const CostModel costs(app, graph);
  const CommModel boundModel = (mode == Exclusion::FullSerial)
                                   ? CommModel::OutOrder
                                   : CommModel::Overlap;
  if (costs.periodLowerBound(boundModel) > lambda + 1e-9) return std::nullopt;

  auto accepted = [&](const OperationList& ol) {
    return mode == Exclusion::FullSerial
               ? validate(app, graph, ol, CommModel::OutOrder).valid
               : validateOnePortOverlap(app, graph, ol).valid;
  };

  // One independent repair chain: a pure function of its restart index (the
  // scratch only lends buffers), so restarts can fan out over the pool and
  // reproduce bit-identically.
  auto tryRestart = [&](std::size_t restart) -> std::optional<OperationList> {
    auto lease = scratch.lease();
    RepairScratch& s = *lease;
    const std::size_t rCap = s.release.capacity();
    const std::size_t bCap = s.begin.capacity();
    s.release.assign(shape.ops.size(), 0.0);
    s.begin.assign(shape.ops.size(), 0.0);
    Prng rng((opt.seed + restart) * 0x9E3779B97F4A7C15ULL + 17);
    std::optional<OperationList> result;
    for (std::size_t iter = 0; iter < opt.repairIters; ++iter) {
      ++s.probes;
      asap(shape, s.release, s.begin);
      // The conflict list lives one iteration in the arena; reset() retires
      // its block to the freelist, so steady-state iterations are
      // allocation-free.
      s.arena.reset();
      ArenaVector<Conflict> bad(&s.arena);
      conflictsInto(shape, s.begin, lambda, bad);
      if (bad.empty()) {
        OperationList ol = shape.extract(graph.size(), lambda, s.begin);
        if (accepted(ol)) result = std::move(ol);
        break;  // numerical disagreement with the validator otherwise
      }
      const auto& c =
          bad[static_cast<std::size_t>(rng.uniformInt(0, bad.size() - 1))];
      // Delay one of the two ops to just past the other, modulo lambda.
      std::size_t victim = c.x;
      std::size_t other = c.y;
      const bool delayLater = rng.bernoulli(0.7);
      const bool xLater = s.begin[c.x] > s.begin[c.y];
      if (delayLater != xLater) std::swap(victim, other);
      const double otherEndRel =
          wrapTo(s.begin[other] + shape.ops[other].dur, lambda);
      const double victimRel = wrapTo(s.begin[victim], lambda);
      double delta = otherEndRel - victimRel;
      if (delta <= 1e-12) delta += lambda;
      // Occasionally jump a full extra period to escape tight packings.
      if (rng.bernoulli(0.15)) delta += lambda;
      s.release[victim] = s.begin[victim] + delta;
    }
    if (s.release.capacity() != rCap) ++s.heapAllocs;
    if (s.begin.capacity() != bCap) ++s.heapAllocs;
    return result;
  };

  // Scan restarts in pool-width waves so the serial early-exit survives:
  // within a wave every chain runs, then the lowest restart index wins —
  // exactly the winner a serial scan of 0,1,2,... would return.
  const std::size_t wave =
      opt.pool == nullptr ? 1 : std::max<std::size_t>(1, opt.pool->threadCount());
  for (std::size_t base = 0; base < opt.restarts; base += wave) {
    const std::size_t count = std::min(wave, opt.restarts - base);
    auto results = parallelMap<std::optional<OperationList>>(
        opt.pool, count,
        [&](std::size_t i) { return tryRestart(base + i); });
    for (auto& r : results) {
      if (r) return std::move(*r);
    }
  }
  return std::nullopt;
}

/// Folds the per-worker repair counters into the engine-facing atomics.
/// Call once, after every parallel section that used `scratch` completed.
void publishRepairStats(WorkerScratchPool<RepairScratch>& scratch,
                        const OutorderOptions& opt) {
  std::size_t probes = 0;
  std::size_t allocs = 0;
  std::size_t highWater = 0;
  scratch.forEach([&](RepairScratch& s) {
    probes += s.probes;
    allocs += s.heapAllocs + s.arena.heapAllocs();
    highWater = std::max(highWater, s.arena.highWater());
  });
  if (opt.evalProbes != nullptr) {
    opt.evalProbes->fetch_add(probes, std::memory_order_relaxed);
  }
  if (opt.scratchHeapAllocs != nullptr) {
    opt.scratchHeapAllocs->fetch_add(allocs, std::memory_order_relaxed);
  }
  if (opt.arenaBytesHighWater != nullptr) {
    atomicMaxRelaxed(*opt.arenaBytesHighWater, highWater);
  }
}

std::optional<OperationList> repairAtLambda(const Application& app,
                                            const ExecutionGraph& graph,
                                            double lambda, Exclusion mode,
                                            const OutorderOptions& opt) {
  const PipelineShape shape(app, graph, mode);
  WorkerScratchPool<RepairScratch> scratch(opt.pool);
  auto r = repairWithShape(app, graph, shape, scratch, lambda, mode, opt);
  publishRepairStats(scratch, opt);
  return r;
}

OrchestrationResult orchestratePeriod(const Application& app,
                                      const ExecutionGraph& graph,
                                      Exclusion mode,
                                      const OutorderOptions& opt) {
  const CostModel costs(app, graph);
  const CommModel boundModel = (mode == Exclusion::FullSerial)
                                   ? CommModel::OutOrder
                                   : CommModel::Overlap;
  const double lb = costs.periodLowerBound(boundModel);
  const double incumbent = opt.upperBound;

  const auto abortOut = [](std::atomic<std::size_t>* counter) {
    if (counter != nullptr) counter->fetch_add(1, std::memory_order_relaxed);
    OrchestrationResult pruned;
    pruned.value = std::numeric_limits<double>::infinity();
    return pruned;
  };

  // Every value reachable here is >= lb, so an incumbent strictly below the
  // analytic floor (beyond rounding slack — the floor and the achieved value
  // compute the same quantity through different FP expressions and can
  // disagree by a few ulp) dominates the candidate before any search runs.
  if (analyticallyDominated(lb, incumbent)) {
    return abortOut(opt.seedBoundAborts);
  }

  // Sound seed-phase bound. The plain incumbent is unsound against the seed
  // search (the repair improves *below* its seed), so bound the seed by the
  // incumbent plus the worst-case repair improvement instead. Certify a seed
  // upper bound seedUb from two cheap fixed-order evaluations (the heuristic
  // and canonical orders — the enumeration's winner S* can be no worse than
  // either); the repair floor is lb, so any seed order that could still beat
  // the incumbent after repair satisfies S <= incumbent + (S - lb), and in
  // particular every order with value > incumbent + (seedUb - lb) is
  // dominated. Taking max(seedUb, ...) keeps the bound at or above seedUb
  // even under floating-point rounding, so the seed winner itself can never
  // abort: the seed stays bit-identical to the unbounded seed on every
  // candidate, and only provably-dominated orders are pruned.
  OrchestrationOptions seedOpt = opt.inorder;
  if (std::isfinite(incumbent)) {
    double seedUb = std::numeric_limits<double>::infinity();
    if (const auto probe = inorderPeriodForOrders(
            app, graph, PortOrders::heuristic(app, graph))) {
      seedUb = std::min(seedUb, probe->value);
    }
    if (const auto probe =
            inorderPeriodForOrders(app, graph, PortOrders::canonical(graph))) {
      seedUb = std::min(seedUb, probe->value);
    }
    if (std::isfinite(seedUb)) {
      seedOpt.upperBound = std::min(
          seedOpt.upperBound, std::max(seedUb, incumbent + (seedUb - lb)));
      seedOpt.boundAborts = opt.seedBoundAborts;
    }
  }

  // Seed with the INORDER optimum: INORDER-valid implies valid for both
  // relaxations searched here.
  OrchestrationResult best = inorderOrchestratePeriod(app, graph, seedOpt);
  if (!std::isfinite(best.value)) {
    // The bounded seed found nothing under its (sound) bound, so no repair
    // of any seed could reach the incumbent either.
    return best;
  }
  if (best.value <= lb + 1e-9) return best;

  // One shape and one scratch pool serve every bisection probe — the
  // pipeline structure depends on neither lambda nor the restart.
  const PipelineShape shape(app, graph, mode);
  WorkerScratchPool<RepairScratch> scratch(opt.pool);
  auto repair = [&](double lambda) {
    return repairWithShape(app, graph, shape, scratch, lambda, mode, opt);
  };

  if (auto ol = repair(lb)) {
    best.value = lb;
    best.ol = std::move(*ol);
    publishRepairStats(scratch, opt);
    return best;
  }
  double lo = lb;
  double hi = best.value;
  for (std::size_t step = 0; step < opt.bisectSteps && hi - lo > 1e-6; ++step) {
    // Final-value incumbent, sound here: the reported value is always the
    // current hi and hi > lo throughout, so once the certified floor lo
    // crosses the incumbent this candidate can no longer match it — and the
    // unbounded bisection would have walked the identical lo/hi trajectory
    // to the same conclusion.
    if (lo > incumbent) {
      publishRepairStats(scratch, opt);
      return abortOut(opt.repairBoundAborts);
    }
    const double mid = 0.5 * (lo + hi);
    if (auto ol = repair(mid)) {
      best.value = mid;
      best.ol = std::move(*ol);
      hi = mid;
    } else {
      lo = mid;  // heuristic failure treated as infeasible
    }
  }
  publishRepairStats(scratch, opt);
  return best;
}

}  // namespace

std::optional<OperationList> outorderRepairAtLambda(
    const Application& app, const ExecutionGraph& graph, double lambda,
    const OutorderOptions& opt) {
  return repairAtLambda(app, graph, lambda, Exclusion::FullSerial, opt);
}

std::optional<OperationList> onePortOverlapRepairAtLambda(
    const Application& app, const ExecutionGraph& graph, double lambda,
    const OutorderOptions& opt) {
  return repairAtLambda(app, graph, lambda, Exclusion::PortOnly, opt);
}

OrchestrationResult outorderOrchestratePeriod(const Application& app,
                                              const ExecutionGraph& graph,
                                              const OutorderOptions& opt) {
  return orchestratePeriod(app, graph, Exclusion::FullSerial, opt);
}

OrchestrationResult onePortOverlapOrchestratePeriod(
    const Application& app, const ExecutionGraph& graph,
    const OutorderOptions& opt) {
  return orchestratePeriod(app, graph, Exclusion::PortOnly, opt);
}

}  // namespace fsw
