#include "src/sched/eval_scratch.hpp"

#include <algorithm>
#include <cassert>

#include "src/core/cost_model.hpp"

namespace fsw {

EvalContext::EvalContext(const Application& app, const ExecutionGraph& graph,
                         bool cyclic)
    : n_(graph.size()), cyclic_(cyclic) {
  const CostModel costs(app, graph);

  calcDur_.resize(n_);
  for (NodeId i = 0; i < n_; ++i) calcDur_[i] = costs.at(i).ccomp;

  // The comm set is fixed by the graph: a virtual input per entry, one comm
  // per edge, a virtual output per exit. Ids are assigned in (from, to)
  // key-sorted order — the iteration order of the std::map the per-probe
  // implementation used — so every summation / extraction below reproduces
  // the legacy floating-point results bit-for-bit. (kWorld is a huge NodeId
  // and sorts last, as it did as a map key.)
  std::size_t entries = 0;
  std::size_t exits = 0;
  for (NodeId i = 0; i < n_; ++i) {
    if (graph.isEntry(i)) ++entries;
    if (graph.isExit(i)) ++exits;
  }
  comms_.reserve(entries + graph.edges().size() + exits);
  for (NodeId i = 0; i < n_; ++i) {
    if (graph.isEntry(i)) comms_.push_back({kWorld, i, 1.0});
  }
  for (const auto& e : graph.edges()) {
    comms_.push_back({e.from, e.to, costs.at(e.from).sigmaOut});
  }
  for (NodeId i = 0; i < n_; ++i) {
    if (graph.isExit(i)) comms_.push_back({i, kWorld, costs.at(i).sigmaOut});
  }
  std::sort(comms_.begin(), comms_.end(),
            [](const CommRec& a, const CommRec& b) {
              return a.from != b.from ? a.from < b.from : a.to < b.to;
            });

  // CSR port lookup per node.
  std::vector<std::uint32_t> inCnt(n_ + 1, 0), outCnt(n_ + 1, 0);
  for (const auto& c : comms_) {
    if (c.to != kWorld) ++inCnt[c.to + 1];
    if (c.from != kWorld) ++outCnt[c.from + 1];
  }
  inAdjOff_.resize(n_ + 1, 0);
  outAdjOff_.resize(n_ + 1, 0);
  for (NodeId i = 0; i < n_; ++i) {
    inAdjOff_[i + 1] = inAdjOff_[i] + inCnt[i + 1];
    outAdjOff_[i + 1] = outAdjOff_[i] + outCnt[i + 1];
  }
  inAdj_.resize(inAdjOff_[n_]);
  outAdj_.resize(outAdjOff_[n_]);
  std::vector<std::uint32_t> inFill(inAdjOff_.begin(), inAdjOff_.end());
  std::vector<std::uint32_t> outFill(outAdjOff_.begin(), outAdjOff_.end());
  for (std::uint32_t c = 0; c < comms_.size(); ++c) {
    if (comms_[c].to != kWorld) {
      inAdj_[inFill[comms_[c].to]++] = {comms_[c].from, c};
    }
    if (comms_[c].from != kWorld) {
      outAdj_[outFill[comms_[c].from]++] = {comms_[c].to, c};
    }
  }

  // Per node: receive chain (ins-1) + last-receive->calc + calc->first-send
  // + send chain (outs-1) + wrap-around <= ins + outs + 1.
  constraintBound_ = inAdj_.size() + outAdj_.size() + n_;

  // Busy-time lower bound, per-node sums in comm-id (= legacy key) order.
  busyLB_ = 0.0;
  for (NodeId i = 0; i < n_; ++i) {
    double busy = calcDur_[i];
    for (const auto& c : comms_) {
      if (c.from == i || c.to == i) busy += c.dur;
    }
    busyLB_ = std::max(busyLB_, busy);
  }
  totalDur_ = 0.0;
  for (const double d : calcDur_) totalDur_ += d;
  for (const auto& c : comms_) totalDur_ += c.dur;
}

std::uint32_t EvalContext::inCommId(NodeId node, NodeId src) const {
  for (std::uint32_t k = inAdjOff_[node]; k < inAdjOff_[node + 1]; ++k) {
    if (inAdj_[k].first == src) return inAdj_[k].second;
  }
  assert(false && "inCommId: no such port");
  return 0;
}

std::uint32_t EvalContext::outCommId(NodeId node, NodeId dst) const {
  for (std::uint32_t k = outAdjOff_[node]; k < outAdjOff_[node + 1]; ++k) {
    if (outAdj_[k].first == dst) return outAdj_[k].second;
  }
  assert(false && "outCommId: no such port");
  return 0;
}

void EvalContext::buildSystem(PortOrdersView orders, EvalScratch& s) const {
  PeriodicConstraintGraph& pcg = s.pcg;
  pcg.clear();
  pcg.reserveConstraints(constraintBound_);
  pcg.addVariables(varCount());

  for (NodeId i = 0; i < n_; ++i) {
    const auto ins = orders.in(i);
    const auto outs = orders.out(i);
    // Receive chain.
    for (std::size_t t = 0; t + 1 < ins.size(); ++t) {
      const std::uint32_t a = inCommId(i, ins[t]);
      const std::uint32_t b = inCommId(i, ins[t + 1]);
      pcg.addConstraint(commVar(a), commVar(b), comms_[a].dur);
    }
    // Computation after the last receive.
    if (!ins.empty()) {
      const std::uint32_t last = inCommId(i, ins.back());
      pcg.addConstraint(commVar(last), calcVar(i), comms_[last].dur);
    }
    // Send chain after the computation.
    if (!outs.empty()) {
      const std::uint32_t first = outCommId(i, outs.front());
      pcg.addConstraint(calcVar(i), commVar(first), calcDur_[i]);
    }
    for (std::size_t t = 0; t + 1 < outs.size(); ++t) {
      const std::uint32_t a = outCommId(i, outs[t]);
      const std::uint32_t b = outCommId(i, outs[t + 1]);
      pcg.addConstraint(commVar(a), commVar(b), comms_[a].dur);
    }
    // Wrap-around (Appendix A constraint (1)): the last send of data set n
    // ends before the first receive of data set n+1 begins.
    if (cyclic_ && !ins.empty() && !outs.empty()) {
      const std::uint32_t out = outCommId(i, outs.back());
      const std::uint32_t in = inCommId(i, ins.front());
      pcg.addConstraint(commVar(out), commVar(in), comms_[out].dur, /*k=*/1);
    }
  }
}

OperationList EvalContext::extract(const std::vector<double>& x,
                                   double lambda) const {
  OperationList ol(n_, lambda);
  for (NodeId i = 0; i < n_; ++i) {
    ol.setCalc(i, x[calcVar(i)], x[calcVar(i)] + calcDur_[i]);
  }
  for (std::uint32_t c = 0; c < comms_.size(); ++c) {
    const double b = x[commVar(c)];
    ol.setComm(comms_[c].from, comms_[c].to, b, b + comms_[c].dur);
  }
  return ol;
}

double EvalContext::latencyOf(const std::vector<double>& x) const {
  double latest = 0.0;
  for (std::uint32_t c = 0; c < comms_.size(); ++c) {
    latest = std::max(latest, x[commVar(c)] + comms_[c].dur);
  }
  return latest;
}

}  // namespace fsw
