// Facade: given an execution graph, produce the best operation list for a
// (model, objective) pair, together with the problem's analytic lower bound
// so callers can certify optimality when the two meet.
#pragma once

#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"
#include "src/core/model.hpp"
#include "src/sched/inorder.hpp"
#include "src/sched/outorder.hpp"

namespace fsw {

struct Orchestration {
  OrchestrationResult result;
  double lowerBound = 0.0;
  [[nodiscard]] bool provablyOptimal(double eps = 1e-6) const {
    return result.value <= lowerBound * (1.0 + eps) + eps;
  }
};

struct OrchestratorOptions {
  OrchestrationOptions order{};   ///< order-search knobs (INORDER, latency)
  OutorderOptions outorder{};     ///< OUTORDER repair knobs
};

/// Dispatches to the model/objective-specific orchestrator:
///   (Overlap, Period)  -> polynomial Prop 1 schedule (always optimal);
///   (InOrder, Period)  -> order search over the constraint system;
///   (OutOrder, Period) -> conflict-repair search seeded by INORDER;
///   (*, Latency)       -> tree algorithm / one-port order search / fluid.
[[nodiscard]] Orchestration orchestrate(const Application& app,
                                        const ExecutionGraph& graph,
                                        CommModel m, Objective obj,
                                        const OrchestratorOptions& opt = {});

}  // namespace fsw
