#include "src/sched/overlap.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/cost_model.hpp"
#include "src/core/model.hpp"

namespace fsw {

OperationList overlapPeriodSchedule(const Application& app,
                                    const ExecutionGraph& graph) {
  const CostModel costs(app, graph);
  const double T = costs.periodLowerBound(CommModel::Overlap);
  const std::size_t n = graph.size();
  OperationList ol(n, T);

  // Every communication is stretched to exactly T (ratio volume / T); data
  // set 0 traverses the graph greedily.
  std::vector<double> endCalc(n, 0.0);
  for (const NodeId i : graph.topologicalOrder()) {
    double ready = 0.0;
    if (graph.isEntry(i)) {
      ol.setComm(kWorld, i, 0.0, T);
      ready = T;
    } else {
      for (const NodeId p : graph.predecessors(i)) {
        ready = std::max(ready, endCalc[p] + T);
      }
    }
    ol.setCalc(i, ready, ready + costs.at(i).ccomp);
    endCalc[i] = ready + costs.at(i).ccomp;
    if (graph.isExit(i)) {
      ol.setComm(i, kWorld, endCalc[i], endCalc[i] + T);
    } else {
      for (const NodeId s : graph.successors(i)) {
        ol.setComm(i, s, endCalc[i], endCalc[i] + T);
      }
    }
  }
  return ol;
}

OperationList overlapLatencyFluid(const Application& app,
                                  const ExecutionGraph& graph) {
  const CostModel costs(app, graph);
  const std::size_t n = graph.size();
  const auto topo = graph.topologicalOrder();

  // beginCalc[j] closes j's receive phase; endCalc[j] opens its send phase.
  // All communications i -> j span [endCalc[i], beginCalc[j]).
  std::vector<double> beginCalc(n, 0.0);
  std::vector<double> endCalc(n, 0.0);

  // Earliest receive-phase end at j given sender finish times: the smallest
  // t with sum_i vol_i / (t - e_i) <= 1 and t >= e_i + vol_i for all i.
  auto receiveEnd = [&](NodeId j) {
    double lo = 0.0;
    double volSum = 0.0;
    for (const NodeId p : graph.predecessors(j)) {
      const double vol = costs.at(p).sigmaOut;
      lo = std::max(lo, endCalc[p] + vol);
      volSum += vol;
    }
    if (volSum <= 0.0) return lo;
    double hi = lo;
    for (const NodeId p : graph.predecessors(j)) {
      hi = std::max(hi, endCalc[p]);
    }
    hi += volSum;  // serialized receives always fit
    auto load = [&](double t) {
      double s = 0.0;
      for (const NodeId p : graph.predecessors(j)) {
        const double vol = costs.at(p).sigmaOut;
        if (vol > 0.0) s += vol / (t - endCalc[p]);
      }
      return s;
    };
    if (load(std::max(lo, 1e-300)) <= 1.0 + 1e-12) return lo;
    for (int it = 0; it < 100; ++it) {
      const double mid = 0.5 * (lo + hi);
      if (load(mid) > 1.0) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return hi;
  };

  // Monotone fixed point: receiver phases honour sender-side capacity too.
  for (int round = 0; round < 100; ++round) {
    bool changed = false;
    for (const NodeId j : topo) {
      double t = graph.isEntry(j) ? 1.0 : receiveEnd(j);
      t = std::max(t, beginCalc[j]);
      if (t > beginCalc[j] + 1e-12) changed = true;
      beginCalc[j] = t;
      endCalc[j] = t + costs.at(j).ccomp;
    }
    // Sender-side capacity: just after endCalc[i] every outgoing transfer is
    // active; require sum_j vol / (b_j - e_i) <= 1 by lifting the smallest
    // receiver begins to a common floor t*.
    for (const NodeId i : topo) {
      const auto& succs = graph.successors(i);
      if (succs.size() < 2) continue;
      const double vol = costs.at(i).sigmaOut;
      if (vol <= 0.0) continue;
      auto load = [&](double floorT) {
        double s = 0.0;
        for (const NodeId j : succs) {
          s += vol / (std::max(beginCalc[j], floorT) - endCalc[i]);
        }
        return s;
      };
      double lo = endCalc[i] + vol;
      if (load(lo) <= 1.0 + 1e-12) continue;
      double hi = endCalc[i] + vol * static_cast<double>(succs.size());
      for (int it = 0; it < 100; ++it) {
        const double mid = 0.5 * (lo + hi);
        if (load(mid) > 1.0) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      for (const NodeId j : succs) {
        if (beginCalc[j] < hi) {
          beginCalc[j] = hi;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }

  OperationList ol(n, 1.0);
  double latency = 0.0;
  for (const NodeId j : topo) {
    ol.setCalc(j, beginCalc[j], endCalc[j]);
    if (graph.isEntry(j)) {
      // The input transfer may be stretched across the whole receive phase.
      ol.setComm(kWorld, j, 0.0, beginCalc[j]);
    }
    for (const NodeId p : graph.predecessors(j)) {
      ol.setComm(p, j, endCalc[p], beginCalc[j]);
    }
    if (graph.isExit(j)) {
      const double end = endCalc[j] + costs.at(j).sigmaOut;
      ol.setComm(j, kWorld, endCalc[j], end);
      latency = std::max(latency, end);
    }
  }
  ol.setLambda(std::max(latency, 1.0));
  return ol;
}

}  // namespace fsw
